#!/usr/bin/env bash
# specguard.sh — fail CI when internal/spec encoding files change without a
# spec.Version bump.
#
# spec.Version is baked into every plan fingerprint (internal/spec/spec.go);
# cache snapshots and cross-shard session routing key on it. A change to the
# canonical encoding that keeps the old version silently revalidates stale
# fingerprints — exactly the bug class the FuzzSpecFingerprint corpus caught
# in PR 5. This guard makes the bump mechanical: touch internal/spec/*.go
# (tests excluded), bump const Version.
#
# Base resolution, in order:
#   1. $SPECGUARD_BASE            — explicit ref, for local runs
#   2. merge-base with origin/$GITHUB_BASE_REF   — pull requests
#   3. HEAD~1                     — pushes
# If no base resolves (shallow clone, root commit), the guard skips rather
# than false-positives.
set -euo pipefail

cd "$(dirname "$0")/.."

base=""
if [ -n "${SPECGUARD_BASE:-}" ]; then
    base="$SPECGUARD_BASE"
elif [ -n "${GITHUB_BASE_REF:-}" ] && git rev-parse --verify -q "origin/$GITHUB_BASE_REF" >/dev/null; then
    base=$(git merge-base HEAD "origin/$GITHUB_BASE_REF")
elif git rev-parse --verify -q HEAD~1 >/dev/null; then
    base="HEAD~1"
fi
if [ -z "$base" ]; then
    echo "specguard: no base commit to diff against; skipping"
    exit 0
fi

changed=$(git diff --name-only "$base" HEAD -- 'internal/spec/*.go' | grep -v '_test\.go$' || true)
if [ -z "$changed" ]; then
    echo "specguard: internal/spec unchanged vs $base"
    exit 0
fi

echo "specguard: internal/spec changed vs $base:"
echo "$changed" | sed 's/^/  /'

# Capture before grep -q: under pipefail, grep -q exiting early would SIGPIPE
# git diff and fail the pipeline even on a match.
specdiff=$(git diff "$base" HEAD -- internal/spec/spec.go)
if grep -Eq '^\+[[:space:]]*const[[:space:]]+Version' <<<"$specdiff"; then
    echo "specguard: spec.Version bumped — OK"
    exit 0
fi

echo "specguard: internal/spec encoding files changed but spec.Version did not." >&2
echo "specguard: bump 'const Version' in internal/spec/spec.go (fingerprints," >&2
echo "specguard: snapshots and shard routing key on it), or revert the change." >&2
exit 1
