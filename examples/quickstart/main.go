// Quickstart: mine the informative rule set of the thesis' running example.
//
// The flight-delay relation of Table 1.1 has 14 flights with (Day, Origin,
// Destination) dimensions and the delay in minutes as the measure. Mining
// k=3 rules recovers exactly Table 1.2: London-bound flights are late (15.3
// min average vs 10.4 overall), and Friday and Saturday flights are worse
// still.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sirum"
)

func main() {
	ds, err := sirum.Generate("flights", 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dataset:", ds.Summary())

	res, err := ds.Mine(sirum.Options{K: 3})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ninformative rules (Table 1.2 of the thesis):")
	fmt.Printf("  %-40s %10s %7s %9s\n", "rule", "AVG(Late)", "count", "gain")
	fmt.Printf("  %-40s %10s %7s %9s\n", "(*)", "10.4", "14", "-")
	for _, r := range res.Rules {
		fmt.Printf("  %-40s %10.1f %7d %9.2f\n", r, r.Avg, r.Count, r.Gain)
	}
	fmt.Printf("\nKL divergence %.4f, information gain %.4f, %d iterations\n",
		res.KL, res.InfoGain, res.Iterations)

	// What do those rules "say" about individual flights? Fit the maximum-
	// entropy model the rules imply and compare estimates to actual delays.
	est, _, err := ds.Fit([][]sirum.Condition{
		{{Attr: "Destination", Value: "London"}},
		{{Attr: "Day", Value: "Fri"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nestimated delay for the first four flights under those two rules")
	fmt.Println("(the m̂3 column of Table 1.1 up to the Sat rule):")
	for i := 0; i < 4; i++ {
		fmt.Printf("  flight %d: %.1f minutes\n", i+1, est[i])
	}
}
