// Serving SIRUM over HTTP: stand up the sirumd daemon in-process, register
// a prepared session, and answer concurrent mine/explore queries through
// the real serving path — registry, admission control, JSON wire format and
// per-query metrics snapshots included.
//
// This is the programmatic twin of running `sirumd` and driving it with
// curl (see README "Serving rule mining"); production deployments run the
// daemon standalone and talk to it from any HTTP client.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"sirum/internal/server"
)

func main() {
	// The daemon: a session registry with at most 4 queries executing at
	// once; extra requests queue at admission.
	srv := server.New(server.Config{MaxInFlight: 4})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("sirumd serving on %s\n\n", base)

	// Register a prepared session over the thesis' income generator: the
	// data is loaded, partitioned, sampled and indexed once, here.
	var created server.SessionInfo
	post(base+"/v1/datasets", server.CreateRequest{
		ID:        "income",
		Generator: &server.GeneratorSpec{Name: "income", Rows: 3000, Seed: 1},
		Prepare:   server.PrepareSpec{SampleSize: 32, Seed: 1},
	}, &created)
	fmt.Printf("session %q: %d rows, dims %v\n\n", created.ID, created.Rows, created.Dims)

	// Eight analysts ask at once; every query forks private estimate state
	// off the shared prepared blocks, so answers are isolated and correct.
	var wg sync.WaitGroup
	results := make([]server.MineResponse, 8)
	start := time.Now()
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			post(base+"/v1/datasets/income/mine",
				server.MineRequest{K: 2 + i%3, SampleSize: 32, Seed: 1}, &results[i])
		}(i)
	}
	wg.Wait()
	fmt.Printf("8 concurrent queries answered in %v:\n", time.Since(start).Round(time.Millisecond))
	for i, res := range results {
		fmt.Printf("  k=%d: %d rules, KL %.4f, scaling %v\n",
			2+i%3, len(res.Rules), res.KL,
			res.Metrics.Phases["iterative_scaling"].Round(time.Millisecond))
	}

	// Repeat traffic is near-free: an identical query is answered from the
	// epoch-keyed result cache — no admission slot, no backend work — and
	// says so with "cached": true.
	repeatStart := time.Now()
	var repeat server.MineResponse
	post(base+"/v1/datasets/income/mine",
		server.MineRequest{K: 2, SampleSize: 32, Seed: 1}, &repeat)
	fmt.Printf("\nrepeat of the k=2 query: cached=%v in %v (computed in %v)\n",
		repeat.Cached, time.Since(repeatStart).Round(time.Microsecond),
		results[0].WallNS.Round(time.Millisecond))

	// The session keeps lifetime totals across all of them.
	var info server.SessionInfo
	get(base+"/v1/datasets/income", &info)
	fmt.Printf("\nsession served %d queries; lifetime tasks: %d\n",
		info.Queries, info.Stats.Lifetime.Counters["tasks"])
}

func post(url string, in, out any) {
	buf, err := json.Marshal(in)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var apiErr server.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&apiErr)
		log.Fatalf("POST %s: %d %s", url, resp.StatusCode, apiErr.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
