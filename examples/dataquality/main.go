// Data cleansing: find where the dirty records hide (Section 1, Table 1.5).
//
// The measure attribute is a data-quality flag (1 = the record is missing
// its Actor2 type, 0 = clean). SIRUM surfaces the dimension-value
// combinations whose average flag deviates most from the overall dirty rate
// — the signature use of informative rules for data-quality diagnosis (cf.
// Data X-Ray and Data Auditor).
//
//	go run ./examples/dataquality
package main

import (
	"fmt"
	"log"

	"sirum"
)

func main() {
	// A GDELT-like event log; the synthetic generator plants correlations
	// between certain event profiles and the measure, playing the role of
	// systematically incomplete records.
	ds, err := sirum.Generate("income", 30000, 7) // binary measure: use as dirty flag
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dataset:", ds.Summary())
	fmt.Println("\ntreating the binary measure as a dirty-record flag;")
	fmt.Println("rules with AVG far above the base rate localize the quality problem:")

	res, err := ds.Mine(sirum.Options{K: 6, SampleSize: 64, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n  %-55s %9s %8s\n", "rule", "dirty%", "records")
	for _, r := range res.Rules {
		fmt.Printf("  %-55s %8.1f%% %8d\n", r, 100*r.Avg, r.Count)
	}
	fmt.Printf("\nrule set explains the dirty-flag distribution with KL %.5f (info gain %.5f)\n",
		res.KL, res.InfoGain)
	fmt.Println("\ndrill-down: records matching the top rule deserve a look —")
	fmt.Println("an average of 1.0 would mean every matching record is dirty (Table 1.5).")
}
