// Smart data-cube exploration (Section 1, Table 1.3; Section 5.6.2).
//
// The analyst has already looked at the two cheapest group-by views of a
// taxi-trip cube. SIRUM treats those cells as prior knowledge and recommends
// the rules that add the most information beyond them — the cells worth
// drilling into next.
//
// Cube exploration is the archetypal interactive workload, so this example
// runs it through the session layer: the cube is prepared once, and the
// exploration plus a follow-up ad-hoc query are both queries against the
// shared prepared state.
//
//	go run ./examples/cubeexplore
package main

import (
	"fmt"
	"log"

	"sirum"
)

func main() {
	ds, err := sirum.Generate("tlc", 8000, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("dataset:", ds.Summary())

	session, err := ds.Prepare(sirum.PrepareOptions{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	res, err := session.Explore(sirum.ExploreOptions{K: 4, GroupBys: 2, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nthe analyst has already seen %d group-by cells, e.g.:\n", len(res.Prior))
	for i, p := range res.Prior {
		if i == 4 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %-40s avg=%.2f count=%d\n", p, p.Avg, p.Count)
	}

	fmt.Println("\nSIRUM recommends drilling into:")
	for _, r := range res.Result.Rules {
		fmt.Printf("  %-55s avg=%.2f count=%d gain=%.3f\n", r, r.Avg, r.Count, r.Gain)
	}
	fmt.Printf("\ninformation gain beyond the prior: %.5f\n", res.Result.InfoGain)

	// The analyst follows up without prior knowledge — same session, no
	// re-load: what would the top rules be from a cold start?
	top, err := session.Mine(sirum.Options{K: 3, SampleSize: 0, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfollow-up on the same session — top rules with no prior:")
	for _, r := range top.Rules {
		fmt.Printf("  %-55s avg=%.2f count=%d\n", r, r.Avg, r.Count)
	}
}
