// Platform comparison: the same mining job under Spark-like, Hive-like and
// PostgreSQL-like execution profiles (Section 5.2, Figures 5.1/5.2).
//
// This example uses the internal engine directly to show how the simulated
// cluster substrate works: identical algorithms, different cost models —
// in-memory shuffles vs disk-materialized MapReduce rounds vs a single
// database session.
//
//	go run ./examples/platforms
package main

import (
	"fmt"
	"log"

	"sirum/internal/datagen"
	"sirum/internal/engine"
	"sirum/internal/metrics"
	"sirum/internal/miner"
	"sirum/internal/platform"
)

func main() {
	ds := datagen.Income(40000, 5)
	fmt.Printf("dataset: income-like, %d rows x %d dims\n\n", ds.NumRows(), ds.NumDims())
	fmt.Printf("%-12s %12s %14s %14s %12s\n", "platform", "sim_time", "shuffle_MB", "broadcast_KB", "stages")

	// The experiment shrinks the paper's data ~37x, so fixed platform
	// overheads shrink by the same factor (see platform.Scale).
	const scale = 37
	for _, kind := range platform.Kinds() {
		conf := platform.Scale(platform.Config(kind, 4, 2, 1<<30), scale)
		cl := engine.NewSimBackend(conf)
		res, err := miner.New(cl, ds, miner.Options{
			Variant: miner.Baseline, K: 5, SampleSize: 16, Seed: 2,
		}).Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %12v %14.2f %14.2f %12d\n",
			kind,
			res.SimTime.Round(1e6),
			float64(res.Counters[metrics.CtrShuffleBytes])/(1<<20),
			float64(res.Counters[metrics.CtrBroadcastBytes])/(1<<10),
			res.Counters[metrics.CtrStages])
		cl.Close()
	}
	fmt.Println("\nexpected shape (Figures 5.1/5.2): Spark fastest; PostgreSQL slower")
	fmt.Println("(single process); Hive an order of magnitude slower (disk shuffles,")
	fmt.Println("multi-second job startup per map-reduce round).")
}
