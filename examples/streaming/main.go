// Streaming SIRUM through the session layer: prepare a dataset once, keep a
// rule list fresh as batches arrive via Prepared.Append (the Chapter 7
// future-work extension), and answer ad-hoc queries against the same
// long-lived session in between.
//
// Batches from the same distribution are folded in with a cheap refit (two
// data scans per rule, via the Rule Coverage Table); when the refit shows
// the rule list no longer explains the data — the unexplained-divergence
// share drifts past a threshold — a full mining pass replaces it. Every
// Append invalidates the prepared blocks/sample/index and rebuilds them on
// the grown data, so queries after it see the new reality.
//
//	go run ./examples/streaming
package main

import (
	"encoding/csv"
	"fmt"
	"log"
	"strconv"
	"strings"

	"sirum"
)

func main() {
	opt := sirum.Options{K: 4, SampleSize: 32, Seed: 1}

	base, err := sirum.Generate("income", 4000, 10)
	if err != nil {
		log.Fatal(err)
	}
	// A serving workload wants answers at host speed: the session owns a
	// native backend (set Backend: sirum.BackendSim to study cluster costs).
	// RemineFactor 1.15 re-mines once the rule list's unexplained share
	// drifts ~15% past its post-mine level.
	session, err := base.Prepare(sirum.PrepareOptions{SampleSize: 32, Seed: 1, RemineFactor: 1.15})
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	fmt.Println("batches from one distribution, then a regime change:")
	for i, batch := range []struct {
		rows int
		seed int64
		flip bool
	}{
		{1000, 11, false},
		{1000, 12, false},
		{6000, 13, true}, // regime change: the quality flag inverts
	} {
		ds, err := sirum.Generate("income", batch.rows, batch.seed)
		if err != nil {
			log.Fatal(err)
		}
		if batch.flip {
			ds = invert(ds)
		}
		res, err := session.Append(ds, opt)
		if err != nil {
			log.Fatal(err)
		}
		action := "refit (cheap)"
		if res.Remined {
			action = "FULL RE-MINE"
		}
		fmt.Printf("\nbatch %d (+%d rows, total %d): %s, KL=%.5f\n",
			i+1, batch.rows, res.Rows, action, res.KL)
		for _, r := range res.Rules {
			fmt.Printf("   %-45s avg=%.3f count=%d\n", r, r.Avg, r.Count)
		}
	}

	// The same session still answers ad-hoc queries — here a deeper list
	// over everything accumulated so far.
	deep, err := session.Mine(sirum.Options{K: 8, SampleSize: 32, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nad-hoc query on the final session (%d rows): %d rules, info gain %.5f\n",
		session.NumRows(), len(deep.Rules), deep.InfoGain)
	fmt.Println("\nbatch 1 mined the initial rule list, batch 2 refit it in place,")
	fmt.Println("and the regime change in batch 3 triggered a full re-mine.")
}

// invert flips the binary quality flag (measure m becomes 1−m), simulating a
// regime change, via a public-API CSV round trip: WriteCSV puts the measure
// in the last column.
func invert(ds *sirum.Dataset) *sirum.Dataset {
	var sb strings.Builder
	if err := ds.WriteCSV(&sb); err != nil {
		log.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		log.Fatal(err)
	}
	b := sirum.NewBuilder(ds.DimNames(), ds.MeasureName())
	for _, rec := range recs[1:] { // skip header
		m, err := strconv.ParseFloat(rec[len(rec)-1], 64)
		if err != nil {
			log.Fatal(err)
		}
		if err := b.Add(rec[:len(rec)-1], 1-m); err != nil {
			log.Fatal(err)
		}
	}
	out, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return out
}
