// Streaming SIRUM: keep a rule list fresh as batches arrive (the Chapter 7
// future-work extension implemented in internal/miner.Incremental).
//
// Batches from the same distribution are folded in with a cheap refit (two
// data scans per rule, via the Rule Coverage Table); when the refit shows
// the rule list no longer explains the data — the unexplained-divergence
// share drifts past a threshold — a full mining pass replaces it.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"sirum/internal/datagen"
	"sirum/internal/engine"
	"sirum/internal/miner"
)

func main() {
	// A serving workload wants answers at host speed, not a cost model: run
	// on the native backend (swap in NewSimBackend to study cluster costs).
	c := engine.NewNativeBackend(engine.Config{})
	defer c.Close()
	inc := miner.NewIncremental(c, miner.Options{Variant: miner.Optimized, K: 4, SampleSize: 32, Seed: 1})

	fmt.Println("three batches from one distribution, then a regime change:")
	for i, batch := range []struct {
		rows int
		seed int64
		flip bool
	}{
		{4000, 10, false},
		{1000, 11, false},
		{1000, 12, false},
		{6000, 13, true}, // regime change: the quality flag inverts
	} {
		ds := datagen.Income(batch.rows, batch.seed)
		if batch.flip {
			for r := range ds.Measure {
				ds.Measure[r] = 1 - ds.Measure[r]
			}
		}
		res, err := inc.Append(ds)
		if err != nil {
			log.Fatal(err)
		}
		action := "refit (cheap)"
		if res.Remined {
			action = "FULL RE-MINE"
		}
		fmt.Printf("\nbatch %d (+%d rows, total %d): %s, KL=%.5f\n",
			i+1, batch.rows, res.Rows, action, res.KL)
		for _, r := range res.Rules {
			fmt.Printf("   %-45s avg=%.3f count=%d\n", r.Rule, r.Avg, r.Count)
		}
	}
	fmt.Println("\nbatches 2-3 refit in place; the regime change triggered a re-mine.")
}
