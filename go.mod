module sirum

go 1.22
