package sirum

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestConcurrentPreparedMine is the session-layer contract pinned under the
// race detector in CI: ≥4 queries with different K and variants run
// concurrently against one shared prepared backend, and each result must
// match the equivalent cold Dataset.Mine.
func TestConcurrentPreparedMine(t *testing.T) {
	ds, err := Generate("income", 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ds.Prepare(PrepareOptions{SampleSize: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	queries := []Options{
		{K: 3, SampleSize: 16, Seed: 2},
		{K: 4, SampleSize: 16, Seed: 2, Variant: VariantBaseline},
		{K: 2, SampleSize: 16, Seed: 2, Variant: VariantRCT},
		{K: 5, SampleSize: 16, Seed: 2, Variant: VariantMultiRule},
		{K: 3, SampleSize: 16, Seed: 2, Variant: VariantFastPruning},
		{K: 3, SampleSize: 8, Seed: 7, Variant: VariantFastAncestor}, // off-sample query: draws its own
	}
	cold := make([]*Result, len(queries))
	for i, opt := range queries {
		cold[i], err = ds.Mine(opt)
		if err != nil {
			t.Fatalf("cold query %d: %v", i, err)
		}
	}

	warm := make([]*Result, len(queries))
	errs := make([]error, len(queries))
	var wg sync.WaitGroup
	for i, opt := range queries {
		wg.Add(1)
		go func(i int, opt Options) {
			defer wg.Done()
			warm[i], errs[i] = p.Mine(opt)
		}(i, opt)
	}
	wg.Wait()

	for i := range queries {
		if errs[i] != nil {
			t.Fatalf("prepared query %d: %v", i, errs[i])
		}
		assertSameResult(t, fmt.Sprintf("query %d", i), cold[i], warm[i])
	}
}

// assertSameResult compares a cold and a prepared run of the same job.
func assertSameResult(t *testing.T, label string, cold, warm *Result) {
	t.Helper()
	if len(cold.Rules) == 0 {
		t.Fatalf("%s: cold run mined nothing", label)
	}
	if len(cold.Rules) != len(warm.Rules) {
		t.Fatalf("%s: rule counts differ: cold %d prepared %d", label, len(cold.Rules), len(warm.Rules))
	}
	for j := range cold.Rules {
		c, w := cold.Rules[j], warm.Rules[j]
		if c.String() != w.String() {
			t.Errorf("%s rule %d: cold %s vs prepared %s", label, j, c, w)
		}
		if c.Count != w.Count {
			t.Errorf("%s rule %d count: cold %d vs prepared %d", label, j, c.Count, w.Count)
		}
		if relErr(c.Avg, w.Avg) > 1e-9 {
			t.Errorf("%s rule %d avg: cold %v vs prepared %v", label, j, c.Avg, w.Avg)
		}
		if relErr(c.Gain, w.Gain) > 1e-6 {
			t.Errorf("%s rule %d gain: cold %v vs prepared %v", label, j, c.Gain, w.Gain)
		}
	}
	if relErr(cold.KL, warm.KL) > 1e-6 {
		t.Errorf("%s KL: cold %v vs prepared %v", label, cold.KL, warm.KL)
	}
	if relErr(cold.InfoGain, warm.InfoGain) > 1e-6 {
		t.Errorf("%s InfoGain: cold %v vs prepared %v", label, cold.InfoGain, warm.InfoGain)
	}
}

// TestConcurrentPreparedExplore runs exploration and plain mining
// concurrently on one session and checks the exploration against the cold
// path.
func TestConcurrentPreparedExplore(t *testing.T) {
	ds, err := Generate("flights", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	coldExp, err := ds.Explore(ExploreOptions{K: 2, GroupBys: 2})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ds.Prepare(PrepareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var wg sync.WaitGroup
	var warmExp *ExploreResult
	var expErr, mineErr error
	wg.Add(2)
	go func() { defer wg.Done(); warmExp, expErr = p.Explore(ExploreOptions{K: 2, GroupBys: 2}) }()
	go func() { defer wg.Done(); _, mineErr = p.Mine(Options{K: 3}) }()
	wg.Wait()
	if expErr != nil || mineErr != nil {
		t.Fatalf("explore err %v, mine err %v", expErr, mineErr)
	}
	if len(warmExp.Result.Rules) != len(coldExp.Result.Rules) {
		t.Fatalf("recommendation counts differ: cold %d prepared %d",
			len(coldExp.Result.Rules), len(warmExp.Result.Rules))
	}
	for i := range warmExp.Result.Rules {
		if warmExp.Result.Rules[i].String() != coldExp.Result.Rules[i].String() {
			t.Errorf("recommendation %d: cold %s vs prepared %s",
				i, coldExp.Result.Rules[i], warmExp.Result.Rules[i])
		}
	}
}

// TestPreparedAppend exercises the session lifecycle: append invalidates and
// rebuilds the prepared state, maintains the rule list, and subsequent
// queries see the grown data.
func TestPreparedAppend(t *testing.T) {
	ds, err := Generate("income", 1200, 5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ds.Prepare(PrepareOptions{SampleSize: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	batch, err := Generate("income", 600, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Append(batch, Options{K: 3, SampleSize: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Remined {
		t.Error("first append should mine the rule list")
	}
	if res.Rows != 1800 {
		t.Errorf("rows after append = %d, want 1800", res.Rows)
	}
	if len(res.Rules) == 0 {
		t.Error("append produced no rules")
	}
	if p.NumRows() != 1800 {
		t.Errorf("session rows = %d, want 1800", p.NumRows())
	}
	// A query after Append runs against the grown data.
	mined, err := p.Mine(Options{K: 2, SampleSize: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(mined.Rules) == 0 {
		t.Error("post-append query mined nothing")
	}
	// A small same-distribution batch refits instead of re-mining.
	small, err := Generate("income", 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := p.Append(small, Options{K: 3, SampleSize: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rows != 2000 {
		t.Errorf("rows after second append = %d, want 2000", res2.Rows)
	}
}

// TestPreparedRejectsForeignBackend pins that a session cannot be moved to a
// different substrate per query.
func TestPreparedRejectsForeignBackend(t *testing.T) {
	ds, err := Generate("flights", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ds.Prepare(PrepareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Mine(Options{K: 2, Backend: BackendSim}); err == nil {
		t.Error("query on a foreign backend accepted")
	}
	if _, err := p.Mine(Options{K: 2, Backend: BackendNative}); err != nil {
		t.Errorf("query on the session's own backend rejected: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Mine(Options{K: 2}); err == nil {
		t.Error("query on a closed session accepted")
	}
}

// TestPreparedAppendRollsBackOptionsOnFailure is the regression test for the
// failed-Append option leak: a Maintain that errors out mid-Append must
// restore the incremental maintainer's options (alongside the data and rule
// list), so no later maintenance pass silently runs with the failed call's
// options.
func TestPreparedAppendRollsBackOptionsOnFailure(t *testing.T) {
	ds, err := Generate("income", 1200, 5)
	if err != nil {
		t.Fatal(err)
	}
	// A near-zero RemineFactor forces every Append to re-mine, so the bad
	// options below are guaranteed to reach the mining path and fail there.
	p, err := ds.Prepare(PrepareOptions{SampleSize: 16, Seed: 2, RemineFactor: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	batch, err := Generate("income", 300, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Append(batch, Options{K: 3, SampleSize: 16, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	goodOpt := p.inc.Options()
	rowsBefore := p.NumRows()

	// SampleFraction on the query but not on the session: the re-mine runs
	// against prepared state built without a fraction and rejects the
	// mismatch — after SetOptions already happened.
	bad, err := Generate("income", 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Append(bad, Options{K: 3, SampleSize: 16, Seed: 2, SampleFraction: 0.5}); err == nil {
		t.Fatal("append with mismatched SampleFraction should fail")
	}
	if got := p.inc.Options(); !reflect.DeepEqual(got, goodOpt) {
		t.Errorf("failed append leaked options into the maintainer:\n got %+v\nwant %+v", got, goodOpt)
	}
	if p.NumRows() != rowsBefore {
		t.Errorf("failed append grew the session: %d rows, want %d", p.NumRows(), rowsBefore)
	}

	// The session must be fully usable, and a retried Append counts the
	// batch exactly once.
	res, err := p.Append(bad, Options{K: 3, SampleSize: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != rowsBefore+300 {
		t.Errorf("retried append rows = %d, want %d", res.Rows, rowsBefore+300)
	}
}

// TestPreparedAppendRejectsForeignBackend pins that Append validates
// Options.Backend exactly like Mine and Explore do, instead of silently
// running the maintenance pass on the session's substrate.
func TestPreparedAppendRejectsForeignBackend(t *testing.T) {
	ds, err := Generate("flights", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ds.Prepare(PrepareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	batch, err := Generate("flights", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Append(batch, Options{K: 2, Backend: BackendSim}); err == nil {
		t.Error("append on a foreign backend accepted")
	}
	if p.NumRows() != ds.NumRows() {
		t.Errorf("rejected append still grew the session to %d rows", p.NumRows())
	}
	if _, err := p.Append(batch, Options{K: 2, Backend: BackendNative}); err != nil {
		t.Errorf("append naming the session's own backend rejected: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Append(batch, Options{K: 2}); err == nil {
		t.Error("append on a closed session accepted")
	}
}

// TestPreparedQueryMetricsAndStats pins the serving-layer observability
// hooks: every query result carries its private metrics snapshot, and
// Stats() reports session-level lifetime totals.
func TestPreparedQueryMetricsAndStats(t *testing.T) {
	ds, err := Generate("income", 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ds.Prepare(PrepareOptions{SampleSize: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	res, err := p.Mine(Options{K: 3, SampleSize: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics.Counters) == 0 {
		t.Error("query result has no metric counters")
	}
	if res.Metrics.Counters["candidates"] == 0 {
		t.Error("query metrics missing the candidates counter")
	}
	if len(res.Metrics.Phases) == 0 {
		t.Error("query result has no phase timings")
	}
	st := p.Stats()
	if st.Rows != 1500 {
		t.Errorf("stats rows = %d, want 1500", st.Rows)
	}
	if st.Backend != "native" {
		t.Errorf("stats backend = %q, want native", st.Backend)
	}
	if st.PooledDatasets < 1 {
		t.Errorf("stats pooled datasets = %d, want >= 1", st.PooledDatasets)
	}
	if st.PoolLimit < st.PooledDatasets {
		t.Errorf("stats pool limit %d below pooled count %d", st.PoolLimit, st.PooledDatasets)
	}
	if len(st.Lifetime.Counters) == 0 {
		t.Error("stats lifetime counters empty after a query")
	}
	// Lifetime totals must include the operator-level work of finished
	// queries (folded in by QueryScope.Finish), not just engine charges.
	if st.Lifetime.Counters["candidates"] == 0 {
		t.Errorf("stats lifetime missing mining counters: %v", st.Lifetime.Counters)
	}
	if len(st.Lifetime.Phases) == 0 {
		t.Error("stats lifetime has no phase durations")
	}
}

// TestPreparedSpecsAndEpoch pins the canonical-identity contract of a
// session: the dataset source fingerprint is stable across Appends while
// the epoch counts them, equivalent option spellings canonicalize to equal
// query fingerprints, and differing seeds do not.
func TestPreparedSpecsAndEpoch(t *testing.T) {
	ds, err := Generate("income", 1200, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ds.Prepare(PrepareOptions{SampleSize: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	if p.Epoch() != 0 {
		t.Fatalf("fresh session epoch = %d", p.Epoch())
	}
	base := p.DatasetSpec()
	if base.Generator == nil || base.Generator.Name != "income" {
		t.Fatalf("dataset spec lost its generator source: %+v", base)
	}

	// Equivalent spellings canonicalize identically; zero values pick up
	// the documented defaults.
	implicit, err := Options{K: 3, SampleSize: 16, Seed: 2}.Canonical(ds.NumRows())
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := Options{K: 3, SampleSize: 16, Seed: 2, Variant: VariantOptimized, Epsilon: 0.01}.Canonical(ds.NumRows())
	if err != nil {
		t.Fatal(err)
	}
	if implicit.Fingerprint() != explicit.Fingerprint() {
		t.Error("equivalent option spellings produced different fingerprints")
	}
	reseeded, err := Options{K: 3, SampleSize: 16, Seed: 3}.Canonical(ds.NumRows())
	if err != nil {
		t.Fatal(err)
	}
	if reseeded.Fingerprint() == implicit.Fingerprint() {
		t.Error("different seeds produced equal fingerprints")
	}
	if _, err := (Options{Variant: "nope"}).Canonical(ds.NumRows()); err == nil {
		t.Error("bad variant canonicalized without error")
	}

	batch, err := Generate("income", 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Append(batch, Options{K: 2, SampleSize: 16, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if p.Epoch() != 1 {
		t.Errorf("epoch after append = %d, want 1", p.Epoch())
	}
	grown := p.DatasetSpec()
	if grown.Epoch != 1 {
		t.Errorf("dataset spec epoch = %d, want 1", grown.Epoch)
	}
	if grown.Fingerprint() != base.Fingerprint() {
		t.Error("append changed the source fingerprint; only the epoch may move")
	}
	if st := p.Stats(); st.Epoch != 1 || st.Fingerprint == "" {
		t.Errorf("stats = epoch %d fingerprint %q, want epoch 1 and a fingerprint", st.Epoch, st.Fingerprint)
	}
}
