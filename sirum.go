// Package sirum is a Go implementation of SIRUM — Scalable Informative RUle
// Mining (Feng, University of Waterloo, 2016). Given a multidimensional
// dataset with categorical dimension attributes and one numeric measure
// attribute, SIRUM produces a small list of rules — conjunctions of
// attribute values with wildcards — that carry the most information about
// the distribution of the measure, under the maximum-entropy principle.
//
// The package is the public facade over the full system: the miner with all
// of the thesis' optimizations (Rule Coverage Table scaling, inverted-index
// candidate pruning, column-grouped ancestor generation, multi-rule
// insertion, mining on samples), a pluggable execution layer — a native
// multicore backend for real workloads and a simulated Spark-like cluster
// for reproducing the paper's figures (Options.Backend selects one) — and
// the data-cube exploration application. See README.md for a tour.
//
// Quick start:
//
//	ds, _ := sirum.ReadCSVFile("flights.csv", "Delay", "Flight ID")
//	res, _ := ds.Mine(sirum.Options{K: 4})
//	for _, r := range res.Rules {
//	    fmt.Printf("%s  avg=%.1f  count=%d\n", r, r.Avg, r.Count)
//	}
package sirum

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"sirum/internal/datagen"
	"sirum/internal/dataset"
	"sirum/internal/engine"
	"sirum/internal/explore"
	"sirum/internal/maxent"
	"sirum/internal/miner"
	"sirum/internal/rule"
)

// Dataset is a multidimensional relation: categorical dimension attributes
// plus one numeric measure attribute.
type Dataset struct {
	ds *dataset.Dataset
}

// ReadCSV parses a dataset from CSV with a header row. The measure column is
// named explicitly; columns listed in ignore (row ids and such) are dropped;
// every other column becomes a dimension attribute.
func ReadCSV(r io.Reader, measure string, ignore ...string) (*Dataset, error) {
	ds, err := dataset.ReadCSV(r, measure, ignore...)
	if err != nil {
		return nil, err
	}
	return &Dataset{ds: ds}, nil
}

// ReadCSVFile opens path and parses it with ReadCSV.
func ReadCSVFile(path, measure string, ignore ...string) (*Dataset, error) {
	ds, err := dataset.ReadCSVFile(path, measure, ignore...)
	if err != nil {
		return nil, err
	}
	return &Dataset{ds: ds}, nil
}

// WriteCSV writes the dataset with a header row.
func (d *Dataset) WriteCSV(w io.Writer) error { return d.ds.WriteCSV(w) }

// Builder assembles a dataset row by row.
type Builder struct {
	b *dataset.Builder
}

// NewBuilder starts a dataset with the given dimension attribute names and
// measure attribute name.
func NewBuilder(dimNames []string, measureName string) *Builder {
	return &Builder{b: dataset.NewBuilder(dataset.Schema{DimNames: dimNames, MeasureName: measureName})}
}

// Add appends one tuple: one string value per dimension plus the measure.
func (b *Builder) Add(dims []string, measure float64) error { return b.b.Add(dims, measure) }

// Build finalizes the dataset.
func (b *Builder) Build() (*Dataset, error) {
	ds, err := b.b.Build()
	if err != nil {
		return nil, err
	}
	return &Dataset{ds: ds}, nil
}

// Generate returns one of the built-in synthetic evaluation datasets:
// "income", "gdelt", "susy", "tlc" (scaled to rows) or "flights" (the
// thesis' 14-row running example; rows ignored).
func Generate(name string, rows int, seed int64) (*Dataset, error) {
	ds, err := datagen.ByName(name, rows, seed)
	if err != nil {
		return nil, err
	}
	return &Dataset{ds: ds}, nil
}

// NumRows returns the number of tuples.
func (d *Dataset) NumRows() int { return d.ds.NumRows() }

// NumDims returns the number of dimension attributes.
func (d *Dataset) NumDims() int { return d.ds.NumDims() }

// DimNames returns the dimension attribute names.
func (d *Dataset) DimNames() []string { return d.ds.Schema.DimNames }

// MeasureName returns the measure attribute's name.
func (d *Dataset) MeasureName() string { return d.ds.Schema.MeasureName }

// Variant selects a miner implementation; see the thesis' Table 4.2. The
// zero value is VariantOptimized.
type Variant string

// Supported variants.
const (
	VariantOptimized    Variant = "optimized"
	VariantBaseline     Variant = "baseline"
	VariantNaive        Variant = "naive"
	VariantRCT          Variant = "rct"
	VariantFastPruning  Variant = "fastpruning"
	VariantFastAncestor Variant = "fastancestor"
	VariantMultiRule    Variant = "multirule"
)

func (v Variant) internal() (miner.Variant, error) {
	switch v {
	case "", VariantOptimized:
		return miner.Optimized, nil
	case VariantBaseline:
		return miner.Baseline, nil
	case VariantNaive:
		return miner.Naive, nil
	case VariantRCT:
		return miner.RCT, nil
	case VariantFastPruning:
		return miner.FastPruning, nil
	case VariantFastAncestor:
		return miner.FastAncestor, nil
	case VariantMultiRule:
		return miner.MultiRule, nil
	default:
		return 0, fmt.Errorf("sirum: unknown variant %q", v)
	}
}

// Backend selects the execution substrate a mining job runs on.
type Backend string

// Supported backends.
const (
	// BackendNative (the default) runs the dataflow at host speed: real
	// goroutine parallelism with work stealing and no simulation
	// bookkeeping. Result.SimTime is always zero on this backend.
	BackendNative Backend = "native"
	// BackendSim runs the dataflow on the simulated Spark-like cluster the
	// thesis' evaluation models; Result.SimTime reports the simulated
	// cluster clock.
	BackendSim Backend = "sim"
)

// Cluster sizes the execution substrate. For BackendSim the fields shape the
// virtual cluster and its cost model; for BackendNative they only size the
// partition count and optional cache budget. The zero value uses a modest
// in-process cluster.
type Cluster struct {
	Executors        int   // virtual worker nodes (default 4)
	CoresPerExecutor int   // task slots per node (default 2)
	MemoryPerNode    int64 // bytes of cache per node (default: unbounded)
	// PoolLimit is how many prepared datasets the substrate retains across
	// sessions before LRU-evicting (default 8). Servers that multiplex many
	// prepared sessions onto long-lived backends should size this to the
	// number of datasets they expect to keep hot.
	PoolLimit int
}

func (c Cluster) config() engine.Config {
	conf := engine.Config{
		Executors:         c.Executors,
		CoresPerExecutor:  c.CoresPerExecutor,
		MemoryPerExecutor: c.MemoryPerNode,
		PoolLimit:         c.PoolLimit,
	}
	if conf.Executors <= 0 {
		conf.Executors = 4
	}
	if conf.CoresPerExecutor <= 0 {
		conf.CoresPerExecutor = 2
	}
	conf.Partitions = conf.Executors * conf.CoresPerExecutor
	return conf
}

// backend builds the execution substrate for the given kind ("" = native).
func (c Cluster) backend(kind Backend) (engine.Backend, error) {
	conf := c.config()
	switch kind {
	case "", BackendNative:
		// The virtual-cluster shape prices the simulation; a native run
		// partitions for the host instead (see NewNativeBackend).
		conf.Partitions = 0
		return engine.NewNativeBackend(conf), nil
	case BackendSim:
		return engine.NewSimBackend(conf), nil
	default:
		return nil, fmt.Errorf("sirum: unknown backend %q", kind)
	}
}

// Options configures mining. Zero values get the thesis' defaults.
type Options struct {
	// K is the number of rules to mine (beyond the implicit all-wildcards
	// rule). Default 10.
	K int
	// SampleSize is |s| for sample-based candidate pruning; 0 explores all
	// candidate rules exhaustively (only sensible for small data). Default
	// 64 for datasets above 1000 rows, 0 otherwise.
	SampleSize int
	// Variant selects the implementation (default optimized).
	Variant Variant
	// Epsilon is the iterative-scaling convergence threshold (default 0.01).
	Epsilon float64
	// Seed drives sampling (default 1).
	Seed int64
	// SampleFraction in (0,1) mines on a Bernoulli sample of the data
	// ("SIRUM on sample data") and evaluates the result on the full data.
	SampleFraction float64
	// Cluster sizes the execution substrate.
	Cluster Cluster
	// Backend selects the execution substrate (default BackendNative).
	// Both backends produce identical rule lists; they differ only in how
	// the work is executed and accounted.
	Backend Backend
}

// Condition is one non-wildcard attribute constraint of a rule.
type Condition struct {
	Attr  string
	Value string
}

// Rule is a mined informative rule with its display aggregates.
type Rule struct {
	// Conditions lists the constrained attributes in schema order;
	// attributes not listed are wildcards.
	Conditions []Condition
	// Avg is the average measure value over the tuples the rule covers.
	Avg float64
	// Count is the number of covered tuples.
	Count int64
	// Gain is the information-gain estimate at selection time.
	Gain float64
}

// String renders the rule like "(Fri, *, London)" is rendered in the thesis,
// as attr=value pairs: "Day=Fri ∧ Destination=London", or "(*)" for the
// all-wildcards rule.
func (r Rule) String() string {
	if len(r.Conditions) == 0 {
		return "(*)"
	}
	parts := make([]string, len(r.Conditions))
	for i, c := range r.Conditions {
		parts[i] = c.Attr + "=" + c.Value
	}
	return strings.Join(parts, " ∧ ")
}

// Result reports a mining run.
type Result struct {
	Rules []Rule
	// KL is the final Kullback-Leibler divergence between the measure and
	// the maximum-entropy estimates implied by the rules.
	KL float64
	// InfoGain is the information gain of the rule set over knowing only
	// the global average.
	InfoGain float64
	// Iterations of the greedy loop.
	Iterations int
	// WallTime is real elapsed time; SimTime is the simulated-cluster time
	// (always zero under BackendNative; see DESIGN.md on the execution
	// model).
	WallTime, SimTime time.Duration
	// Metrics snapshots this query's private counters and phase timings —
	// what exactly this query cost, isolated from any query running
	// concurrently on the same session.
	Metrics QueryMetrics
}

// QueryMetrics is a serializable per-query snapshot of counters (rows
// scanned, candidates, shuffle traffic, …) and phase durations (candidate
// pruning, iterative scaling, …), keyed by the repository's well-known
// metric names. Durations serialize as nanoseconds.
type QueryMetrics struct {
	Counters  map[string]int64         `json:"counters,omitempty"`
	Phases    map[string]time.Duration `json:"phases_ns,omitempty"`
	SimPhases map[string]time.Duration `json:"sim_phases_ns,omitempty"`
}

// minerOptions translates public options to the internal miner's, applying
// the same defaults whether the job runs cold or against a prepared session
// over a dataset of the given size.
func (o Options) minerOptions(rows int) (miner.Options, error) {
	v, err := o.Variant.internal()
	if err != nil {
		return miner.Options{}, err
	}
	sampleSize := o.SampleSize
	if sampleSize == 0 && rows > 1000 {
		sampleSize = 64
	}
	return miner.Options{
		Variant:            v,
		K:                  o.K,
		SampleSize:         sampleSize,
		Epsilon:            o.Epsilon,
		Seed:               o.Seed,
		SampleFraction:     o.SampleFraction,
		EvaluateOnFullData: o.SampleFraction > 0 && o.SampleFraction < 1,
	}, nil
}

// Mine runs SIRUM cold over the dataset: the execution substrate is built,
// loaded and torn down for this one query. To ask many questions of one
// dataset — different K, variants, priors — Prepare once and query the
// returned Prepared instead.
func (d *Dataset) Mine(opt Options) (*Result, error) {
	mopt, err := opt.minerOptions(d.NumRows())
	if err != nil {
		return nil, err
	}
	cl, err := opt.Cluster.backend(opt.Backend)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	res, err := miner.New(cl, d.ds, mopt).Run()
	if err != nil {
		return nil, err
	}
	return d.publicResult(res), nil
}

func (d *Dataset) publicResult(res *miner.Result) *Result {
	out := &Result{
		KL:         res.KL,
		InfoGain:   res.InfoGain,
		Iterations: res.Iterations,
		WallTime:   res.WallTime,
		SimTime:    res.SimTime,
		Metrics: QueryMetrics{
			Counters:  res.Counters,
			Phases:    res.Phases,
			SimPhases: res.SimPhases,
		},
	}
	for _, mr := range res.Rules {
		out.Rules = append(out.Rules, d.publicRule(mr))
	}
	return out
}

func (d *Dataset) publicRule(mr miner.MinedRule) Rule {
	r := Rule{Avg: mr.Avg, Count: mr.Count, Gain: mr.Gain}
	for j, v := range mr.Rule {
		if v != rule.Wildcard {
			r.Conditions = append(r.Conditions, Condition{
				Attr:  d.ds.Schema.DimNames[j],
				Value: d.ds.Dicts[j].Value(v),
			})
		}
	}
	return r
}

// ExploreOptions configures data-cube exploration (the application of
// Section 5.6.2): the analyst has already seen the GroupBys lowest-
// cardinality single-attribute group-bys, and wants the K most informative
// rules beyond them.
type ExploreOptions struct {
	K        int
	GroupBys int
	Seed     int64
	Cluster  Cluster
	// Backend selects the execution substrate (default BackendNative).
	Backend Backend
}

// ExploreResult carries the recommendations plus the prior the analyst is
// assumed to know.
type ExploreResult struct {
	Prior  []Rule
	Result *Result
}

// Explore recommends informative rules relative to prior knowledge.
func (d *Dataset) Explore(opt ExploreOptions) (*ExploreResult, error) {
	cl, err := opt.Cluster.backend(opt.Backend)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	rec, err := explore.Run(cl, d.ds, explore.Options{
		K: opt.K, GroupBys: opt.GroupBys, Optimized: true, MultiRule: true, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	return d.exploreResult(rec)
}

// Fit computes the maximum-entropy estimate of the measure for each tuple
// given a set of rules expressed as attribute→value conditions (the
// all-wildcards rule is always included first). It returns the estimates and
// the KL divergence from the true measure — the primitive the examples use
// to show what a rule set "says" about the data.
func (d *Dataset) Fit(rules [][]Condition) (estimates []float64, kl float64, err error) {
	tr, work := maxent.NewTransform(d.ds.Measure)
	s := maxent.NewRCTScaler(d.ds, work, len(rules)+1)
	if _, err := s.AddRule(rule.AllWildcards(d.NumDims())); err != nil {
		return nil, 0, err
	}
	for _, conds := range rules {
		r := rule.AllWildcards(d.NumDims())
		for _, c := range conds {
			j := d.ds.Schema.DimIndex(c.Attr)
			if j < 0 {
				return nil, 0, fmt.Errorf("sirum: unknown attribute %q", c.Attr)
			}
			code, ok := d.ds.Dicts[j].Lookup(c.Value)
			if !ok {
				return nil, 0, fmt.Errorf("sirum: value %q not in domain of %s", c.Value, c.Attr)
			}
			r[j] = code
		}
		if _, err := s.AddRule(r); err != nil {
			return nil, 0, err
		}
	}
	estimates = make([]float64, len(work))
	for i, v := range s.Mhat() {
		estimates[i] = tr.Invert(v)
	}
	return estimates, maxent.KLDivergence(work, s.Mhat()), nil
}

// Summary returns a short human-readable description of the dataset.
func (d *Dataset) Summary() string {
	domains := d.ds.DomainSizes()
	sorted := append([]int(nil), domains...)
	sort.Ints(sorted)
	return fmt.Sprintf("%d rows, %d dimension attributes (domains %v), measure %q (mean %.4g)",
		d.NumRows(), d.NumDims(), domains, d.MeasureName(), d.ds.MeanMeasure())
}
