// Package sirum is a Go implementation of SIRUM — Scalable Informative RUle
// Mining (Feng, University of Waterloo, 2016). Given a multidimensional
// dataset with categorical dimension attributes and one numeric measure
// attribute, SIRUM produces a small list of rules — conjunctions of
// attribute values with wildcards — that carry the most information about
// the distribution of the measure, under the maximum-entropy principle.
//
// The package is the public facade over the full system: the miner with all
// of the thesis' optimizations (Rule Coverage Table scaling, inverted-index
// candidate pruning, column-grouped ancestor generation, multi-rule
// insertion, mining on samples), a pluggable execution layer — a native
// multicore backend for real workloads and a simulated Spark-like cluster
// for reproducing the paper's figures (Options.Backend selects one) — and
// the data-cube exploration application. See README.md for a tour.
//
// Quick start:
//
//	ds, _ := sirum.ReadCSVFile("flights.csv", "Delay", "Flight ID")
//	res, _ := ds.Mine(sirum.Options{K: 4})
//	for _, r := range res.Rules {
//	    fmt.Printf("%s  avg=%.1f  count=%d\n", r, r.Avg, r.Count)
//	}
package sirum

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"sirum/internal/datagen"
	"sirum/internal/dataset"
	"sirum/internal/engine"
	"sirum/internal/explore"
	"sirum/internal/maxent"
	"sirum/internal/miner"
	"sirum/internal/rule"
	"sirum/internal/spec"
)

// Dataset is a multidimensional relation: categorical dimension attributes
// plus one numeric measure attribute. Every constructor records the
// dataset's canonical source identity (generator parameters, CSV content
// hash, or a content hash of the built rows), which is what sessions and
// servers use to address cached results and snapshots.
type Dataset struct {
	ds  *dataset.Dataset
	src *spec.DatasetSpec
}

// sourceSpec returns the canonical identity of the dataset's source,
// falling back to a content hash for datasets assembled by internal paths
// that did not record one.
func (d *Dataset) sourceSpec() spec.DatasetSpec {
	if d.src != nil {
		return *d.src
	}
	return spec.DatasetSpec{Version: spec.Version, Content: &spec.ContentSource{SHA256: spec.HashDataset(d.ds)}}
}

// contentHash returns the hash of the dataset's materialized content,
// reusing the one Builder.Build already computed (append batches arrive
// that way) rather than re-hashing the columns.
func (d *Dataset) contentHash() string {
	if d.src != nil && d.src.Content != nil {
		return d.src.Content.SHA256
	}
	return spec.HashDataset(d.ds)
}

// ReadCSV parses a dataset from CSV with a header row. The measure column is
// named explicitly; columns listed in ignore (row ids and such) are dropped;
// every other column becomes a dimension attribute.
func ReadCSV(r io.Reader, measure string, ignore ...string) (*Dataset, error) {
	h := sha256.New()
	ds, err := dataset.ReadCSV(io.TeeReader(r, h), measure, ignore...)
	if err != nil {
		return nil, err
	}
	sorted := append([]string(nil), ignore...)
	sort.Strings(sorted)
	if len(sorted) == 0 {
		sorted = nil
	}
	return &Dataset{ds: ds, src: &spec.DatasetSpec{Version: spec.Version, CSV: &spec.CSVSource{
		SHA256:  hex.EncodeToString(h.Sum(nil)),
		Measure: measure,
		Ignore:  sorted,
	}}}, nil
}

// ReadCSVFile opens path and parses it with ReadCSV.
func ReadCSVFile(path, measure string, ignore ...string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, measure, ignore...)
}

// WriteCSV writes the dataset with a header row.
func (d *Dataset) WriteCSV(w io.Writer) error { return d.ds.WriteCSV(w) }

// Builder assembles a dataset row by row.
type Builder struct {
	b *dataset.Builder
}

// NewBuilder starts a dataset with the given dimension attribute names and
// measure attribute name.
func NewBuilder(dimNames []string, measureName string) *Builder {
	return &Builder{b: dataset.NewBuilder(dataset.Schema{DimNames: dimNames, MeasureName: measureName})}
}

// Add appends one tuple: one string value per dimension plus the measure.
func (b *Builder) Add(dims []string, measure float64) error { return b.b.Add(dims, measure) }

// Build finalizes the dataset. Builder-assembled datasets are identified by
// a hash of their materialized content, there being no external source to
// fingerprint.
func (b *Builder) Build() (*Dataset, error) {
	ds, err := b.b.Build()
	if err != nil {
		return nil, err
	}
	return &Dataset{ds: ds, src: &spec.DatasetSpec{Version: spec.Version, Content: &spec.ContentSource{SHA256: spec.HashDataset(ds)}}}, nil
}

// Generate returns one of the built-in synthetic evaluation datasets:
// "income", "gdelt", "susy", "tlc" (scaled to rows) or "flights" (the
// thesis' 14-row running example; rows ignored).
func Generate(name string, rows int, seed int64) (*Dataset, error) {
	ds, err := datagen.ByName(name, rows, seed)
	if err != nil {
		return nil, err
	}
	return &Dataset{ds: ds, src: &spec.DatasetSpec{Version: spec.Version, Generator: &spec.GeneratorSource{Name: name, Rows: rows, Seed: seed}}}, nil
}

// NumRows returns the number of tuples.
func (d *Dataset) NumRows() int { return d.ds.NumRows() }

// NumDims returns the number of dimension attributes.
func (d *Dataset) NumDims() int { return d.ds.NumDims() }

// DimNames returns the dimension attribute names.
func (d *Dataset) DimNames() []string { return d.ds.Schema.DimNames }

// MeasureName returns the measure attribute's name.
func (d *Dataset) MeasureName() string { return d.ds.Schema.MeasureName }

// Variant selects a miner implementation; see the thesis' Table 4.2. The
// zero value is VariantOptimized.
type Variant string

// Supported variants.
const (
	VariantOptimized    Variant = "optimized"
	VariantBaseline     Variant = "baseline"
	VariantNaive        Variant = "naive"
	VariantRCT          Variant = "rct"
	VariantFastPruning  Variant = "fastpruning"
	VariantFastAncestor Variant = "fastancestor"
	VariantMultiRule    Variant = "multirule"
)

func (v Variant) internal() (miner.Variant, error) {
	switch v {
	case "", VariantOptimized:
		return miner.Optimized, nil
	case VariantBaseline:
		return miner.Baseline, nil
	case VariantNaive:
		return miner.Naive, nil
	case VariantRCT:
		return miner.RCT, nil
	case VariantFastPruning:
		return miner.FastPruning, nil
	case VariantFastAncestor:
		return miner.FastAncestor, nil
	case VariantMultiRule:
		return miner.MultiRule, nil
	default:
		return 0, fmt.Errorf("sirum: unknown variant %q", v)
	}
}

// Backend selects the execution substrate a mining job runs on.
type Backend string

// Supported backends.
const (
	// BackendNative (the default) runs the dataflow at host speed: real
	// goroutine parallelism with work stealing and no simulation
	// bookkeeping. Result.SimTime is always zero on this backend.
	BackendNative Backend = "native"
	// BackendSim runs the dataflow on the simulated Spark-like cluster the
	// thesis' evaluation models; Result.SimTime reports the simulated
	// cluster clock.
	BackendSim Backend = "sim"
)

// Cluster sizes the execution substrate. For BackendSim the fields shape the
// virtual cluster and its cost model; for BackendNative they only size the
// partition count and optional cache budget. The zero value uses a modest
// in-process cluster.
type Cluster struct {
	Executors        int   // virtual worker nodes (default 4)
	CoresPerExecutor int   // task slots per node (default 2)
	MemoryPerNode    int64 // bytes of cache per node (default: unbounded)
	// PoolLimit is how many prepared datasets the substrate retains across
	// sessions before LRU-evicting (default 8). Servers that multiplex many
	// prepared sessions onto long-lived backends should size this to the
	// number of datasets they expect to keep hot.
	PoolLimit int
}

func (c Cluster) config() engine.Config {
	conf := engine.Config{
		Executors:         c.Executors,
		CoresPerExecutor:  c.CoresPerExecutor,
		MemoryPerExecutor: c.MemoryPerNode,
		PoolLimit:         c.PoolLimit,
	}
	if conf.Executors <= 0 {
		conf.Executors = 4
	}
	if conf.CoresPerExecutor <= 0 {
		conf.CoresPerExecutor = 2
	}
	conf.Partitions = conf.Executors * conf.CoresPerExecutor
	return conf
}

// backend builds the execution substrate for the given kind ("" = native).
func (c Cluster) backend(kind Backend) (engine.Backend, error) {
	conf := c.config()
	switch kind {
	case "", BackendNative:
		// The virtual-cluster shape prices the simulation; a native run
		// partitions for the host instead (see NewNativeBackend).
		conf.Partitions = 0
		return engine.NewNativeBackend(conf), nil
	case BackendSim:
		return engine.NewSimBackend(conf), nil
	default:
		return nil, fmt.Errorf("sirum: unknown backend %q", kind)
	}
}

// Options configures mining. Zero values get the thesis' defaults.
type Options struct {
	// K is the number of rules to mine (beyond the implicit all-wildcards
	// rule). Default 10.
	K int
	// SampleSize is |s| for sample-based candidate pruning; 0 explores all
	// candidate rules exhaustively (only sensible for small data). Default
	// 64 for datasets above 1000 rows, 0 otherwise.
	SampleSize int
	// Variant selects the implementation (default optimized).
	Variant Variant
	// Epsilon is the iterative-scaling convergence threshold (default 0.01).
	Epsilon float64
	// Seed drives sampling (default 1).
	Seed int64
	// SampleFraction in (0,1) mines on a Bernoulli sample of the data
	// ("SIRUM on sample data") and evaluates the result on the full data.
	SampleFraction float64
	// Cluster sizes the execution substrate.
	Cluster Cluster
	// Backend selects the execution substrate (default BackendNative).
	// Both backends produce identical rule lists; they differ only in how
	// the work is executed and accounted.
	Backend Backend
}

// Condition is one non-wildcard attribute constraint of a rule.
type Condition struct {
	Attr  string
	Value string
}

// Rule is a mined informative rule with its display aggregates.
type Rule struct {
	// Conditions lists the constrained attributes in schema order;
	// attributes not listed are wildcards.
	Conditions []Condition
	// Avg is the average measure value over the tuples the rule covers.
	Avg float64
	// Count is the number of covered tuples.
	Count int64
	// Gain is the information-gain estimate at selection time.
	Gain float64
}

// String renders the rule like "(Fri, *, London)" is rendered in the thesis,
// as attr=value pairs: "Day=Fri ∧ Destination=London", or "(*)" for the
// all-wildcards rule.
func (r Rule) String() string {
	if len(r.Conditions) == 0 {
		return "(*)"
	}
	parts := make([]string, len(r.Conditions))
	for i, c := range r.Conditions {
		parts[i] = c.Attr + "=" + c.Value
	}
	return strings.Join(parts, " ∧ ")
}

// Result reports a mining run.
type Result struct {
	Rules []Rule
	// KL is the final Kullback-Leibler divergence between the measure and
	// the maximum-entropy estimates implied by the rules.
	KL float64
	// InfoGain is the information gain of the rule set over knowing only
	// the global average.
	InfoGain float64
	// Iterations of the greedy loop.
	Iterations int
	// WallTime is real elapsed time; SimTime is the simulated-cluster time
	// (always zero under BackendNative; see DESIGN.md on the execution
	// model).
	WallTime, SimTime time.Duration
	// Metrics snapshots this query's private counters and phase timings —
	// what exactly this query cost, isolated from any query running
	// concurrently on the same session.
	Metrics QueryMetrics
}

// QueryMetrics is a serializable per-query snapshot of counters (rows
// scanned, candidates, shuffle traffic, …) and phase durations (candidate
// pruning, iterative scaling, …), keyed by the repository's well-known
// metric names. Durations serialize as nanoseconds.
type QueryMetrics struct {
	Counters  map[string]int64         `json:"counters,omitempty"`
	Phases    map[string]time.Duration `json:"phases_ns,omitempty"`
	SimPhases map[string]time.Duration `json:"sim_phases_ns,omitempty"`
}

// Canonical normalizes the options for a dataset of the given size into
// their canonical query spec: defaults applied (the thesis' evaluation
// settings), the variant validated and spelled out. Two Options values that
// mean the same query — regardless of which zero values the caller left
// unset — canonicalize to specs with equal fingerprints, which is the
// identity result caches and request logs key on.
func (o Options) Canonical(rows int) (spec.QuerySpec, error) {
	if _, err := o.Variant.internal(); err != nil {
		return spec.QuerySpec{}, err
	}
	variant := o.Variant
	if variant == "" {
		variant = VariantOptimized
	}
	q := spec.QuerySpec{
		Version:        spec.Version,
		Kind:           spec.KindMine,
		K:              o.K,
		SampleSize:     o.SampleSize,
		Variant:        string(variant),
		Epsilon:        o.Epsilon,
		Seed:           o.Seed,
		SampleFraction: o.SampleFraction,
	}
	if q.K <= 0 {
		q.K = 10
	}
	if q.SampleSize == 0 && rows > 1000 {
		q.SampleSize = 64
	}
	if q.Epsilon <= 0 {
		q.Epsilon = 0.01
	}
	if q.Seed == 0 {
		q.Seed = 1
	}
	return q, nil
}

// minerOptions translates public options to the internal miner's via the
// canonical spec, so the defaults live in exactly one place whether the job
// runs cold, against a prepared session, or is being fingerprinted for a
// cache.
func (o Options) minerOptions(rows int) (miner.Options, error) {
	q, err := o.Canonical(rows)
	if err != nil {
		return miner.Options{}, err
	}
	v, err := Variant(q.Variant).internal()
	if err != nil {
		return miner.Options{}, err
	}
	return miner.Options{
		Variant:            v,
		K:                  q.K,
		SampleSize:         q.SampleSize,
		Epsilon:            q.Epsilon,
		Seed:               q.Seed,
		SampleFraction:     q.SampleFraction,
		EvaluateOnFullData: q.SampleFraction > 0 && q.SampleFraction < 1,
	}, nil
}

// Mine runs SIRUM cold over the dataset: the execution substrate is built,
// loaded and torn down for this one query. To ask many questions of one
// dataset — different K, variants, priors — Prepare once and query the
// returned Prepared instead.
func (d *Dataset) Mine(opt Options) (*Result, error) {
	mopt, err := opt.minerOptions(d.NumRows())
	if err != nil {
		return nil, err
	}
	cl, err := opt.Cluster.backend(opt.Backend)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	res, err := miner.New(cl, d.ds, mopt).Run()
	if err != nil {
		return nil, err
	}
	return d.publicResult(res), nil
}

func (d *Dataset) publicResult(res *miner.Result) *Result {
	out := &Result{
		KL:         res.KL,
		InfoGain:   res.InfoGain,
		Iterations: res.Iterations,
		WallTime:   res.WallTime,
		SimTime:    res.SimTime,
		Metrics: QueryMetrics{
			Counters:  res.Counters,
			Phases:    res.Phases,
			SimPhases: res.SimPhases,
		},
	}
	for _, mr := range res.Rules {
		out.Rules = append(out.Rules, d.publicRule(mr))
	}
	return out
}

func (d *Dataset) publicRule(mr miner.MinedRule) Rule {
	r := Rule{Avg: mr.Avg, Count: mr.Count, Gain: mr.Gain}
	for j, v := range mr.Rule {
		if v != rule.Wildcard {
			r.Conditions = append(r.Conditions, Condition{
				Attr:  d.ds.Schema.DimNames[j],
				Value: d.ds.Dicts[j].Value(v),
			})
		}
	}
	return r
}

// ExploreOptions configures data-cube exploration (the application of
// Section 5.6.2): the analyst has already seen the GroupBys lowest-
// cardinality single-attribute group-bys, and wants the K most informative
// rules beyond them.
type ExploreOptions struct {
	K        int
	GroupBys int
	Seed     int64
	Cluster  Cluster
	// Backend selects the execution substrate (default BackendNative).
	Backend Backend
}

// Canonical normalizes exploration options into their canonical query
// spec, mirroring Options.Canonical: defaults applied, stable encoding,
// fingerprintable. Exploration always runs the optimized multi-rule miner
// without candidate pruning (Section 5.6.2), so kind plus K/GroupBys/Seed
// fully determine the answer.
func (o ExploreOptions) Canonical() spec.QuerySpec {
	q := spec.QuerySpec{
		Version:  spec.Version,
		Kind:     spec.KindExplore,
		K:        o.K,
		Variant:  string(VariantOptimized),
		Epsilon:  0.01,
		Seed:     o.Seed,
		GroupBys: o.GroupBys,
	}
	if q.K <= 0 {
		q.K = 10
	}
	if q.GroupBys <= 0 {
		q.GroupBys = 2
	}
	if q.Seed == 0 {
		q.Seed = 1
	}
	return q
}

// ExploreResult carries the recommendations plus the prior the analyst is
// assumed to know.
type ExploreResult struct {
	Prior  []Rule
	Result *Result
}

// Explore recommends informative rules relative to prior knowledge.
func (d *Dataset) Explore(opt ExploreOptions) (*ExploreResult, error) {
	cl, err := opt.Cluster.backend(opt.Backend)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	rec, err := explore.Run(cl, d.ds, explore.Options{
		K: opt.K, GroupBys: opt.GroupBys, Optimized: true, MultiRule: true, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	return d.exploreResult(rec)
}

// Fit computes the maximum-entropy estimate of the measure for each tuple
// given a set of rules expressed as attribute→value conditions (the
// all-wildcards rule is always included first). It returns the estimates and
// the KL divergence from the true measure — the primitive the examples use
// to show what a rule set "says" about the data.
func (d *Dataset) Fit(rules [][]Condition) (estimates []float64, kl float64, err error) {
	tr, work := maxent.NewTransform(d.ds.Measure)
	s := maxent.NewRCTScaler(d.ds, work, len(rules)+1)
	if _, err := s.AddRule(rule.AllWildcards(d.NumDims())); err != nil {
		return nil, 0, err
	}
	for _, conds := range rules {
		r := rule.AllWildcards(d.NumDims())
		for _, c := range conds {
			j := d.ds.Schema.DimIndex(c.Attr)
			if j < 0 {
				return nil, 0, fmt.Errorf("sirum: unknown attribute %q", c.Attr)
			}
			code, ok := d.ds.Dicts[j].Lookup(c.Value)
			if !ok {
				return nil, 0, fmt.Errorf("sirum: value %q not in domain of %s", c.Value, c.Attr)
			}
			r[j] = code
		}
		if _, err := s.AddRule(r); err != nil {
			return nil, 0, err
		}
	}
	estimates = make([]float64, len(work))
	for i, v := range s.Mhat() {
		estimates[i] = tr.Invert(v)
	}
	return estimates, maxent.KLDivergence(work, s.Mhat()), nil
}

// Summary returns a short human-readable description of the dataset.
func (d *Dataset) Summary() string {
	domains := d.ds.DomainSizes()
	sorted := append([]int(nil), domains...)
	sort.Ints(sorted)
	return fmt.Sprintf("%d rows, %d dimension attributes (domains %v), measure %q (mean %.4g)",
		d.NumRows(), d.NumDims(), domains, d.MeasureName(), d.ds.MeanMeasure())
}
