// Benchmarks regenerating the thesis' tables and figures, one testing.B
// target per experiment id (DESIGN.md §4 maps each to its figure). They run
// the experiment harness in quick mode at a large scale divisor so the whole
// suite finishes in minutes; cmd/sirumbench runs the same experiments at
// full scale.
//
// Benchmark output also reports the key derived metric of each figure
// (speedup factor, pair counts, information gain) so bench logs double as a
// shape record.
package sirum

import (
	"strconv"
	"strings"
	"testing"

	"sirum/internal/experiments"
)

func benchCfg() experiments.Config {
	return experiments.Config{Scale: 50000, Quick: true, Seed: 1, Executors: 4, Cores: 2}
}

// runExperiment executes one experiment per benchmark iteration and reports
// a headline metric extracted from the named column of the first table. The
// experiment harness replays whole evaluation scenarios, so these targets
// are gated behind -short: `go test -short -bench .` runs only the direct
// API benchmarks, which is the CI-friendly tiny-scale subset.
func runExperiment(b *testing.B, id string, metricCol string) {
	b.Helper()
	if testing.Short() {
		b.Skipf("experiment %s skipped in -short mode", id)
	}
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 && metricCol != "" {
			reportColumn(b, tables[0], metricCol)
		}
	}
}

// reportColumn publishes the last row's value of the named column as a
// benchmark metric.
func reportColumn(b *testing.B, t *experiments.Table, col string) {
	b.Helper()
	idx := -1
	for i, h := range t.Header {
		if h == col {
			idx = i
		}
	}
	if idx < 0 || len(t.Rows) == 0 {
		return
	}
	raw := strings.TrimSuffix(t.Rows[len(t.Rows)-1][idx], "x")
	raw = strings.TrimSuffix(raw, "%")
	if v, err := strconv.ParseFloat(raw, 64); err == nil {
		b.ReportMetric(v, col)
	}
}

func BenchmarkTable1_2(b *testing.B) { runExperiment(b, "table-1.2", "") }
func BenchmarkTable4_1(b *testing.B) { runExperiment(b, "table-4.1", "") }
func BenchmarkFig3_1(b *testing.B)   { runExperiment(b, "fig-3.1", "total_s") }
func BenchmarkFig3_2(b *testing.B)   { runExperiment(b, "fig-3.2", "ancestors_%") }
func BenchmarkFig4_3(b *testing.B)   { runExperiment(b, "fig-4.3", "spill_MB") }
func BenchmarkFig4_4(b *testing.B)   { runExperiment(b, "fig-4.4", "total_s") }
func BenchmarkFig5_1(b *testing.B)   { runExperiment(b, "fig-5.1", "sim_s") }
func BenchmarkFig5_2(b *testing.B)   { runExperiment(b, "fig-5.2", "sim_s") }
func BenchmarkFig5_3(b *testing.B)   { runExperiment(b, "fig-5.3", "speedup") }
func BenchmarkFig5_4(b *testing.B)   { runExperiment(b, "fig-5.4", "speedup") }
func BenchmarkFig5_5(b *testing.B)   { runExperiment(b, "fig-5.5", "speedup") }
func BenchmarkFig5_6(b *testing.B)   { runExperiment(b, "fig-5.6", "speedup") }
func BenchmarkFig5_7(b *testing.B)   { runExperiment(b, "fig-5.7", "speedup") }
func BenchmarkFig5_8(b *testing.B)   { runExperiment(b, "fig-5.8", "") }
func BenchmarkFig5_9(b *testing.B)   { runExperiment(b, "fig-5.9", "") }
func BenchmarkFig5_10(b *testing.B)  { runExperiment(b, "fig-5.10", "") }
func BenchmarkFig5_11(b *testing.B)  { runExperiment(b, "fig-5.11", "") }
func BenchmarkFig5_12(b *testing.B)  { runExperiment(b, "fig-5.12", "speedup") }
func BenchmarkFig5_13(b *testing.B)  { runExperiment(b, "fig-5.13", "speedup") }
func BenchmarkFig5_14(b *testing.B)  { runExperiment(b, "fig-5.14", "improvement_%") }
func BenchmarkFig5_15(b *testing.B)  { runExperiment(b, "fig-5.15", "total_s") }
func BenchmarkFig5_16(b *testing.B)  { runExperiment(b, "fig-5.16", "") }
func BenchmarkFig5_17(b *testing.B)  { runExperiment(b, "fig-5.17", "sim_s") }
func BenchmarkFig5_18(b *testing.B)  { runExperiment(b, "fig-5.18", "info_gain_full_data") }
func BenchmarkFig5_19(b *testing.B)  { runExperiment(b, "fig-5.19", "info_gain_full_data") }
func BenchmarkAblationColumnGroups(b *testing.B) {
	runExperiment(b, "ablation-groups", "")
}
func BenchmarkAblationRedundant(b *testing.B) {
	runExperiment(b, "ablation-redundant", "")
}

// reportRowsPerSec publishes dataset-rows-processed-per-second, the common
// throughput unit across the direct mining benchmarks (and the BENCH_*.json
// trajectory).
func reportRowsPerSec(b *testing.B, rows int) {
	b.Helper()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(rows)*float64(b.N)/s, "rows/s")
	}
}

// BenchmarkMineOptimized benchmarks the public API end to end on a mid-size
// synthetic dataset — the number a downstream user would measure first.
func BenchmarkMineOptimized(b *testing.B) {
	const rows = 5000
	ds, err := Generate("gdelt", rows, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ds.Mine(Options{K: 5, SampleSize: 16, Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.InfoGain, "info_gain")
		}
	}
	reportRowsPerSec(b, rows)
}

// benchBackendMine runs one mining job on the given substrate. The sim run
// models the thesis' cluster shape (16 executors × 24 cores → 384
// partitions); the native run executes the same job the way a native user
// gets it — host-tuned partitioning, no virtual-clock list scheduling or
// per-task timing, slice-bucket shuffles, no byte-volume accounting. The
// wall-clock ratio is therefore the end-to-end price of simulating that
// cluster versus just answering the query.
func benchBackendMine(b *testing.B, backend Backend) {
	const rows = 20000
	ds, err := Generate("gdelt", rows, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ds.Mine(Options{
			K: 5, SampleSize: 16, Seed: 2,
			Backend: backend,
			Cluster: Cluster{Executors: 16, CoresPerExecutor: 24},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(res.InfoGain, "info_gain")
		}
	}
	reportRowsPerSec(b, rows)
}

// BenchmarkMineSimBackend is the simulated-cluster path of the backend
// comparison; BenchmarkMineNativeBackend is the native path of the same job.
func BenchmarkMineSimBackend(b *testing.B)    { benchBackendMine(b, BackendSim) }
func BenchmarkMineNativeBackend(b *testing.B) { benchBackendMine(b, BackendNative) }

// preparedJob is the shared workload of the cold-vs-prepared pair.
func preparedJob() Options { return Options{K: 5, SampleSize: 32, Seed: 2} }

// BenchmarkMineCold is one full cold query on the native backend: substrate
// construction, data load, measure transform, sample draw, and a mining run
// that recomputes candidate pruning every iteration — what every
// Dataset.Mine pays.
func BenchmarkMineCold(b *testing.B) {
	const rows = 20000
	ds, err := Generate("gdelt", rows, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.Mine(preparedJob()); err != nil {
			b.Fatal(err)
		}
	}
	reportRowsPerSec(b, rows)
}

// BenchmarkMinePrepared is the same job as BenchmarkMineCold asked of a
// prepared session (the first warm-up query runs outside the timer): blocks,
// transform, sample, index and the memoized candidate structure are all
// reused, so each iteration measures what the second and later queries of an
// interactive session cost.
func BenchmarkMinePrepared(b *testing.B) {
	const rows = 20000
	ds, err := Generate("gdelt", rows, 1)
	if err != nil {
		b.Fatal(err)
	}
	p, err := ds.Prepare(PrepareOptions{SampleSize: 32, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Mine(preparedJob()); err != nil { // warm: builds the LCA memo
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Mine(preparedJob()); err != nil {
			b.Fatal(err)
		}
	}
	reportRowsPerSec(b, rows)
}

// BenchmarkMineBaseline is the same job on the unoptimized baseline, so the
// two public-API benchmarks show the paper's headline speedup directly.
func BenchmarkMineBaseline(b *testing.B) {
	const rows = 5000
	ds, err := Generate("gdelt", rows, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ds.Mine(Options{K: 5, SampleSize: 16, Seed: 2, Variant: VariantBaseline}); err != nil {
			b.Fatal(err)
		}
	}
	reportRowsPerSec(b, rows)
}
