// Package explore implements the smart data-cube exploration application of
// Sections 1 and 5.6.2 (after Sarawagi's user-cognizant multidimensional
// analysis [29]): the analyst has already examined the results of some
// group-by queries; SIRUM treats those cells as prior knowledge and
// recommends the k rules carrying the most information beyond what the
// analyst has seen.
//
// Exploration mines without sample pruning, so every run walks the full
// exhaustive cube — the heaviest pipeline in the repository. On packable
// schemas the miner runs it over arena-recycled cube.PackedTables (flat
// open-addressing round state instead of per-stage Go maps), which is what
// keeps a prepared session's repeated explores allocation-free in steady
// state; see the cube package doc.
package explore

import (
	"fmt"

	"sirum/internal/dataset"
	"sirum/internal/engine"
	"sirum/internal/miner"
	"sirum/internal/rule"
)

// Options configures an exploration run.
type Options struct {
	// K recommendations to produce.
	K int
	// GroupBys is the number of already-examined group-by queries; the
	// thesis uses the two with the lowest cardinality (smallest active
	// domains). Cells of those group-bys become prior rules.
	GroupBys int
	// Optimizations: when false, the run reproduces the straightforward
	// distributed implementation of prior work — reset-style iterative
	// scaling, single-stage cube, one rule per iteration. When true, the
	// run uses SIRUM's RCT scaler, column grouping and multi-rule
	// insertion. Candidate pruning is never used here, matching Section
	// 5.6.2 ("it was not originally implemented in [29]").
	Optimized bool
	// MultiRule enables two-rules-per-iteration when Optimized (Figure 5.15
	// also reports Optimized without multi-rule).
	MultiRule bool
	Epsilon   float64
	Seed      int64
}

// Recommendation is the exploration output.
type Recommendation struct {
	PriorRules []rule.Rule
	Result     *miner.Result
}

// PriorKnowledge derives the prior rule list: for each of the n
// lowest-cardinality dimension attributes, every cell of its single-
// attribute group-by (one rule per active domain value).
func PriorKnowledge(ds *dataset.Dataset, n int) []rule.Rule {
	order := ds.DimsByDomainSize()
	if n > len(order) {
		n = len(order)
	}
	var rules []rule.Rule
	for _, j := range order[:n] {
		for v := 0; v < ds.Dicts[j].Size(); v++ {
			r := rule.AllWildcards(ds.NumDims())
			r[j] = int32(v)
			if r.SupportSize(ds) == 0 {
				continue // dictionary value absent from this subset
			}
			rules = append(rules, r)
		}
	}
	return rules
}

// minerOptions translates an exploration scenario over ds into a mining job
// plus the prior rule list it seeds.
func minerOptions(ds *dataset.Dataset, opt Options) (miner.Options, []rule.Rule) {
	if opt.K <= 0 {
		opt.K = 10
	}
	if opt.GroupBys <= 0 {
		opt.GroupBys = 2
	}
	prior := PriorKnowledge(ds, opt.GroupBys)
	mopt := miner.Options{
		K:          opt.K,
		SampleSize: 0, // exhaustive: prior work had no candidate pruning
		Epsilon:    opt.Epsilon,
		Seed:       opt.Seed,
		PriorRules: prior,
	}
	if opt.Optimized {
		if opt.MultiRule {
			mopt.Variant = miner.Optimized
		} else {
			mopt.Variant = miner.RCT
			mopt.ColumnGroups = 2
		}
	} else {
		mopt.Variant = miner.Baseline
		mopt.ResetScaling = true // [29] re-scales all multipliers from scratch
	}
	return mopt, prior
}

// Run executes the exploration scenario cold on the given backend.
func Run(c engine.Backend, ds *dataset.Dataset, opt Options) (*Recommendation, error) {
	mopt, prior := minerOptions(ds, opt)
	res, err := miner.New(c, ds, mopt).Run()
	if err != nil {
		return nil, fmt.Errorf("explore: %w", err)
	}
	return &Recommendation{PriorRules: prior, Result: res}, nil
}

// RunPrepared executes the exploration scenario as one query against a
// prepared mining session, reusing its loaded blocks and measure transform.
// Safe to call concurrently with other queries on the same Prep.
func RunPrepared(p *miner.Prep, opt Options) (*Recommendation, error) {
	mopt, prior := minerOptions(p.Dataset(), opt)
	res, err := p.Mine(mopt)
	if err != nil {
		return nil, fmt.Errorf("explore: %w", err)
	}
	return &Recommendation{PriorRules: prior, Result: res}, nil
}
