package explore

import (
	"testing"

	"sirum/internal/datagen"
	"sirum/internal/engine"
	"sirum/internal/metrics"
	"sirum/internal/rule"
)

func testCluster() *engine.SimBackend {
	return engine.NewSimBackend(engine.Config{Executors: 2, CoresPerExecutor: 2, Partitions: 4})
}

func TestPriorKnowledge(t *testing.T) {
	ds := datagen.Flights()
	// Lowest-cardinality attribute is Origin (6 values); Day and
	// Destination have 7. With n=2 the prior covers Origin and Day.
	prior := PriorKnowledge(ds, 2)
	if len(prior) != 6+7 {
		t.Fatalf("prior rules = %d, want 13", len(prior))
	}
	for _, r := range prior {
		if r.Level() != 1 {
			t.Errorf("prior rule %v is not a single-attribute cell", r)
		}
		if r.SupportSize(ds) == 0 {
			t.Errorf("prior rule %v has empty support", r)
		}
	}
	if got := PriorKnowledge(ds, 99); len(got) == 0 {
		t.Error("oversized n should clamp, not fail")
	}
}

func TestRunRecommendsBeyondPrior(t *testing.T) {
	ds := datagen.GDELT(1500, 7)
	c := testCluster()
	defer c.Close()
	rec, err := Run(c, ds, Options{K: 3, GroupBys: 2, Optimized: true, MultiRule: false, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Result.Rules) == 0 {
		t.Fatal("no recommendations")
	}
	priorKeys := map[string]bool{}
	for _, r := range rec.PriorRules {
		priorKeys[r.Key()] = true
	}
	for _, mr := range rec.Result.Rules {
		if priorKeys[mr.Rule.Key()] {
			t.Errorf("recommended a rule the analyst already saw: %v", mr.Rule)
		}
		if mr.Rule.Equal(rule.AllWildcards(ds.NumDims())) {
			t.Error("recommended the all-wildcards rule")
		}
	}
	if rec.Result.InfoGain <= 0 {
		t.Errorf("info gain = %v", rec.Result.InfoGain)
	}
}

// TestOptimizedBeatsPriorWorkStyle reproduces the shape of Figure 5.15: the
// optimized run spends fewer scaling loops than the reset-style baseline,
// while reaching a comparable fit.
func TestOptimizedBeatsPriorWorkStyle(t *testing.T) {
	ds := datagen.GDELT(1200, 9)
	run := func(optimized bool) (*Recommendation, map[string]int64) {
		c := testCluster()
		defer c.Close()
		rec, err := Run(c, ds, Options{K: 3, GroupBys: 2, Optimized: optimized, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		// Counters are scoped per query now; the run's own snapshot is the
		// authoritative source (the backend registry keeps substrate-level
		// totals only).
		return rec, rec.Result.Counters
	}
	_, baseCtr := run(false)
	_, optCtr := run(true)
	if optCtr[metrics.CtrScalingLoops] >= baseCtr[metrics.CtrScalingLoops] {
		t.Errorf("optimized loops %d not fewer than reset-style %d",
			optCtr[metrics.CtrScalingLoops], baseCtr[metrics.CtrScalingLoops])
	}
}

func TestRunDefaults(t *testing.T) {
	ds := datagen.Flights()
	c := testCluster()
	defer c.Close()
	rec, err := Run(c, ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.PriorRules) == 0 {
		t.Error("defaults produced no prior rules")
	}
}
