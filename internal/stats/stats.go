// Package stats provides deterministic random sampling and small descriptive
// statistics helpers used by the dataset generators and the experiment
// harness.
package stats

import (
	"math"
	"math/rand"
	"sort"
)

// NewRand returns a deterministic *rand.Rand for the given seed. All
// randomness in the repository flows through explicitly seeded generators so
// experiments are reproducible.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Zipf draws values in [0, n) with a Zipfian (power-law) distribution of
// exponent s >= 1. It wraps math/rand's sampler; s close to 1 gives the
// classic heavy skew seen in real categorical columns.
type Zipf struct {
	z *rand.Zipf
	n int
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s (s > 1).
func NewZipf(r *rand.Rand, s float64, n int) *Zipf {
	if n <= 0 {
		panic("stats: Zipf over empty domain")
	}
	if s <= 1 {
		s = 1.0001
	}
	return &Zipf{z: rand.NewZipf(r, s, 1, uint64(n-1)), n: n}
}

// Draw returns the next sample.
func (z *Zipf) Draw() int { return int(z.z.Uint64()) }

// N returns the domain size.
func (z *Zipf) N() int { return z.n }

// ReservoirSample returns k indices drawn uniformly without replacement from
// [0, n) using reservoir sampling (Algorithm R). If k >= n it returns all of
// [0, n). The result is sorted.
func ReservoirSample(r *rand.Rand, n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	res := make([]int, k)
	for i := 0; i < k; i++ {
		res[i] = i
	}
	for i := k; i < n; i++ {
		j := r.Intn(i + 1)
		if j < k {
			res[j] = i
		}
	}
	sort.Ints(res)
	return res
}

// BernoulliSample returns the indices i in [0, n) kept by independent coin
// flips with probability p, in increasing order.
func BernoulliSample(r *rand.Rand, n int, p float64) []int {
	if p <= 0 {
		return nil
	}
	if p >= 1 {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, int(float64(n)*p)+16)
	for i := 0; i < n; i++ {
		if r.Float64() < p {
			out = append(out, i)
		}
	}
	return out
}

// Summary holds descriptive statistics of a float64 slice.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P90, P99 float64
	Sum           float64
}

// Summarize computes descriptive statistics. It returns the zero Summary for
// empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.N))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile returns the p-quantile (0 <= p <= 1) of an already-sorted slice
// using nearest-rank interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// TrimmedMean drops the single highest and single lowest value and averages
// the rest, matching the thesis' "repeat five times, drop highest and lowest,
// average the remaining three" protocol. With fewer than 3 values it falls
// back to the plain mean.
func TrimmedMean(xs []float64) float64 {
	if len(xs) < 3 {
		return Mean(xs)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Mean(sorted[1 : len(sorted)-1])
}
