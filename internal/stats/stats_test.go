package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(1)
	z := NewZipf(r, 1.5, 100)
	if z.N() != 100 {
		t.Fatalf("N = %d", z.N())
	}
	counts := make([]int, 100)
	const draws = 20000
	for i := 0; i < draws; i++ {
		v := z.Draw()
		if v < 0 || v >= 100 {
			t.Fatalf("draw %d out of range", v)
		}
		counts[v]++
	}
	// Value 0 must dominate value 50 heavily in a Zipf distribution.
	if counts[0] < 10*counts[50]+1 {
		t.Errorf("distribution not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
}

func TestZipfClampsExponent(t *testing.T) {
	z := NewZipf(NewRand(1), 0.5, 10) // s <= 1 is clamped, must not panic
	_ = z.Draw()
}

func TestZipfEmptyDomainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(0) did not panic")
		}
	}()
	NewZipf(NewRand(1), 2, 0)
}

func TestReservoirSample(t *testing.T) {
	r := NewRand(7)
	got := ReservoirSample(r, 1000, 50)
	if len(got) != 50 {
		t.Fatalf("len = %d, want 50", len(got))
	}
	seen := map[int]bool{}
	prev := -1
	for _, v := range got {
		if v < 0 || v >= 1000 {
			t.Fatalf("index %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate index %d", v)
		}
		if v <= prev {
			t.Fatalf("not sorted: %v", got)
		}
		seen[v] = true
		prev = v
	}
}

func TestReservoirSampleKTooLarge(t *testing.T) {
	got := ReservoirSample(NewRand(1), 5, 10)
	if len(got) != 5 {
		t.Fatalf("len = %d, want 5", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want identity", got)
		}
	}
}

func TestReservoirSampleUniform(t *testing.T) {
	// Each index should be selected with probability k/n; check rough
	// uniformity across many trials.
	const n, k, trials = 20, 5, 4000
	counts := make([]int, n)
	r := NewRand(3)
	for tr := 0; tr < trials; tr++ {
		for _, v := range ReservoirSample(r, n, k) {
			counts[v]++
		}
	}
	want := float64(trials) * float64(k) / float64(n)
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.2 {
			t.Errorf("index %d selected %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestBernoulliSample(t *testing.T) {
	r := NewRand(11)
	got := BernoulliSample(r, 10000, 0.1)
	if len(got) < 800 || len(got) > 1200 {
		t.Errorf("10%% sample of 10000 returned %d rows", len(got))
	}
	if len(BernoulliSample(r, 100, 0)) != 0 {
		t.Error("p=0 sample not empty")
	}
	if len(BernoulliSample(r, 100, 1)) != 100 {
		t.Error("p=1 sample not full")
	}
	if len(BernoulliSample(r, 100, -0.5)) != 0 {
		t.Error("negative p sample not empty")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Sum != 15 {
		t.Errorf("unexpected summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Errorf("Std = %v, want sqrt(2)", s.Std)
	}
	if s.P50 != 3 {
		t.Errorf("P50 = %v, want 3", s.P50)
	}
	zero := Summarize(nil)
	if zero.N != 0 {
		t.Errorf("empty summary %+v", zero)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct {
		p, want float64
	}{{0, 10}, {1, 40}, {0.5, 25}, {-1, 10}, {2, 40}}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile != 0")
	}
}

func TestTrimmedMean(t *testing.T) {
	// Five runs: drop highest and lowest, average middle three.
	got := TrimmedMean([]float64{100, 1, 2, 3, 50})
	want := (2.0 + 3.0 + 50.0) / 3.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("TrimmedMean = %v, want %v", got, want)
	}
	if TrimmedMean([]float64{4, 6}) != 5 {
		t.Error("short input should fall back to mean")
	}
	if TrimmedMean(nil) != 0 {
		t.Error("empty input should be 0")
	}
}

func TestQuickPercentileWithinRange(t *testing.T) {
	f := func(vals []float64, p float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		pp := math.Mod(math.Abs(p), 1)
		got := Percentile(sorted, pp)
		s := Summarize(vals)
		return got >= s.Min-1e-9 && got <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickReservoirNoDuplicates(t *testing.T) {
	f := func(seed int64, n16, k16 uint16) bool {
		n := int(n16)%500 + 1
		k := int(k16)%500 + 1
		got := ReservoirSample(NewRand(seed), n, k)
		if len(got) != min(n, k) {
			return false
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
