package candgen

import (
	"math"
	"testing"
	"testing/quick"

	"sirum/internal/cube"
	"sirum/internal/datagen"
	"sirum/internal/dataset"
	"sirum/internal/engine"
	"sirum/internal/maxent"
	"sirum/internal/metrics"
	"sirum/internal/rule"
	"sirum/internal/stats"
)

func newTestCluster() *engine.SimBackend {
	return engine.NewSimBackend(engine.Config{Executors: 2, CoresPerExecutor: 2, Partitions: 4})
}

// flightData caches the flight dataset in an engine and returns the handles.
func flightData(t *testing.T, c engine.Backend) (*dataset.Dataset, *engine.CachedData, []float64) {
	t.Helper()
	ds := datagen.Flights()
	_, work := maxent.NewTransform(ds.Measure)
	mhat := make([]float64, len(work))
	avg := ds.MeanMeasure()
	for i := range mhat {
		mhat[i] = avg // estimates after the all-wildcards rule
	}
	blocks := engine.BlocksFromColumns(ds.Dims, work, mhat, 3)
	cd, err := engine.CacheTuples(c, blocks)
	if err != nil {
		t.Fatal(err)
	}
	return ds, cd, work
}

func TestDrawSample(t *testing.T) {
	ds := datagen.Flights()
	s := DrawSample(ds, stats.NewRand(1), 4)
	if s.Size() != 4 || s.D != 3 {
		t.Fatalf("sample size=%d d=%d", s.Size(), s.D)
	}
	if s.Bytes() != 4*3*4 {
		t.Errorf("Bytes = %d", s.Bytes())
	}
	big := DrawSample(ds, stats.NewRand(1), 100)
	if big.Size() != 14 {
		t.Errorf("oversized sample = %d", big.Size())
	}
}

func TestMatchCount(t *testing.T) {
	ds := datagen.Flights()
	s := &Sample{D: 3, Domains: ds.DomainSizes()}
	r0, _ := ds.Row(3, nil) // (Sun, Chicago, London)
	r1, _ := ds.Row(8, nil) // (Thu, SF, Frankfurt)
	s.Rows = [][]int32{r0, r1}
	all := rule.AllWildcards(3)
	if s.MatchCount(all) != 2 {
		t.Error("all-wildcards should match both")
	}
	london, _ := rule.Parse([]string{"*", "*", "London"}, ds)
	if s.MatchCount(london) != 1 {
		t.Error("(*,*,London) should match one sample tuple")
	}
	sf, _ := rule.Parse([]string{"Fri", "London", "LA"}, ds)
	if s.MatchCount(sf) != 0 {
		t.Error("unrelated rule should match none")
	}
}

func TestBuildIndex(t *testing.T) {
	ds := datagen.Flights()
	s := DrawSample(ds, stats.NewRand(7), 5)
	ix := BuildIndex(s)
	// Every sample row must be findable through each of its attributes.
	for si, row := range s.Rows {
		for j, v := range row {
			found := false
			for _, p := range ix.Posting(j, v) {
				if int(p) == si {
					found = true
				}
			}
			if !found {
				t.Fatalf("sample row %d not in posting for attr %d value %d", si, j, v)
			}
		}
	}
	if ix.Posting(0, -5) != nil || ix.Posting(0, 1<<20) != nil {
		t.Error("out-of-range postings should be nil")
	}
	if ix.Bytes() <= 0 {
		t.Error("index bytes not estimated")
	}
}

// TestIndexedEqualsNaive is the equivalence property of Section 4.2: both
// LCA strategies produce identical aggregates.
func TestIndexedEqualsNaive(t *testing.T) {
	c1, c2 := newTestCluster(), newTestCluster()
	defer c1.Close()
	defer c2.Close()
	ds, cd1, _ := flightData(t, c1)
	_, cd2, _ := flightData(t, c2)
	s := DrawSample(ds, stats.NewRand(3), 4)

	naive, err := LCAParts(c1, cd1, s, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := LCAParts(c2, cd2, s, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := engine.CollectMap(c1, naive, "a", cube.Merge, func(k string, v cube.Agg) int { return len(k) + 24 })
	b := engine.CollectMap(c2, indexed, "b", cube.Merge, func(k string, v cube.Agg) int { return len(k) + 24 })
	if len(a) != len(b) {
		t.Fatalf("LCA sets differ in size: %d vs %d", len(a), len(b))
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			t.Fatalf("indexed output missing LCA")
		}
		if math.Abs(va.SumM-vb.SumM) > 1e-9 || math.Abs(va.Count-vb.Count) > 1e-9 {
			t.Errorf("LCA aggregate mismatch: %+v vs %+v", va, vb)
		}
	}
	// The indexed path must record fewer operations than naive comparisons
	// on data whose values mostly differ from the sample's.
	nOps := c1.Reg().Counter(metrics.CtrLCAComparisons)
	iOps := c2.Reg().Counter(metrics.CtrLCAComparisons)
	if nOps == 0 || iOps == 0 {
		t.Fatal("comparison counters not recorded")
	}
	if iOps >= nOps {
		t.Errorf("indexed ops (%d) not fewer than naive comparisons (%d)", iOps, nOps)
	}
}

func TestLCAPartsEmptySample(t *testing.T) {
	c := newTestCluster()
	defer c.Close()
	_, cd, _ := flightData(t, c)
	if _, err := LCAParts(c, cd, &Sample{D: 3}, false, nil); err == nil {
		t.Error("empty sample accepted")
	}
}

// TestSamplePipelineMatchesDirectSums is the end-to-end correctness property
// of sample-based pruning: after the cube and the fix-up, every candidate's
// aggregates equal its true support sums over D.
func TestSamplePipelineMatchesDirectSums(t *testing.T) {
	c := newTestCluster()
	defer c.Close()
	ds, cd, work := flightData(t, c)
	s := DrawSample(ds, stats.NewRand(11), 3)
	lcas, err := LCAParts(c, cd, s, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := cube.Compute(c, lcas, 3, cube.SplitGroups(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	adjusted, err := AdjustForSample(c, cands, s, NewStringCodec(3))
	if err != nil {
		t.Fatal(err)
	}
	all := engine.CollectMap(c, adjusted, "gather", cube.Merge, func(k string, v cube.Agg) int { return len(k) + 24 })
	if len(all) == 0 {
		t.Fatal("no candidates")
	}
	for key, agg := range all {
		r, err := rule.FromKey(key, 3)
		if err != nil {
			t.Fatal(err)
		}
		var wantM float64
		wantCount := 0
		for i := 0; i < ds.NumRows(); i++ {
			if r.MatchesRow(ds, i) {
				wantM += work[i]
				wantCount++
			}
		}
		if math.Abs(agg.SumM-wantM) > 1e-9 {
			t.Errorf("rule %s SumM = %v, want %v", r.Format(ds.Dicts), agg.SumM, wantM)
		}
		if math.Abs(agg.Count-float64(wantCount)) > 1e-9 {
			t.Errorf("rule %s Count = %v, want %d", r.Format(ds.Dicts), agg.Count, wantCount)
		}
	}
}

// TestQuickSamplePipeline fuzzes the same property over random samples.
func TestQuickSamplePipeline(t *testing.T) {
	f := func(seed int64, szRaw uint8) bool {
		sz := int(szRaw)%6 + 1
		c := newTestCluster()
		defer c.Close()
		ds := datagen.Flights()
		_, work := maxent.NewTransform(ds.Measure)
		mhat := make([]float64, len(work))
		for i := range mhat {
			mhat[i] = 1
		}
		blocks := engine.BlocksFromColumns(ds.Dims, work, mhat, 2)
		cd, err := engine.CacheTuples(c, blocks)
		if err != nil {
			return false
		}
		s := DrawSample(ds, stats.NewRand(seed), sz)
		lcas, err := LCAParts(c, cd, s, seed%2 == 0, nil)
		if err != nil {
			return false
		}
		cands, err := cube.ComputeSingleStage(c, lcas, 3)
		if err != nil {
			return false
		}
		adjusted, err := AdjustForSample(c, cands, s, NewStringCodec(3))
		if err != nil {
			return false
		}
		all := engine.CollectMap(c, adjusted, "g", cube.Merge, func(k string, v cube.Agg) int { return 36 })
		for key, agg := range all {
			r, _ := rule.FromKey(key, 3)
			var wantM float64
			wantCount := 0
			for i := 0; i < ds.NumRows(); i++ {
				if r.MatchesRow(ds, i) {
					wantM += work[i]
					wantCount++
				}
			}
			if math.Abs(agg.SumM-wantM) > 1e-9 || math.Abs(agg.Count-float64(wantCount)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestExhaustiveParts(t *testing.T) {
	c := newTestCluster()
	defer c.Close()
	ds, cd, work := flightData(t, c)
	parts, err := ExhaustiveParts(c, cd)
	if err != nil {
		t.Fatal(err)
	}
	all := engine.CollectMap(c, parts, "g", cube.Merge, func(k string, v cube.Agg) int { return 36 })
	// 14 tuples, two pairs of duplicates? Check: distinct dim combinations.
	distinct := map[string]bool{}
	var totalM float64
	buf := make([]int32, 3)
	for i := 0; i < ds.NumRows(); i++ {
		row, _ := ds.Row(i, buf)
		distinct[rule.FromTuple(row).Key()] = true
		totalM += work[i]
	}
	if len(all) != len(distinct) {
		t.Errorf("instance count = %d, want %d", len(all), len(distinct))
	}
	var gotM float64
	for _, agg := range all {
		gotM += agg.SumM
	}
	if math.Abs(gotM-totalM) > 1e-9 {
		t.Errorf("total SumM = %v, want %v", gotM, totalM)
	}
}

func TestTopByGain(t *testing.T) {
	c := newTestCluster()
	defer c.Close()
	ds, cd, _ := flightData(t, c)
	parts, err := ExhaustiveParts(c, cd)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := cube.ComputeSingleStage(c, parts, 3)
	if err != nil {
		t.Fatal(err)
	}
	top := TopByGain(c, cands, 5, nil)
	if len(top) != 5 {
		t.Fatalf("top = %d candidates", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Gain > top[i-1].Gain {
			t.Error("top candidates not sorted by gain")
		}
	}
	// The known best rule after r1 is (*, *, London) — mhat was seeded with
	// the overall average in flightData.
	best, _ := rule.FromKey(top[0].Key, 3)
	if got := best.Format(ds.Dicts); got != "(*, *, London)" {
		t.Errorf("best rule = %s", got)
	}
	// Excluding it promotes the runner-up.
	top2 := TopByGain(c, cands, 1, map[string]bool{top[0].Key: true})
	if len(top2) != 1 || top2[0].Key == top[0].Key {
		t.Error("exclusion did not remove the top rule")
	}
	if TopByGain(c, cands, 0, nil) != nil {
		t.Error("n=0 should return nil")
	}
}
