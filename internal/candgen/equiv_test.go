package candgen

import (
	"math"
	"testing"

	"sirum/internal/cube"
	"sirum/internal/datagen"
	"sirum/internal/dataset"
	"sirum/internal/engine"
	"sirum/internal/maxent"
	"sirum/internal/rule"
	"sirum/internal/stats"
)

// cacheFor loads ds into a fresh cluster the way the miner does.
func cacheFor(t *testing.T, c engine.Backend, ds *dataset.Dataset) *engine.CachedData {
	t.Helper()
	_, work := maxent.NewTransform(ds.Measure)
	mhat := make([]float64, len(work))
	avg := ds.MeanMeasure()
	for i := range mhat {
		mhat[i] = avg
	}
	cd, err := engine.CacheTuples(c, engine.BlocksFromColumns(ds.Dims, work, mhat, 3))
	if err != nil {
		t.Fatal(err)
	}
	return cd
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 1 {
		return d / m
	}
	return d
}

// collectAsStringKeys gathers a keyed candidate collection and normalizes
// the keys to the string representation so both pipelines compare directly.
func collectAsStringKeys[K interface {
	~string | ~uint64
}](t *testing.T, c engine.Backend, parts *engine.PColl[map[K]cube.Agg], codec Codec[K]) map[string]cube.Agg {
	t.Helper()
	raw := engine.CollectMap(c, parts, "equiv/collect", cube.Merge, codec.RecordBytes)
	out := make(map[string]cube.Agg, len(raw))
	for k, v := range raw {
		r, err := codec.DecodeRule(k, nil)
		if err != nil {
			t.Fatalf("decoding candidate key %v: %v", k, err)
		}
		out[r.Key()] = v
	}
	if len(out) != len(raw) {
		t.Fatalf("normalizing keys collapsed %d candidates to %d", len(raw), len(out))
	}
	return out
}

// collectTablesAsStringKeys is collectAsStringKeys for the table-backed
// pipeline: partitions are key-disjoint after the cube shuffle, so entries
// are gathered directly off each table.
func collectTablesAsStringKeys(t *testing.T, c engine.Backend, parts *engine.PColl[*cube.PackedTable], codec PackedCodec) map[string]cube.Agg {
	t.Helper()
	out := make(map[string]cube.Agg)
	for _, part := range parts.Parts() {
		part.ForEach(func(k uint64, v cube.Agg) {
			r, err := codec.DecodeRule(k, nil)
			if err != nil {
				t.Fatalf("decoding candidate key %#x: %v", k, err)
			}
			key := r.Key()
			if _, dup := out[key]; dup {
				t.Fatalf("candidate key %#x present in two table partitions", k)
			}
			out[key] = v
		})
	}
	return out
}

func compareCandidates(t *testing.T, label string, ds *dataset.Dataset, str, packed map[string]cube.Agg) {
	t.Helper()
	if len(str) != len(packed) {
		t.Fatalf("%s: candidate counts differ: %d string vs %d packed", label, len(str), len(packed))
	}
	for k, sv := range str {
		pv, ok := packed[k]
		if !ok {
			r, _ := rule.FromKey(k, ds.NumDims())
			t.Fatalf("%s: packed pipeline missing candidate %s", label, r.Format(ds.Dicts))
		}
		if relDiff(sv.SumM, pv.SumM) > 1e-9 || relDiff(sv.SumMhat, pv.SumMhat) > 1e-9 || relDiff(sv.Count, pv.Count) > 1e-9 {
			r, _ := rule.FromKey(k, ds.NumDims())
			t.Errorf("%s: %s aggregates differ: %+v vs %+v", label, r.Format(ds.Dicts), sv, pv)
		}
	}
}

// TestPackedStringCandidatesEquivalentConcurrent is the cross-representation
// property of the packed-key fast path: over randomized datasets, all three
// pipelines — string keys, packed maps, and arena-recycled PackedTables —
// produce identical candidate maps through leaf instances, cube stages and
// sample fix-up (same rules, aggregates equal up to summation order). The
// Concurrent name opts the test into the CI race run, so the per-part state
// handling of every representation is also race-checked.
func TestPackedStringCandidatesEquivalentConcurrent(t *testing.T) {
	for _, tc := range []struct {
		name string
		ds   *dataset.Dataset
	}{
		{"income-a", datagen.Income(500, 11)},
		{"income-b", datagen.Income(900, 23)},
		{"gdelt", datagen.GDELT(700, 7)},
		{"flights", datagen.Flights()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ds := tc.ds
			d := ds.NumDims()
			packer, ok := rule.NewPacker(ds.DomainSizes())
			if !ok {
				t.Fatalf("%s does not pack (%d dims)", tc.name, d)
			}
			cs, cp, ct := newTestCluster(), newTestCluster(), newTestCluster()
			defer cs.Close()
			defer cp.Close()
			defer ct.Close()
			cds, cdp, cdt := cacheFor(t, cs, ds), cacheFor(t, cp, ds), cacheFor(t, ct, ds)
			strCodec, packCodec := NewStringCodec(d), NewPackedCodec(packer)
			pk := cube.PackedKeys{P: packer}
			groups := cube.SplitGroups(d, 2)

			// Sampled LCA pipeline, indexed and naive.
			for _, indexed := range []bool{false, true} {
				s := DrawSample(ds, stats.NewRand(31), 5)
				sl, err := strCodec.LCAParts(cs, cds, s, indexed, nil)
				if err != nil {
					t.Fatal(err)
				}
				pl, err := packCodec.LCAParts(cp, cdp, s, indexed, nil)
				if err != nil {
					t.Fatal(err)
				}
				tl, err := packCodec.LCATables(ct, cdt, s, indexed, nil)
				if err != nil {
					t.Fatal(err)
				}
				sc, err := cube.ComputeKeyed[string](cs, sl, strCodec, groups)
				if err != nil {
					t.Fatal(err)
				}
				pc, err := cube.ComputeKeyed[uint64](cp, pl, packCodec, groups)
				if err != nil {
					t.Fatal(err)
				}
				tt, err := cube.ComputeTables(ct, tl, pk, groups)
				if err != nil {
					t.Fatal(err)
				}
				sa, err := AdjustForSample(cs, sc, s, strCodec)
				if err != nil {
					t.Fatal(err)
				}
				pa, err := AdjustForSample(cp, pc, s, packCodec)
				if err != nil {
					t.Fatal(err)
				}
				if err := AdjustTablesForSample(ct, tt, s, packCodec); err != nil {
					t.Fatal(err)
				}
				label := "lca/naive"
				if indexed {
					label = "lca/indexed"
				}
				strRules := collectAsStringKeys(t, cs, sa, strCodec)
				compareCandidates(t, label, ds, strRules,
					collectAsStringKeys(t, cp, pa, packCodec))
				compareCandidates(t, label+"/tables", ds, strRules,
					collectTablesAsStringKeys(t, ct, tt, packCodec))
				cube.ReleaseTables(ct, tt)
			}

			// Exhaustive pipeline.
			se, err := strCodec.ExhaustiveParts(cs, cds)
			if err != nil {
				t.Fatal(err)
			}
			pe, err := packCodec.ExhaustiveParts(cp, cdp)
			if err != nil {
				t.Fatal(err)
			}
			te, err := packCodec.ExhaustiveTables(ct, cdt)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := cube.ComputeKeyed[string](cs, se, strCodec, groups)
			if err != nil {
				t.Fatal(err)
			}
			pc, err := cube.ComputeKeyed[uint64](cp, pe, packCodec, groups)
			if err != nil {
				t.Fatal(err)
			}
			tcx, err := cube.ComputeTables(ct, te, pk, groups)
			if err != nil {
				t.Fatal(err)
			}
			strRules := collectAsStringKeys(t, cs, sc, strCodec)
			compareCandidates(t, "exhaustive", ds, strRules,
				collectAsStringKeys(t, cp, pc, packCodec))
			compareCandidates(t, "exhaustive/tables", ds, strRules,
				collectTablesAsStringKeys(t, ct, tcx, packCodec))
			cube.ReleaseTables(ct, tcx)
		})
	}
}
