// Package candgen implements SIRUM's candidate rule generation: sample-based
// candidate pruning (Section 3.1.1), its inverted-index acceleration
// (Section 4.2), the sample-count fix-up of the aggregates, exhaustive
// candidate enumeration, and distributed top-k selection by information
// gain.
package candgen

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"sirum/internal/cube"
	"sirum/internal/dataset"
	"sirum/internal/engine"
	"sirum/internal/maxent"
	"sirum/internal/metrics"
	"sirum/internal/rule"
)

// Sample is the broadcast random sample s drawn from D: |s| dimension-code
// rows plus per-attribute domain sizes for index construction.
type Sample struct {
	D       int
	Rows    [][]int32
	Domains []int
}

// DrawSample projects n uniformly sampled rows of ds onto their dimension
// codes. All rows share one flat backing array — one allocation instead of
// one per row.
func DrawSample(ds *dataset.Dataset, r *rand.Rand, n int) *Sample {
	sub := ds.Sample(r, n)
	d := ds.NumDims()
	s := &Sample{D: d, Domains: ds.DomainSizes()}
	rows := sub.NumRows()
	s.Rows = make([][]int32, rows)
	flat := make([]int32, rows*d)
	for i := 0; i < rows; i++ {
		row, _ := sub.Row(i, flat[i*d:(i+1)*d])
		s.Rows[i] = row
	}
	return s
}

// Bytes estimates the broadcast payload of the sample.
func (s *Sample) Bytes() int64 { return int64(len(s.Rows)) * int64(s.D) * 4 }

// Size returns |s|.
func (s *Sample) Size() int { return len(s.Rows) }

// MatchCount returns the number of sample tuples covered by r, the divisor
// of the aggregate fix-up.
func (s *Sample) MatchCount(r rule.Rule) int {
	n := 0
	for _, row := range s.Rows {
		if r.MatchesCodes(row) {
			n++
		}
	}
	return n
}

// InvertedIndex is the per-attribute index over the sample of Section 4.2:
// for attribute j and value code v, Posting(j, v) lists the sample rows with
// that value. Dictionary codes are dense, so postings are slice-indexed.
type InvertedIndex struct {
	d        int
	postings [][][]int32 // postings[j][v] = sample row ids
}

// BuildIndex constructs the inverted index for s.
func BuildIndex(s *Sample) *InvertedIndex {
	ix := &InvertedIndex{d: s.D, postings: make([][][]int32, s.D)}
	for j := 0; j < s.D; j++ {
		ix.postings[j] = make([][]int32, s.Domains[j])
	}
	for si, row := range s.Rows {
		for j, v := range row {
			ix.postings[j][v] = append(ix.postings[j][v], int32(si))
		}
	}
	return ix
}

// Posting returns the sample rows holding value v in attribute j.
func (ix *InvertedIndex) Posting(j int, v int32) []int32 {
	p := ix.postings[j]
	if v < 0 || int(v) >= len(p) {
		return nil
	}
	return p[v]
}

// Bytes estimates the broadcast payload of the index (postings plus sample).
func (ix *InvertedIndex) Bytes() int64 {
	var n int64
	for _, attr := range ix.postings {
		for _, post := range attr {
			n += int64(len(post)) * 4
		}
		n += int64(len(attr)) * 8
	}
	return n
}

// LCAParts computes the locally combined LCA aggregates LCA(s, D): for every
// (sample tuple, data tuple) pair, the least common ancestor keyed by rule,
// carrying (t[m], t[m̂], 1). One output map per data block. When indexed is
// true the inverted-index strategy of Section 4.2 replaces the attribute-by-
// attribute cross product; both strategies produce identical output, and the
// comparison counter records the work saved. A prepare-once session passes
// its prebuilt index as ix so repeated rounds skip reconstruction; pass nil
// to build one on the fly.
func LCAParts(c engine.Backend, data *engine.CachedData, s *Sample, indexed bool, ix *InvertedIndex) (*engine.PColl[map[string]cube.Agg], error) {
	if s.Size() == 0 {
		return nil, fmt.Errorf("candgen: empty sample")
	}
	if indexed {
		if ix == nil {
			ix = BuildIndex(s)
		}
		c.Broadcast(ix.Bytes() + s.Bytes())
	} else {
		c.Broadcast(s.Bytes())
	}
	out := make([]map[string]cube.Agg, data.NumBlocks())
	comparisons := make([]int64, data.NumBlocks())
	err := data.Scan("candgen/lca", false, func(bi int, b *engine.TupleBlock) {
		local := make(map[string]cube.Agg)
		if indexed {
			comparisons[bi] = lcaIndexed(b, s, ix, local)
		} else {
			comparisons[bi] = lcaNaive(b, s, local)
		}
		out[bi] = local
	})
	if err != nil {
		return nil, err
	}
	var total int64
	for _, n := range comparisons {
		total += n
	}
	c.Reg().Add(metrics.CtrLCAComparisons, total)
	return engine.NewPColl(out), nil
}

// lcaNaive computes each pair's LCA with d attribute comparisons.
func lcaNaive(b *engine.TupleBlock, s *Sample, local map[string]cube.Agg) int64 {
	d := len(b.Dims)
	lca := make(rule.Rule, d)
	var comps int64
	for i := 0; i < b.NumRows(); i++ {
		agg := cube.Agg{SumM: b.M[i], SumMhat: b.Mhat[i], Count: 1}
		for _, srow := range s.Rows {
			for j := 0; j < d; j++ {
				if srow[j] == b.Dims[j][i] {
					lca[j] = srow[j]
				} else {
					lca[j] = rule.Wildcard
				}
			}
			comps += int64(d)
			k := lca.Key()
			if old, ok := local[k]; ok {
				local[k] = cube.Merge(old, agg)
			} else {
				local[k] = agg
			}
		}
	}
	return comps
}

// lcaIndexed initializes all |s| LCAs of a tuple to all-wildcards and uses
// the index to write back only the agreeing constants (Section 4.2): one
// lookup per attribute plus one write per agreement, instead of |s|·d
// comparisons.
func lcaIndexed(b *engine.TupleBlock, s *Sample, ix *InvertedIndex, local map[string]cube.Agg) int64 {
	d := len(b.Dims)
	ns := s.Size()
	template := make([]int32, ns*d)
	for i := range template {
		template[i] = rule.Wildcard
	}
	buf := make([]int32, ns*d)
	var ops int64
	for i := 0; i < b.NumRows(); i++ {
		copy(buf, template)
		for j := 0; j < d; j++ {
			v := b.Dims[j][i]
			ops++ // one index lookup per attribute
			for _, si := range ix.Posting(j, v) {
				buf[int(si)*d+j] = v
				ops++
			}
		}
		agg := cube.Agg{SumM: b.M[i], SumMhat: b.Mhat[i], Count: 1}
		for si := 0; si < ns; si++ {
			k := rule.Rule(buf[si*d : (si+1)*d]).Key()
			if old, ok := local[k]; ok {
				local[k] = cube.Merge(old, agg)
			} else {
				local[k] = agg
			}
		}
	}
	return ops
}

// AdjustForSample applies the fix-up of Section 3.1.1: a candidate covering
// c sample tuples received every covered data tuple's contribution c times,
// so its aggregates are divided by c. After adjustment, SumM and Count equal
// the candidate's true support sums over D. Candidates covering no sample
// tuple cannot exist (every candidate is an ancestor of an LCA, hence of a
// sample tuple); they would indicate corruption and so panic.
func AdjustForSample(c engine.Backend, candidates *engine.PColl[map[string]cube.Agg], s *Sample, d int) *engine.PColl[map[string]cube.Agg] {
	c.Broadcast(s.Bytes())
	return engine.MapParts(c, candidates, "candgen/adjust", func(_ int, part map[string]cube.Agg) map[string]cube.Agg {
		out := make(map[string]cube.Agg, len(part))
		for key, agg := range part {
			r, err := rule.FromKey(key, d)
			if err != nil {
				panic(fmt.Sprintf("candgen: corrupt candidate key: %v", err))
			}
			mc := s.MatchCount(r)
			if mc == 0 {
				panic(fmt.Sprintf("candgen: candidate %v covers no sample tuple", r))
			}
			f := float64(mc)
			out[key] = cube.Agg{SumM: agg.SumM / f, SumMhat: agg.SumMhat / f, Count: agg.Count / f}
		}
		return out
	})
}

// ExhaustiveParts turns every data tuple into a full-constant rule instance,
// the input for exhaustive candidate exploration (no sampling; the MIR
// baseline of Section 3.1.1 and the cube-exploration application).
func ExhaustiveParts(c engine.Backend, data *engine.CachedData) (*engine.PColl[map[string]cube.Agg], error) {
	out := make([]map[string]cube.Agg, data.NumBlocks())
	err := data.Scan("candgen/exhaustive", false, func(bi int, b *engine.TupleBlock) {
		local := make(map[string]cube.Agg)
		d := len(b.Dims)
		key := make(rule.Rule, d)
		for i := 0; i < b.NumRows(); i++ {
			for j := 0; j < d; j++ {
				key[j] = b.Dims[j][i]
			}
			k := key.Key()
			agg := cube.Agg{SumM: b.M[i], SumMhat: b.Mhat[i], Count: 1}
			if old, ok := local[k]; ok {
				local[k] = cube.Merge(old, agg)
			} else {
				local[k] = agg
			}
		}
		out[bi] = local
	})
	if err != nil {
		return nil, err
	}
	return engine.NewPColl(out), nil
}

// Candidate is a scored candidate rule.
type Candidate struct {
	Key  string
	Gain float64
	Agg  cube.Agg
}

// candHeap is a min-heap by gain used for per-partition top-n.
type candHeap []Candidate

func (h candHeap) Len() int           { return len(h) }
func (h candHeap) Less(i, j int) bool { return h[i].Gain < h[j].Gain }
func (h candHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x any)        { *h = append(*h, x.(Candidate)) }
func (h *candHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h candHeap) Peek() Candidate    { return h[0] }

// TopByGain scores every candidate with the information-gain estimate
// (Equation 2.2) and returns the global top n in descending gain order,
// skipping keys in exclude (already-selected rules) and non-positive gains.
// The reduction runs as per-partition heaps followed by a driver merge, the
// standard distributed top-k.
func TopByGain(c engine.Backend, candidates *engine.PColl[map[string]cube.Agg], n int, exclude map[string]bool) []Candidate {
	if n <= 0 {
		return nil
	}
	tops := engine.MapParts(c, candidates, "candgen/topk", func(_ int, part map[string]cube.Agg) []Candidate {
		h := make(candHeap, 0, n+1)
		for key, agg := range part {
			if exclude[key] {
				continue
			}
			g := maxent.Gain(agg.SumM, agg.SumMhat)
			if g <= 0 {
				continue
			}
			if len(h) < n {
				heap.Push(&h, Candidate{Key: key, Gain: g, Agg: agg})
			} else if g > h.Peek().Gain {
				h[0] = Candidate{Key: key, Gain: g, Agg: agg}
				heap.Fix(&h, 0)
			}
		}
		return h
	})
	var all []Candidate
	for _, part := range tops.Parts() {
		all = append(all, part...)
	}
	// Gather cost is negligible: n candidates per partition.
	sort.Slice(all, func(i, j int) bool {
		if all[i].Gain != all[j].Gain {
			return all[i].Gain > all[j].Gain
		}
		return all[i].Key < all[j].Key // deterministic tie-break
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}
