// Package candgen implements SIRUM's candidate rule generation: sample-based
// candidate pruning (Section 3.1.1), its inverted-index acceleration
// (Section 4.2), the sample-count fix-up of the aggregates, exhaustive
// candidate enumeration, and distributed top-k selection by information
// gain.
//
// Generation is generic over the rule-key representation via Codec: packed
// uint64 keys when the schema fits 64 bits (allocation-free end to end) and
// string keys otherwise. See internal/cube for the representation contract.
package candgen

import (
	"cmp"
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"sirum/internal/cube"
	"sirum/internal/dataset"
	"sirum/internal/engine"
	"sirum/internal/maxent"
	"sirum/internal/metrics"
	"sirum/internal/rule"
)

// Sample is the broadcast random sample s drawn from D: |s| dimension-code
// rows plus per-attribute domain sizes for index construction.
type Sample struct {
	D       int
	Rows    [][]int32
	Domains []int
}

// DrawSample projects n uniformly sampled rows of ds onto their dimension
// codes. All rows share one flat backing array — one allocation instead of
// one per row.
func DrawSample(ds *dataset.Dataset, r *rand.Rand, n int) *Sample {
	sub := ds.Sample(r, n)
	d := ds.NumDims()
	s := &Sample{D: d, Domains: ds.DomainSizes()}
	rows := sub.NumRows()
	s.Rows = make([][]int32, rows)
	flat := make([]int32, rows*d)
	for i := 0; i < rows; i++ {
		row, _ := sub.Row(i, flat[i*d:(i+1)*d])
		s.Rows[i] = row
	}
	return s
}

// Bytes estimates the broadcast payload of the sample.
func (s *Sample) Bytes() int64 { return int64(len(s.Rows)) * int64(s.D) * 4 }

// Size returns |s|.
func (s *Sample) Size() int { return len(s.Rows) }

// MatchCount returns the number of sample tuples covered by r, the divisor
// of the aggregate fix-up.
func (s *Sample) MatchCount(r rule.Rule) int {
	n := 0
	for _, row := range s.Rows {
		if r.MatchesCodes(row) {
			n++
		}
	}
	return n
}

// InvertedIndex is the per-attribute index over the sample of Section 4.2:
// for attribute j and value code v, Posting(j, v) lists the sample rows with
// that value. Dictionary codes are dense, so postings are slice-indexed.
type InvertedIndex struct {
	d        int
	postings [][][]int32 // postings[j][v] = sample row ids
}

// BuildIndex constructs the inverted index for s.
func BuildIndex(s *Sample) *InvertedIndex {
	ix := &InvertedIndex{d: s.D, postings: make([][][]int32, s.D)}
	for j := 0; j < s.D; j++ {
		ix.postings[j] = make([][]int32, s.Domains[j])
	}
	for si, row := range s.Rows {
		for j, v := range row {
			ix.postings[j][v] = append(ix.postings[j][v], int32(si))
		}
	}
	return ix
}

// Posting returns the sample rows holding value v in attribute j.
func (ix *InvertedIndex) Posting(j int, v int32) []int32 {
	p := ix.postings[j]
	if v < 0 || int(v) >= len(p) {
		return nil
	}
	return p[v]
}

// Bytes estimates the broadcast payload of the index (postings plus sample).
func (ix *InvertedIndex) Bytes() int64 {
	var n int64
	for _, attr := range ix.postings {
		for _, post := range attr {
			n += int64(len(post)) * 4
		}
		n += int64(len(attr)) * 8
	}
	return n
}

// Codec binds one key representation end to end: the cube's KeySpace
// operations plus rule encoding/decoding and the leaf-instance scans that
// seed the pipeline. StringCodec works for any schema; PackedCodec applies
// when the dimensions pack into 64 bits and keeps the whole candidate
// pipeline allocation-free. The cmp.Ordered bound gives top-k selection its
// deterministic tie-break.
type Codec[K cmp.Ordered] interface {
	cube.KeySpace[K]
	// EncodeRule returns r's key.
	EncodeRule(r rule.Rule) (K, error)
	// DecodeRule decodes key into dst (allocated when too small).
	DecodeRule(key K, dst rule.Rule) (rule.Rule, error)
	// LCAParts computes the locally combined LCA aggregates (see the
	// package-level LCAParts).
	LCAParts(c engine.Backend, data *engine.CachedData, s *Sample, indexed bool, ix *InvertedIndex) (*engine.PColl[map[K]cube.Agg], error)
	// ExhaustiveParts turns every data tuple into a full-constant instance
	// (see the package-level ExhaustiveParts).
	ExhaustiveParts(c engine.Backend, data *engine.CachedData) (*engine.PColl[map[K]cube.Agg], error)
	// ForEachLeafKey enumerates every (leaf key, block row) incidence of a
	// block in ascending row order: the tuple's own instance per row when s
	// is nil, else the |s| LCA instances per row (ix must index s). The
	// miner's LCA memo builds on this.
	ForEachLeafKey(b *engine.TupleBlock, s *Sample, ix *InvertedIndex, emit func(key K, row int))
}

// StringCodec is the Codec of the string-key representation.
type StringCodec struct{ cube.StringKeys }

// NewStringCodec returns the string codec for arity d.
func NewStringCodec(d int) StringCodec { return StringCodec{cube.StringKeys{D: d}} }

// EncodeRule implements Codec.
func (c StringCodec) EncodeRule(r rule.Rule) (string, error) { return r.Key(), nil }

// DecodeRule implements Codec.
func (c StringCodec) DecodeRule(key string, dst rule.Rule) (rule.Rule, error) {
	return rule.DecodeKey(key, c.D, dst)
}

// LCAParts implements Codec.
func (c StringCodec) LCAParts(b engine.Backend, data *engine.CachedData, s *Sample, indexed bool, ix *InvertedIndex) (*engine.PColl[map[string]cube.Agg], error) {
	return LCAParts(b, data, s, indexed, ix)
}

// ExhaustiveParts implements Codec.
func (c StringCodec) ExhaustiveParts(b engine.Backend, data *engine.CachedData) (*engine.PColl[map[string]cube.Agg], error) {
	return ExhaustiveParts(b, data)
}

// ForEachLeafKey implements Codec. The string path pays one key allocation
// per incidence; only the once-per-session memo build uses it.
func (c StringCodec) ForEachLeafKey(b *engine.TupleBlock, s *Sample, ix *InvertedIndex, emit func(string, int)) {
	d := c.D
	if s == nil {
		key := make(rule.Rule, d)
		for i := 0; i < b.NumRows(); i++ {
			for j := 0; j < d; j++ {
				key[j] = b.Dims[j][i]
			}
			emit(key.Key(), i)
		}
		return
	}
	ns := s.Size()
	template := make([]int32, ns*d)
	for i := range template {
		template[i] = rule.Wildcard
	}
	buf := make([]int32, ns*d)
	for i := 0; i < b.NumRows(); i++ {
		copy(buf, template)
		for j := 0; j < d; j++ {
			v := b.Dims[j][i]
			for _, si := range ix.Posting(j, v) {
				buf[int(si)*d+j] = v
			}
		}
		for si := 0; si < ns; si++ {
			emit(rule.Rule(buf[si*d:(si+1)*d]).Key(), i)
		}
	}
}

// PackedCodec is the Codec of the packed-key representation.
type PackedCodec struct{ cube.PackedKeys }

// NewPackedCodec returns the packed codec over p.
func NewPackedCodec(p *rule.Packer) PackedCodec { return PackedCodec{cube.PackedKeys{P: p}} }

// EncodeRule implements Codec.
func (c PackedCodec) EncodeRule(r rule.Rule) (uint64, error) { return c.P.Pack(r) }

// DecodeRule implements Codec.
func (c PackedCodec) DecodeRule(key uint64, dst rule.Rule) (rule.Rule, error) {
	return c.P.Unpack(key, dst)
}

// LCAParts implements Codec.
func (c PackedCodec) LCAParts(b engine.Backend, data *engine.CachedData, s *Sample, indexed bool, ix *InvertedIndex) (*engine.PColl[map[uint64]cube.Agg], error) {
	return lcaPartsPacked(b, data, s, indexed, ix, c.P)
}

// ExhaustiveParts implements Codec.
func (c PackedCodec) ExhaustiveParts(b engine.Backend, data *engine.CachedData) (*engine.PColl[map[uint64]cube.Agg], error) {
	p := c.P
	out := make([]map[uint64]cube.Agg, data.NumBlocks())
	err := data.Scan("candgen/exhaustive", false, func(bi int, b *engine.TupleBlock) {
		local := make(map[uint64]cube.Agg)
		d := len(b.Dims)
		codes := make(rule.Rule, d)
		for i := 0; i < b.NumRows(); i++ {
			for j := 0; j < d; j++ {
				codes[j] = b.Dims[j][i]
			}
			k := p.PackCodes(codes)
			agg := cube.Agg{SumM: b.M[i], SumMhat: b.Mhat[i], Count: 1}
			if old, ok := local[k]; ok {
				local[k] = cube.Merge(old, agg)
			} else {
				local[k] = agg
			}
		}
		out[bi] = local
	})
	if err != nil {
		return nil, err
	}
	return engine.NewPColl(out), nil
}

// ForEachLeafKey implements Codec; allocation-free.
func (c PackedCodec) ForEachLeafKey(b *engine.TupleBlock, s *Sample, ix *InvertedIndex, emit func(uint64, int)) {
	p := c.P
	d := len(b.Dims)
	if s == nil {
		codes := make(rule.Rule, d)
		for i := 0; i < b.NumRows(); i++ {
			for j := 0; j < d; j++ {
				codes[j] = b.Dims[j][i]
			}
			emit(p.PackCodes(codes), i)
		}
		return
	}
	ns := s.Size()
	wild := p.AllWildcards()
	buf := make([]uint64, ns)
	for i := 0; i < b.NumRows(); i++ {
		for si := range buf {
			buf[si] = wild
		}
		for j := 0; j < d; j++ {
			v := b.Dims[j][i]
			for _, si := range ix.Posting(j, v) {
				buf[si] = p.Set(buf[si], j, v)
			}
		}
		for si := 0; si < ns; si++ {
			emit(buf[si], i)
		}
	}
}

// LCAParts computes the locally combined LCA aggregates LCA(s, D): for every
// (sample tuple, data tuple) pair, the least common ancestor keyed by rule,
// carrying (t[m], t[m̂], 1). One output map per data block. When indexed is
// true the inverted-index strategy of Section 4.2 replaces the attribute-by-
// attribute cross product; both strategies produce identical output, and the
// comparison counter records the work saved. A prepare-once session passes
// its prebuilt index as ix so repeated rounds skip reconstruction; pass nil
// to build one on the fly.
func LCAParts(c engine.Backend, data *engine.CachedData, s *Sample, indexed bool, ix *InvertedIndex) (*engine.PColl[map[string]cube.Agg], error) {
	if s.Size() == 0 {
		return nil, fmt.Errorf("candgen: empty sample")
	}
	if indexed {
		if ix == nil {
			ix = BuildIndex(s)
		}
		c.Broadcast(ix.Bytes() + s.Bytes())
	} else {
		c.Broadcast(s.Bytes())
	}
	out := make([]map[string]cube.Agg, data.NumBlocks())
	comparisons := make([]int64, data.NumBlocks())
	err := data.Scan("candgen/lca", false, func(bi int, b *engine.TupleBlock) {
		local := cube.NewAggTable(b.NumRows())
		if indexed {
			comparisons[bi] = lcaIndexed(b, s, ix, local)
		} else {
			comparisons[bi] = lcaNaive(b, s, local)
		}
		out[bi] = local.Map()
	})
	if err != nil {
		return nil, err
	}
	var total int64
	for _, n := range comparisons {
		total += n
	}
	c.Reg().Add(metrics.CtrLCAComparisons, total)
	return engine.NewPColl(out), nil
}

// lcaNaive computes each pair's LCA with d attribute comparisons, keying the
// aggregate table through one scratch buffer.
func lcaNaive(b *engine.TupleBlock, s *Sample, local *cube.AggTable) int64 {
	d := len(b.Dims)
	lca := make(rule.Rule, d)
	keyBuf := make([]byte, 0, d*4)
	var comps int64
	for i := 0; i < b.NumRows(); i++ {
		agg := cube.Agg{SumM: b.M[i], SumMhat: b.Mhat[i], Count: 1}
		for _, srow := range s.Rows {
			for j := 0; j < d; j++ {
				if srow[j] == b.Dims[j][i] {
					lca[j] = srow[j]
				} else {
					lca[j] = rule.Wildcard
				}
			}
			comps += int64(d)
			keyBuf = lca.AppendKey(keyBuf[:0])
			local.Add(keyBuf, agg)
		}
	}
	return comps
}

// lcaIndexed initializes all |s| LCAs of a tuple to all-wildcards and uses
// the index to write back only the agreeing constants (Section 4.2): one
// lookup per attribute plus one write per agreement, instead of |s|·d
// comparisons.
func lcaIndexed(b *engine.TupleBlock, s *Sample, ix *InvertedIndex, local *cube.AggTable) int64 {
	d := len(b.Dims)
	ns := s.Size()
	template := make([]int32, ns*d)
	for i := range template {
		template[i] = rule.Wildcard
	}
	buf := make([]int32, ns*d)
	keyBuf := make([]byte, 0, d*4)
	var ops int64
	for i := 0; i < b.NumRows(); i++ {
		copy(buf, template)
		for j := 0; j < d; j++ {
			v := b.Dims[j][i]
			ops++ // one index lookup per attribute
			for _, si := range ix.Posting(j, v) {
				buf[int(si)*d+j] = v
				ops++
			}
		}
		agg := cube.Agg{SumM: b.M[i], SumMhat: b.Mhat[i], Count: 1}
		for si := 0; si < ns; si++ {
			keyBuf = rule.Rule(buf[si*d : (si+1)*d]).AppendKey(keyBuf[:0])
			local.Add(keyBuf, agg)
		}
	}
	return ops
}

// lcaPartsPacked is LCAParts in the packed representation: LCAs stay packed
// words throughout, so neither strategy allocates per pair.
func lcaPartsPacked(c engine.Backend, data *engine.CachedData, s *Sample, indexed bool, ix *InvertedIndex, p *rule.Packer) (*engine.PColl[map[uint64]cube.Agg], error) {
	if s.Size() == 0 {
		return nil, fmt.Errorf("candgen: empty sample")
	}
	if indexed {
		if ix == nil {
			ix = BuildIndex(s)
		}
		c.Broadcast(ix.Bytes() + s.Bytes())
	} else {
		c.Broadcast(s.Bytes())
	}
	out := make([]map[uint64]cube.Agg, data.NumBlocks())
	comparisons := make([]int64, data.NumBlocks())
	err := data.Scan("candgen/lca", false, func(bi int, b *engine.TupleBlock) {
		local := make(map[uint64]cube.Agg, b.NumRows())
		if indexed {
			comparisons[bi] = lcaIndexedPacked(b, s, ix, p, local)
		} else {
			comparisons[bi] = lcaNaivePacked(b, s, p, local)
		}
		out[bi] = local
	})
	if err != nil {
		return nil, err
	}
	var total int64
	for _, n := range comparisons {
		total += n
	}
	c.Reg().Add(metrics.CtrLCAComparisons, total)
	return engine.NewPColl(out), nil
}

func lcaNaivePacked(b *engine.TupleBlock, s *Sample, p *rule.Packer, local map[uint64]cube.Agg) int64 {
	d := len(b.Dims)
	lca := make(rule.Rule, d)
	var comps int64
	for i := 0; i < b.NumRows(); i++ {
		agg := cube.Agg{SumM: b.M[i], SumMhat: b.Mhat[i], Count: 1}
		for _, srow := range s.Rows {
			for j := 0; j < d; j++ {
				if srow[j] == b.Dims[j][i] {
					lca[j] = srow[j]
				} else {
					lca[j] = rule.Wildcard
				}
			}
			comps += int64(d)
			k := p.PackCodes(lca)
			if old, ok := local[k]; ok {
				local[k] = cube.Merge(old, agg)
			} else {
				local[k] = agg
			}
		}
	}
	return comps
}

func lcaIndexedPacked(b *engine.TupleBlock, s *Sample, ix *InvertedIndex, p *rule.Packer, local map[uint64]cube.Agg) int64 {
	d := len(b.Dims)
	ns := s.Size()
	wild := p.AllWildcards()
	buf := make([]uint64, ns)
	var ops int64
	for i := 0; i < b.NumRows(); i++ {
		for si := range buf {
			buf[si] = wild
		}
		for j := 0; j < d; j++ {
			v := b.Dims[j][i]
			ops++ // one index lookup per attribute
			for _, si := range ix.Posting(j, v) {
				buf[si] = p.Set(buf[si], j, v)
				ops++
			}
		}
		agg := cube.Agg{SumM: b.M[i], SumMhat: b.Mhat[i], Count: 1}
		for si := 0; si < ns; si++ {
			k := buf[si]
			if old, ok := local[k]; ok {
				local[k] = cube.Merge(old, agg)
			} else {
				local[k] = agg
			}
		}
	}
	return ops
}

// AdjustForSample applies the fix-up of Section 3.1.1: a candidate covering
// c sample tuples received every covered data tuple's contribution c times,
// so its aggregates are divided by c. After adjustment, SumM and Count equal
// the candidate's true support sums over D. Candidates covering no sample
// tuple cannot exist (every candidate is an ancestor of an LCA, hence of a
// sample tuple); they indicate corruption and surface as an error rather
// than a worker panic.
func AdjustForSample[K cmp.Ordered](c engine.Backend, candidates *engine.PColl[map[K]cube.Agg], s *Sample, codec Codec[K]) (*engine.PColl[map[K]cube.Agg], error) {
	c.Broadcast(s.Bytes())
	out := make([]map[K]cube.Agg, candidates.NumParts())
	errs := make([]error, candidates.NumParts())
	c.RunStage("candgen/adjust", candidates.NumParts(), func(i int) {
		part := candidates.Part(i)
		adj := make(map[K]cube.Agg, len(part))
		buf := make(rule.Rule, codec.NumDims())
		for key, agg := range part {
			r, err := codec.DecodeRule(key, buf)
			if err != nil {
				errs[i] = fmt.Errorf("candgen: corrupt candidate key: %w", err)
				return
			}
			buf = r
			mc := s.MatchCount(r)
			if mc == 0 {
				errs[i] = fmt.Errorf("candgen: candidate %v covers no sample tuple", r.Clone())
				return
			}
			f := float64(mc)
			adj[key] = cube.Agg{SumM: agg.SumM / f, SumMhat: agg.SumMhat / f, Count: agg.Count / f}
		}
		out[i] = adj
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return engine.NewPColl(out), nil
}

// ExhaustiveParts turns every data tuple into a full-constant rule instance,
// the input for exhaustive candidate exploration (no sampling; the MIR
// baseline of Section 3.1.1 and the cube-exploration application).
func ExhaustiveParts(c engine.Backend, data *engine.CachedData) (*engine.PColl[map[string]cube.Agg], error) {
	out := make([]map[string]cube.Agg, data.NumBlocks())
	err := data.Scan("candgen/exhaustive", false, func(bi int, b *engine.TupleBlock) {
		local := cube.NewAggTable(b.NumRows())
		d := len(b.Dims)
		key := make(rule.Rule, d)
		keyBuf := make([]byte, 0, d*4)
		for i := 0; i < b.NumRows(); i++ {
			for j := 0; j < d; j++ {
				key[j] = b.Dims[j][i]
			}
			keyBuf = key.AppendKey(keyBuf[:0])
			local.Add(keyBuf, cube.Agg{SumM: b.M[i], SumMhat: b.Mhat[i], Count: 1})
		}
		out[bi] = local.Map()
	})
	if err != nil {
		return nil, err
	}
	return engine.NewPColl(out), nil
}

// Candidate is a scored candidate rule in the codec's key representation.
type Candidate[K cmp.Ordered] struct {
	Key  K
	Gain float64
	Agg  cube.Agg
}

// candHeap is a min-heap by gain used for per-partition top-n.
type candHeap[K cmp.Ordered] []Candidate[K]

func (h candHeap[K]) Len() int           { return len(h) }
func (h candHeap[K]) Less(i, j int) bool { return h[i].Gain < h[j].Gain }
func (h candHeap[K]) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *candHeap[K]) Push(x any)        { *h = append(*h, x.(Candidate[K])) }
func (h *candHeap[K]) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
func (h candHeap[K]) Peek() Candidate[K] { return h[0] }

// TopByGain scores every candidate with the information-gain estimate
// (Equation 2.2) and returns the global top n in descending gain order,
// skipping keys in exclude (already-selected rules) and non-positive gains.
// The reduction runs as per-partition heaps followed by a driver merge, the
// standard distributed top-k.
func TopByGain[K cmp.Ordered](c engine.Backend, candidates *engine.PColl[map[K]cube.Agg], n int, exclude map[K]bool) []Candidate[K] {
	if n <= 0 {
		return nil
	}
	tops := engine.MapParts(c, candidates, "candgen/topk", func(_ int, part map[K]cube.Agg) []Candidate[K] {
		h := make(candHeap[K], 0, n+1)
		for key, agg := range part {
			if exclude[key] {
				continue
			}
			g := maxent.Gain(agg.SumM, agg.SumMhat)
			if g <= 0 {
				continue
			}
			if len(h) < n {
				heap.Push(&h, Candidate[K]{Key: key, Gain: g, Agg: agg})
			} else if g > h.Peek().Gain {
				h[0] = Candidate[K]{Key: key, Gain: g, Agg: agg}
				heap.Fix(&h, 0)
			}
		}
		return h
	})
	return mergeTopK(tops, n)
}

// mergeTopK merges the per-partition heaps into the global top n, descending
// gain with a deterministic key tie-break. Gather cost is negligible: n
// candidates per partition.
func mergeTopK[K cmp.Ordered](tops *engine.PColl[[]Candidate[K]], n int) []Candidate[K] {
	var all []Candidate[K]
	for _, part := range tops.Parts() {
		all = append(all, part...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Gain != all[j].Gain {
			return all[i].Gain > all[j].Gain
		}
		return all[i].Key < all[j].Key // deterministic tie-break
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}
