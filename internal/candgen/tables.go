package candgen

import (
	"container/heap"
	"fmt"

	"sirum/internal/cube"
	"sirum/internal/engine"
	"sirum/internal/maxent"
	"sirum/internal/metrics"
	"sirum/internal/rule"
)

// This file is the table-backed twin of the packed-key pipeline: the same
// leaf-instance scans and fix-ups as the map-based PackedCodec methods, but
// producing and consuming arena-recycled cube.PackedTables so a prepared
// session's steady-state rounds stop allocating. The cross-representation
// equivalence tests hold all three paths (tables, packed maps, string keys)
// to identical rule lists.

// ExhaustiveTables is ExhaustiveParts into borrowed tables: every data tuple
// becomes a full-constant rule instance.
func (c PackedCodec) ExhaustiveTables(b engine.Backend, data *engine.CachedData) (*engine.PColl[*cube.PackedTable], error) {
	p := c.P
	out := make([]*cube.PackedTable, data.NumBlocks())
	err := data.Scan("candgen/exhaustive", false, func(bi int, blk *engine.TupleBlock) {
		local := cube.BorrowTable(b, blk.NumRows())
		d := len(blk.Dims)
		codes := make(rule.Rule, d)
		for i := 0; i < blk.NumRows(); i++ {
			for j := 0; j < d; j++ {
				codes[j] = blk.Dims[j][i]
			}
			local.Add(p.PackCodes(codes), cube.Agg{SumM: blk.M[i], SumMhat: blk.Mhat[i], Count: 1})
		}
		out[bi] = local
	})
	if err != nil {
		return nil, err
	}
	return engine.NewPColl(out), nil
}

// LCATables is LCAParts into borrowed tables: the locally combined LCA
// aggregates of every (sample tuple, data tuple) pair, one table per block.
func (c PackedCodec) LCATables(b engine.Backend, data *engine.CachedData, s *Sample, indexed bool, ix *InvertedIndex) (*engine.PColl[*cube.PackedTable], error) {
	if s.Size() == 0 {
		return nil, fmt.Errorf("candgen: empty sample")
	}
	if indexed {
		if ix == nil {
			ix = BuildIndex(s)
		}
		b.Broadcast(ix.Bytes() + s.Bytes())
	} else {
		b.Broadcast(s.Bytes())
	}
	p := c.P
	out := make([]*cube.PackedTable, data.NumBlocks())
	comparisons := make([]int64, data.NumBlocks())
	err := data.Scan("candgen/lca", false, func(bi int, blk *engine.TupleBlock) {
		local := cube.BorrowTable(b, blk.NumRows())
		if indexed {
			comparisons[bi] = lcaIndexedTable(blk, s, ix, p, local)
		} else {
			comparisons[bi] = lcaNaiveTable(blk, s, p, local)
		}
		out[bi] = local
	})
	if err != nil {
		return nil, err
	}
	var total int64
	for _, n := range comparisons {
		total += n
	}
	b.Reg().Add(metrics.CtrLCAComparisons, total)
	return engine.NewPColl(out), nil
}

func lcaNaiveTable(b *engine.TupleBlock, s *Sample, p *rule.Packer, local *cube.PackedTable) int64 {
	d := len(b.Dims)
	lca := make(rule.Rule, d)
	var comps int64
	for i := 0; i < b.NumRows(); i++ {
		agg := cube.Agg{SumM: b.M[i], SumMhat: b.Mhat[i], Count: 1}
		for _, srow := range s.Rows {
			for j := 0; j < d; j++ {
				if srow[j] == b.Dims[j][i] {
					lca[j] = srow[j]
				} else {
					lca[j] = rule.Wildcard
				}
			}
			comps += int64(d)
			local.Add(p.PackCodes(lca), agg)
		}
	}
	return comps
}

func lcaIndexedTable(b *engine.TupleBlock, s *Sample, ix *InvertedIndex, p *rule.Packer, local *cube.PackedTable) int64 {
	d := len(b.Dims)
	ns := s.Size()
	wild := p.AllWildcards()
	buf := make([]uint64, ns)
	var ops int64
	for i := 0; i < b.NumRows(); i++ {
		for si := range buf {
			buf[si] = wild
		}
		for j := 0; j < d; j++ {
			v := b.Dims[j][i]
			ops++ // one index lookup per attribute
			for _, si := range ix.Posting(j, v) {
				buf[si] = p.Set(buf[si], j, v)
				ops++
			}
		}
		agg := cube.Agg{SumM: b.M[i], SumMhat: b.Mhat[i], Count: 1}
		for si := 0; si < ns; si++ {
			local.Add(buf[si], agg)
		}
	}
	return ops
}

// AdjustTablesForSample applies the Section 3.1.1 fix-up in place: each
// candidate's aggregates are divided by its sample match count through the
// tables' mutable walk — no rebuilt collection, unlike the map path.
func AdjustTablesForSample(c engine.Backend, candidates *engine.PColl[*cube.PackedTable], s *Sample, codec PackedCodec) error {
	c.Broadcast(s.Bytes())
	errs := make([]error, candidates.NumParts())
	c.RunStage("candgen/adjust", candidates.NumParts(), func(i int) {
		buf := make(rule.Rule, codec.NumDims())
		candidates.Part(i).ForEachPtr(func(key uint64, agg *cube.Agg) bool {
			r, err := codec.DecodeRule(key, buf)
			if err != nil {
				errs[i] = fmt.Errorf("candgen: corrupt candidate key: %w", err)
				return false
			}
			buf = r
			mc := s.MatchCount(r)
			if mc == 0 {
				errs[i] = fmt.Errorf("candgen: candidate %v covers no sample tuple", r.Clone())
				return false
			}
			f := float64(mc)
			agg.SumM /= f
			agg.SumMhat /= f
			agg.Count /= f
			return true
		})
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// TopByGainTables is TopByGain over table partitions: per-partition min-heaps
// merged at the driver, identical scoring, exclusion and tie-break semantics.
func TopByGainTables(c engine.Backend, candidates *engine.PColl[*cube.PackedTable], n int, exclude map[uint64]bool) []Candidate[uint64] {
	if n <= 0 {
		return nil
	}
	tops := engine.MapParts(c, candidates, "candgen/topk", func(_ int, part *cube.PackedTable) []Candidate[uint64] {
		h := make(candHeap[uint64], 0, n+1)
		part.ForEach(func(key uint64, agg cube.Agg) {
			if exclude[key] {
				return
			}
			g := maxent.Gain(agg.SumM, agg.SumMhat)
			if g <= 0 {
				return
			}
			if len(h) < n {
				heap.Push(&h, Candidate[uint64]{Key: key, Gain: g, Agg: agg})
			} else if g > h.Peek().Gain {
				h[0] = Candidate[uint64]{Key: key, Gain: g, Agg: agg}
				heap.Fix(&h, 0)
			}
		})
		return h
	})
	return mergeTopK(tops, n)
}
