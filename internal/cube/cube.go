// Package cube implements the distributed data-cube computation SIRUM's rule
// generation is built on (Section 3.1, after Nandi et al. [25]): every input
// rule instance emits its ancestors along the cube lattice, and aggregates
// (Σm, Σm̂, count) are combined per distinct candidate rule.
//
// Two strategies are provided, selected by how the dimension attributes are
// grouped:
//
//   - a single group of all attributes reproduces the one-round algorithm of
//     BJ SIRUM, where each mapper emits a rule's entire cube lattice;
//   - g ordered column groups reproduce the multi-stage pipeline of Section
//     4.3, where stage j only wildcards attributes of group Gⱼ and feeds its
//     reduced output to stage j+1, shrinking the emitted intermediate volume
//     (Figure 5.8). Appendix A proves the outputs identical; this package's
//     property tests check it.
//
// The pipeline is generic over the key representation (KeySpace). PackedKeys
// keys rules as single uint64 words whenever the dimension dictionaries pack
// into 64 bits (rule.NewPacker) — the fast path, with no allocation per
// emitted ancestor. StringKeys is the general fallback for wider schemas:
// rule.Key strings of 4 bytes per attribute, emitted through a scratch
// buffer and an AggTable so only the first emission of each distinct
// ancestor materializes a string.
//
// On the packed path the round state itself is flat: ComputeTables runs the
// same map/shuffle/merge structure over PackedTable — an open-addressing
// []uint64/[]Agg table with linear probing and in-place merge — instead of
// rebuilding a map[uint64]Agg per stage. Tables are borrowed from the
// backend's per-query scratch arena (BorrowTable/Release, the engine.Scratch
// contract) and Reset between stages, so a warm multi-stage cube reuses the
// same backing arrays across all stages and allocates nothing in steady
// state. All representations produce identical candidate sets; the
// equivalence tests pin that.
package cube

import (
	"fmt"

	"sirum/internal/engine"
	"sirum/internal/metrics"
	"sirum/internal/rule"
)

// Agg carries the aggregates of one candidate rule: the sums of actual and
// estimated measure values over contributing instances and the instance
// count. For LCA instances the count is 1 per (sample tuple, data tuple)
// pair; after the sample fix-up it equals the support size |S_D(r)|.
type Agg struct {
	SumM    float64
	SumMhat float64
	Count   float64
}

// Merge combines two aggregates.
func Merge(a, b Agg) Agg {
	return Agg{SumM: a.SumM + b.SumM, SumMhat: a.SumMhat + b.SumMhat, Count: a.Count + b.Count}
}

// KeySpace abstracts the rule-key representation the cube pipeline runs
// over: the packed-uint64 fast path or the general string path.
type KeySpace[K comparable] interface {
	// NumDims returns the rule arity d.
	NumDims() int
	// MapAncestors runs one map stage over a partition: it emits the proper
	// ancestors of every rule obtained by wildcarding non-empty subsets of
	// the group's attributes, locally combined. It returns the combined map
	// and the number of (ancestor, aggregate) emissions, and fails on
	// corrupt keys or an enumeration past rule.MaxFreeAttrs.
	MapAncestors(part map[K]Agg, group []int) (map[K]Agg, int64, error)
	// RecordBytes sizes one shuffled (key, aggregate) record for cost
	// accounting.
	RecordBytes(k K, v Agg) int
}

// StringKeys is the general-purpose key representation: rule.Key strings of
// 4 bytes per attribute, valid for any arity.
type StringKeys struct{ D int }

// NumDims implements KeySpace.
func (s StringKeys) NumDims() int { return s.D }

// RecordBytes implements KeySpace: the key string plus three float64 fields.
func (s StringKeys) RecordBytes(k string, _ Agg) int { return len(k) + 24 }

// wildcardField overwrites attribute p's four key bytes with the wildcard
// pattern — 0xFF×4, the little-endian encoding of rule.Wildcard, which no
// valid (non-negative) code produces.
func wildcardField(buf []byte, p int) {
	buf[p*4] = 0xFF
	buf[p*4+1] = 0xFF
	buf[p*4+2] = 0xFF
	buf[p*4+3] = 0xFF
}

func isWildcardField(key string, p int) bool {
	return key[p*4] == 0xFF && key[p*4+1] == 0xFF && key[p*4+2] == 0xFF && key[p*4+3] == 0xFF
}

// MapAncestors implements KeySpace. Ancestors are enumerated in place on a
// scratch key buffer — no Rule is materialized per ancestor, and AggTable
// interns each distinct ancestor key once.
func (s StringKeys) MapAncestors(part map[string]Agg, group []int) (map[string]Agg, int64, error) {
	local := NewAggTable(2 * len(part))
	free := make([]int, 0, len(group))
	buf := make([]byte, s.D*4)
	var emitted int64
	for key, agg := range part {
		if len(key) != s.D*4 {
			return nil, 0, fmt.Errorf("cube: corrupt rule key: %d bytes, want %d for arity %d", len(key), s.D*4, s.D)
		}
		free = free[:0]
		for _, p := range group {
			if !isWildcardField(key, p) {
				free = append(free, p)
			}
		}
		if len(free) > rule.MaxFreeAttrs {
			return nil, 0, &rule.BlowupError{Free: len(free)}
		}
		total := 1 << uint(len(free))
		for mask := 1; mask < total; mask++ {
			copy(buf, key)
			for b := 0; b < len(free); b++ {
				if mask&(1<<uint(b)) != 0 {
					wildcardField(buf, free[b])
				}
			}
			local.Add(buf, agg)
			emitted++
		}
	}
	return local.Map(), emitted, nil
}

// PackedKeys is the fast-path key representation: single-word keys from a
// rule.Packer, valid when the dimension dictionaries pack into 64 bits.
type PackedKeys struct{ P *rule.Packer }

// NumDims implements KeySpace.
func (pk PackedKeys) NumDims() int { return pk.P.NumDims() }

// RecordBytes implements KeySpace: an 8-byte packed key plus three float64
// fields (not the string key's 4·d bytes — shuffle cost figures stay honest
// across representations).
func (pk PackedKeys) RecordBytes(_ uint64, _ Agg) int { return 8 + 24 }

// MapAncestors implements KeySpace. Wildcarding an attribute is a single OR
// with its field mask; the whole stage allocates only the output map.
func (pk PackedKeys) MapAncestors(part map[uint64]Agg, group []int) (map[uint64]Agg, int64, error) {
	p := pk.P
	local := make(map[uint64]Agg, 2*len(part))
	free := make([]uint64, 0, len(group))
	total := uint(p.TotalBits())
	var emitted int64
	for key, agg := range part {
		if total < 64 && key>>total != 0 {
			return nil, 0, fmt.Errorf("cube: corrupt packed rule key %#x: bits set beyond the %d-bit layout", key, total)
		}
		free = free[:0]
		for _, pos := range group {
			if m := p.FieldMask(pos); key&m != m {
				free = append(free, m)
			}
		}
		if len(free) > rule.MaxFreeAttrs {
			return nil, 0, &rule.BlowupError{Free: len(free)}
		}
		n := 1 << uint(len(free))
		for mask := 1; mask < n; mask++ {
			anc := key
			for b := 0; b < len(free); b++ {
				if mask&(1<<uint(b)) != 0 {
					anc |= free[b]
				}
			}
			if old, ok := local[anc]; ok {
				local[anc] = Merge(old, agg)
			} else {
				local[anc] = agg
			}
			emitted++
		}
	}
	return local, emitted, nil
}

// AggTable accumulates string-keyed aggregates with allocation-free hot-path
// lookups: the index is consulted via m[string(buf)] (a no-copy access), so
// a key string is materialized only on the first sighting of each distinct
// key. Aggregates live in a flat slice and merge in place.
type AggTable struct {
	idx  map[string]int
	aggs []Agg
}

// NewAggTable returns a table pre-sized for about hint distinct keys.
func NewAggTable(hint int) *AggTable {
	return &AggTable{idx: make(map[string]int, hint), aggs: make([]Agg, 0, hint)}
}

// Add merges agg into the entry for key — a scratch buffer the caller is
// free to reuse immediately after the call.
func (t *AggTable) Add(key []byte, agg Agg) {
	if i, ok := t.idx[string(key)]; ok {
		a := &t.aggs[i]
		a.SumM += agg.SumM
		a.SumMhat += agg.SumMhat
		a.Count += agg.Count
		return
	}
	t.idx[string(key)] = len(t.aggs)
	t.aggs = append(t.aggs, agg)
}

// Len returns the number of distinct keys.
func (t *AggTable) Len() int { return len(t.idx) }

// Map materializes the table as an ordinary keyed map, reusing the interned
// key strings.
func (t *AggTable) Map() map[string]Agg {
	out := make(map[string]Agg, len(t.idx))
	for k, i := range t.idx {
		out[k] = t.aggs[i]
	}
	return out
}

// SplitGroups partitions the attribute positions 0..d-1 into g contiguous,
// near-even ordered groups (the thesis' evaluation splits "evenly into two
// groups"). g is clamped to [1, d].
func SplitGroups(d, g int) [][]int {
	if g < 1 {
		g = 1
	}
	if g > d {
		g = d
	}
	if d == 0 {
		return [][]int{{}}
	}
	out := make([][]int, 0, g)
	per := (d + g - 1) / g
	for start := 0; start < d; start += per {
		end := min(start+per, d)
		grp := make([]int, 0, end-start)
		for p := start; p < end; p++ {
			grp = append(grp, p)
		}
		out = append(out, grp)
	}
	return out
}

// validateGroups checks the groups cover 0..d-1 exactly once.
func validateGroups(d int, groups [][]int) error {
	seen := make([]bool, d)
	n := 0
	for _, g := range groups {
		for _, p := range g {
			if p < 0 || p >= d {
				return fmt.Errorf("cube: group position %d outside [0,%d)", p, d)
			}
			if seen[p] {
				return fmt.Errorf("cube: position %d in multiple groups", p)
			}
			seen[p] = true
			n++
		}
	}
	if n != d {
		return fmt.Errorf("cube: groups cover %d of %d positions", n, d)
	}
	return nil
}

// ComputeKeyed runs the (possibly multi-stage) data-cube over per-partition
// rule aggregates in the given key representation. Input partitions map rule
// keys to their aggregates — for sample-based pruning these are the locally
// combined LCA instances; for exhaustive exploration, the tuples themselves.
// The result partitions every candidate rule (each input rule and all its
// ancestors) uniquely with fully merged aggregates.
//
// Every stage is one map-reduce round: a JobBoundary is charged per round,
// and each emitted ancestor counts toward metrics.CtrPairsEmitted, the
// quantity Figure 5.8 plots. Corrupt keys and over-wide generalizations
// surface as errors, not worker panics.
func ComputeKeyed[K comparable](c engine.Backend, in *engine.PColl[map[K]Agg], ks KeySpace[K], groups [][]int) (*engine.PColl[map[K]Agg], error) {
	if err := validateGroups(ks.NumDims(), groups); err != nil {
		return nil, err
	}
	parts := c.Config().Partitions
	// Round 0: key-partition the input so every rule lives in exactly one
	// partition (the reduce of "computing LCA(s,D)" in the thesis).
	cur := engine.ShuffleByKey(c, in, "cube/partition", parts, Merge, ks.RecordBytes)
	c.JobBoundary()

	for gi, group := range groups {
		group := group
		stage := fmt.Sprintf("cube/stage%d", gi+1)
		// Map: emit this group's proper ancestors, combining locally (the
		// combiner of the MR round). Failures are collected per partition and
		// surfaced after the stage instead of panicking inside a worker.
		errs := make([]error, cur.NumParts())
		gen := engine.MapParts(c, cur, stage+"/map", func(i int, part map[K]Agg) map[K]Agg {
			local, emitted, err := ks.MapAncestors(part, group)
			if err != nil {
				errs[i] = err
				return map[K]Agg{}
			}
			c.Reg().Add(metrics.CtrPairsEmitted, emitted)
			return local
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		// Reduce: co-partition the generated ancestors with the pass-through
		// rules (same hash, same partition count) and merge.
		genRed := engine.ShuffleByKey(c, gen, stage+"/shuffle", parts, Merge, ks.RecordBytes)
		merged := make([]map[K]Agg, parts)
		c.RunStage(stage+"/merge", parts, func(b int) {
			out := cur.Part(b)
			for k, v := range genRed.Part(b) {
				if old, ok := out[k]; ok {
					out[k] = Merge(old, v)
				} else {
					out[k] = v
				}
			}
			merged[b] = out
		})
		cur = engine.NewPColl(merged)
		c.JobBoundary()
	}
	return cur, nil
}

// Compute is ComputeKeyed in the string-key representation — the historical
// entry point, kept for the general path and the cross-representation tests.
func Compute(c engine.Backend, in *engine.PColl[map[string]Agg], d int, groups [][]int) (*engine.PColl[map[string]Agg], error) {
	return ComputeKeyed[string](c, in, StringKeys{D: d}, groups)
}

// ComputePacked is ComputeKeyed in the packed-key representation.
func ComputePacked(c engine.Backend, in *engine.PColl[map[uint64]Agg], p *rule.Packer, groups [][]int) (*engine.PColl[map[uint64]Agg], error) {
	return ComputeKeyed[uint64](c, in, PackedKeys{P: p}, groups)
}

// ComputeSingleStage is Compute with all attributes in one group — the
// one-round algorithm of Naive/BJ SIRUM where mappers emit full cube
// lattices.
func ComputeSingleStage(c engine.Backend, in *engine.PColl[map[string]Agg], d int) (*engine.PColl[map[string]Agg], error) {
	return Compute(c, in, d, SplitGroups(d, 1))
}

// CountCandidates sums the number of distinct candidate rules across the
// result partitions.
func CountCandidates[K comparable](c engine.Backend, candidates *engine.PColl[map[K]Agg]) int64 {
	var total int64
	for _, p := range candidates.Parts() {
		total += int64(len(p))
	}
	return total
}
