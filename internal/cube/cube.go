// Package cube implements the distributed data-cube computation SIRUM's rule
// generation is built on (Section 3.1, after Nandi et al. [25]): every input
// rule instance emits its ancestors along the cube lattice, and aggregates
// (Σm, Σm̂, count) are combined per distinct candidate rule.
//
// Two strategies are provided, selected by how the dimension attributes are
// grouped:
//
//   - a single group of all attributes reproduces the one-round algorithm of
//     BJ SIRUM, where each mapper emits a rule's entire cube lattice;
//   - g ordered column groups reproduce the multi-stage pipeline of Section
//     4.3, where stage j only wildcards attributes of group Gⱼ and feeds its
//     reduced output to stage j+1, shrinking the emitted intermediate volume
//     (Figure 5.8). Appendix A proves the outputs identical; this package's
//     property tests check it.
package cube

import (
	"fmt"

	"sirum/internal/engine"
	"sirum/internal/metrics"
	"sirum/internal/rule"
)

// Agg carries the aggregates of one candidate rule: the sums of actual and
// estimated measure values over contributing instances and the instance
// count. For LCA instances the count is 1 per (sample tuple, data tuple)
// pair; after the sample fix-up it equals the support size |S_D(r)|.
type Agg struct {
	SumM    float64
	SumMhat float64
	Count   float64
}

// Merge combines two aggregates.
func Merge(a, b Agg) Agg {
	return Agg{SumM: a.SumM + b.SumM, SumMhat: a.SumMhat + b.SumMhat, Count: a.Count + b.Count}
}

// aggBytes estimates a shuffled record's size for cost accounting: the rule
// key plus three float64 fields.
func aggBytes(k string, _ Agg) int { return len(k) + 24 }

// SplitGroups partitions the attribute positions 0..d-1 into g contiguous,
// near-even ordered groups (the thesis' evaluation splits "evenly into two
// groups"). g is clamped to [1, d].
func SplitGroups(d, g int) [][]int {
	if g < 1 {
		g = 1
	}
	if g > d {
		g = d
	}
	if d == 0 {
		return [][]int{{}}
	}
	out := make([][]int, 0, g)
	per := (d + g - 1) / g
	for start := 0; start < d; start += per {
		end := min(start+per, d)
		grp := make([]int, 0, end-start)
		for p := start; p < end; p++ {
			grp = append(grp, p)
		}
		out = append(out, grp)
	}
	return out
}

// validateGroups checks the groups cover 0..d-1 exactly once.
func validateGroups(d int, groups [][]int) error {
	seen := make([]bool, d)
	n := 0
	for _, g := range groups {
		for _, p := range g {
			if p < 0 || p >= d {
				return fmt.Errorf("cube: group position %d outside [0,%d)", p, d)
			}
			if seen[p] {
				return fmt.Errorf("cube: position %d in multiple groups", p)
			}
			seen[p] = true
			n++
		}
	}
	if n != d {
		return fmt.Errorf("cube: groups cover %d of %d positions", n, d)
	}
	return nil
}

// Compute runs the (possibly multi-stage) data-cube over per-partition rule
// aggregates. Input partitions map rule keys (rule.Key of arity d) to their
// aggregates — for sample-based pruning these are the locally combined LCA
// instances; for exhaustive exploration, the tuples themselves. The result
// partitions every candidate rule (each input rule and all its ancestors)
// uniquely with fully merged aggregates.
//
// Every stage is one map-reduce round: a JobBoundary is charged per round,
// and each emitted ancestor counts toward metrics.CtrPairsEmitted, the
// quantity Figure 5.8 plots.
func Compute(c engine.Backend, in *engine.PColl[map[string]Agg], d int, groups [][]int) (*engine.PColl[map[string]Agg], error) {
	if err := validateGroups(d, groups); err != nil {
		return nil, err
	}
	parts := c.Config().Partitions
	// Round 0: key-partition the input so every rule lives in exactly one
	// partition (the reduce of "computing LCA(s,D)" in the thesis).
	cur := engine.ShuffleByKey(c, in, "cube/partition", parts, Merge, aggBytes)
	c.JobBoundary()

	for gi, group := range groups {
		group := group
		stage := fmt.Sprintf("cube/stage%d", gi+1)
		// Map: emit the proper ancestors of every current rule obtained by
		// wildcarding non-empty subsets of this group's attributes,
		// combining locally (the combiner of the MR round).
		gen := engine.MapParts(c, cur, stage+"/map", func(_ int, part map[string]Agg) map[string]Agg {
			local := make(map[string]Agg)
			var emitted int64
			buf := make(rule.Rule, d)
			for key, agg := range part {
				r, err := rule.FromKey(key, d)
				if err != nil {
					panic(fmt.Sprintf("cube: corrupt rule key: %v", err))
				}
				copy(buf, r)
				buf.ForEachGeneralization(group, false, func(anc rule.Rule) {
					k := anc.Key()
					if old, ok := local[k]; ok {
						local[k] = Merge(old, agg)
					} else {
						local[k] = agg
					}
					emitted++
				})
			}
			c.Reg().Add(metrics.CtrPairsEmitted, emitted)
			return local
		})
		// Reduce: co-partition the generated ancestors with the pass-through
		// rules (same hash, same partition count) and merge.
		genRed := engine.ShuffleByKey(c, gen, stage+"/shuffle", parts, Merge, aggBytes)
		merged := make([]map[string]Agg, parts)
		c.RunStage(stage+"/merge", parts, func(b int) {
			out := cur.Part(b)
			for k, v := range genRed.Part(b) {
				if old, ok := out[k]; ok {
					out[k] = Merge(old, v)
				} else {
					out[k] = v
				}
			}
			merged[b] = out
		})
		cur = engine.NewPColl(merged)
		c.JobBoundary()
	}
	return cur, nil
}

// ComputeSingleStage is Compute with all attributes in one group — the
// one-round algorithm of Naive/BJ SIRUM where mappers emit full cube
// lattices.
func ComputeSingleStage(c engine.Backend, in *engine.PColl[map[string]Agg], d int) (*engine.PColl[map[string]Agg], error) {
	return Compute(c, in, d, SplitGroups(d, 1))
}

// CountCandidates sums the number of distinct candidate rules across the
// result partitions.
func CountCandidates(c engine.Backend, candidates *engine.PColl[map[string]Agg]) int64 {
	var total int64
	for _, p := range candidates.Parts() {
		total += int64(len(p))
	}
	return total
}
