package cube

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sirum/internal/datagen"
	"sirum/internal/engine"
	"sirum/internal/metrics"
	"sirum/internal/rule"
)

func newTestCluster() *engine.SimBackend {
	return engine.NewSimBackend(engine.Config{Executors: 2, CoresPerExecutor: 2, Partitions: 4})
}

// aggBytes sizes string-keyed records for gather accounting in tests.
func aggBytes(k string, _ Agg) int { return len(k) + 24 }

func TestSplitGroups(t *testing.T) {
	cases := []struct {
		d, g int
		want [][]int
	}{
		{3, 1, [][]int{{0, 1, 2}}},
		{3, 2, [][]int{{0, 1}, {2}}},
		{4, 2, [][]int{{0, 1}, {2, 3}}},
		{5, 3, [][]int{{0, 1}, {2, 3}, {4}}},
		{3, 99, [][]int{{0}, {1}, {2}}},
		{3, 0, [][]int{{0, 1, 2}}},
	}
	for _, c := range cases {
		got := SplitGroups(c.d, c.g)
		if len(got) != len(c.want) {
			t.Errorf("SplitGroups(%d,%d) = %v, want %v", c.d, c.g, got, c.want)
			continue
		}
		for i := range got {
			if len(got[i]) != len(c.want[i]) {
				t.Errorf("SplitGroups(%d,%d) = %v, want %v", c.d, c.g, got, c.want)
				break
			}
			for j := range got[i] {
				if got[i][j] != c.want[i][j] {
					t.Errorf("SplitGroups(%d,%d) = %v, want %v", c.d, c.g, got, c.want)
				}
			}
		}
	}
	if err := validateGroups(3, SplitGroups(3, 2)); err != nil {
		t.Error(err)
	}
}

func TestValidateGroups(t *testing.T) {
	if err := validateGroups(3, [][]int{{0, 1}}); err == nil {
		t.Error("incomplete cover accepted")
	}
	if err := validateGroups(3, [][]int{{0, 1}, {1, 2}}); err == nil {
		t.Error("overlapping groups accepted")
	}
	if err := validateGroups(3, [][]int{{0, 1}, {2, 5}}); err == nil {
		t.Error("out-of-range position accepted")
	}
}

// tupleInstances converts every dataset row into a full-constant rule
// instance, the input of exhaustive cube exploration.
func tupleInstances(parts int) []map[string]Agg {
	ds := datagen.Flights()
	out := make([]map[string]Agg, parts)
	for i := range out {
		out[i] = make(map[string]Agg)
	}
	buf := make([]int32, ds.NumDims())
	for i := 0; i < ds.NumRows(); i++ {
		row, m := ds.Row(i, buf)
		k := rule.FromTuple(row).Key()
		p := i % parts
		out[p][k] = Merge(out[p][k], Agg{SumM: m, SumMhat: 1, Count: 1})
	}
	return out
}

// TestExhaustiveCubeAggregates checks the cube against directly computed
// support sums for every candidate over the flight data.
func TestExhaustiveCubeAggregates(t *testing.T) {
	c := newTestCluster()
	defer c.Close()
	ds := datagen.Flights()
	in := engine.NewPColl(tupleInstances(3))
	res, err := ComputeSingleStage(c, in, 3)
	if err != nil {
		t.Fatal(err)
	}
	candidates := engine.CollectMap(c, res, "gather", Merge, aggBytes)

	// The thesis' example quotes "73 possible rules"; the union of the 14
	// tuples' cube lattices has 74 elements (1 at level 0, 20 at level 1,
	// 39 at level 2, 14 at level 3) — the thesis evidently excludes the
	// always-selected all-wildcards rule.
	if len(candidates) != 74 {
		t.Errorf("candidate count = %d, want 74", len(candidates))
	}
	for key, agg := range candidates {
		r, err := rule.FromKey(key, 3)
		if err != nil {
			t.Fatal(err)
		}
		wantSum, wantCount := r.SupportSums(ds)
		if math.Abs(agg.SumM-wantSum) > 1e-9 || math.Abs(agg.Count-float64(wantCount)) > 1e-9 {
			t.Errorf("rule %s: agg = %+v, want sum %v count %d", r.Format(ds.Dicts), agg, wantSum, wantCount)
		}
	}
	// Spot checks from Table 1.2.
	london, _ := rule.Parse([]string{"*", "*", "London"}, ds)
	if got := candidates[london.Key()]; got.Count != 4 || got.SumM != 61 {
		t.Errorf("(*,*,London) agg = %+v", got)
	}
	all := rule.AllWildcards(3)
	if got := candidates[all.Key()]; got.Count != 14 || got.SumM != 145 {
		t.Errorf("(*,*,*) agg = %+v", got)
	}
}

// TestMultiStageEqualsSingleStage is Theorem 1 (Appendix A): column-grouped
// computation yields exactly the same candidate set with the same
// aggregates.
func TestMultiStageEqualsSingleStage(t *testing.T) {
	for _, g := range []int{1, 2, 3} {
		c1, c2 := newTestCluster(), newTestCluster()
		in1 := engine.NewPColl(tupleInstances(3))
		in2 := engine.NewPColl(tupleInstances(3))
		single, err := ComputeSingleStage(c1, in1, 3)
		if err != nil {
			t.Fatal(err)
		}
		multi, err := Compute(c2, in2, 3, SplitGroups(3, g))
		if err != nil {
			t.Fatal(err)
		}
		a := engine.CollectMap(c1, single, "a", Merge, aggBytes)
		b := engine.CollectMap(c2, multi, "b", Merge, aggBytes)
		if len(a) != len(b) {
			t.Fatalf("g=%d: %d vs %d candidates", g, len(a), len(b))
		}
		for k, va := range a {
			vb, ok := b[k]
			if !ok {
				t.Fatalf("g=%d: candidate missing from multi-stage output", g)
			}
			if math.Abs(va.SumM-vb.SumM) > 1e-9 || math.Abs(va.SumMhat-vb.SumMhat) > 1e-9 || math.Abs(va.Count-vb.Count) > 1e-9 {
				t.Errorf("g=%d key mismatch: %+v vs %+v", g, va, vb)
			}
		}
		c1.Close()
		c2.Close()
	}
}

// TestColumnGroupingEmitsFewerPairs pins the point of Section 4.3: with
// shared ancestors, the multi-stage pipeline emits fewer mapper pairs than
// the single-stage cube.
func TestColumnGroupingEmitsFewerPairs(t *testing.T) {
	c1, c2 := newTestCluster(), newTestCluster()
	defer c1.Close()
	defer c2.Close()
	if _, err := ComputeSingleStage(c1, engine.NewPColl(tupleInstances(3)), 3); err != nil {
		t.Fatal(err)
	}
	if _, err := Compute(c2, engine.NewPColl(tupleInstances(3)), 3, SplitGroups(3, 3)); err != nil {
		t.Fatal(err)
	}
	single := c1.Reg().Counter(metrics.CtrPairsEmitted)
	multi := c2.Reg().Counter(metrics.CtrPairsEmitted)
	if single <= 0 || multi <= 0 {
		t.Fatalf("pair counters not recorded: %d %d", single, multi)
	}
	if multi >= single {
		t.Errorf("multi-stage emitted %d pairs, single-stage %d — expected a reduction", multi, single)
	}
}

// TestSampleCandidateExample pins the worked example of Section 3.1.1: with
// sample {t4, t9}, the LCAs plus their ancestors form exactly the 15 listed
// candidate rules.
func TestSampleCandidateExample(t *testing.T) {
	c := newTestCluster()
	defer c.Close()
	ds := datagen.Flights()
	sampleRows := []int{3, 8} // t4=(Sun,Chicago,London), t9=(Thu,SF,Frankfurt)
	in := make([]map[string]Agg, 2)
	for i := range in {
		in[i] = make(map[string]Agg)
	}
	sbuf, tbuf := make([]int32, 3), make([]int32, 3)
	lca := make(rule.Rule, 3)
	for _, si := range sampleRows {
		srow, _ := ds.Row(si, sbuf)
		for ti := 0; ti < ds.NumRows(); ti++ {
			trow, m := ds.Row(ti, tbuf)
			lca = rule.LCA(srow, trow, lca)
			k := lca.Key()
			p := ti % 2
			in[p][k] = Merge(in[p][k], Agg{SumM: m, SumMhat: 1, Count: 1})
		}
	}
	res, err := Compute(c, engine.NewPColl(in), 3, SplitGroups(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	candidates := engine.CollectMap(c, res, "gather", Merge, aggBytes)
	want := map[string]bool{}
	for _, vals := range [][]string{
		{"*", "*", "*"}, {"*", "*", "London"}, {"*", "*", "Frankfurt"},
		{"*", "Chicago", "*"}, {"*", "SF", "*"}, {"Sun", "*", "*"}, {"Thu", "*", "*"},
		{"Sun", "Chicago", "*"}, {"Sun", "*", "London"}, {"*", "Chicago", "London"},
		{"Thu", "SF", "*"}, {"Thu", "*", "Frankfurt"}, {"*", "SF", "Frankfurt"},
		{"Sun", "Chicago", "London"}, {"Thu", "SF", "Frankfurt"},
	} {
		r, err := rule.Parse(vals, ds)
		if err != nil {
			t.Fatal(err)
		}
		want[r.Key()] = true
	}
	if len(candidates) != 15 {
		t.Errorf("candidate count = %d, want 15", len(candidates))
	}
	for k := range want {
		if _, ok := candidates[k]; !ok {
			r, _ := rule.FromKey(k, 3)
			t.Errorf("missing candidate %s", r.Format(ds.Dicts))
		}
	}
	for k := range candidates {
		if !want[k] {
			r, _ := rule.FromKey(k, 3)
			t.Errorf("unexpected candidate %s", r.Format(ds.Dicts))
		}
	}
}

// TestQuickMultiStageEquivalence fuzzes Theorem 1 over random instance sets,
// arities and groupings.
func TestQuickMultiStageEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := r.Intn(4) + 2
		g := r.Intn(d) + 1
		nInst := r.Intn(20) + 1
		in1 := []map[string]Agg{make(map[string]Agg), make(map[string]Agg)}
		in2 := []map[string]Agg{make(map[string]Agg), make(map[string]Agg)}
		for i := 0; i < nInst; i++ {
			ru := make(rule.Rule, d)
			for j := range ru {
				if r.Intn(4) == 0 {
					ru[j] = rule.Wildcard
				} else {
					ru[j] = int32(r.Intn(3))
				}
			}
			agg := Agg{SumM: float64(r.Intn(100)), SumMhat: float64(r.Intn(100)), Count: 1}
			k := ru.Key()
			p := i % 2
			in1[p][k] = Merge(in1[p][k], agg)
			in2[p][k] = Merge(in2[p][k], agg)
		}
		c1, c2 := newTestCluster(), newTestCluster()
		defer c1.Close()
		defer c2.Close()
		single, err := ComputeSingleStage(c1, engine.NewPColl(in1), d)
		if err != nil {
			return false
		}
		multi, err := Compute(c2, engine.NewPColl(in2), d, SplitGroups(d, g))
		if err != nil {
			return false
		}
		a := engine.CollectMap(c1, single, "a", Merge, aggBytes)
		b := engine.CollectMap(c2, multi, "b", Merge, aggBytes)
		if len(a) != len(b) {
			return false
		}
		for k, va := range a {
			vb, ok := b[k]
			if !ok || math.Abs(va.SumM-vb.SumM) > 1e-6 || math.Abs(va.Count-vb.Count) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestComputeRejectsBadGroups(t *testing.T) {
	c := newTestCluster()
	defer c.Close()
	_, err := Compute(c, engine.NewPColl(tupleInstances(1)), 3, [][]int{{0}})
	if err == nil {
		t.Error("bad groups accepted")
	}
}

func TestCountCandidates(t *testing.T) {
	c := newTestCluster()
	defer c.Close()
	res, err := ComputeSingleStage(c, engine.NewPColl(tupleInstances(2)), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := CountCandidates(c, res); got != 74 {
		t.Errorf("CountCandidates = %d, want 74", got)
	}
}
