package cube

import (
	"fmt"

	"sirum/internal/engine"
	"sirum/internal/metrics"
	"sirum/internal/rule"
)

// TableRecordBytes is the serialized size of one PackedTable slot — the
// 8-byte packed key plus the three float64 aggregate fields — and the honest
// per-record shuffle charge for the table representation (the same figure
// PackedKeys.RecordBytes reports for the map path).
const TableRecordBytes = 8 + 24

// minTableCap is the smallest backing capacity; always a power of two.
const minTableCap = 16

// maxLoadNum/maxLoadDen cap the load factor at 3/4 before doubling.
const (
	maxLoadNum = 3
	maxLoadDen = 4
)

// PackedTable is a flat open-addressing hash table from packed rule keys to
// their aggregates: power-of-two []uint64 keys plus a parallel []Agg slot
// array, linear probing, in-place merge on hit. It replaces the per-stage Go
// maps of the packed cube pipeline: a map is rebuilt and rehashed every
// map/shuffle/merge round, while a PackedTable Resets to empty keeping its
// backing arrays, so a warm multi-stage explore runs the whole round
// structure with zero steady-state allocation.
//
// Key 0 (all attributes at dictionary code 0) is a valid packed rule, so the
// empty-slot sentinel 0 gets a sidecar: hasZero/zero hold that one entry out
// of line. The probe hash is a splitmix64 finalizer — deliberately not the
// engine's mix64 partition hash. After ShuffleTables every key in a
// partition satisfies mix64(k) % parts == p; probing with the same function
// would pile those keys onto a fraction of the slots.
//
// A PackedTable is not safe for concurrent mutation; the pipeline gives each
// partition task its own table. Tables are recycled through the backend
// arena via BorrowTable/Release (the engine.Scratch contract), so concurrent
// queries on one backend borrow disjoint tables.
type PackedTable struct {
	keys    []uint64 // 0 = empty slot
	aggs    []Agg    // aggs[i] is live iff keys[i] != 0; stale otherwise
	mask    uint64   // len(keys) - 1
	n       int      // live entries with non-zero keys
	hasZero bool
	zero    Agg
}

// NewPackedTable returns a table pre-sized for about hint entries.
func NewPackedTable(hint int) *PackedTable {
	t := &PackedTable{}
	t.init(tableCapFor(hint))
	return t
}

// tableCapFor returns the smallest power-of-two capacity that holds hint
// entries under the load cap.
func tableCapFor(hint int) int {
	c := minTableCap
	for c*maxLoadNum < hint*maxLoadDen {
		c *= 2
	}
	return c
}

func (t *PackedTable) init(capacity int) {
	t.keys = make([]uint64, capacity)
	t.aggs = make([]Agg, capacity)
	t.mask = uint64(capacity - 1)
}

// probeHash is the splitmix64 finalizer. See the type comment for why it must
// differ from the engine's partition hash.
func probeHash(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Len returns the number of live entries.
func (t *PackedTable) Len() int {
	if t.hasZero {
		return t.n + 1
	}
	return t.n
}

// Reset clears the table keeping its backing capacity: one memclr of the key
// array. Stale aggregate slots are harmless — a slot is only read after its
// key is written, and writing a key always writes the aggregate.
func (t *PackedTable) Reset() {
	clear(t.keys)
	t.n = 0
	t.hasZero = false
	t.zero = Agg{}
}

// ScratchSize implements engine.Scratch: the backing capacity in slots.
func (t *PackedTable) ScratchSize() int { return len(t.keys) }

// Reserve grows the backing arrays so n total entries fit without further
// rehashing; existing entries are kept.
func (t *PackedTable) Reserve(n int) {
	if c := tableCapFor(n); c > len(t.keys) {
		t.grow(c)
	}
}

// Add merges a into the entry for k, inserting it when absent.
func (t *PackedTable) Add(k uint64, a Agg) {
	if k == 0 {
		if t.hasZero {
			t.zero.SumM += a.SumM
			t.zero.SumMhat += a.SumMhat
			t.zero.Count += a.Count
		} else {
			t.hasZero = true
			t.zero = a
		}
		return
	}
	i := probeHash(k) & t.mask
	for {
		kk := t.keys[i]
		if kk == k {
			ag := &t.aggs[i]
			ag.SumM += a.SumM
			ag.SumMhat += a.SumMhat
			ag.Count += a.Count
			return
		}
		if kk == 0 {
			t.keys[i] = k
			t.aggs[i] = a
			t.n++
			if t.n*maxLoadDen > len(t.keys)*maxLoadNum {
				t.grow(len(t.keys) * 2)
			}
			return
		}
		i = (i + 1) & t.mask
	}
}

// grow rehashes into a capacity-slot backing. Keys are already distinct, so
// reinsertion is probe-to-first-empty with no merge checks.
func (t *PackedTable) grow(capacity int) {
	oldKeys, oldAggs := t.keys, t.aggs
	t.init(capacity)
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		j := probeHash(k) & t.mask
		for t.keys[j] != 0 {
			j = (j + 1) & t.mask
		}
		t.keys[j] = k
		t.aggs[j] = oldAggs[i]
	}
}

// Get returns the aggregate for k.
func (t *PackedTable) Get(k uint64) (Agg, bool) {
	if k == 0 {
		return t.zero, t.hasZero
	}
	i := probeHash(k) & t.mask
	for {
		kk := t.keys[i]
		if kk == k {
			return t.aggs[i], true
		}
		if kk == 0 {
			return Agg{}, false
		}
		i = (i + 1) & t.mask
	}
}

// ForEach visits every live entry.
func (t *PackedTable) ForEach(f func(k uint64, a Agg)) {
	if t.hasZero {
		f(0, t.zero)
	}
	for i, k := range t.keys {
		if k != 0 {
			f(k, t.aggs[i])
		}
	}
}

// ForEachPtr visits every live entry with a mutable aggregate — the in-place
// alternative to rebuilding the table for value fix-ups. Returning false
// stops the walk.
func (t *PackedTable) ForEachPtr(f func(k uint64, a *Agg) bool) {
	if t.hasZero {
		if !f(0, &t.zero) {
			return
		}
	}
	for i, k := range t.keys {
		if k != 0 && !f(k, &t.aggs[i]) {
			return
		}
	}
}

// MergeTable folds every entry of o into t — the table-into-table reduce of
// the cube's merge round.
func (t *PackedTable) MergeTable(o *PackedTable) {
	if o.hasZero {
		t.Add(0, o.zero)
	}
	for i, k := range o.keys {
		if k != 0 {
			t.Add(k, o.aggs[i])
		}
	}
}

// Map materializes the table as an ordinary keyed map (tests and the
// cross-representation oracle; the pipeline never calls it).
func (t *PackedTable) Map() map[uint64]Agg {
	out := make(map[uint64]Agg, t.Len())
	t.ForEach(func(k uint64, a Agg) { out[k] = a })
	return out
}

// Release returns the table to the backend arena so later rounds — of this
// query or the next on the same backend — reuse its backing arrays. Safe on
// bare backends (no-op; the GC takes it with the run). The sirumvet
// pairedlifecycle check enforces that borrowed tables are Released or handed
// off.
func (t *PackedTable) Release(c engine.Backend) {
	engine.ReleaseScratch(c, t)
}

// BorrowTable takes a recycled table sized for about hint entries from the
// backend arena (tracked by the query scope, swept at Finish), allocating a
// fresh one when nothing suitable is free.
func BorrowTable(c engine.Backend, hint int) *PackedTable {
	if s := engine.BorrowScratch(c, tableCapFor(hint)); s != nil {
		if t, ok := s.(*PackedTable); ok {
			t.Reserve(hint)
			return t
		}
		// A foreign Scratch implementation: put it back and allocate.
		engine.ReleaseScratch(c, s)
	}
	t := NewPackedTable(hint)
	engine.TrackScratch(c, t)
	return t
}

// MapAncestorsTable is MapAncestors over tables: it emits the proper
// ancestors of every rule in src — wildcarding non-empty subsets of the
// group's attributes, a single OR per attribute — accumulating directly into
// dst. With src and dst recycled through the arena the warm steady state
// allocates nothing (the free-mask scratch is a stack array).
func (pk PackedKeys) MapAncestorsTable(src, dst *PackedTable, group []int) (int64, error) {
	p := pk.P
	total := uint(p.TotalBits())
	// Packed layouts spend at least one bit per attribute, so 64 masks always
	// suffice; rule.MaxFreeAttrs bounds the enumeration well below that.
	var free [64]uint64
	var emitted int64
	nSlots := len(src.keys)
	for i := -1; i < nSlots; i++ {
		var key uint64
		var agg Agg
		if i < 0 {
			if !src.hasZero {
				continue
			}
			key, agg = 0, src.zero
		} else {
			key = src.keys[i]
			if key == 0 {
				continue
			}
			agg = src.aggs[i]
		}
		if total < 64 && key>>total != 0 {
			return 0, fmt.Errorf("cube: corrupt packed rule key %#x: bits set beyond the %d-bit layout", key, total)
		}
		nf := 0
		for _, pos := range group {
			if m := p.FieldMask(pos); key&m != m {
				free[nf] = m
				nf++
			}
		}
		if nf > rule.MaxFreeAttrs {
			return 0, &rule.BlowupError{Free: nf}
		}
		n := 1 << uint(nf)
		for mask := 1; mask < n; mask++ {
			anc := key
			for b := 0; b < nf; b++ {
				if mask&(1<<uint(b)) != 0 {
					anc |= free[b]
				}
			}
			dst.Add(anc, agg)
			emitted++
		}
	}
	return emitted, nil
}

// borrowTables borrows n tables, each sized for about hint entries.
func borrowTables(c engine.Backend, n, hint int) []*PackedTable {
	ts := make([]*PackedTable, n)
	for i := range ts {
		ts[i] = BorrowTable(c, hint)
	}
	return ts
}

// ReleaseTables returns every partition of a table collection to the arena.
// Callers release a collection as soon as its entries are consumed — copied
// into results or folded into the next round — so one query's iterations
// recycle the same backing arrays.
func ReleaseTables(c engine.Backend, coll *engine.PColl[*PackedTable]) {
	for _, t := range coll.Parts() {
		t.Release(c)
	}
}

// ComputeTables is ComputeKeyed for the packed representation over arena-
// recycled tables: the same round structure — key-partition, then per column
// group one map/shuffle/merge round — but every stage accumulates into flat
// tables instead of fresh Go maps. Two scratch table sets (generated
// ancestors, their reduction) are borrowed once and Reset between stages, and
// the merge folds table-into-table in place, so a multi-stage cube reuses the
// same backing arrays across all stages. The caller owns the returned
// partitions and releases them (ReleaseTables) once consumed.
func ComputeTables(c engine.Backend, in *engine.PColl[*PackedTable], pk PackedKeys, groups [][]int) (*engine.PColl[*PackedTable], error) {
	if err := validateGroups(pk.NumDims(), groups); err != nil {
		return nil, err
	}
	parts := c.Config().Partitions
	records := 0
	for _, t := range in.Parts() {
		records += t.Len()
	}
	hint := records/parts + 1

	// Round 0: key-partition the input so every rule lives in exactly one
	// partition (the reduce of "computing LCA(s,D)" in the thesis).
	cur := borrowTables(c, parts, hint)
	engine.ShuffleTables[*PackedTable, Agg](c, in, "cube/partition", cur, TableRecordBytes)
	c.JobBoundary()

	gen := borrowTables(c, parts, hint)
	red := borrowTables(c, parts, hint)
	release := func(ts []*PackedTable) {
		for _, t := range ts {
			t.Release(c)
		}
	}
	defer release(gen)
	defer release(red)

	for gi, group := range groups {
		group := group
		stage := fmt.Sprintf("cube/stage%d", gi+1)
		// Map: emit this group's proper ancestors, combining locally (the
		// combiner of the MR round). Failures are collected per partition and
		// surfaced after the stage instead of panicking inside a worker.
		errs := make([]error, parts)
		c.RunStage(stage+"/map", parts, func(i int) {
			gen[i].Reset()
			emitted, err := pk.MapAncestorsTable(cur[i], gen[i], group)
			if err != nil {
				errs[i] = err
				return
			}
			c.Reg().Add(metrics.CtrPairsEmitted, emitted)
		})
		for _, err := range errs {
			if err != nil {
				release(cur)
				return nil, err
			}
		}
		// Reduce: co-partition the generated ancestors with the pass-through
		// rules (same hash, same partition count) and merge in place.
		engine.ShuffleTables[*PackedTable, Agg](c, engine.NewPColl(gen), stage+"/shuffle", red, TableRecordBytes)
		c.RunStage(stage+"/merge", parts, func(b int) {
			cur[b].MergeTable(red[b])
		})
		c.JobBoundary()
	}
	return engine.NewPColl(cur), nil
}

// CountTableCandidates sums the number of distinct candidate rules across the
// result partitions.
func CountTableCandidates(c engine.Backend, candidates *engine.PColl[*PackedTable]) int64 {
	var total int64
	for _, p := range candidates.Parts() {
		total += int64(p.Len())
	}
	return total
}
