package cube

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"sirum/internal/datagen"
	"sirum/internal/engine"
	"sirum/internal/metrics"
	"sirum/internal/rule"
)

func flightsPacker(t testing.TB) *rule.Packer {
	t.Helper()
	p, ok := rule.NewPacker(datagen.Flights().DomainSizes())
	if !ok {
		t.Fatal("flights schema does not pack")
	}
	return p
}

// packedTupleInstances is tupleInstances in the packed representation.
func packedTupleInstances(t testing.TB, parts int) []map[uint64]Agg {
	p := flightsPacker(t)
	ds := datagen.Flights()
	out := make([]map[uint64]Agg, parts)
	for i := range out {
		out[i] = make(map[uint64]Agg)
	}
	buf := make([]int32, ds.NumDims())
	for i := 0; i < ds.NumRows(); i++ {
		row, m := ds.Row(i, buf)
		k := p.PackCodes(rule.FromTuple(row))
		pi := i % parts
		out[pi][k] = Merge(out[pi][k], Agg{SumM: m, SumMhat: 1, Count: 1})
	}
	return out
}

func tablesFromMaps(parts []map[uint64]Agg) []*PackedTable {
	out := make([]*PackedTable, len(parts))
	for i, m := range parts {
		t := NewPackedTable(len(m))
		for k, v := range m {
			t.Add(k, v)
		}
		out[i] = t
	}
	return out
}

func sameAggMaps(t *testing.T, label string, a, b map[uint64]Agg) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d entries", label, len(a), len(b))
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			t.Fatalf("%s: key %#x missing", label, k)
		}
		if math.Abs(va.SumM-vb.SumM) > 1e-9 || math.Abs(va.SumMhat-vb.SumMhat) > 1e-9 || math.Abs(va.Count-vb.Count) > 1e-9 {
			t.Fatalf("%s: key %#x: %+v vs %+v", label, k, va, vb)
		}
	}
}

func TestPackedTableBasics(t *testing.T) {
	tb := NewPackedTable(4)
	if tb.Len() != 0 {
		t.Fatalf("fresh table Len = %d", tb.Len())
	}
	// Key 0 is a valid packed rule (all attributes at code 0) and must round
	// trip through the zero-key sidecar.
	tb.Add(0, Agg{SumM: 1, SumMhat: 2, Count: 1})
	tb.Add(0, Agg{SumM: 3, SumMhat: 4, Count: 1})
	tb.Add(7, Agg{SumM: 5, Count: 1})
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
	if a, ok := tb.Get(0); !ok || a.SumM != 4 || a.SumMhat != 6 || a.Count != 2 {
		t.Fatalf("Get(0) = %+v, %v", a, ok)
	}
	if a, ok := tb.Get(7); !ok || a.SumM != 5 {
		t.Fatalf("Get(7) = %+v, %v", a, ok)
	}
	if _, ok := tb.Get(8); ok {
		t.Fatal("Get(8) found a missing key")
	}

	capBefore := tb.ScratchSize()
	tb.Reset()
	if tb.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tb.Len())
	}
	if _, ok := tb.Get(0); ok {
		t.Fatal("zero-key entry survived Reset")
	}
	if tb.ScratchSize() != capBefore {
		t.Fatalf("Reset changed capacity: %d -> %d", capBefore, tb.ScratchSize())
	}

	tb.Add(9, Agg{Count: 1})
	tb.Reserve(10_000)
	if tb.ScratchSize() <= capBefore {
		t.Fatalf("Reserve(10000) kept capacity %d", tb.ScratchSize())
	}
	if a, ok := tb.Get(9); !ok || a.Count != 1 {
		t.Fatalf("entry lost across Reserve: %+v, %v", a, ok)
	}
}

// TestPackedTableMatchesMapModel drives a table and a plain map through the
// same random operation stream — inserts, merges on duplicates, growth well
// past the initial capacity, the zero key — and requires identical contents.
func TestPackedTableMatchesMapModel(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	tb := NewPackedTable(0)
	model := make(map[uint64]Agg)
	for op := 0; op < 5000; op++ {
		k := uint64(r.Intn(700)) // dense space: plenty of merges and probe collisions
		a := Agg{SumM: float64(r.Intn(10)), SumMhat: float64(r.Intn(10)), Count: 1}
		tb.Add(k, a)
		model[k] = Merge(model[k], a)
	}
	if tb.Len() != len(model) {
		t.Fatalf("Len = %d, model has %d", tb.Len(), len(model))
	}
	sameAggMaps(t, "model", model, tb.Map())
	for k, want := range model {
		got, ok := tb.Get(k)
		if !ok || got != want {
			t.Fatalf("Get(%#x) = %+v, %v; want %+v", k, got, ok, want)
		}
	}
}

func TestPackedTableMergeTable(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a, b := NewPackedTable(0), NewPackedTable(0)
	model := make(map[uint64]Agg)
	for i := 0; i < 300; i++ {
		k := uint64(r.Intn(100))
		v := Agg{SumM: float64(i), Count: 1}
		if i%2 == 0 {
			a.Add(k, v)
		} else {
			b.Add(k, v)
		}
		model[k] = Merge(model[k], v)
	}
	a.MergeTable(b)
	sameAggMaps(t, "merge", model, a.Map())
}

// TestMapAncestorsTableMatchesMap holds the table map-stage to the packed map
// path: same ancestors, same aggregates, same emission count.
func TestMapAncestorsTableMatchesMap(t *testing.T) {
	p, ok := rule.NewPacker([]int{5, 9, 2, 4})
	if !ok {
		t.Fatal("packer")
	}
	pk := PackedKeys{P: p}
	r := rand.New(rand.NewSource(3))
	for _, group := range [][]int{{0, 1, 2, 3}, {0, 2}, {1}, {3, 0}} {
		part := make(map[uint64]Agg)
		ru := make(rule.Rule, 4)
		for i := 0; i < 40; i++ {
			for j, dom := range []int32{5, 9, 2, 4} {
				if r.Intn(4) == 0 {
					ru[j] = rule.Wildcard
				} else {
					ru[j] = r.Int31n(dom)
				}
			}
			k := p.PackCodes(ru)
			part[k] = Merge(part[k], Agg{SumM: float64(r.Intn(50)), SumMhat: 1, Count: 1})
		}
		src := NewPackedTable(len(part))
		for k, v := range part {
			src.Add(k, v)
		}
		wantMap, wantEmitted, err := pk.MapAncestors(part, group)
		if err != nil {
			t.Fatal(err)
		}
		dst := NewPackedTable(0)
		emitted, err := pk.MapAncestorsTable(src, dst, group)
		if err != nil {
			t.Fatal(err)
		}
		if emitted != wantEmitted {
			t.Errorf("group %v: emitted %d, map path emitted %d", group, emitted, wantEmitted)
		}
		sameAggMaps(t, "ancestors", wantMap, dst.Map())
	}
}

func TestMapAncestorsTableRejectsCorruptKey(t *testing.T) {
	p, _ := rule.NewPacker([]int{5, 9, 2})
	src := NewPackedTable(1)
	src.Add(uint64(1)<<63, Agg{Count: 1}) // bits beyond the packed layout
	if _, err := (PackedKeys{P: p}).MapAncestorsTable(src, NewPackedTable(0), []int{0, 1, 2}); err == nil {
		t.Error("corrupt key accepted")
	}
}

func TestMapAncestorsTableRejectsBlowup(t *testing.T) {
	doms := make([]int, rule.MaxFreeAttrs+1)
	for i := range doms {
		doms[i] = 1 // 1-bit fields: all MaxFreeAttrs+1 dims pack easily
	}
	p, ok := rule.NewPacker(doms)
	if !ok {
		t.Fatal("packer")
	}
	src := NewPackedTable(1)
	src.Add(0, Agg{Count: 1}) // all-constant rule: every attribute is free
	group := make([]int, len(doms))
	for i := range group {
		group[i] = i
	}
	_, err := (PackedKeys{P: p}).MapAncestorsTable(src, NewPackedTable(0), group)
	if _, ok := err.(*rule.BlowupError); !ok {
		t.Errorf("err = %v, want *rule.BlowupError", err)
	}
}

// TestComputeTablesMatchesComputePacked is the tentpole's correctness oracle:
// the table pipeline must produce exactly the candidate set of the map
// pipeline, for single- and multi-stage groupings.
func TestComputeTablesMatchesComputePacked(t *testing.T) {
	p := flightsPacker(t)
	pk := PackedKeys{P: p}
	for _, g := range []int{1, 2, 3} {
		c1, c2 := newTestCluster(), newTestCluster()
		groups := SplitGroups(3, g)
		maps, err := ComputePacked(c1, engine.NewPColl(packedTupleInstances(t, 3)), p, groups)
		if err != nil {
			t.Fatal(err)
		}
		tables, err := ComputeTables(c2, engine.NewPColl(tablesFromMaps(packedTupleInstances(t, 3))), pk, groups)
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[uint64]Agg)
		for _, part := range maps.Parts() {
			for k, v := range part {
				want[k] = Merge(want[k], v)
			}
		}
		got := make(map[uint64]Agg)
		for _, part := range tables.Parts() {
			part.ForEach(func(k uint64, a Agg) {
				if _, dup := got[k]; dup {
					t.Errorf("g=%d: key %#x in two table partitions", g, k)
				}
				got[k] = a
			})
		}
		if CountTableCandidates(c2, tables) != 74 {
			t.Errorf("g=%d: CountTableCandidates = %d, want 74", g, CountTableCandidates(c2, tables))
		}
		sameAggMaps(t, "compute", want, got)
		c1.Close()
		c2.Close()
	}
}

// TestQuickComputeTablesEquivalence fuzzes the oracle over random instance
// sets, arities and groupings, like TestQuickMultiStageEquivalence does for
// the string path.
func TestQuickComputeTablesEquivalence(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		r := rand.New(rand.NewSource(seed))
		d := r.Intn(4) + 2
		g := r.Intn(d) + 1
		doms := make([]int, d)
		for j := range doms {
			doms[j] = r.Intn(6) + 2
		}
		p, ok := rule.NewPacker(doms)
		if !ok {
			t.Fatal("packer")
		}
		nInst := r.Intn(20) + 1
		in1 := []map[uint64]Agg{make(map[uint64]Agg), make(map[uint64]Agg)}
		ru := make(rule.Rule, d)
		for i := 0; i < nInst; i++ {
			for j := range ru {
				if r.Intn(4) == 0 {
					ru[j] = rule.Wildcard
				} else {
					ru[j] = r.Int31n(int32(doms[j]))
				}
			}
			agg := Agg{SumM: float64(r.Intn(100)), SumMhat: float64(r.Intn(100)), Count: 1}
			k := p.PackCodes(ru)
			in1[i%2][k] = Merge(in1[i%2][k], agg)
		}
		c1, c2 := newTestCluster(), newTestCluster()
		groups := SplitGroups(d, g)
		maps, err := ComputePacked(c1, engine.NewPColl(in1), p, groups)
		if err != nil {
			t.Fatal(err)
		}
		tables, err := ComputeTables(c2, engine.NewPColl(tablesFromMaps(in1)), PackedKeys{P: p}, groups)
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[uint64]Agg)
		for _, part := range maps.Parts() {
			for k, v := range part {
				want[k] = Merge(want[k], v)
			}
		}
		got := make(map[uint64]Agg)
		for _, part := range tables.Parts() {
			part.ForEach(func(k uint64, a Agg) { got[k] = a })
		}
		sameAggMaps(t, "quick", want, got)
		c1.Close()
		c2.Close()
	}
}

// TestTableShuffleAccounting pins the honest shuffle cost of the table path:
// every record is charged TableRecordBytes = 32 bytes — the 8-byte packed key
// plus the 24-byte aggregate — exactly like PackedKeys.RecordBytes on the map
// path, and every input entry lands in exactly one output partition.
func TestTableShuffleAccounting(t *testing.T) {
	c := newTestCluster()
	defer c.Close()
	in := tablesFromMaps(packedTupleInstances(t, 3))
	var records int64
	want := make(map[uint64]Agg)
	for _, tb := range in {
		records += int64(tb.Len())
		tb.ForEach(func(k uint64, a Agg) { want[k] = Merge(want[k], a) })
	}
	dst := make([]*PackedTable, c.Config().Partitions)
	for i := range dst {
		dst[i] = NewPackedTable(0)
	}
	out := engine.ShuffleTables[*PackedTable, Agg](c, engine.NewPColl(in), "t", dst, TableRecordBytes)

	if got := c.Reg().Counter(metrics.CtrShuffleBytes); got != records*TableRecordBytes {
		t.Errorf("shuffle bytes = %d, want %d records x %d B = %d", got, records, TableRecordBytes, records*TableRecordBytes)
	}
	if got := c.Reg().Counter(metrics.CtrShuffleRecords); got != records {
		t.Errorf("shuffle records = %d, want %d", got, records)
	}
	got := make(map[uint64]Agg)
	for _, part := range out.Parts() {
		part.ForEach(func(k uint64, a Agg) {
			if _, dup := got[k]; dup {
				t.Errorf("key %#x in two output partitions", k)
			}
			got[k] = a
		})
	}
	sameAggMaps(t, "shuffle", want, got)
}

// TestMapAncestorsTableAllocs pins the tentpole's allocation contract: a warm
// cube map stage over recycled tables allocates nothing per run.
func TestMapAncestorsTableAllocs(t *testing.T) {
	p := flightsPacker(t)
	pk := PackedKeys{P: p}
	src := tablesFromMaps(packedTupleInstances(t, 1))[0]
	dst := NewPackedTable(0)
	group := []int{0, 1, 2}
	// Warm run: dst grows to its steady-state capacity once.
	if _, err := pk.MapAncestorsTable(src, dst, group); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(50, func() {
		dst.Reset()
		if _, err := pk.MapAncestorsTable(src, dst, group); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Errorf("warm map stage allocates %v objects/op, want 0", got)
	}
}

// TestTableArenaConcurrentDisjointBorrows runs concurrent scoped queries
// borrowing tables from one backend's arena, each stamping its tables with a
// sentinel entry — no table may be live in two queries at once. The CI race
// step (-race -run Concurrent) also exercises the arena bookkeeping.
func TestTableArenaConcurrentDisjointBorrows(t *testing.T) {
	b := engine.NewNativeBackend(engine.Config{MemoryPerExecutor: 1 << 30})
	defer b.Close()

	const workers, rounds, perRound = 8, 25, 3
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				qc := engine.NewQueryScope(b)
				stamp := uint64(w*rounds + round + 1)
				held := make([]*PackedTable, 0, perRound)
				for i := 0; i < perRound; i++ {
					tb := BorrowTable(qc, 64)
					if tb.Len() != 0 {
						errs <- fmt.Errorf("borrowed table not Reset: %d live entries", tb.Len())
						qc.Finish()
						return
					}
					tb.Add(stamp, Agg{SumM: float64(stamp), Count: 1})
					held = append(held, tb)
				}
				for _, tb := range held {
					a, ok := tb.Get(stamp)
					if !ok || tb.Len() != 1 || a.SumM != float64(stamp) {
						errs <- fmt.Errorf("table shared across concurrent queries (worker %d round %d)", w, round)
						qc.Finish()
						return
					}
				}
				// Alternate early release with the Finish sweep.
				if round%2 == 0 {
					for _, tb := range held {
						tb.Release(qc)
					}
				}
				qc.Finish()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// FuzzPackedTable drives insert/merge/reset/grow sequences against a map
// model.
func FuzzPackedTable(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 255, 7})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		tb := NewPackedTable(0)
		model := make(map[uint64]Agg)
		for i := 0; i+1 < len(data); i += 2 {
			op, kb := data[i], data[i+1]
			k := uint64(kb)
			switch op % 8 {
			case 7:
				tb.Reset()
				model = make(map[uint64]Agg)
			case 6:
				got, ok := tb.Get(k)
				want, wok := model[k]
				if ok != wok || got != want {
					t.Fatalf("Get(%d) = %+v,%v; model %+v,%v", k, got, ok, want, wok)
				}
			default:
				a := Agg{SumM: float64(op), SumMhat: 1, Count: 1}
				tb.Add(k, a)
				model[k] = Merge(model[k], a)
			}
		}
		if tb.Len() != len(model) {
			t.Fatalf("Len = %d, model %d", tb.Len(), len(model))
		}
		for k, want := range model {
			if got, ok := tb.Get(k); !ok || got != want {
				t.Fatalf("final Get(%d) = %+v,%v; want %+v", k, got, ok, want)
			}
		}
	})
}
