package router

// The in-process cluster harness: real sirumd app servers on loopback
// listeners, a real router in front, everything driven over HTTP exactly
// as production traffic would arrive. Shards can be killed and restarted
// *on the same address* (their snapshot directory surviving), which is
// what makes the failover test honest: the router sees connection
// refusals, not polite shutdowns.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sirum/internal/server"
	"sirum/internal/spec"
)

// testShard is one shard daemon on a stable loopback address.
type testShard struct {
	conf server.Config
	srv  *server.Server
	hs   *http.Server
	addr string
	base string
	c    *server.Client
}

// startShardOn serves a fresh server.New(conf) on addr ("127.0.0.1:0"
// for the first boot, the recorded address for a restart), restoring from
// conf.SnapshotDir when set. Rebinding a just-freed port can race the
// kernel, so it retries briefly.
func startShardOn(t *testing.T, addr string, conf server.Config) *testShard {
	t.Helper()
	var ln net.Listener
	var err error
	for i := 0; i < 100; i++ {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("listening on %s: %v", addr, err)
	}
	srv := server.New(conf)
	if conf.SnapshotDir != "" {
		if _, err := srv.Restore(); err != nil {
			t.Fatalf("restoring shard snapshot: %v", err)
		}
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	return &testShard{
		conf: conf, srv: srv, hs: hs,
		addr: ln.Addr().String(), base: base,
		c: &server.Client{BaseURL: base, HTTP: &http.Client{Timeout: time.Minute}},
	}
}

// kill stops the shard hard: the listener closes, in-flight connections
// drop, and the port frees up for a later restart.
func (s *testShard) kill() {
	s.hs.Close()
	s.srv.Close()
}

// restart brings the shard back on its original address with its original
// config — with a snapshot directory, its sessions resume at their prior
// epochs.
func (s *testShard) restart(t *testing.T) *testShard {
	t.Helper()
	return startShardOn(t, s.addr, s.conf)
}

// cluster is N shards plus a router serving them over httptest.
type cluster struct {
	shards []*testShard
	rt     *Router
	ts     *httptest.Server
	c      *server.Client
}

// newCluster stands the cluster up. The router's health loop stays off:
// tests drive CheckHealth explicitly so state transitions are
// deterministic under -race.
func newCluster(t *testing.T, n int, snapshots bool) *cluster {
	t.Helper()
	cl := &cluster{}
	bases := make([]string, 0, n)
	for i := 0; i < n; i++ {
		conf := server.Config{ShardID: fmt.Sprintf("ts%d", i)}
		if snapshots {
			conf.SnapshotDir = t.TempDir()
		}
		sh := startShardOn(t, "127.0.0.1:0", conf)
		cl.shards = append(cl.shards, sh)
		bases = append(bases, sh.base)
	}
	rt, err := New(Config{Shards: bases, HealthInterval: -1})
	if err != nil {
		t.Fatalf("building router: %v", err)
	}
	cl.rt = rt
	cl.ts = httptest.NewServer(rt.Handler())
	cl.c = &server.Client{BaseURL: cl.ts.URL, HTTP: &http.Client{Timeout: time.Minute}}
	t.Cleanup(func() {
		cl.ts.Close()
		cl.rt.Close()
		for _, sh := range cl.shards {
			sh.kill()
		}
	})
	return cl
}

// holder scans the shards directly for the session — the ground truth the
// router's placement claims are checked against.
func (cl *cluster) holder(t *testing.T, id string) *testShard {
	t.Helper()
	var found *testShard
	for _, sh := range cl.shards {
		if _, err := sh.c.GetSession(id); err == nil {
			if found != nil {
				t.Fatalf("session %q exists on both %s and %s", id, found.base, sh.base)
			}
			found = sh
		}
	}
	if found == nil {
		t.Fatalf("session %q exists on no shard", id)
	}
	return found
}

func mustSpec(t *testing.T, req server.CreateRequest) spec.DatasetSpec {
	t.Helper()
	ds, err := req.DatasetSpec()
	if err != nil {
		t.Fatalf("computing dataset spec: %v", err)
	}
	return ds
}

func assertSameRules(t *testing.T, ctx string, got, want []server.RuleJSON) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rules, want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if got[i].Display != want[i].Display || got[i].Count != want[i].Count {
			t.Fatalf("%s: rule %d is %s (%d), want %s (%d)",
				ctx, i, got[i].Display, got[i].Count, want[i].Display, want[i].Count)
		}
	}
}

// appendRow fabricates one schema-valid row for a session from its dims.
func appendRow(t *testing.T, c *server.Client, id string, measure float64) server.RowJSON {
	t.Helper()
	info, err := c.GetSession(id)
	if err != nil {
		t.Fatalf("getting session %q: %v", id, err)
	}
	dims := make([]string, len(info.Dims))
	for i := range dims {
		dims[i] = "appended"
	}
	return server.RowJSON{Dims: dims, Measure: measure}
}

const testCSV = "Day,City,Delay\nMon,NY,10\nMon,LA,12\nTue,NY,14\nTue,LA,9\nWed,NY,22\nWed,LA,7\nThu,NY,13\nThu,LA,11\n"

// refSessions is the mixed workload both the cluster and the single-node
// baseline create: two same-source income sessions (they must co-locate),
// a distinct generator and a CSV source.
func refSessions() []server.CreateRequest {
	return []server.CreateRequest{
		{ID: "inc-a", Generator: &server.GeneratorSpec{Name: "income", Rows: 300, Seed: 1},
			Prepare: server.PrepareSpec{SampleSize: 16, Seed: 1}},
		{ID: "inc-b", Generator: &server.GeneratorSpec{Name: "income", Rows: 500, Seed: 2},
			Prepare: server.PrepareSpec{SampleSize: 16, Seed: 1}},
		{ID: "gd", Generator: &server.GeneratorSpec{Name: "gdelt", Rows: 400, Seed: 1},
			Prepare: server.PrepareSpec{SampleSize: 16, Seed: 1}},
		{ID: "csv", CSV: testCSV, Measure: "Delay"},
	}
}

// TestClusterMatchesSingleNodeBaseline is the core equivalence check: the
// routed 3-shard cluster must be observationally identical to one daemon —
// same rules, same explores, same append effects — and stay so under a
// concurrent mixed storm. Run with -race.
func TestClusterMatchesSingleNodeBaseline(t *testing.T) {
	cl := newCluster(t, 3, false)
	single := server.New(server.Config{})
	defer single.Close()
	sts := httptest.NewServer(single.Handler())
	defer sts.Close()
	sc := &server.Client{BaseURL: sts.URL, HTTP: &http.Client{Timeout: time.Minute}}

	reqs := refSessions()
	for _, req := range reqs {
		if _, err := cl.c.CreateSession(req); err != nil {
			t.Fatalf("cluster create %q: %v", req.ID, err)
		}
		if _, err := sc.CreateSession(req); err != nil {
			t.Fatalf("single create %q: %v", req.ID, err)
		}
	}

	// Sequential reference pass: every (session, seed) answer through the
	// router must equal the single node's.
	seeds := []int64{1, 2}
	refs := map[string]map[int64]server.MineResponse{}
	for _, req := range reqs {
		refs[req.ID] = map[int64]server.MineResponse{}
		for _, seed := range seeds {
			mreq := server.MineRequest{K: 3, SampleSize: 16, Seed: seed}
			want, err := sc.Mine(req.ID, mreq)
			if err != nil {
				t.Fatalf("single mine %q seed %d: %v", req.ID, seed, err)
			}
			got, err := cl.c.Mine(req.ID, mreq)
			if err != nil {
				t.Fatalf("cluster mine %q seed %d: %v", req.ID, seed, err)
			}
			assertSameRules(t, fmt.Sprintf("mine %q seed %d", req.ID, seed), got.Rules, want.Rules)
			refs[req.ID][seed] = want
		}
		ereq := server.ExploreRequest{K: 2, GroupBys: 1, Seed: 1}
		want, err := sc.Explore(req.ID, ereq)
		if err != nil {
			t.Fatalf("single explore %q: %v", req.ID, err)
		}
		got, err := cl.c.Explore(req.ID, ereq)
		if err != nil {
			t.Fatalf("cluster explore %q: %v", req.ID, err)
		}
		assertSameRules(t, fmt.Sprintf("explore %q", req.ID), got.Rules, want.Rules)
	}

	// A repeat of an already-asked query must come back from the shard's
	// result cache, visible through the proxy.
	repeat, err := cl.c.Mine("inc-a", server.MineRequest{K: 3, SampleSize: 16, Seed: 1})
	if err != nil {
		t.Fatalf("repeat mine: %v", err)
	}
	if !repeat.Cached {
		t.Error("repeat query did not report \"cached\": true through the proxy")
	}

	// Appends must have identical effects on both sides.
	row := server.RowJSON{Dims: []string{"Fri", "NY"}, Measure: 55}
	areq := server.AppendRequest{Rows: []server.RowJSON{row, row}, MineRequest: server.MineRequest{K: 2}}
	wantA, err := sc.AppendRows("csv", areq)
	if err != nil {
		t.Fatalf("single append: %v", err)
	}
	gotA, err := cl.c.AppendRows("csv", areq)
	if err != nil {
		t.Fatalf("cluster append: %v", err)
	}
	if gotA.Rows != wantA.Rows || gotA.Remined != wantA.Remined {
		t.Fatalf("append through router: rows=%d remined=%v, single node rows=%d remined=%v",
			gotA.Rows, gotA.Remined, wantA.Rows, wantA.Remined)
	}
	info, err := cl.c.GetSession("csv")
	if err != nil {
		t.Fatalf("get csv: %v", err)
	}
	if info.Stats == nil || info.Stats.Epoch != 1 {
		t.Fatalf("csv session epoch after append: %+v, want 1", info.Stats)
	}
	mreq := server.MineRequest{K: 2, Seed: 1}
	want, err := sc.Mine("csv", mreq)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.c.Mine("csv", mreq)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRules(t, "post-append mine", got.Rules, want.Rules)
	// Both sides absorbed the same append, so refresh the csv references
	// for the storm from the single node's post-append answers.
	for _, seed := range seeds {
		ref, err := sc.Mine("csv", server.MineRequest{K: 3, SampleSize: 16, Seed: seed})
		if err != nil {
			t.Fatalf("refreshing csv ref seed %d: %v", seed, err)
		}
		refs["csv"][seed] = ref
	}

	// Concurrent mixed storm against the reference answers: 6 query
	// workers over the ref sessions, 2 append workers on their own
	// sessions, 1 worker hammering the control plane. Everything here is
	// what -race watches.
	for _, id := range []string{"app-x", "app-y"} {
		req := server.CreateRequest{
			ID:        id,
			Generator: &server.GeneratorSpec{Name: "income", Rows: 250, Seed: 9},
			Prepare:   server.PrepareSpec{SampleSize: 16, Seed: 1},
		}
		if _, err := cl.c.CreateSession(req); err != nil {
			t.Fatalf("creating %q: %v", id, err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				req := reqs[(w+i)%len(reqs)]
				seed := seeds[(w+i)%len(seeds)]
				got, err := cl.c.Mine(req.ID, server.MineRequest{K: 3, SampleSize: 16, Seed: seed})
				if err != nil {
					errs <- fmt.Errorf("storm mine %q seed %d: %w", req.ID, seed, err)
					return
				}
				want := refs[req.ID][seed]
				if len(got.Rules) != len(want.Rules) {
					errs <- fmt.Errorf("storm mine %q seed %d: %d rules, want %d", req.ID, seed, len(got.Rules), len(want.Rules))
					return
				}
				for j := range got.Rules {
					if got.Rules[j].Display != want.Rules[j].Display || got.Rules[j].Count != want.Rules[j].Count {
						errs <- fmt.Errorf("storm mine %q seed %d diverged at rule %d", req.ID, seed, j)
						return
					}
				}
			}
		}(w)
	}
	for w, id := range []string{"app-x", "app-y"} {
		row := appendRow(t, cl.c, id, float64(10+w))
		wg.Add(1)
		go func(id string, row server.RowJSON) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if _, err := cl.c.AppendRows(id, server.AppendRequest{
					Rows:        []server.RowJSON{row},
					MineRequest: server.MineRequest{K: 2},
				}); err != nil {
					errs <- fmt.Errorf("storm append %q: %w", id, err)
					return
				}
			}
		}(id, row)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if _, err := cl.c.ListSessions(); err != nil {
				errs <- fmt.Errorf("storm list: %w", err)
				return
			}
			if _, err := cl.c.Health(); err != nil {
				errs <- fmt.Errorf("storm health: %w", err)
				return
			}
			if _, err := cl.c.MetricsText(); err != nil {
				errs <- fmt.Errorf("storm metrics: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for _, id := range []string{"app-x", "app-y"} {
		info, err := cl.c.GetSession(id)
		if err != nil {
			t.Fatalf("get %q: %v", id, err)
		}
		if info.Stats == nil || info.Stats.Epoch != 3 {
			t.Errorf("session %q absorbed epoch %v, want 3", id, info.Stats)
		}
	}
}

// TestPlacementDeterministicByFingerprint pins the placement contract:
// explicit-id sessions land exactly where consistent hashing over their
// spec fingerprint says, same-source sessions co-locate, and auto-id
// sessions land where their assigned id hashes.
func TestPlacementDeterministicByFingerprint(t *testing.T) {
	cl := newCluster(t, 3, false)
	reqs := refSessions()
	for _, req := range reqs {
		want, err := cl.rt.Place(spec.RoutingKey(mustSpec(t, req)))
		if err != nil {
			t.Fatalf("placing %q: %v", req.ID, err)
		}
		if _, err := cl.c.CreateSession(req); err != nil {
			t.Fatalf("creating %q: %v", req.ID, err)
		}
		if got := cl.holder(t, req.ID).base; got != want {
			t.Errorf("session %q landed on %s, placement said %s", req.ID, got, want)
		}
	}

	// Same source, different name: the fingerprint is the routing key, so
	// both sessions must share a shard (and therefore its result cache).
	twin := reqs[0]
	twin.ID = "inc-a-twin"
	if _, err := cl.c.CreateSession(twin); err != nil {
		t.Fatalf("creating twin: %v", err)
	}
	if a, b := cl.holder(t, "inc-a").base, cl.holder(t, "inc-a-twin").base; a != b {
		t.Errorf("same-source sessions split across %s and %s; they must co-locate", a, b)
	}

	// Anonymous sessions route by their assigned id instead, so identical
	// specs spread rather than pile up.
	auto, err := cl.c.CreateSession(server.CreateRequest{
		Generator: &server.GeneratorSpec{Name: "income", Rows: 300, Seed: 1},
		Prepare:   server.PrepareSpec{SampleSize: 16, Seed: 1},
	})
	if err != nil {
		t.Fatalf("auto-id create: %v", err)
	}
	if auto.ID == "" {
		t.Fatal("auto-id create returned an empty id")
	}
	want, err := cl.rt.Place(spec.RoutingKeyForID(auto.ID))
	if err != nil {
		t.Fatal(err)
	}
	if got := cl.holder(t, auto.ID).base; got != want {
		t.Errorf("auto-id session %q landed on %s, id-hash placement said %s", auto.ID, got, want)
	}
}

// TestFailoverKillAndRestore kills a shard mid-traffic and requires the
// router to (1) answer clean 502/503 JSON for that shard's sessions, (2)
// serve every other shard unimpeded, and (3) resume the shard's sessions
// at their prior epochs once it restarts from its snapshot directory.
func TestFailoverKillAndRestore(t *testing.T) {
	cl := newCluster(t, 3, true)

	// Spread sessions until at least two shards hold one; fingerprints are
	// deterministic, so this converges immediately in practice.
	mreq := server.MineRequest{K: 2, SampleSize: 16, Seed: 1}
	baselines := map[string]server.MineResponse{}
	byShard := map[string][]string{}
	for i := 0; i < 6; i++ {
		id := fmt.Sprintf("f%d", i)
		if _, err := cl.c.CreateSession(server.CreateRequest{
			ID:        id,
			Generator: &server.GeneratorSpec{Name: "income", Rows: 250, Seed: int64(i + 1)},
			Prepare:   server.PrepareSpec{SampleSize: 16, Seed: 1},
		}); err != nil {
			t.Fatalf("creating %q: %v", id, err)
		}
		resp, err := cl.c.Mine(id, mreq)
		if err != nil {
			t.Fatalf("baseline mine %q: %v", id, err)
		}
		baselines[id] = resp
		sh := cl.holder(t, id)
		byShard[sh.base] = append(byShard[sh.base], id)
	}
	if len(byShard) < 2 {
		t.Fatalf("all sessions landed on one shard; placement spread is broken: %v", byShard)
	}

	// Victim: the shard holding f0. Append one batch first so the restart
	// has a journaled epoch to prove.
	var victim *testShard
	for _, sh := range cl.shards {
		for _, id := range byShard[sh.base] {
			if id == "f0" {
				victim = sh
			}
		}
	}
	row := appendRow(t, cl.c, "f0", 42)
	if _, err := cl.c.AppendRows("f0", server.AppendRequest{
		Rows: []server.RowJSON{row}, MineRequest: server.MineRequest{K: 2},
	}); err != nil {
		t.Fatalf("appending to f0: %v", err)
	}
	postAppend, err := cl.c.Mine("f0", mreq)
	if err != nil {
		t.Fatalf("post-append mine: %v", err)
	}

	victim.kill()

	// The first request discovers the dead shard (transport error → 502 and
	// a mark-down); every request after that fails fast with 503. Both are
	// JSON with the uniform error shape.
	for attempt := 0; attempt < 2; attempt++ {
		status, body := rawMine(t, cl.ts.URL, "f0", mreq)
		if status != http.StatusBadGateway && status != http.StatusServiceUnavailable {
			t.Fatalf("attempt %d against dead shard: status %d, want 502/503; body %s", attempt, status, body)
		}
		var e server.ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Fatalf("attempt %d: error body not the uniform JSON shape: %s", attempt, body)
		}
		if attempt == 1 && status != http.StatusServiceUnavailable {
			t.Fatalf("marked-down shard answered %d, want fast 503", status)
		}
	}

	// Everyone else is unimpeded, and the control plane reports the damage.
	for base, ids := range byShard {
		if base == victim.base {
			continue
		}
		for _, id := range ids {
			resp, err := cl.c.Mine(id, mreq)
			if err != nil {
				t.Fatalf("mine %q with a dead sibling shard: %v", id, err)
			}
			assertSameRules(t, fmt.Sprintf("degraded mine %q", id), resp.Rules, baselines[id].Rules)
		}
	}
	cl.rt.CheckHealth()
	var h HealthResponse
	if err := cl.c.Do("GET", "/v1/healthz", nil, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || h.ShardsUp != 2 {
		t.Fatalf("router health with one dead shard: %+v", h)
	}
	var shardsResp ShardsResponse
	if err := cl.c.Do("GET", "/v1/shards", nil, &shardsResp); err != nil {
		t.Fatal(err)
	}
	for _, si := range shardsResp.Shards {
		if wantUp := si.Base != victim.base; si.Up != wantUp {
			t.Errorf("shard %s up=%v, want %v", si.Base, si.Up, wantUp)
		}
	}

	// A down shard's sessions must 503, never 404: the data still exists.
	if status, _ := rawMine(t, cl.ts.URL, "f0", mreq); status != http.StatusServiceUnavailable {
		t.Fatalf("dead shard's session answered %d, want 503", status)
	}

	// A named create whose home shard is down must also 503 — landing the
	// name on the ring successor would split-brain it when the shard
	// returns with its sessions.
	for seed := int64(1); ; seed++ {
		cand := server.CreateRequest{
			ID:        fmt.Sprintf("homed-%d", seed),
			Generator: &server.GeneratorSpec{Name: "income", Rows: 250, Seed: seed + 100},
			Prepare:   server.PrepareSpec{SampleSize: 16, Seed: 1},
		}
		if cl.shards[cl.rt.ring.walk(spec.RoutingKey(mustSpec(t, cand)))[0]] != victim {
			if seed > 100 {
				t.Fatal("no spec homed on the victim shard in 100 seeds")
			}
			continue
		}
		if _, err := cl.c.CreateSession(cand); err == nil || !strings.Contains(err.Error(), "(503)") {
			t.Errorf("create homed on a dead shard: got %v, want 503", err)
		}
		break
	}

	// Restart on the same address from the same snapshot directory; the
	// router's next health sweep brings it back and its sessions resume at
	// their prior epochs with baseline-identical answers.
	restored := victim.restart(t)
	t.Cleanup(restored.kill)
	cl.rt.CheckHealth()
	info, err := cl.c.GetSession("f0")
	if err != nil {
		t.Fatalf("get f0 after restart: %v", err)
	}
	if info.Stats == nil || info.Stats.Epoch != 1 {
		t.Fatalf("f0 epoch after restart: %+v, want 1", info.Stats)
	}
	resp, err := cl.c.Mine("f0", mreq)
	if err != nil {
		t.Fatalf("mine f0 after restart: %v", err)
	}
	assertSameRules(t, "restored mine", resp.Rules, postAppend.Rules)
	for _, id := range byShard[victim.base] {
		if id == "f0" {
			continue
		}
		resp, err := cl.c.Mine(id, mreq)
		if err != nil {
			t.Fatalf("mine %q after restart: %v", id, err)
		}
		assertSameRules(t, fmt.Sprintf("restored mine %q", id), resp.Rules, baselines[id].Rules)
	}
	if err := cl.c.Do("GET", "/v1/healthz", nil, &h); err != nil || h.Status != "ok" {
		t.Fatalf("router health after restore: %+v, %v", h, err)
	}
}

// rawMine posts a mine without the typed client, returning status and body
// for asserting on error responses.
func rawMine(t *testing.T, baseURL, id string, req server.MineRequest) (int, []byte) {
	t.Helper()
	buf, _ := json.Marshal(req)
	resp, err := http.Post(baseURL+"/v1/datasets/"+id+"/mine", "application/json", strings.NewReader(string(buf)))
	if err != nil {
		t.Fatalf("posting mine: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading error body: %v", err)
	}
	return resp.StatusCode, body
}

// TestMergedListingAndMetricsRollup checks the two cluster-wide reads: the
// merged /v1/datasets listing (sorted, deduplicated, complete) and the
// /v1/metrics rollup (router families, summed shard scalars, per-shard
// labels injected into labelled series).
func TestMergedListingAndMetricsRollup(t *testing.T) {
	cl := newCluster(t, 3, false)
	reqs := refSessions()
	for _, req := range reqs {
		if _, err := cl.c.CreateSession(req); err != nil {
			t.Fatalf("creating %q: %v", req.ID, err)
		}
	}
	if _, err := cl.c.Mine("inc-a", server.MineRequest{K: 2, SampleSize: 16, Seed: 1}); err != nil {
		t.Fatal(err)
	}

	list, err := cl.c.ListSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Sessions) != len(reqs) {
		t.Fatalf("merged listing has %d sessions, want %d: %+v", len(list.Sessions), len(reqs), list)
	}
	seen := map[string]bool{}
	for i, info := range list.Sessions {
		if seen[info.ID] {
			t.Errorf("session %q listed twice", info.ID)
		}
		seen[info.ID] = true
		if i > 0 && list.Sessions[i-1].ID > info.ID {
			t.Errorf("listing not sorted: %q before %q", list.Sessions[i-1].ID, info.ID)
		}
	}
	for _, req := range reqs {
		if !seen[req.ID] {
			t.Errorf("session %q missing from the merged listing", req.ID)
		}
	}

	text, err := cl.c.MetricsText()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"sirumr_shards 3",
		"sirumr_shards_up 3",
		fmt.Sprintf("sirumr_sessions %d", len(reqs)),
		`sirumr_shard_up{shard="ts0"} 1`,
		"sirumd_sessions 4", // summed across shards
		`{shard="ts`,        // per-shard label injected into shard series
		"sirumd_session_rows{shard=",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics rollup missing %q:\n%s", want, text)
		}
	}
	// Families must appear exactly once even though three shards reported
	// them.
	if n := strings.Count(text, "# TYPE sirumd_sessions gauge"); n != 1 {
		t.Errorf("sirumd_sessions TYPE line appears %d times, want 1", n)
	}
}

// TestRouterValidationAndDrain covers the router-local request validation
// (bad ids, bad sources, duplicates, unknown ops) and the drain half of
// shard lifecycle: a draining shard serves its sessions but receives no
// new ones, and placement falls through to the ring successor.
func TestRouterValidationAndDrain(t *testing.T) {
	cl := newCluster(t, 3, false)

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"invalid id", "POST", "/v1/datasets", server.CreateRequest{ID: "bad/id", Generator: &server.GeneratorSpec{Name: "income"}}, http.StatusBadRequest},
		{"both sources", "POST", "/v1/datasets", server.CreateRequest{ID: "x", Generator: &server.GeneratorSpec{Name: "income"}, CSV: "a,m\n1,2\n", Measure: "m"}, http.StatusBadRequest},
		{"no source", "POST", "/v1/datasets", server.CreateRequest{ID: "x"}, http.StatusBadRequest},
		{"unknown dataset", "GET", "/v1/datasets/nope", nil, http.StatusNotFound},
		{"unknown op", "POST", "/v1/datasets/nope/scan", struct{}{}, http.StatusNotFound},
		{"unknown shard drain", "POST", "/v1/shards/zz/drain", nil, http.StatusNotFound},
	}
	for _, tc := range cases {
		err := cl.c.Do(tc.method, tc.path, tc.body, nil)
		if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("(%d)", tc.want)) {
			t.Errorf("%s: got %v, want status %d", tc.name, err, tc.want)
		}
	}

	// Duplicate explicit id: rejected by the router without a shard hop.
	req := server.CreateRequest{
		ID:        "dup",
		Generator: &server.GeneratorSpec{Name: "income", Rows: 250, Seed: 1},
		Prepare:   server.PrepareSpec{SampleSize: 16, Seed: 1},
	}
	if _, err := cl.c.CreateSession(req); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.c.CreateSession(req); err == nil || !strings.Contains(err.Error(), "(409)") {
		t.Errorf("duplicate create: got %v, want 409", err)
	}

	// Find a spec homed on shard 0, drain shard 0, and watch the create
	// fall through to the ring successor while existing sessions keep
	// serving.
	var homed server.CreateRequest
	for seed := int64(1); ; seed++ {
		cand := server.CreateRequest{
			ID:        fmt.Sprintf("drain-%d", seed),
			Generator: &server.GeneratorSpec{Name: "income", Rows: 250, Seed: seed},
			Prepare:   server.PrepareSpec{SampleSize: 16, Seed: 1},
		}
		home, err := cl.rt.Place(spec.RoutingKey(mustSpec(t, cand)))
		if err != nil {
			t.Fatal(err)
		}
		if home == cl.shards[0].base {
			homed = cand
			break
		}
		if seed > 100 {
			t.Fatal("no spec homed on shard 0 in 100 seeds")
		}
	}
	if err := cl.c.Do("POST", "/v1/shards/ts0/drain", nil, nil); err != nil {
		t.Fatalf("draining ts0: %v", err)
	}
	fallback, err := cl.rt.Place(spec.RoutingKey(mustSpec(t, homed)))
	if err != nil {
		t.Fatal(err)
	}
	if fallback == cl.shards[0].base {
		t.Fatal("draining shard still accepts placements")
	}
	if _, err := cl.c.CreateSession(homed); err != nil {
		t.Fatal(err)
	}
	if got := cl.holder(t, homed.ID).base; got != fallback {
		t.Errorf("drained-away session landed on %s, want ring successor %s", got, fallback)
	}
	// Existing sessions on the draining shard still answer.
	if someID := sessionOn(t, cl, cl.shards[0]); someID != "" {
		if _, err := cl.c.Mine(someID, server.MineRequest{K: 2, SampleSize: 16, Seed: 1}); err != nil {
			t.Errorf("draining shard refused an existing session's query: %v", err)
		}
	}
	if err := cl.c.Do("POST", "/v1/shards/ts0/undrain", nil, nil); err != nil {
		t.Fatalf("undraining: %v", err)
	}
	back, err := cl.rt.Place(spec.RoutingKey(mustSpec(t, homed)))
	if err != nil {
		t.Fatal(err)
	}
	if back != cl.shards[0].base {
		t.Errorf("undrained shard not receiving placements again: %s", back)
	}
}

// sessionOn returns some session id held by sh, or "".
func sessionOn(t *testing.T, cl *cluster, sh *testShard) string {
	t.Helper()
	list, err := sh.c.ListSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Sessions) == 0 {
		return ""
	}
	return list.Sessions[0].ID
}

// TestRouterTableResync proves a router restart converges: a *fresh*
// router over shards that already hold sessions resolves them from the
// shard listings instead of 404ing.
func TestRouterTableResync(t *testing.T) {
	cl := newCluster(t, 3, false)
	if _, err := cl.c.CreateSession(refSessions()[0]); err != nil {
		t.Fatal(err)
	}

	bases := make([]string, len(cl.shards))
	for i, sh := range cl.shards {
		bases[i] = sh.base
	}
	rt2, err := New(Config{Shards: bases, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	ts2 := httptest.NewServer(rt2.Handler())
	defer ts2.Close()
	c2 := &server.Client{BaseURL: ts2.URL, HTTP: &http.Client{Timeout: time.Minute}}
	if _, err := c2.GetSession("inc-a"); err != nil {
		t.Fatalf("fresh router cannot resolve a pre-existing session: %v", err)
	}
	// And a genuinely unknown id is still a 404, not an infinite resync.
	if err := c2.Do("GET", "/v1/datasets/ghost", nil, nil); err == nil || !strings.Contains(err.Error(), "(404)") {
		t.Errorf("unknown id: got %v, want 404", err)
	}

	// Merge semantics: an entry the listings don't (yet) know — a create
	// committing concurrently with a listing snapshot — survives Resync
	// instead of being clobbered into a 404 behind the resync throttle.
	cl.rt.setTable("just-created", cl.rt.shards[0])
	cl.rt.Resync()
	cl.rt.mu.Lock()
	_, kept := cl.rt.table["just-created"]
	cl.rt.mu.Unlock()
	if !kept {
		t.Error("Resync dropped a table entry absent from the listing snapshot")
	}
}

// TestRingProperties pins the ring's determinism and spread: every walk
// covers all shards exactly once, and 32 id-hashed keys stay within 2x of
// the mean across 3 shards — the same bound the selftest enforces.
func TestRingProperties(t *testing.T) {
	r := newRing(3, 128)
	counts := make([]int, 3)
	for i := 1; i <= 32; i++ {
		walk := r.walk(spec.RoutingKeyForID(fmt.Sprintf("r%d", i)))
		if len(walk) != 3 {
			t.Fatalf("walk covered %d shards, want 3", len(walk))
		}
		seen := map[int]bool{}
		for _, s := range walk {
			if seen[s] {
				t.Fatalf("walk repeated shard %d", s)
			}
			seen[s] = true
		}
		counts[walk[0]]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if mean := 32.0 / 3.0; float64(max) > 2*mean {
		t.Errorf("id placement imbalance: %v (max %d vs mean %.1f)", counts, max, mean)
	}
	// Same key, same walk, forever.
	k := spec.RoutingKey(spec.DatasetSpec{Version: spec.Version, Generator: &spec.GeneratorSource{Name: "income", Rows: 300, Seed: 1}})
	w1, w2 := r.walk(k), newRing(3, 128).walk(k)
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("ring walk not deterministic: %v vs %v", w1, w2)
		}
	}
}
