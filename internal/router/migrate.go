package router

import (
	"encoding/json"
	"fmt"
	"net/http"

	"sirum/internal/server"
	"sirum/internal/spec"
)

// Cross-shard session migration, router side. POST /v1/shards/{id}/migrate
// drains a shard and moves every session it holds to its ring successor:
// per session, export off the origin → import on the destination → verify
// the destination reports the exported fingerprint and epoch → retarget
// the routing table → delete the origin's copy. The origin keeps serving
// reads until the table swap, appends are held at the session's write gate
// across the cut, and any failure leaves the origin copy untouched — the
// operation is idempotent, so an operator re-runs migrate to resume.

// handleMigrate moves every session off the named shard. The shard is
// marked draining first (migration that allowed new placements onto the
// shard being emptied would never terminate). 200 even with failures:
// the response itemizes them and Remaining counts the sessions left, so
// callers re-run to resume rather than guessing from a 5xx.
func (rt *Router) handleMigrate(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	var origin *shard
	for _, sh := range rt.shards {
		if sh.label() == id || fmt.Sprintf("s%d", sh.index) == id {
			origin = sh
			break
		}
	}
	if origin == nil {
		return errf(http.StatusNotFound, "unknown shard %q", id)
	}
	if origin.down.Load() {
		return errf(http.StatusServiceUnavailable, "shard %s is down; migration needs a reachable origin", origin.label())
	}
	origin.draining.Store(true)
	list, err := origin.client.ListSessions()
	if err != nil {
		rt.proxyErrs.Add(1)
		rt.markDown(origin, err)
		return errf(http.StatusBadGateway, "shard %s is unreachable: %v", origin.label(), err)
	}
	resp := MigrateResponse{Shard: origin.label(), Draining: true, Moved: []MigratedSession{}}
	for _, info := range list.Sessions {
		moved, err := rt.migrateSession(origin, info.ID)
		if err != nil {
			resp.Failed = append(resp.Failed, MigrationFailure{ID: info.ID, Error: err.Error()})
			continue
		}
		resp.Moved = append(resp.Moved, moved)
	}
	resp.Remaining = len(resp.Failed)
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// migrateSession moves one session from origin to the shard its routing
// key places on now that origin drains. The migration gate is held
// exclusively for the whole move: the export is a consistent cut (no
// append can land on the origin after it and be lost), and the first
// gated request after the cutover locates the destination. In-flight
// requests admitted before the gate closed drain on the origin — the
// exclusive acquire waits them out — so no request ever points at a
// deleted copy.
func (rt *Router) migrateSession(origin *shard, id string) (MigratedSession, error) {
	none := MigratedSession{}
	gate := rt.sessionGate(id)
	gate.Lock()
	defer gate.Unlock()

	// Resume: a prior attempt already cut this session over and only the
	// origin's delete is left to finish.
	rt.mu.Lock()
	cur := rt.table[id]
	rt.mu.Unlock()
	if cur != nil && cur != origin && !cur.down.Load() {
		if err := rt.deleteOrigin(origin, id); err != nil {
			return none, err
		}
		moved := MigratedSession{ID: id, From: origin.label(), To: cur.label(), Resumed: true}
		if info, err := cur.client.GetSession(id); err == nil && info.Stats != nil {
			moved.Fingerprint = info.Stats.Fingerprint
			moved.Epoch = info.Stats.Epoch
		}
		return moved, nil
	}

	raw, err := rt.forward(origin, http.MethodGet, "/v1/datasets/"+id+"/export", "", nil)
	if err != nil {
		return none, err
	}
	if raw.Status == http.StatusNotFound {
		// Deleted between the listing and the export; nothing to move.
		rt.dropTable(id)
		return none, errf(http.StatusNotFound, "session %q vanished before export", id)
	}
	if raw.Status != http.StatusOK {
		return none, errf(http.StatusBadGateway, "exporting %q from shard %s: status %d", id, origin.label(), raw.Status)
	}
	var doc server.ExportDocument
	if err := json.Unmarshal(raw.Body, &doc); err != nil {
		return none, errf(http.StatusBadGateway, "exporting %q from shard %s: %v", id, origin.label(), err)
	}

	dest, err := rt.placeAway(id, doc)
	if err != nil {
		return none, err
	}
	// The export bytes forward verbatim — re-encoding could only corrupt.
	imp, err := rt.forward(dest, http.MethodPost, "/v1/datasets/import", "application/json", raw.Body)
	if err != nil {
		return none, err
	}
	if imp.Status != http.StatusCreated && imp.Status != http.StatusOK {
		var e server.ErrorResponse
		json.Unmarshal(imp.Body, &e)
		return none, errf(http.StatusBadGateway, "importing %q on shard %s: status %d: %s", id, dest.label(), imp.Status, e.Error)
	}
	var info server.SessionInfo
	if err := json.Unmarshal(imp.Body, &info); err != nil {
		return none, errf(http.StatusBadGateway, "importing %q on shard %s: %v", id, dest.label(), err)
	}
	// The destination verified the rebuild against the export header
	// before committing; check its answer anyway — a cutover on an
	// unverified copy would silently serve the wrong data, the one
	// failure mode migration must never have.
	if info.Stats == nil || info.Stats.Fingerprint != doc.Fingerprint || info.Stats.Epoch < doc.Epoch {
		return none, errf(http.StatusBadGateway,
			"importing %q on shard %s: destination does not match export header (fingerprint %s epoch %d)",
			id, dest.label(), doc.Fingerprint, doc.Epoch)
	}

	// Cutover: retarget the table first, then delete the origin copy.
	// Between the two, reads may still hit the origin's live copy or the
	// destination's identical one — both correct. The reverse order would
	// open a window where the table points at a deleted session.
	rt.setTable(id, dest)
	dest.sessions.Add(1)
	rt.migrated.Add(1)
	if err := rt.deleteOrigin(origin, id); err != nil {
		return none, fmt.Errorf("cut over to %s but origin copy remains: %w", dest.label(), err)
	}
	return MigratedSession{
		ID: id, From: origin.label(), To: dest.label(),
		Fingerprint: info.Stats.Fingerprint, Epoch: info.Stats.Epoch,
	}, nil
}

// placeAway picks the shard a session migrates to: the first ring walk hit
// that is up and not draining (the origin is draining, so it is skipped).
// Auto-assigned ids keep routing by id so anonymous same-spec sessions
// stay spread; named sessions keep routing by content so co-location — and
// with it result-cache sharing — survives the move.
func (rt *Router) placeAway(id string, doc server.ExportDocument) (*shard, error) {
	var key [32]byte
	if _, ok := parseAutoID(id); ok {
		key = spec.RoutingKeyForID(id)
	} else {
		ds, err := doc.RoutingSpec()
		if err != nil {
			return nil, errf(http.StatusBadGateway, "routing key for %q: %v", id, err)
		}
		key = spec.RoutingKey(ds)
	}
	sh, err := rt.place(key)
	if err != nil {
		return nil, errf(http.StatusServiceUnavailable, "no shard can accept %q: every other shard is down or draining", id)
	}
	return sh, nil
}

// deleteOrigin removes the origin's copy after (or during a resumed)
// cutover. 404 means a previous attempt already deleted it.
func (rt *Router) deleteOrigin(origin *shard, id string) error {
	raw, err := rt.forward(origin, http.MethodDelete, "/v1/datasets/"+id, "", nil)
	if err != nil {
		return err
	}
	switch raw.Status {
	case http.StatusNoContent:
		origin.sessions.Add(-1)
	case http.StatusNotFound:
	default:
		return errf(http.StatusBadGateway, "deleting %q from shard %s: status %d", id, origin.label(), raw.Status)
	}
	return nil
}
