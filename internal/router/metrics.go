package router

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// handleMetrics serves the cluster rollup: the router's own gauges and
// counters first, then every healthy shard's /v1/metrics document merged
// into one — un-labelled samples of the same family summed across shards
// (total sessions, total cache hits, ...), labelled samples re-emitted
// with a shard label injected so per-session series stay attributable.
// Families keep their first-seen HELP/TYPE text and order.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	var b strings.Builder
	gauge := func(name, help string, v any, labels string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s%s %v\n", name, help, name, name, labels, v)
	}
	up := 0
	for _, sh := range rt.shards {
		if !sh.down.Load() {
			up++
		}
	}
	rt.mu.Lock()
	sessions := len(rt.table)
	rt.mu.Unlock()
	gauge("sirumr_shards", "Shards in the configured topology.", len(rt.shards), "")
	gauge("sirumr_shards_up", "Shards currently passing health checks.", up, "")
	gauge("sirumr_sessions", "Sessions in the routing table across all shards.", sessions, "")
	fmt.Fprintf(&b, "# HELP sirumr_proxied_total Requests relayed to a shard.\n# TYPE sirumr_proxied_total counter\nsirumr_proxied_total %d\n", rt.proxied.Load())
	fmt.Fprintf(&b, "# HELP sirumr_proxy_errors_total Transport failures reaching a shard.\n# TYPE sirumr_proxy_errors_total counter\nsirumr_proxy_errors_total %d\n", rt.proxyErrs.Load())
	fmt.Fprintf(&b, "# HELP sirumr_shard_up Per-shard health (1 up, 0 down).\n# TYPE sirumr_shard_up gauge\n")
	for _, sh := range rt.shards {
		v := 1
		if sh.down.Load() {
			v = 0
		}
		fmt.Fprintf(&b, "sirumr_shard_up{shard=%q} %d\n", sh.label(), v)
	}
	fmt.Fprintf(&b, "# HELP sirumr_shard_sessions Sessions last observed per shard.\n# TYPE sirumr_shard_sessions gauge\n")
	for _, sh := range rt.shards {
		fmt.Fprintf(&b, "sirumr_shard_sessions{shard=%q} %d\n", sh.label(), sh.sessions.Load())
	}

	// Pull the healthy shards' documents concurrently, then merge in
	// topology order so the rollup is deterministic for a fixed cluster
	// state.
	docs := make([]string, len(rt.shards))
	var wg sync.WaitGroup
	for i, sh := range rt.shards {
		if sh.down.Load() {
			continue
		}
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			if text, err := sh.client.MetricsText(); err == nil {
				docs[i] = text
			}
		}(i, sh)
	}
	wg.Wait()
	labels := make([]string, len(rt.shards))
	for i, sh := range rt.shards {
		labels[i] = sh.label()
	}
	mergeMetrics(&b, docs, labels)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, err := w.Write([]byte(b.String()))
	return err
}

// family accumulates one metric family across shard documents.
type family struct {
	name    string
	help    string // first-seen HELP line, verbatim
	typ     string // first-seen TYPE line, verbatim
	sum     float64
	scalar  bool     // saw at least one un-labelled sample to sum
	labeled []string // rewritten labelled samples, in arrival order
}

// mergeMetrics folds shard metric documents into b. docs[i] belongs to the
// shard labelled labels[i]; empty docs (down or unreadable shards) are
// skipped.
func mergeMetrics(b *strings.Builder, docs, labels []string) {
	var order []string
	families := map[string]*family{}
	get := func(name string) *family {
		f, ok := families[name]
		if !ok {
			f = &family{name: name}
			families[name] = f
			order = append(order, name)
		}
		return f
	}
	for i, doc := range docs {
		for _, line := range strings.Split(doc, "\n") {
			if line == "" {
				continue
			}
			if strings.HasPrefix(line, "#") {
				fields := strings.SplitN(line, " ", 4)
				if len(fields) < 3 {
					continue
				}
				f := get(fields[2])
				switch fields[1] {
				case "HELP":
					if f.help == "" {
						f.help = line
					}
				case "TYPE":
					if f.typ == "" {
						f.typ = line
					}
				}
				continue
			}
			sp := strings.LastIndexByte(line, ' ')
			if sp <= 0 {
				continue
			}
			series, valText := line[:sp], line[sp+1:]
			val, err := strconv.ParseFloat(valText, 64)
			if err != nil {
				continue
			}
			if brace := strings.IndexByte(series, '{'); brace >= 0 {
				f := get(series[:brace])
				f.labeled = append(f.labeled, fmt.Sprintf("%s{shard=%q,%s %s",
					series[:brace], labels[i], series[brace+1:], valText))
			} else {
				f := get(series)
				f.scalar = true
				f.sum += val
			}
		}
	}
	for _, name := range order {
		f := families[name]
		if f.help != "" {
			fmt.Fprintln(b, f.help)
		}
		if f.typ != "" {
			fmt.Fprintln(b, f.typ)
		}
		if f.scalar {
			fmt.Fprintf(b, "%s %g\n", f.name, f.sum)
		}
		for _, line := range f.labeled {
			fmt.Fprintln(b, line)
		}
	}
}
