package router

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// ring is the consistent-hash ring placement runs on: replicas virtual
// points per shard, each a hash of the shard's *position* in the configured
// topology — deliberately not its address. Hashing positions makes
// placement a pure function of (key, shard count, replicas): the same key
// lands on the same shard across router restarts, re-deployments that move
// shards to new ports, and test runs on ephemeral listeners. The cost is
// that the order of Config.Shards is part of the cluster's identity and
// must stay stable across restarts, which a static topology gives for free.
type ring struct {
	shards int
	points []ringPoint // sorted by hash, ties broken by shard index
}

type ringPoint struct {
	hash  uint64
	shard int
}

func newRing(shards, replicas int) *ring {
	r := &ring{shards: shards, points: make([]ringPoint, 0, shards*replicas)}
	for s := 0; s < shards; s++ {
		for v := 0; v < replicas; v++ {
			sum := sha256.Sum256([]byte(fmt.Sprintf("shard-%d#%d", s, v)))
			r.points = append(r.points, ringPoint{hash: binary.BigEndian.Uint64(sum[:8]), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// walk returns every shard index in ring order starting from key's
// successor point, each shard listed once. The first entry is the key's
// home shard; the rest are the fallback order a placement uses when the
// home shard is down or draining.
func (r *ring) walk(key [32]byte) []int {
	k := binary.BigEndian.Uint64(key[:8])
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= k })
	out := make([]int, 0, r.shards)
	seen := make(map[int]bool, r.shards)
	for n := 0; n < len(r.points) && len(out) < r.shards; n++ {
		p := r.points[(start+n)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}
