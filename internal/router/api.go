package router

// The router's own wire types. Everything under /v1/datasets speaks the
// shard API (internal/server's types) verbatim — the router is transparent
// there — so only the cluster-control surface is defined here.

// ShardInfo describes one shard as the router sees it.
type ShardInfo struct {
	// Index is the shard's position in the configured topology; placement
	// hashes it, so it is the shard's durable identity.
	Index int `json:"index"`
	// ID is the shard's logical name: its sirumd -shard-id when the daemon
	// reports one, else "s<index>".
	ID string `json:"id"`
	// Base is the URL the router proxies to.
	Base string `json:"base"`
	// Up is the last health verdict; a down shard's sessions answer 503
	// until it returns.
	Up bool `json:"up"`
	// Draining shards serve their existing sessions but receive no new ones.
	Draining bool `json:"draining"`
	// Sessions is the session count last observed on the shard.
	Sessions int64 `json:"sessions"`
	// LastError is the most recent health-check or proxy failure, kept
	// across recoveries for postmortems.
	LastError string `json:"last_error,omitempty"`
}

// ShardsResponse is GET /v1/shards: the cluster topology with health.
type ShardsResponse struct {
	Shards []ShardInfo `json:"shards"`
}

// MigratedSession reports one session moved off a shard by /migrate.
type MigratedSession struct {
	ID   string `json:"id"`
	From string `json:"from"`
	To   string `json:"to"`
	// Fingerprint and Epoch are the destination's verified identity —
	// equal to the origin's at the moment of the cut.
	Fingerprint string `json:"fingerprint,omitempty"`
	Epoch       int64  `json:"epoch,omitempty"`
	// Resumed marks a session a prior migrate attempt had already cut
	// over; this run only finished deleting the origin's copy.
	Resumed bool `json:"resumed,omitempty"`
}

// MigrationFailure reports one session that stayed on the origin.
type MigrationFailure struct {
	ID    string `json:"id"`
	Error string `json:"error"`
}

// MigrateResponse is POST /v1/shards/{id}/migrate: the shard is left
// draining, Moved lists the sessions now serving elsewhere, Failed the
// ones still on the origin (re-run migrate to retry them).
type MigrateResponse struct {
	Shard     string             `json:"shard"`
	Draining  bool               `json:"draining"`
	Moved     []MigratedSession  `json:"moved"`
	Failed    []MigrationFailure `json:"failed,omitempty"`
	Remaining int                `json:"remaining"`
}

// HealthResponse is the router's GET /v1/healthz: "ok" with every shard
// up, "degraded" with some down, "down" with none reachable.
type HealthResponse struct {
	Status      string `json:"status"`
	Shards      int    `json:"shards"`
	ShardsUp    int    `json:"shards_up"`
	Sessions    int    `json:"sessions"`
	Proxied     int64  `json:"proxied"`
	ProxyErrors int64  `json:"proxy_errors"`
}
