// Package router implements sirumr: a sharding router that fronts N sirumd
// shard daemons and serves the same /v1 API as one big daemon. The paper's
// premise is that informative rule mining scales out across workers; one
// daemon scales queries across cores, and the router is the next rung —
// sessions spread across machines, each held by exactly one shard.
//
// Placement is consistent hashing over the session's canonical identity
// (internal/spec): a create with an explicit id routes by its dataset
// spec fingerprint, computable from the request body alone, so sessions
// over identical sources co-locate and share their shard's result cache;
// anonymous auto-id creates route by the router-assigned session id, which
// spreads identical-spec sessions evenly instead. The ring hashes shard
// *positions*, not addresses, so placement survives restarts and moves.
//
// The router keeps a session→shard table (rebuilt from shard listings on
// boot and on lookup misses, so restarted routers and snapshot-restored
// shards converge), health-checks every shard, and marks shards down on
// failed checks or proxy transport errors. Requests for a down shard's
// sessions fail fast with 502/503 JSON errors while every other shard
// serves unimpeded; a shard restarted from its -snapshot directory is
// marked up again and its sessions resume at their prior epochs.
// GET /v1/datasets merges the healthy shards' listings; GET /v1/metrics
// rolls their metric families up into one document, per-shard series
// labelled by shard.
package router

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sirum/internal/server"
	"sirum/internal/spec"
)

// Config wires a router to its shard topology.
type Config struct {
	// Shards are the shard daemons' base URLs, in topology order. The order
	// is part of the cluster identity — placement hashes positions — so it
	// must stay stable across router restarts.
	Shards []string
	// Replicas is the number of virtual ring points per shard (default 128;
	// more points, smoother balance).
	Replicas int
	// HealthInterval spaces the background health sweeps (default 2s;
	// negative disables the loop — tests drive CheckHealth directly).
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe (default 2s).
	HealthTimeout time.Duration
	// Timeout bounds one proxied request (default 2 minutes, matching the
	// load generator's ceiling for a cold mine).
	Timeout time.Duration
	// MaxBodyBytes caps a request body before it is forwarded (default
	// 64 MiB, the shard daemons' own cap).
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 128
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	return c
}

// shard is one backend daemon: clients, health state and observed load.
type shard struct {
	index  int
	base   string
	client *server.Client // data plane, Config.Timeout
	health *server.Client // health probes, Config.HealthTimeout

	down     atomic.Bool
	draining atomic.Bool
	sessions atomic.Int64 // last observed session count
	id       atomic.Value // string: logical shard id ("s<index>" until healthz reports one)
	lastErr  atomic.Value // string: most recent failure, kept across recoveries
}

// label returns the shard's logical id for errors, metrics and /v1/shards.
func (sh *shard) label() string { return sh.id.Load().(string) }

func (sh *shard) lastError() string {
	if v := sh.lastErr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// Router fronts the shard set. Create with New, optionally Start the
// health loop, serve via Handler, stop with Close.
type Router struct {
	conf   Config
	mux    *http.ServeMux
	shards []*shard
	ring   *ring

	mu         sync.Mutex
	table      map[string]*shard        // session id → home shard
	gates      map[string]*sync.RWMutex // session id → migration write gate
	nextID     int                      // auto-assigned session ids r1, r2, ...
	lastResync time.Time

	proxied   atomic.Int64 // requests relayed to a shard (any status)
	proxyErrs atomic.Int64 // transport failures talking to shards
	migrated  atomic.Int64 // sessions moved off a shard by /migrate

	loop      sync.Once
	closeOnce sync.Once
	stop      chan struct{}
	loopDone  chan struct{}
}

// New builds a router over the given topology and primes its view of the
// cluster with one synchronous health sweep and table resync — best
// effort: unreachable shards start marked down rather than failing boot.
func New(conf Config) (*Router, error) {
	conf = conf.withDefaults()
	if len(conf.Shards) == 0 {
		return nil, errors.New("router: at least one shard is required")
	}
	seen := make(map[string]bool, len(conf.Shards))
	rt := &Router{
		conf:     conf,
		mux:      http.NewServeMux(),
		ring:     newRing(len(conf.Shards), conf.Replicas),
		table:    make(map[string]*shard),
		gates:    make(map[string]*sync.RWMutex),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	for i, base := range conf.Shards {
		base = strings.TrimRight(base, "/")
		if base == "" {
			return nil, fmt.Errorf("router: shard %d has an empty URL", i)
		}
		if seen[base] {
			return nil, fmt.Errorf("router: shard URL %q listed twice", base)
		}
		seen[base] = true
		sh := &shard{
			index:  i,
			base:   base,
			client: &server.Client{BaseURL: base, HTTP: &http.Client{Timeout: conf.Timeout}},
			health: &server.Client{BaseURL: base, HTTP: &http.Client{Timeout: conf.HealthTimeout}},
		}
		sh.id.Store(fmt.Sprintf("s%d", i))
		rt.shards = append(rt.shards, sh)
	}
	rt.mux.HandleFunc("POST /v1/datasets", rt.wrap(rt.handleCreate))
	rt.mux.HandleFunc("GET /v1/datasets", rt.wrap(rt.handleList))
	rt.mux.HandleFunc("GET /v1/datasets/{id}", rt.wrap(rt.handleSession))
	rt.mux.HandleFunc("DELETE /v1/datasets/{id}", rt.wrap(rt.handleSession))
	rt.mux.HandleFunc("POST /v1/datasets/{id}/{op}", rt.wrap(rt.handleSession))
	rt.mux.HandleFunc("GET /v1/datasets/{id}/export", rt.wrap(rt.handleExportProxy))
	rt.mux.HandleFunc("GET /v1/metrics", rt.wrap(rt.handleMetrics))
	rt.mux.HandleFunc("GET /v1/healthz", rt.wrap(rt.handleHealth))
	rt.mux.HandleFunc("GET /v1/shards", rt.wrap(rt.handleShards))
	rt.mux.HandleFunc("POST /v1/shards/{id}/drain", rt.wrap(rt.handleDrain(true)))
	rt.mux.HandleFunc("POST /v1/shards/{id}/undrain", rt.wrap(rt.handleDrain(false)))
	rt.mux.HandleFunc("POST /v1/shards/{id}/migrate", rt.wrap(rt.handleMigrate))
	rt.CheckHealth()
	rt.Resync()
	return rt, nil
}

// Handler returns the router's HTTP handler: the full /v1 shard surface
// plus the /v1/shards cluster-control endpoints.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Start launches the background health loop. Safe to call once; Close
// stops it.
func (rt *Router) Start() {
	if rt.conf.HealthInterval < 0 {
		return
	}
	rt.loop.Do(func() {
		go func() {
			defer close(rt.loopDone)
			t := time.NewTicker(rt.conf.HealthInterval)
			defer t.Stop()
			for {
				select {
				case <-rt.stop:
					return
				case <-t.C:
					rt.CheckHealth()
				}
			}
		}()
	})
}

// Close stops the health loop. The shards are not touched: the router owns
// no sessions, only the map of where they live. Idempotent and safe to
// call concurrently: a select-then-close would let two callers both see
// the channel open and double-close it.
func (rt *Router) Close() error {
	rt.closeOnce.Do(func() { close(rt.stop) })
	if rt.conf.HealthInterval >= 0 {
		rt.loop.Do(func() { close(rt.loopDone) }) // loop never started
		<-rt.loopDone
	}
	return nil
}

// CheckHealth probes every shard once, concurrently, flipping down/up
// marks and refreshing observed session counts and logical shard ids.
func (rt *Router) CheckHealth() {
	var wg sync.WaitGroup
	for _, sh := range rt.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			h, err := sh.health.Health()
			if err != nil {
				rt.markDown(sh, err)
				return
			}
			sh.sessions.Store(int64(h.Sessions))
			if h.ShardID != "" {
				sh.id.Store(h.ShardID)
			}
			sh.down.Store(false)
		}(sh)
	}
	wg.Wait()
}

// markDown records a shard failure: the shard stops receiving placements
// and its sessions answer 503 until a health check sees it again.
func (rt *Router) markDown(sh *shard, err error) {
	sh.lastErr.Store(err.Error())
	sh.down.Store(true)
}

// Resync refreshes the session table from the healthy shards' listings
// and returns the merged listing. It merges rather than replaces: a
// listing is a snapshot taken before concurrent creates commit, so an
// entry absent from every listing is kept, not dropped — sessions mapped
// to down shards still live there (forgetting them would turn "shard
// down" (503) into "no such dataset" (404)), just-created sessions would
// otherwise 404 behind the resync throttle, and a genuinely stale entry
// self-heals when the shard's 404 passes through handleSession and drops
// it.
func (rt *Router) Resync() []server.SessionInfo {
	type result struct {
		sh   *shard
		list server.ListResponse
		err  error
	}
	results := make([]result, len(rt.shards))
	var wg sync.WaitGroup
	for i, sh := range rt.shards {
		if sh.down.Load() {
			results[i] = result{sh: sh, err: errors.New("down")}
			continue
		}
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			list, err := sh.client.ListSessions()
			results[i] = result{sh: sh, list: list, err: err}
		}(i, sh)
	}
	wg.Wait()

	newTable := make(map[string]*shard)
	claimants := make(map[string][]*shard) // every shard listing each id
	maxAuto := 0
	var merged []server.SessionInfo
	for _, res := range results {
		if res.err != nil {
			continue
		}
		res.sh.sessions.Store(int64(len(res.list.Sessions)))
		for _, info := range res.list.Sessions {
			if n, ok := parseAutoID(info.ID); ok && n > maxAuto {
				maxAuto = n
			}
			claimants[info.ID] = append(claimants[info.ID], res.sh)
			if _, dup := newTable[info.ID]; dup {
				continue // split-brain id: first shard in topology order wins
			}
			newTable[info.ID] = res.sh
			merged = append(merged, info)
		}
	}
	rt.mu.Lock()
	for id, sh := range newTable {
		if cur, ok := rt.table[id]; ok && cur != sh && containsShard(claimants[id], cur) {
			// Two shards list the id and the table already points at one of
			// them: keep it. The duplicate is a migration whose origin
			// delete has not landed yet — the table was retargeted
			// deliberately, and flipping back by topology order would route
			// appends to the abandoned copy.
			continue
		}
		rt.table[id] = sh
	}
	// Seed the auto-id counter past every id the cluster already holds, so
	// a restarted router (or one that booted while a shard was unreachable)
	// never re-assigns a live session's id.
	if maxAuto > rt.nextID {
		rt.nextID = maxAuto
	}
	rt.lastResync = time.Now()
	rt.mu.Unlock()
	sort.Slice(merged, func(i, j int) bool { return merged[i].ID < merged[j].ID })
	return merged
}

// maybeResync runs Resync unless one ran in the last quarter second — the
// lookup-miss path must not let a storm of unknown-id requests fan out to
// every shard per request.
func (rt *Router) maybeResync() {
	rt.mu.Lock()
	recent := time.Since(rt.lastResync) < 250*time.Millisecond
	rt.mu.Unlock()
	if !recent {
		rt.Resync()
	}
}

// Place returns the base URL of the shard a routing key places on right
// now: the key's home shard, or the next ring successor while the home
// shard is down or draining. This is the placement hook tests and
// operators use to predict where a session will land.
func (rt *Router) Place(key [32]byte) (string, error) {
	sh, err := rt.place(key)
	if err != nil {
		return "", err
	}
	return sh.base, nil
}

func (rt *Router) place(key [32]byte) (*shard, error) {
	for _, idx := range rt.ring.walk(key) {
		sh := rt.shards[idx]
		if !sh.down.Load() && !sh.draining.Load() {
			return sh, nil
		}
	}
	return nil, errf(http.StatusServiceUnavailable, "no healthy shard accepts new sessions")
}

// locate resolves a session id to its home shard, resyncing the table once
// on a miss so restarted routers and snapshot-restored shards converge.
func (rt *Router) locate(id string) *shard {
	rt.mu.Lock()
	sh := rt.table[id]
	rt.mu.Unlock()
	if sh != nil {
		return sh
	}
	rt.maybeResync()
	rt.mu.Lock()
	sh = rt.table[id]
	rt.mu.Unlock()
	return sh
}

func (rt *Router) setTable(id string, sh *shard) {
	rt.mu.Lock()
	rt.table[id] = sh
	rt.mu.Unlock()
}

func (rt *Router) dropTable(id string) {
	rt.mu.Lock()
	delete(rt.table, id)
	rt.mu.Unlock()
}

// assignID picks the next free auto id. Auto-id sessions route by this
// name (spec.RoutingKeyForID), so a burst of identical anonymous specs
// spreads across the ring instead of piling onto one shard. The counter
// is seeded past every id seen in resyncs; the table check alone is not
// enough, because a shard unreachable during a resync keeps its sessions
// out of the table without freeing their ids.
func (rt *Router) assignID() string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for {
		rt.nextID++
		id := fmt.Sprintf("r%d", rt.nextID)
		if _, exists := rt.table[id]; !exists {
			return id
		}
	}
}

// parseAutoID extracts n from a router-assigned session id "r<n>".
func parseAutoID(id string) (int, bool) {
	if len(id) < 2 || id[0] != 'r' {
		return 0, false
	}
	n := 0
	for _, c := range id[1:] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
		if n > 1<<30 {
			return 0, false
		}
	}
	return n, true
}

func containsShard(shards []*shard, sh *shard) bool {
	for _, s := range shards {
		if s == sh {
			return true
		}
	}
	return false
}

// sessionGate returns the session's migration write gate. Writers (append,
// delete) hold it shared around locate-and-forward; migrateSession holds
// it exclusively across export → import → cutover, so a write either
// completes on the origin before the consistent cut or routes to the
// destination after it — never lost in between. Gates are never deleted:
// they are two words each, and freeing one early would let a writer slip
// past a migration already holding it.
func (rt *Router) sessionGate(id string) *sync.RWMutex {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	g := rt.gates[id]
	if g == nil {
		g = &sync.RWMutex{}
		rt.gates[id] = g
	}
	return g
}

// apiError, errf, writeJSON and wrap mirror the shard daemon's uniform
// JSON error surface, so clients cannot tell a router error from a shard
// error by shape.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func errf(status int, format string, args ...any) error {
	return &apiError{status: status, msg: fmt.Sprintf(format, args...)}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func (rt *Router) wrap(h func(w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if err := h(w, r); err != nil {
			status, msg := http.StatusInternalServerError, err.Error()
			var ae *apiError
			if errors.As(err, &ae) {
				status, msg = ae.status, ae.msg
			}
			writeJSON(w, status, server.ErrorResponse{Error: msg})
		}
	}
}

// readBody drains a request body under the router's size cap.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.conf.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, errf(http.StatusRequestEntityTooLarge, "request body over %d bytes", tooLarge.Limit)
		}
		return nil, errf(http.StatusBadRequest, "reading request body: %v", err)
	}
	return body, nil
}

// relay writes a shard's raw response through unchanged.
func relay(w http.ResponseWriter, raw *server.RawResponse) {
	if raw.ContentType != "" {
		w.Header().Set("Content-Type", raw.ContentType)
	}
	w.WriteHeader(raw.Status)
	w.Write(raw.Body)
}

// relayStream copies a shard's streaming response through unchanged, without
// ever holding the body in memory.
func relayStream(w http.ResponseWriter, resp *server.StreamResponse) {
	defer resp.Body.Close()
	if resp.ContentType != "" {
		w.Header().Set("Content-Type", resp.ContentType)
	}
	w.WriteHeader(resp.Status)
	io.Copy(w, resp.Body)
}

// capReader streams a request body through the router's size cap, recording
// why the stream failed — the cap firing, or the client's own connection
// dying mid-upload — so the proxy can answer 413 or 400 instead of blaming
// the shard for an upload the client aborted.
type capReader struct {
	r        io.Reader
	limit    int64
	tooLarge bool
	readErr  error // first client-side read failure (not EOF, not the cap)
}

func (cr *capReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if err != nil && err != io.EOF {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			cr.tooLarge = true
		} else if cr.readErr == nil {
			cr.readErr = err
		}
	}
	return n, err
}

// forward proxies one request to a shard, converting transport failures
// into a mark-down plus a 502 — the shard is unreachable, which is not the
// client's fault and not a router bug.
func (rt *Router) forward(sh *shard, method, path, contentType string, body []byte) (*server.RawResponse, error) {
	raw, err := sh.client.DoRaw(method, path, contentType, body)
	if err != nil {
		rt.proxyErrs.Add(1)
		rt.markDown(sh, err)
		return nil, errf(http.StatusBadGateway, "shard %s is unreachable: %v", sh.label(), err)
	}
	rt.proxied.Add(1)
	return raw, nil
}

// forwardStream proxies one request to a shard end to end without buffering:
// the client body streams up (under the size cap carried by body, when set)
// and the shard response streams back. Transport failures mark the shard
// down exactly like forward — unless the failure was the client's: a
// cap-aborted upload answers 413 and a client body stream that died
// mid-upload answers 400, neither touching the shard's health.
func (rt *Router) forwardStream(sh *shard, method, path, contentType string, body *capReader, length int64) (*server.StreamResponse, error) {
	var rd io.Reader
	if body != nil {
		rd = body
	}
	resp, err := sh.client.DoStream(method, path, contentType, rd, length)
	if err != nil {
		if body != nil && body.tooLarge {
			return nil, errf(http.StatusRequestEntityTooLarge, "request body over %d bytes", body.limit)
		}
		if body != nil && body.readErr != nil {
			// The shard connection held; the *client's* body stream died
			// mid-upload. That is not the shard's fault — marking it down
			// would take a healthy shard out of rotation on every dropped
			// client connection.
			return nil, errf(http.StatusBadRequest, "reading request body: %v", body.readErr)
		}
		rt.proxyErrs.Add(1)
		rt.markDown(sh, err)
		return nil, errf(http.StatusBadGateway, "shard %s is unreachable: %v", sh.label(), err)
	}
	rt.proxied.Add(1)
	return resp, nil
}

func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) error {
	body, err := rt.readBody(w, r)
	if err != nil {
		return err
	}
	var req server.CreateRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return errf(http.StatusBadRequest, "bad request body: %v", err)
	}

	if req.ID == "" {
		return rt.createAutoID(w, req)
	}
	if !server.ValidSessionID(req.ID) {
		return errf(http.StatusBadRequest, "session id %q: want 1-64 chars of [A-Za-z0-9._-], starting alphanumeric", req.ID)
	}
	rt.mu.Lock()
	_, exists := rt.table[req.ID]
	rt.mu.Unlock()
	if exists {
		return errf(http.StatusConflict, "dataset %q already exists", req.ID)
	}
	ds, err := req.DatasetSpec()
	if err != nil {
		// Every DatasetSpec failure is a malformed source description;
		// the shard would reject it with 400 too, just one hop later.
		return errf(http.StatusBadRequest, "%v", err)
	}
	key := spec.RoutingKey(ds)
	// A named create whose home shard is down must wait, not fall
	// through the ring: the router cannot prove the id unused on a
	// shard it cannot reach, and landing the name elsewhere would
	// split-brain it when the shard returns with its sessions.
	// (Draining is different — a draining shard is reachable and its
	// sessions are in the table, so the successor is safe.)
	if home := rt.shards[rt.ring.walk(key)[0]]; home.down.Load() {
		return errf(http.StatusServiceUnavailable,
			"home shard %s for dataset %q is down; retry when it returns", home.label(), req.ID)
	}

	sh, err := rt.place(key)
	if err != nil {
		return err
	}
	// Explicit-id bodies forward byte-identical.
	raw, err := rt.forward(sh, "POST", "/v1/datasets", "application/json", body)
	if err != nil {
		return err
	}
	if raw.Status == http.StatusCreated {
		rt.setTable(req.ID, sh)
		sh.sessions.Add(1)
	}
	relay(w, raw)
	return nil
}

// createAutoID places an anonymous create under a router-assigned id. A
// shard answering 409 means the id is live on a shard the table did not
// know about (say, one unreachable during a boot resync) — the client
// never chose the id, so relaying the conflict would be a bogus failure;
// assign the next id and retry instead. The retry bound only guards
// against a misbehaving shard that 409s everything.
func (rt *Router) createAutoID(w http.ResponseWriter, req server.CreateRequest) error {
	for attempt := 0; ; attempt++ {
		req.ID = rt.assignID()
		body, err := json.Marshal(req)
		if err != nil {
			return err
		}
		sh, err := rt.place(spec.RoutingKeyForID(req.ID))
		if err != nil {
			return err
		}
		raw, err := rt.forward(sh, "POST", "/v1/datasets", "application/json", body)
		if err != nil {
			return err
		}
		if raw.Status == http.StatusConflict && attempt < 16 {
			continue
		}
		if raw.Status == http.StatusCreated {
			rt.setTable(req.ID, sh)
			sh.sessions.Add(1)
		}
		relay(w, raw)
		return nil
	}
}

// handleSession proxies every per-session operation — get, delete, mine,
// explore, append — to the session's home shard.
func (rt *Router) handleSession(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	path := "/v1/datasets/" + id
	op := r.PathValue("op")
	switch op {
	case "":
	case "mine", "explore", "append":
		path += "/" + op
	default:
		return errf(http.StatusNotFound, "unknown operation %q", op)
	}
	// Every session operation takes the migration gate shared, *before*
	// the table lookup: a migration holds it exclusively across its
	// consistent cut and cutover, so an operation either lands on the
	// origin before the export or waits and routes to the destination —
	// never in the window where the origin copy is being deleted. Holding
	// the gate through the relay also keeps in-flight reads draining on
	// the origin until cutover. The ungated precheck keeps unknown ids
	// from growing the gate map.
	if rt.locate(id) == nil {
		return errf(http.StatusNotFound, "unknown dataset %q", id)
	}
	g := rt.sessionGate(id)
	g.RLock()
	defer g.RUnlock()
	sh := rt.locate(id)
	if sh == nil {
		return errf(http.StatusNotFound, "unknown dataset %q", id)
	}
	if sh.down.Load() {
		return errf(http.StatusServiceUnavailable, "dataset %q lives on shard %s, which is marked down", id, sh.label())
	}
	// Session operations are pure relays: the router never interprets the
	// bodies, so both directions stream instead of buffering whole payloads
	// (appends can carry megabytes of rows, mines return full rule lists).
	var body *capReader
	length := int64(-1)
	if r.Method == http.MethodPost {
		if r.ContentLength > rt.conf.MaxBodyBytes {
			return errf(http.StatusRequestEntityTooLarge, "request body over %d bytes", rt.conf.MaxBodyBytes)
		}
		body = &capReader{r: http.MaxBytesReader(w, r.Body, rt.conf.MaxBodyBytes), limit: rt.conf.MaxBodyBytes}
		length = r.ContentLength
	}
	resp, err := rt.forwardStream(sh, r.Method, path, r.Header.Get("Content-Type"), body, length)
	if err != nil {
		return err
	}
	switch {
	case r.Method == http.MethodDelete && resp.Status == http.StatusNoContent:
		rt.dropTable(id)
		sh.sessions.Add(-1)
	case resp.Status == http.StatusNotFound:
		// The table thought the session lived there but the shard disagrees
		// (e.g. it restarted without its snapshot): forget the stale entry
		// so the next lookup resyncs instead of bouncing off it forever.
		rt.dropTable(id)
	}
	relayStream(w, resp)
	return nil
}

// handleExportProxy relays GET /v1/datasets/{id}/export to the session's
// home shard, so operators can pull a migration document through the
// router (migrateSession itself talks to the origin shard directly).
func (rt *Router) handleExportProxy(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	if rt.locate(id) == nil {
		return errf(http.StatusNotFound, "unknown dataset %q", id)
	}
	g := rt.sessionGate(id)
	g.RLock()
	defer g.RUnlock()
	sh := rt.locate(id)
	if sh == nil {
		return errf(http.StatusNotFound, "unknown dataset %q", id)
	}
	if sh.down.Load() {
		return errf(http.StatusServiceUnavailable, "dataset %q lives on shard %s, which is marked down", id, sh.label())
	}
	resp, err := rt.forwardStream(sh, http.MethodGet, "/v1/datasets/"+id+"/export", "", nil, -1)
	if err != nil {
		return err
	}
	if resp.Status == http.StatusNotFound {
		rt.dropTable(id)
	}
	relayStream(w, resp)
	return nil
}

func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) error {
	merged := rt.Resync()
	if merged == nil {
		merged = []server.SessionInfo{}
	}
	writeJSON(w, http.StatusOK, server.ListResponse{Sessions: merged})
	return nil
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) error {
	up := 0
	for _, sh := range rt.shards {
		if !sh.down.Load() {
			up++
		}
	}
	status := "ok"
	switch {
	case up == 0:
		status = "down"
	case up < len(rt.shards):
		status = "degraded"
	}
	rt.mu.Lock()
	sessions := len(rt.table)
	rt.mu.Unlock()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:      status,
		Shards:      len(rt.shards),
		ShardsUp:    up,
		Sessions:    sessions,
		Proxied:     rt.proxied.Load(),
		ProxyErrors: rt.proxyErrs.Load(),
	})
	return nil
}

func (rt *Router) shardInfos() []ShardInfo {
	infos := make([]ShardInfo, 0, len(rt.shards))
	for _, sh := range rt.shards {
		infos = append(infos, ShardInfo{
			Index:     sh.index,
			ID:        sh.label(),
			Base:      sh.base,
			Up:        !sh.down.Load(),
			Draining:  sh.draining.Load(),
			Sessions:  sh.sessions.Load(),
			LastError: sh.lastError(),
		})
	}
	return infos
}

func (rt *Router) handleShards(w http.ResponseWriter, r *http.Request) error {
	writeJSON(w, http.StatusOK, ShardsResponse{Shards: rt.shardInfos()})
	return nil
}

// handleDrain flips a shard's draining mark by logical id: a draining
// shard keeps serving its sessions but receives no new placements, the
// graceful half of decommissioning.
func (rt *Router) handleDrain(drain bool) func(w http.ResponseWriter, r *http.Request) error {
	return func(w http.ResponseWriter, r *http.Request) error {
		id := r.PathValue("id")
		for _, sh := range rt.shards {
			if sh.label() == id || fmt.Sprintf("s%d", sh.index) == id {
				sh.draining.Store(drain)
				writeJSON(w, http.StatusOK, rt.shardInfos()[sh.index])
				return nil
			}
		}
		return errf(http.StatusNotFound, "unknown shard %q", id)
	}
}
