package router

// Migration and fault-attribution coverage for the router: draining a
// shard through POST /v1/shards/{id}/migrate, resuming after a failed
// attempt, surviving a concurrent query storm, and the regression tests
// for the client-abort, auto-id-reuse and double-close bugs.

import (
	"fmt"
	"net"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sirum/internal/server"
)

// migrate POSTs the migrate endpoint for a shard and decodes the report.
func migrate(t *testing.T, cl *cluster, sh *testShard) MigrateResponse {
	t.Helper()
	var resp MigrateResponse
	if err := cl.c.Do("POST", "/v1/shards/"+sh.conf.ShardID+"/migrate", nil, &resp); err != nil {
		t.Fatalf("migrating %s: %v", sh.conf.ShardID, err)
	}
	return resp
}

// TestMigrateMovesEverySessionOff is the tentpole's happy path: every
// session on the origin moves to another shard, fingerprints and epochs
// survive, mining results are identical, repeat queries hit the
// destination's cache, and the emptied origin holds nothing.
func TestMigrateMovesEverySessionOff(t *testing.T) {
	cl := newCluster(t, 3, false)
	for _, req := range refSessions() {
		if _, err := cl.c.CreateSession(req); err != nil {
			t.Fatalf("creating %s: %v", req.ID, err)
		}
	}
	row := appendRow(t, cl.c, "inc-a", 5)
	if _, err := cl.c.AppendRows("inc-a", server.AppendRequest{Rows: []server.RowJSON{row}}); err != nil {
		t.Fatalf("appending to inc-a: %v", err)
	}

	origin := cl.holder(t, "inc-a")
	listing, err := origin.c.ListSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(listing.Sessions) == 0 {
		t.Fatal("origin shard holds no sessions")
	}
	mreq := server.MineRequest{K: 3, SampleSize: 16, Seed: 11}
	type baseline struct {
		fp    string
		epoch int64
		rules []server.RuleJSON
	}
	base := make(map[string]baseline)
	for _, entry := range listing.Sessions {
		info, err := cl.c.GetSession(entry.ID)
		if err != nil {
			t.Fatalf("baseline get %s: %v", entry.ID, err)
		}
		mr, err := cl.c.Mine(entry.ID, mreq)
		if err != nil {
			t.Fatalf("baseline mine %s: %v", entry.ID, err)
		}
		base[entry.ID] = baseline{fp: info.Stats.Fingerprint, epoch: info.Stats.Epoch, rules: mr.Rules}
	}

	resp := migrate(t, cl, origin)
	if resp.Remaining != 0 || len(resp.Failed) != 0 {
		t.Fatalf("migration left %d sessions behind: %+v", resp.Remaining, resp.Failed)
	}
	if len(resp.Moved) != len(listing.Sessions) {
		t.Fatalf("moved %d sessions, origin held %d", len(resp.Moved), len(listing.Sessions))
	}
	if !resp.Draining {
		t.Fatal("migrated shard not reported draining")
	}
	after, err := origin.c.ListSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Sessions) != 0 {
		t.Fatalf("origin still holds %d sessions after migration", len(after.Sessions))
	}

	for id, b := range base {
		if cl.holder(t, id) == origin {
			t.Fatalf("session %s still resolves to the drained shard", id)
		}
		info, err := cl.c.GetSession(id)
		if err != nil {
			t.Fatalf("routed get of %s after migration: %v", id, err)
		}
		if info.Stats.Fingerprint != b.fp || info.Stats.Epoch != b.epoch {
			t.Fatalf("%s migrated to fp=%s epoch=%d, want fp=%s epoch=%d",
				id, info.Stats.Fingerprint, info.Stats.Epoch, b.fp, b.epoch)
		}
		mr, err := cl.c.Mine(id, mreq)
		if err != nil {
			t.Fatalf("mining %s on destination: %v", id, err)
		}
		assertSameRules(t, "migrated "+id, mr.Rules, b.rules)
		again, err := cl.c.Mine(id, mreq)
		if err != nil {
			t.Fatal(err)
		}
		if !again.Cached {
			t.Fatalf("repeat mine of %s not served from the destination cache", id)
		}
		assertSameRules(t, "cached "+id, again.Rules, b.rules)
	}

	// Writes keep flowing to the new home.
	row2 := appendRow(t, cl.c, "inc-a", 7)
	if _, err := cl.c.AppendRows("inc-a", server.AppendRequest{Rows: []server.RowJSON{row2}}); err != nil {
		t.Fatalf("append after migration: %v", err)
	}
	info, err := cl.c.GetSession("inc-a")
	if err != nil {
		t.Fatal(err)
	}
	if want := base["inc-a"].epoch + 1; info.Stats.Epoch != want {
		t.Fatalf("post-migration append: epoch %d, want %d", info.Stats.Epoch, want)
	}

	// Re-running the migration on an emptied shard moves nothing.
	resp = migrate(t, cl, origin)
	if len(resp.Moved) != 0 || resp.Remaining != 0 {
		t.Fatalf("second migrate on empty shard: %+v", resp)
	}
}

// TestMigrateFailureLeavesOriginServing pins the recovery contract: when
// no shard can accept the sessions, the migrate call itemizes failures,
// the origin copy keeps serving reads and writes, and a later re-run
// finishes the move without losing an epoch.
func TestMigrateFailureLeavesOriginServing(t *testing.T) {
	cl := newCluster(t, 2, false)
	for _, req := range refSessions() {
		if _, err := cl.c.CreateSession(req); err != nil {
			t.Fatalf("creating %s: %v", req.ID, err)
		}
	}
	origin := cl.holder(t, "inc-a")
	var peer *testShard
	var peerIdx int
	for i, sh := range cl.shards {
		if sh != origin {
			peer, peerIdx = sh, i
		}
	}
	listing, err := origin.c.ListSessions()
	if err != nil {
		t.Fatal(err)
	}
	before, err := cl.c.GetSession("inc-a")
	if err != nil {
		t.Fatal(err)
	}

	peer.kill()
	cl.rt.CheckHealth()
	resp := migrate(t, cl, origin)
	if len(resp.Moved) != 0 || len(resp.Failed) != len(listing.Sessions) || resp.Remaining != len(listing.Sessions) {
		t.Fatalf("migration with no destination: %+v", resp)
	}

	// The origin still owns and serves every session.
	if _, err := origin.c.GetSession("inc-a"); err != nil {
		t.Fatalf("origin lost its copy after failed migration: %v", err)
	}
	if _, err := cl.c.Mine("inc-a", server.MineRequest{K: 2, SampleSize: 16, Seed: 3}); err != nil {
		t.Fatalf("routed mine during failed drain: %v", err)
	}
	row := appendRow(t, cl.c, "inc-a", 4)
	if _, err := cl.c.AppendRows("inc-a", server.AppendRequest{Rows: []server.RowJSON{row}}); err != nil {
		t.Fatalf("routed append during failed drain: %v", err)
	}

	// The peer returns; re-running the migration completes it.
	cl.shards[peerIdx] = peer.restart(t)
	cl.rt.CheckHealth()
	resp = migrate(t, cl, origin)
	if resp.Remaining != 0 || len(resp.Moved) != len(listing.Sessions) {
		t.Fatalf("resumed migration: %+v", resp)
	}
	info, err := cl.c.GetSession("inc-a")
	if err != nil {
		t.Fatal(err)
	}
	if info.Stats.Fingerprint != before.Stats.Fingerprint || info.Stats.Epoch != before.Stats.Epoch+1 {
		t.Fatalf("resumed migration landed fp=%s epoch=%d, want fp=%s epoch=%d",
			info.Stats.Fingerprint, info.Stats.Epoch, before.Stats.Fingerprint, before.Stats.Epoch+1)
	}
	if cl.holder(t, "inc-a") == origin {
		t.Fatal("session still on the drained origin after resume")
	}
}

// TestConcurrentStormDuringMigration migrates a shard out from under a
// live mixed workload: miners, an explorer and an appender hammer a
// session while its shard drains. Every request must succeed, every acked
// append must be exactly-once in the destination's epoch, and the
// destination's result cache must serve repeats. Run with -race.
func TestConcurrentStormDuringMigration(t *testing.T) {
	cl := newCluster(t, 3, false)
	for _, req := range refSessions() {
		if _, err := cl.c.CreateSession(req); err != nil {
			t.Fatalf("creating %s: %v", req.ID, err)
		}
	}
	const target = "inc-b"
	origin := cl.holder(t, target)
	before, err := cl.c.GetSession(target)
	if err != nil {
		t.Fatal(err)
	}
	dims := make([]string, len(before.Dims))
	for i := range dims {
		dims[i] = "stormed"
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		failures []string
		appends  atomic.Int64
	)
	stop := make(chan struct{})
	record := func(ctx string, err error) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf("%s: %v", ctx, err))
		mu.Unlock()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := server.MineRequest{K: 2 + i%3, SampleSize: 16, Seed: int64(w*100 + i%7)}
				if _, err := cl.c.Mine(target, req); err != nil {
					record(fmt.Sprintf("miner %d", w), err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			req := server.ExploreRequest{K: 2, GroupBys: 2, Seed: int64(i % 5)}
			if _, err := cl.c.Explore(target, req); err != nil {
				record("explorer", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			row := server.RowJSON{Dims: dims, Measure: float64(i%9 + 1)}
			if _, err := cl.c.AppendRows(target, server.AppendRequest{Rows: []server.RowJSON{row}}); err != nil {
				record("appender", err)
				return
			}
			appends.Add(1)
		}
	}()

	time.Sleep(100 * time.Millisecond) // let the storm establish itself
	resp := migrate(t, cl, origin)
	time.Sleep(50 * time.Millisecond) // post-cutover traffic
	close(stop)
	wg.Wait()

	if len(failures) != 0 {
		t.Fatalf("%d requests failed during migration, first: %s", len(failures), failures[0])
	}
	if resp.Remaining != 0 || len(resp.Failed) != 0 {
		t.Fatalf("migration under storm left sessions behind: %+v", resp)
	}
	dest := cl.holder(t, target)
	if dest == origin {
		t.Fatal("target session never left the drained shard")
	}
	info, err := cl.c.GetSession(target)
	if err != nil {
		t.Fatal(err)
	}
	if info.Stats.Fingerprint != before.Stats.Fingerprint {
		t.Fatalf("fingerprint changed across migration: %s → %s", before.Stats.Fingerprint, info.Stats.Fingerprint)
	}
	if info.Stats.Epoch != appends.Load() {
		t.Fatalf("epoch %d after %d acked appends: appends lost or duplicated across the cut", info.Stats.Epoch, appends.Load())
	}
	direct, err := dest.c.GetSession(target)
	if err != nil {
		t.Fatalf("destination shard does not hold the session: %v", err)
	}
	if direct.Stats.Fingerprint != info.Stats.Fingerprint || direct.Stats.Epoch != info.Stats.Epoch {
		t.Fatalf("router and destination disagree: %+v vs %+v", info.Stats, direct.Stats)
	}
	mreq := server.MineRequest{K: 4, SampleSize: 16, Seed: 99}
	first, err := cl.c.Mine(target, mreq)
	if err != nil {
		t.Fatal(err)
	}
	again, err := cl.c.Mine(target, mreq)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Fatal("repeat mine after migration not served from the destination cache")
	}
	assertSameRules(t, "post-storm cache", again.Rules, first.Rules)
}

// TestClientAbortDoesNotMarkShardDown pins the fault-attribution fix: a
// client dying mid-append is the client's failure, not the shard's. The
// shard must stay up and keep serving.
func TestClientAbortDoesNotMarkShardDown(t *testing.T) {
	cl := newCluster(t, 2, false)
	if _, err := cl.c.CreateSession(server.CreateRequest{
		ID:        "abort",
		Generator: &server.GeneratorSpec{Name: "income", Rows: 200, Seed: 1},
		Prepare:   server.PrepareSpec{SampleSize: 16, Seed: 1},
	}); err != nil {
		t.Fatal(err)
	}
	errsBefore := cl.rt.proxyErrs.Load()

	// A raw connection that promises a large append body, sends a sliver
	// and hangs up — the router is mid-relay to the shard when the read
	// fails.
	u, err := url.Parse(cl.ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", u.Host)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "POST /v1/datasets/abort/append HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: 100000\r\n\r\n", u.Host)
	fmt.Fprintf(conn, `{"rows":[{"dims":`)
	time.Sleep(50 * time.Millisecond) // let the router pick up the request
	conn.Close()

	// Give the router time to misattribute if it is going to; the shard
	// must never flip down.
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, sh := range cl.rt.shards {
			if sh.down.Load() {
				t.Fatalf("shard %s marked down after a client aborted its own upload: %s", sh.label(), sh.lastError())
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if errs := cl.rt.proxyErrs.Load(); errs != errsBefore {
		t.Fatalf("client abort counted as %d shard proxy error(s)", errs-errsBefore)
	}
	// The data path is untouched.
	if _, err := cl.c.Mine("abort", server.MineRequest{K: 2, SampleSize: 16, Seed: 5}); err != nil {
		t.Fatalf("mine after client abort: %v", err)
	}
	row := appendRow(t, cl.c, "abort", 3)
	if _, err := cl.c.AppendRows("abort", server.AppendRequest{Rows: []server.RowJSON{row}}); err != nil {
		t.Fatalf("well-formed append after client abort: %v", err)
	}
}

// TestAutoIDSurvivesPartialResync pins the id-reuse fix: a fresh router
// that boots while the shard holding the highest auto id is unreachable
// must not hand that id out again — the create retries onto an unused id
// instead of surfacing a 409 the client never caused.
func TestAutoIDSurvivesPartialResync(t *testing.T) {
	cl := newCluster(t, 3, true)
	created := make(map[string]bool)
	var last string
	for i := 0; i < 4; i++ {
		info, err := cl.c.CreateSession(server.CreateRequest{
			Generator: &server.GeneratorSpec{Name: "income", Rows: 120 + 10*i, Seed: int64(i + 1)},
			Prepare:   server.PrepareSpec{SampleSize: 8, Seed: 1},
		})
		if err != nil {
			t.Fatalf("auto create %d: %v", i, err)
		}
		created[info.ID] = true
		last = info.ID
	}

	holder := cl.holder(t, last)
	var holderIdx int
	for i, sh := range cl.shards {
		if sh == holder {
			holderIdx = i
		}
	}
	holder.kill()

	// A second router boots against the degraded cluster: its resync
	// cannot see the sessions on the dead shard.
	bases := make([]string, len(cl.shards))
	for i, sh := range cl.shards {
		bases[i] = sh.base
	}
	rt2, err := New(Config{Shards: bases, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(rt2.Handler())
	defer func() { ts2.Close(); rt2.Close() }()
	c2 := newTestRouterClient(ts2)

	// The shard returns with its snapshotted sessions; the new router
	// learns it is up but has not re-listed its sessions.
	cl.shards[holderIdx] = holder.restart(t)
	rt2.CheckHealth()

	info, err := c2.CreateSession(server.CreateRequest{
		Generator: &server.GeneratorSpec{Name: "income", Rows: 90, Seed: 42},
		Prepare:   server.PrepareSpec{SampleSize: 8, Seed: 1},
	})
	if err != nil {
		t.Fatalf("auto create through rebooted router: %v", err)
	}
	if created[info.ID] {
		t.Fatalf("router reissued live auto id %s", info.ID)
	}

	// Every pre-existing session is still intact and reachable once the
	// new router resyncs.
	rt2.Resync()
	for id := range created {
		got, err := c2.GetSession(id)
		if err != nil {
			t.Fatalf("session %s lost after id-reuse scenario: %v", id, err)
		}
		if got.ID != id {
			t.Fatalf("session %s answers as %s", id, got.ID)
		}
	}
}

func newTestRouterClient(ts *httptest.Server) *server.Client {
	return &server.Client{BaseURL: ts.URL, HTTP: ts.Client()}
}

// TestConcurrentRouterClose races Close against itself, with and without
// the health loop running — the pre-fix select-then-close double-closed
// the stop channel and panicked. Run with -race.
func TestConcurrentRouterClose(t *testing.T) {
	cl := newCluster(t, 1, false)
	for i := 0; i < 10; i++ {
		conf := Config{Shards: []string{cl.shards[0].base}, HealthInterval: -1}
		if i%2 == 1 {
			conf.HealthInterval = time.Hour
		}
		rt, err := New(conf)
		if err != nil {
			t.Fatal(err)
		}
		rt.Start()
		var wg sync.WaitGroup
		for j := 0; j < 4; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := rt.Close(); err != nil {
					t.Errorf("concurrent close: %v", err)
				}
			}()
		}
		wg.Wait()
	}
}
