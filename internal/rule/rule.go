// Package rule implements SIRUM's rules: points of the multidimensional
// space (dom(A1) ∪ {*}) × … × (dom(Ad) ∪ {*}) from Section 2.1 of the
// thesis, together with the matching, least-common-ancestor, disjointness
// and generalization (cube lattice) operations of Sections 2.1 and 2.5.
package rule

import (
	"fmt"
	"strings"

	"sirum/internal/dataset"
)

// Wildcard is the code standing for '*': it matches every value of the
// attribute.
const Wildcard int32 = -1

// Rule is a tuple over the rule space: one code per dimension attribute,
// with Wildcard entries matching anything. Rules are ordinary slices; use
// Clone before storing a rule whose backing array may be reused.
type Rule []int32

// AllWildcards returns the rule (*, *, …, *) over d attributes — always the
// first rule SIRUM selects.
func AllWildcards(d int) Rule {
	r := make(Rule, d)
	for i := range r {
		r[i] = Wildcard
	}
	return r
}

// FromTuple returns the rule whose constants are exactly the tuple's values
// (the bottom element of the tuple's cube lattice).
func FromTuple(codes []int32) Rule {
	return append(Rule(nil), codes...)
}

// Clone returns an independent copy.
func (r Rule) Clone() Rule { return append(Rule(nil), r...) }

// NumWildcards returns the number of '*' entries.
func (r Rule) NumWildcards() int {
	n := 0
	for _, v := range r {
		if v == Wildcard {
			n++
		}
	}
	return n
}

// Level returns the rule's level in the cube lattice: the number of constant
// (non-wildcard) attributes. The all-wildcards rule is level 0.
func (r Rule) Level() int { return len(r) - r.NumWildcards() }

// MatchesCodes reports whether a tuple with the given dimension codes matches
// r (t ⊨ r): every attribute is either a wildcard in r or equal.
func (r Rule) MatchesCodes(codes []int32) bool {
	for j, v := range r {
		if v != Wildcard && v != codes[j] {
			return false
		}
	}
	return true
}

// MatchesRow reports whether tuple i of ds matches r, reading the columnar
// layout directly.
func (r Rule) MatchesRow(ds *dataset.Dataset, i int) bool {
	for j, v := range r {
		if v != Wildcard && v != ds.Dims[j][i] {
			return false
		}
	}
	return true
}

// SupportSize returns |S_D(r)|, the number of tuples of ds covered by r.
func (r Rule) SupportSize(ds *dataset.Dataset) int {
	n := 0
	for i := 0; i < ds.NumRows(); i++ {
		if r.MatchesRow(ds, i) {
			n++
		}
	}
	return n
}

// SupportSums returns (Σ t[m], count) over the tuples of ds covered by r.
func (r Rule) SupportSums(ds *dataset.Dataset) (sum float64, count int) {
	for i := 0; i < ds.NumRows(); i++ {
		if r.MatchesRow(ds, i) {
			sum += ds.Measure[i]
			count++
		}
	}
	return sum, count
}

// IsAncestorOf reports whether r generalizes o: every attribute of r is
// either a wildcard or equal to o's value. Every rule is its own ancestor.
func (r Rule) IsAncestorOf(o Rule) bool {
	for j, v := range r {
		if v != Wildcard && v != o[j] {
			return false
		}
	}
	return true
}

// Disjoint reports whether r and o are disjoint per Section 2.1: some
// attribute is a constant in both and the constants differ. Disjoint rules
// have provably disjoint support sets; overlapping rules may still have
// disjoint supports.
func (r Rule) Disjoint(o Rule) bool {
	for j, v := range r {
		if v != Wildcard && o[j] != Wildcard && v != o[j] {
			return true
		}
	}
	return false
}

// Overlaps is the negation of Disjoint.
func (r Rule) Overlaps(o Rule) bool { return !r.Disjoint(o) }

// Equal reports component-wise equality.
func (r Rule) Equal(o Rule) bool {
	if len(r) != len(o) {
		return false
	}
	for j := range r {
		if r[j] != o[j] {
			return false
		}
	}
	return true
}

// LCA computes the least common ancestor of two tuples (or rules): attribute
// values are kept where equal and replaced by wildcards where they differ.
// The result is written into dst (allocated if too small) and returned.
func LCA(a, b []int32, dst Rule) Rule {
	if cap(dst) < len(a) {
		dst = make(Rule, len(a))
	}
	dst = dst[:len(a)]
	for j := range a {
		if a[j] == b[j] {
			dst[j] = a[j]
		} else {
			dst[j] = Wildcard
		}
	}
	return dst
}

// Key encodes the rule as a compact string usable as a map key. Keys of
// rules with equal contents compare equal; distinct rules of the same arity
// produce distinct keys.
func (r Rule) Key() string {
	//sirum:allow zerocopykey deliberate copy: cold convenience accessor; hot loops use AppendKey + m[string(buf)]
	return string(r.AppendKey(make([]byte, 0, len(r)*4)))
}

// AppendKey appends the Key encoding of r to dst and returns it. Hot loops
// reuse one scratch buffer across calls and look maps up via m[string(buf)],
// which the compiler turns into an allocation-free access.
func (r Rule) AppendKey(dst []byte) []byte {
	for _, v := range r {
		u := uint32(v)
		dst = append(dst, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	return dst
}

// FromKey decodes a rule produced by Key, given the arity d.
func FromKey(key string, d int) (Rule, error) {
	return DecodeKey(key, d, nil)
}

// DecodeKey is FromKey into a caller-provided destination (allocated when
// too small), for decode loops that reuse one scratch rule.
func DecodeKey(key string, d int, dst Rule) (Rule, error) {
	if len(key) != d*4 {
		return nil, fmt.Errorf("rule: key has %d bytes, want %d for arity %d", len(key), d*4, d)
	}
	if cap(dst) < d {
		dst = make(Rule, d)
	}
	dst = dst[:d]
	for j := 0; j < d; j++ {
		u := uint32(key[j*4]) | uint32(key[j*4+1])<<8 | uint32(key[j*4+2])<<16 | uint32(key[j*4+3])<<24
		dst[j] = int32(u)
	}
	return dst, nil
}

// String renders the rule with raw codes, e.g. "(0, *, 3)".
func (r Rule) String() string {
	parts := make([]string, len(r))
	for j, v := range r {
		if v == Wildcard {
			parts[j] = "*"
		} else {
			parts[j] = fmt.Sprintf("%d", v)
		}
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Format renders the rule with dictionary-decoded values, e.g.
// "(Fri, *, London)".
func (r Rule) Format(dicts []*dataset.Dict) string {
	parts := make([]string, len(r))
	for j, v := range r {
		if v == Wildcard {
			parts[j] = "*"
		} else {
			parts[j] = dicts[j].Value(v)
		}
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Parse builds a rule from string attribute values using the dataset's
// dictionaries; "*" denotes a wildcard. Unknown values are an error (a rule
// over values absent from the data covers nothing).
func Parse(vals []string, ds *dataset.Dataset) (Rule, error) {
	if len(vals) != ds.NumDims() {
		return nil, fmt.Errorf("rule: %d values for %d dimensions", len(vals), ds.NumDims())
	}
	r := make(Rule, len(vals))
	for j, v := range vals {
		if v == "*" {
			r[j] = Wildcard
			continue
		}
		c, ok := ds.Dicts[j].Lookup(v)
		if !ok {
			return nil, fmt.Errorf("rule: value %q not in domain of %s", v, ds.Schema.DimNames[j])
		}
		r[j] = c
	}
	return r, nil
}

// MaxFreeAttrs bounds generalization enumeration: a rule with n free
// (constant) attributes among the enumerated positions has 2^n ancestors,
// and past 2^30 the enumeration would exhaust memory long before finishing.
// Wider requests are rejected as a BlowupError instead of attempted.
const MaxFreeAttrs = 30

// BlowupError reports a generalization whose 2^Free ancestor count exceeds
// the enumerable limit. It is a property of the queried dataset's shape, so
// servers surface it to the client rather than treating it as internal.
type BlowupError struct{ Free int }

func (e *BlowupError) Error() string {
	return fmt.Sprintf("rule: generalization over %d free attributes would emit 2^%d ancestors (limit 2^%d)",
		e.Free, e.Free, MaxFreeAttrs)
}

// ForEachGeneralization enumerates the ancestors of r obtainable by
// wildcarding subsets of its constant attributes at the given positions.
// Positions that are already wildcards contribute nothing. When includeSelf
// is true the empty subset (r itself) is visited too. The rule passed to fn
// is only valid for the duration of the call; fn must Clone it to retain it.
// More than MaxFreeAttrs constant attributes among positions is a
// BlowupError.
//
// This is the mapper of the data-cube algorithm (Section 3.1): with
// positions = all attributes it emits the entire cube lattice CL(r); with
// positions restricted to a column group it emits one stage of the
// column-grouping pipeline (Section 4.3).
func (r Rule) ForEachGeneralization(positions []int, includeSelf bool, fn func(Rule)) error {
	free := make([]int, 0, len(positions))
	for _, p := range positions {
		if r[p] != Wildcard {
			free = append(free, p)
		}
	}
	if len(free) > MaxFreeAttrs {
		return &BlowupError{Free: len(free)}
	}
	buf := r.Clone()
	total := 1 << uint(len(free))
	for mask := 0; mask < total; mask++ {
		if mask == 0 && !includeSelf {
			continue
		}
		copy(buf, r)
		for b := 0; b < len(free); b++ {
			if mask&(1<<uint(b)) != 0 {
				buf[free[b]] = Wildcard
			}
		}
		fn(buf)
	}
	return nil
}

// AllPositions returns [0, 1, …, d-1], the position list covering every
// attribute.
func AllPositions(d int) []int {
	out := make([]int, d)
	for i := range out {
		out[i] = i
	}
	return out
}

// CubeLatticeSize returns |CL(r)| = 2^(number of constants), the number of
// ancestors of r including itself.
func (r Rule) CubeLatticeSize() int {
	return 1 << uint(r.Level())
}
