package rule

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"sirum/internal/datagen"
	"sirum/internal/dataset"
)

func mustParse(t *testing.T, ds *dataset.Dataset, vals ...string) Rule {
	t.Helper()
	r, err := Parse(vals, ds)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAllWildcards(t *testing.T) {
	r := AllWildcards(3)
	if r.Level() != 0 || r.NumWildcards() != 3 {
		t.Errorf("AllWildcards: %v", r)
	}
	if r.CubeLatticeSize() != 1 {
		t.Errorf("CubeLatticeSize = %d", r.CubeLatticeSize())
	}
}

// TestMatchingPaperExample pins the example from Section 2.1: tuple t6
// (Sat, Frankfurt, London) matches rules r1, r2 and r4 of Table 1.2 but not
// r3.
func TestMatchingPaperExample(t *testing.T) {
	ds := datagen.Flights()
	t6, _ := ds.Row(5, nil)
	r1 := AllWildcards(3)
	r2 := mustParse(t, ds, "*", "*", "London")
	r3 := mustParse(t, ds, "Fri", "*", "*")
	r4 := mustParse(t, ds, "Sat", "*", "*")
	if !r1.MatchesCodes(t6) || !r2.MatchesCodes(t6) || !r4.MatchesCodes(t6) {
		t.Error("t6 should match r1, r2, r4")
	}
	if r3.MatchesCodes(t6) {
		t.Error("t6 should not match r3")
	}
	if !r2.MatchesRow(ds, 5) {
		t.Error("MatchesRow disagrees with MatchesCodes")
	}
}

// TestSupportPaperExample pins Table 1.2's aggregates: (*,*,London) covers 4
// tuples with average delay 15.25 ("15.3" in the thesis' rounding), and the
// all-wildcards rule covers all 14 with average 10.357 ("10.4").
func TestSupportPaperExample(t *testing.T) {
	ds := datagen.Flights()
	r2 := mustParse(t, ds, "*", "*", "London")
	sum, count := r2.SupportSums(ds)
	if count != 4 {
		t.Errorf("|S(r2)| = %d, want 4", count)
	}
	if avg := sum / float64(count); avg != 15.25 {
		t.Errorf("m(r2) = %v, want 15.25", avg)
	}
	if got := r2.SupportSize(ds); got != 4 {
		t.Errorf("SupportSize = %d", got)
	}
	all := AllWildcards(3)
	sum, count = all.SupportSums(ds)
	if count != 14 || sum != 145 {
		t.Errorf("S(r1): sum=%v count=%d, want 145/14", sum, count)
	}
	// r3 = (Fri, *, *) covers t1 and t2.
	r3 := mustParse(t, ds, "Fri", "*", "*")
	sum, count = r3.SupportSums(ds)
	if count != 2 || sum != 36 {
		t.Errorf("S(r3): sum=%v count=%d, want 36/2", sum, count)
	}
}

// TestLCAPaperExample pins Section 2.1's example: lca(t1, t6) = (*,*,London),
// and Section 3.1.1's: lca((Sun,Chicago,London),(Fri,SF,London)) = (*,*,London).
func TestLCAPaperExample(t *testing.T) {
	ds := datagen.Flights()
	t1, _ := ds.Row(0, nil)
	t6, _ := ds.Row(5, nil)
	got := LCA(t1, t6, nil)
	want := mustParse(t, ds, "*", "*", "London")
	if !got.Equal(want) {
		t.Errorf("lca(t1,t6) = %v, want %v", got.Format(ds.Dicts), want.Format(ds.Dicts))
	}
	t4, _ := ds.Row(3, nil)
	got = LCA(t4, t1, nil)
	if !got.Equal(want) {
		t.Errorf("lca(t4,t1) = %v, want (*,*,London)", got.Format(ds.Dicts))
	}
}

func TestLCABufferReuse(t *testing.T) {
	a := []int32{1, 2, 3}
	b := []int32{1, 9, 3}
	buf := make(Rule, 3)
	got := LCA(a, b, buf)
	if &got[0] != &buf[0] {
		t.Error("LCA ignored provided buffer")
	}
	if !got.Equal(Rule{1, Wildcard, 3}) {
		t.Errorf("LCA = %v", got)
	}
}

// TestDisjointPaperExamples pins Section 2.1's examples: (Fri,London,LA) and
// (*,SF,LA) are disjoint; (Wed,*,*) and (*,*,London) overlap even though
// their support sets are disjoint.
func TestDisjointPaperExamples(t *testing.T) {
	ds := datagen.Flights()
	a := mustParse(t, ds, "Fri", "London", "LA")
	b := mustParse(t, ds, "*", "SF", "LA")
	if !a.Disjoint(b) || !b.Disjoint(a) {
		t.Error("(Fri,London,LA) and (*,SF,LA) should be disjoint")
	}
	c := mustParse(t, ds, "Wed", "*", "*")
	d := mustParse(t, ds, "*", "*", "London")
	if c.Disjoint(d) {
		t.Error("(Wed,*,*) and (*,*,London) should overlap by definition")
	}
	if !c.Overlaps(d) {
		t.Error("Overlaps inconsistent with Disjoint")
	}
}

func TestIsAncestorOf(t *testing.T) {
	ds := datagen.Flights()
	base := mustParse(t, ds, "Fri", "SF", "London")
	anc := mustParse(t, ds, "*", "SF", "*")
	other := mustParse(t, ds, "*", "London", "*")
	if !anc.IsAncestorOf(base) {
		t.Error("(*,SF,*) should be an ancestor of (Fri,SF,London)")
	}
	if anc.IsAncestorOf(other) || other.IsAncestorOf(anc) {
		t.Error("incomparable rules reported as ancestors")
	}
	if !base.IsAncestorOf(base) {
		t.Error("every rule is its own ancestor")
	}
	if !AllWildcards(3).IsAncestorOf(base) {
		t.Error("(*,*,*) is an ancestor of everything")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	r := Rule{Wildcard, 0, 5, Wildcard, 1 << 20}
	back, err := FromKey(r.Key(), len(r))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(r) {
		t.Errorf("round trip: %v != %v", back, r)
	}
	if _, err := FromKey(r.Key(), 3); err == nil {
		t.Error("FromKey with wrong arity accepted")
	}
}

func TestKeyUniqueness(t *testing.T) {
	seen := map[string]Rule{}
	var rules []Rule
	for a := int32(-1); a < 3; a++ {
		for b := int32(-1); b < 3; b++ {
			rules = append(rules, Rule{a, b})
		}
	}
	for _, r := range rules {
		k := r.Key()
		if prev, ok := seen[k]; ok {
			t.Fatalf("key collision between %v and %v", prev, r)
		}
		seen[k] = r
	}
}

func TestStringAndFormat(t *testing.T) {
	ds := datagen.Flights()
	r := mustParse(t, ds, "Fri", "*", "London")
	if got := r.Format(ds.Dicts); got != "(Fri, *, London)" {
		t.Errorf("Format = %q", got)
	}
	if got := r.String(); got != "(0, *, 0)" {
		t.Errorf("String = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	ds := datagen.Flights()
	if _, err := Parse([]string{"Fri", "*"}, ds); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := Parse([]string{"Noday", "*", "*"}, ds); err == nil {
		t.Error("unknown value accepted")
	}
}

// TestCubeLatticePaperExample pins Figure 2.1: the cube lattice of
// (Fri, SF, London) has 8 elements across 4 levels.
func TestCubeLatticePaperExample(t *testing.T) {
	ds := datagen.Flights()
	base := mustParse(t, ds, "Fri", "SF", "London")
	if base.CubeLatticeSize() != 8 {
		t.Fatalf("CubeLatticeSize = %d, want 8", base.CubeLatticeSize())
	}
	got := map[string]bool{}
	base.ForEachGeneralization(AllPositions(3), true, func(a Rule) {
		got[a.Format(ds.Dicts)] = true
	})
	want := []string{
		"(Fri, SF, London)",
		"(Fri, SF, *)", "(Fri, *, London)", "(*, SF, London)",
		"(Fri, *, *)", "(*, SF, *)", "(*, *, London)",
		"(*, *, *)",
	}
	if len(got) != len(want) {
		t.Fatalf("got %d ancestors: %v", len(got), got)
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing ancestor %s", w)
		}
	}
}

// TestColumnGroupedGeneralization pins the two-stage example of Section 4.3:
// with G1 = {Day, Origin}, the mapper for (Fri,SF,London) generates exactly
// (Fri,*,London), (*,SF,London) and (*,*,London).
func TestColumnGroupedGeneralization(t *testing.T) {
	ds := datagen.Flights()
	base := mustParse(t, ds, "Fri", "SF", "London")
	var got []string
	base.ForEachGeneralization([]int{0, 1}, false, func(a Rule) {
		got = append(got, a.Format(ds.Dicts))
	})
	want := map[string]bool{
		"(Fri, *, London)": true, "(*, SF, London)": true, "(*, *, London)": true,
	}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for _, g := range got {
		if !want[g] {
			t.Errorf("unexpected ancestor %s", g)
		}
	}
	// Positions that are already wildcards contribute nothing.
	r := Rule{Wildcard, 0, 1}
	n := 0
	r.ForEachGeneralization([]int{0}, false, func(Rule) { n++ })
	if n != 0 {
		t.Errorf("wildcard position generated %d ancestors", n)
	}
}

func TestForEachGeneralizationCallbackBufferContract(t *testing.T) {
	r := Rule{1, 2}
	var kept []Rule
	r.ForEachGeneralization(AllPositions(2), true, func(a Rule) {
		kept = append(kept, a.Clone())
	})
	if len(kept) != 4 {
		t.Fatalf("got %d ancestors", len(kept))
	}
	seen := map[string]bool{}
	for _, k := range kept {
		seen[k.Key()] = true
	}
	if len(seen) != 4 {
		t.Error("ancestors not distinct after Clone — buffer reuse leaked")
	}
}

func TestForEachGeneralizationBlowupGuard(t *testing.T) {
	r := make(Rule, 40)
	for i := range r {
		r[i] = 1
	}
	err := r.ForEachGeneralization(AllPositions(40), true, func(Rule) {
		t.Error("callback invoked despite blow-up")
	})
	var blowup *BlowupError
	if !errors.As(err, &blowup) {
		t.Fatalf("40-constant generalization: err = %v, want BlowupError", err)
	}
	if blowup.Free != 40 {
		t.Errorf("BlowupError.Free = %d, want 40", blowup.Free)
	}
	// Exactly MaxFreeAttrs free attributes is still allowed (boundary).
	ok := make(Rule, MaxFreeAttrs)
	for i := range ok {
		ok[i] = 1
	}
	n := 0
	if err := ok.ForEachGeneralization([]int{0, 1}, false, func(Rule) { n++ }); err != nil || n != 3 {
		t.Errorf("narrow generalization: err=%v n=%d", err, n)
	}
}

func randomRule(r *rand.Rand, d int) Rule {
	out := make(Rule, d)
	for j := range out {
		if r.Intn(2) == 0 {
			out[j] = Wildcard
		} else {
			out[j] = int32(r.Intn(4))
		}
	}
	return out
}

func randomTuple(r *rand.Rand, d int) []int32 {
	out := make([]int32, d)
	for j := range out {
		out[j] = int32(r.Intn(4))
	}
	return out
}

// Property: the LCA is a common ancestor of both inputs, and it is the least
// one — any other common ancestor is an ancestor of the LCA.
func TestQuickLCAIsLeastCommonAncestor(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := r.Intn(6) + 1
		a, b := randomTuple(r, d), randomTuple(r, d)
		l := LCA(a, b, nil)
		if !l.IsAncestorOf(FromTuple(a)) || !l.IsAncestorOf(FromTuple(b)) {
			return false
		}
		// lca(a,a) == a.
		if !LCA(a, a, nil).Equal(FromTuple(a)) {
			return false
		}
		// Commutative.
		if !LCA(b, a, nil).Equal(l) {
			return false
		}
		// Minimality: a random common ancestor must generalize the LCA.
		c := randomRule(r, d)
		if c.IsAncestorOf(FromTuple(a)) && c.IsAncestorOf(FromTuple(b)) && !c.IsAncestorOf(l) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: disjoint rules can never match a common tuple.
func TestQuickDisjointImpliesNoCommonMatch(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := r.Intn(5) + 1
		a, b := randomRule(r, d), randomRule(r, d)
		if !a.Disjoint(b) {
			return true
		}
		// Exhaustively scan the small tuple space.
		tuple := make([]int32, d)
		var scan func(j int) bool
		scan = func(j int) bool {
			if j == d {
				return !(a.MatchesCodes(tuple) && b.MatchesCodes(tuple))
			}
			for v := int32(0); v < 4; v++ {
				tuple[j] = v
				if !scan(j + 1) {
					return false
				}
			}
			return true
		}
		return scan(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ancestor relation is reflexive and transitive, and ancestors
// match a superset of tuples.
func TestQuickAncestorMatchSuperset(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := r.Intn(4) + 1
		base := randomRule(r, d)
		ok := true
		base.ForEachGeneralization(AllPositions(d), true, func(anc Rule) {
			if !anc.IsAncestorOf(base) {
				ok = false
			}
			tuple := randomTuple(r, d)
			if base.MatchesCodes(tuple) && !anc.MatchesCodes(tuple) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLCA(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x, y := randomTuple(r, 18), randomTuple(r, 18)
	buf := make(Rule, 18)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		LCA(x, y, buf)
	}
}

func BenchmarkMatchesCodes(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	ru := randomRule(r, 18)
	tu := randomTuple(r, 18)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ru.MatchesCodes(tu)
	}
}
