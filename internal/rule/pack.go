package rule

import (
	"fmt"
	"math/bits"
)

// Packer packs rules into single uint64 keys. Dimension attribute j gets a
// fixed field of ceil(log2(domain_j + 1)) bits — wide enough for the codes
// 0..domain_j-1 plus one spare pattern, the all-ones field, which stands for
// the wildcard — and the fields are laid out low-to-high in attribute order.
// Packing applies when the fields sum to at most 64 bits, the common case
// for the evaluation schemas (the canonical income dataset needs 31); wider
// schemas fall back to the string keys of Key/FromKey.
//
// Packed keys are what make the cube/candidate pipeline allocation-free:
// keys are machine words instead of per-emission strings, candidate maps are
// map[uint64]Agg, and wildcarding an attribute during ancestor enumeration
// is a single OR with the attribute's field mask.
type Packer struct {
	shifts  []uint
	masks   []uint64 // field mask in key position: limit << shift
	limits  []uint64 // all-ones field value — the wildcard pattern
	domains []uint64
	wild    uint64 // the packed all-wildcards rule
	total   uint   // bits used
}

// NewPacker sizes a packer for the given per-dimension domain sizes. ok is
// false when the dimensions need more than 64 bits in total (or there are
// none at all); callers then key rules as strings.
func NewPacker(domains []int) (*Packer, bool) {
	if len(domains) == 0 {
		return nil, false
	}
	p := &Packer{
		shifts:  make([]uint, len(domains)),
		masks:   make([]uint64, len(domains)),
		limits:  make([]uint64, len(domains)),
		domains: make([]uint64, len(domains)),
	}
	var shift uint
	for j, dom := range domains {
		if dom < 1 {
			dom = 1 // an empty dictionary still needs its wildcard pattern
		}
		// 2^w - 1 >= dom, so codes 0..dom-1 never collide with the all-ones
		// wildcard.
		w := uint(bits.Len(uint(dom)))
		if shift+w > 64 {
			return nil, false
		}
		limit := uint64(1)<<w - 1
		p.shifts[j] = shift
		p.limits[j] = limit
		p.masks[j] = limit << shift
		p.domains[j] = uint64(dom)
		p.wild |= limit << shift
		shift += w
	}
	p.total = shift
	return p, true
}

// NumDims returns the rule arity the packer was sized for.
func (p *Packer) NumDims() int { return len(p.shifts) }

// TotalBits returns the number of key bits in use (at most 64).
func (p *Packer) TotalBits() int { return int(p.total) }

// AllWildcards returns the packed all-wildcards rule: every field all-ones.
func (p *Packer) AllWildcards() uint64 { return p.wild }

// FieldMask returns the key mask of attribute j. ORing it into a key
// wildcards the attribute, and a key holds the wildcard exactly when the
// masked field is all ones.
func (p *Packer) FieldMask(j int) uint64 { return p.masks[j] }

// IsWildcard reports whether attribute j of key holds the wildcard pattern.
func (p *Packer) IsWildcard(key uint64, j int) bool { return key&p.masks[j] == p.masks[j] }

// Set returns key with attribute j replaced by code v (unvalidated — the
// caller guarantees v came from the attribute's dictionary).
func (p *Packer) Set(key uint64, j int, v int32) uint64 {
	return key&^p.masks[j] | uint64(uint32(v))<<p.shifts[j]
}

// PackCodes packs a code tuple, mapping Wildcard entries to the all-ones
// pattern, without validation — the hot path for codes that came out of the
// dataset's dictionaries. A code outside its dictionary corrupts neighboring
// fields; use Pack for rules of uncertain provenance.
func (p *Packer) PackCodes(codes []int32) uint64 {
	var key uint64
	for j, v := range codes {
		if v == Wildcard {
			key |= p.masks[j]
		} else {
			key |= uint64(uint32(v)) << p.shifts[j]
		}
	}
	return key
}

// Pack validates and packs an arbitrary rule.
func (p *Packer) Pack(r Rule) (uint64, error) {
	if len(r) != len(p.shifts) {
		return 0, fmt.Errorf("rule: packing arity-%d rule with a %d-dimension packer", len(r), len(p.shifts))
	}
	var key uint64
	for j, v := range r {
		switch {
		case v == Wildcard:
			key |= p.masks[j]
		case v >= 0 && uint64(v) < p.domains[j]:
			key |= uint64(v) << p.shifts[j]
		default:
			return 0, fmt.Errorf("rule: code %d of attribute %d outside domain [0,%d)", v, j, p.domains[j])
		}
	}
	return key, nil
}

// Unpack decodes a packed key into dst (allocated when too small) and
// returns it. Keys with stray high bits or field values outside both the
// domain and the wildcard pattern are corrupt and rejected.
func (p *Packer) Unpack(key uint64, dst Rule) (Rule, error) {
	if p.total < 64 && key>>p.total != 0 {
		return nil, fmt.Errorf("rule: corrupt packed key %#x: bits set beyond the %d-bit layout", key, p.total)
	}
	if cap(dst) < len(p.shifts) {
		dst = make(Rule, len(p.shifts))
	}
	dst = dst[:len(p.shifts)]
	for j := range p.shifts {
		f := key >> p.shifts[j] & p.limits[j]
		switch {
		case f == p.limits[j]:
			dst[j] = Wildcard
		case f < p.domains[j]:
			dst[j] = int32(f)
		default:
			return nil, fmt.Errorf("rule: corrupt packed key %#x: field %d holds %d, domain size %d", key, j, f, p.domains[j])
		}
	}
	return dst, nil
}
