package rule

import (
	"math/rand"
	"testing"
)

// packerFor builds domain sizes whose fields sum to exactly total bits:
// dims-1 single-bit fields (domain 1) and one field carrying the rest.
func domainsForBits(dims, total int) []int {
	doms := make([]int, dims)
	for j := 0; j < dims-1; j++ {
		doms[j] = 1 // domain 1 → field width 1
	}
	rest := total - (dims - 1)
	doms[dims-1] = 1<<rest - 1 // width rest: Len(2^rest - 1) = rest
	return doms
}

func TestNewPackerBitBudget(t *testing.T) {
	// d·bits = 63, 64: packable; 65: string fallback.
	for _, tc := range []struct {
		total int
		ok    bool
	}{{63, true}, {64, true}, {65, false}} {
		doms := domainsForBits(4, tc.total)
		p, ok := NewPacker(doms)
		if ok != tc.ok {
			t.Fatalf("NewPacker(%d bits): ok=%v, want %v", tc.total, ok, tc.ok)
		}
		if ok && p.TotalBits() != tc.total {
			t.Errorf("TotalBits = %d, want %d", p.TotalBits(), tc.total)
		}
	}
	if _, ok := NewPacker(nil); ok {
		t.Error("zero-dimension schema accepted")
	}
	// Sub-positive domains still get their wildcard field.
	p, ok := NewPacker([]int{0, 5})
	if !ok || p.TotalBits() != 1+3 {
		t.Errorf("NewPacker([0 5]): ok=%v bits=%d", ok, p.TotalBits())
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	doms := []int{7, 1, 12, 3}
	p, ok := NewPacker(doms)
	if !ok {
		t.Fatal("packer rejected a narrow schema")
	}
	rng := rand.New(rand.NewSource(5))
	buf := make(Rule, 4)
	for i := 0; i < 500; i++ {
		r := make(Rule, 4)
		for j, dom := range doms {
			if rng.Intn(3) == 0 {
				r[j] = Wildcard
			} else {
				r[j] = int32(rng.Intn(dom))
			}
		}
		key, err := p.Pack(r)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.PackCodes(r); got != key {
			t.Fatalf("PackCodes(%v) = %#x, Pack = %#x", r, got, key)
		}
		back, err := p.Unpack(key, buf)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(r) {
			t.Fatalf("round trip %v → %#x → %v", r, key, back)
		}
		for j := range r {
			if p.IsWildcard(key, j) != (r[j] == Wildcard) {
				t.Fatalf("IsWildcard(%#x, %d) wrong for %v", key, j, r)
			}
		}
	}
}

func TestPackerSetAndWildcards(t *testing.T) {
	p, _ := NewPacker([]int{5, 9, 2})
	if w, err := p.Unpack(p.AllWildcards(), nil); err != nil || !w.Equal(AllWildcards(3)) {
		t.Fatalf("AllWildcards unpacks to %v (%v)", w, err)
	}
	key := p.AllWildcards()
	key = p.Set(key, 1, 4)
	r, err := p.Unpack(key, nil)
	if err != nil || !r.Equal(Rule{Wildcard, 4, Wildcard}) {
		t.Fatalf("Set produced %v (%v)", r, err)
	}
	if key|p.FieldMask(1) != p.AllWildcards() {
		t.Error("FieldMask OR does not restore the wildcard")
	}
}

func TestPackValidation(t *testing.T) {
	p, _ := NewPacker([]int{5, 9})
	if _, err := p.Pack(Rule{1}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := p.Pack(Rule{5, 0}); err == nil {
		t.Error("out-of-domain code accepted")
	}
	if _, err := p.Pack(Rule{-7, 0}); err == nil {
		t.Error("negative non-wildcard code accepted")
	}
}

func TestUnpackCorruptKeys(t *testing.T) {
	p, _ := NewPacker([]int{5, 9}) // widths 3+4 = 7 bits
	if _, err := p.Unpack(1<<7, nil); err == nil {
		t.Error("stray high bit accepted")
	}
	// Field value 6 is above domain 5 but below the wildcard pattern 7.
	if _, err := p.Unpack(6, nil); err == nil {
		t.Error("between-domain-and-wildcard field accepted")
	}
}

// TestKeyScratchAllocs pins the scratch-buffer paths the cube pipeline
// depends on at zero allocations.
func TestKeyScratchAllocs(t *testing.T) {
	r := Rule{3, Wildcard, 7}
	p, _ := NewPacker([]int{9, 4, 11})
	keyBuf := make([]byte, 0, 12)
	dec := make(Rule, 3)
	var key string
	{
		b := r.AppendKey(keyBuf[:0])
		key = string(b)
	}
	codes := []int32{3, Wildcard, 7}
	checks := []struct {
		name string
		fn   func()
	}{
		{"AppendKey", func() { keyBuf = r.AppendKey(keyBuf[:0]) }},
		{"DecodeKey", func() {
			if _, err := DecodeKey(key, 3, dec); err != nil {
				t.Fatal(err)
			}
		}},
		{"PackCodes", func() { _ = p.PackCodes(codes) }},
		{"Unpack", func() {
			if _, err := p.Unpack(p.PackCodes(codes), dec); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, c := range checks {
		if got := testing.AllocsPerRun(100, c.fn); got != 0 {
			t.Errorf("%s allocates %v times per run, want 0", c.name, got)
		}
	}
}

// FuzzPackUnpack round-trips arbitrary rules through every packer the seed
// corpus pins at the 63/64/65-bit boundary plus whatever widths the fuzzer
// invents, and cross-checks the packed representation against string keys.
func FuzzPackUnpack(f *testing.F) {
	f.Add(uint8(3), uint8(59), int32(1), int32(2), int32(3), int32(4))    // 63 bits
	f.Add(uint8(3), uint8(60), int32(0), int32(-1), int32(5), int32(100)) // 64 bits
	f.Add(uint8(3), uint8(61), int32(-1), int32(-1), int32(0), int32(0))  // 65 bits
	f.Add(uint8(0), uint8(8), int32(200), int32(0), int32(0), int32(0))
	f.Fuzz(func(t *testing.T, dims, total uint8, c0, c1, c2, c3 int32) {
		d := int(dims)%4 + 1
		bits := int(total)%66 + d // at least 1 bit per field
		if max := 62 + d - 1; bits > max {
			bits = max // the wide field caps at 62 bits (domain must fit int)
		}
		doms := domainsForBits(d, bits)
		p, ok := NewPacker(doms)
		if (bits <= 64) != ok {
			t.Fatalf("NewPacker(%v) ok=%v for %d bits", doms, ok, bits)
		}
		if !ok {
			return
		}
		codes := []int32{c0, c1, c2, c3}[:d]
		r := make(Rule, d)
		for j, c := range codes {
			if c == Wildcard || c < 0 {
				r[j] = Wildcard
			} else {
				r[j] = int32(int(c) % doms[j])
			}
		}
		key, err := p.Pack(r)
		if err != nil {
			t.Fatalf("Pack(%v): %v", r, err)
		}
		back, err := p.Unpack(key, nil)
		if err != nil {
			t.Fatalf("Unpack(Pack(%v)): %v", r, err)
		}
		if !back.Equal(r) {
			t.Fatalf("round trip %v → %#x → %v", r, key, back)
		}
		// The packed and string representations must agree on identity.
		r2, err := FromKey(back.Key(), d)
		if err != nil || !r2.Equal(r) {
			t.Fatalf("string key round trip diverged: %v vs %v (%v)", r2, r, err)
		}
	})
}
