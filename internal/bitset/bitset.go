// Package bitset provides a compact, fixed-capacity bit array used to record
// which rules cover a tuple (the "BA" arrays of Algorithm 3 in the SIRUM
// thesis). Rule lists are small (the thesis assumes at most ~50 rules, so a
// single machine word usually suffices) but the type supports arbitrary
// widths.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Bitset is a fixed-capacity array of bits. The zero value is an empty bitset
// with capacity zero; use New to allocate capacity. Bitsets are not safe for
// concurrent mutation.
type Bitset struct {
	words []uint64
	n     int // capacity in bits
}

// New returns a bitset with capacity for n bits, all zero.
func New(n int) *Bitset {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative size %d", n))
	}
	return &Bitset{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices returns a bitset of capacity n with the given bits set.
func FromIndices(n int, idx ...int) *Bitset {
	b := New(n)
	for _, i := range idx {
		b.Set(i)
	}
	return b
}

// Len returns the capacity in bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i to one.
func (b *Bitset) Set(i int) {
	b.check(i)
	b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear sets bit i to zero.
func (b *Bitset) Clear(i int) {
	b.check(i)
	b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Get reports whether bit i is set.
func (b *Bitset) Get(i int) bool {
	b.check(i)
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

func (b *Bitset) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, b.n))
	}
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (b *Bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Intersects reports whether b and o share at least one set bit. It
// corresponds to the "BA & r.BA != 0" test of Algorithm 3.
func (b *Bitset) Intersects(o *Bitset) bool { return andAny(b.words, o.words) }

// AndAny reports whether b and o share at least one set bit — the unchecked
// word-level bulk form of the per-bit Get-and-test loop.
func (b *Bitset) AndAny(o *Bitset) bool { return andAny(b.words, o.words) }

// andAny is the shared word loop of Intersects/AndAny.
func andAny(a, b []uint64) bool {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i]&b[i] != 0 {
			return true
		}
	}
	return false
}

// UnionInto ORs b's set bits into dst, word by word. dst must have capacity
// for every set bit of b (it may be wider); bits beyond dst's word count
// panic rather than silently vanish.
func (b *Bitset) UnionInto(dst *Bitset) {
	if len(b.words) > len(dst.words) {
		for _, w := range b.words[len(dst.words):] {
			if w != 0 {
				panic(fmt.Sprintf("bitset: UnionInto target capacity %d cannot hold source capacity %d with high bits set", dst.n, b.n))
			}
		}
	}
	n := min(len(b.words), len(dst.words))
	for i := 0; i < n; i++ {
		dst.words[i] |= b.words[i]
	}
}

// Words exposes the backing word slice (little-endian bit order, bit i lives
// in Words()[i/64]). Mutating it mutates the bitset; bulk scan loops use it
// to fuse word-level tests without per-bit bounds checks.
func (b *Bitset) Words() []uint64 { return b.words }

// FromWords wraps an existing word slice as a bitset of capacity n WITHOUT
// copying: the bitset aliases words. It is the zero-allocation bridge from
// flat coverage arrays (e.g. a TupleBlock's BA row) to the bulk operations
// of this package. words must hold at least (n+63)/64 entries.
func FromWords(n int, words []uint64) *Bitset {
	need := (n + wordBits - 1) / wordBits
	if len(words) < need {
		panic(fmt.Sprintf("bitset: FromWords needs %d words for %d bits, got %d", need, n, len(words)))
	}
	return &Bitset{words: words, n: n}
}

// Equal reports whether the two bitsets have the same capacity and contents.
func (b *Bitset) Equal(o *Bitset) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of b.
func (b *Bitset) Clone() *Bitset {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitset{words: w, n: b.n}
}

// Key returns the bit contents as a string usable as a map key. Two bitsets
// with equal contents and capacity produce equal keys. Hot paths that look
// keys up repeatedly should use AppendKey with a reused scratch buffer
// instead: map lookups via string(buf) do not allocate.
func (b *Bitset) Key() string {
	//sirum:allow zerocopykey deliberate copy: cold convenience accessor; hot loops use AppendKey + m[string(buf)]
	return string(b.AppendKey(make([]byte, 0, len(b.words)*8)))
}

// AppendKey appends the map-key encoding of b (8 little-endian bytes per
// word, identical to Key) to dst and returns the extended slice. With a
// reused scratch buffer the call itself never allocates, and looking the
// result up as m[string(buf)] is allocation-free too.
func (b *Bitset) AppendKey(dst []byte) []byte {
	for _, w := range b.words {
		dst = append(dst,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return dst
}

// Indices returns the positions of the set bits in increasing order. The
// output is sized by the capacity bound in one pass rather than by an extra
// popcount pass over the words.
func (b *Bitset) Indices() []int {
	return b.AppendIndices(make([]int, 0, b.n))
}

// AppendIndices appends the positions of the set bits in increasing order to
// dst and returns the extended slice. With a reused scratch buffer of
// sufficient capacity the call never allocates.
func (b *Bitset) AppendIndices(dst []int) []int {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			dst = append(dst, wi*wordBits+tz)
			w &= w - 1
		}
	}
	return dst
}

// ForEachSet calls f for each set bit in increasing order. It walks words
// with TrailingZeros instead of testing every bit through the checked Get
// path, so sparse iteration costs one call per set bit, not per capacity bit.
func (b *Bitset) ForEachSet(f func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			f(wi*wordBits + tz)
			w &= w - 1
		}
	}
}

// String renders the bitset most-significant-bit last, e.g. "1100" for bits
// {0,1} of a 4-bit set, matching the BA notation of the thesis (bit 1 is the
// first rule).
func (b *Bitset) String() string {
	var sb strings.Builder
	sb.Grow(b.n)
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Word64 is a convenience fast path: it returns the first word of the bitset.
// Valid only when Len() <= 64.
func (b *Bitset) Word64() uint64 {
	if b.n > wordBits {
		panic("bitset: Word64 on bitset wider than 64 bits")
	}
	if len(b.words) == 0 {
		return 0
	}
	return b.words[0]
}
