// Package bitset provides a compact, fixed-capacity bit array used to record
// which rules cover a tuple (the "BA" arrays of Algorithm 3 in the SIRUM
// thesis). Rule lists are small (the thesis assumes at most ~50 rules, so a
// single machine word usually suffices) but the type supports arbitrary
// widths.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Bitset is a fixed-capacity array of bits. The zero value is an empty bitset
// with capacity zero; use New to allocate capacity. Bitsets are not safe for
// concurrent mutation.
type Bitset struct {
	words []uint64
	n     int // capacity in bits
}

// New returns a bitset with capacity for n bits, all zero.
func New(n int) *Bitset {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative size %d", n))
	}
	return &Bitset{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices returns a bitset of capacity n with the given bits set.
func FromIndices(n int, idx ...int) *Bitset {
	b := New(n)
	for _, i := range idx {
		b.Set(i)
	}
	return b
}

// Len returns the capacity in bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i to one.
func (b *Bitset) Set(i int) {
	b.check(i)
	b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear sets bit i to zero.
func (b *Bitset) Clear(i int) {
	b.check(i)
	b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Get reports whether bit i is set.
func (b *Bitset) Get(i int) bool {
	b.check(i)
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

func (b *Bitset) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, b.n))
	}
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (b *Bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Intersects reports whether b and o share at least one set bit. It
// corresponds to the "BA & r.BA != 0" test of Algorithm 3.
func (b *Bitset) Intersects(o *Bitset) bool {
	n := min(len(b.words), len(o.words))
	for i := 0; i < n; i++ {
		if b.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether the two bitsets have the same capacity and contents.
func (b *Bitset) Equal(o *Bitset) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of b.
func (b *Bitset) Clone() *Bitset {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitset{words: w, n: b.n}
}

// Key returns the bit contents as a string usable as a map key. Two bitsets
// with equal contents and capacity produce equal keys.
func (b *Bitset) Key() string {
	var sb strings.Builder
	sb.Grow(len(b.words) * 8)
	for _, w := range b.words {
		for s := 0; s < 64; s += 8 {
			sb.WriteByte(byte(w >> uint(s)))
		}
	}
	return sb.String()
}

// Indices returns the positions of the set bits in increasing order.
func (b *Bitset) Indices() []int {
	out := make([]int, 0, b.Count())
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+tz)
			w &= w - 1
		}
	}
	return out
}

// String renders the bitset most-significant-bit last, e.g. "1100" for bits
// {0,1} of a 4-bit set, matching the BA notation of the thesis (bit 1 is the
// first rule).
func (b *Bitset) String() string {
	var sb strings.Builder
	sb.Grow(b.n)
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Word64 is a convenience fast path: it returns the first word of the bitset.
// Valid only when Len() <= 64.
func (b *Bitset) Word64() uint64 {
	if b.n > wordBits {
		panic("bitset: Word64 on bitset wider than 64 bits")
	}
	if len(b.words) == 0 {
		return 0
	}
	return b.words[0]
}
