package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	b := New(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d, want 130", b.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Errorf("bit %d set in fresh bitset", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	if got := b.Count(); got != 8 {
		t.Errorf("Count = %d, want 8", got)
	}
	b.Clear(64)
	if b.Get(64) {
		t.Error("bit 64 still set after Clear")
	}
	if got := b.Count(); got != 7 {
		t.Errorf("Count = %d, want 7", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	for _, i := range []int{-1, 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%d) did not panic", i)
				}
			}()
			New(10).Set(i)
		}()
	}
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAny(t *testing.T) {
	b := New(70)
	if b.Any() {
		t.Error("empty bitset reports Any")
	}
	b.Set(69)
	if !b.Any() {
		t.Error("bitset with bit 69 set reports !Any")
	}
}

func TestIntersects(t *testing.T) {
	a := FromIndices(100, 3, 64, 99)
	b := FromIndices(100, 64)
	c := FromIndices(100, 4, 65)
	if !a.Intersects(b) {
		t.Error("a and b should intersect at 64")
	}
	if a.Intersects(c) {
		t.Error("a and c should not intersect")
	}
	if !b.Intersects(a) {
		t.Error("Intersects not symmetric")
	}
	empty := New(100)
	if a.Intersects(empty) || empty.Intersects(a) {
		t.Error("intersection with empty set")
	}
}

func TestEqualCloneKey(t *testing.T) {
	a := FromIndices(90, 1, 2, 88)
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	if a.Key() != b.Key() {
		t.Error("clone key differs")
	}
	b.Set(50)
	if a.Equal(b) {
		t.Error("mutated clone still equal")
	}
	if a.Key() == b.Key() {
		t.Error("mutated clone has same key")
	}
	if a.Get(50) {
		t.Error("mutating clone affected original")
	}
	short := FromIndices(4, 1, 2)
	long := FromIndices(90, 1, 2)
	if short.Equal(long) {
		t.Error("different capacities reported equal")
	}
}

func TestIndices(t *testing.T) {
	want := []int{0, 5, 63, 64, 120}
	b := FromIndices(128, want...)
	got := b.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
}

func TestString(t *testing.T) {
	b := FromIndices(4, 0, 1)
	if got := b.String(); got != "1100" {
		t.Errorf("String = %q, want %q", got, "1100")
	}
}

func TestWord64(t *testing.T) {
	b := FromIndices(10, 0, 3)
	if got := b.Word64(); got != 0b1001 {
		t.Errorf("Word64 = %b, want 1001", got)
	}
	if New(0).Word64() != 0 {
		t.Error("empty bitset Word64 != 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("Word64 on wide bitset did not panic")
		}
	}()
	New(65).Word64()
}

// refSet is a map-based reference implementation used by property tests.
type refSet map[int]bool

func randomPair(r *rand.Rand, n int) (*Bitset, refSet) {
	b := New(n)
	ref := refSet{}
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			b.Set(i)
			ref[i] = true
		}
	}
	return b, ref
}

func TestQuickAgainstReference(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%150 + 1
		r := rand.New(rand.NewSource(seed))
		b, ref := randomPair(r, n)
		if b.Count() != len(ref) {
			return false
		}
		for i := 0; i < n; i++ {
			if b.Get(i) != ref[i] {
				return false
			}
		}
		// Indices must round-trip.
		rt := New(n)
		for _, i := range b.Indices() {
			rt.Set(i)
		}
		return rt.Equal(b) && rt.Key() == b.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectsMatchesReference(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%100 + 1
		r := rand.New(rand.NewSource(seed))
		a, ra := randomPair(r, n)
		b, rb := randomPair(r, n)
		want := false
		for i := range ra {
			if rb[i] {
				want = true
			}
		}
		return a.Intersects(b) == want && b.Intersects(a) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestForEachSetAndAppendIndices(t *testing.T) {
	want := []int{0, 5, 63, 64, 120}
	b := FromIndices(128, want...)
	var got []int
	b.ForEachSet(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEachSet visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEachSet visited %v, want %v", got, want)
		}
	}
	scratch := make([]int, 0, 128)
	app := b.AppendIndices(scratch)
	idx := b.Indices()
	if len(app) != len(idx) {
		t.Fatalf("AppendIndices = %v, Indices = %v", app, idx)
	}
	for i := range idx {
		if app[i] != idx[i] {
			t.Fatalf("AppendIndices = %v, Indices = %v", app, idx)
		}
	}
}

func TestAndAnyMatchesIntersects(t *testing.T) {
	a := FromIndices(100, 3, 64, 99)
	b := FromIndices(100, 64)
	c := FromIndices(100, 4, 65)
	if !a.AndAny(b) || a.AndAny(c) || !b.AndAny(a) {
		t.Error("AndAny disagrees with Intersects semantics")
	}
}

func TestUnionInto(t *testing.T) {
	src := FromIndices(70, 1, 65)
	dst := FromIndices(70, 2)
	src.UnionInto(dst)
	for _, i := range []int{1, 2, 65} {
		if !dst.Get(i) {
			t.Errorf("bit %d missing after UnionInto", i)
		}
	}
	if dst.Count() != 3 {
		t.Errorf("Count = %d after UnionInto, want 3", dst.Count())
	}
	if !src.Get(1) || src.Get(2) {
		t.Error("UnionInto mutated its source")
	}
	// A narrow source unions into a wider target.
	narrow := FromIndices(4, 0)
	wide := New(130)
	narrow.UnionInto(wide)
	if !wide.Get(0) || wide.Count() != 1 {
		t.Error("narrow-into-wide union wrong")
	}
	// A wide source with high bits set cannot fit a narrow target.
	defer func() {
		if recover() == nil {
			t.Error("UnionInto with unrepresentable high bits did not panic")
		}
	}()
	FromIndices(130, 129).UnionInto(New(4))
}

func TestWordsAndFromWords(t *testing.T) {
	b := FromIndices(128, 1, 64)
	w := b.Words()
	if len(w) != 2 || w[0] != 1<<1 || w[1] != 1 {
		t.Fatalf("Words = %v", w)
	}
	alias := FromWords(128, w)
	if !alias.Equal(b) {
		t.Error("FromWords view not equal to source")
	}
	alias.Set(5)
	if !b.Get(5) {
		t.Error("FromWords does not alias its words")
	}
	defer func() {
		if recover() == nil {
			t.Error("FromWords with too few words did not panic")
		}
	}()
	FromWords(65, w[:1])
}

func TestAppendKeyMatchesKey(t *testing.T) {
	b := FromIndices(90, 1, 2, 88)
	if got := string(b.AppendKey(nil)); got != b.Key() {
		t.Errorf("AppendKey = %q, Key = %q", got, b.Key())
	}
	// Appends, never overwrites.
	buf := []byte("x")
	if got := string(b.AppendKey(buf)); got != "x"+b.Key() {
		t.Error("AppendKey clobbered its prefix")
	}
}

// TestBulkOpsDoNotAllocate pins the zero-allocation contract of the hot
// bulk operations: with reused scratch buffers, none of them may allocate.
func TestBulkOpsDoNotAllocate(t *testing.T) {
	a := FromIndices(128, 0, 5, 63, 64, 120)
	b := FromIndices(128, 5, 70)
	keyBuf := make([]byte, 0, 64)
	idxBuf := make([]int, 0, 128)
	m := map[string]int{string(a.AppendKey(nil)): 1}
	var sink int
	cases := map[string]func(){
		"AndAny":        func() { _ = a.AndAny(b) },
		"UnionInto":     func() { b.UnionInto(a) },
		"ForEachSet":    func() { a.ForEachSet(func(i int) { sink += i }) },
		"AppendIndices": func() { idxBuf = a.AppendIndices(idxBuf[:0]) },
		"AppendKey+map": func() {
			keyBuf = a.AppendKey(keyBuf[:0])
			sink += m[string(keyBuf)]
		},
		"Words": func() { _ = a.Words() },
	}
	for name, f := range cases {
		if got := testing.AllocsPerRun(100, f); got != 0 {
			t.Errorf("%s allocates %.1f per run, want 0", name, got)
		}
	}
	_ = sink
}

func BenchmarkIntersects64(b *testing.B) {
	x := FromIndices(64, 0, 13, 63)
	y := FromIndices(64, 13)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !x.Intersects(y) {
			b.Fatal("expected intersection")
		}
	}
}
