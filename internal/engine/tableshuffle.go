package engine

// Table is the minimal contract ShuffleTables redistributes over: a flat
// uint64-keyed aggregate table (the cube's PackedTable). The engine stays
// representation-agnostic — callers supply the concrete destination tables.
type Table[V any] interface {
	// Len returns the number of live entries.
	Len() int
	// Reset clears the table, keeping its backing capacity.
	Reset()
	// ForEach visits every (key, value) entry.
	ForEach(f func(k uint64, v V))
	// Add merges v into the entry for k.
	Add(k uint64, v V)
}

// ShuffleTables is the table-aware ShuffleByKey: it redistributes the entries
// of per-partition tables so every key lives in exactly one destination
// table, merging on collision via the table's own Add. dst supplies one
// pre-borrowed table per output partition; each is Reset inside its exchange
// task, filled, and returned wrapped as the output collection.
//
// Unlike the map shuffle there is no intermediate bucket materialization at
// all: reduce task p scans every input table and keeps the keys that hash to
// p — a branch per entry over flat arrays instead of a record copy, so the
// exchange allocates nothing. The partition hash is the same mix64 the map
// path uses for uint64 keys (tables and maps co-partition identically); the
// tables' own probe hash must stay independent of it, or one partition's keys
// would cluster into a few probe chains.
//
// recordBytes is the serialized size of one (key, value) slot for backends
// that price byte volume; every input entry is charged once, as on the map
// path.
func ShuffleTables[T Table[V], V any](b Backend, in *PColl[T], name string, dst []T, recordBytes int) *PColl[T] {
	outParts := uint64(len(dst))
	var records int64
	for _, t := range in.Parts() {
		records += int64(t.Len())
	}
	srcs := in.Parts()
	b.RunStage(name+"/exchange", len(dst), func(p int) {
		dt := dst[p]
		dt.Reset()
		want := uint64(p)
		keep := func(k uint64, v V) {
			if mix64(k)%outParts == want {
				dt.Add(k, v)
			}
		}
		for _, src := range srcs {
			src.ForEach(keep)
		}
	})
	var bytes int64
	if b.accountsBytes() {
		bytes = records * int64(recordBytes)
	}
	b.ChargeShuffle(bytes, records)
	return NewPColl(dst)
}
