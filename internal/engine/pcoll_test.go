package engine

import (
	"testing"

	"sirum/internal/metrics"
)

// TestSplitSliceEdgeCases pins the boundary behaviour row sets rely on when
// entering the engine.
func TestSplitSliceEdgeCases(t *testing.T) {
	// Empty input always yields exactly one (nil) partition.
	for _, n := range []int{-3, 0, 1, 5} {
		got := SplitSlice([]int{}, n)
		if len(got) != 1 || len(got[0]) != 0 {
			t.Errorf("SplitSlice(empty, %d) = %v", n, got)
		}
	}
	// n <= 0 clamps to one partition holding everything.
	for _, n := range []int{0, -1} {
		got := SplitSlice([]int{1, 2, 3}, n)
		if len(got) != 1 || len(got[0]) != 3 {
			t.Errorf("SplitSlice(3 rows, %d) = %v", n, got)
		}
	}
	// n > len caps at one row per partition.
	got := SplitSlice([]int{1, 2, 3}, 10)
	if len(got) != 3 {
		t.Errorf("SplitSlice(3 rows, 10) has %d parts", len(got))
	}
	// Chunks are contiguous, ordered and near-even.
	data := make([]int, 17)
	for i := range data {
		data[i] = i
	}
	parts := SplitSlice(data, 4)
	var flat []int
	for _, p := range parts {
		if len(p) == 0 {
			t.Error("empty chunk in non-empty split")
		}
		flat = append(flat, p...)
	}
	if len(flat) != 17 {
		t.Fatalf("split lost rows: %v", parts)
	}
	for i, v := range flat {
		if v != i {
			t.Fatalf("chunks not contiguous in order: %v", parts)
		}
	}
}

// TestShuffleByKeyMergeCorrectness shuffles overlapping keys through a
// many-to-few exchange and checks full merge plus key disjointness.
func TestShuffleByKeyMergeCorrectness(t *testing.T) {
	c := NewSimBackend(testConfig())
	defer c.Close()
	in := make([]map[string]int, 6)
	want := map[string]int{}
	for i := range in {
		in[i] = map[string]int{}
		for j := 0; j < 40; j++ {
			k := string(rune('a' + (i+j)%13))
			in[i][k] += j
			want[k] += j
		}
	}
	out := ShuffleByKey(c, NewPColl(in), "shuffle", 3, func(a, b int) int { return a + b },
		func(k string, _ int) int { return len(k) + 8 })
	if out.NumParts() != 3 {
		t.Fatalf("out parts = %d", out.NumParts())
	}
	got := map[string]int{}
	for _, p := range out.Parts() {
		for k, v := range p {
			if _, dup := got[k]; dup {
				t.Errorf("key %q lives in multiple output partitions", k)
			}
			got[k] = v
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %q = %d, want %d", k, got[k], v)
		}
	}
}

// TestCollectMapMergesDuplicatesAndCharges verifies duplicate keys across
// partitions are merged, and that the gather is now recorded as a named
// stage with its transfer charged to the simulated clock.
func TestCollectMapMergesDuplicatesAndCharges(t *testing.T) {
	c := NewSimBackend(Config{Executors: 2, NetBandwidth: 1 << 10})
	defer c.Close()
	stagesBefore := c.Reg().Counter(metrics.CtrStages)
	parts := []map[string]int{{"x": 1, "y": 2}, {"x": 10}, {"x": 100, "z": 7}}
	got := CollectMap(c, NewPColl(parts), "gather", func(a, b int) int { return a + b },
		func(k string, _ int) int { return 1 << 9 })
	if got["x"] != 111 || got["y"] != 2 || got["z"] != 7 || len(got) != 3 {
		t.Errorf("collect = %v", got)
	}
	if c.Reg().Counter(metrics.CtrStages) != stagesBefore+1 {
		t.Errorf("gather not recorded as a stage (stages = %d)", c.Reg().Counter(metrics.CtrStages))
	}
	// 4 records x 512 bytes over 1 KiB/s: the driver transfer must show up
	// on the simulated clock.
	if c.SimTime() <= 0 {
		t.Error("gather transfer not charged to the simulated clock")
	}
}

// TestHashKeyIntWidthsAgree: the same non-negative logical key must route to
// the same partition regardless of which integer width produced it.
func TestHashKeyIntWidthsAgree(t *testing.T) {
	for _, v := range []int{0, 1, 7, 42, 1 << 20} {
		h := hashKey(v)
		if hashKey(int32(v)) != h {
			t.Errorf("hashKey(int32(%d)) != hashKey(int(%d))", v, v)
		}
		if hashKey(int64(v)) != h {
			t.Errorf("hashKey(int64(%d)) != hashKey(int(%d))", v, v)
		}
		if hashKey(uint64(v)) != h {
			t.Errorf("hashKey(uint64(%d)) != hashKey(int(%d))", v, v)
		}
	}
	// Distinct keys spread.
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[hashKey(i)] = true
	}
	if len(seen) < 990 {
		t.Errorf("integer hash collides heavily: %d distinct of 1000", len(seen))
	}
}
