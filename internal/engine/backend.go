package engine

import (
	"fmt"
	"os"
	"sync"
	"time"

	"sirum/internal/metrics"
)

// Backend is the execution substrate the SIRUM dataflow runs on. The
// algorithm layer (miner, cube, candgen, explore) is written against this
// interface only; two implementations are provided:
//
//   - SimBackend reproduces the thesis' distributed deployment in-process:
//     bounded real parallelism plus a simulated cluster clock charged by
//     list-scheduling task durations onto virtual executors and by cost
//     models for shuffle, broadcast and disk traffic. It is the substrate
//     for regenerating the paper's figures, which are reported in simulated
//     time.
//
//   - NativeBackend drops all simulation bookkeeping and runs the same
//     operators as fast as the host allows: work-stealing goroutine
//     scheduling, slice-bucket shuffles, and no virtual-clock charges. It is
//     the substrate for serving real workloads.
//
// Both backends execute identical task code, so a mining job produces the
// same rule list on either; only the performance accounting differs.
//
// The interface has unexported methods: implementations live in this
// package, which keeps the cache/spill integration internal.
type Backend interface {
	// Name identifies the backend ("sim", "native").
	Name() string
	// Config returns the effective (defaulted) configuration.
	Config() Config
	// Reg returns the metrics registry charges land in. On a concrete
	// backend this is the substrate-lifetime registry (scheduling, shuffle,
	// spill totals across all queries); on a QueryScope it is the private
	// per-query registry, which is where operator-level counters and phase
	// timings accumulate — query results snapshot that one.
	Reg() *metrics.Registry
	// RunStage executes n tasks (task(0) … task(n-1)) with real parallelism
	// and records one stage. Task panics are captured and re-raised on the
	// caller with stage context after all tasks finish.
	RunStage(name string, n int, task func(i int))
	// JobBoundary accounts for one job startup (per map-reduce round).
	JobBoundary()
	// ChargeShuffle accounts for moving the given volume across workers.
	ChargeShuffle(bytes, records int64)
	// Broadcast accounts for replicating bytes to every worker.
	Broadcast(bytes int64)
	// Repartition accounts for a full redistribution of a dataset.
	Repartition(bytes, records int64)
	// ChargeDiskRead accounts for loading a dataset from storage.
	ChargeDiskRead(bytes int64)
	// ChargeGather accounts for collecting bytes to the driver.
	ChargeGather(bytes int64)
	// SimTime returns the simulated cluster clock (always 0 on backends
	// that do not model one).
	SimTime() time.Duration
	// TotalMemory returns the backend-wide cache budget for cached blocks.
	TotalMemory() int64
	// Pool returns the backend's prepared-dataset pool: the cache that lets
	// one long-lived backend hold several prepared (loaded and partitioned)
	// datasets across queries, with LRU eviction.
	Pool() *DataPool
	// Close releases spill files and other resources; the backend is
	// unusable afterwards.
	Close() error

	// spillPath returns a file path for spilling the named block. Names must
	// be unique per logical block across all CachedData sharing the backend.
	spillPath(name string) (string, error)
	// chargeSpill / chargeSpillRead account for cache spill traffic.
	chargeSpill(bytes int64)
	chargeSpillRead(bytes int64)
	// accountsBytes reports whether operators should compute per-record
	// byte sizes for cost accounting (false on the native path, where the
	// sizing closures would be pure overhead).
	accountsBytes() bool
	// arena returns the backend's fork-column arena (see columnArena).
	arena() *columnArena
}

// Compile-time interface checks.
var (
	_ Backend = (*SimBackend)(nil)
	_ Backend = (*NativeBackend)(nil)
	_ Backend = (*QueryScope)(nil)
)

// spiller lazily creates a temp directory for disk-backed blocks; it is
// shared by both backends.
type spiller struct {
	once sync.Once
	dir  string
	err  error
}

// path returns a file path for the named block, creating the spill dir on
// first use.
func (s *spiller) path(name string) (string, error) {
	s.once.Do(func() {
		s.dir, s.err = os.MkdirTemp("", "sirum-spill-*")
	})
	if s.err != nil {
		return "", s.err
	}
	return fmt.Sprintf("%s/%s.gob", s.dir, name), nil
}

// cleanup removes the spill directory if one was created.
func (s *spiller) cleanup() error {
	if s.dir != "" {
		return os.RemoveAll(s.dir)
	}
	return nil
}
