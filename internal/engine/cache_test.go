package engine

import (
	"testing"

	"sirum/internal/metrics"
)

func makeBlocks(nBlocks, rowsPer, dims int) []*TupleBlock {
	blocks := make([]*TupleBlock, nBlocks)
	for b := range blocks {
		tb := &TupleBlock{Start: b * rowsPer}
		tb.Dims = make([][]int32, dims)
		for j := range tb.Dims {
			col := make([]int32, rowsPer)
			for i := range col {
				col[i] = int32(b*rowsPer + i + j)
			}
			tb.Dims[j] = col
		}
		tb.M = make([]float64, rowsPer)
		tb.Mhat = make([]float64, rowsPer)
		for i := range tb.M {
			tb.M[i] = float64(b*rowsPer + i)
			tb.Mhat[i] = 1
		}
		blocks[b] = tb
	}
	return blocks
}

func TestBlockBytes(t *testing.T) {
	b := makeBlocks(1, 100, 3)[0]
	if b.NumRows() != 100 {
		t.Errorf("rows = %d", b.NumRows())
	}
	if got := b.Bytes(); got != 100*3*4+100*16 {
		t.Errorf("Bytes = %d", got)
	}
	b.BA = make([]uint64, 100)
	if got := b.Bytes(); got != 100*3*4+100*16+100*8 {
		t.Errorf("Bytes with BA = %d", got)
	}
}

// TestBlockBytesNilMhat is the regression test for the canonical-block
// overcount: prepare-once blocks built by BlocksFromColumns with a nil
// estimate column used to be charged rows*16 for M+Mhat anyway, inflating
// the budget by rows*8 and triggering premature spills.
func TestBlockBytesNilMhat(t *testing.T) {
	dims := [][]int32{make([]int32, 100), make([]int32, 100), make([]int32, 100)}
	m := make([]float64, 100)
	canonical := BlocksFromColumns(dims, m, nil, 1)[0]
	if canonical.Mhat != nil {
		t.Fatal("canonical block unexpectedly has an estimate column")
	}
	if got, want := canonical.Bytes(), int64(100*3*4+100*8); got != want {
		t.Errorf("nil-Mhat Bytes = %d, want %d (no estimate column to charge)", got, want)
	}
	forked := BlocksFromColumns(dims, m, make([]float64, 100), 1)[0]
	if got, want := forked.Bytes(), int64(100*3*4+100*16); got != want {
		t.Errorf("Mhat Bytes = %d, want %d", got, want)
	}

	// A budget that fits the canonical blocks (but not the rows*16
	// overcount) must keep them all resident; under the overcount the same
	// budget spilled. TotalMemory applies a 0.6 storage fraction, so size
	// MemoryPerExecutor to land the budget between the two totals.
	budget := 2*canonical.Bytes() + 100 // < overcounted total of 2*(Bytes+rows*8)
	c := NewSimBackend(Config{Executors: 1, MemoryPerExecutor: int64(float64(budget)/0.6) + 1})
	defer c.Close()
	cd, err := CacheTuples(c, []*TupleBlock{{Start: 0, Dims: canonical.Dims, M: canonical.M}, {Start: 100, Dims: canonical.Dims, M: canonical.M}})
	if err != nil {
		t.Fatal(err)
	}
	if !cd.allResident {
		t.Error("canonical blocks spilled under a budget that fits them: Bytes still overcounts")
	}
}

func TestCacheAllResident(t *testing.T) {
	c := NewSimBackend(Config{Executors: 2, MemoryPerExecutor: 1 << 30})
	defer c.Close()
	blocks := makeBlocks(4, 50, 3)
	cd, err := CacheTuples(c, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if !cd.allResident {
		t.Error("small data should be fully resident")
	}
	for i := 0; i < 4; i++ {
		b, err := cd.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if b != blocks[i] {
			t.Error("resident path must return the original block")
		}
	}
	if c.Reg().Counter(metrics.CtrSpillBytes) != 0 {
		t.Error("resident cache spilled")
	}
	if cd.ResidentBytes() <= 0 {
		t.Error("resident bytes not tracked")
	}
}

func TestCacheSpillsAndReloads(t *testing.T) {
	blocks := makeBlocks(8, 100, 3)
	perBlock := blocks[0].Bytes()
	// Budget for ~3 blocks (budget = 60% of memory).
	c := NewSimBackend(Config{Executors: 1, MemoryPerExecutor: perBlock * 5})
	defer c.Close()
	cd, err := CacheTuples(c, blocks)
	if err != nil {
		t.Fatal(err)
	}
	if cd.allResident {
		t.Fatal("test requires memory pressure")
	}
	if c.Reg().Counter(metrics.CtrSpillBytes) == 0 {
		t.Error("no spills under memory pressure")
	}
	// Every block must still be readable with correct contents.
	for i := 0; i < 8; i++ {
		b, err := cd.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if b.Start != i*100 || b.NumRows() != 100 {
			t.Fatalf("block %d corrupted: start=%d rows=%d", i, b.Start, b.NumRows())
		}
		if b.M[0] != float64(i*100) {
			t.Errorf("block %d M[0] = %v", i, b.M[0])
		}
		if b.Dims[2][1] != int32(i*100+1+2) {
			t.Errorf("block %d dims corrupted", i)
		}
	}
	if c.Reg().Counter(metrics.CtrSpillReads) == 0 {
		t.Error("no reloads recorded")
	}
	if cd.Residency.Max() > float64(c.TotalMemory())+float64(perBlock) {
		t.Errorf("residency %v exceeded budget %d by more than one block", cd.Residency.Max(), c.TotalMemory())
	}
}

// TestCacheWriteBackPreservesMutations is the dirty-block contract: changes
// to estimate columns survive eviction and reload.
func TestCacheWriteBackPreservesMutations(t *testing.T) {
	blocks := makeBlocks(6, 100, 2)
	perBlock := blocks[0].Bytes()
	c := NewSimBackend(Config{Executors: 1, MemoryPerExecutor: perBlock * 4})
	defer c.Close()
	cd, err := CacheTuples(c, blocks)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate every block's estimates.
	for i := 0; i < 6; i++ {
		b, err := cd.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		for r := range b.Mhat {
			b.Mhat[r] = float64(i) + 0.5
		}
		cd.MarkDirty(i)
	}
	// Cycle through all blocks twice to force evict/reload of each.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 6; i++ {
			b, err := cd.Get(i)
			if err != nil {
				t.Fatal(err)
			}
			if b.Mhat[7] != float64(i)+0.5 {
				t.Fatalf("block %d lost mutation: mhat=%v", i, b.Mhat[7])
			}
		}
	}
}

func TestCacheScan(t *testing.T) {
	c := NewSimBackend(Config{Executors: 2, MemoryPerExecutor: 1 << 30, Partitions: 4})
	defer c.Close()
	blocks := makeBlocks(4, 25, 2)
	cd, err := CacheTuples(c, blocks)
	if err != nil {
		t.Fatal(err)
	}
	sums := make([]float64, 4)
	if err := cd.Scan("sum", false, func(i int, b *TupleBlock) {
		for _, v := range b.M {
			sums[i] += v
		}
	}); err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, s := range sums {
		total += s
	}
	if total != 99*100/2 {
		t.Errorf("scan total = %v", total)
	}
	cd.SampleResidency()
	if len(cd.Residency.Points()) == 0 {
		t.Error("no residency points recorded")
	}
}

func TestBlocksFromColumns(t *testing.T) {
	dims := [][]int32{{1, 2, 3, 4, 5}, {10, 20, 30, 40, 50}}
	m := []float64{1, 2, 3, 4, 5}
	mhat := []float64{1, 1, 1, 1, 1}
	blocks := BlocksFromColumns(dims, m, mhat, 2)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	if blocks[0].Start != 0 || blocks[1].Start != 3 {
		t.Errorf("starts: %d %d", blocks[0].Start, blocks[1].Start)
	}
	if blocks[1].Dims[1][0] != 40 {
		t.Errorf("block 1 dims: %v", blocks[1].Dims)
	}
	// Blocks alias the input columns until spilled.
	blocks[0].Mhat[0] = 9
	if mhat[0] != 9 {
		t.Error("blocks should alias input before any spill")
	}
	empty := BlocksFromColumns([][]int32{{}}, nil, nil, 3)
	if len(empty) != 1 || empty[0].NumRows() != 0 {
		t.Errorf("empty blocks = %v", empty)
	}
	one := BlocksFromColumns(dims, m, mhat, 100)
	if len(one) != 5 {
		t.Errorf("oversplit blocks = %d", len(one))
	}
}

// TestAcquirePreventsEviction pins a block and verifies concurrent pressure
// cannot evict it mid-mutation.
func TestAcquirePreventsEviction(t *testing.T) {
	blocks := makeBlocks(6, 100, 2)
	perBlock := blocks[0].Bytes()
	c := NewSimBackend(Config{Executors: 1, MemoryPerExecutor: perBlock * 4})
	defer c.Close()
	cd, err := CacheTuples(c, blocks)
	if err != nil {
		t.Fatal(err)
	}
	b0, err := cd.Acquire(0)
	if err != nil {
		t.Fatal(err)
	}
	b0.Mhat[0] = 42
	// Touch every other block to create maximum eviction pressure.
	for round := 0; round < 3; round++ {
		for i := 1; i < 6; i++ {
			if _, err := cd.Get(i); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The pinned block must still be the same object, mutation intact.
	again, err := cd.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if again != b0 || again.Mhat[0] != 42 {
		t.Error("pinned block was evicted or copied")
	}
	cd.MarkDirty(0)
	cd.Release(0)
	// After release it may be evicted and must round-trip the mutation.
	for round := 0; round < 3; round++ {
		for i := 1; i < 6; i++ {
			if _, err := cd.Get(i); err != nil {
				t.Fatal(err)
			}
		}
	}
	final, err := cd.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if final.Mhat[0] != 42 {
		t.Error("mutation lost after release/evict/reload")
	}
}
