package engine

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

func TestFillFloat64(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		s := make([]float64, n)
		FillFloat64(s, 1)
		for i, v := range s {
			t.Helper()
			if v != 1 {
				t.Fatalf("n=%d: s[%d] = %v, want 1", n, i, v)
			}
		}
	}
}

func TestColumnArenaBestFit(t *testing.T) {
	var a columnArena
	big := a.get(100)
	small := a.get(10)
	a.put([][]float64{big, small})
	// A request for 5 must reuse the smaller free column, keeping the big
	// one available.
	got := a.get(5)
	if len(got) != 5 {
		t.Fatalf("len = %d, want 5", len(got))
	}
	if cap(got) != cap(small) {
		t.Errorf("got cap %d, want the best-fit column (cap %d)", cap(got), cap(small))
	}
	// Nothing free fits 200: a fresh column is allocated.
	if fresh := a.get(200); cap(fresh) < 200 {
		t.Errorf("fresh column cap %d < 200", cap(fresh))
	}
}

// TestArenaRoundTripDoesNotAllocate pins the fork-reuse core: once the arena
// is warm, checking a column out, initialising it, and returning it is
// allocation-free steady state.
func TestArenaRoundTripDoesNotAllocate(t *testing.T) {
	var a columnArena
	a.put([][]float64{make([]float64, 512)})
	cols := make([][]float64, 1)
	got := testing.AllocsPerRun(100, func() {
		cols[0] = a.get(512)
		FillFloat64(cols[0], 1)
		a.put(cols)
	})
	if got != 0 {
		t.Errorf("warm arena round trip allocates %v objects/op, want 0", got)
	}
}

// TestForkColumnReuse pins the arena round trip: after a scoped query
// finishes, the next scoped fork on the same backend reuses the very same
// backing arrays instead of allocating fresh estimate columns.
func TestForkColumnReuse(t *testing.T) {
	b := NewSimBackend(Config{Executors: 1, MemoryPerExecutor: 1 << 30})
	defer b.Close()
	cd, err := CacheTuples(b, makeBlocks(4, 50, 2))
	if err != nil {
		t.Fatal(err)
	}

	forkPtrs := func() map[*float64]bool {
		qc := NewQueryScope(b)
		f, err := cd.Fork(qc)
		if err != nil {
			t.Fatal(err)
		}
		ptrs := map[*float64]bool{}
		for i := 0; i < f.NumBlocks(); i++ {
			blk, err := f.Get(i)
			if err != nil {
				t.Fatal(err)
			}
			for r, v := range blk.Mhat {
				if v != 1 {
					t.Fatalf("block %d row %d: Mhat = %v, want 1", i, r, v)
				}
			}
			ptrs[&blk.Mhat[0]] = true
		}
		f.Drop()
		qc.Finish()
		return ptrs
	}

	first := forkPtrs()
	second := forkPtrs()
	for p := range second {
		if !first[p] {
			t.Fatalf("second scoped fork allocated a fresh column instead of reusing the arena")
		}
	}
}

// TestForkReuseBytesBounded pins the allocation win: steady-state scoped
// forks must not re-allocate their estimate columns, so bytes per fork cycle
// stay far below the column payload.
func TestForkReuseBytesBounded(t *testing.T) {
	const blocks, rows = 4, 10000
	b := NewNativeBackend(Config{MemoryPerExecutor: 1 << 30})
	defer b.Close()
	cd, err := CacheTuples(b, makeBlocks(blocks, rows, 2))
	if err != nil {
		t.Fatal(err)
	}
	cycle := func() {
		qc := NewQueryScope(b)
		f, err := cd.Fork(qc)
		if err != nil {
			t.Fatal(err)
		}
		f.Drop()
		qc.Finish()
	}
	cycle() // warm the arena

	const iters = 50
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < iters; i++ {
		cycle()
	}
	runtime.ReadMemStats(&after)
	perCycle := int64(after.TotalAlloc-before.TotalAlloc) / iters
	columnBytes := int64(blocks * rows * 8)
	t.Logf("fork cycle: %d B allocated (column payload %d B)", perCycle, columnBytes)
	// Without reuse each cycle allocates the full column payload; with it,
	// only scope/cache scaffolding remains. Half the payload is a generous
	// regression line.
	if perCycle > columnBytes/2 {
		t.Errorf("fork cycle allocates %d B, want < %d B (column payload %d B not reused?)",
			perCycle, columnBytes/2, columnBytes)
	}
}

// TestConcurrentForkColumnsDisjoint runs many scoped forks in parallel and
// has each query write a distinct value through its own columns, verifying
// no column is handed to two in-flight queries (the race detector would also
// flag sharing).
func TestConcurrentForkColumnsDisjoint(t *testing.T) {
	b := NewNativeBackend(Config{MemoryPerExecutor: 1 << 30})
	defer b.Close()
	cd, err := CacheTuples(b, makeBlocks(3, 200, 2))
	if err != nil {
		t.Fatal(err)
	}

	const workers, rounds = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				qc := NewQueryScope(b)
				f, err := cd.Fork(qc)
				if err != nil {
					errs <- err
					qc.Finish()
					return
				}
				stamp := float64(w*rounds + round + 2)
				for i := 0; i < f.NumBlocks(); i++ {
					blk, err := f.Get(i)
					if err != nil {
						errs <- err
						break
					}
					FillFloat64(blk.Mhat, stamp)
				}
				for i := 0; i < f.NumBlocks(); i++ {
					blk, err := f.Get(i)
					if err != nil {
						errs <- err
						break
					}
					for r, v := range blk.Mhat {
						if v != stamp {
							errs <- fmt.Errorf("pooled column shared across concurrent queries (worker %d round %d block %d row %d: %v != %v)", w, round, i, r, v, stamp)
							break
						}
					}
				}
				f.Drop()
				qc.Finish()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
