package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sirum/internal/metrics"
)

// NativeBackend runs the SIRUM dataflow as fast as the host hardware allows:
// no simulated clock, no per-task duration measurement, no cost models. A
// stage's tasks are executed by a fixed pool of workers with work stealing,
// so skewed partitions cannot idle cores the way static assignment would.
// Byte-volume counters that exist purely to price the simulation are not
// computed; cheap record counters are kept so observability survives the
// switch.
type NativeBackend struct {
	conf    Config
	reg     *metrics.Registry
	pool    *DataPool
	workers int
	spill   spiller
	cols    columnArena
}

// NewNativeBackend builds a native multicore backend from conf (zero fields
// get defaults). Only Partitions, MemoryPerExecutor, Executors and
// RealParallelism are consulted; the simulation knobs are ignored. When no
// partition count is given, the backend partitions for the host rather than
// for a virtual cluster: enough chunks that work stealing can balance skew,
// few enough that per-partition overheads stay negligible.
func NewNativeBackend(conf Config) *NativeBackend {
	if conf.Partitions <= 0 {
		rp := conf.RealParallelism
		if rp <= 0 {
			rp = runtime.NumCPU()
		}
		conf.Partitions = 4 * rp
	}
	conf = conf.withDefaults()
	return &NativeBackend{
		conf:    conf,
		reg:     metrics.NewRegistry(),
		pool:    newDataPool(conf.PoolLimit),
		workers: conf.RealParallelism,
	}
}

// Name identifies the backend.
func (b *NativeBackend) Name() string { return "native" }

// Config returns the effective (defaulted) configuration.
func (b *NativeBackend) Config() Config { return b.conf }

// Reg returns the metrics registry.
func (b *NativeBackend) Reg() *metrics.Registry { return b.reg }

// Pool returns the prepared-dataset pool.
func (b *NativeBackend) Pool() *DataPool { return b.pool }

// Close removes any spill files. The backend is unusable afterwards.
func (b *NativeBackend) Close() error { return b.spill.cleanup() }

// SimTime is always zero: the native backend keeps no virtual clock.
func (b *NativeBackend) SimTime() time.Duration { return 0 }

// TotalMemory returns the cache budget, the same 60% storage fraction the
// simulator uses so memory-bounded configurations behave identically.
func (b *NativeBackend) TotalMemory() int64 {
	return int64(float64(b.conf.MemoryPerExecutor) * 0.6 * float64(b.conf.Executors))
}

// JobBoundary is a no-op: there is no job startup to model.
func (b *NativeBackend) JobBoundary() {}

// ChargeShuffle records the record counter only; bytes are usually not
// computed on the native path (see accountsBytes).
func (b *NativeBackend) ChargeShuffle(bytes, records int64) {
	if bytes > 0 {
		b.reg.Add(metrics.CtrShuffleBytes, bytes)
	}
	b.reg.Add(metrics.CtrShuffleRecords, records)
}

// Broadcast records the counter; in-process "broadcast" is a pointer share.
func (b *NativeBackend) Broadcast(bytes int64) {
	b.reg.Add(metrics.CtrBroadcastBytes, bytes)
}

// Repartition is free in-process: partitions already live in one heap.
func (b *NativeBackend) Repartition(bytes, records int64) {}

// ChargeDiskRead is a no-op: the data is already in memory.
func (b *NativeBackend) ChargeDiskRead(bytes int64) {}

// ChargeGather is a no-op: the driver and the workers share an address space.
func (b *NativeBackend) ChargeGather(bytes int64) {}

// spillPath lazily creates the spill directory and returns a file path for
// the named block (the cache can still spill under an explicit memory
// budget).
func (b *NativeBackend) spillPath(name string) (string, error) { return b.spill.path(name) }

func (b *NativeBackend) chargeSpill(bytes int64) {
	b.reg.Add(metrics.CtrSpillBytes, bytes)
}

func (b *NativeBackend) chargeSpillRead(bytes int64) {
	b.reg.Add(metrics.CtrSpillReads, bytes)
}

// accountsBytes: per-record byte sizing is simulation-only overhead.
func (b *NativeBackend) accountsBytes() bool { return false }

func (b *NativeBackend) arena() *columnArena { return &b.cols }

// RunStage executes n tasks on the worker pool with work stealing. Task
// panics are captured and re-raised on the caller with stage context after
// all tasks finish, matching SimBackend.
func (b *NativeBackend) RunStage(name string, n int, task func(i int)) {
	if n <= 0 {
		return
	}
	b.reg.Add(metrics.CtrTasks, int64(n))
	b.reg.Add(metrics.CtrStages, 1)

	// runTask shields the scheduler from task panics, reporting the payload.
	runTask := func(i int) (p any) {
		defer func() {
			if r := recover(); r != nil {
				p = r
			}
		}()
		task(i)
		return nil
	}

	w := b.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		// Like the concurrent path, run every task before re-raising the
		// first panic, so side effects (e.g. MapParts output slots) are as
		// complete as on SimBackend.
		firstIdx, firstPanic := -1, any(nil)
		for i := 0; i < n; i++ {
			if p := runTask(i); p != nil && firstPanic == nil {
				firstIdx, firstPanic = i, p
			}
		}
		if firstPanic != nil {
			panic(fmt.Sprintf("engine: task %d of stage %q panicked: %v", firstIdx, name, firstPanic))
		}
		return
	}

	// Work-stealing range scheduler: each worker owns a half-open index
	// range packed into one atomic word ([next,end) as two uint32 halves).
	// Workers claim from their own range with a CAS increment; a worker
	// whose range drains steals the upper half of the fullest remaining
	// range. Ownership transfers atomically, so every index runs exactly
	// once.
	queues := make([]paddedQueue, w)
	per, rem := n/w, n%w
	start := 0
	for i := range queues {
		cnt := per
		if i < rem {
			cnt++
		}
		queues[i].v.Store(packRange(start, start+cnt))
		start += cnt
	}

	type taskPanic struct {
		idx int
		val any
	}
	panics := make([]*taskPanic, w)
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for {
				i, ok := claimTask(queues, wi)
				if !ok {
					return
				}
				if p := runTask(i); p != nil && panics[wi] == nil {
					panics[wi] = &taskPanic{idx: i, val: p}
				}
			}
		}(wi)
	}
	wg.Wait()
	first := (*taskPanic)(nil)
	for _, p := range panics {
		if p != nil && (first == nil || p.idx < first.idx) {
			first = p
		}
	}
	if first != nil {
		panic(fmt.Sprintf("engine: task %d of stage %q panicked: %v", first.idx, name, first.val))
	}
}

// paddedQueue keeps each worker's range word on its own cache line to avoid
// false sharing between the per-worker CAS loops.
type paddedQueue struct {
	v atomic.Uint64
	_ [56]byte
}

func packRange(next, end int) uint64 { return uint64(next)<<32 | uint64(uint32(end)) }

func unpackRange(q uint64) (next, end int) { return int(q >> 32), int(uint32(q)) }

// claimTask returns the next task index for worker self: first from its own
// range, then by stealing the upper half of the fullest other range. ok is
// false when no work is visible anywhere.
func claimTask(queues []paddedQueue, self int) (int, bool) {
	for {
		q := queues[self].v.Load()
		next, end := unpackRange(q)
		if next >= end {
			break
		}
		if queues[self].v.CompareAndSwap(q, packRange(next+1, end)) {
			return next, true
		}
	}
	for {
		victim, best := -1, 0
		var vq uint64
		for j := range queues {
			if j == self {
				continue
			}
			q := queues[j].v.Load()
			n, e := unpackRange(q)
			if e-n > best {
				best, victim, vq = e-n, j, q
			}
		}
		if victim < 0 {
			return 0, false
		}
		n, e := unpackRange(vq)
		mid := n + (e-n)/2 // victim keeps [n,mid), thief takes [mid,e)
		if queues[victim].v.CompareAndSwap(vq, packRange(n, mid)) {
			if mid+1 < e {
				queues[self].v.Store(packRange(mid+1, e))
			}
			return mid, true
		}
		// Lost the race for the victim's range; rescan.
	}
}
