package engine

import "sync"

// DefaultPoolLimit is the number of prepared datasets a backend retains
// before evicting the least recently used one.
const DefaultPoolLimit = 8

// DataPool is the backend-held cache of prepared datasets: CachedData that a
// prepare-once session has loaded and partitioned so that many queries can
// run against it. Entries are keyed by a caller-chosen id and evicted in LRU
// order once the pool exceeds its entry limit; an evicted entry's spill
// files are released as soon as no query holds a reference. A session whose
// entry was evicted simply re-prepares on its next query (the pool is a
// cache, not an owner of last resort).
//
// References are counted through *Ref handles bound to the entry they were
// taken on, never through the id: after a Remove + Put reuses an id, a stale
// handle still releases the entry it was issued for, not the replacement.
type DataPool struct {
	mu      sync.Mutex
	limit   int
	tick    int64
	entries map[string]*poolEntry
}

type poolEntry struct {
	cd       *CachedData
	lastUsed int64
	refs     int
	dead     bool // removed while referenced; dropped once refs reach zero
}

// Ref is a counted reference to one pool entry, returned by Put and Acquire.
// Release is idempotent and safe to call concurrently with any pool
// operation; it always targets the entry the handle was issued for, even if
// the entry's id has since been removed and reused.
type Ref struct {
	pool *DataPool
	e    *poolEntry
	once sync.Once
}

// Release drops this handle's reference. A dead (removed or evicted) entry
// is dropped for good when its last reference goes away.
func (r *Ref) Release() {
	if r == nil {
		return
	}
	r.once.Do(func() {
		r.pool.mu.Lock()
		if r.e.refs > 0 {
			r.e.refs--
		}
		drop := r.e.dead && r.e.refs == 0
		r.pool.mu.Unlock()
		if drop {
			r.e.cd.Drop()
		}
	})
}

// newDataPool returns an empty pool retaining up to limit entries.
func newDataPool(limit int) *DataPool {
	if limit <= 0 {
		limit = DefaultPoolLimit
	}
	return &DataPool{limit: limit, entries: make(map[string]*poolEntry)}
}

// SetLimit changes the retention limit and evicts down to it.
func (p *DataPool) SetLimit(n int) {
	if n <= 0 {
		n = 1
	}
	p.mu.Lock()
	p.limit = n
	victims := p.evictLocked()
	p.mu.Unlock()
	dropAll(victims)
}

// Limit returns the retention limit.
func (p *DataPool) Limit() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.limit
}

// Len returns the number of live entries.
func (p *DataPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// Put installs cd under id with one reference held by the caller (pair with
// the returned handle's Release). An existing live entry under the same id
// is kept and returned instead — concurrent re-preparations converge on one
// copy — so callers must use the returned CachedData, not necessarily the
// one they passed. Re-putting the CachedData already live under id is a
// no-op beyond taking a reference (the entry's spill files stay intact).
func (p *DataPool) Put(id string, cd *CachedData) (*CachedData, *Ref) {
	p.mu.Lock()
	if e, ok := p.entries[id]; ok {
		p.tick++
		e.lastUsed = p.tick
		e.refs++
		pooled := e.cd
		p.mu.Unlock()
		if pooled != cd {
			// The loser of a concurrent re-preparation race releases its
			// duplicate copy's spill files. Guard the identity case: dropping
			// cd when it *is* the pooled entry would kill the live entry.
			cd.Drop()
		}
		return pooled, &Ref{pool: p, e: e}
	}
	p.tick++
	e := &poolEntry{cd: cd, lastUsed: p.tick, refs: 1}
	p.entries[id] = e
	victims := p.evictLocked()
	p.mu.Unlock()
	dropAll(victims)
	return cd, &Ref{pool: p, e: e}
}

// Acquire returns the entry under id with a reference held (pair with the
// returned handle's Release), or false when the entry is absent or evicted.
func (p *DataPool) Acquire(id string) (*CachedData, *Ref, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[id]
	if !ok {
		return nil, nil, false
	}
	p.tick++
	e.lastUsed = p.tick
	e.refs++
	return e.cd, &Ref{pool: p, e: e}, true
}

// Remove deletes the entry under id; its spill files are released once no
// query references it. The id is immediately free for a new Put — handles on
// the removed entry keep working and cannot touch the replacement.
func (p *DataPool) Remove(id string) {
	p.mu.Lock()
	e, ok := p.entries[id]
	if ok {
		delete(p.entries, id)
		e.dead = true
	}
	drop := ok && e.refs == 0
	p.mu.Unlock()
	if drop {
		e.cd.Drop()
	}
}

// evictLocked removes LRU unreferenced entries until at most limit entries
// remain, returning the victims for the caller to Drop after unlocking —
// deleting spill files is filesystem I/O that must not stall every
// concurrent Acquire/Put/Release on the shared pool. Referenced entries are
// skipped (a query is mid-fork on them); they become eviction candidates
// again once released.
func (p *DataPool) evictLocked() []*poolEntry {
	var victims []*poolEntry
	for len(p.entries) > p.limit {
		var victim string
		var victimEntry *poolEntry
		for id, e := range p.entries {
			if e.refs > 0 {
				continue
			}
			if victimEntry == nil || e.lastUsed < victimEntry.lastUsed {
				victim, victimEntry = id, e
			}
		}
		if victimEntry == nil {
			break
		}
		delete(p.entries, victim)
		victimEntry.dead = true
		victims = append(victims, victimEntry)
	}
	return victims
}

func dropAll(victims []*poolEntry) {
	for _, e := range victims {
		e.cd.Drop()
	}
}
