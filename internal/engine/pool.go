package engine

import "sync"

// DefaultPoolLimit is the number of prepared datasets a backend retains
// before evicting the least recently used one.
const DefaultPoolLimit = 8

// DataPool is the backend-held cache of prepared datasets: CachedData that a
// prepare-once session has loaded and partitioned so that many queries can
// run against it. Entries are keyed by a caller-chosen id and evicted in LRU
// order once the pool exceeds its entry limit; an evicted entry's spill
// files are released as soon as no query holds a reference. A session whose
// entry was evicted simply re-prepares on its next query (the pool is a
// cache, not an owner of last resort).
type DataPool struct {
	mu      sync.Mutex
	limit   int
	tick    int64
	entries map[string]*poolEntry
}

type poolEntry struct {
	cd       *CachedData
	lastUsed int64
	refs     int
	dead     bool // removed or evicted; dropped once refs reach zero
}

// newDataPool returns an empty pool retaining up to limit entries.
func newDataPool(limit int) *DataPool {
	if limit <= 0 {
		limit = DefaultPoolLimit
	}
	return &DataPool{limit: limit, entries: make(map[string]*poolEntry)}
}

// SetLimit changes the retention limit and evicts down to it.
func (p *DataPool) SetLimit(n int) {
	if n <= 0 {
		n = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.limit = n
	p.evictLocked()
}

// Len returns the number of live (non-dead) entries.
func (p *DataPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, e := range p.entries {
		if !e.dead {
			n++
		}
	}
	return n
}

// Put installs cd under id with one reference held by the caller (pair with
// Release). An existing live entry under the same id is kept and returned
// instead — concurrent re-preparations converge on one copy — so callers
// must use the returned CachedData, not necessarily the one they passed.
func (p *DataPool) Put(id string, cd *CachedData) *CachedData {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.entries[id]; ok && !e.dead {
		p.tick++
		e.lastUsed = p.tick
		e.refs++
		cd.Drop() // the loser of the race releases its spill files
		return e.cd
	}
	p.tick++
	p.entries[id] = &poolEntry{cd: cd, lastUsed: p.tick, refs: 1}
	p.evictLocked()
	return cd
}

// Acquire returns the entry under id with a reference held (pair with
// Release), or false when the entry is absent or evicted.
func (p *DataPool) Acquire(id string) (*CachedData, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[id]
	if !ok || e.dead {
		return nil, false
	}
	p.tick++
	e.lastUsed = p.tick
	e.refs++
	return e.cd, true
}

// Release drops one reference on id. Dead entries are dropped for good when
// their last reference goes away.
func (p *DataPool) Release(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[id]
	if !ok {
		return
	}
	if e.refs > 0 {
		e.refs--
	}
	if e.dead && e.refs == 0 {
		delete(p.entries, id)
		e.cd.Drop()
	}
}

// Remove marks the entry dead; its spill files are released once no query
// references it.
func (p *DataPool) Remove(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.entries[id]
	if !ok || e.dead {
		return
	}
	e.dead = true
	if e.refs == 0 {
		delete(p.entries, id)
		e.cd.Drop()
	}
}

// evictLocked marks LRU unreferenced entries dead until at most limit live
// entries remain. Referenced entries are skipped (a query is mid-fork on
// them); they become eviction candidates again once released.
func (p *DataPool) evictLocked() {
	for {
		live := 0
		var victim string
		var victimEntry *poolEntry
		for id, e := range p.entries {
			if e.dead {
				continue
			}
			live++
			if e.refs > 0 {
				continue
			}
			if victimEntry == nil || e.lastUsed < victimEntry.lastUsed {
				victim, victimEntry = id, e
			}
		}
		if live <= p.limit || victimEntry == nil {
			return
		}
		delete(p.entries, victim)
		victimEntry.cd.Drop()
	}
}
