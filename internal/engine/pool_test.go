package engine

import (
	"fmt"
	"sync"
	"testing"
)

func poolBlocks(rows, parts int) []*TupleBlock {
	dims := [][]int32{make([]int32, rows)}
	m := make([]float64, rows)
	for i := range m {
		m[i] = float64(i + 1)
	}
	return BlocksFromColumns(dims, m, nil, parts)
}

// spillingBackend returns a native backend whose cache budget forces every
// CachedData to spill, so Drop has an observable effect (reads fail).
func spillingBackend() *NativeBackend {
	return NewNativeBackend(Config{Executors: 1, MemoryPerExecutor: 1})
}

// scannable reports whether cd's blocks are still readable (spilled blocks
// of a dropped cache are not).
func scannable(cd *CachedData) error {
	return cd.Scan("test/scannable", false, func(int, *TupleBlock) {})
}

func TestDataPoolLRUEviction(t *testing.T) {
	b := NewNativeBackend(Config{})
	defer b.Close()
	p := b.Pool()
	p.SetLimit(2)
	for i := 0; i < 3; i++ {
		cd, err := CacheTuples(b, poolBlocks(8, 2))
		if err != nil {
			t.Fatal(err)
		}
		_, ref := p.Put(fmt.Sprintf("d%d", i), cd)
		ref.Release()
	}
	if p.Len() != 2 {
		t.Fatalf("pool holds %d entries, want 2", p.Len())
	}
	if _, _, ok := p.Acquire("d0"); ok {
		t.Error("d0 should have been evicted as LRU")
	}
	for _, id := range []string{"d1", "d2"} {
		cd, ref, ok := p.Acquire(id)
		if !ok {
			t.Fatalf("%s missing from pool", id)
		}
		if cd.NumBlocks() != 2 {
			t.Errorf("%s has %d blocks", id, cd.NumBlocks())
		}
		ref.Release()
	}
}

func TestDataPoolReferencedEntriesSurviveEviction(t *testing.T) {
	b := NewNativeBackend(Config{})
	defer b.Close()
	p := b.Pool()
	p.SetLimit(1)
	cd0, _ := CacheTuples(b, poolBlocks(4, 1))
	_, held := p.Put("held", cd0) // reference kept
	cd1, _ := CacheTuples(b, poolBlocks(4, 1))
	_, ref1 := p.Put("next", cd1)
	ref1.Release()
	_, ref2, ok := p.Acquire("held")
	if !ok {
		t.Fatal("referenced entry was evicted")
	}
	ref2.Release()
	held.Release()
	held.Release() // double release is a no-op
}

func TestDataPoolPutRaceConvergesOnOneCopy(t *testing.T) {
	b := NewNativeBackend(Config{})
	defer b.Close()
	p := b.Pool()
	cd0, _ := CacheTuples(b, poolBlocks(4, 1))
	cd1, _ := CacheTuples(b, poolBlocks(4, 1))
	got0, _ := p.Put("same", cd0)
	got1, _ := p.Put("same", cd1)
	if got0 != cd0 {
		t.Error("first Put did not install its CachedData")
	}
	if got1 != cd0 {
		t.Error("second Put did not converge on the existing entry")
	}
}

// TestDataPoolRePutSameDataKeepsEntryAlive is the regression test for the
// identity re-Put bug: Putting the *same* CachedData already live under an
// id must not treat the caller as the loser of a re-preparation race — the
// old code called cd.Drop() on it, deleting the live entry's spill files.
func TestDataPoolRePutSameDataKeepsEntryAlive(t *testing.T) {
	b := spillingBackend()
	defer b.Close()
	p := b.Pool()
	cd, err := CacheTuples(b, poolBlocks(64, 4))
	if err != nil {
		t.Fatal(err)
	}
	got0, ref0 := p.Put("d", cd)
	got1, ref1 := p.Put("d", cd) // identity re-Put of the pooled CachedData
	if got0 != cd || got1 != cd {
		t.Fatal("identity re-Put did not return the pooled CachedData")
	}
	if err := scannable(cd); err != nil {
		t.Fatalf("pooled entry unreadable after identity re-Put (spill files dropped): %v", err)
	}
	ref0.Release()
	ref1.Release()
	// Both references released and the entry is still live: it must remain
	// readable until removed or evicted.
	if err := scannable(cd); err != nil {
		t.Fatalf("live entry unreadable after releases: %v", err)
	}
	p.Remove("d")
	if err := scannable(cd); err == nil {
		t.Error("removed unreferenced entry still readable: spill files leaked")
	}
}

// TestDataPoolStaleReleaseCannotTouchReplacement is the regression test for
// the id-keyed release bug: after Remove + Put reuse an id, a release of the
// *old* entry's reference must not decrement the replacement's refcount —
// with id-keyed Release the pool could then evict a dataset another query
// still holds.
func TestDataPoolStaleReleaseCannotTouchReplacement(t *testing.T) {
	b := spillingBackend()
	defer b.Close()
	p := b.Pool()

	cd1, err := CacheTuples(b, poolBlocks(32, 2))
	if err != nil {
		t.Fatal(err)
	}
	_, oldRef := p.Put("d", cd1)
	p.Remove("d") // dead but referenced: lives until oldRef releases

	cd2, err := CacheTuples(b, poolBlocks(32, 2))
	if err != nil {
		t.Fatal(err)
	}
	_, newRef := p.Put("d", cd2) // same id, new entry, held by a query

	oldRef.Release() // stale release: must hit cd1's entry, not cd2's
	if err := scannable(cd1); err == nil {
		t.Error("dead entry kept its spill files after its last release")
	}

	// The replacement must still be referenced: a Remove now may not drop it
	// out from under the holder.
	p.Remove("d")
	if err := scannable(cd2); err != nil {
		t.Fatalf("replacement entry dropped while a query still held it: %v", err)
	}
	newRef.Release()
	if err := scannable(cd2); err == nil {
		t.Error("removed replacement still readable after final release")
	}
}

// TestDataPoolConcurrentPutAcquireRemoveRelease exercises the full lifecycle
// from many goroutines (run under -race in CI): ids are continually removed
// and re-put while readers hold and release references, and no reader may
// ever observe a dropped entry through a reference it holds.
func TestDataPoolConcurrentPutAcquireRemoveRelease(t *testing.T) {
	b := spillingBackend()
	defer b.Close()
	p := b.Pool()
	p.SetLimit(4)

	const goroutines = 8
	const rounds = 40
	ids := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				id := ids[(g+round)%len(ids)]
				cd, ref, ok := p.Acquire(id)
				if !ok {
					fresh, err := CacheTuples(b, poolBlocks(16, 2))
					if err != nil {
						errs[g] = err
						return
					}
					cd, ref = p.Put(id, fresh)
				}
				// While the reference is held the data must stay readable,
				// no matter what other goroutines remove or re-put.
				if err := scannable(cd); err != nil {
					errs[g] = fmt.Errorf("round %d id %s: %w", round, id, err)
					ref.Release()
					return
				}
				if round%5 == g%5 {
					p.Remove(id)
				}
				ref.Release()
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestForkSharesImmutableColumns pins the fork contract: dimension and
// measure columns are shared, estimate columns are private.
func TestForkSharesImmutableColumns(t *testing.T) {
	b := NewNativeBackend(Config{})
	defer b.Close()
	canonical, err := CacheTuples(b, poolBlocks(10, 2))
	if err != nil {
		t.Fatal(err)
	}
	f1, err := canonical.Fork(b)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := canonical.Fork(b)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := f1.Get(0)
	b2, _ := f2.Get(0)
	c0, _ := canonical.Get(0)
	if &b1.M[0] != &c0.M[0] || &b2.M[0] != &c0.M[0] {
		t.Error("forks do not share the measure column")
	}
	if &b1.Mhat[0] == &b2.Mhat[0] {
		t.Error("forks share the estimate column")
	}
	for i, v := range b1.Mhat {
		if v != 1 {
			t.Fatalf("fork estimate[%d] = %v, want 1", i, v)
		}
	}
	b1.Mhat[0] = 42
	if b2.Mhat[0] != 1 {
		t.Error("mutating one fork leaked into the other")
	}
	if c0.Mhat != nil {
		t.Error("canonical blocks should have no estimate column")
	}
}

// TestConcurrentForkAndScan runs concurrent forks plus mutating scans on one
// shared canonical dataset — the engine-level shape of prepare-once /
// query-many (run under -race in CI).
func TestConcurrentForkAndScan(t *testing.T) {
	b := NewNativeBackend(Config{})
	defer b.Close()
	canonical, err := CacheTuples(b, poolBlocks(64, 4))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f, err := canonical.Fork(NewQueryScope(b))
			if err != nil {
				errs[g] = err
				return
			}
			for round := 0; round < 3; round++ {
				errs[g] = f.Scan("test/scale", true, func(_ int, blk *TupleBlock) {
					for i := range blk.Mhat {
						blk.Mhat[i] *= 2
					}
				})
				if errs[g] != nil {
					return
				}
			}
			f.Scan("test/check", false, func(bi int, blk *TupleBlock) {
				for i, v := range blk.Mhat {
					if v != 8 {
						errs[g] = fmt.Errorf("goroutine %d block %d row %d: mhat %v, want 8", g, bi, i, v)
						return
					}
				}
			})
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestQueryScopeIsolatesMetrics pins the per-query registry contract.
func TestQueryScopeIsolatesMetrics(t *testing.T) {
	b := NewSimBackend(Config{Executors: 2, CoresPerExecutor: 2})
	defer b.Close()
	s1 := NewQueryScope(b)
	s2 := NewQueryScope(b)
	s1.RunStage("one", 3, func(int) {})
	s2.ChargeShuffle(100, 7)
	if got := s1.Reg().Counter("tasks"); got != 3 {
		t.Errorf("scope 1 tasks = %d, want 3", got)
	}
	if got := s2.Reg().Counter("tasks"); got != 0 {
		t.Errorf("scope 2 saw scope 1's tasks: %d", got)
	}
	if got := s2.Reg().Counter("shuffle_bytes"); got != 100 {
		t.Errorf("scope 2 shuffle bytes = %d", got)
	}
	if got := s1.Reg().Counter("shuffle_bytes"); got != 0 {
		t.Errorf("scope 1 saw scope 2's shuffle: %d", got)
	}
	// The backend keeps substrate-lifetime totals across both scopes.
	if got := b.Reg().Counter("tasks"); got != 3 {
		t.Errorf("backend tasks = %d, want 3", got)
	}
	if got := b.Reg().Counter("shuffle_bytes"); got != 100 {
		t.Errorf("backend shuffle bytes = %d", got)
	}
	// Scopes never chain, and closing one is a no-op for the backend.
	if NewQueryScope(s1).Base() != b {
		t.Error("scope of a scope did not attach to the base backend")
	}
	if err := s1.Close(); err != nil {
		t.Errorf("scope close: %v", err)
	}
	if b.Pool() != s2.Pool() {
		t.Error("scope does not share the backend pool")
	}
}
