package engine

import "sync"

// columnArena recycles the per-query fork columns (the Mhat estimate arrays
// CachedData.Fork hands every query). Prepared sessions answer many queries
// over identically partitioned blocks, so the same column sizes come back
// query after query; without reuse every fork allocates and zero-fills a
// fresh []float64 per block. Each concrete backend owns one arena; query
// scopes borrow from it and return their borrows in Finish, so a column is
// only ever owned by one in-flight query.
type columnArena struct {
	mu   sync.Mutex
	free [][]float64
}

// arenaMaxFree bounds the free list so a burst of unusually wide forks
// cannot pin memory forever; surplus columns fall back to the GC.
const arenaMaxFree = 256

// get returns a length-n column, reusing the smallest free column that fits
// (best fit keeps big columns available for big blocks). The contents are
// unspecified; callers must initialise it.
func (a *columnArena) get(n int) []float64 {
	a.mu.Lock()
	best := -1
	for i, c := range a.free {
		if cap(c) >= n && (best < 0 || cap(c) < cap(a.free[best])) {
			best = i
		}
	}
	if best >= 0 {
		col := a.free[best]
		last := len(a.free) - 1
		a.free[best] = a.free[last]
		a.free[last] = nil
		a.free = a.free[:last]
		a.mu.Unlock()
		return col[:n]
	}
	a.mu.Unlock()
	return make([]float64, n)
}

// put returns columns to the free list. Nil or zero-capacity entries are
// skipped; beyond arenaMaxFree the surplus is left to the GC.
func (a *columnArena) put(cols [][]float64) {
	a.mu.Lock()
	for _, c := range cols {
		if cap(c) == 0 {
			continue
		}
		if len(a.free) >= arenaMaxFree {
			break
		}
		a.free = append(a.free, c[:0])
	}
	a.mu.Unlock()
}

// borrowColumn resolves the arena for b: query scopes borrow from their
// backend's arena (tracked, returned on Finish); a bare backend — cold runs
// that fork once and drop everything with the substrate — just allocates.
func borrowColumn(b Backend, n int) []float64 {
	if s, ok := b.(*QueryScope); ok {
		return s.borrowColumn(n)
	}
	return make([]float64, n)
}

// FillFloat64 sets every element of s to v with a doubling block copy —
// runtime-assisted memmove instead of a per-element store loop.
func FillFloat64(s []float64, v float64) {
	if len(s) == 0 {
		return
	}
	s[0] = v
	for filled := 1; filled < len(s); filled *= 2 {
		copy(s[filled:], s[:filled])
	}
}
