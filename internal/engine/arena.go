package engine

import "sync"

// columnArena recycles the per-query fork columns (the Mhat estimate arrays
// CachedData.Fork hands every query). Prepared sessions answer many queries
// over identically partitioned blocks, so the same column sizes come back
// query after query; without reuse every fork allocates and zero-fills a
// fresh []float64 per block. Each concrete backend owns one arena; query
// scopes borrow from it and return their borrows in Finish, so a column is
// only ever owned by one in-flight query.
type columnArena struct {
	mu      sync.Mutex
	free    [][]float64
	scratch []Scratch
}

// arenaMaxFree bounds the free list so a burst of unusually wide forks
// cannot pin memory forever; surplus columns fall back to the GC.
const arenaMaxFree = 256

// scratchMaxFree bounds the scratch free list the same way. Scratch
// structures (the cube's PackedTables) are far larger than fork columns —
// a few per partition per in-flight query — so the cap is much smaller.
const scratchMaxFree = 64

// Scratch is a recyclable aggregation structure a query borrows from the
// backend arena: cleared between uses but keeping its backing capacity, so a
// prepared session's steady-state rounds stop allocating. The cube's
// PackedTable is the canonical implementation.
type Scratch interface {
	// Reset clears the contents, keeping the backing capacity.
	Reset()
	// ScratchSize reports the current capacity in entries, the best-fit key
	// for reuse.
	ScratchSize() int
}

// get returns a length-n column, reusing the smallest free column that fits
// (best fit keeps big columns available for big blocks). The contents are
// unspecified; callers must initialise it.
func (a *columnArena) get(n int) []float64 {
	a.mu.Lock()
	best := -1
	for i, c := range a.free {
		if cap(c) >= n && (best < 0 || cap(c) < cap(a.free[best])) {
			best = i
		}
	}
	if best >= 0 {
		col := a.free[best]
		last := len(a.free) - 1
		a.free[best] = a.free[last]
		a.free[last] = nil
		a.free = a.free[:last]
		a.mu.Unlock()
		return col[:n]
	}
	a.mu.Unlock()
	return make([]float64, n)
}

// put returns columns to the free list. Nil or zero-capacity entries are
// skipped; beyond arenaMaxFree the surplus is left to the GC.
func (a *columnArena) put(cols [][]float64) {
	a.mu.Lock()
	for _, c := range cols {
		if cap(c) == 0 {
			continue
		}
		if len(a.free) >= arenaMaxFree {
			break
		}
		a.free = append(a.free, c[:0])
	}
	a.mu.Unlock()
}

// getScratch returns a free scratch structure, best fit for hint entries: the
// smallest free structure with capacity ≥ hint, or — when none is large
// enough — the largest available, which the caller grows once instead of
// allocating from nothing. Returns nil when the free list is empty.
func (a *columnArena) getScratch(hint int) Scratch {
	a.mu.Lock()
	best := -1
	for i, s := range a.scratch {
		sz := s.ScratchSize()
		if best < 0 {
			best = i
			continue
		}
		bz := a.scratch[best].ScratchSize()
		if sz >= hint {
			if bz < hint || sz < bz {
				best = i
			}
		} else if bz < hint && sz > bz {
			best = i
		}
	}
	if best < 0 {
		a.mu.Unlock()
		return nil
	}
	s := a.scratch[best]
	last := len(a.scratch) - 1
	a.scratch[best] = a.scratch[last]
	a.scratch[last] = nil
	a.scratch = a.scratch[:last]
	a.mu.Unlock()
	return s
}

// putScratch resets s and returns it to the free list; beyond scratchMaxFree
// the surplus is left to the GC. The Reset runs outside the lock — it memclrs
// the whole backing capacity.
func (a *columnArena) putScratch(s Scratch) {
	if s == nil {
		return
	}
	s.Reset()
	a.mu.Lock()
	if len(a.scratch) < scratchMaxFree {
		a.scratch = append(a.scratch, s)
	}
	a.mu.Unlock()
}

// BorrowScratch takes a recycled scratch structure of roughly hint entries
// from b's arena, tracked by the query scope for return at Finish. It returns
// nil — and the caller allocates fresh, registering via TrackScratch — when b
// is not a query scope or the free list is empty. The two-call shape (instead
// of a make-callback) keeps the borrow allocation-free: an escaping closure
// argument would heap-allocate on every call.
func BorrowScratch(b Backend, hint int) Scratch {
	if s, ok := b.(*QueryScope); ok {
		return s.borrowScratch(hint)
	}
	return nil
}

// TrackScratch registers a freshly allocated scratch structure with b's query
// scope so Finish recycles it into the arena; a no-op on bare backends, whose
// callers drop everything with the run.
func TrackScratch(b Backend, s Scratch) {
	if qs, ok := b.(*QueryScope); ok {
		qs.trackScratch(s)
	}
}

// ReleaseScratch returns s to the arena immediately — before scope Finish —
// so later rounds of the same query reuse its backing arrays. A no-op on bare
// backends.
func ReleaseScratch(b Backend, s Scratch) {
	if qs, ok := b.(*QueryScope); ok {
		qs.releaseScratch(s)
	}
}

// borrowColumn resolves the arena for b: query scopes borrow from their
// backend's arena (tracked, returned on Finish); a bare backend — cold runs
// that fork once and drop everything with the substrate — just allocates.
func borrowColumn(b Backend, n int) []float64 {
	if s, ok := b.(*QueryScope); ok {
		return s.borrowColumn(n)
	}
	return make([]float64, n)
}

// FillFloat64 sets every element of s to v with a doubling block copy —
// runtime-assisted memmove instead of a per-element store loop.
func FillFloat64(s []float64, v float64) {
	if len(s) == 0 {
		return
	}
	s[0] = v
	for filled := 1; filled < len(s); filled *= 2 {
		copy(s[filled:], s[:filled])
	}
}
