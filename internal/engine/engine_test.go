package engine

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sirum/internal/metrics"
)

func testConfig() Config {
	return Config{
		Executors:        4,
		CoresPerExecutor: 2,
		Partitions:       8,
		StageOverhead:    0,
	}
}

func TestConfigDefaults(t *testing.T) {
	c := NewSimBackend(Config{})
	conf := c.Config()
	if conf.Executors != 1 || conf.CoresPerExecutor != 1 || conf.Partitions != 1 {
		t.Errorf("defaults: %+v", conf)
	}
	if conf.NetBandwidth <= 0 || conf.DiskBandwidth <= 0 || conf.RealParallelism <= 0 {
		t.Errorf("bandwidth defaults: %+v", conf)
	}
}

func TestSparkLikePreset(t *testing.T) {
	conf := SparkLike()
	if conf.Executors != 16 || conf.Partitions != 384 {
		t.Errorf("SparkLike = %+v", conf)
	}
	if conf.MemoryPerExecutor != 45<<30 {
		t.Errorf("memory = %d", conf.MemoryPerExecutor)
	}
}

func TestRunStageExecutesAllTasks(t *testing.T) {
	c := NewSimBackend(testConfig())
	defer c.Close()
	var n atomic.Int64
	c.RunStage("count", 100, func(i int) { n.Add(1) })
	if n.Load() != 100 {
		t.Errorf("tasks run = %d", n.Load())
	}
	if got := c.Reg().Counter(metrics.CtrTasks); got != 100 {
		t.Errorf("task counter = %d", got)
	}
	if got := c.Reg().Counter(metrics.CtrStages); got != 1 {
		t.Errorf("stage counter = %d", got)
	}
	if c.SimTime() <= 0 {
		t.Error("sim clock did not advance")
	}
}

func TestRunStagePanicPropagates(t *testing.T) {
	c := NewSimBackend(testConfig())
	defer c.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("task panic was swallowed")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "boom") || !strings.Contains(msg, "explode") {
			t.Errorf("panic message lacks context: %v", r)
		}
	}()
	c.RunStage("explode", 8, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
}

func TestRunStageEmpty(t *testing.T) {
	c := NewSimBackend(Config{StageOverhead: time.Second})
	defer c.Close()
	c.RunStage("empty", 0, func(int) { t.Fatal("task ran") })
	if c.SimTime() != time.Second {
		t.Errorf("empty stage sim time = %v", c.SimTime())
	}
}

// TestMakespanScaling verifies the heart of the simulated clock: the same
// task durations scheduled on more executors yield proportionally smaller
// makespans (up to the per-task floor).
func TestMakespanScaling(t *testing.T) {
	durations := make([]time.Duration, 64)
	for i := range durations {
		durations[i] = 10 * time.Millisecond
	}
	mk := func(execs int) time.Duration {
		c := NewSimBackend(Config{Executors: execs, CoresPerExecutor: 1})
		defer c.Close()
		return c.makespan(durations)
	}
	m2, m4, m16 := mk(2), mk(4), mk(16)
	if m2 != 320*time.Millisecond || m4 != 160*time.Millisecond || m16 != 40*time.Millisecond {
		t.Errorf("makespans: 2->%v 4->%v 16->%v", m2, m4, m16)
	}
}

func TestMakespanSlowNode(t *testing.T) {
	durations := []time.Duration{10 * time.Millisecond, 10 * time.Millisecond}
	c := NewSimBackend(Config{Executors: 2, CoresPerExecutor: 1, SlowNodeFactor: 3})
	defer c.Close()
	// One task lands on the slow executor (x3), the other on the fast one.
	if got := c.makespan(durations); got != 30*time.Millisecond {
		t.Errorf("slow-node makespan = %v, want 30ms", got)
	}
}

func TestChargeShuffleAndBroadcast(t *testing.T) {
	c := NewSimBackend(Config{Executors: 4, NetBandwidth: 1 << 20, DiskBandwidth: 1 << 20})
	defer c.Close()
	c.ChargeShuffle(1<<20, 100)
	if got := c.Reg().Counter(metrics.CtrShuffleBytes); got != 1<<20 {
		t.Errorf("shuffle bytes = %d", got)
	}
	if got := c.Reg().Counter(metrics.CtrShuffleRecords); got != 100 {
		t.Errorf("shuffle records = %d", got)
	}
	t1 := c.SimTime()
	if t1 <= 0 {
		t.Error("shuffle did not advance clock")
	}
	c.Broadcast(1 << 20)
	if c.Reg().Counter(metrics.CtrBroadcastBytes) != 1<<20 {
		t.Error("broadcast bytes not counted")
	}
	if c.SimTime() <= t1 {
		t.Error("broadcast did not advance clock")
	}
}

func TestShuffleToDiskCostsMore(t *testing.T) {
	mem := NewSimBackend(Config{Executors: 4, NetBandwidth: 1 << 20, DiskBandwidth: 1 << 20})
	disk := NewSimBackend(Config{Executors: 4, NetBandwidth: 1 << 20, DiskBandwidth: 1 << 20, ShuffleToDisk: true})
	defer mem.Close()
	defer disk.Close()
	mem.ChargeShuffle(8<<20, 1)
	disk.ChargeShuffle(8<<20, 1)
	if disk.SimTime() <= mem.SimTime() {
		t.Errorf("disk shuffle (%v) not slower than memory shuffle (%v)", disk.SimTime(), mem.SimTime())
	}
}

func TestJobBoundary(t *testing.T) {
	c := NewSimBackend(Config{JobOverhead: 7 * time.Second})
	defer c.Close()
	c.JobBoundary()
	if c.SimTime() != 7*time.Second {
		t.Errorf("job boundary sim time = %v", c.SimTime())
	}
}

func TestSplitSlice(t *testing.T) {
	data := []int{1, 2, 3, 4, 5, 6, 7}
	parts := SplitSlice(data, 3)
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 7 {
		t.Errorf("split lost rows: %v", parts)
	}
	if len(SplitSlice([]int{1}, 5)) != 1 {
		t.Error("more parts than rows")
	}
	empty := SplitSlice([]int{}, 3)
	if len(empty) != 1 || len(empty[0]) != 0 {
		t.Errorf("empty split = %v", empty)
	}
	if len(SplitSlice(data, 0)) != 1 {
		t.Error("zero parts should clamp to 1")
	}
}

func TestMapPartsAndForEachPart(t *testing.T) {
	c := NewSimBackend(testConfig())
	defer c.Close()
	in := NewPColl(SplitSlice([]int{1, 2, 3, 4, 5, 6}, 3))
	sums := MapParts(c, in, "sum", func(_ int, p []int) int {
		s := 0
		for _, v := range p {
			s += v
		}
		return s
	})
	total := 0
	for _, s := range sums.Parts() {
		total += s
	}
	if total != 21 {
		t.Errorf("total = %d", total)
	}
	if sums.NumParts() != in.NumParts() {
		t.Error("MapParts changed partitioning")
	}
	var count atomic.Int64
	ForEachPart(c, in, "visit", func(i int, p []int) {
		count.Add(int64(len(p)))
	})
	if count.Load() != 6 {
		t.Errorf("ForEachPart visited %d rows", count.Load())
	}
	if in.Part(0) == nil {
		t.Error("Part accessor broken")
	}
}

func TestShuffleByKey(t *testing.T) {
	c := NewSimBackend(testConfig())
	defer c.Close()
	// Two partitions holding overlapping keys.
	parts := []map[string]int{
		{"a": 1, "b": 2, "c": 3},
		{"a": 10, "c": 30, "d": 40},
	}
	out := ShuffleByKey(c, NewPColl(parts), "merge", 4, func(a, b int) int { return a + b },
		func(k string, v int) int { return len(k) + 8 })
	if out.NumParts() != 4 {
		t.Fatalf("out parts = %d", out.NumParts())
	}
	merged := map[string]int{}
	for _, p := range out.Parts() {
		for k, v := range p {
			if _, dup := merged[k]; dup {
				t.Errorf("key %q appears in multiple output partitions", k)
			}
			merged[k] = v
		}
	}
	want := map[string]int{"a": 11, "b": 2, "c": 33, "d": 40}
	for k, v := range want {
		if merged[k] != v {
			t.Errorf("merged[%q] = %d, want %d", k, merged[k], v)
		}
	}
	if len(merged) != len(want) {
		t.Errorf("merged = %v", merged)
	}
	if c.Reg().Counter(metrics.CtrShuffleRecords) != 6 {
		t.Errorf("shuffle records = %d, want 6", c.Reg().Counter(metrics.CtrShuffleRecords))
	}
}

func TestCollectMap(t *testing.T) {
	c := NewSimBackend(testConfig())
	defer c.Close()
	parts := []map[string]int{{"x": 1}, {"x": 2, "y": 5}}
	got := CollectMap(c, NewPColl(parts), "gather", func(a, b int) int { return a + b },
		func(k string, v int) int { return 16 })
	if got["x"] != 3 || got["y"] != 5 {
		t.Errorf("collect = %v", got)
	}
}

func TestShuffleDefaultPartitions(t *testing.T) {
	c := NewSimBackend(testConfig())
	defer c.Close()
	out := ShuffleByKey(c, NewPColl([]map[int]int{{1: 1}}), "d", 0,
		func(a, b int) int { return a + b }, func(int, int) int { return 8 })
	if out.NumParts() != c.Config().Partitions {
		t.Errorf("default partitions = %d, want %d", out.NumParts(), c.Config().Partitions)
	}
}

func TestHashKeyTypes(t *testing.T) {
	// Different key types must hash without panicking and spread keys.
	if hashKey("abc") == hashKey("abd") {
		t.Error("string hash collision on near keys (suspicious)")
	}
	_ = hashKey(42)
	_ = hashKey(int32(7))
	_ = hashKey(int64(7))
	_ = hashKey(uint64(7))
	_ = hashKey(3.14) // fallback path
}

func TestSimCost(t *testing.T) {
	if got := SimCost(1000, time.Microsecond); got != time.Millisecond {
		t.Errorf("SimCost = %v", got)
	}
}
