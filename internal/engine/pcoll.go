package engine

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync/atomic"
	"time"
)

// PColl is a partitioned collection: one element of type P per partition.
// Partition payloads are typically columnar blocks or pre-aggregated maps;
// operators run one task per partition on the backend's scheduler.
type PColl[P any] struct {
	parts []P
}

// NewPColl wraps pre-built partitions.
func NewPColl[P any](parts []P) *PColl[P] { return &PColl[P]{parts: parts} }

// NumParts returns the partition count.
func (p *PColl[P]) NumParts() int { return len(p.parts) }

// Parts exposes the partition payloads (driver-side; no cost is charged).
func (p *PColl[P]) Parts() []P { return p.parts }

// Part returns partition i.
func (p *PColl[P]) Part(i int) P { return p.parts[i] }

// SplitSlice partitions a slice into n contiguous chunks of near-equal size
// (fewer when len(data) < n); the standard way row sets enter the engine.
func SplitSlice[T any](data []T, n int) [][]T {
	if n <= 0 {
		n = 1
	}
	if n > len(data) && len(data) > 0 {
		n = len(data)
	}
	if len(data) == 0 {
		return [][]T{nil}
	}
	out := make([][]T, 0, n)
	per := int(math.Ceil(float64(len(data)) / float64(n)))
	for start := 0; start < len(data); start += per {
		end := min(start+per, len(data))
		out = append(out, data[start:end])
	}
	return out
}

// MapParts applies f to every partition in parallel, producing a new
// collection with the same partitioning.
func MapParts[P, Q any](b Backend, in *PColl[P], name string, f func(part int, p P) Q) *PColl[Q] {
	out := make([]Q, in.NumParts())
	b.RunStage(name, in.NumParts(), func(i int) {
		out[i] = f(i, in.parts[i])
	})
	return NewPColl(out)
}

// ForEachPart applies f to every partition in parallel for its side effects.
func ForEachPart[P any](b Backend, in *PColl[P], name string, f func(part int, p P)) {
	b.RunStage(name, in.NumParts(), func(i int) {
		f(i, in.parts[i])
	})
}

// KeyBytes estimates serialized record volume for shuffle accounting; the
// caller supplies per-record byte sizes since Go values have no serialized
// form until encoded. Backends that do not price byte volume (the native
// path) never invoke it.
type KeyBytes[K comparable, V any] func(k K, v V) int

// ShuffleByKey redistributes per-partition hash maps by key so that every
// key lives in exactly one output partition, merging values with merge. This
// is the reduceByKey of the data-cube algorithm: the inputs act as combiner
// output, the exchange is charged to the backend, and the merge runs as a
// reduce stage. On the native backend the exchange partitions records into
// preallocated per-bucket slices instead of building a map per (input
// partition, output partition) pair.
func ShuffleByKey[K comparable, V any](b Backend, in *PColl[map[K]V], name string, outParts int, merge func(V, V) V, size KeyBytes[K, V]) *PColl[map[K]V] {
	if outParts <= 0 {
		outParts = b.Config().Partitions
	}
	if !b.accountsBytes() {
		return shuffleByKeyNative(b, in, name, outParts, merge)
	}
	// Map side: split each input partition into outParts buckets by key
	// hash. Runs as a stage so its cost lands on the simulated clock.
	buckets := make([][]map[K]V, in.NumParts())
	var shuffleBytes, shuffleRecords int64
	byteCounts := make([]int64, in.NumParts())
	recCounts := make([]int64, in.NumParts())
	b.RunStage(name+"/map", in.NumParts(), func(i int) {
		local := make([]map[K]V, outParts)
		for bkt := range local {
			local[bkt] = make(map[K]V)
		}
		for k, v := range in.parts[i] {
			bkt := int(hashKey(k) % uint64(outParts))
			if old, ok := local[bkt][k]; ok {
				local[bkt][k] = merge(old, v)
			} else {
				local[bkt][k] = v
			}
			byteCounts[i] += int64(size(k, v))
			recCounts[i]++
		}
		buckets[i] = local
	})
	for i := range byteCounts {
		shuffleBytes += byteCounts[i]
		shuffleRecords += recCounts[i]
	}
	b.ChargeShuffle(shuffleBytes, shuffleRecords)
	// Reduce side: merge bucket p of every input partition.
	out := make([]map[K]V, outParts)
	b.RunStage(name+"/reduce", outParts, func(p int) {
		merged := make(map[K]V)
		for i := range buckets {
			for k, v := range buckets[i][p] {
				if old, ok := merged[k]; ok {
					merged[k] = merge(old, v)
				} else {
					merged[k] = v
				}
			}
		}
		out[p] = merged
	})
	return NewPColl(out)
}

// kvPair is one shuffled record on the native path.
type kvPair[K comparable, V any] struct {
	k K
	v V
}

// shuffleByKeyNative is the fast exchange: the map side appends records to
// preallocated per-bucket slices (keys within one input partition are
// already unique, so no map insert or merge is needed there), and the reduce
// side merges each bucket column into one map presized to its record count.
func shuffleByKeyNative[K comparable, V any](b Backend, in *PColl[map[K]V], name string, outParts int, merge func(V, V) V) *PColl[map[K]V] {
	buckets := make([][][]kvPair[K, V], in.NumParts())
	var records atomic.Int64
	b.RunStage(name+"/map", in.NumParts(), func(i int) {
		part := in.parts[i]
		local := make([][]kvPair[K, V], outParts)
		per := len(part)/outParts + 1
		for bkt := range local {
			local[bkt] = make([]kvPair[K, V], 0, per)
		}
		for k, v := range part {
			bkt := int(hashKey(k) % uint64(outParts))
			local[bkt] = append(local[bkt], kvPair[K, V]{k, v})
		}
		records.Add(int64(len(part)))
		buckets[i] = local
	})
	b.ChargeShuffle(0, records.Load())
	out := make([]map[K]V, outParts)
	b.RunStage(name+"/reduce", outParts, func(p int) {
		total := 0
		for i := range buckets {
			total += len(buckets[i][p])
		}
		merged := make(map[K]V, total)
		for i := range buckets {
			for _, e := range buckets[i][p] {
				if old, ok := merged[e.k]; ok {
					merged[e.k] = merge(old, e.v)
				} else {
					merged[e.k] = e.v
				}
			}
		}
		out[p] = merged
	})
	return NewPColl(out)
}

// CollectMap gathers a keyed collection to the driver, merging duplicates
// (none exist after ShuffleByKey; MapParts output may have them). The gather
// runs as a named single-task stage and its volume is charged as a transfer
// to the driver.
func CollectMap[K comparable, V any](b Backend, in *PColl[map[K]V], name string, merge func(V, V) V, size KeyBytes[K, V]) map[K]V {
	total := make(map[K]V)
	var bytes int64
	account := b.accountsBytes()
	b.RunStage(name, 1, func(int) {
		for _, part := range in.parts {
			for k, v := range part {
				if old, ok := total[k]; ok {
					total[k] = merge(old, v)
				} else {
					total[k] = v
				}
				if account {
					bytes += int64(size(k, v))
				}
			}
		}
	})
	b.ChargeGather(bytes)
	return total
}

// FNV-1a constants, inlined so string hashing needs no hash.Hash64 object or
// []byte(v) copy per shuffled record.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashKey hashes arbitrary comparable keys. String keys (the rule keys) use
// an inlined allocation-free FNV-1a; other comparables go through a
// formatted fallback that is slower but rarely used.
func hashKey[K comparable](k K) uint64 {
	switch v := any(k).(type) {
	case string:
		h := uint64(fnvOffset64)
		for i := 0; i < len(v); i++ {
			h ^= uint64(v[i])
			h *= fnvPrime64
		}
		return h
	case int:
		return mix64(uint64(v))
	case int32:
		return mix64(uint64(uint32(v)))
	case int64:
		return mix64(uint64(v))
	case uint64:
		return mix64(v)
	default:
		h := fnv.New64a()
		h.Write([]byte(anyString(v)))
		return h.Sum64()
	}
}

func anyString(v any) string {
	type stringer interface{ String() string }
	if s, ok := v.(stringer); ok {
		return s.String()
	}
	return fmt.Sprint(v)
}

// SimCost converts an abstract operation count at a given per-op rate into
// simulated time; used by platform profiles to model disk-oriented access
// (PostgreSQL-like scans).
func SimCost(ops int64, perOp time.Duration) time.Duration {
	return time.Duration(ops) * perOp
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
