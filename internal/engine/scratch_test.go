package engine

import (
	"sync"
	"testing"
)

// stubScratch is a minimal Scratch implementation for arena tests.
type stubScratch struct {
	size   int
	resets int
	owner  int // stamped by the borrowing worker in the disjointness test
}

func (s *stubScratch) Reset()           { s.resets++ }
func (s *stubScratch) ScratchSize() int { return s.size }

func TestScratchArenaBestFit(t *testing.T) {
	var a columnArena
	small := &stubScratch{size: 16}
	big := &stubScratch{size: 1024}
	a.putScratch(small)
	a.putScratch(big)

	// A request for 10 must reuse the smaller structure, keeping the big one
	// available for big partitions.
	if got := a.getScratch(10); got != Scratch(small) {
		t.Fatalf("getScratch(10) = %v, want the best-fit small structure", got)
	}
	a.putScratch(small)

	// A request nothing satisfies returns the largest available: growing the
	// closest candidate once beats allocating from scratch.
	if got := a.getScratch(1 << 20); got != Scratch(big) {
		t.Fatalf("getScratch(1<<20) = %v, want the largest structure", got)
	}

	// Empty free list: nil tells the caller to allocate fresh.
	a.getScratch(10)
	if got := a.getScratch(10); got != nil {
		t.Fatalf("getScratch on empty list = %v, want nil", got)
	}
}

func TestScratchArenaResetsOnPut(t *testing.T) {
	var a columnArena
	s := &stubScratch{size: 8}
	a.putScratch(s)
	if s.resets != 1 {
		t.Fatalf("putScratch reset the structure %d times, want 1", s.resets)
	}
}

// TestScratchArenaRoundTripDoesNotAllocate pins the table-reuse core: once
// the arena is warm, checking a scratch structure out and returning it is
// allocation-free steady state — the borrow API takes no closures precisely
// so this holds.
func TestScratchArenaRoundTripDoesNotAllocate(t *testing.T) {
	var a columnArena
	a.putScratch(&stubScratch{size: 512})
	got := testing.AllocsPerRun(100, func() {
		s := a.getScratch(512)
		a.putScratch(s)
	})
	if got != 0 {
		t.Errorf("warm scratch round trip allocates %v objects/op, want 0", got)
	}
}

// TestScratchBorrowTrackedUntilFinish pins the scope lifecycle: a fresh
// structure registered via TrackScratch lands in the arena at Finish, and the
// next scoped borrow on the same backend reuses it.
func TestScratchBorrowTrackedUntilFinish(t *testing.T) {
	b := NewNativeBackend(Config{MemoryPerExecutor: 1 << 30})
	defer b.Close()

	qc := NewQueryScope(b)
	if s := BorrowScratch(qc, 16); s != nil {
		t.Fatalf("borrow from a cold arena = %v, want nil", s)
	}
	fresh := &stubScratch{size: 16}
	TrackScratch(qc, fresh)
	qc.Finish()

	qc2 := NewQueryScope(b)
	defer qc2.Finish()
	if s := BorrowScratch(qc2, 16); s != Scratch(fresh) {
		t.Fatalf("second scoped borrow = %v, want the structure recycled at Finish", s)
	}
}

// TestScratchReleaseReturnsEarly pins ReleaseScratch: the structure goes back
// to the arena immediately (later rounds of the same query can re-borrow it)
// and Finish does not return it twice.
func TestScratchReleaseReturnsEarly(t *testing.T) {
	b := NewNativeBackend(Config{MemoryPerExecutor: 1 << 30})
	defer b.Close()

	qc := NewQueryScope(b)
	s := &stubScratch{size: 16}
	TrackScratch(qc, s)
	ReleaseScratch(qc, s)
	if got := BorrowScratch(qc, 16); got != Scratch(s) {
		t.Fatalf("re-borrow after early release = %v, want the same structure", got)
	}
	ReleaseScratch(qc, s)
	qc.Finish()
	if s.resets != 2 {
		t.Errorf("structure reset %d times, want 2 (once per arena return, none at Finish)", s.resets)
	}
}

// TestScratchBorrowsConcurrentDisjoint runs many scoped queries in parallel,
// each stamping its borrowed structures with its own id and verifying the
// stamp survives the round — no structure may be handed to two in-flight
// queries. The CI race step (-race -run Concurrent) also checks the
// bookkeeping under contention.
func TestScratchBorrowsConcurrentDisjoint(t *testing.T) {
	b := NewNativeBackend(Config{MemoryPerExecutor: 1 << 30})
	defer b.Close()

	const workers, rounds, perRound = 8, 50, 3
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				qc := NewQueryScope(b)
				stamp := w*rounds + round + 1
				held := make([]*stubScratch, 0, perRound)
				for i := 0; i < perRound; i++ {
					var s *stubScratch
					if got := BorrowScratch(qc, 64); got != nil {
						s = got.(*stubScratch)
					} else {
						s = &stubScratch{size: 64}
						TrackScratch(qc, s)
					}
					s.owner = stamp
					held = append(held, s)
				}
				for _, s := range held {
					if s.owner != stamp {
						t.Errorf("scratch structure shared across concurrent queries (worker %d round %d: owner %d != %d)", w, round, s.owner, stamp)
					}
				}
				// Half the rounds release early, half leave the sweep to
				// Finish — both paths must stay disjoint.
				if round%2 == 0 {
					for _, s := range held {
						ReleaseScratch(qc, s)
					}
				}
				qc.Finish()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
