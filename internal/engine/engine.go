// Package engine is the execution substrate SIRUM runs on: partitioned
// collections with map/shuffle/broadcast operators and cached data with
// spill-to-disk, pluggable over two backends (see Backend). SimBackend is an
// in-process reproduction of the Spark-style execution model the thesis
// implements against, with a simulated cluster clock; NativeBackend runs the
// same operators at host speed with no simulation bookkeeping.
//
// # Simulated cluster time
//
// The thesis' evaluation ran on a 16-node cluster; this repository runs on
// whatever cores the host has. Under SimBackend, every task's real CPU
// duration is measured, and tasks are then placed onto E virtual executors ×
// C virtual cores by list scheduling in task order; a stage's simulated
// duration is the makespan of that schedule plus modelled coordination costs
// (stage/job startup, shuffle transfer at NetBandwidth, disk traffic at
// DiskBandwidth). Wall-clock time is tracked too. All scalability figures
// (5.1, 5.2, 5.16, 5.17) are reported in simulated time; single-machine
// algorithmic comparisons (RCT vs naive, fast pruning, …) hold in both
// clocks because they do the same real work.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"sirum/internal/metrics"
)

// Config describes the execution substrate. For SimBackend every field
// shapes the cost model; NativeBackend uses only Partitions,
// MemoryPerExecutor (for the cache budget), Executors (to scale the budget)
// and RealParallelism.
type Config struct {
	Executors         int           // number of virtual worker nodes
	CoresPerExecutor  int           // task slots per node
	Partitions        int           // default partition count for new data
	MemoryPerExecutor int64         // bytes available per executor for cached blocks
	NetBandwidth      float64       // bytes/sec for shuffle and broadcast traffic
	DiskBandwidth     float64       // bytes/sec for spills and disk-materialized shuffles
	StageOverhead     time.Duration // scheduling cost charged per stage
	JobOverhead       time.Duration // startup cost charged per job boundary
	ShuffleToDisk     bool          // materialize shuffle data on disk (MapReduce-style)
	RealParallelism   int           // actual concurrent goroutines (defaults to NumCPU)
	SlowNodeFactor    float64       // executor 0 runs this much slower; <=1 disables
	PoolLimit         int           // prepared datasets retained in the backend's DataPool (default DefaultPoolLimit); size up for servers holding many sessions on one backend
}

// SparkLike returns the default configuration modelled on the thesis'
// deployment: 16 executors, 45 GB each, fast startup, in-memory shuffle.
func SparkLike() Config {
	return Config{
		Executors:         16,
		CoresPerExecutor:  24,
		Partitions:        384,
		MemoryPerExecutor: 45 << 30,
		NetBandwidth:      1 << 30,   // 1 GiB/s
		DiskBandwidth:     200 << 20, // 200 MiB/s
		StageOverhead:     100 * time.Millisecond,
		JobOverhead:       300 * time.Millisecond,
	}
}

func (c Config) withDefaults() Config {
	if c.Executors <= 0 {
		c.Executors = 1
	}
	if c.CoresPerExecutor <= 0 {
		c.CoresPerExecutor = 1
	}
	if c.Partitions <= 0 {
		c.Partitions = c.Executors * c.CoresPerExecutor
	}
	if c.NetBandwidth <= 0 {
		c.NetBandwidth = 1 << 30
	}
	if c.DiskBandwidth <= 0 {
		c.DiskBandwidth = 200 << 20
	}
	if c.RealParallelism <= 0 {
		c.RealParallelism = runtime.NumCPU()
	}
	if c.MemoryPerExecutor <= 0 {
		c.MemoryPerExecutor = 1 << 40 // effectively unlimited
	}
	if c.PoolLimit <= 0 {
		c.PoolLimit = DefaultPoolLimit
	}
	return c
}

// SimBackend is the simulated-cluster backend. It owns a metrics registry,
// the simulated clock, and a spill directory for disk-backed blocks.
type SimBackend struct {
	conf Config
	reg  *metrics.Registry
	pool *DataPool

	simMu   sync.Mutex
	simTime time.Duration

	spill spiller
	cols  columnArena

	sem chan struct{} // limits real concurrency
}

// NewSimBackend builds a simulated cluster from conf (zero fields get
// defaults).
func NewSimBackend(conf Config) *SimBackend {
	conf = conf.withDefaults()
	return &SimBackend{
		conf: conf,
		reg:  metrics.NewRegistry(),
		pool: newDataPool(conf.PoolLimit),
		sem:  make(chan struct{}, conf.RealParallelism),
	}
}

// Name identifies the backend.
func (c *SimBackend) Name() string { return "sim" }

// Config returns the effective (defaulted) configuration.
func (c *SimBackend) Config() Config { return c.conf }

// Reg returns the metrics registry.
func (c *SimBackend) Reg() *metrics.Registry { return c.reg }

// Pool returns the prepared-dataset pool.
func (c *SimBackend) Pool() *DataPool { return c.pool }

// Close removes any spill files. The backend is unusable afterwards.
func (c *SimBackend) Close() error { return c.spill.cleanup() }

// SimTime returns the simulated cluster clock.
func (c *SimBackend) SimTime() time.Duration {
	c.simMu.Lock()
	defer c.simMu.Unlock()
	return c.simTime
}

// AdvanceSim adds d to the simulated clock (cost-model hooks).
func (c *SimBackend) AdvanceSim(d time.Duration) {
	if d <= 0 {
		return
	}
	c.simMu.Lock()
	c.simTime += d
	c.simMu.Unlock()
}

// TotalMemory returns the cluster-wide cache budget. Spark reserves ~60% of
// executor memory for storage; the same fraction applies here (Section 4.5).
func (c *SimBackend) TotalMemory() int64 {
	return int64(float64(c.conf.MemoryPerExecutor) * 0.6 * float64(c.conf.Executors))
}

// JobBoundary charges one job startup (used per map-reduce round; dominant
// for the Hive-like profile, small for Spark-like).
func (c *SimBackend) JobBoundary() {
	c.AdvanceSim(c.conf.JobOverhead)
}

// transferTime converts a byte volume to simulated network time.
func (c *SimBackend) transferTime(bytes int64) time.Duration {
	return time.Duration(float64(bytes) / c.conf.NetBandwidth * float64(time.Second))
}

// diskTime converts a byte volume to simulated disk time.
func (c *SimBackend) diskTime(bytes int64) time.Duration {
	return time.Duration(float64(bytes) / c.conf.DiskBandwidth * float64(time.Second))
}

// ChargeShuffle accounts for moving the given volume across the cluster:
// network transfer of the fraction leaving each node, plus a disk write and
// read when the configuration materializes shuffles (MapReduce-style).
func (c *SimBackend) ChargeShuffle(bytes int64, records int64) {
	c.reg.Add(metrics.CtrShuffleBytes, bytes)
	c.reg.Add(metrics.CtrShuffleRecords, records)
	remote := bytes
	if c.conf.Executors > 0 {
		remote = bytes * int64(c.conf.Executors-1) / int64(c.conf.Executors)
	}
	// The transfer is spread across executors pulling in parallel.
	per := remote / int64(c.conf.Executors)
	c.AdvanceSim(c.transferTime(per))
	if c.conf.ShuffleToDisk {
		c.AdvanceSim(c.diskTime(2 * bytes / int64(c.conf.Executors)))
		c.reg.Add(metrics.CtrSpillBytes, bytes)
	}
}

// Broadcast accounts for replicating bytes to every executor (Section 3.2's
// broadcast join replaces shuffling the big side with replicating the small
// side). Torrent-style broadcast pipelines across nodes, so the cost is one
// transfer of the payload, not one per executor.
func (c *SimBackend) Broadcast(bytes int64) {
	c.reg.Add(metrics.CtrBroadcastBytes, bytes)
	c.AdvanceSim(c.transferTime(bytes))
}

// Repartition accounts for a full redistribution of a dataset across the
// cluster, the cost Naive SIRUM pays per iteration to co-partition the join
// inputs (Section 3.2).
func (c *SimBackend) Repartition(bytes int64, records int64) {
	c.ChargeShuffle(bytes, records)
}

// ChargeGather accounts for collecting bytes to the driver: one network
// transfer to a single node.
func (c *SimBackend) ChargeGather(bytes int64) {
	c.AdvanceSim(c.transferTime(bytes))
}

// RunStage executes n tasks with bounded real parallelism, measures each
// task's wall duration, and advances the simulated clock by the makespan of
// scheduling those durations onto the virtual cluster. Task panics are
// captured and re-raised on the caller with stage context after all tasks
// finish.
func (c *SimBackend) RunStage(name string, n int, task func(i int)) {
	if n == 0 {
		c.AdvanceSim(c.conf.StageOverhead)
		return
	}
	durations := make([]time.Duration, n)
	panics := make([]any, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		c.sem <- struct{}{}
		go func(i int) {
			defer func() {
				if r := recover(); r != nil {
					panics[i] = r
				}
				<-c.sem
				wg.Done()
			}()
			start := time.Now()
			task(i)
			durations[i] = time.Since(start)
		}(i)
	}
	wg.Wait()
	for i, p := range panics {
		if p != nil {
			panic(fmt.Sprintf("engine: task %d of stage %q panicked: %v", i, name, p))
		}
	}
	c.reg.Add(metrics.CtrTasks, int64(n))
	c.reg.Add(metrics.CtrStages, 1)
	c.AdvanceSim(c.makespan(durations) + c.conf.StageOverhead)
}

// makespan list-schedules the task durations onto Executors×Cores virtual
// slots in task order, always choosing the earliest-available slot — the
// same greedy placement a dynamic scheduler converges to. SlowNodeFactor
// stretches tasks landing on executor 0, injecting the stragglers the weak-
// scaling experiment discusses (Section 5.7.2).
func (c *SimBackend) makespan(durations []time.Duration) time.Duration {
	slots := make([]time.Duration, c.conf.Executors*c.conf.CoresPerExecutor)
	for _, d := range durations {
		best := 0
		for s := 1; s < len(slots); s++ {
			if slots[s] < slots[best] {
				best = s
			}
		}
		if c.conf.SlowNodeFactor > 1 && best < c.conf.CoresPerExecutor {
			d = time.Duration(float64(d) * c.conf.SlowNodeFactor)
		}
		slots[best] += d
	}
	var mk time.Duration
	for _, s := range slots {
		if s > mk {
			mk = s
		}
	}
	return mk
}

// spillPath lazily creates the spill directory and returns a file path for
// the named block.
func (c *SimBackend) spillPath(name string) (string, error) { return c.spill.path(name) }

// chargeSpill accounts for writing a spilled block: counter plus simulated
// disk time.
func (c *SimBackend) chargeSpill(bytes int64) {
	c.reg.Add(metrics.CtrSpillBytes, bytes)
	c.AdvanceSim(c.diskTime(bytes))
}

// chargeSpillRead accounts for faulting a spilled block back in.
func (c *SimBackend) chargeSpillRead(bytes int64) {
	c.reg.Add(metrics.CtrSpillReads, bytes)
	c.AdvanceSim(c.diskTime(bytes))
}

// accountsBytes: the simulator prices operators by byte volume.
func (c *SimBackend) accountsBytes() bool { return true }

func (c *SimBackend) arena() *columnArena { return &c.cols }

// ChargeDiskRead accounts for loading a dataset from the distributed file
// system, spread across executors reading their partitions in parallel.
func (c *SimBackend) ChargeDiskRead(bytes int64) {
	c.AdvanceSim(c.diskTime(bytes / int64(c.conf.Executors)))
}
