package engine

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sirum/internal/metrics"
)

func testNative() *NativeBackend {
	return NewNativeBackend(Config{Executors: 4, CoresPerExecutor: 2, Partitions: 8})
}

func TestNativeRunStageExecutesAllTasksOnce(t *testing.T) {
	b := NewNativeBackend(Config{RealParallelism: 8})
	defer b.Close()
	const n = 10000
	counts := make([]atomic.Int32, n)
	b.RunStage("count", n, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("task %d ran %d times", i, got)
		}
	}
	if got := b.Reg().Counter(metrics.CtrTasks); got != n {
		t.Errorf("task counter = %d", got)
	}
	if got := b.Reg().Counter(metrics.CtrStages); got != 1 {
		t.Errorf("stage counter = %d", got)
	}
}

// TestNativeRunStageSkewedTasks gives the first worker's range all the slow
// tasks; work stealing must still complete every task exactly once well
// before a static schedule would.
func TestNativeRunStageSkewedTasks(t *testing.T) {
	b := NewNativeBackend(Config{RealParallelism: 4})
	defer b.Close()
	const n = 64
	counts := make([]atomic.Int32, n)
	b.RunStage("skew", n, func(i int) {
		if i < n/4 {
			time.Sleep(2 * time.Millisecond) // the first static range is slow
		}
		counts[i].Add(1)
	})
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("task %d ran %d times", i, got)
		}
	}
}

func TestNativeRunStageSingleWorker(t *testing.T) {
	b := NewNativeBackend(Config{RealParallelism: 1})
	defer b.Close()
	var order []int
	b.RunStage("serial", 5, func(i int) { order = append(order, i) })
	if len(order) != 5 {
		t.Fatalf("ran %d tasks", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Errorf("serial order[%d] = %d", i, v)
		}
	}
}

func TestNativeRunStagePanicPropagates(t *testing.T) {
	b := testNative()
	defer b.Close()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("task panic was swallowed")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "boom") || !strings.Contains(msg, "explode") {
			t.Errorf("panic message lacks context: %v", r)
		}
	}()
	b.RunStage("explode", 64, func(i int) {
		if i == 33 {
			panic("boom")
		}
	})
}

func TestNativeNoSimClock(t *testing.T) {
	b := testNative()
	defer b.Close()
	b.RunStage("s", 8, func(int) { time.Sleep(time.Millisecond) })
	b.ChargeShuffle(1<<20, 10)
	b.Broadcast(1 << 20)
	b.Repartition(1<<20, 10)
	b.ChargeDiskRead(1 << 30)
	b.ChargeGather(1 << 30)
	b.JobBoundary()
	if b.SimTime() != 0 {
		t.Errorf("native sim time = %v, want 0", b.SimTime())
	}
	if b.Reg().Counter(metrics.CtrShuffleRecords) != 10 {
		t.Errorf("shuffle records = %d", b.Reg().Counter(metrics.CtrShuffleRecords))
	}
	if b.Reg().Counter(metrics.CtrBroadcastBytes) != 1<<20 {
		t.Errorf("broadcast bytes = %d", b.Reg().Counter(metrics.CtrBroadcastBytes))
	}
	if b.Name() != "native" {
		t.Errorf("name = %q", b.Name())
	}
}

// TestNativeCacheSpills runs the cache under a budget smaller than the data
// on the native backend: spilling must work (real gob round trips) without a
// simulated clock.
func TestNativeCacheSpills(t *testing.T) {
	// 4 blocks of 1000 rows; budget below total so some spill.
	dims := [][]int32{make([]int32, 4000)}
	m := make([]float64, 4000)
	mhat := make([]float64, 4000)
	for i := range m {
		m[i] = float64(i)
		mhat[i] = 1
	}
	blocks := BlocksFromColumns(dims, m, mhat, 4)
	var perBlock int64 = blocks[0].Bytes()
	b := NewNativeBackend(Config{Executors: 1, MemoryPerExecutor: int64(float64(2*perBlock) / 0.6)})
	defer b.Close()
	cd, err := CacheTuples(b, blocks)
	if err != nil {
		t.Fatal(err)
	}
	var sum atomic.Int64
	if err := cd.Scan("scan", false, func(_ int, blk *TupleBlock) {
		var s float64
		for _, v := range blk.M {
			s += v
		}
		sum.Add(int64(s))
	}); err != nil {
		t.Fatal(err)
	}
	if want := int64(4000 * 3999 / 2); sum.Load() != want {
		t.Errorf("scan sum = %d, want %d", sum.Load(), want)
	}
	if b.Reg().Counter(metrics.CtrSpillBytes) == 0 {
		t.Error("no spill traffic under a tight budget")
	}
}

// TestShuffleByKeyBackendsAgree checks the native slice-bucket exchange and
// the simulated map-of-maps exchange produce identical merged contents with
// key-disjoint output partitions.
func TestShuffleByKeyBackendsAgree(t *testing.T) {
	parts := make([]map[string]int, 7)
	for i := range parts {
		parts[i] = make(map[string]int)
		for j := 0; j < 100; j++ {
			parts[i][string(rune('a'+j%26))+string(rune('a'+(i+j)%26))] += i*100 + j
		}
	}
	copyParts := func() []map[string]int {
		out := make([]map[string]int, len(parts))
		for i, p := range parts {
			out[i] = make(map[string]int, len(p))
			for k, v := range p {
				out[i][k] = v
			}
		}
		return out
	}
	merge := func(a, b int) int { return a + b }
	size := func(k string, _ int) int { return len(k) + 8 }

	sim := NewSimBackend(Config{Executors: 2, CoresPerExecutor: 2})
	defer sim.Close()
	nat := testNative()
	defer nat.Close()
	outSim := ShuffleByKey(sim, NewPColl(copyParts()), "x", 5, merge, size)
	outNat := ShuffleByKey(nat, NewPColl(copyParts()), "x", 5, merge, size)

	flatten := func(pc *PColl[map[string]int]) map[string]int {
		total := map[string]int{}
		for _, p := range pc.Parts() {
			for k, v := range p {
				if _, dup := total[k]; dup {
					t.Errorf("key %q in multiple output partitions", k)
				}
				total[k] = v
			}
		}
		return total
	}
	fs, fn := flatten(outSim), flatten(outNat)
	if len(fs) != len(fn) {
		t.Fatalf("key counts differ: sim %d native %d", len(fs), len(fn))
	}
	for k, v := range fs {
		if fn[k] != v {
			t.Errorf("key %q: sim %d native %d", k, v, fn[k])
		}
	}
	// Same partition assignment on both backends (same hash).
	for p := 0; p < outSim.NumParts(); p++ {
		for k := range outSim.Part(p) {
			if _, ok := outNat.Part(p)[k]; !ok {
				t.Errorf("key %q in sim partition %d but not native", k, p)
			}
		}
	}
}
