package engine

import (
	"sync"
	"time"

	"sirum/internal/metrics"
)

// QueryScope is a per-query view of a shared Backend. It delegates all
// execution — scheduling, cost charging, the simulated clock, spill files —
// to the underlying backend, but owns a private metrics registry, so
// counters and phase durations accumulated by one query never mix with
// another query running concurrently on the same backend. Counter-bearing
// charges are double-booked: the query's registry isolates one query, while
// the backend's registry keeps accumulating lifetime totals across all
// queries (the behaviour single-query callers always observed).
//
// Closing a scope is a no-op: a scope is a view, and tearing down the shared
// backend is its owner's job.
type QueryScope struct {
	base Backend
	reg  *metrics.Registry

	// borrowed tracks fork columns taken from the backend arena; Finish
	// returns them. The mutex covers concurrent borrows from parallel
	// fork stages, not concurrent use of the columns themselves — each
	// borrowed column belongs to exactly one block of this query's fork.
	borrowMu sync.Mutex
	borrowed [][]float64
	// scratch tracks live Scratch borrows (see BorrowScratch) the same way:
	// each structure belongs to exactly one partition of one stage of this
	// query, so the mutex only guards the bookkeeping. ReleaseScratch returns
	// one early; Finish sweeps the rest.
	scratch []Scratch
}

// NewQueryScope wraps b with a fresh private registry. Wrapping another
// scope attaches to its underlying backend, so scopes never chain.
func NewQueryScope(b Backend) *QueryScope {
	if s, ok := b.(*QueryScope); ok {
		b = s.base
	}
	return &QueryScope{base: b, reg: metrics.NewRegistry()}
}

// Base returns the shared backend the scope charges execution to.
func (s *QueryScope) Base() Backend { return s.base }

// Name identifies the underlying backend.
func (s *QueryScope) Name() string { return s.base.Name() }

// Config returns the underlying backend's effective configuration.
func (s *QueryScope) Config() Config { return s.base.Config() }

// Reg returns the query-private metrics registry.
func (s *QueryScope) Reg() *metrics.Registry { return s.reg }

// RunStage schedules on the shared backend and books the task/stage counters
// to the query.
func (s *QueryScope) RunStage(name string, n int, task func(i int)) {
	if n > 0 {
		s.reg.Add(metrics.CtrTasks, int64(n))
		s.reg.Add(metrics.CtrStages, 1)
	}
	s.base.RunStage(name, n, task)
}

// JobBoundary charges one job startup on the shared backend.
func (s *QueryScope) JobBoundary() { s.base.JobBoundary() }

// ChargeShuffle books the shuffle counters to the query and charges the
// shared backend.
func (s *QueryScope) ChargeShuffle(bytes, records int64) {
	if bytes > 0 {
		s.reg.Add(metrics.CtrShuffleBytes, bytes)
		if s.base.accountsBytes() && s.base.Config().ShuffleToDisk {
			s.reg.Add(metrics.CtrSpillBytes, bytes)
		}
	}
	s.reg.Add(metrics.CtrShuffleRecords, records)
	s.base.ChargeShuffle(bytes, records)
}

// Broadcast books the broadcast counter to the query and charges the shared
// backend.
func (s *QueryScope) Broadcast(bytes int64) {
	if bytes > 0 {
		s.reg.Add(metrics.CtrBroadcastBytes, bytes)
	}
	s.base.Broadcast(bytes)
}

// Repartition charges the shared backend, booking the traffic to the query
// under the backend's own policy (a shuffle when the backend prices bytes,
// free in-process on the native path).
func (s *QueryScope) Repartition(bytes, records int64) {
	if s.base.accountsBytes() {
		if bytes > 0 {
			s.reg.Add(metrics.CtrShuffleBytes, bytes)
		}
		s.reg.Add(metrics.CtrShuffleRecords, records)
	}
	s.base.Repartition(bytes, records)
}

// ChargeDiskRead charges the shared backend.
func (s *QueryScope) ChargeDiskRead(bytes int64) { s.base.ChargeDiskRead(bytes) }

// ChargeGather charges the shared backend.
func (s *QueryScope) ChargeGather(bytes int64) { s.base.ChargeGather(bytes) }

// SimTime returns the shared simulated clock. Under concurrent queries the
// clock interleaves all queries' charges; per-query simulated durations are
// only meaningful for queries run serially.
func (s *QueryScope) SimTime() time.Duration { return s.base.SimTime() }

// TotalMemory returns the shared cache budget.
func (s *QueryScope) TotalMemory() int64 { return s.base.TotalMemory() }

// Pool returns the shared prepared-dataset pool.
func (s *QueryScope) Pool() *DataPool { return s.base.Pool() }

// engineCounters are the counter names the concrete backends book on their
// own registry inside the execution methods (see e.g. NativeBackend.RunStage
// and ChargeShuffle): a scope's copies of these are double-booked per-query
// views of work the substrate already accounted for.
var engineCounters = map[string]bool{
	metrics.CtrTasks:          true,
	metrics.CtrStages:         true,
	metrics.CtrShuffleBytes:   true,
	metrics.CtrShuffleRecords: true,
	metrics.CtrBroadcastBytes: true,
	metrics.CtrSpillBytes:     true,
	metrics.CtrSpillReads:     true,
}

// Finish folds the scope's operator-level metrics — phase durations and the
// counters only operators book (candidates, scaling loops, emitted pairs,
// …) — into the shared backend's lifetime registry, so substrate-lifetime
// snapshots see the mining work of every query, not just the engine-level
// charges the backends book themselves. Call once when the query completes;
// engine-booked counters are excluded to avoid double counting.
func (s *QueryScope) Finish() {
	s.borrowMu.Lock()
	cols := s.borrowed
	s.borrowed = nil
	scr := s.scratch
	s.scratch = nil
	s.borrowMu.Unlock()
	if len(cols) > 0 {
		s.base.arena().put(cols)
	}
	for _, sc := range scr {
		s.base.arena().putScratch(sc)
	}
	base := s.base.Reg()
	for k, v := range s.reg.Counters() {
		if !engineCounters[k] {
			base.Add(k, v)
		}
	}
	for k, v := range s.reg.Phases() {
		base.AddPhase(k, v)
	}
	for k, v := range s.reg.SimPhases() {
		base.AddSimPhase(k, v)
	}
}

// Close is a no-op: the scope's owner does not own the backend.
func (s *QueryScope) Close() error { return nil }

func (s *QueryScope) spillPath(name string) (string, error) { return s.base.spillPath(name) }

func (s *QueryScope) chargeSpill(bytes int64) {
	s.reg.Add(metrics.CtrSpillBytes, bytes)
	s.base.chargeSpill(bytes)
}

func (s *QueryScope) chargeSpillRead(bytes int64) {
	s.reg.Add(metrics.CtrSpillReads, bytes)
	s.base.chargeSpillRead(bytes)
}

func (s *QueryScope) accountsBytes() bool { return s.base.accountsBytes() }

func (s *QueryScope) arena() *columnArena { return s.base.arena() }

// borrowColumn takes a length-n column from the backend arena and records it
// for return at Finish. The query's fork owns the column exclusively until
// then: the fork is dropped (mineScoped defers q.data.Drop before the
// caller's deferred Finish), and nothing retains fork blocks past the query.
func (s *QueryScope) borrowColumn(n int) []float64 {
	col := s.base.arena().get(n)
	s.borrowMu.Lock()
	s.borrowed = append(s.borrowed, col)
	s.borrowMu.Unlock()
	return col
}

// borrowScratch takes a recycled scratch structure from the backend arena and
// records it for return at Finish; nil when the arena has none free (the
// caller allocates and registers via trackScratch). Borrow traffic is booked
// on the query registry so the arena's hit rate is observable per query.
func (s *QueryScope) borrowScratch(hint int) Scratch {
	s.reg.Add(metrics.CtrScratchBorrows, 1)
	sc := s.base.arena().getScratch(hint)
	if sc == nil {
		return nil
	}
	s.reg.Add(metrics.CtrScratchReuses, 1)
	s.borrowMu.Lock()
	s.scratch = append(s.scratch, sc)
	s.borrowMu.Unlock()
	return sc
}

// trackScratch records a freshly allocated scratch structure for return at
// Finish.
func (s *QueryScope) trackScratch(sc Scratch) {
	if sc == nil {
		return
	}
	s.borrowMu.Lock()
	s.scratch = append(s.scratch, sc)
	s.borrowMu.Unlock()
}

// releaseScratch drops sc from the tracked borrows and returns it to the
// arena so the same query's later rounds can reuse it. Unknown structures are
// returned to the arena anyway — they were headed there at Finish regardless.
func (s *QueryScope) releaseScratch(sc Scratch) {
	if sc == nil {
		return
	}
	s.borrowMu.Lock()
	for i, have := range s.scratch {
		if have == sc {
			last := len(s.scratch) - 1
			s.scratch[i] = s.scratch[last]
			s.scratch[last] = nil
			s.scratch = s.scratch[:last]
			break
		}
	}
	s.borrowMu.Unlock()
	s.base.arena().putScratch(sc)
}
