package engine

import (
	"encoding/gob"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"sirum/internal/metrics"
)

// TupleBlock is one cached partition of the mining input: a columnar slice
// of tuples with their measure, live estimate and rule-coverage columns.
// Exported fields make blocks gob-encodable for the spill path. Once blocks
// may spill, all mutation must go through the block (a reloaded block no
// longer aliases the arrays it was built from).
type TupleBlock struct {
	Start int       // global row offset of this block
	Dims  [][]int32 // Dims[j][i] = dimension j of local row i
	M     []float64 // transformed measure
	Mhat  []float64 // current estimates
	BAW   int       // coverage bit-array words per tuple (0 until rules exist)
	BA    []uint64  // len = rows*BAW; tuple i owns BA[i*BAW:(i+1)*BAW]
}

// NumRows returns the block's row count.
func (b *TupleBlock) NumRows() int { return len(b.M) }

// Bytes estimates the block's memory footprint. Canonical prepare-once
// blocks carry no estimate column (Mhat is allocated per query by Fork), so
// only the columns actually present are charged against the cache budget.
func (b *TupleBlock) Bytes() int64 {
	rows := int64(b.NumRows())
	return rows*int64(len(b.Dims))*4 + int64(len(b.M))*8 + int64(len(b.Mhat))*8 + int64(len(b.BA))*8
}

// CachedData is a buffer pool over TupleBlocks with a backend-wide byte
// budget. Blocks beyond the budget are spilled to disk (gob) and faulted
// back in on access, evicting the least-recently-used resident block —
// write-back, since estimate columns mutate between scans. It reproduces
// the fits-in-memory vs. re-reads-from-HDFS behaviour of Section 4.5; the
// residency series feeds Figures 4.3 and 4.4.
type CachedData struct {
	b      Backend
	budget int64
	uid    int64 // distinguishes spill files of CachedData sharing a backend

	// allResident short-circuits the buffer pool: when every block fits in
	// the budget nothing can ever spill, so Get is a plain array read with
	// no locking. This is the common case for all experiments except the
	// memory-pressure ones.
	allResident bool

	mu        sync.Mutex
	blocks    []*TupleBlock // nil while spilled
	files     []string
	sizes     []int64
	dirty     []bool
	pins      []int // pinned blocks are never evicted (scan in progress)
	lastUsed  []int64
	useTick   int64
	resident  int64
	dropped   bool
	Residency *metrics.Series
}

// cachedDataSeq hands out the uids that keep spill file names of distinct
// CachedData apart: a long-lived backend now hosts many prepared datasets
// and per-query forks, which would otherwise collide on block-<i> names.
var cachedDataSeq atomic.Int64

// CacheTuples registers blocks with the backend's cache budget. Blocks are
// admitted in order; once the budget fills, later blocks and faulted-in
// blocks trigger evictions.
func CacheTuples(b Backend, blocks []*TupleBlock) (*CachedData, error) {
	cd := &CachedData{
		b:         b,
		budget:    b.TotalMemory(),
		uid:       cachedDataSeq.Add(1),
		blocks:    make([]*TupleBlock, len(blocks)),
		files:     make([]string, len(blocks)),
		sizes:     make([]int64, len(blocks)),
		dirty:     make([]bool, len(blocks)),
		pins:      make([]int, len(blocks)),
		lastUsed:  make([]int64, len(blocks)),
		Residency: metrics.NewSeries("rdd_resident_bytes"),
	}
	var total int64
	for i, b := range blocks {
		cd.sizes[i] = b.Bytes()
		total += cd.sizes[i]
	}
	if total <= cd.budget {
		cd.allResident = true
		copy(cd.blocks, blocks)
		cd.resident = total
		cd.Residency.Record(b.SimTime(), float64(total))
		return cd, nil
	}
	for i, b := range blocks {
		if err := cd.admit(i, b, true); err != nil {
			return nil, err
		}
	}
	return cd, nil
}

// NumBlocks returns the number of registered blocks.
func (cd *CachedData) NumBlocks() int { return len(cd.sizes) }

// ResidentBytes returns the bytes currently held in memory.
func (cd *CachedData) ResidentBytes() int64 {
	cd.mu.Lock()
	defer cd.mu.Unlock()
	return cd.resident
}

// Get returns block i, faulting it in from disk if spilled. The returned
// block may be evicted by a later Get; callers scan one block at a time and
// must not retain references across Get calls of other blocks.
func (cd *CachedData) Get(i int) (*TupleBlock, error) {
	if cd.allResident {
		return cd.blocks[i], nil
	}
	cd.mu.Lock()
	defer cd.mu.Unlock()
	if cd.dropped {
		return nil, fmt.Errorf("engine: read from dropped cache")
	}
	cd.useTick++
	cd.lastUsed[i] = cd.useTick
	if cd.blocks[i] != nil {
		return cd.blocks[i], nil
	}
	b, err := cd.load(i)
	if err != nil {
		return nil, err
	}
	if err := cd.admitLocked(i, b, false); err != nil {
		return nil, err
	}
	return b, nil
}

// MarkDirty records that block i's estimate column changed and must be
// written back if evicted.
func (cd *CachedData) MarkDirty(i int) {
	if cd.allResident {
		return // nothing ever spills, so dirtiness is irrelevant
	}
	cd.mu.Lock()
	cd.dirty[i] = true
	cd.mu.Unlock()
}

func (cd *CachedData) admit(i int, b *TupleBlock, initial bool) error {
	cd.mu.Lock()
	defer cd.mu.Unlock()
	cd.useTick++
	cd.lastUsed[i] = cd.useTick
	return cd.admitLocked(i, b, initial)
}

// admitLocked makes room for block i and installs it.
func (cd *CachedData) admitLocked(i int, b *TupleBlock, initial bool) error {
	for cd.resident+cd.sizes[i] > cd.budget {
		victim := -1
		for j := range cd.blocks {
			if j == i || cd.blocks[j] == nil || cd.pins[j] > 0 {
				continue
			}
			if victim < 0 || cd.lastUsed[j] < cd.lastUsed[victim] {
				victim = j
			}
		}
		if victim < 0 {
			// Nothing evictable: a single block larger than the budget is
			// admitted anyway (it must be scannable), matching caches that
			// overshoot rather than fail.
			break
		}
		if err := cd.evictLocked(victim); err != nil {
			return err
		}
	}
	cd.blocks[i] = b
	cd.resident += cd.sizes[i]
	if initial {
		cd.dirty[i] = true // never persisted yet
	}
	cd.Residency.Record(cd.b.SimTime(), float64(cd.resident))
	return nil
}

func (cd *CachedData) evictLocked(j int) error {
	b := cd.blocks[j]
	if cd.dirty[j] {
		if err := cd.store(j, b); err != nil {
			return err
		}
		cd.dirty[j] = false
	}
	cd.blocks[j] = nil
	cd.resident -= cd.sizes[j]
	cd.Residency.Record(cd.b.SimTime(), float64(cd.resident))
	return nil
}

// store spills block j to disk: real gob encode plus simulated disk time.
func (cd *CachedData) store(j int, b *TupleBlock) error {
	path := cd.files[j]
	if path == "" {
		var err error
		path, err = cd.b.spillPath(fmt.Sprintf("data%d-block-%d", cd.uid, j))
		if err != nil {
			return err
		}
		cd.files[j] = path
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("engine: spilling block %d: %w", j, err)
	}
	if err := gob.NewEncoder(f).Encode(b); err != nil {
		f.Close()
		return fmt.Errorf("engine: encoding block %d: %w", j, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	cd.b.chargeSpill(cd.sizes[j])
	return nil
}

// load faults block j back in from disk.
func (cd *CachedData) load(j int) (*TupleBlock, error) {
	if cd.files[j] == "" {
		return nil, fmt.Errorf("engine: block %d neither resident nor spilled", j)
	}
	f, err := os.Open(cd.files[j])
	if err != nil {
		return nil, fmt.Errorf("engine: reloading block %d: %w", j, err)
	}
	defer f.Close()
	var b TupleBlock
	if err := gob.NewDecoder(f).Decode(&b); err != nil {
		return nil, fmt.Errorf("engine: decoding block %d: %w", j, err)
	}
	cd.b.chargeSpillRead(cd.sizes[j])
	return &b, nil
}

// Acquire returns block i pinned: the block cannot be evicted until the
// matching Release, so concurrent scan tasks can safely read and mutate it.
func (cd *CachedData) Acquire(i int) (*TupleBlock, error) {
	if cd.allResident {
		return cd.blocks[i], nil
	}
	cd.mu.Lock()
	defer cd.mu.Unlock()
	if cd.dropped {
		return nil, fmt.Errorf("engine: read from dropped cache")
	}
	cd.useTick++
	cd.lastUsed[i] = cd.useTick
	if cd.blocks[i] != nil {
		cd.pins[i]++
		return cd.blocks[i], nil
	}
	b, err := cd.load(i)
	if err != nil {
		return nil, err
	}
	if err := cd.admitLocked(i, b, false); err != nil {
		return nil, err
	}
	cd.pins[i]++
	return b, nil
}

// Release unpins block i (must pair with a successful Acquire).
func (cd *CachedData) Release(i int) {
	if cd.allResident {
		return
	}
	cd.mu.Lock()
	if cd.pins[i] > 0 {
		cd.pins[i]--
	}
	cd.mu.Unlock()
}

// Scan visits every block in order, whether resident or spilled, running f
// on the backend's scheduler (one task per block). Blocks are pinned for
// the duration of their task, so concurrent tasks cannot evict each other's
// working blocks mid-mutation. If mutate is true all blocks are marked
// dirty. Errors from faulting abort the scan.
func (cd *CachedData) Scan(name string, mutate bool, f func(i int, b *TupleBlock)) error {
	var firstErr error
	var errMu sync.Mutex
	cd.b.RunStage(name, cd.NumBlocks(), func(i int) {
		b, err := cd.Acquire(i)
		if err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
			return
		}
		defer cd.Release(i)
		f(i, b)
		if mutate {
			cd.MarkDirty(i)
		}
	})
	return firstErr
}

// Fork returns a per-query view of the data: new blocks that share the
// immutable dimension and measure columns of cd's blocks but own a fresh
// estimate column initialised to 1 (the iterative-scaling starting point)
// and no coverage bits. Forks are what make prepare-once/query-many safe:
// concurrent queries scale their own Mhat/BA columns while reading one
// shared copy of the data. The fork is registered against b's cache budget
// (typically a per-query scope of the backend holding cd). Estimate columns
// are borrowed from the backend arena when b is a query scope; the scope's
// Finish returns them, which is safe because forks never outlive their query.
func (cd *CachedData) Fork(b Backend) (*CachedData, error) {
	blocks := make([]*TupleBlock, cd.NumBlocks())
	for i := range blocks {
		src, err := cd.Acquire(i)
		if err != nil {
			return nil, err
		}
		mhat := borrowColumn(b, src.NumRows())
		FillFloat64(mhat, 1)
		blocks[i] = &TupleBlock{Start: src.Start, Dims: src.Dims, M: src.M, Mhat: mhat}
		cd.Release(i)
	}
	return CacheTuples(b, blocks)
}

// TotalBytes returns the estimated footprint of all blocks, resident or not.
func (cd *CachedData) TotalBytes() int64 {
	var total int64
	for _, s := range cd.sizes {
		total += s
	}
	return total
}

// Drop releases the spill files (if any) and retires the cache. Spill-backed
// reads on a dropped cache fail with an error; when every block was
// resident the blocks remain readable (nothing to reclaim eagerly — forks
// and late readers sharing their columns stay valid, and the garbage
// collector does the rest). The pool only drops entries no query
// references, so queries never observe the transition mid-scan.
func (cd *CachedData) Drop() {
	cd.mu.Lock()
	defer cd.mu.Unlock()
	if cd.dropped {
		return
	}
	cd.dropped = true
	for j, f := range cd.files {
		if f != "" {
			os.Remove(f)
			cd.files[j] = ""
		}
	}
	if !cd.allResident {
		for j := range cd.blocks {
			cd.blocks[j] = nil
		}
		cd.resident = 0
	}
}

// SampleResidency appends a residency point stamped at the current simulated
// time (used by experiments to densify the series between transitions).
func (cd *CachedData) SampleResidency() {
	cd.mu.Lock()
	r := cd.resident
	cd.mu.Unlock()
	cd.Residency.Record(cd.b.SimTime(), float64(r))
}

// BlocksFromColumns splits aligned columnar data into blocks of the given
// partition count. mhat may be nil for canonical (prepare-once) blocks whose
// estimate columns are allocated per query by Fork.
func BlocksFromColumns(dims [][]int32, m, mhat []float64, parts int) []*TupleBlock {
	n := len(m)
	if parts <= 0 {
		parts = 1
	}
	if parts > n && n > 0 {
		parts = n
	}
	if n == 0 {
		return []*TupleBlock{{Dims: make([][]int32, len(dims))}}
	}
	per := (n + parts - 1) / parts
	var out []*TupleBlock
	for start := 0; start < n; start += per {
		end := min(start+per, n)
		b := &TupleBlock{Start: start, M: m[start:end]}
		if mhat != nil {
			b.Mhat = mhat[start:end]
		}
		b.Dims = make([][]int32, len(dims))
		for j := range dims {
			b.Dims[j] = dims[j][start:end]
		}
		out = append(out, b)
	}
	return out
}
