// Package bench is the throughput campaign's measurement layer: canonical
// suites over the library's hot paths (mine, explore, append — cold vs
// prepared, sim vs native) and the serving path (an in-process sirumd under
// a loadgen storm), reported as a versioned JSON document that gets checked
// in per PR (BENCH_<schema>.json). Compare diffs two such documents and
// flags deltas beyond a tolerance, so absolute regressions are visible
// across the repository's history instead of only the relative speedup
// assertions the tests make.
package bench

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"time"

	"sirum"
	"sirum/internal/server"
)

// SchemaVersion stamps the report format; the checked-in trajectory file is
// named BENCH_<SchemaVersion>.json.
const SchemaVersion = 1

// Host fingerprints the machine a report was produced on. Numbers are only
// comparable across reports with matching fingerprints.
type Host struct {
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go_version"`
}

// SuiteResult is one measured case of one suite.
type SuiteResult struct {
	Suite string `json:"suite"` // mine | explore | append | serve
	Case  string `json:"case"`  // e.g. "prepared/native"
	Rows  int    `json:"rows"`  // dataset rows the case ran against
	Iters int    `json:"iters"` // measured operations

	QueriesPerSec float64 `json:"queries_per_sec"`
	RowsPerSec    float64 `json:"rows_per_sec,omitempty"`
	P50NS         int64   `json:"p50_ns"`
	P95NS         int64   `json:"p95_ns"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
}

// Report is the versioned bench document.
type Report struct {
	SchemaVersion int           `json:"schema_version"`
	CreatedAt     string        `json:"created_at"`
	GitRev        string        `json:"git_rev,omitempty"`
	Quick         bool          `json:"quick"`
	Host          Host          `json:"host"`
	Suites        []SuiteResult `json:"suites"`
}

// Config sizes a bench run.
type Config struct {
	// Quick shrinks every suite to CI smoke scale: the numbers stop being
	// comparable to full runs but the whole campaign finishes in seconds.
	Quick bool
	// Rows is the benchmark dataset size (default 10000; quick 1500).
	Rows int
	// Iters is the measured operations per case (default 5; quick 2).
	Iters int
	// ServeQueries sizes the serve-suite storm (default 64; quick 12).
	ServeQueries int
	// Suites restricts the run to the named suites (empty = all).
	Suites []string
	// Log, when set, receives one line per completed case.
	Log func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Rows <= 0 {
		if c.Quick {
			c.Rows = 1500
		} else {
			c.Rows = 10000
		}
	}
	if c.Iters <= 0 {
		if c.Quick {
			c.Iters = 2
		} else {
			c.Iters = 5
		}
	}
	if c.ServeQueries <= 0 {
		if c.Quick {
			c.ServeQueries = 12
		} else {
			c.ServeQueries = 64
		}
	}
	if c.Log == nil {
		c.Log = func(string, ...any) {}
	}
	return c
}

func (c Config) wants(suite string) bool {
	if len(c.Suites) == 0 {
		return true
	}
	for _, s := range c.Suites {
		if strings.EqualFold(strings.TrimSpace(s), suite) {
			return true
		}
	}
	return false
}

// measurement is what the timing loop hands back for one case.
type measurement struct {
	iters         int
	queriesPerSec float64
	p50, p95      time.Duration
	bytesPerOp    int64
	allocsPerOp   int64
}

// measure times iters calls of op after one untimed warmup, reporting exact
// percentiles from the full sorted sample and per-op allocation deltas from
// runtime.MemStats.
func measure(iters int, op func() error) (measurement, error) {
	if err := op(); err != nil {
		return measurement{}, err
	}
	lat := make([]time.Duration, 0, iters)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		t0 := time.Now()
		if err := op(); err != nil {
			return measurement{}, err
		}
		lat = append(lat, time.Since(t0))
	}
	total := time.Since(start)
	runtime.ReadMemStats(&after)

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	m := measurement{
		iters:       iters,
		p50:         quantile(lat, 0.50),
		p95:         quantile(lat, 0.95),
		bytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(iters),
		allocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(iters),
	}
	if total > 0 {
		m.queriesPerSec = float64(iters) / total.Seconds()
	}
	return m, nil
}

// quantile returns the exact q-quantile of a sorted sample with linear
// interpolation between adjacent order statistics.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := q * float64(len(sorted)-1)
	lo := int(rank)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := rank - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[lo+1]-sorted[lo]))
}

func (m measurement) result(suite, kase string, rows int) SuiteResult {
	r := SuiteResult{
		Suite: suite, Case: kase, Rows: rows, Iters: m.iters,
		QueriesPerSec: m.queriesPerSec,
		P50NS:         int64(m.p50), P95NS: int64(m.p95),
		BytesPerOp: m.bytesPerOp, AllocsPerOp: m.allocsPerOp,
	}
	if rows > 0 {
		r.RowsPerSec = m.queriesPerSec * float64(rows)
	}
	return r
}

// benchDataset is the generator every suite draws from: the thesis' income
// census table, the dataset the paper benchmarks most.
const benchDataset = "income"

// Run executes the configured suites and assembles the report.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{
		SchemaVersion: SchemaVersion,
		CreatedAt:     time.Now().UTC().Format(time.RFC3339),
		GitRev:        gitRev(),
		Quick:         cfg.Quick,
		Host: Host{
			OS: runtime.GOOS, Arch: runtime.GOARCH,
			CPUs: runtime.NumCPU(), GoVersion: runtime.Version(),
		},
	}

	ds, err := sirum.Generate(benchDataset, cfg.Rows, 1)
	if err != nil {
		return nil, err
	}
	mineOpt := func(backend sirum.Backend) sirum.Options {
		return sirum.Options{K: 3, SampleSize: 16, Seed: 1, Backend: backend}
	}

	addCase := func(suite, kase string, rows int, op func() error) error {
		m, err := measure(cfg.Iters, op)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", suite, kase, err)
		}
		res := m.result(suite, kase, rows)
		rep.Suites = append(rep.Suites, res)
		cfg.Log("%-8s %-16s %8.2f q/s  p95 %-10v %8d allocs/op", suite, kase, res.QueriesPerSec, time.Duration(res.P95NS).Round(time.Microsecond), res.AllocsPerOp)
		return nil
	}
	prepare := func(backend sirum.Backend) (*sirum.Prepared, error) {
		return ds.Prepare(sirum.PrepareOptions{SampleSize: 16, Seed: 1, Backend: backend})
	}

	backends := []sirum.Backend{sirum.BackendSim, sirum.BackendNative}
	if cfg.wants("mine") {
		for _, be := range backends {
			if err := addCase("mine", "cold/"+string(be), cfg.Rows, func() error {
				_, err := ds.Mine(mineOpt(be))
				return err
			}); err != nil {
				return nil, err
			}
			p, err := prepare(be)
			if err != nil {
				return nil, err
			}
			err = addCase("mine", "prepared/"+string(be), cfg.Rows, func() error {
				_, err := p.Mine(mineOpt(be))
				return err
			})
			p.Close()
			if err != nil {
				return nil, err
			}
		}
	}

	if cfg.wants("explore") {
		expOpt := sirum.ExploreOptions{K: 3, GroupBys: 1, Seed: 1, Backend: sirum.BackendNative}
		if err := addCase("explore", "cold/native", cfg.Rows, func() error {
			_, err := ds.Explore(expOpt)
			return err
		}); err != nil {
			return nil, err
		}
		p, err := prepare(sirum.BackendNative)
		if err != nil {
			return nil, err
		}
		err = addCase("explore", "prepared/native", cfg.Rows, func() error {
			_, err := p.Explore(expOpt)
			return err
		})
		p.Close()
		if err != nil {
			return nil, err
		}
	}

	if cfg.wants("append") {
		batchRows := cfg.Rows / 20
		if batchRows < 50 {
			batchRows = 50
		}
		for _, be := range backends {
			p, err := prepare(be)
			if err != nil {
				return nil, err
			}
			seed := int64(2)
			err = addCase("append", "prepared/"+string(be), batchRows, func() error {
				batch, err := sirum.Generate(benchDataset, batchRows, seed)
				seed++
				if err != nil {
					return err
				}
				_, err = p.Append(batch, mineOpt(be))
				return err
			})
			p.Close()
			if err != nil {
				return nil, err
			}
		}
	}

	if cfg.wants("serve") {
		res, err := runServe(cfg)
		if err != nil {
			return nil, err
		}
		rep.Suites = append(rep.Suites, *res)
		cfg.Log("%-8s %-16s %8.2f q/s  p95 %-10v %8d allocs/op", res.Suite, res.Case, res.QueriesPerSec, time.Duration(res.P95NS).Round(time.Microsecond), res.AllocsPerOp)
	}
	return rep, nil
}

// runServe boots an in-process sirumd and storms it with the load generator:
// the serve numbers cover the whole serving path — HTTP, admission, result
// cache, mining — in one process, so MemStats deltas mean allocations per
// served query.
func runServe(cfg Config) (*SuiteResult, error) {
	srv := server.New(server.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	lrep, err := server.RunLoad(server.LoadConfig{
		BaseURL: ts.URL,
		Dataset: benchDataset,
		Rows:    cfg.Rows,
		Queries: cfg.ServeQueries,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if lrep.Errors > 0 {
		return nil, fmt.Errorf("serve: %d/%d queries failed: %s", lrep.Errors, lrep.Queries, lrep.FirstError)
	}
	return &SuiteResult{
		Suite: "serve", Case: "storm/native", Rows: cfg.Rows, Iters: lrep.Queries,
		QueriesPerSec: lrep.Throughput,
		P50NS:         int64(lrep.P50), P95NS: int64(lrep.P95),
		BytesPerOp: lrep.BytesPerQuery, AllocsPerOp: lrep.AllocsPerQuery,
	}, nil
}

// gitRev best-effort resolves the working tree's HEAD for provenance; a
// report produced outside a git checkout simply omits it.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// Validate checks a report against the schema contract; Compare and CI use
// it before trusting a document.
func Validate(r *Report) error {
	if r.SchemaVersion != SchemaVersion {
		return fmt.Errorf("bench: schema version %d, want %d", r.SchemaVersion, SchemaVersion)
	}
	if _, err := time.Parse(time.RFC3339, r.CreatedAt); err != nil {
		return fmt.Errorf("bench: bad created_at %q: %w", r.CreatedAt, err)
	}
	if r.Host.OS == "" || r.Host.Arch == "" || r.Host.CPUs <= 0 || r.Host.GoVersion == "" {
		return fmt.Errorf("bench: incomplete host fingerprint %+v", r.Host)
	}
	if len(r.Suites) == 0 {
		return fmt.Errorf("bench: no suites")
	}
	seen := map[string]bool{}
	for i, s := range r.Suites {
		id := s.Suite + "/" + s.Case
		switch {
		case s.Suite == "" || s.Case == "":
			return fmt.Errorf("bench: suite %d has empty suite/case", i)
		case seen[id]:
			return fmt.Errorf("bench: duplicate case %s", id)
		case s.Iters <= 0:
			return fmt.Errorf("bench: %s: iters = %d", id, s.Iters)
		case s.QueriesPerSec <= 0:
			return fmt.Errorf("bench: %s: queries_per_sec = %g", id, s.QueriesPerSec)
		case s.P50NS < 0 || s.P95NS < s.P50NS:
			return fmt.Errorf("bench: %s: p50 %d / p95 %d out of order", id, s.P50NS, s.P95NS)
		case s.BytesPerOp < 0 || s.AllocsPerOp < 0:
			return fmt.Errorf("bench: %s: negative allocation stats", id)
		}
		seen[id] = true
	}
	return nil
}

// WriteFile writes the report as indented JSON.
func WriteFile(path string, r *Report) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadFile loads and validates a report.
func ReadFile(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := Validate(&r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
