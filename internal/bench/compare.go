package bench

import (
	"fmt"
	"io"
	"time"
)

// Delta is one metric compared across two reports for one suite case.
type Delta struct {
	Suite  string  `json:"suite"`
	Case   string  `json:"case"`
	Metric string  `json:"metric"` // queries_per_sec | p95_ns | allocs_per_op
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	// Ratio is new/old (0 when old is 0).
	Ratio float64 `json:"ratio"`
	// Regressed marks a delta beyond the tolerance in the bad direction
	// (throughput down, latency or allocations up).
	Regressed bool `json:"regressed"`
}

// Comparison is the outcome of diffing two reports.
type Comparison struct {
	Deltas []Delta
	// OnlyOld / OnlyNew list cases present in one report but not the other.
	OnlyOld, OnlyNew []string
	// HostMatch is false when the fingerprints differ — numbers are then
	// indicative only.
	HostMatch bool
}

// Regressions returns the flagged deltas.
func (c *Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Regressed {
			out = append(out, d)
		}
	}
	return out
}

// AllocRegressions returns the flagged allocs_per_op deltas — the subset a
// CI gate can block on. Allocation counts are deterministic for a given
// code path, so unlike latency and throughput (which wobble with the
// runner's load) they only regress when the code really allocates more.
func (c *Comparison) AllocRegressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Regressed && d.Metric == "allocs_per_op" {
			out = append(out, d)
		}
	}
	return out
}

// Compare diffs two reports case by case. tol is the relative tolerance
// (e.g. 0.15 flags >15% moves in the bad direction); quick reports compare
// like any other, the caller decides what to do with the flags.
func Compare(old, new *Report, tol float64) *Comparison {
	cmp := &Comparison{
		HostMatch: old.Host == new.Host,
	}
	oldByID := map[string]SuiteResult{}
	for _, s := range old.Suites {
		oldByID[s.Suite+"/"+s.Case] = s
	}
	newSeen := map[string]bool{}
	for _, n := range new.Suites {
		id := n.Suite + "/" + n.Case
		newSeen[id] = true
		o, ok := oldByID[id]
		if !ok {
			cmp.OnlyNew = append(cmp.OnlyNew, id)
			continue
		}
		cmp.Deltas = append(cmp.Deltas,
			// Throughput regresses downward; latency and allocations upward.
			delta(n.Suite, n.Case, "queries_per_sec", o.QueriesPerSec, n.QueriesPerSec, tol, false),
			delta(n.Suite, n.Case, "p95_ns", float64(o.P95NS), float64(n.P95NS), tol, true),
			delta(n.Suite, n.Case, "allocs_per_op", float64(o.AllocsPerOp), float64(n.AllocsPerOp), tol, true),
		)
	}
	for _, s := range old.Suites {
		if id := s.Suite + "/" + s.Case; !newSeen[id] {
			cmp.OnlyOld = append(cmp.OnlyOld, id)
		}
	}
	return cmp
}

func delta(suite, kase, metric string, o, n, tol float64, upIsBad bool) Delta {
	d := Delta{Suite: suite, Case: kase, Metric: metric, Old: o, New: n}
	if o > 0 {
		d.Ratio = n / o
		if upIsBad {
			d.Regressed = d.Ratio > 1+tol
		} else {
			d.Regressed = d.Ratio < 1-tol
		}
	}
	return d
}

// Render writes the comparison as a terminal table, regressions marked.
func (c *Comparison) Render(w io.Writer) {
	if !c.HostMatch {
		fmt.Fprintln(w, "note: host fingerprints differ; deltas are indicative only")
	}
	fmt.Fprintf(w, "%-8s %-18s %-16s %14s %14s %8s\n", "suite", "case", "metric", "old", "new", "ratio")
	for _, d := range c.Deltas {
		mark := ""
		if d.Regressed {
			mark = "  <-- REGRESSED"
		}
		fmt.Fprintf(w, "%-8s %-18s %-16s %14s %14s %7.2fx%s\n",
			d.Suite, d.Case, d.Metric, fmtMetric(d.Metric, d.Old), fmtMetric(d.Metric, d.New), d.Ratio, mark)
	}
	for _, id := range c.OnlyOld {
		fmt.Fprintf(w, "only in old: %s\n", id)
	}
	for _, id := range c.OnlyNew {
		fmt.Fprintf(w, "only in new: %s\n", id)
	}
	if reg := c.Regressions(); len(reg) > 0 {
		fmt.Fprintf(w, "%d metric(s) regressed beyond tolerance\n", len(reg))
	} else {
		fmt.Fprintln(w, "no regressions beyond tolerance")
	}
}

func fmtMetric(metric string, v float64) string {
	switch metric {
	case "p95_ns":
		return time.Duration(v).Round(time.Microsecond).String()
	case "queries_per_sec":
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
