package bench

import (
	"strings"
	"testing"
	"time"
)

func sampleReport() *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		CreatedAt:     "2026-01-01T00:00:00Z",
		Host:          Host{OS: "linux", Arch: "amd64", CPUs: 8, GoVersion: "go1.24"},
		Suites: []SuiteResult{
			{Suite: "mine", Case: "prepared/native", Rows: 1000, Iters: 5,
				QueriesPerSec: 100, P50NS: 9e6, P95NS: 12e6, BytesPerOp: 1 << 20, AllocsPerOp: 5000},
			{Suite: "serve", Case: "storm/native", Rows: 1000, Iters: 64,
				QueriesPerSec: 50, P50NS: 15e6, P95NS: 40e6, BytesPerOp: 2 << 20, AllocsPerOp: 9000},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(sampleReport()); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	cases := map[string]func(*Report){
		"schema":     func(r *Report) { r.SchemaVersion = 99 },
		"created_at": func(r *Report) { r.CreatedAt = "yesterday" },
		"host":       func(r *Report) { r.Host.CPUs = 0 },
		"no suites":  func(r *Report) { r.Suites = nil },
		"dup case":   func(r *Report) { r.Suites[1] = r.Suites[0] },
		"iters":      func(r *Report) { r.Suites[0].Iters = 0 },
		"qps":        func(r *Report) { r.Suites[0].QueriesPerSec = 0 },
		"p95<p50":    func(r *Report) { r.Suites[0].P95NS = r.Suites[0].P50NS - 1 },
	}
	for name, breakIt := range cases {
		r := sampleReport()
		breakIt(r)
		if Validate(r) == nil {
			t.Errorf("%s: broken report validated", name)
		}
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	oldRep, newRep := sampleReport(), sampleReport()
	newRep.Suites[0].QueriesPerSec = 50  // -50% throughput: regression
	newRep.Suites[1].AllocsPerOp = 20000 // +122% allocs: regression
	newRep.Suites[1].QueriesPerSec = 80  // +60% throughput: improvement, not flagged

	cmp := Compare(oldRep, newRep, 0.15)
	if !cmp.HostMatch {
		t.Error("identical hosts reported as mismatched")
	}
	reg := cmp.Regressions()
	if len(reg) != 2 {
		t.Fatalf("got %d regressions, want 2: %+v", len(reg), reg)
	}
	want := map[string]string{"mine/prepared/native": "queries_per_sec", "serve/storm/native": "allocs_per_op"}
	for _, d := range reg {
		if want[d.Suite+"/"+d.Case] != d.Metric {
			t.Errorf("unexpected regression %s/%s %s", d.Suite, d.Case, d.Metric)
		}
	}

	var sb strings.Builder
	cmp.Render(&sb)
	if !strings.Contains(sb.String(), "REGRESSED") || !strings.Contains(sb.String(), "2 metric(s) regressed") {
		t.Errorf("render missing regression marks:\n%s", sb.String())
	}
}

func TestCompareDisjointCases(t *testing.T) {
	oldRep, newRep := sampleReport(), sampleReport()
	newRep.Suites = newRep.Suites[:1]
	oldRep.Suites = oldRep.Suites[1:]
	cmp := Compare(oldRep, newRep, 0.15)
	if len(cmp.Deltas) != 0 {
		t.Errorf("disjoint reports produced deltas: %+v", cmp.Deltas)
	}
	if len(cmp.OnlyOld) != 1 || len(cmp.OnlyNew) != 1 {
		t.Errorf("OnlyOld %v OnlyNew %v", cmp.OnlyOld, cmp.OnlyNew)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []time.Duration{10, 20, 30, 40}
	if got := quantile(sorted, 0.5); got != 25 {
		t.Errorf("p50 = %v, want 25 (interpolated)", got)
	}
	if got := quantile(sorted, 1.0); got != 40 {
		t.Errorf("p100 = %v, want 40", got)
	}
	if got := quantile(nil, 0.5); got != 0 {
		t.Errorf("empty sample = %v, want 0", got)
	}
}

func TestRoundTripFile(t *testing.T) {
	path := t.TempDir() + "/bench.json"
	rep := sampleReport()
	if err := WriteFile(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Suites) != len(rep.Suites) || got.Suites[0] != rep.Suites[0] {
		t.Errorf("round trip mutated the report")
	}
}

// TestRunTiny drives the real measurement loop end to end at toy scale.
func TestRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("bench run in -short mode")
	}
	rep, err := Run(Config{Quick: true, Rows: 300, Iters: 1, Suites: []string{"mine"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Suites) != 4 {
		t.Errorf("mine suite produced %d cases, want 4", len(rep.Suites))
	}
}
