// Package datagen builds the datasets used throughout the repository: the
// thesis' 14-tuple flight-delay running example (Table 1.1) exactly, and
// synthetic equivalents of the four evaluation datasets (Income, GDELT,
// SUSY, TLC) whose originals are not redistributable here. See DESIGN.md §1
// for the substitution rationale.
package datagen

import "sirum/internal/dataset"

// Flights returns the exact flight-delay relation of Table 1.1 of the
// thesis: 14 tuples, dimension attributes (Day, Origin, Destination) and
// measure attribute Delay. The thesis' worked examples (the m̂ columns of
// Table 1.1, the rule set of Table 1.2, the RCT of Table 4.1) are golden
// tests over this dataset.
func Flights() *dataset.Dataset {
	b := dataset.NewBuilder(dataset.Schema{
		DimNames:    []string{"Day", "Origin", "Destination"},
		MeasureName: "Delay",
	})
	rows := []struct {
		day, origin, dest string
		delay             float64
	}{
		{"Fri", "SF", "London", 20},
		{"Fri", "London", "LA", 16},
		{"Sun", "Tokyo", "Frankfurt", 10},
		{"Sun", "Chicago", "London", 15},
		{"Sat", "Beijing", "Frankfurt", 13},
		{"Sat", "Frankfurt", "London", 19},
		{"Tue", "Chicago", "LA", 5},
		{"Wed", "London", "Chicago", 6},
		{"Thu", "SF", "Frankfurt", 15},
		{"Mon", "Beijing", "SF", 4},
		{"Mon", "SF", "London", 7},
		{"Mon", "SF", "Frankfurt", 5},
		{"Mon", "Tokyo", "Beijing", 6},
		{"Mon", "Frankfurt", "Tokyo", 4},
	}
	for _, r := range rows {
		if err := b.Add([]string{r.day, r.origin, r.dest}, r.delay); err != nil {
			panic(err) // unreachable: fixed-arity literals
		}
	}
	return b.MustBuild()
}
