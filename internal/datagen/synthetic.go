package datagen

import (
	"fmt"
	"math/rand"

	"sirum/internal/dataset"
	"sirum/internal/stats"
)

// DimSpec describes one synthetic dimension attribute.
type DimSpec struct {
	Name    string
	Domain  int     // number of distinct values
	Skew    float64 // Zipf exponent; <=1 gives near-uniform draws
	Uniform bool    // draw uniformly instead of Zipf
}

// PlantedRule injects structure for the miner to find: tuples matching the
// conjunction get their measure drawn from a shifted distribution, so the
// rule carries real information about the measure.
type PlantedRule struct {
	// Attrs maps dimension index to the value code the rule fixes.
	Attrs map[int]int32
	// Shift is added to the measure of matching tuples (binary measures
	// interpret Shift as an increase of the success probability).
	Shift float64
}

// Spec describes a synthetic dataset.
type Spec struct {
	Name    string
	Rows    int
	Dims    []DimSpec
	Measure MeasureSpec
	Planted []PlantedRule
	Seed    int64
}

// MeasureKind selects the measure attribute's distribution.
type MeasureKind int

const (
	// MeasureBinary draws 0/1 with a base probability (Income, SUSY).
	MeasureBinary MeasureKind = iota
	// MeasureCounts draws non-negative heavy-tailed counts (GDELT mentions).
	MeasureCounts
	// MeasurePositive draws positive continuous values (TLC payments).
	MeasurePositive
)

// MeasureSpec describes the measure attribute.
type MeasureSpec struct {
	Name string
	Kind MeasureKind
	Base float64 // base probability (binary) or location (counts/positive)
}

// Generate materializes the spec into a dataset.
func Generate(spec Spec) (*dataset.Dataset, error) {
	if spec.Rows < 0 {
		return nil, fmt.Errorf("datagen: negative row count %d", spec.Rows)
	}
	if len(spec.Dims) == 0 {
		return nil, fmt.Errorf("datagen: no dimension attributes")
	}
	r := stats.NewRand(spec.Seed)
	names := make([]string, len(spec.Dims))
	for j, dim := range spec.Dims {
		names[j] = dim.Name
	}
	b := dataset.NewBuilder(dataset.Schema{DimNames: names, MeasureName: spec.Measure.Name})
	// Pre-register domains so codes are dense and stable across runs.
	for j, dim := range spec.Dims {
		if dim.Domain <= 0 {
			return nil, fmt.Errorf("datagen: dimension %q has empty domain", dim.Name)
		}
		for v := 0; v < dim.Domain; v++ {
			b.Dict(j).Code(fmt.Sprintf("%s_%d", dim.Name, v))
		}
	}
	samplers := make([]*stats.Zipf, len(spec.Dims))
	for j, dim := range spec.Dims {
		if !dim.Uniform {
			skew := dim.Skew
			if skew <= 1 {
				skew = 1.3
			}
			samplers[j] = stats.NewZipf(r, skew, dim.Domain)
		}
	}
	codes := make([]int32, len(spec.Dims))
	for i := 0; i < spec.Rows; i++ {
		for j, dim := range spec.Dims {
			if dim.Uniform || samplers[j] == nil {
				codes[j] = int32(r.Intn(dim.Domain))
			} else {
				codes[j] = int32(samplers[j].Draw())
			}
		}
		shift := 0.0
		for _, p := range spec.Planted {
			match := true
			for attr, val := range p.Attrs {
				if codes[attr] != val {
					match = false
					break
				}
			}
			if match {
				shift += p.Shift
			}
		}
		m := drawMeasure(r, spec.Measure, shift)
		if err := b.AddCodes(codes, m); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// MustGenerate is Generate for program-controlled specs.
func MustGenerate(spec Spec) *dataset.Dataset {
	ds, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return ds
}

func drawMeasure(r *rand.Rand, ms MeasureSpec, shift float64) float64 {
	switch ms.Kind {
	case MeasureBinary:
		p := ms.Base + shift
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		if r.Float64() < p {
			return 1
		}
		return 0
	case MeasureCounts:
		// Geometric-ish heavy tail around Base.
		v := ms.Base * (1 + r.ExpFloat64())
		return float64(int(v + shift))
	default: // MeasurePositive
		v := ms.Base + shift + r.NormFloat64()*ms.Base*0.3
		if v < 0 {
			v = 0
		}
		return v
	}
}

// plant builds a PlantedRule literal tersely.
func plant(shift float64, pairs ...int32) PlantedRule {
	p := PlantedRule{Attrs: map[int]int32{}, Shift: shift}
	for i := 0; i+1 < len(pairs); i += 2 {
		p.Attrs[int(pairs[i])] = pairs[i+1]
	}
	return p
}

// Income returns a synthetic stand-in for the IPUMS census dataset of the
// thesis: 9 skewed categorical demographic attributes and a binary
// high-income indicator, with household-profile rules planted at several
// granularities. The real dataset has ~1.5M rows; pass the row count that
// fits the experiment's scale.
func Income(rows int, seed int64) *dataset.Dataset {
	dims := []DimSpec{
		{Name: "children", Domain: 8, Skew: 1.6},
		{Name: "marital", Domain: 6, Skew: 1.4},
		{Name: "education", Domain: 12, Skew: 1.3},
		{Name: "occupation", Domain: 25, Skew: 1.4},
		{Name: "sex", Domain: 2, Uniform: true},
		{Name: "age_band", Domain: 10, Skew: 1.2},
		{Name: "region", Domain: 9, Skew: 1.3},
		{Name: "housing", Domain: 4, Skew: 1.5},
		{Name: "veteran", Domain: 2, Skew: 2.0},
	}
	return MustGenerate(Spec{
		Name: "income", Rows: rows, Dims: dims, Seed: seed,
		Measure: MeasureSpec{Name: "high_income", Kind: MeasureBinary, Base: 0.18},
		Planted: []PlantedRule{
			plant(0.45, 2, 1, 3, 0), // education band + top occupation
			plant(0.30, 5, 3),       // an age band
			plant(-0.12, 1, 2),      // a marital status
			plant(0.25, 6, 0, 7, 1), // region + housing
			plant(0.35, 2, 0),       // highest education
			plant(-0.10, 0, 4),      // many children
		},
	})
}

// GDELT returns a synthetic stand-in for the GDELT event extract: 9
// categorical event attributes (CAMEO-like domains) and a heavy-tailed
// numeric measure (the number of mentions of the event).
func GDELT(rows int, seed int64) *dataset.Dataset {
	dims := []DimSpec{
		{Name: "actor1_country", Domain: 40, Skew: 1.5},
		{Name: "actor1_type", Domain: 12, Skew: 1.4},
		{Name: "is_root_event", Domain: 2, Skew: 1.8},
		{Name: "event_base_code", Domain: 20, Skew: 1.3},
		{Name: "event_class", Domain: 4, Skew: 1.2},
		{Name: "actor1_geo", Domain: 8, Skew: 1.3},
		{Name: "actor2_geo", Domain: 8, Skew: 1.3},
		{Name: "action_geo", Domain: 8, Skew: 1.3},
		{Name: "year_band", Domain: 6, Uniform: true},
	}
	return MustGenerate(Spec{
		Name: "gdelt", Rows: rows, Dims: dims, Seed: seed,
		Measure: MeasureSpec{Name: "mentions", Kind: MeasureCounts, Base: 4},
		Planted: []PlantedRule{
			plant(30, 0, 0, 4, 1), // top country + conflict class
			plant(18, 3, 2),       // a frequent base code
			plant(-2, 2, 1),       // non-root events
			plant(12, 1, 0, 5, 0), // media actor near top geo
			plant(25, 4, 3),       // rare event class
		},
	})
}

// SUSY returns a synthetic stand-in for the SUSY physics dataset: 18
// near-uniform dimension attributes of 3 buckets each (the thesis bucketizes
// the real-valued features into three bins) and a binary signal/background
// measure. The near-uniform 3-value domains are what drive the ancestor-
// generation blowup the FastAncestor experiments measure.
func SUSY(rows int, seed int64) *dataset.Dataset {
	dims := make([]DimSpec, 18)
	for j := range dims {
		dims[j] = DimSpec{Name: fmt.Sprintf("f%02d", j), Domain: 3, Uniform: true}
	}
	return MustGenerate(Spec{
		Name: "susy", Rows: rows, Dims: dims, Seed: seed,
		Measure: MeasureSpec{Name: "signal", Kind: MeasureBinary, Base: 0.42},
		Planted: []PlantedRule{
			plant(0.35, 0, 2, 1, 2),
			plant(0.28, 4, 0, 5, 0, 6, 0),
			plant(-0.20, 9, 1),
			plant(0.22, 12, 2, 15, 2),
			plant(0.15, 17, 0),
		},
	})
}

// TLC returns a synthetic stand-in for the NYC yellow-taxi trip records: 9
// trip attributes and the total payment as the measure. The real dataset has
// 1.08 billion rows; the thesis' TLC_2m … TLC_160m samples map to
// proportionally scaled row counts here.
func TLC(rows int, seed int64) *dataset.Dataset {
	dims := []DimSpec{
		{Name: "month", Domain: 12, Uniform: true},
		{Name: "passengers", Domain: 6, Skew: 1.7},
		{Name: "payment", Domain: 4, Skew: 1.4},
		{Name: "pickup_zone", Domain: 30, Skew: 1.3},
		{Name: "dropoff_zone", Domain: 30, Skew: 1.3},
		{Name: "hour_band", Domain: 8, Skew: 1.2},
		{Name: "weekday", Domain: 7, Uniform: true},
		{Name: "rate_code", Domain: 5, Skew: 1.8},
		{Name: "vendor", Domain: 2, Uniform: true},
	}
	return MustGenerate(Spec{
		Name: "tlc", Rows: rows, Dims: dims, Seed: seed,
		Measure: MeasureSpec{Name: "total_payment", Kind: MeasurePositive, Base: 14},
		Planted: []PlantedRule{
			plant(38, 7, 2),       // airport rate code
			plant(9, 3, 0, 5, 3),  // busy pickup zone at rush hour
			plant(-4, 2, 1),       // cash payments
			plant(15, 3, 1, 4, 1), // cross-town pair
			plant(6, 0, 11),       // December
		},
	})
}

// ByName returns a named evaluation dataset scaled to rows, for the CLI and
// the experiment harness. Known names: income, gdelt, susy, tlc, flights
// (rows ignored for flights).
func ByName(name string, rows int, seed int64) (*dataset.Dataset, error) {
	switch name {
	case "income":
		return Income(rows, seed), nil
	case "gdelt":
		return GDELT(rows, seed), nil
	case "susy":
		return SUSY(rows, seed), nil
	case "tlc":
		return TLC(rows, seed), nil
	case "flights":
		return Flights(), nil
	default:
		return nil, fmt.Errorf("datagen: unknown dataset %q (want income|gdelt|susy|tlc|flights)", name)
	}
}
