package datagen

import (
	"math"
	"testing"

	"sirum/internal/rule"
)

// TestFlightsMatchesTable11 pins the fixture against Table 1.1.
func TestFlightsMatchesTable11(t *testing.T) {
	ds := Flights()
	if ds.NumRows() != 14 || ds.NumDims() != 3 {
		t.Fatalf("rows=%d dims=%d", ds.NumRows(), ds.NumDims())
	}
	if ds.TotalMeasure() != 145 {
		t.Errorf("total delay = %v, want 145", ds.TotalMeasure())
	}
	if math.Abs(ds.MeanMeasure()-145.0/14.0) > 1e-12 {
		t.Errorf("mean = %v", ds.MeanMeasure())
	}
	if ds.DimValue(0, 0) != "Fri" || ds.DimValue(0, 1) != "SF" || ds.DimValue(0, 2) != "London" {
		t.Error("tuple 1 mismatch")
	}
	if ds.Measure[13] != 4 || ds.DimValue(13, 1) != "Frankfurt" {
		t.Error("tuple 14 mismatch")
	}
	if err := ds.Validate(); err != nil {
		t.Error(err)
	}
	sizes := ds.DomainSizes()
	if sizes[0] != 7 || sizes[1] != 6 || sizes[2] != 7 {
		t.Errorf("domain sizes = %v, want [7 6 7]", sizes)
	}
}

func TestGenerateValidates(t *testing.T) {
	if _, err := Generate(Spec{Rows: -1, Dims: []DimSpec{{Name: "a", Domain: 2}}}); err == nil {
		t.Error("negative rows accepted")
	}
	if _, err := Generate(Spec{Rows: 10}); err == nil {
		t.Error("no dims accepted")
	}
	if _, err := Generate(Spec{Rows: 10, Dims: []DimSpec{{Name: "a", Domain: 0}}}); err == nil {
		t.Error("empty domain accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Income(500, 7)
	b := Income(500, 7)
	if a.NumRows() != 500 {
		t.Fatalf("rows = %d", a.NumRows())
	}
	for i := 0; i < a.NumRows(); i++ {
		if a.Measure[i] != b.Measure[i] {
			t.Fatal("same seed produced different measures")
		}
		for j := 0; j < a.NumDims(); j++ {
			if a.Dims[j][i] != b.Dims[j][i] {
				t.Fatal("same seed produced different dims")
			}
		}
	}
	c := Income(500, 8)
	same := true
	for i := 0; i < c.NumRows() && same; i++ {
		if a.Measure[i] != c.Measure[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical measure columns")
	}
}

func TestDatasetShapes(t *testing.T) {
	cases := []struct {
		name   string
		rows   int
		dims   int
		binary bool
	}{
		{"income", 400, 9, true},
		{"gdelt", 400, 9, false},
		{"susy", 400, 18, true},
		{"tlc", 400, 9, false},
	}
	for _, c := range cases {
		ds, err := ByName(c.name, c.rows, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ds.NumRows() != c.rows || ds.NumDims() != c.dims {
			t.Errorf("%s: rows=%d dims=%d", c.name, ds.NumRows(), ds.NumDims())
		}
		if err := ds.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
		if c.binary {
			for i, v := range ds.Measure {
				if v != 0 && v != 1 {
					t.Errorf("%s: measure[%d] = %v not binary", c.name, i, v)
					break
				}
			}
		}
		for _, v := range ds.Measure {
			if v < 0 {
				t.Errorf("%s: negative measure", c.name)
				break
			}
		}
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("nope", 10, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
	fl, err := ByName("flights", 999, 1)
	if err != nil || fl.NumRows() != 14 {
		t.Errorf("flights via ByName: %v rows=%d", err, fl.NumRows())
	}
}

// TestPlantedRuleIsInformative checks the planted structure is actually
// there: tuples matching a planted rule must have a visibly shifted average
// measure — otherwise the mining experiments would chase noise.
func TestPlantedRuleIsInformative(t *testing.T) {
	ds := Income(20000, 3)
	// Planted: education=2? plant(0.35, 2, 0) fixes dim 2 (education) to 0.
	r := rule.AllWildcards(9)
	r[2] = 0
	sum, count := r.SupportSums(ds)
	if count < 100 {
		t.Fatalf("planted rule support too small: %d", count)
	}
	overall := ds.MeanMeasure()
	avg := sum / float64(count)
	if avg < overall+0.15 {
		t.Errorf("planted rule avg %v not shifted above overall %v", avg, overall)
	}
}

func TestSUSYNearUniformBuckets(t *testing.T) {
	ds := SUSY(6000, 5)
	// Each attribute has 3 buckets; near-uniform means each bucket holds
	// roughly a third (unplanted attributes).
	counts := make([]int, 3)
	for _, v := range ds.Dims[10] {
		counts[v]++
	}
	for b, c := range counts {
		if c < 1400 || c > 2600 {
			t.Errorf("bucket %d count %d far from uniform", b, c)
		}
	}
}

func TestTLCMeasurePositive(t *testing.T) {
	ds := TLC(3000, 9)
	if ds.MeanMeasure() <= 0 {
		t.Error("TLC payments not positive on average")
	}
}
