// Package platform provides the execution profiles of Section 2.6/5.2: the
// same SIRUM dataflow executed under cost models matching Apache Spark
// (in-memory shuffle, fast task startup, full parallelism), Apache Hive on
// MapReduce (disk-materialized shuffles, multi-second job startup) and
// PostgreSQL (a single session confined to one process with no intra-query
// parallelism). The profiles differ only in engine.Config knobs, which is
// exactly how the thesis explains the performance gaps it measures.
package platform

import (
	"fmt"
	"time"

	"sirum/internal/engine"
)

// Kind names a data processing platform profile.
type Kind int

const (
	// Spark: in-memory RDDs, broadcast variables, sub-second stage startup.
	Spark Kind = iota
	// Hive: MapReduce execution; every shuffle is written to and re-read
	// from disk, and each job pays multi-second YARN container startup
	// (the bottlenecks Section 5.2 identifies).
	Hive
	// Postgres: one database session, one process, one core; disk-oriented
	// page access (Section 2.6.1).
	Postgres
)

// String names the profile.
func (k Kind) String() string {
	switch k {
	case Spark:
		return "Spark"
	case Hive:
		return "Hive"
	case Postgres:
		return "PostgreSQL"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists the supported platforms.
func Kinds() []Kind { return []Kind{Spark, Hive, Postgres} }

// Config returns the engine configuration for the profile with the given
// cluster size. Executors/cores are ignored for Postgres (always 1×1).
func Config(k Kind, executors, coresPerExecutor int, memPerExecutor int64) engine.Config {
	if executors <= 0 {
		executors = 16
	}
	if coresPerExecutor <= 0 {
		coresPerExecutor = 24
	}
	if memPerExecutor <= 0 {
		memPerExecutor = 45 << 30
	}
	switch k {
	case Hive:
		return engine.Config{
			Executors:         executors,
			CoresPerExecutor:  coresPerExecutor,
			Partitions:        executors * coresPerExecutor,
			MemoryPerExecutor: memPerExecutor,
			NetBandwidth:      1 << 30,
			DiskBandwidth:     200 << 20,
			StageOverhead:     1500 * time.Millisecond, // container scheduling
			JobOverhead:       8 * time.Second,         // MR job startup + cleanup
			ShuffleToDisk:     true,
		}
	case Postgres:
		return engine.Config{
			Executors:         1,
			CoresPerExecutor:  1,
			Partitions:        1,
			MemoryPerExecutor: memPerExecutor,
			NetBandwidth:      1 << 30,
			DiskBandwidth:     200 << 20,
			StageOverhead:     time.Millisecond, // local executor, no scheduling
			JobOverhead:       5 * time.Millisecond,
		}
	default: // Spark
		return engine.Config{
			Executors:         executors,
			CoresPerExecutor:  coresPerExecutor,
			Partitions:        executors * coresPerExecutor,
			MemoryPerExecutor: memPerExecutor,
			NetBandwidth:      1 << 30,
			DiskBandwidth:     200 << 20,
			StageOverhead:     100 * time.Millisecond,
			JobOverhead:       300 * time.Millisecond,
		}
	}
}

// NewCluster builds a simulated cluster for the profile (platform profiles
// are cost models, so they always run on the sim backend).
func NewCluster(k Kind, executors, coresPerExecutor int, memPerExecutor int64) *engine.SimBackend {
	return engine.NewSimBackend(Config(k, executors, coresPerExecutor, memPerExecutor))
}

// ImplSpeedup is the calibration constant relating this repository's
// per-record compute cost to the thesis' Spark/JVM implementation, estimated
// at roughly 50x (dictionary-coded columnar Go vs serialized JVM rows).
// Platform comparisons measure the *ratios* of compute to coordination and
// I/O costs; to keep those ratios paper-like when compute is 50x cheaper,
// fixed overheads and bandwidths are adjusted by this factor.
const ImplSpeedup = 50

// Scale adapts the profile's cost model to an experiment that shrinks the
// paper's dataset by factor: fixed coordination costs (stage and job
// startup) divide by factor·ImplSpeedup (compute per stage shrank by factor
// from the data and by ImplSpeedup from the implementation), and bandwidths
// divide by ImplSpeedup (bytes shrank with the data, so only the
// implementation speedup must be compensated). See DESIGN.md §1.
func Scale(conf engine.Config, factor float64) engine.Config {
	if factor < 1 {
		factor = 1
	}
	conf.StageOverhead = time.Duration(float64(conf.StageOverhead) / (factor * ImplSpeedup))
	conf.JobOverhead = time.Duration(float64(conf.JobOverhead) / (factor * ImplSpeedup))
	conf.NetBandwidth /= ImplSpeedup
	conf.DiskBandwidth /= ImplSpeedup
	return conf
}

// NewScaledCluster builds a simulated cluster with overheads divided by
// factor.
func NewScaledCluster(k Kind, executors, coresPerExecutor int, memPerExecutor int64, factor float64) *engine.SimBackend {
	return engine.NewSimBackend(Scale(Config(k, executors, coresPerExecutor, memPerExecutor), factor))
}
