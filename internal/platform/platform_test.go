package platform

import (
	"testing"

	"sirum/internal/datagen"
	"sirum/internal/engine"
	"sirum/internal/miner"
)

func TestKindString(t *testing.T) {
	if Spark.String() != "Spark" || Hive.String() != "Hive" || Postgres.String() != "PostgreSQL" {
		t.Error("profile names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind empty")
	}
	if len(Kinds()) != 3 {
		t.Error("Kinds incomplete")
	}
}

func TestConfigShapes(t *testing.T) {
	spark := Config(Spark, 16, 24, 0)
	if spark.ShuffleToDisk || spark.Executors != 16 {
		t.Errorf("spark config %+v", spark)
	}
	hive := Config(Hive, 16, 24, 0)
	if !hive.ShuffleToDisk {
		t.Error("hive must materialize shuffles")
	}
	if hive.JobOverhead <= spark.JobOverhead {
		t.Error("hive job startup must dominate spark's")
	}
	pg := Config(Postgres, 16, 24, 0)
	if pg.Executors != 1 || pg.CoresPerExecutor != 1 {
		t.Errorf("postgres must be single-process: %+v", pg)
	}
	if d := Config(Spark, 0, 0, 0); d.Executors != 16 || d.CoresPerExecutor != 24 {
		t.Errorf("defaults: %+v", d)
	}
}

// TestPlatformOrdering reproduces the shape of Figures 5.1/5.2: for the same
// mining job at the experiment's scale factor, simulated time orders
// Spark < Postgres and Spark < Hive with a wide margin for Hive.
func TestPlatformOrdering(t *testing.T) {
	const rows = 8000
	scale := 1_500_000.0 / rows // the real Income dataset's size ratio
	ds := datagen.Income(rows, 3)
	simFor := func(k Kind) float64 {
		conf := Scale(Config(k, 4, 2, 1<<30), scale)
		// Serialize real task execution so measured durations (and hence
		// the simulated makespans) are stable under host CPU contention.
		conf.RealParallelism = 1
		c := engine.NewSimBackend(conf)
		defer c.Close()
		res, err := miner.New(c, ds, miner.Options{Variant: miner.Baseline, K: 3, SampleSize: 8, Seed: 2}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.SimTime.Seconds()
	}
	spark := simFor(Spark)
	hive := simFor(Hive)
	pg := simFor(Postgres)
	if spark >= pg {
		t.Errorf("spark (%v) not faster than postgres (%v)", spark, pg)
	}
	// At this small test scale the disk-shuffle volume is modest; the full
	// order-of-magnitude gap appears at sirumbench scale (fig-5.2). Here a
	// clear 1.5x separation is the invariant.
	if spark*1.5 >= hive {
		t.Errorf("hive (%v) not much slower than spark (%v)", hive, spark)
	}
}

func TestScale(t *testing.T) {
	conf := Config(Spark, 4, 2, 0)
	scaled := Scale(conf, 10)
	if scaled.StageOverhead != conf.StageOverhead/(10*ImplSpeedup) {
		t.Errorf("scaled stage overhead: %v", scaled.StageOverhead)
	}
	if scaled.JobOverhead != conf.JobOverhead/(10*ImplSpeedup) {
		t.Errorf("scaled job overhead: %v", scaled.JobOverhead)
	}
	if scaled.NetBandwidth != conf.NetBandwidth/ImplSpeedup || scaled.DiskBandwidth != conf.DiskBandwidth/ImplSpeedup {
		t.Errorf("scaled bandwidths: %v %v", scaled.NetBandwidth, scaled.DiskBandwidth)
	}
	// Factors below 1 clamp to 1 (the implementation factor still applies).
	clamped := Scale(conf, 0.5)
	if clamped.StageOverhead != conf.StageOverhead/ImplSpeedup {
		t.Errorf("clamped overhead: %v", clamped.StageOverhead)
	}
}
