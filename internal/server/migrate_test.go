package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestClient wraps an httptest server in the typed shard client.
func newTestClient(ts *httptest.Server) *Client {
	return &Client{BaseURL: ts.URL, HTTP: &http.Client{Timeout: time.Minute}}
}

// seedExportSessions creates the two session shapes migration must carry:
// a generator-backed session with appended rows (journal replay must land
// them) and a CSV-backed one (the spill must travel in the document).
func seedExportSessions(t *testing.T, c *Client) {
	t.Helper()
	if _, err := c.CreateSession(CreateRequest{
		ID:        "gen",
		Generator: &GeneratorSpec{Name: "income", Rows: 200, Seed: 3},
		Prepare:   PrepareSpec{SampleSize: 16, Seed: 1},
	}); err != nil {
		t.Fatalf("creating gen: %v", err)
	}
	info, err := c.GetSession("gen")
	if err != nil {
		t.Fatal(err)
	}
	dims := make([]string, len(info.Dims))
	for i := range dims {
		dims[i] = "exported"
	}
	for i := 0; i < 2; i++ {
		if _, err := c.AppendRows("gen", AppendRequest{Rows: []RowJSON{{Dims: dims, Measure: float64(10 + i)}}}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if _, err := c.CreateSession(CreateRequest{ID: "csv", CSV: testCSVData, Measure: "Delay"}); err != nil {
		t.Fatalf("creating csv: %v", err)
	}
}

const testCSVData = "Day,City,Delay\nMon,NY,10\nMon,LA,12\nTue,NY,14\nTue,LA,9\nWed,NY,22\nWed,LA,7\n"

// TestExportImportRoundTrip is the transfer-format contract: an export
// document imported on a second daemon rebuilds a session that is
// fingerprint-, epoch- and result-identical, journals it durably, resumes
// idempotently, and refuses documents whose header does not match the
// rebuilt content.
func TestExportImportRoundTrip(t *testing.T) {
	_, ts1 := testServer(t, Config{ShardID: "src"})
	c1 := newTestClient(ts1)
	seedExportSessions(t, c1)

	mreq := MineRequest{K: 3, SampleSize: 16, Seed: 9}
	baseGen, err := c1.Mine("gen", mreq)
	if err != nil {
		t.Fatal(err)
	}
	baseCSV, err := c1.Mine("csv", mreq)
	if err != nil {
		t.Fatal(err)
	}

	genDoc, err := c1.Export("gen")
	if err != nil {
		t.Fatalf("exporting gen: %v", err)
	}
	if genDoc.Manifest.ID != "gen" || genDoc.Epoch != 2 || genDoc.Fingerprint == "" || len(genDoc.Appends) != 2 {
		t.Fatalf("export header: id=%q epoch=%d fp=%q appends=%d",
			genDoc.Manifest.ID, genDoc.Epoch, genDoc.Fingerprint, len(genDoc.Appends))
	}
	csvDoc, err := c1.Export("csv")
	if err != nil {
		t.Fatalf("exporting csv: %v", err)
	}
	if csvDoc.CSV == "" {
		t.Fatal("csv export lost its spill")
	}

	dir2 := t.TempDir()
	s2 := New(Config{ShardID: "dst", SnapshotDir: dir2})
	ts2 := httptest.NewServer(s2.Handler())
	c2 := newTestClient(ts2)

	for _, doc := range []ExportDocument{genDoc, csvDoc} {
		info, err := c2.Import(doc)
		if err != nil {
			t.Fatalf("importing %q: %v", doc.Manifest.ID, err)
		}
		if info.Stats == nil || info.Stats.Fingerprint != doc.Fingerprint || info.Stats.Epoch != doc.Epoch {
			t.Fatalf("import of %q reports stats %+v, want fp %s epoch %d",
				doc.Manifest.ID, info.Stats, doc.Fingerprint, doc.Epoch)
		}
	}
	gotGen, err := c2.Mine("gen", mreq)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameMineResult(&gotGen, &baseGen); err != nil {
		t.Fatalf("gen rules diverge after import: %v", err)
	}
	gotCSV, err := c2.Mine("csv", mreq)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameMineResult(&gotCSV, &baseCSV); err != nil {
		t.Fatalf("csv rules diverge after import: %v", err)
	}

	// Re-importing the same document is a no-op resume, not a conflict.
	if _, err := c2.Import(genDoc); err != nil {
		t.Fatalf("idempotent re-import: %v", err)
	}

	// A header that does not match the rebuilt content must be refused.
	tampered := genDoc
	tampered.Manifest.ID = "tampered-fp"
	tampered.Fingerprint = strings.Repeat("0", len(genDoc.Fingerprint))
	if _, err := c2.Import(tampered); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("tampered fingerprint accepted: %v", err)
	}
	short := genDoc
	short.Manifest.ID = "tampered-epoch"
	short.Epoch = genDoc.Epoch + 1
	if _, err := c2.Import(short); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("tampered epoch accepted: %v", err)
	}

	// A different session squatting on a live id must be refused too.
	squatter := csvDoc
	squatter.Manifest.ID = "gen"
	if _, err := c2.Import(squatter); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("conflicting import over live id accepted: %v", err)
	}

	// The import journaled: a fresh daemon over the same snapshot dir
	// restores both sessions at their migrated epochs and rules.
	ts2.Close()
	s2.Close()
	s3 := New(Config{ShardID: "dst", SnapshotDir: dir2})
	if n, err := s3.Restore(); err != nil || n != 2 {
		t.Fatalf("restore after import: n=%d err=%v", n, err)
	}
	ts3 := httptest.NewServer(s3.Handler())
	defer func() { ts3.Close(); s3.Close() }()
	c3 := newTestClient(ts3)
	info, err := c3.GetSession("gen")
	if err != nil {
		t.Fatal(err)
	}
	if info.Stats.Epoch != genDoc.Epoch || info.Stats.Fingerprint != genDoc.Fingerprint {
		t.Fatalf("restored stats %+v, want fp %s epoch %d", info.Stats, genDoc.Fingerprint, genDoc.Epoch)
	}
	restored, err := c3.Mine("gen", mreq)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameMineResult(&restored, &baseGen); err != nil {
		t.Fatalf("gen rules diverge after restore: %v", err)
	}
}

// TestExportUnknownSession pins the 404 surface.
func TestExportUnknownSession(t *testing.T) {
	_, ts := testServer(t, Config{})
	c := newTestClient(ts)
	if _, err := c.Export("ghost"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("export of unknown session: %v", err)
	}
}

// TestSnapshotterFsync pins the durability fix: with persistence on, the
// snapshotter must sync files and directories before acknowledging, and
// the NoFsync escape hatch must suppress every one of those syncs.
func TestSnapshotterFsync(t *testing.T) {
	s, ts := testServer(t, Config{SnapshotDir: t.TempDir()})
	c := newTestClient(ts)
	seedExportSessions(t, c)
	if n := s.snap.syncs.Load(); n == 0 {
		t.Fatal("no fsync recorded despite persistence being enabled")
	}

	s2, ts2 := testServer(t, Config{SnapshotDir: t.TempDir(), NoFsync: true})
	c2 := newTestClient(ts2)
	seedExportSessions(t, c2)
	if n := s2.snap.syncs.Load(); n != 0 {
		t.Fatalf("%d fsyncs recorded with NoFsync set", n)
	}
}

// TestConcurrentServerClose proves Close is safe to race with itself: all
// callers return, sessions tear down exactly once. Run with -race.
func TestConcurrentServerClose(t *testing.T) {
	for i := 0; i < 8; i++ {
		s := New(Config{})
		ts := httptest.NewServer(s.Handler())
		c := newTestClient(ts)
		if _, err := c.CreateSession(CreateRequest{ID: "x", CSV: testCSVData, Measure: "Delay"}); err != nil {
			t.Fatal(err)
		}
		ts.Close()
		var wg sync.WaitGroup
		for j := 0; j < 4; j++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := s.Close(); err != nil {
					t.Errorf("concurrent close: %v", err)
				}
			}()
		}
		wg.Wait()
	}
}
