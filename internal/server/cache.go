package server

import (
	"container/list"
	"sync"
)

// cacheKey addresses one cached query result: the session identity (the
// dataset source fingerprint combined with the prep fingerprint — sessions
// prepared identically over identical sources share entries), the content
// chain of the epoch the result was computed at, and the canonical query
// fingerprint. Append bumps the epoch by extending the chain with the
// batch's content hash, so stale entries are never addressed again and age
// out of the LRU with no explicit invalidation. Keying on the chain rather
// than the bare epoch counter is what makes sharing safe: two sessions
// over the same source that appended *different* rows reach the same
// epoch with different chains, so they can never serve each other's
// results.
type cacheKey struct {
	session [32]byte
	chain   string // hex content chain from spec.DatasetSpec.Chain
	query   [32]byte
}

// resultCache is the size-bounded LRU of recent query responses. It is
// consulted before admission control, so repeat traffic never takes an
// execution slot, touches a session lock, or does any backend work.
type resultCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used
	entries map[cacheKey]*list.Element

	hits, misses, evictions int64
}

type cacheEntry struct {
	key cacheKey
	val any // pre-encoded open-envelope body ([]byte); see encode.go
}

func newResultCache(max int) *resultCache {
	return &resultCache{
		max:     max,
		order:   list.New(),
		entries: make(map[cacheKey]*list.Element, max),
	}
}

// get returns the cached response for k, promoting it to most recent.
func (c *resultCache) get(k cacheKey) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put inserts (or refreshes) k's response, evicting the least recently
// used entry when the cache is full.
func (c *resultCache) put(k cacheKey, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).val = v
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.entries[k] = c.order.PushFront(&cacheEntry{key: k, val: v})
}

// cacheStats snapshots the counters for health and metrics reporting.
type cacheStats struct {
	hits, misses, evictions int64
	entries                 int
}

func (c *resultCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{hits: c.hits, misses: c.misses, evictions: c.evictions, entries: c.order.Len()}
}
