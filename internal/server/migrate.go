package server

import (
	"net/http"

	"sirum/internal/spec"
)

// Cross-shard session migration, shard side. A session's journaled
// identity (manifest + CSV spill + append journal — exactly what the
// snapshotter persists) doubles as its transfer format: /export serializes
// it under the session's journal lock so the cut is consistent, /import
// rebuilds it through the same replay path Restore uses and refuses to
// commit unless the rebuilt DatasetSpec fingerprint, epoch and content
// chain match the export header. The fingerprints are the verification
// oracle — no new wire format, no trust in the sender.

// ExportDocument is one exported session: everything needed to rebuild it
// elsewhere, plus the identity header the importer must reproduce.
type ExportDocument struct {
	Manifest manifest       `json:"manifest"`
	CSV      string         `json:"csv,omitempty"`
	Appends  []appendRecord `json:"appends,omitempty"`
	// Fingerprint (hex source fingerprint), Epoch and Chain describe the
	// session at the moment of export; an importer rebuilds and must
	// arrive at exactly these values before committing.
	Fingerprint string `json:"fingerprint"`
	Epoch       int64  `json:"epoch"`
	Chain       string `json:"chain,omitempty"`
}

// RoutingSpec computes the canonical dataset identity of the exported
// session's source — what a router hashes to place the imported session,
// identical to the fingerprint the session reports once rebuilt.
func (d ExportDocument) RoutingSpec() (spec.DatasetSpec, error) {
	return CreateRequest{
		Generator: d.Manifest.Generator,
		CSV:       d.CSV,
		Measure:   d.Manifest.Measure,
		Ignore:    d.Manifest.Ignore,
	}.sourceSpec()
}

// ID returns the exported session's id.
func (d ExportDocument) ID() string { return d.Manifest.ID }

// handleExport serializes a session for migration. The journal lock spans
// the whole cut: handleAppend applies and records each append under the
// same lock, so the epoch/chain in the header always agree with the
// append list in the body — never a half-applied append.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) error {
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		return err
	}
	sess.journalMu.Lock()
	defer sess.journalMu.Unlock()
	if sess.dropped {
		return errf(http.StatusNotFound, "unknown dataset %q", sess.id)
	}
	ds := sess.p.DatasetSpec()
	writeJSON(w, http.StatusOK, ExportDocument{
		Manifest:    sess.m,
		CSV:         sess.csv,
		Appends:     append([]appendRecord(nil), sess.appends...),
		Fingerprint: spec.Hex(ds.Fingerprint()),
		Epoch:       ds.Epoch,
		Chain:       ds.Chain,
	})
	return nil
}

// handleImport rebuilds an exported session on this shard. 201 on success,
// 200 when the session already exists and matches the document (a resumed
// migration re-importing is a no-op), 409 when the rebuilt session does
// not reproduce the export header or the id is taken by different content.
// A failed import leaves this shard exactly as it was.
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) error {
	var doc ExportDocument
	if err := s.decodeJSON(w, r, &doc); err != nil {
		return err
	}
	id := doc.Manifest.ID
	if !validSessionID(id) {
		return errf(http.StatusBadRequest, "session id %q: want 1-64 chars of [A-Za-z0-9._-], starting alphanumeric", id)
	}
	if sess, err := s.lookup(id); err == nil {
		return s.importExisting(w, sess, doc)
	}
	// Rebuilding re-prepares the dataset — the heaviest work the daemon
	// does — so it takes an admission slot like a create.
	release, err := s.admit(r.Context())
	if err != nil {
		return err
	}
	defer release()
	ds, p, err := s.rebuildSession(snapshotEntry{m: doc.Manifest, csv: doc.CSV, appends: doc.Appends})
	if err != nil {
		return err
	}
	got := p.DatasetSpec()
	if fp := spec.Hex(got.Fingerprint()); fp != doc.Fingerprint || got.Epoch != doc.Epoch || got.Chain != doc.Chain {
		p.Close()
		return errf(http.StatusConflict,
			"import of %q failed verification: rebuilt fingerprint=%s epoch=%d chain=%s, export header fingerprint=%s epoch=%d chain=%s",
			id, fp, got.Epoch, got.Chain, doc.Fingerprint, doc.Epoch, doc.Chain)
	}
	snap, err := s.persistence()
	if err != nil {
		p.Close()
		return err
	}
	sess, err := s.addSession(id, ds, p, snapshotEntry{m: doc.Manifest, csv: doc.CSV, appends: doc.Appends})
	if err != nil {
		p.Close()
		// Lost a race with a concurrent import of the same id: if the
		// winner carries the same content this import still succeeded.
		if other, lerr := s.lookup(id); lerr == nil {
			return s.importExisting(w, other, doc)
		}
		return err
	}
	if snap != nil {
		if err := s.journalSession(snap, sess); err != nil {
			s.dropSession(sess.id)
			return errf(http.StatusInternalServerError, "journaling imported session: %v", err)
		}
	}
	writeJSON(w, http.StatusCreated, s.info(sess, true))
	return nil
}

// importExisting resolves an import whose id is already registered: 200
// when the resident session matches the document (same source fingerprint
// at the same or a later epoch — a committed earlier import, possibly with
// post-cutover appends on top), 409 otherwise.
func (s *Server) importExisting(w http.ResponseWriter, sess *session, doc ExportDocument) error {
	ds := sess.p.DatasetSpec()
	match := spec.Hex(ds.Fingerprint()) == doc.Fingerprint &&
		(ds.Epoch > doc.Epoch || (ds.Epoch == doc.Epoch && ds.Chain == doc.Chain))
	if !match {
		return errf(http.StatusConflict, "dataset %q already exists with different content", sess.id)
	}
	writeJSON(w, http.StatusOK, s.info(sess, true))
	return nil
}
