package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"
)

// snapshotter journals the session registry to a directory so a restarted
// daemon comes back serving. Everything is spec-encoded rather than raw
// data: generator-born sessions persist only their generator parameters
// and are regenerated on boot; CSV-born sessions spill the original CSV
// document alongside the manifest (a content hash is not invertible).
// Appended batches are journaled per session in arrival order and replayed
// on restore, which reconstructs both the grown dataset and the epoch.
//
// Files, one trio per session id (ids are validated to a path-safe
// alphabet at create time):
//
//	<id>.session.json   manifest: source + prepare options + creation time
//	<id>.csv            the raw CSV document (CSV sources only)
//	<id>.appends.jsonl  one JSON record per Append, in applied order
//
// Journal writes are fsynced (file contents, and the directory after a
// rename or file creation) before the daemon acknowledges the request, so
// "applied but not journaled" keeps meaning what it says across power
// loss, not just process crashes. Config.NoFsync turns the syncs off for
// tests and benchmarks.
type snapshotter struct {
	dir   string
	sync  bool         // fsync before acknowledging (off under Config.NoFsync)
	syncs atomic.Int64 // fsync calls issued, for tests and metrics
}

func newSnapshotter(dir string, sync bool) (*snapshotter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot dir: %w", err)
	}
	return &snapshotter{dir: dir, sync: sync}, nil
}

// syncFile flushes written contents to stable storage (no-op under NoFsync).
func (sn *snapshotter) syncFile(f *os.File) error {
	if !sn.sync {
		return nil
	}
	sn.syncs.Add(1)
	return f.Sync()
}

// syncDir makes directory-entry changes (renames, file creations, removals)
// durable; without it a synced file can still vanish with the power.
func (sn *snapshotter) syncDir() error {
	if !sn.sync {
		return nil
	}
	d, err := os.Open(sn.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	sn.syncs.Add(1)
	return d.Sync()
}

// manifest is the durable identity of one session: enough to rebuild it
// from scratch, nothing more.
type manifest struct {
	ID        string         `json:"id"`
	CreatedAt time.Time      `json:"created_at"`
	Generator *GeneratorSpec `json:"generator,omitempty"`
	CSVFile   string         `json:"csv_file,omitempty"`
	Measure   string         `json:"measure,omitempty"`
	Ignore    []string       `json:"ignore,omitempty"`
	Prepare   PrepareSpec    `json:"prepare"`
}

// appendRecord journals one Append: the rows plus the mining options that
// governed the maintenance pass.
type appendRecord struct {
	Rows []RowJSON   `json:"rows"`
	Mine MineRequest `json:"mine"`
}

func (sn *snapshotter) manifestPath(id string) string {
	return filepath.Join(sn.dir, id+".session.json")
}
func (sn *snapshotter) csvPath(id string) string { return filepath.Join(sn.dir, id+".csv") }
func (sn *snapshotter) appendsPath(id string) string {
	return filepath.Join(sn.dir, id+".appends.jsonl")
}

// writeFileAtomic writes via a temp file and rename so a crash mid-write
// never leaves a torn manifest for the next boot to choke on. The temp
// file is synced before the rename (a rename can otherwise land before the
// contents) and the directory after it (or the rename itself is lost).
func (sn *snapshotter) writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := sn.syncFile(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return sn.syncDir()
}

// save journals a newly created session. Any append journal left behind
// under the same id (a delete racing an in-flight append can recreate the
// file after snapshotter.delete removed it) is cleared first — a fresh
// session starts at epoch 0 and must not inherit a dead session's appends
// on restore. The CSV document (if any) is spilled before the manifest so
// the manifest never references a file that does not exist yet.
func (sn *snapshotter) save(m manifest, csv string) error {
	os.Remove(sn.appendsPath(m.ID))
	if m.CSVFile != "" {
		if err := sn.writeFileAtomic(sn.csvPath(m.ID), []byte(csv)); err != nil {
			return fmt.Errorf("spilling csv for %q: %w", m.ID, err)
		}
	}
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := sn.writeFileAtomic(sn.manifestPath(m.ID), buf); err != nil {
		return fmt.Errorf("writing manifest for %q: %w", m.ID, err)
	}
	return nil
}

// appendBatch journals one applied Append for id, fsyncing the record (and
// the directory when this append created the journal file) before the
// append is acknowledged.
func (sn *snapshotter) appendBatch(id string, rec appendRecord) error {
	buf, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	path := sn.appendsPath(id)
	_, statErr := os.Stat(path)
	created := os.IsNotExist(statErr)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journaling append for %q: %w", id, err)
	}
	if _, err := f.Write(append(buf, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("journaling append for %q: %w", id, err)
	}
	if err := sn.syncFile(f); err != nil {
		f.Close()
		return fmt.Errorf("journaling append for %q: %w", id, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if created {
		if err := sn.syncDir(); err != nil {
			return fmt.Errorf("journaling append for %q: %w", id, err)
		}
	}
	return nil
}

// delete removes a session's journal files (deleted sessions must not come
// back on the next boot); the directory sync makes the removals durable.
func (sn *snapshotter) delete(id string) {
	for _, p := range []string{sn.manifestPath(id), sn.csvPath(id), sn.appendsPath(id)} {
		os.Remove(p)
	}
	sn.syncDir()
}

// snapshotEntry is one journaled session read back off disk.
type snapshotEntry struct {
	m       manifest
	csv     string
	appends []appendRecord
}

// load reads every journaled session, in creation order (ties broken by
// id) so restored registries list deterministically.
func (sn *snapshotter) load() ([]snapshotEntry, error) {
	paths, err := filepath.Glob(filepath.Join(sn.dir, "*.session.json"))
	if err != nil {
		return nil, err
	}
	entries := make([]snapshotEntry, 0, len(paths))
	for _, p := range paths {
		buf, err := os.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("reading %s: %w", p, err)
		}
		var m manifest
		if err := json.Unmarshal(buf, &m); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", p, err)
		}
		if m.ID == "" || !validSessionID(m.ID) {
			return nil, fmt.Errorf("manifest %s has invalid session id %q", p, m.ID)
		}
		e := snapshotEntry{m: m}
		if m.CSVFile != "" {
			csv, err := os.ReadFile(sn.csvPath(m.ID))
			if err != nil {
				return nil, fmt.Errorf("reading csv spill for %q: %w", m.ID, err)
			}
			e.csv = string(csv)
		}
		if e.appends, err = sn.loadAppends(m.ID); err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].m.CreatedAt.Equal(entries[j].m.CreatedAt) {
			return entries[i].m.CreatedAt.Before(entries[j].m.CreatedAt)
		}
		return entries[i].m.ID < entries[j].m.ID
	})
	return entries, nil
}

func (sn *snapshotter) loadAppends(id string) ([]appendRecord, error) {
	buf, err := os.ReadFile(sn.appendsPath(id))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("reading append journal for %q: %w", id, err)
	}
	var out []appendRecord
	goodPrefix := 0 // bytes up to and including the last durable record
	for off := 0; off < len(buf); {
		nl := bytes.IndexByte(buf[off:], '\n')
		end := len(buf)
		if nl >= 0 {
			end = off + nl
		}
		line := buf[off:end]
		if len(line) > 0 {
			var rec appendRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				// A crash mid-write leaves a torn last line; that append
				// was never acknowledged as durable, so dropping it is the
				// correct recovery. Anything unparsable *before* the end
				// is real corruption and must fail loudly.
				if end != len(buf) {
					return nil, fmt.Errorf("append journal for %q, record %d: %w", id, len(out), err)
				}
				// Truncate the torn tail so a later appendBatch cannot
				// O_APPEND an acknowledged record onto the fragment and
				// corrupt the journal permanently.
				if err := os.Truncate(sn.appendsPath(id), int64(goodPrefix)); err != nil {
					return nil, fmt.Errorf("truncating torn journal tail for %q: %w", id, err)
				}
				return out, nil
			}
			out = append(out, rec)
			if nl < 0 {
				// A parseable final record missing its newline (crash
				// after the JSON bytes, before the terminator): repair
				// the newline so the next appendBatch cannot merge onto
				// this line.
				f, err := os.OpenFile(sn.appendsPath(id), os.O_WRONLY|os.O_APPEND, 0o644)
				if err != nil {
					return nil, fmt.Errorf("repairing journal for %q: %w", id, err)
				}
				if _, err := f.WriteString("\n"); err != nil {
					f.Close()
					return nil, fmt.Errorf("repairing journal for %q: %w", id, err)
				}
				if err := f.Close(); err != nil {
					return nil, err
				}
			}
		}
		if nl < 0 {
			break
		}
		off = end + 1
		goodPrefix = off
	}
	return out, nil
}
