package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"sirum"
)

// testServer starts an httptest server over a fresh daemon.
func testServer(t *testing.T, conf Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(conf)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// call does one JSON round trip and decodes the response into out (skipped
// when out is nil), returning the status code.
func call(t *testing.T, method, url string, in, out any) int {
	t.Helper()
	var body *bytes.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(buf)
	} else {
		body = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// sameMineResult compares two responses to the same mining query under the
// library's equality contract: identical rule lists and counts, aggregates
// within floating-point summation-order tolerance.
func sameMineResult(got, want *MineResponse) error {
	if len(got.Rules) != len(want.Rules) {
		return fmt.Errorf("rule counts differ: %d vs %d", len(got.Rules), len(want.Rules))
	}
	for j := range got.Rules {
		g, w := got.Rules[j], want.Rules[j]
		if g.Display != w.Display || g.Count != w.Count {
			return fmt.Errorf("rule %d: %s (%d) vs %s (%d)", j, g.Display, g.Count, w.Display, w.Count)
		}
		if !reflect.DeepEqual(g.Conditions, w.Conditions) {
			return fmt.Errorf("rule %d conditions differ", j)
		}
		if relErr(g.Avg, w.Avg) > 1e-9 || relErr(g.Gain, w.Gain) > 1e-6 {
			return fmt.Errorf("rule %d aggregates differ: avg %v vs %v, gain %v vs %v", j, g.Avg, w.Avg, g.Gain, w.Gain)
		}
	}
	if relErr(got.KL, want.KL) > 1e-6 || relErr(got.InfoGain, want.InfoGain) > 1e-6 {
		return fmt.Errorf("kl/info gain differ: %v/%v vs %v/%v", got.KL, got.InfoGain, want.KL, want.InfoGain)
	}
	return nil
}

func relErr(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if b > m {
		m = b
	} else if -b > m {
		m = -b
	}
	if m == 0 {
		return d
	}
	return d / m
}

func createIncome(t *testing.T, baseURL, id string, rows int) SessionInfo {
	t.Helper()
	var info SessionInfo
	status := call(t, "POST", baseURL+"/v1/datasets", CreateRequest{
		ID:        id,
		Generator: &GeneratorSpec{Name: "income", Rows: rows, Seed: 3},
		Prepare:   PrepareSpec{SampleSize: 16, Seed: 2},
	}, &info)
	if status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	return info
}

// TestServerConcurrentMineExplore is the serving-path acceptance test (run
// under -race in CI): ≥8 concurrent mixed mine/explore queries against one
// prepared session must all succeed, every mine must match the
// single-client baseline exactly, and every response must carry its own
// per-query metrics snapshot. The result cache is disabled so every query
// does real concurrent backend work (TestServerConcurrentCacheStorm covers
// the cached path).
func TestServerConcurrentMineExplore(t *testing.T) {
	_, ts := testServer(t, Config{MaxInFlight: 4, CacheEntries: -1})
	info := createIncome(t, ts.URL, "inc", 1500)
	if info.Rows != 1500 {
		t.Fatalf("created session has %d rows", info.Rows)
	}
	mineURL := ts.URL + "/v1/datasets/inc/mine"
	mineReq := MineRequest{K: 3, SampleSize: 16, Seed: 2}

	var baseline MineResponse
	if status := call(t, "POST", mineURL, mineReq, &baseline); status != http.StatusOK {
		t.Fatalf("baseline mine: status %d", status)
	}
	if len(baseline.Rules) == 0 {
		t.Fatal("baseline mined no rules")
	}

	const workers = 12 // > MaxInFlight, so some queries queue
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%3 == 2 {
				var resp ExploreResponse
				if status := call(t, "POST", ts.URL+"/v1/datasets/inc/explore",
					ExploreRequest{K: 2, GroupBys: 1, Seed: 2}, &resp); status != http.StatusOK {
					errs[g] = fmt.Errorf("explore status %d", status)
					return
				}
				if len(resp.Rules) == 0 {
					errs[g] = fmt.Errorf("explore returned no rules")
				}
				return
			}
			var resp MineResponse
			if status := call(t, "POST", mineURL, mineReq, &resp); status != http.StatusOK {
				errs[g] = fmt.Errorf("mine status %d", status)
				return
			}
			if err := sameMineResult(&resp, &baseline); err != nil {
				errs[g] = fmt.Errorf("concurrent mine diverged from baseline: %w", err)
				return
			}
			if len(resp.Metrics.Counters) == 0 || resp.Metrics.Counters["candidates"] == 0 {
				errs[g] = fmt.Errorf("response missing per-query metrics: %+v", resp.Metrics)
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", g, err)
		}
	}

	var health HealthResponse
	if status := call(t, "GET", ts.URL+"/v1/healthz", nil, &health); status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
	if health.Queries < workers+1 {
		t.Errorf("health reports %d queries, want >= %d", health.Queries, workers+1)
	}
	if health.Sessions != 1 {
		t.Errorf("health reports %d sessions, want 1", health.Sessions)
	}
}

// TestServerSessionLifecycle covers create/list/get/delete plus id conflicts.
func TestServerSessionLifecycle(t *testing.T) {
	_, ts := testServer(t, Config{})
	createIncome(t, ts.URL, "a", 1200)

	// Duplicate ids conflict.
	if status := call(t, "POST", ts.URL+"/v1/datasets", CreateRequest{
		ID:        "a",
		Generator: &GeneratorSpec{Name: "income", Rows: 1200},
	}, nil); status != http.StatusConflict {
		t.Errorf("duplicate create: status %d, want 409", status)
	}

	// Auto-assigned ids.
	var auto SessionInfo
	if status := call(t, "POST", ts.URL+"/v1/datasets", CreateRequest{
		Generator: &GeneratorSpec{Name: "flights"},
	}, &auto); status != http.StatusCreated {
		t.Fatalf("auto-id create: status %d", status)
	}
	if auto.ID == "" || auto.ID == "a" {
		t.Errorf("auto-assigned id = %q", auto.ID)
	}

	var list ListResponse
	if status := call(t, "GET", ts.URL+"/v1/datasets", nil, &list); status != http.StatusOK {
		t.Fatalf("list: status %d", status)
	}
	if len(list.Sessions) != 2 {
		t.Errorf("list has %d sessions, want 2", len(list.Sessions))
	}

	// Get includes lifetime stats.
	var got SessionInfo
	if status := call(t, "GET", ts.URL+"/v1/datasets/a", nil, &got); status != http.StatusOK {
		t.Fatalf("get: status %d", status)
	}
	if got.Stats == nil || got.Stats.Backend != "native" {
		t.Errorf("get returned no usable stats: %+v", got.Stats)
	}

	if status := call(t, "DELETE", ts.URL+"/v1/datasets/a", nil, nil); status != http.StatusNoContent {
		t.Errorf("delete: status %d, want 204", status)
	}
	if status := call(t, "GET", ts.URL+"/v1/datasets/a", nil, nil); status != http.StatusNotFound {
		t.Errorf("get after delete: status %d, want 404", status)
	}
	if status := call(t, "DELETE", ts.URL+"/v1/datasets/a", nil, nil); status != http.StatusNotFound {
		t.Errorf("double delete: status %d, want 404", status)
	}
}

// TestServerErrorMapping pins the JSON error contract: caller mistakes are
// 4xx with a machine-readable body, never 5xx or panics.
func TestServerErrorMapping(t *testing.T) {
	_, ts := testServer(t, Config{})
	createIncome(t, ts.URL, "d", 1200)

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"unknown dataset", "POST", "/v1/datasets/nope/mine", MineRequest{K: 2}, http.StatusNotFound},
		{"bad variant", "POST", "/v1/datasets/d/mine", MineRequest{K: 2, Variant: "nope"}, http.StatusBadRequest},
		{"foreign backend create", "POST", "/v1/datasets", CreateRequest{
			Generator: &GeneratorSpec{Name: "flights"}, Prepare: PrepareSpec{Backend: "spark"},
		}, http.StatusBadRequest},
		{"unknown generator", "POST", "/v1/datasets", CreateRequest{
			Generator: &GeneratorSpec{Name: "nope"},
		}, http.StatusBadRequest},
		{"path-unsafe session id", "POST", "/v1/datasets", CreateRequest{
			ID: "../evil", Generator: &GeneratorSpec{Name: "flights"},
		}, http.StatusBadRequest},
		{"csv without measure", "POST", "/v1/datasets", CreateRequest{CSV: "a,m\nx,1\n"}, http.StatusBadRequest},
		{"empty create", "POST", "/v1/datasets", CreateRequest{}, http.StatusBadRequest},
		{"append without rows", "POST", "/v1/datasets/d/append", AppendRequest{}, http.StatusBadRequest},
		{"append ragged row", "POST", "/v1/datasets/d/append", AppendRequest{
			Rows: []RowJSON{{Dims: []string{"just-one"}, Measure: 1}},
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader(mustJSON(t, tc.body)))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
			var apiErr ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil || apiErr.Error == "" {
				t.Errorf("error body missing: decode err %v, body %+v", err, apiErr)
			}
		})
	}

	// Malformed JSON body.
	resp, err := http.Post(ts.URL+"/v1/datasets/d/mine", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
}

// TestServerRejectsOversizedBody pins the request-body cap: a payload over
// MaxBodyBytes is refused before it is materialized.
func TestServerRejectsOversizedBody(t *testing.T) {
	_, ts := testServer(t, Config{MaxBodyBytes: 256})
	big := `{"id":"x","csv":"` + strings.Repeat("a", 1024) + `","measure":"m"}`
	resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestServerCSVAndAppend drives a CSV-born session through append: the
// session grows and later queries see the new rows.
func TestServerCSVAndAppend(t *testing.T) {
	_, ts := testServer(t, Config{})
	var sb strings.Builder
	sb.WriteString("Day,City,Delay\n")
	days := []string{"Mon", "Tue"}
	cities := []string{"NY", "LA", "SF"}
	for i := 0; i < 24; i++ {
		fmt.Fprintf(&sb, "%s,%s,%d\n", days[i%2], cities[i%3], 10+i%7)
	}
	var info SessionInfo
	if status := call(t, "POST", ts.URL+"/v1/datasets", CreateRequest{
		ID:      "csv",
		CSV:     sb.String(),
		Measure: "Delay",
	}, &info); status != http.StatusCreated {
		t.Fatalf("csv create: status %d", status)
	}
	if info.Rows != 24 || len(info.Dims) != 2 {
		t.Fatalf("csv session: %d rows, dims %v", info.Rows, info.Dims)
	}

	var app AppendResponse
	if status := call(t, "POST", ts.URL+"/v1/datasets/csv/append", AppendRequest{
		Rows: []RowJSON{
			{Dims: []string{"Wed", "NY"}, Measure: 55},
			{Dims: []string{"Wed", "LA"}, Measure: 60},
		},
		MineRequest: MineRequest{K: 2},
	}, &app); status != http.StatusOK {
		t.Fatalf("append: status %d", status)
	}
	if app.Rows != 26 {
		t.Errorf("append rows = %d, want 26", app.Rows)
	}
	if !app.Remined {
		t.Error("first append should have mined the rule list")
	}

	var after SessionInfo
	call(t, "GET", ts.URL+"/v1/datasets/csv", nil, &after)
	if after.Rows != 26 {
		t.Errorf("session rows after append = %d, want 26", after.Rows)
	}
}

// TestServerConcurrentAdmissionQueueing pins the admission semaphore: with
// one execution slot, a burst of concurrent queries all succeed (they
// queue), and the health counters account for every one of them.
func TestServerConcurrentAdmissionQueueing(t *testing.T) {
	s, ts := testServer(t, Config{MaxInFlight: 1, CacheEntries: -1})
	createIncome(t, ts.URL, "q", 1200)
	const burst = 6
	var wg sync.WaitGroup
	errs := make([]error, burst)
	for g := 0; g < burst; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var resp MineResponse
			if status := call(t, "POST", ts.URL+"/v1/datasets/q/mine",
				MineRequest{K: 2, SampleSize: 16, Seed: 2}, &resp); status != http.StatusOK {
				errs[g] = fmt.Errorf("status %d", status)
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("queued query %d: %v", g, err)
		}
	}
	// The session create is admitted through the same semaphore as the
	// mines — preparation is heavy work too.
	if got := s.queries.Load(); got != burst+1 {
		t.Errorf("admitted %d units of work, want %d", got, burst+1)
	}
}

// TestServerCloseRejectsNewWork pins shutdown semantics: after Close every
// endpoint that would start work answers 503, sessions are gone, and Close
// is idempotent.
func TestServerCloseRejectsNewWork(t *testing.T) {
	s, ts := testServer(t, Config{})
	createIncome(t, ts.URL, "z", 1200)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if status := call(t, "POST", ts.URL+"/v1/datasets", CreateRequest{
		Generator: &GeneratorSpec{Name: "flights"},
	}, nil); status != http.StatusServiceUnavailable {
		t.Errorf("create after close: status %d, want 503", status)
	}
	// The registry was emptied, so the session is simply gone.
	if status := call(t, "POST", ts.URL+"/v1/datasets/z/mine", MineRequest{K: 2}, nil); status != http.StatusNotFound {
		t.Errorf("mine after close: status %d, want 404", status)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

// TestRunLoadReportsLatencies runs the load generator end to end against an
// in-process daemon: it must verify consistency and produce sane
// percentiles (the sirumd -selftest path).
func TestRunLoadReportsLatencies(t *testing.T) {
	if testing.Short() {
		t.Skip("load generation is slow")
	}
	_, ts := testServer(t, Config{})
	rep, err := RunLoad(LoadConfig{
		BaseURL:     ts.URL,
		Dataset:     "income",
		Rows:        1200,
		Queries:     12,
		Concurrency: 4,
		K:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("load run had %d errors: %s", rep.Errors, rep.FirstError)
	}
	if rep.Consistency != "verified" {
		t.Errorf("consistency = %q", rep.Consistency)
	}
	if rep.Throughput <= 0 || rep.P50 <= 0 || rep.P95 < rep.P50 {
		t.Errorf("implausible report: %+v", rep)
	}
	if rep.Mines+rep.Explores != rep.Queries {
		t.Errorf("query mix %d+%d != %d", rep.Mines, rep.Explores, rep.Queries)
	}

	// The load session deletes itself.
	var list ListResponse
	if status := call(t, "GET", ts.URL+"/v1/datasets", nil, &list); status != http.StatusOK {
		t.Fatalf("list: status %d", status)
	}
	if len(list.Sessions) != 0 {
		t.Errorf("load generator leaked %d sessions", len(list.Sessions))
	}
}

// clearCached strips the cache marker so responses can be compared for
// deep equality against the originally computed answer.
func clearCached(r MineResponse) MineResponse {
	r.Cached = false
	return r
}

// lifetimeCounters fetches a session's lifetime operator counters.
func lifetimeCounters(t *testing.T, baseURL, id string) map[string]int64 {
	t.Helper()
	var info SessionInfo
	if status := call(t, "GET", baseURL+"/v1/datasets/"+id, nil, &info); status != http.StatusOK {
		t.Fatalf("get %s: status %d", id, status)
	}
	if info.Stats == nil {
		t.Fatalf("get %s returned no stats", id)
	}
	return info.Stats.Lifetime.Counters
}

// TestServerResultCacheRepeatAndEpoch pins the cache contract: an
// identical repeat query is served from the cache with a deep-equal
// result and no backend work, and an Append bumps the epoch so the next
// identical query recomputes.
func TestServerResultCacheRepeatAndEpoch(t *testing.T) {
	_, ts := testServer(t, Config{})
	createIncome(t, ts.URL, "c", 1500)
	mineURL := ts.URL + "/v1/datasets/c/mine"
	mineReq := MineRequest{K: 3, SampleSize: 16, Seed: 2}

	var cold MineResponse
	if status := call(t, "POST", mineURL, mineReq, &cold); status != http.StatusOK {
		t.Fatalf("cold mine: status %d", status)
	}
	if cold.Cached {
		t.Fatal("first mine claims to be cached")
	}
	before := lifetimeCounters(t, ts.URL, "c")

	var hit MineResponse
	if status := call(t, "POST", mineURL, mineReq, &hit); status != http.StatusOK {
		t.Fatalf("repeat mine: status %d", status)
	}
	if !hit.Cached {
		t.Fatal("identical repeat mine was not served from the cache")
	}
	if !reflect.DeepEqual(clearCached(hit), clearCached(cold)) {
		t.Errorf("cached response is not deep-equal to the computed one:\n%+v\nvs\n%+v", hit, cold)
	}
	// Normalization: a request that spells out the defaults the first one
	// left implicit is the same canonical query, so it hits too.
	var normalized MineResponse
	if status := call(t, "POST", mineURL, MineRequest{K: 3, SampleSize: 16, Seed: 2, Variant: "optimized", Epsilon: 0.01}, &normalized); status != http.StatusOK {
		t.Fatalf("normalized mine: status %d", status)
	}
	if !normalized.Cached {
		t.Error("defaults-spelled-out request missed the cache: canonicalization broken")
	}
	// No backend work happened for the hits: operator lifetime counters
	// are unchanged.
	if after := lifetimeCounters(t, ts.URL, "c"); !reflect.DeepEqual(before, after) {
		t.Errorf("cached queries did backend work: counters %v -> %v", before, after)
	}
	// A different K is a different canonical query.
	var other MineResponse
	if status := call(t, "POST", mineURL, MineRequest{K: 2, SampleSize: 16, Seed: 2}, &other); status != http.StatusOK {
		t.Fatalf("different-k mine: status %d", status)
	}
	if other.Cached {
		t.Error("different K was served from the cache")
	}

	// Explore caches too.
	exploreURL := ts.URL + "/v1/datasets/c/explore"
	exploreReq := ExploreRequest{K: 2, GroupBys: 1, Seed: 2}
	var ex1, ex2 ExploreResponse
	if status := call(t, "POST", exploreURL, exploreReq, &ex1); status != http.StatusOK {
		t.Fatalf("explore: status %d", status)
	}
	if status := call(t, "POST", exploreURL, exploreReq, &ex2); status != http.StatusOK {
		t.Fatalf("repeat explore: status %d", status)
	}
	if ex1.Cached || !ex2.Cached {
		t.Errorf("explore caching: first cached=%v, repeat cached=%v", ex1.Cached, ex2.Cached)
	}

	// Append bumps the epoch: the same mine request must recompute.
	var app AppendResponse
	if status := call(t, "POST", ts.URL+"/v1/datasets/c/append", AppendRequest{
		Rows:        []RowJSON{{Dims: incomeDims(t, ts.URL, "c"), Measure: 1}},
		MineRequest: MineRequest{K: 2},
	}, &app); status != http.StatusOK {
		t.Fatalf("append: status %d", status)
	}
	var postAppend MineResponse
	if status := call(t, "POST", mineURL, mineReq, &postAppend); status != http.StatusOK {
		t.Fatalf("post-append mine: status %d", status)
	}
	if postAppend.Cached {
		t.Error("append did not invalidate the cache: stale epoch served")
	}
	var postAppendRepeat MineResponse
	if status := call(t, "POST", mineURL, mineReq, &postAppendRepeat); status != http.StatusOK {
		t.Fatalf("post-append repeat: status %d", status)
	}
	if !postAppendRepeat.Cached {
		t.Error("new epoch's result was not cached")
	}

	var health HealthResponse
	if status := call(t, "GET", ts.URL+"/v1/healthz", nil, &health); status != http.StatusOK {
		t.Fatalf("healthz: status %d", status)
	}
	if health.CacheHits < 4 || health.CacheMisses < 3 {
		t.Errorf("health cache counters implausible: hits %d misses %d", health.CacheHits, health.CacheMisses)
	}
}

// incomeDims fetches a session's dim names and fabricates one valid row
// value per dimension (values already in the dataset's dictionaries are
// not required — appends re-encode).
func incomeDims(t *testing.T, baseURL, id string) []string {
	t.Helper()
	var info SessionInfo
	if status := call(t, "GET", baseURL+"/v1/datasets/"+id, nil, &info); status != http.StatusOK {
		t.Fatalf("get %s: status %d", id, status)
	}
	dims := make([]string, len(info.Dims))
	for i := range dims {
		dims[i] = "appended-value"
	}
	return dims
}

// TestServerCacheSharingAndDivergentAppends pins the cross-session cache
// contract: sessions prepared identically over the same source share
// entries while their data histories match, and stop sharing the moment
// their appends diverge — the key carries the content chain, not a bare
// append counter, so same-epoch sessions with different data can never
// serve each other's results.
func TestServerCacheSharingAndDivergentAppends(t *testing.T) {
	_, ts := testServer(t, Config{})
	createIncome(t, ts.URL, "a", 1200)
	createIncome(t, ts.URL, "b", 1200)
	mineReq := MineRequest{K: 3, SampleSize: 16, Seed: 2}

	var onA MineResponse
	if status := call(t, "POST", ts.URL+"/v1/datasets/a/mine", mineReq, &onA); status != http.StatusOK {
		t.Fatalf("mine a: status %d", status)
	}
	if onA.Cached {
		t.Fatal("first mine claims to be cached")
	}
	// Identical source + prep + query: b legitimately shares a's entry.
	var onB MineResponse
	if status := call(t, "POST", ts.URL+"/v1/datasets/b/mine", mineReq, &onB); status != http.StatusOK {
		t.Fatalf("mine b: status %d", status)
	}
	if !onB.Cached {
		t.Error("identical sessions did not share the cache entry")
	}

	// Divergent appends: both sessions reach epoch 1 with different data.
	appendRow := func(id, value string, measure float64) {
		t.Helper()
		dims := incomeDims(t, ts.URL, id)
		for i := range dims {
			dims[i] = value
		}
		if status := call(t, "POST", ts.URL+"/v1/datasets/"+id+"/append", AppendRequest{
			Rows:        []RowJSON{{Dims: dims, Measure: measure}},
			MineRequest: MineRequest{K: 2},
		}, nil); status != http.StatusOK {
			t.Fatalf("append %s: status %d", id, status)
		}
	}
	appendRow("a", "row-for-a", 1)
	appendRow("b", "row-for-b", 0)

	var postA MineResponse
	if status := call(t, "POST", ts.URL+"/v1/datasets/a/mine", mineReq, &postA); status != http.StatusOK {
		t.Fatalf("post-append mine a: status %d", status)
	}
	if postA.Cached {
		t.Fatal("append did not invalidate a's cache")
	}
	var postB MineResponse
	if status := call(t, "POST", ts.URL+"/v1/datasets/b/mine", mineReq, &postB); status != http.StatusOK {
		t.Fatalf("post-append mine b: status %d", status)
	}
	if postB.Cached {
		t.Error("same-epoch sessions with different appended data shared a cache entry")
	}
}

// TestSnapshotterToleratesTornTail pins crash recovery of the append
// journal: a truncated final record (the crash-interrupted write of an
// unacknowledged append) is dropped, while corruption before the end of
// the journal still fails loudly.
func TestSnapshotterToleratesTornTail(t *testing.T) {
	sn, err := newSnapshotter(t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	good := appendRecord{Rows: []RowJSON{{Dims: []string{"x"}, Measure: 1}}, Mine: MineRequest{K: 2}}
	if err := sn.appendBatch("s", good); err != nil {
		t.Fatal(err)
	}
	if err := sn.appendBatch("s", good); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-write of a third record.
	f, err := os.OpenFile(sn.appendsPath("s"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"rows":[{"dims":["x"],"meas`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, err := sn.loadAppends("s")
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if len(recs) != 2 {
		t.Errorf("loaded %d records, want the 2 durable ones", len(recs))
	}
	// Recovery must truncate the fragment: an append journaled after the
	// restore is durable, not merged onto the torn line.
	if err := sn.appendBatch("s", good); err != nil {
		t.Fatal(err)
	}
	recs, err = sn.loadAppends("s")
	if err != nil {
		t.Fatalf("journal corrupt after post-recovery append: %v", err)
	}
	if len(recs) != 3 {
		t.Errorf("loaded %d records after post-recovery append, want 3", len(recs))
	}

	// Corruption in the middle must fail, not be silently skipped.
	if err := os.WriteFile(sn.appendsPath("mid"), []byte("{garbage\n"+`{"rows":[],"mine":{}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := sn.loadAppends("mid"); err == nil {
		t.Error("mid-journal corruption loaded without error")
	}
}

// TestServerCacheRepeatLatency is the repeat-query acceptance benchmark
// through the HTTP path: the second identical mine is served from the
// cache at least 10x faster than the cold query, with the operator's
// lifetime metrics unchanged (no backend work).
func TestServerCacheRepeatLatency(t *testing.T) {
	_, ts := testServer(t, Config{})
	createIncome(t, ts.URL, "lat", 2000)
	mineURL := ts.URL + "/v1/datasets/lat/mine"
	mineReq := MineRequest{K: 3, SampleSize: 16, Seed: 2}

	coldStart := time.Now()
	var cold MineResponse
	if status := call(t, "POST", mineURL, mineReq, &cold); status != http.StatusOK {
		t.Fatalf("cold mine: status %d", status)
	}
	coldLatency := time.Since(coldStart)
	if cold.Cached {
		t.Fatal("cold mine claims to be cached")
	}
	before := lifetimeCounters(t, ts.URL, "lat")

	// Best of three, so one scheduling hiccup cannot fail the 10x bound.
	cachedLatency := time.Hour
	for i := 0; i < 3; i++ {
		start := time.Now()
		var hit MineResponse
		if status := call(t, "POST", mineURL, mineReq, &hit); status != http.StatusOK {
			t.Fatalf("cached mine %d: status %d", i, status)
		}
		if !hit.Cached {
			t.Fatalf("repeat mine %d missed the cache", i)
		}
		if d := time.Since(start); d < cachedLatency {
			cachedLatency = d
		}
	}
	if after := lifetimeCounters(t, ts.URL, "lat"); !reflect.DeepEqual(before, after) {
		t.Errorf("cached mines did backend work: counters %v -> %v", before, after)
	}
	if cachedLatency*10 > coldLatency {
		t.Errorf("cached mine not >=10x faster: cold %v, cached %v", coldLatency, cachedLatency)
	}
	t.Logf("cold %v, cached %v (%.0fx)", coldLatency, cachedLatency, float64(coldLatency)/float64(cachedLatency))
}

// TestServerConcurrentCacheStorm hammers one session with a hit/miss mix
// under -race: several distinct canonical queries land concurrently (each
// computed once, then served from cache) while an append bumps the epoch
// mid-storm. Every response must be internally consistent — same-spec
// responses at the same epoch are deep-equal.
func TestServerConcurrentCacheStorm(t *testing.T) {
	_, ts := testServer(t, Config{MaxInFlight: 2})
	createIncome(t, ts.URL, "storm", 1500)
	mineURL := ts.URL + "/v1/datasets/storm/mine"

	const workers = 16
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g == workers/2 {
				// One append races the storm: it must not corrupt any
				// response, only split the storm across two epochs.
				if status := call(t, "POST", ts.URL+"/v1/datasets/storm/append", AppendRequest{
					Rows:        []RowJSON{{Dims: incomeDims(t, ts.URL, "storm"), Measure: 2}},
					MineRequest: MineRequest{K: 2},
				}, nil); status != http.StatusOK {
					errs[g] = fmt.Errorf("append status %d", status)
				}
				return
			}
			req := MineRequest{K: 2 + g%3, SampleSize: 16, Seed: 2}
			for rep := 0; rep < 3; rep++ {
				var resp MineResponse
				if status := call(t, "POST", mineURL, req, &resp); status != http.StatusOK {
					errs[g] = fmt.Errorf("mine status %d", status)
					return
				}
				if len(resp.Rules) == 0 {
					errs[g] = fmt.Errorf("mine returned no rules")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", g, err)
		}
	}
	var health HealthResponse
	if status := call(t, "GET", ts.URL+"/v1/healthz", nil, &health); status != http.StatusOK {
		t.Fatalf("healthz: status %d", status)
	}
	if health.CacheHits == 0 {
		t.Error("storm produced no cache hits")
	}
}

// TestServerSnapshotRestart is the persistence acceptance test: sessions
// created from a generator and from CSV (with an appended batch) survive a
// server restart via the snapshot directory, serving the same session list
// and baseline-consistent mine answers; deleted sessions stay gone.
func TestServerSnapshotRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Config{SnapshotDir: dir})
	ts1 := httptest.NewServer(s1.Handler())

	createIncome(t, ts1.URL, "gen", 1500)
	var sb strings.Builder
	sb.WriteString("Day,City,Delay\n")
	for i := 0; i < 24; i++ {
		fmt.Fprintf(&sb, "%s,%s,%d\n", []string{"Mon", "Tue"}[i%2], []string{"NY", "LA", "SF"}[i%3], 10+i%7)
	}
	if status := call(t, "POST", ts1.URL+"/v1/datasets", CreateRequest{
		ID: "csv", CSV: sb.String(), Measure: "Delay",
	}, nil); status != http.StatusCreated {
		t.Fatalf("csv create: status %d", status)
	}
	if status := call(t, "POST", ts1.URL+"/v1/datasets/csv/append", AppendRequest{
		Rows: []RowJSON{
			{Dims: []string{"Wed", "NY"}, Measure: 55},
			{Dims: []string{"Wed", "LA"}, Measure: 60},
		},
		MineRequest: MineRequest{K: 2},
	}, nil); status != http.StatusOK {
		t.Fatalf("append: status %d", status)
	}
	// A session deleted before the restart must not come back.
	createIncome(t, ts1.URL, "doomed", 1200)
	if status := call(t, "DELETE", ts1.URL+"/v1/datasets/doomed", nil, nil); status != http.StatusNoContent {
		t.Fatalf("delete: status %d", status)
	}

	mineReq := MineRequest{K: 3, SampleSize: 16, Seed: 2}
	baselines := map[string]MineResponse{}
	for _, id := range []string{"gen", "csv"} {
		var resp MineResponse
		if status := call(t, "POST", ts1.URL+"/v1/datasets/"+id+"/mine", mineReq, &resp); status != http.StatusOK {
			t.Fatalf("baseline mine %s: status %d", id, status)
		}
		baselines[id] = resp
	}

	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := New(Config{SnapshotDir: dir})
	n, err := s2.Restore()
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if n != 2 {
		t.Fatalf("restored %d sessions, want 2", n)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		s2.Close()
	})

	var list ListResponse
	if status := call(t, "GET", ts2.URL+"/v1/datasets", nil, &list); status != http.StatusOK {
		t.Fatalf("list: status %d", status)
	}
	if len(list.Sessions) != 2 {
		t.Fatalf("restored list has %d sessions, want 2", len(list.Sessions))
	}
	for _, info := range list.Sessions {
		if info.ID == "doomed" {
			t.Error("deleted session came back from the snapshot")
		}
	}

	// The CSV session replayed its append: 26 rows, epoch 1, and the same
	// answers as before the restart.
	var csvInfo SessionInfo
	if status := call(t, "GET", ts2.URL+"/v1/datasets/csv", nil, &csvInfo); status != http.StatusOK {
		t.Fatalf("get csv: status %d", status)
	}
	if csvInfo.Rows != 26 {
		t.Errorf("restored csv session has %d rows, want 26", csvInfo.Rows)
	}
	if csvInfo.Stats == nil || csvInfo.Stats.Epoch != 1 {
		t.Errorf("restored csv session stats = %+v, want epoch 1", csvInfo.Stats)
	}
	for id, want := range baselines {
		var got MineResponse
		if status := call(t, "POST", ts2.URL+"/v1/datasets/"+id+"/mine", mineReq, &got); status != http.StatusOK {
			t.Fatalf("restored mine %s: status %d", id, status)
		}
		if err := sameMineResult(&got, &want); err != nil {
			t.Errorf("session %q diverged after restart: %v", id, err)
		}
	}

	// A new auto-id create must not collide with restored sessions.
	var auto SessionInfo
	if status := call(t, "POST", ts2.URL+"/v1/datasets", CreateRequest{
		Generator: &GeneratorSpec{Name: "flights"},
	}, &auto); status != http.StatusCreated {
		t.Fatalf("post-restore create: status %d", status)
	}
	if auto.ID == "gen" || auto.ID == "csv" {
		t.Errorf("auto id collided with restored session: %q", auto.ID)
	}
}

// TestServerMetricsEndpoint pins the Prometheus-style text format:
// admission and cache counters plus per-session lifetime stats.
func TestServerMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	createIncome(t, ts.URL, "met", 1200)
	mineReq := MineRequest{K: 2, SampleSize: 16, Seed: 2}
	for i := 0; i < 2; i++ { // one miss, one hit
		if status := call(t, "POST", ts.URL+"/v1/datasets/met/mine", mineReq, nil); status != http.StatusOK {
			t.Fatalf("mine %d: status %d", i, status)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(buf)
	for _, want := range []string{
		"sirumd_sessions 1",
		"sirumd_result_cache_hits_total 1",
		"sirumd_result_cache_misses_total 1",
		"sirumd_queries_total",
		"sirumd_rejected_total 0",
		`sirumd_session_queries_total{session="met"} 2`,
		`sirumd_session_rows{session="met"} 1200`,
		`sirumd_session_epoch{session="met"} 0`,
		`sirumd_session_lifetime_total{session="met",counter=`,
		`sirumd_session_phase_seconds_total{session="met",phase=`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestMineResponseSerializesMetrics pins the wire format of the per-query
// metrics snapshot (counters + nanosecond phase maps).
func TestMineResponseSerializesMetrics(t *testing.T) {
	_, ts := testServer(t, Config{})
	createIncome(t, ts.URL, "m", 1200)
	resp, err := http.Post(ts.URL+"/v1/datasets/m/mine", "application/json",
		strings.NewReader(`{"k":2,"sample_size":16,"seed":2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	var met struct {
		Counters map[string]int64 `json:"counters"`
		Phases   map[string]int64 `json:"phases_ns"`
	}
	if err := json.Unmarshal(raw["metrics"], &met); err != nil {
		t.Fatalf("metrics not serializable: %v", err)
	}
	if met.Counters["candidates"] == 0 {
		t.Errorf("metrics counters missing candidates: %+v", met.Counters)
	}
	if len(met.Phases) == 0 {
		t.Error("metrics phases empty")
	}
	var _ = sirum.QueryMetrics{} // the wire type round-trips through the public snapshot
}
