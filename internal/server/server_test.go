package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"sirum"
)

// testServer starts an httptest server over a fresh daemon.
func testServer(t *testing.T, conf Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(conf)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// call does one JSON round trip and decodes the response into out (skipped
// when out is nil), returning the status code.
func call(t *testing.T, method, url string, in, out any) int {
	t.Helper()
	var body *bytes.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(buf)
	} else {
		body = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// sameMineResult compares two responses to the same mining query under the
// library's equality contract: identical rule lists and counts, aggregates
// within floating-point summation-order tolerance.
func sameMineResult(got, want *MineResponse) error {
	if len(got.Rules) != len(want.Rules) {
		return fmt.Errorf("rule counts differ: %d vs %d", len(got.Rules), len(want.Rules))
	}
	for j := range got.Rules {
		g, w := got.Rules[j], want.Rules[j]
		if g.Display != w.Display || g.Count != w.Count {
			return fmt.Errorf("rule %d: %s (%d) vs %s (%d)", j, g.Display, g.Count, w.Display, w.Count)
		}
		if !reflect.DeepEqual(g.Conditions, w.Conditions) {
			return fmt.Errorf("rule %d conditions differ", j)
		}
		if relErr(g.Avg, w.Avg) > 1e-9 || relErr(g.Gain, w.Gain) > 1e-6 {
			return fmt.Errorf("rule %d aggregates differ: avg %v vs %v, gain %v vs %v", j, g.Avg, w.Avg, g.Gain, w.Gain)
		}
	}
	if relErr(got.KL, want.KL) > 1e-6 || relErr(got.InfoGain, want.InfoGain) > 1e-6 {
		return fmt.Errorf("kl/info gain differ: %v/%v vs %v/%v", got.KL, got.InfoGain, want.KL, want.InfoGain)
	}
	return nil
}

func relErr(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if b > m {
		m = b
	} else if -b > m {
		m = -b
	}
	if m == 0 {
		return d
	}
	return d / m
}

func createIncome(t *testing.T, baseURL, id string, rows int) SessionInfo {
	t.Helper()
	var info SessionInfo
	status := call(t, "POST", baseURL+"/v1/datasets", CreateRequest{
		ID:        id,
		Generator: &GeneratorSpec{Name: "income", Rows: rows, Seed: 3},
		Prepare:   PrepareSpec{SampleSize: 16, Seed: 2},
	}, &info)
	if status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	return info
}

// TestServerConcurrentMineExplore is the serving-path acceptance test (run
// under -race in CI): ≥8 concurrent mixed mine/explore queries against one
// prepared session must all succeed, every mine must match the
// single-client baseline exactly, and every response must carry its own
// per-query metrics snapshot.
func TestServerConcurrentMineExplore(t *testing.T) {
	_, ts := testServer(t, Config{MaxInFlight: 4})
	info := createIncome(t, ts.URL, "inc", 1500)
	if info.Rows != 1500 {
		t.Fatalf("created session has %d rows", info.Rows)
	}
	mineURL := ts.URL + "/v1/datasets/inc/mine"
	mineReq := MineRequest{K: 3, SampleSize: 16, Seed: 2}

	var baseline MineResponse
	if status := call(t, "POST", mineURL, mineReq, &baseline); status != http.StatusOK {
		t.Fatalf("baseline mine: status %d", status)
	}
	if len(baseline.Rules) == 0 {
		t.Fatal("baseline mined no rules")
	}

	const workers = 12 // > MaxInFlight, so some queries queue
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%3 == 2 {
				var resp ExploreResponse
				if status := call(t, "POST", ts.URL+"/v1/datasets/inc/explore",
					ExploreRequest{K: 2, GroupBys: 1, Seed: 2}, &resp); status != http.StatusOK {
					errs[g] = fmt.Errorf("explore status %d", status)
					return
				}
				if len(resp.Rules) == 0 {
					errs[g] = fmt.Errorf("explore returned no rules")
				}
				return
			}
			var resp MineResponse
			if status := call(t, "POST", mineURL, mineReq, &resp); status != http.StatusOK {
				errs[g] = fmt.Errorf("mine status %d", status)
				return
			}
			if err := sameMineResult(&resp, &baseline); err != nil {
				errs[g] = fmt.Errorf("concurrent mine diverged from baseline: %w", err)
				return
			}
			if len(resp.Metrics.Counters) == 0 || resp.Metrics.Counters["candidates"] == 0 {
				errs[g] = fmt.Errorf("response missing per-query metrics: %+v", resp.Metrics)
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", g, err)
		}
	}

	var health HealthResponse
	if status := call(t, "GET", ts.URL+"/v1/healthz", nil, &health); status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
	if health.Queries < workers+1 {
		t.Errorf("health reports %d queries, want >= %d", health.Queries, workers+1)
	}
	if health.Sessions != 1 {
		t.Errorf("health reports %d sessions, want 1", health.Sessions)
	}
}

// TestServerSessionLifecycle covers create/list/get/delete plus id conflicts.
func TestServerSessionLifecycle(t *testing.T) {
	_, ts := testServer(t, Config{})
	createIncome(t, ts.URL, "a", 1200)

	// Duplicate ids conflict.
	if status := call(t, "POST", ts.URL+"/v1/datasets", CreateRequest{
		ID:        "a",
		Generator: &GeneratorSpec{Name: "income", Rows: 1200},
	}, nil); status != http.StatusConflict {
		t.Errorf("duplicate create: status %d, want 409", status)
	}

	// Auto-assigned ids.
	var auto SessionInfo
	if status := call(t, "POST", ts.URL+"/v1/datasets", CreateRequest{
		Generator: &GeneratorSpec{Name: "flights"},
	}, &auto); status != http.StatusCreated {
		t.Fatalf("auto-id create: status %d", status)
	}
	if auto.ID == "" || auto.ID == "a" {
		t.Errorf("auto-assigned id = %q", auto.ID)
	}

	var list ListResponse
	if status := call(t, "GET", ts.URL+"/v1/datasets", nil, &list); status != http.StatusOK {
		t.Fatalf("list: status %d", status)
	}
	if len(list.Sessions) != 2 {
		t.Errorf("list has %d sessions, want 2", len(list.Sessions))
	}

	// Get includes lifetime stats.
	var got SessionInfo
	if status := call(t, "GET", ts.URL+"/v1/datasets/a", nil, &got); status != http.StatusOK {
		t.Fatalf("get: status %d", status)
	}
	if got.Stats == nil || got.Stats.Backend != "native" {
		t.Errorf("get returned no usable stats: %+v", got.Stats)
	}

	if status := call(t, "DELETE", ts.URL+"/v1/datasets/a", nil, nil); status != http.StatusNoContent {
		t.Errorf("delete: status %d, want 204", status)
	}
	if status := call(t, "GET", ts.URL+"/v1/datasets/a", nil, nil); status != http.StatusNotFound {
		t.Errorf("get after delete: status %d, want 404", status)
	}
	if status := call(t, "DELETE", ts.URL+"/v1/datasets/a", nil, nil); status != http.StatusNotFound {
		t.Errorf("double delete: status %d, want 404", status)
	}
}

// TestServerErrorMapping pins the JSON error contract: caller mistakes are
// 4xx with a machine-readable body, never 5xx or panics.
func TestServerErrorMapping(t *testing.T) {
	_, ts := testServer(t, Config{})
	createIncome(t, ts.URL, "d", 1200)

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"unknown dataset", "POST", "/v1/datasets/nope/mine", MineRequest{K: 2}, http.StatusNotFound},
		{"bad variant", "POST", "/v1/datasets/d/mine", MineRequest{K: 2, Variant: "nope"}, http.StatusBadRequest},
		{"foreign backend create", "POST", "/v1/datasets", CreateRequest{
			Generator: &GeneratorSpec{Name: "flights"}, Prepare: PrepareSpec{Backend: "spark"},
		}, http.StatusBadRequest},
		{"unknown generator", "POST", "/v1/datasets", CreateRequest{
			Generator: &GeneratorSpec{Name: "nope"},
		}, http.StatusBadRequest},
		{"csv without measure", "POST", "/v1/datasets", CreateRequest{CSV: "a,m\nx,1\n"}, http.StatusBadRequest},
		{"empty create", "POST", "/v1/datasets", CreateRequest{}, http.StatusBadRequest},
		{"append without rows", "POST", "/v1/datasets/d/append", AppendRequest{}, http.StatusBadRequest},
		{"append ragged row", "POST", "/v1/datasets/d/append", AppendRequest{
			Rows: []RowJSON{{Dims: []string{"just-one"}, Measure: 1}},
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, bytes.NewReader(mustJSON(t, tc.body)))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
			var apiErr ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil || apiErr.Error == "" {
				t.Errorf("error body missing: decode err %v, body %+v", err, apiErr)
			}
		})
	}

	// Malformed JSON body.
	resp, err := http.Post(ts.URL+"/v1/datasets/d/mine", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
}

// TestServerRejectsOversizedBody pins the request-body cap: a payload over
// MaxBodyBytes is refused before it is materialized.
func TestServerRejectsOversizedBody(t *testing.T) {
	_, ts := testServer(t, Config{MaxBodyBytes: 256})
	big := `{"id":"x","csv":"` + strings.Repeat("a", 1024) + `","measure":"m"}`
	resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestServerCSVAndAppend drives a CSV-born session through append: the
// session grows and later queries see the new rows.
func TestServerCSVAndAppend(t *testing.T) {
	_, ts := testServer(t, Config{})
	var sb strings.Builder
	sb.WriteString("Day,City,Delay\n")
	days := []string{"Mon", "Tue"}
	cities := []string{"NY", "LA", "SF"}
	for i := 0; i < 24; i++ {
		fmt.Fprintf(&sb, "%s,%s,%d\n", days[i%2], cities[i%3], 10+i%7)
	}
	var info SessionInfo
	if status := call(t, "POST", ts.URL+"/v1/datasets", CreateRequest{
		ID:      "csv",
		CSV:     sb.String(),
		Measure: "Delay",
	}, &info); status != http.StatusCreated {
		t.Fatalf("csv create: status %d", status)
	}
	if info.Rows != 24 || len(info.Dims) != 2 {
		t.Fatalf("csv session: %d rows, dims %v", info.Rows, info.Dims)
	}

	var app AppendResponse
	if status := call(t, "POST", ts.URL+"/v1/datasets/csv/append", AppendRequest{
		Rows: []RowJSON{
			{Dims: []string{"Wed", "NY"}, Measure: 55},
			{Dims: []string{"Wed", "LA"}, Measure: 60},
		},
		MineRequest: MineRequest{K: 2},
	}, &app); status != http.StatusOK {
		t.Fatalf("append: status %d", status)
	}
	if app.Rows != 26 {
		t.Errorf("append rows = %d, want 26", app.Rows)
	}
	if !app.Remined {
		t.Error("first append should have mined the rule list")
	}

	var after SessionInfo
	call(t, "GET", ts.URL+"/v1/datasets/csv", nil, &after)
	if after.Rows != 26 {
		t.Errorf("session rows after append = %d, want 26", after.Rows)
	}
}

// TestServerConcurrentAdmissionQueueing pins the admission semaphore: with
// one execution slot, a burst of concurrent queries all succeed (they
// queue), and the health counters account for every one of them.
func TestServerConcurrentAdmissionQueueing(t *testing.T) {
	s, ts := testServer(t, Config{MaxInFlight: 1})
	createIncome(t, ts.URL, "q", 1200)
	const burst = 6
	var wg sync.WaitGroup
	errs := make([]error, burst)
	for g := 0; g < burst; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var resp MineResponse
			if status := call(t, "POST", ts.URL+"/v1/datasets/q/mine",
				MineRequest{K: 2, SampleSize: 16, Seed: 2}, &resp); status != http.StatusOK {
				errs[g] = fmt.Errorf("status %d", status)
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("queued query %d: %v", g, err)
		}
	}
	// The session create is admitted through the same semaphore as the
	// mines — preparation is heavy work too.
	if got := s.queries.Load(); got != burst+1 {
		t.Errorf("admitted %d units of work, want %d", got, burst+1)
	}
}

// TestServerCloseRejectsNewWork pins shutdown semantics: after Close every
// endpoint that would start work answers 503, sessions are gone, and Close
// is idempotent.
func TestServerCloseRejectsNewWork(t *testing.T) {
	s, ts := testServer(t, Config{})
	createIncome(t, ts.URL, "z", 1200)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if status := call(t, "POST", ts.URL+"/v1/datasets", CreateRequest{
		Generator: &GeneratorSpec{Name: "flights"},
	}, nil); status != http.StatusServiceUnavailable {
		t.Errorf("create after close: status %d, want 503", status)
	}
	// The registry was emptied, so the session is simply gone.
	if status := call(t, "POST", ts.URL+"/v1/datasets/z/mine", MineRequest{K: 2}, nil); status != http.StatusNotFound {
		t.Errorf("mine after close: status %d, want 404", status)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

// TestRunLoadReportsLatencies runs the load generator end to end against an
// in-process daemon: it must verify consistency and produce sane
// percentiles (the sirumd -selftest path).
func TestRunLoadReportsLatencies(t *testing.T) {
	if testing.Short() {
		t.Skip("load generation is slow")
	}
	_, ts := testServer(t, Config{})
	rep, err := RunLoad(LoadConfig{
		BaseURL:     ts.URL,
		Dataset:     "income",
		Rows:        1200,
		Queries:     12,
		Concurrency: 4,
		K:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("load run had %d errors: %s", rep.Errors, rep.FirstError)
	}
	if rep.Consistency != "verified" {
		t.Errorf("consistency = %q", rep.Consistency)
	}
	if rep.Throughput <= 0 || rep.P50 <= 0 || rep.P95 < rep.P50 {
		t.Errorf("implausible report: %+v", rep)
	}
	if rep.Mines+rep.Explores != rep.Queries {
		t.Errorf("query mix %d+%d != %d", rep.Mines, rep.Explores, rep.Queries)
	}

	// The load session deletes itself.
	var list ListResponse
	if status := call(t, "GET", ts.URL+"/v1/datasets", nil, &list); status != http.StatusOK {
		t.Fatalf("list: status %d", status)
	}
	if len(list.Sessions) != 0 {
		t.Errorf("load generator leaked %d sessions", len(list.Sessions))
	}
}

// TestMineResponseSerializesMetrics pins the wire format of the per-query
// metrics snapshot (counters + nanosecond phase maps).
func TestMineResponseSerializesMetrics(t *testing.T) {
	_, ts := testServer(t, Config{})
	createIncome(t, ts.URL, "m", 1200)
	resp, err := http.Post(ts.URL+"/v1/datasets/m/mine", "application/json",
		strings.NewReader(`{"k":2,"sample_size":16,"seed":2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	var met struct {
		Counters map[string]int64 `json:"counters"`
		Phases   map[string]int64 `json:"phases_ns"`
	}
	if err := json.Unmarshal(raw["metrics"], &met); err != nil {
		t.Fatalf("metrics not serializable: %v", err)
	}
	if met.Counters["candidates"] == 0 {
		t.Errorf("metrics counters missing candidates: %+v", met.Counters)
	}
	if len(met.Phases) == 0 {
		t.Error("metrics phases empty")
	}
	var _ = sirum.QueryMetrics{} // the wire type round-trips through the public snapshot
}
