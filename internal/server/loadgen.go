package server

import (
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// LoadConfig drives the load generator against a running sirumd.
type LoadConfig struct {
	// BaseURL of the daemon, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Dataset is the built-in generator backing the test session (default
	// "income") with Rows rows (default 5000).
	Dataset string
	Rows    int
	// Queries is the total number of queries to fire (default 64).
	Queries int
	// Concurrency is how many client workers fire them (default 8).
	Concurrency int
	// K per query (default 3); every ExploreEvery-th query is an explore
	// instead of a mine (default 4; negative runs mines only).
	K            int
	ExploreEvery int
	// SampleSize for the prepared session and every query (default 16).
	SampleSize int
	// DistinctSeeds spreads the mine queries over this many distinct query
	// seeds (default 4): the first query per seed is a cold cache miss
	// computed concurrently with the rest of the storm, repeats are served
	// from the result cache, so the run exercises both paths and the
	// report's cache hit rate is meaningful. 1 sends identical queries
	// only.
	DistinctSeeds int
	// Sessions spreads the storm over this many sessions instead of one
	// (default 1). All sessions share one spec, so every same-seed answer
	// must match no matter which session — or, behind a router, which
	// shard — served it. Sessions beyond the first are created with auto
	// ids, which is what a router spreads across its ring; when the target
	// exposes /v1/shards (a router), the report includes the per-shard
	// session balance.
	Sessions int
	// Timeout per request (default 2 minutes).
	Timeout time.Duration
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Dataset == "" {
		c.Dataset = "income"
	}
	if c.Rows <= 0 {
		c.Rows = 5000
	}
	if c.Queries <= 0 {
		c.Queries = 64
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.K <= 0 {
		c.K = 3
	}
	if c.ExploreEvery == 0 {
		c.ExploreEvery = 4
	}
	if c.SampleSize <= 0 {
		c.SampleSize = 16
	}
	if c.DistinctSeeds <= 0 {
		c.DistinctSeeds = 4
	}
	if c.Sessions <= 0 {
		c.Sessions = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
	return c
}

// LoadReport summarizes one load-generator run.
type LoadReport struct {
	Queries     int           `json:"queries"`
	Mines       int           `json:"mines"`
	Explores    int           `json:"explores"`
	Errors      int           `json:"errors"`
	CacheHits   int           `json:"cache_hits"`
	CacheRate   float64       `json:"cache_hit_rate"`
	Wall        time.Duration `json:"wall_ns"`
	Throughput  float64       `json:"queries_per_sec"`
	P50         time.Duration `json:"p50_ns"`
	P95         time.Duration `json:"p95_ns"`
	Max         time.Duration `json:"max_ns"`
	FirstError  string        `json:"first_error,omitempty"`
	InfoGain    float64       `json:"info_gain"`   // from the baseline mine
	RuleCount   int           `json:"rule_count"`  // rules in the baseline mine
	Consistency string        `json:"consistency"` // "verified": same-spec responses all matched
	// Sessions is how many sessions the storm was spread over; when the
	// target is a router, ShardSessions reports how many landed per shard.
	Sessions      int              `json:"sessions"`
	ShardSessions map[string]int64 `json:"shard_sessions,omitempty"`
	// AllocsPerQuery and BytesPerQuery are runtime.MemStats deltas over the
	// storm divided by the query count. They cover the whole process, so
	// they are meaningful when the daemon runs in-process (the bench serve
	// suite); against a remote daemon they reflect only the client side.
	AllocsPerQuery int64 `json:"allocs_per_query"`
	BytesPerQuery  int64 `json:"bytes_per_query"`
}

// String renders the report for terminals.
func (r *LoadReport) String() string {
	s := fmt.Sprintf(
		"queries: %d (%d mine, %d explore) over %d sessions   errors: %d\nwall: %v   throughput: %.1f q/s   cache hits: %d/%d (%.0f%%)\nlatency p50: %v   p95: %v   max: %v\nbaseline: %d rules, info gain %.4f   consistency: %s",
		r.Queries, r.Mines, r.Explores, r.Sessions, r.Errors,
		r.Wall.Round(time.Millisecond), r.Throughput,
		r.CacheHits, r.Queries, 100*r.CacheRate,
		r.P50.Round(time.Millisecond), r.P95.Round(time.Millisecond), r.Max.Round(time.Millisecond),
		r.RuleCount, r.InfoGain, r.Consistency)
	if len(r.ShardSessions) > 0 {
		ids := make([]string, 0, len(r.ShardSessions))
		for id := range r.ShardSessions {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		parts := make([]string, 0, len(ids))
		for _, id := range ids {
			parts = append(parts, fmt.Sprintf("%s=%d", id, r.ShardSessions[id]))
		}
		s += "\nshard balance: " + strings.Join(parts, "  ")
	}
	return s
}

// RunLoad fires cfg.Queries mixed mine/explore queries at cfg.Concurrency
// against one prepared session and reports throughput, latency percentiles
// and the result-cache hit rate. Mine queries rotate over DistinctSeeds
// canonical specs; every response is checked against the first response
// seen for the same spec (deterministic mining makes same-spec answers
// byte-comparable), so the run is a serving-path correctness check, not
// just a stopwatch. The baseline mine before the storm additionally primes
// the cache for the first seed, proving the hit path end to end.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	c := &Client{BaseURL: cfg.BaseURL, HTTP: &http.Client{Timeout: cfg.Timeout}}

	// All sessions share one spec; creation is sequential so auto ids —
	// and therefore a router's id-hashed placement — are deterministic
	// run to run.
	paths := make([]string, 0, cfg.Sessions)
	for s := 0; s < cfg.Sessions; s++ {
		created, err := c.CreateSession(CreateRequest{
			Generator: &GeneratorSpec{Name: cfg.Dataset, Rows: cfg.Rows, Seed: 1},
			Prepare:   PrepareSpec{SampleSize: cfg.SampleSize, Seed: 1},
		})
		if err != nil {
			return nil, fmt.Errorf("creating load session %d: %w", s, err)
		}
		paths = append(paths, "/v1/datasets/"+created.ID)
	}
	defer func() {
		for _, p := range paths {
			c.Do("DELETE", p, nil, nil)
		}
	}()

	mineReq := func(seed int64) MineRequest {
		return MineRequest{K: cfg.K, SampleSize: cfg.SampleSize, Seed: seed}
	}
	var baseline MineResponse
	if err := c.Do("POST", paths[0]+"/mine", mineReq(1), &baseline); err != nil {
		return nil, fmt.Errorf("baseline mine: %w", err)
	}

	latencies := make([]time.Duration, cfg.Queries)
	outcomes := make([]error, cfg.Queries)
	isExplore := make([]bool, cfg.Queries)
	var cacheHits atomic.Int64
	var mismatches atomic.Int64
	var next atomic.Int64

	// First response per mine seed (the explore storm shares one spec);
	// later same-spec responses must match it exactly. The refs are keyed
	// by seed alone even with many sessions: identical specs mean every
	// session — on whichever shard — must produce the same answer, which is
	// exactly the cross-shard correctness a routed cluster has to prove.
	var refMu sync.Mutex
	mineRefs := make(map[int64]*MineResponse)
	var exploreRef *ExploreResponse

	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Queries {
					return
				}
				explore := cfg.ExploreEvery > 0 && i%cfg.ExploreEvery == cfg.ExploreEvery-1
				isExplore[i] = explore
				sessionPath := paths[i%len(paths)]
				qStart := time.Now()
				if explore {
					var resp ExploreResponse
					outcomes[i] = c.Do("POST", sessionPath+"/explore", ExploreRequest{K: cfg.K, GroupBys: 1, Seed: 1}, &resp)
					if outcomes[i] == nil {
						if resp.Cached {
							cacheHits.Add(1)
						}
						if len(resp.Rules) == 0 {
							outcomes[i] = fmt.Errorf("explore %d returned no rules", i)
						} else {
							refMu.Lock()
							if exploreRef == nil {
								exploreRef = &resp
							} else if !sameRules(resp.Rules, exploreRef.Rules) {
								mismatches.Add(1)
								outcomes[i] = fmt.Errorf("explore %d diverged from its first same-spec answer", i)
							}
							refMu.Unlock()
						}
					}
				} else {
					seed := int64(1 + i%cfg.DistinctSeeds)
					var resp MineResponse
					outcomes[i] = c.Do("POST", sessionPath+"/mine", mineReq(seed), &resp)
					if outcomes[i] == nil {
						if resp.Cached {
							cacheHits.Add(1)
						}
						refMu.Lock()
						if ref, ok := mineRefs[seed]; !ok {
							mineRefs[seed] = &resp
						} else if !sameRules(resp.Rules, ref.Rules) {
							mismatches.Add(1)
							outcomes[i] = fmt.Errorf("mine %d (seed %d) diverged from its first same-spec answer", i, seed)
						}
						refMu.Unlock()
					}
				}
				latencies[i] = time.Since(qStart)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)

	// Seed 1 was primed by the baseline, so its storm responses must also
	// equal the baseline itself.
	if ref, ok := mineRefs[1]; ok && !sameRules(ref.Rules, baseline.Rules) {
		mismatches.Add(1)
	}

	rep := &LoadReport{
		Queries:   cfg.Queries,
		CacheHits: int(cacheHits.Load()),
		Wall:      wall,
		InfoGain:  baseline.InfoGain,
		RuleCount: len(baseline.Rules),
		Sessions:  cfg.Sessions,
	}
	rep.ShardSessions = shardBalance(c)
	if cfg.Queries > 0 {
		rep.CacheRate = float64(rep.CacheHits) / float64(cfg.Queries)
	}
	for i := range outcomes {
		if isExplore[i] {
			rep.Explores++
		} else {
			rep.Mines++
		}
		if outcomes[i] != nil {
			rep.Errors++
			if rep.FirstError == "" {
				rep.FirstError = outcomes[i].Error()
			}
		}
	}
	if wall > 0 {
		rep.Throughput = float64(cfg.Queries) / wall.Seconds()
	}
	if cfg.Queries > 0 {
		rep.AllocsPerQuery = int64(memAfter.Mallocs-memBefore.Mallocs) / int64(cfg.Queries)
		rep.BytesPerQuery = int64(memAfter.TotalAlloc-memBefore.TotalAlloc) / int64(cfg.Queries)
	}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rep.P50 = percentile(sorted, 0.50)
	rep.P95 = percentile(sorted, 0.95)
	rep.Max = sorted[len(sorted)-1]
	if mismatches.Load() == 0 && rep.Errors == 0 {
		rep.Consistency = "verified"
	} else {
		rep.Consistency = fmt.Sprintf("%d mismatches", mismatches.Load())
	}
	return rep, nil
}

// shardBalance asks the target for its per-shard session counts. Only a
// router answers /v1/shards; a plain daemon 404s and the report simply
// omits the balance line. Decoded structurally to avoid importing the
// router package (which imports this one).
func shardBalance(c *Client) map[string]int64 {
	var resp struct {
		Shards []struct {
			ID       string `json:"id"`
			Sessions int64  `json:"sessions"`
		} `json:"shards"`
	}
	if err := c.Do("GET", "/v1/shards", nil, &resp); err != nil || len(resp.Shards) == 0 {
		return nil
	}
	out := make(map[string]int64, len(resp.Shards))
	for _, sh := range resp.Shards {
		out[sh.ID] = sh.Sessions
	}
	return out
}

func sameRules(a, b []RuleJSON) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Display != b[i].Display || a[i].Count != b[i].Count {
			return false
		}
	}
	return true
}

// percentile returns the exact q-quantile of a sorted sample, linearly
// interpolating between the two adjacent order statistics when the rank
// q*(n-1) is not integral (so p95 of a 64-query run is not silently rounded
// down to an earlier order statistic).
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := q * float64(len(sorted)-1)
	lo := int(rank)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := rank - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[lo+1]-sorted[lo]))
}
