package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LoadConfig drives the load generator against a running sirumd.
type LoadConfig struct {
	// BaseURL of the daemon, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Dataset is the built-in generator backing the test session (default
	// "income") with Rows rows (default 5000).
	Dataset string
	Rows    int
	// Queries is the total number of queries to fire (default 64).
	Queries int
	// Concurrency is how many client workers fire them (default 8).
	Concurrency int
	// K per query (default 3); every ExploreEvery-th query is an explore
	// instead of a mine (default 4; negative runs mines only).
	K            int
	ExploreEvery int
	// SampleSize for the prepared session and every query (default 16).
	SampleSize int
	// Timeout per request (default 2 minutes).
	Timeout time.Duration
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Dataset == "" {
		c.Dataset = "income"
	}
	if c.Rows <= 0 {
		c.Rows = 5000
	}
	if c.Queries <= 0 {
		c.Queries = 64
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.K <= 0 {
		c.K = 3
	}
	if c.ExploreEvery == 0 {
		c.ExploreEvery = 4
	}
	if c.SampleSize <= 0 {
		c.SampleSize = 16
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Minute
	}
	return c
}

// LoadReport summarizes one load-generator run.
type LoadReport struct {
	Queries     int           `json:"queries"`
	Mines       int           `json:"mines"`
	Explores    int           `json:"explores"`
	Errors      int           `json:"errors"`
	Wall        time.Duration `json:"wall_ns"`
	Throughput  float64       `json:"queries_per_sec"`
	P50         time.Duration `json:"p50_ns"`
	P95         time.Duration `json:"p95_ns"`
	Max         time.Duration `json:"max_ns"`
	FirstError  string        `json:"first_error,omitempty"`
	InfoGain    float64       `json:"info_gain"`   // from the baseline mine
	RuleCount   int           `json:"rule_count"`  // rules in the baseline mine
	Consistency string        `json:"consistency"` // "verified": concurrent mines matched the baseline
}

// String renders the report for terminals.
func (r *LoadReport) String() string {
	return fmt.Sprintf(
		"queries: %d (%d mine, %d explore)   errors: %d\nwall: %v   throughput: %.1f q/s\nlatency p50: %v   p95: %v   max: %v\nbaseline: %d rules, info gain %.4f   consistency: %s",
		r.Queries, r.Mines, r.Explores, r.Errors,
		r.Wall.Round(time.Millisecond), r.Throughput,
		r.P50.Round(time.Millisecond), r.P95.Round(time.Millisecond), r.Max.Round(time.Millisecond),
		r.RuleCount, r.InfoGain, r.Consistency)
}

// loadClient wraps the JSON round trips.
type loadClient struct {
	base string
	hc   *http.Client
}

func (c *loadClient) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var apiErr ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("%s %s: %s (%d)", method, path, apiErr.Error, resp.StatusCode)
		}
		return fmt.Errorf("%s %s: status %d", method, path, resp.StatusCode)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// RunLoad fires cfg.Queries mixed mine/explore queries at cfg.Concurrency
// against one prepared session and reports throughput and latency
// percentiles. Every mine uses the same options, so the responses must all
// equal a baseline mined before the storm — the report records whether that
// held ("consistency: verified"), making the run a serving-path correctness
// check, not just a stopwatch.
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	c := &loadClient{base: cfg.BaseURL, hc: &http.Client{Timeout: cfg.Timeout}}

	var created SessionInfo
	err := c.do("POST", "/v1/datasets", CreateRequest{
		Generator: &GeneratorSpec{Name: cfg.Dataset, Rows: cfg.Rows, Seed: 1},
		Prepare:   PrepareSpec{SampleSize: cfg.SampleSize, Seed: 1},
	}, &created)
	if err != nil {
		return nil, fmt.Errorf("creating load session: %w", err)
	}
	sessionPath := "/v1/datasets/" + created.ID
	defer c.do("DELETE", sessionPath, nil, nil)

	mineReq := MineRequest{K: cfg.K, SampleSize: cfg.SampleSize, Seed: 1}
	var baseline MineResponse
	if err := c.do("POST", sessionPath+"/mine", mineReq, &baseline); err != nil {
		return nil, fmt.Errorf("baseline mine: %w", err)
	}

	latencies := make([]time.Duration, cfg.Queries)
	outcomes := make([]error, cfg.Queries)
	isExplore := make([]bool, cfg.Queries)
	var mismatches atomic.Int64
	var next atomic.Int64

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.Queries {
					return
				}
				explore := cfg.ExploreEvery > 0 && i%cfg.ExploreEvery == cfg.ExploreEvery-1
				isExplore[i] = explore
				qStart := time.Now()
				if explore {
					var resp ExploreResponse
					outcomes[i] = c.do("POST", sessionPath+"/explore", ExploreRequest{K: cfg.K, GroupBys: 1, Seed: 1}, &resp)
					if outcomes[i] == nil && len(resp.Rules) == 0 {
						outcomes[i] = fmt.Errorf("explore %d returned no rules", i)
					}
				} else {
					var resp MineResponse
					outcomes[i] = c.do("POST", sessionPath+"/mine", mineReq, &resp)
					if outcomes[i] == nil && !sameRules(resp.Rules, baseline.Rules) {
						mismatches.Add(1)
						outcomes[i] = fmt.Errorf("mine %d diverged from the baseline rule list", i)
					}
				}
				latencies[i] = time.Since(qStart)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	rep := &LoadReport{
		Queries:   cfg.Queries,
		Wall:      wall,
		InfoGain:  baseline.InfoGain,
		RuleCount: len(baseline.Rules),
	}
	for i := range outcomes {
		if isExplore[i] {
			rep.Explores++
		} else {
			rep.Mines++
		}
		if outcomes[i] != nil {
			rep.Errors++
			if rep.FirstError == "" {
				rep.FirstError = outcomes[i].Error()
			}
		}
	}
	if wall > 0 {
		rep.Throughput = float64(cfg.Queries) / wall.Seconds()
	}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rep.P50 = percentile(sorted, 0.50)
	rep.P95 = percentile(sorted, 0.95)
	rep.Max = sorted[len(sorted)-1]
	if mismatches.Load() == 0 && rep.Errors == 0 {
		rep.Consistency = "verified"
	} else {
		rep.Consistency = fmt.Sprintf("%d mismatches", mismatches.Load())
	}
	return rep, nil
}

func sameRules(a, b []RuleJSON) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Display != b[i].Display || a[i].Count != b[i].Count {
			return false
		}
	}
	return true
}

// percentile returns the value at fraction q of a sorted slice.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
