package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// handleMetrics serves GET /v1/metrics as Prometheus-style text: admission
// counters (in-flight, queued, admitted, rejected), result-cache
// hits/misses/evictions, and per-session gauges plus the lifetime
// SessionStats counters and phase durations each session's substrate has
// accumulated. Session ids are validated to a label-safe alphabet at
// create time; metric and phase names are internal identifiers.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	var b strings.Builder
	gauge := func(name, help string, v any, labels string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s%s %v\n", name, help, name, name, labels, v)
	}
	counter := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}

	s.mu.Lock()
	numSessions := len(s.sessions)
	s.mu.Unlock()
	if s.conf.ShardID != "" {
		gauge("sirumd_shard_info", "Shard identity of this daemon within a multi-node cluster.",
			1, fmt.Sprintf("{shard_id=%q,advertise=%q}", s.conf.ShardID, s.conf.Advertise))
	}
	gauge("sirumd_sessions", "Registered prepared sessions.", numSessions, "")
	gauge("sirumd_in_flight", "Queries holding an execution slot right now.", len(s.sem), "")
	gauge("sirumd_queued", "Queries waiting for an admission slot right now.", s.queued.Load(), "")
	counter("sirumd_queries_total", "Units of work admitted to execute (queries and session preparations).")
	fmt.Fprintf(&b, "sirumd_queries_total %d\n", s.queries.Load())
	counter("sirumd_rejected_total", "Requests turned away at admission.")
	fmt.Fprintf(&b, "sirumd_rejected_total %d\n", s.rejected.Load())

	if s.cache != nil {
		cs := s.cache.stats()
		counter("sirumd_result_cache_hits_total", "Queries answered from the result cache (no admission, no backend work).")
		fmt.Fprintf(&b, "sirumd_result_cache_hits_total %d\n", cs.hits)
		counter("sirumd_result_cache_misses_total", "Cache lookups that fell through to execution.")
		fmt.Fprintf(&b, "sirumd_result_cache_misses_total %d\n", cs.misses)
		counter("sirumd_result_cache_evictions_total", "Entries evicted by the LRU bound.")
		fmt.Fprintf(&b, "sirumd_result_cache_evictions_total %d\n", cs.evictions)
		gauge("sirumd_result_cache_entries", "Entries currently cached.", cs.entries, "")
	}

	sessions := s.snapshotSessions()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].id < sessions[j].id })
	if len(sessions) > 0 {
		counter("sirumd_session_queries_total", "Queries answered per session (including cached).")
		for _, sess := range sessions {
			fmt.Fprintf(&b, "sirumd_session_queries_total{session=%q} %d\n", sess.id, sess.queries.Load())
		}
		fmt.Fprintf(&b, "# HELP sirumd_session_rows Accumulated rows per session.\n# TYPE sirumd_session_rows gauge\n")
		for _, sess := range sessions {
			fmt.Fprintf(&b, "sirumd_session_rows{session=%q} %d\n", sess.id, sess.rows.Load())
		}
		fmt.Fprintf(&b, "# HELP sirumd_session_epoch Appends absorbed per session (the cache-invalidation counter).\n# TYPE sirumd_session_epoch gauge\n")
		for _, sess := range sessions {
			fmt.Fprintf(&b, "sirumd_session_epoch{session=%q} %d\n", sess.id, sess.p.Epoch())
		}
		// All samples of a family must stay contiguous under its TYPE
		// line, so snapshot once and emit the two families separately.
		snaps := make(map[string]struct {
			counters map[string]int64
			phases   map[string]float64
		}, len(sessions))
		for _, sess := range sessions {
			st := sess.p.Stats()
			phases := make(map[string]float64, len(st.Lifetime.Phases))
			for name, d := range st.Lifetime.Phases {
				phases[name] = d.Seconds()
			}
			snaps[sess.id] = struct {
				counters map[string]int64
				phases   map[string]float64
			}{st.Lifetime.Counters, phases}
		}
		counter("sirumd_session_lifetime_total", "Lifetime substrate counters per session, by counter name.")
		for _, sess := range sessions {
			snap := snaps[sess.id]
			for _, name := range sortedKeys(snap.counters) {
				fmt.Fprintf(&b, "sirumd_session_lifetime_total{session=%q,counter=%q} %d\n", sess.id, name, snap.counters[name])
			}
		}
		counter("sirumd_session_phase_seconds_total", "Lifetime phase durations per session, in seconds.")
		for _, sess := range sessions {
			snap := snaps[sess.id]
			for _, name := range sortedKeys(snap.phases) {
				fmt.Fprintf(&b, "sirumd_session_phase_seconds_total{session=%q,phase=%q} %g\n", sess.id, name, snap.phases[name])
			}
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, err := w.Write([]byte(b.String()))
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
