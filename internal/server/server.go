// Package server implements sirumd: an HTTP/JSON daemon serving informative
// rule mining over a registry of named prepared sessions. The paper frames
// SIRUM as an interactive tool — an analyst repeatedly asks for the K most
// informative rules under evolving priors — so the daemon holds each dataset
// prepared once (loaded, partitioned, sampled, indexed) and answers many
// cheap per-query passes against it, concurrently.
//
// Endpoints (all JSON):
//
//	POST   /v1/datasets            create a prepared session (generator or CSV)
//	GET    /v1/datasets            list sessions
//	GET    /v1/datasets/{id}       one session with lifetime stats
//	DELETE /v1/datasets/{id}       close and unregister a session
//	POST   /v1/datasets/{id}/mine     one mining query
//	POST   /v1/datasets/{id}/explore  one data-cube exploration query
//	POST   /v1/datasets/{id}/append   fold new rows in, refit/re-mine
//	GET    /v1/healthz             liveness and load counters
//
// An admission-control semaphore bounds the queries executing at once;
// excess requests queue until a slot frees or their context is cancelled.
// Close drains in-flight queries before tearing sessions down.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sirum"
)

// Config sizes the daemon.
type Config struct {
	// MaxInFlight bounds the units of heavy work executing at once —
	// mine/explore/append queries and session preparation (default
	// 2 × GOMAXPROCS). Requests beyond it queue; they fail with 503 only
	// when their context is cancelled while waiting.
	MaxInFlight int
	// MaxBodyBytes caps a request body (default 64 MiB) so one oversized
	// CSV or row batch cannot exhaust memory before validation.
	MaxBodyBytes int64
	// Now stamps session creation times (defaults to time.Now; tests pin it).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Server is the daemon state: the session registry plus admission control.
// Create with New, serve via Handler, tear down with Close.
type Server struct {
	conf Config
	mux  *http.ServeMux
	sem  chan struct{} // admission: one slot per executing query

	mu       sync.Mutex
	sessions map[string]*session
	nextID   int
	closed   bool

	inflight sync.WaitGroup // queries admitted but not yet finished
	queries  atomic.Int64   // queries answered (including failed ones)
	rejected atomic.Int64   // queries turned away at admission
}

// storeMax raises v to n monotonically: appends only grow a session, and
// handlers may reach their post-Append store out of order.
func storeMax(v *atomic.Int64, n int64) {
	for {
		cur := v.Load()
		if n <= cur || v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// session is one registry entry: a prepared mining session plus bookkeeping.
type session struct {
	id      string
	ds      *sirum.Dataset // creation-time dataset; the schema never changes
	p       *sirum.Prepared
	created time.Time
	queries atomic.Int64
	rows    atomic.Int64 // cached row count, so listings never wait behind a long Append holding the session lock
}

// New builds a server with an empty session registry.
func New(conf Config) *Server {
	conf = conf.withDefaults()
	s := &Server{
		conf:     conf,
		mux:      http.NewServeMux(),
		sem:      make(chan struct{}, conf.MaxInFlight),
		sessions: make(map[string]*session),
	}
	s.mux.HandleFunc("POST /v1/datasets", s.wrap(s.handleCreate))
	s.mux.HandleFunc("GET /v1/datasets", s.wrap(s.handleList))
	s.mux.HandleFunc("GET /v1/datasets/{id}", s.wrap(s.handleGet))
	s.mux.HandleFunc("DELETE /v1/datasets/{id}", s.wrap(s.handleDelete))
	s.mux.HandleFunc("POST /v1/datasets/{id}/mine", s.wrap(s.handleMine))
	s.mux.HandleFunc("POST /v1/datasets/{id}/explore", s.wrap(s.handleExplore))
	s.mux.HandleFunc("POST /v1/datasets/{id}/append", s.wrap(s.handleAppend))
	s.mux.HandleFunc("GET /v1/healthz", s.wrap(s.handleHealth))
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains in-flight queries, then closes and unregisters every session.
// New work is rejected from the moment Close is called. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	drain := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		drain = append(drain, sess)
	}
	s.sessions = make(map[string]*session)
	s.mu.Unlock()

	// Graceful shutdown: every admitted query finishes against its session
	// before any Prepared.Close tears the substrate down.
	s.inflight.Wait()
	var firstErr error
	for _, sess := range drain {
		if err := sess.p.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// apiError carries an HTTP status with a message.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func errf(status int, format string, args ...any) error {
	return &apiError{status: status, msg: fmt.Sprintf(format, args...)}
}

// mapError classifies an error into an HTTP status: explicit apiErrors keep
// theirs; library validation errors (the "sirum:"/"miner:"/"explore:"
// prefixes — bad variant, foreign backend, mismatched schema or sample
// options) are the caller's fault; anything else is internal.
func mapError(err error) (int, string) {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.status, ae.msg
	}
	msg := err.Error()
	if strings.Contains(msg, "session is closed") {
		return http.StatusConflict, msg
	}
	for _, prefix := range []string{"sirum:", "miner:", "explore:", "dataset:", "datagen:"} {
		if strings.HasPrefix(msg, prefix) {
			return http.StatusBadRequest, msg
		}
	}
	return http.StatusInternalServerError, msg
}

// wrap adapts an error-returning handler to http.HandlerFunc with uniform
// JSON error mapping.
func (s *Server) wrap(h func(w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if err := h(w, r); err != nil {
			status, msg := mapError(err)
			writeJSON(w, status, ErrorResponse{Error: msg})
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.conf.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return errf(http.StatusRequestEntityTooLarge, "request body over %d bytes", tooLarge.Limit)
		}
		return errf(http.StatusBadRequest, "bad request body: %v", err)
	}
	return nil
}

// admit takes one admission slot, queueing while the semaphore is full.
// The returned release must be called when the query finishes.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errf(http.StatusServiceUnavailable, "server is shutting down")
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	select {
	case s.sem <- struct{}{}:
		s.queries.Add(1)
		return func() {
			<-s.sem
			s.inflight.Done()
		}, nil
	case <-ctx.Done():
		s.inflight.Done()
		s.rejected.Add(1)
		return nil, errf(http.StatusServiceUnavailable, "query queue full: %v", ctx.Err())
	}
}

// lookup resolves a session id.
func (s *Server) lookup(id string) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, errf(http.StatusNotFound, "unknown dataset %q", id)
	}
	return sess, nil
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) error {
	var req CreateRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		return err
	}
	// Preparation is the heaviest work the daemon does (load, partition,
	// sample, index); it takes an admission slot like any query so a burst
	// of creates cannot starve admitted traffic.
	release, err := s.admit(r.Context())
	if err != nil {
		return err
	}
	defer release()
	var ds *sirum.Dataset
	switch {
	case req.Generator != nil && req.CSV != "":
		return errf(http.StatusBadRequest, "use either generator or csv, not both")
	case req.Generator != nil:
		rows := req.Generator.Rows
		if rows <= 0 {
			rows = 10000
		}
		seed := req.Generator.Seed
		if seed == 0 {
			seed = 1
		}
		ds, err = sirum.Generate(req.Generator.Name, rows, seed)
	case req.CSV != "":
		if req.Measure == "" {
			return errf(http.StatusBadRequest, "measure is required with csv")
		}
		ds, err = sirum.ReadCSV(strings.NewReader(req.CSV), req.Measure, req.Ignore...)
	default:
		return errf(http.StatusBadRequest, "one of generator or csv is required")
	}
	if err != nil {
		return err
	}

	p, err := ds.Prepare(sirum.PrepareOptions{
		SampleSize:     req.Prepare.SampleSize,
		Seed:           req.Prepare.Seed,
		SampleFraction: req.Prepare.SampleFraction,
		Cluster:        sirum.Cluster{Executors: req.Prepare.Executors, PoolLimit: req.Prepare.PoolLimit},
		Backend:        sirum.Backend(req.Prepare.Backend),
		RemineFactor:   req.Prepare.RemineFactor,
	})
	if err != nil {
		return err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		p.Close()
		return errf(http.StatusServiceUnavailable, "server is shutting down")
	}
	id := req.ID
	if id == "" {
		s.nextID++
		id = fmt.Sprintf("d%d", s.nextID)
	}
	if _, exists := s.sessions[id]; exists {
		s.mu.Unlock()
		p.Close()
		return errf(http.StatusConflict, "dataset %q already exists", id)
	}
	sess := &session{id: id, ds: ds, p: p, created: s.conf.Now()}
	sess.rows.Store(int64(ds.NumRows()))
	s.sessions[id] = sess
	s.mu.Unlock()

	writeJSON(w, http.StatusCreated, s.info(sess, false))
	return nil
}

func (s *Server) info(sess *session, withStats bool) SessionInfo {
	inf := SessionInfo{
		ID:        sess.id,
		Rows:      int(sess.rows.Load()),
		Dims:      sess.ds.DimNames(),
		Measure:   sess.ds.MeasureName(),
		Queries:   sess.queries.Load(),
		CreatedAt: sess.created,
	}
	if withStats {
		st := sess.p.Stats()
		inf.Stats = &st
	}
	return inf
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) error {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	resp := ListResponse{Sessions: make([]SessionInfo, 0, len(sessions))}
	for _, sess := range sessions {
		resp.Sessions = append(resp.Sessions, s.info(sess, false))
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) error {
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, s.info(sess, true))
	return nil
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	if !ok {
		return errf(http.StatusNotFound, "unknown dataset %q", id)
	}
	// Prepared.Close blocks until queries already holding the session's
	// read-lock finish, so deletion drains naturally.
	if err := sess.p.Close(); err != nil {
		return err
	}
	w.WriteHeader(http.StatusNoContent)
	return nil
}

func (req MineRequest) options() sirum.Options {
	return sirum.Options{
		K:              req.K,
		SampleSize:     req.SampleSize,
		Variant:        sirum.Variant(req.Variant),
		Epsilon:        req.Epsilon,
		Seed:           req.Seed,
		SampleFraction: req.SampleFraction,
	}
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) error {
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		return err
	}
	var req MineRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		return err
	}
	release, err := s.admit(r.Context())
	if err != nil {
		return err
	}
	defer release()
	sess.queries.Add(1)
	res, err := sess.p.Mine(req.options())
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, mineResponse(res))
	return nil
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) error {
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		return err
	}
	var req ExploreRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		return err
	}
	release, err := s.admit(r.Context())
	if err != nil {
		return err
	}
	defer release()
	sess.queries.Add(1)
	res, err := sess.p.Explore(sirum.ExploreOptions{K: req.K, GroupBys: req.GroupBys, Seed: req.Seed})
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, ExploreResponse{
		Prior:        publicRules(res.Prior),
		MineResponse: mineResponse(res.Result),
	})
	return nil
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) error {
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		return err
	}
	var req AppendRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		return err
	}
	if len(req.Rows) == 0 {
		return errf(http.StatusBadRequest, "rows is required")
	}
	b := sirum.NewBuilder(sess.ds.DimNames(), sess.ds.MeasureName())
	for i, row := range req.Rows {
		if err := b.Add(row.Dims, row.Measure); err != nil {
			return errf(http.StatusBadRequest, "row %d: %v", i, err)
		}
	}
	batch, err := b.Build()
	if err != nil {
		return errf(http.StatusBadRequest, "building batch: %v", err)
	}
	release, err := s.admit(r.Context())
	if err != nil {
		return err
	}
	defer release()
	sess.queries.Add(1)
	res, err := sess.p.Append(batch, req.options())
	if err != nil {
		return err
	}
	storeMax(&sess.rows, int64(res.Rows))
	writeJSON(w, http.StatusOK, AppendResponse{
		Remined: res.Remined,
		Rows:    res.Rows,
		KL:      res.KL,
		Rules:   publicRules(res.Rules),
	})
	return nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) error {
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:   "ok",
		Sessions: n,
		InFlight: len(s.sem),
		Queries:  s.queries.Load(),
		Rejected: s.rejected.Load(),
	})
	return nil
}
