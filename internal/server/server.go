// Package server implements sirumd: an HTTP/JSON daemon serving informative
// rule mining over a registry of named prepared sessions. The paper frames
// SIRUM as an interactive tool — an analyst repeatedly asks for the K most
// informative rules under evolving priors — so the daemon holds each dataset
// prepared once (loaded, partitioned, sampled, indexed) and answers many
// cheap per-query passes against it, concurrently.
//
// Endpoints (all JSON unless noted):
//
//	POST   /v1/datasets            create a prepared session (generator or CSV)
//	GET    /v1/datasets            list sessions
//	GET    /v1/datasets/{id}       one session with lifetime stats
//	DELETE /v1/datasets/{id}       close and unregister a session
//	POST   /v1/datasets/{id}/mine     one mining query
//	POST   /v1/datasets/{id}/explore  one data-cube exploration query
//	POST   /v1/datasets/{id}/append   fold new rows in, refit/re-mine
//	GET    /v1/metrics             Prometheus-style text metrics
//	GET    /v1/healthz             liveness and load counters
//
// Every session and query has a canonical identity (internal/spec): the
// dataset's source fingerprint plus an epoch bumped by each Append, the
// prep fingerprint, and the normalized query fingerprint. Identical repeat
// queries are answered from a size-bounded LRU keyed by that triple —
// consulted before admission, so hits skip the semaphore and do no backend
// work — and Append invalidates for free by bumping the epoch. With
// Config.SnapshotDir set, the registry is journaled (spec-encoded) on
// create/append/delete and Restore re-prepares it on boot.
//
// An admission-control semaphore bounds the queries executing at once;
// excess requests queue until a slot frees or their context is cancelled.
// Close drains in-flight queries before tearing sessions down.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sirum"
	"sirum/internal/spec"
)

// Config sizes the daemon.
type Config struct {
	// MaxInFlight bounds the units of heavy work executing at once —
	// mine/explore/append queries and session preparation (default
	// 2 × GOMAXPROCS). Requests beyond it queue; they fail with 503 only
	// when their context is cancelled while waiting.
	MaxInFlight int
	// MaxBodyBytes caps a request body (default 64 MiB) so one oversized
	// CSV or row batch cannot exhaust memory before validation.
	MaxBodyBytes int64
	// CacheEntries bounds the result cache: how many recent query
	// responses are retained for exact-repeat traffic (default 256;
	// negative disables caching).
	CacheEntries int
	// SnapshotDir enables session persistence: the registry is journaled
	// here on create/append/delete, and Restore re-prepares it on boot.
	// Empty disables persistence.
	SnapshotDir string
	// NoFsync skips the fsync the snapshotter otherwise issues before
	// acknowledging a create or append. Durability then only covers process
	// crashes, not power loss — acceptable for tests and benchmarks, not
	// for production journals.
	NoFsync bool
	// ShardID names this daemon within a multi-node cluster; it is reported
	// in /v1/healthz and /v1/metrics so a router can label the shard by its
	// logical identity rather than its address. Empty for standalone daemons.
	ShardID string
	// Advertise is the address other nodes should reach this daemon at
	// (routers dial it; it may differ from the listen address behind NAT or
	// port mapping). Reported alongside ShardID.
	Advertise string
	// Now stamps session creation times (defaults to time.Now; tests pin it).
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// validSessionID bounds ids to a path- and label-safe alphabet: they name
// snapshot files and metric labels, not just map keys.
var validSessionID = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`).MatchString

// ValidSessionID reports whether id is acceptable as a session name: 1-64
// chars of [A-Za-z0-9._-], starting alphanumeric. Routers apply the same
// rule before placing a create, so an invalid id is rejected without a hop.
func ValidSessionID(id string) bool { return validSessionID(id) }

// Server is the daemon state: the session registry, the result cache and
// admission control. Create with New, optionally Restore from a snapshot
// directory, serve via Handler, tear down with Close.
type Server struct {
	conf    Config
	mux     *http.ServeMux
	sem     chan struct{} // admission: one slot per executing query
	cache   *resultCache  // nil when caching is disabled
	snap    *snapshotter  // nil when persistence is disabled or broken
	snapErr error         // why snap is nil despite SnapshotDir being set

	mu       sync.Mutex
	sessions map[string]*session
	nextID   int
	closed   bool

	inflight sync.WaitGroup // queries admitted but not yet finished
	queries  atomic.Int64   // queries admitted to execute (including failed ones)
	rejected atomic.Int64   // queries turned away at admission
	queued   atomic.Int64   // queries waiting for an admission slot right now
}

// storeMax raises v to n monotonically: appends only grow a session, and
// handlers may reach their post-Append store out of order.
func storeMax(v *atomic.Int64, n int64) {
	for {
		cur := v.Load()
		if n <= cur || v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// session is one registry entry: a prepared mining session plus bookkeeping.
type session struct {
	id      string
	ds      *sirum.Dataset // creation-time dataset; the schema never changes
	p       *sirum.Prepared
	key     [32]byte // session cache identity: H(dataset source fp ‖ prep fp)
	created time.Time
	queries atomic.Int64
	rows    atomic.Int64 // cached row count, so listings never wait behind a long Append holding the session lock
	// journalMu orders append-journal records with their application, so
	// the on-disk replay sequence matches the in-memory one; dropped
	// (guarded by it) stops an in-flight append from resurrecting the
	// journal of a session deleted under it. The manifest/csv/appends
	// trio (also guarded by it after registration) mirrors the on-disk
	// journal in memory: it is the session's portable identity, what
	// /export serializes — kept even when persistence is off.
	journalMu sync.Mutex
	dropped   bool
	m         manifest
	csv       string
	appends   []appendRecord
}

// New builds a server with an empty session registry. When
// Config.SnapshotDir is set, call Restore before serving to bring
// journaled sessions back.
func New(conf Config) *Server {
	conf = conf.withDefaults()
	s := &Server{
		conf:     conf,
		mux:      http.NewServeMux(),
		sem:      make(chan struct{}, conf.MaxInFlight),
		sessions: make(map[string]*session),
	}
	if conf.CacheEntries > 0 {
		s.cache = newResultCache(conf.CacheEntries)
	}
	if conf.SnapshotDir != "" {
		// A broken directory must not silently disable persistence: the
		// error is kept and returned by Restore and by every handler that
		// would have journaled (see persistence()).
		s.snap, s.snapErr = newSnapshotter(conf.SnapshotDir, !conf.NoFsync)
	}
	s.mux.HandleFunc("POST /v1/datasets", s.wrap(s.handleCreate))
	s.mux.HandleFunc("GET /v1/datasets", s.wrap(s.handleList))
	s.mux.HandleFunc("GET /v1/datasets/{id}", s.wrap(s.handleGet))
	s.mux.HandleFunc("DELETE /v1/datasets/{id}", s.wrap(s.handleDelete))
	s.mux.HandleFunc("POST /v1/datasets/{id}/mine", s.wrap(s.handleMine))
	s.mux.HandleFunc("POST /v1/datasets/{id}/explore", s.wrap(s.handleExplore))
	s.mux.HandleFunc("POST /v1/datasets/{id}/append", s.wrap(s.handleAppend))
	s.mux.HandleFunc("GET /v1/datasets/{id}/export", s.wrap(s.handleExport))
	s.mux.HandleFunc("POST /v1/datasets/import", s.wrap(s.handleImport))
	s.mux.HandleFunc("GET /v1/metrics", s.wrap(s.handleMetrics))
	s.mux.HandleFunc("GET /v1/healthz", s.wrap(s.handleHealth))
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Restore re-prepares every session journaled in Config.SnapshotDir:
// generator sources are regenerated from their spec, CSV sources re-read
// from their spill, and appended batches replayed in order, so the
// restored session reaches the same rows and epoch it had when the journal
// was written. Returns how many sessions came back. A nil error with 0
// sessions is a cold start.
func (s *Server) Restore() (int, error) {
	if s.conf.SnapshotDir == "" {
		return 0, nil
	}
	if s.snap == nil {
		return 0, fmt.Errorf("snapshot directory %q is unusable: %v", s.conf.SnapshotDir, s.snapErr)
	}
	entries, err := s.snap.load()
	if err != nil {
		return 0, err
	}
	for i, e := range entries {
		if err := s.restoreSession(e); err != nil {
			return i, fmt.Errorf("restoring session %q: %w", e.m.ID, err)
		}
	}
	return len(entries), nil
}

func (s *Server) restoreSession(e snapshotEntry) error {
	ds, p, err := s.rebuildSession(e)
	if err != nil {
		return err
	}
	if _, err := s.addSession(e.m.ID, ds, p, e); err != nil {
		p.Close()
		return err
	}
	return nil
}

// rebuildSession materializes a journaled session: the dataset built from
// its manifest source, prepared, and every journaled append replayed in
// order. This is the one replay path — Restore and /import both use it —
// so a rebuilt session reaches exactly the rows, epoch and content chain
// the journal describes, which is what makes import verification by
// fingerprint trustworthy.
func (s *Server) rebuildSession(e snapshotEntry) (*sirum.Dataset, *sirum.Prepared, error) {
	ds, err := buildDataset(CreateRequest{
		Generator: e.m.Generator,
		CSV:       e.csv,
		Measure:   e.m.Measure,
		Ignore:    e.m.Ignore,
	})
	if err != nil {
		return nil, nil, err
	}
	p, err := ds.Prepare(e.m.Prepare.options())
	if err != nil {
		return nil, nil, err
	}
	for i, rec := range e.appends {
		batch, err := buildBatch(ds, rec.Rows)
		if err != nil {
			p.Close()
			return nil, nil, fmt.Errorf("replaying append %d: %w", i, err)
		}
		if _, err := p.Append(batch, rec.Mine.options()); err != nil {
			p.Close()
			return nil, nil, fmt.Errorf("replaying append %d: %w", i, err)
		}
	}
	return ds, p, nil
}

// Close drains in-flight queries, then closes and unregisters every session.
// New work is rejected from the moment Close is called. Snapshot journals
// are left in place — surviving restarts is their whole point. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	drain := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		drain = append(drain, sess)
	}
	s.sessions = make(map[string]*session)
	s.mu.Unlock()

	// Graceful shutdown: every admitted query finishes against its session
	// before any Prepared.Close tears the substrate down.
	s.inflight.Wait()
	var firstErr error
	for _, sess := range drain {
		if err := sess.p.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// apiError carries an HTTP status with a message.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func errf(status int, format string, args ...any) error {
	return &apiError{status: status, msg: fmt.Sprintf(format, args...)}
}

// mapError classifies an error into an HTTP status: explicit apiErrors keep
// theirs; library validation errors (the "sirum:"/"miner:"/"explore:"/
// "rule:" prefixes — bad variant, foreign backend, mismatched schema or
// sample options, a generalization blow-up over a too-wide schema) are the
// caller's fault; anything else — including a "cube:" corrupt-key error,
// which indicates pipeline state corruption rather than caller input — is
// internal.
func mapError(err error) (int, string) {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.status, ae.msg
	}
	msg := err.Error()
	if strings.Contains(msg, "session is closed") {
		return http.StatusConflict, msg
	}
	for _, prefix := range []string{"sirum:", "miner:", "explore:", "dataset:", "datagen:", "rule:"} {
		if strings.HasPrefix(msg, prefix) {
			return http.StatusBadRequest, msg
		}
	}
	return http.StatusInternalServerError, msg
}

// wrap adapts an error-returning handler to http.HandlerFunc with uniform
// JSON error mapping.
func (s *Server) wrap(h func(w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if err := h(w, r); err != nil {
			status, msg := mapError(err)
			writeJSON(w, status, ErrorResponse{Error: msg})
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	//sirum:allow pinnedencode control-plane envelope only (errors, listings, health); result bodies stream via writeOpenBody
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.conf.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return errf(http.StatusRequestEntityTooLarge, "request body over %d bytes", tooLarge.Limit)
		}
		return errf(http.StatusBadRequest, "bad request body: %v", err)
	}
	return nil
}

// admit takes one admission slot, queueing while the semaphore is full.
// The returned release must be called when the query finishes.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errf(http.StatusServiceUnavailable, "server is shutting down")
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	s.queued.Add(1)
	defer s.queued.Add(-1)
	select {
	case s.sem <- struct{}{}:
		s.queries.Add(1)
		return func() {
			<-s.sem
			s.inflight.Done()
		}, nil
	case <-ctx.Done():
		s.inflight.Done()
		s.rejected.Add(1)
		return nil, errf(http.StatusServiceUnavailable, "query queue full: %v", ctx.Err())
	}
}

// lookup resolves a session id.
func (s *Server) lookup(id string) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, errf(http.StatusNotFound, "unknown dataset %q", id)
	}
	return sess, nil
}

// persistence returns the snapshotter when journaling is enabled, nil
// when it never was, and an error when SnapshotDir is set but the
// directory is unusable — silently serving non-durable sessions would be
// worse than failing the request.
func (s *Server) persistence() (*snapshotter, error) {
	if s.conf.SnapshotDir == "" {
		return nil, nil
	}
	if s.snap == nil {
		return nil, errf(http.StatusInternalServerError, "session persistence unavailable: %v", s.snapErr)
	}
	return s.snap, nil
}

// cacheGet consults the result cache; the caller computed key from the
// session's canonical specs. Misses and hits are counted inside the cache.
func (s *Server) cacheGet(key cacheKey) (any, bool) {
	if s.cache == nil {
		return nil, false
	}
	return s.cache.get(key)
}

// cachePut inserts a computed response unless an Append raced the query:
// a result is only cacheable when the content chain it was keyed at still
// stands after execution, otherwise it belongs to no single dataset state.
func (s *Server) cachePut(sess *session, key cacheKey, v any) {
	if s.cache == nil || sess.p.DatasetSpec().Chain != key.chain {
		return
	}
	s.cache.put(key, v)
}

// buildDataset materializes the data source of a create request (also used
// verbatim to rebuild journaled sessions on Restore, which is what keeps
// restored fingerprints identical to the originals). It normalizes through
// sourceSpec, so the dataset a shard builds carries exactly the identity a
// router computed when it placed the request.
func buildDataset(req CreateRequest) (*sirum.Dataset, error) {
	src, err := req.sourceSpec()
	if err != nil {
		return nil, err
	}
	if src.Generator != nil {
		return sirum.Generate(src.Generator.Name, src.Generator.Rows, src.Generator.Seed)
	}
	return sirum.ReadCSV(strings.NewReader(req.CSV), req.Measure, req.Ignore...)
}

// buildBatch assembles an append batch against a session's schema.
func buildBatch(ds *sirum.Dataset, rows []RowJSON) (*sirum.Dataset, error) {
	if len(rows) == 0 {
		return nil, errf(http.StatusBadRequest, "rows is required")
	}
	b := sirum.NewBuilder(ds.DimNames(), ds.MeasureName())
	for i, row := range rows {
		if err := b.Add(row.Dims, row.Measure); err != nil {
			return nil, errf(http.StatusBadRequest, "row %d: %v", i, err)
		}
	}
	batch, err := b.Build()
	if err != nil {
		return nil, errf(http.StatusBadRequest, "building batch: %v", err)
	}
	return batch, nil
}

// addSession installs a prepared session in the registry under id (one is
// assigned when empty), deriving its cache identity from the canonical
// specs. e carries the session's journaled identity (manifest, CSV spill,
// replayed appends); the manifest's ID and CSVFile are normalized here so
// auto-assigned ids journal correctly. The caller owns p until addSession
// succeeds.
func (s *Server) addSession(id string, ds *sirum.Dataset, p *sirum.Prepared, e snapshotEntry) (*session, error) {
	key := spec.SessionKey(p.DatasetSpec(), p.PrepSpec())
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errf(http.StatusServiceUnavailable, "server is shutting down")
	}
	if id == "" {
		for {
			s.nextID++
			id = fmt.Sprintf("d%d", s.nextID)
			if _, exists := s.sessions[id]; !exists {
				break
			}
		}
	} else if _, exists := s.sessions[id]; exists {
		return nil, errf(http.StatusConflict, "dataset %q already exists", id)
	}
	e.m.ID = id
	e.m.CSVFile = ""
	if e.csv != "" {
		e.m.CSVFile = id + ".csv"
	}
	sess := &session{id: id, ds: ds, p: p, key: key, created: e.m.CreatedAt,
		m: e.m, csv: e.csv, appends: e.appends}
	sess.rows.Store(int64(p.NumRows()))
	s.sessions[id] = sess
	return sess, nil
}

// dropSession removes id from the registry and closes it, deleting its
// snapshot journal. Used by DELETE and by create rollback.
func (s *Server) dropSession(id string) (bool, error) {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	if !ok {
		return false, nil
	}
	// Mark the session dropped before removing its journal files: an
	// append already past lookup waits on journalMu, sees the flag, and
	// refuses — so no journal write can land after the files are deleted
	// and attach a dead session's rows to a future same-id session.
	sess.journalMu.Lock()
	sess.dropped = true
	sess.journalMu.Unlock()
	if s.snap != nil {
		s.snap.delete(id)
	}
	// Prepared.Close blocks until queries already holding the session's
	// read-lock finish, so deletion drains naturally.
	return true, sess.p.Close()
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) error {
	var req CreateRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		return err
	}
	if req.ID != "" && !validSessionID(req.ID) {
		return errf(http.StatusBadRequest, "session id %q: want 1-64 chars of [A-Za-z0-9._-], starting alphanumeric", req.ID)
	}
	// Preparation is the heaviest work the daemon does (load, partition,
	// sample, index); it takes an admission slot like any query so a burst
	// of creates cannot starve admitted traffic.
	release, err := s.admit(r.Context())
	if err != nil {
		return err
	}
	defer release()
	ds, err := buildDataset(req)
	if err != nil {
		return err
	}
	p, err := ds.Prepare(req.Prepare.options())
	if err != nil {
		return err
	}
	snap, err := s.persistence()
	if err != nil {
		p.Close()
		return err
	}
	sess, err := s.addSession(req.ID, ds, p, snapshotEntry{m: manifest{
		CreatedAt: s.conf.Now(),
		Generator: req.Generator,
		Measure:   req.Measure,
		Ignore:    req.Ignore,
		Prepare:   req.Prepare,
	}, csv: req.CSV})
	if err != nil {
		p.Close()
		return err
	}
	if snap != nil {
		if err := s.journalSession(snap, sess); err != nil {
			s.dropSession(sess.id)
			return errf(http.StatusInternalServerError, "journaling session: %v", err)
		}
	}
	writeJSON(w, http.StatusCreated, s.info(sess, false))
	return nil
}

// journalSession persists a just-registered session — manifest, CSV spill
// and any append records it already carries — under its journal lock:
// save clears the append journal file, so an append racing in between
// registration and save would otherwise have its record silently dropped.
func (s *Server) journalSession(snap *snapshotter, sess *session) error {
	sess.journalMu.Lock()
	defer sess.journalMu.Unlock()
	if sess.dropped {
		return fmt.Errorf("session %q was deleted", sess.id)
	}
	if err := snap.save(sess.m, sess.csv); err != nil {
		return err
	}
	for _, rec := range sess.appends {
		if err := snap.appendBatch(sess.id, rec); err != nil {
			return err
		}
	}
	return nil
}

func (s *Server) info(sess *session, withStats bool) SessionInfo {
	inf := SessionInfo{
		ID:        sess.id,
		Rows:      int(sess.rows.Load()),
		Dims:      sess.ds.DimNames(),
		Measure:   sess.ds.MeasureName(),
		Queries:   sess.queries.Load(),
		CreatedAt: sess.created,
	}
	if withStats {
		st := sess.p.Stats()
		inf.Stats = &st
	}
	return inf
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) error {
	sessions := s.snapshotSessions()
	resp := ListResponse{Sessions: make([]SessionInfo, 0, len(sessions))}
	for _, sess := range sessions {
		resp.Sessions = append(resp.Sessions, s.info(sess, false))
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}

// snapshotSessions copies the registry out from under the lock.
func (s *Server) snapshotSessions() []*session {
	s.mu.Lock()
	defer s.mu.Unlock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	return sessions
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) error {
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, s.info(sess, true))
	return nil
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	ok, err := s.dropSession(id)
	if !ok {
		return errf(http.StatusNotFound, "unknown dataset %q", id)
	}
	if err != nil {
		return err
	}
	w.WriteHeader(http.StatusNoContent)
	return nil
}

func (req MineRequest) options() sirum.Options {
	return sirum.Options{
		K:              req.K,
		SampleSize:     req.SampleSize,
		Variant:        sirum.Variant(req.Variant),
		Epsilon:        req.Epsilon,
		Seed:           req.Seed,
		SampleFraction: req.SampleFraction,
	}
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) error {
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		return err
	}
	var req MineRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		return err
	}
	opts := req.options()
	dsSpec, qSpec, err := sess.p.MineSpec(opts)
	if err != nil {
		return err
	}
	key := cacheKey{session: sess.key, chain: dsSpec.Chain, query: qSpec.Fingerprint()}
	if v, ok := s.cacheGet(key); ok {
		sess.queries.Add(1)
		writeOpenBody(w, http.StatusOK, v.([]byte), true)
		return nil
	}
	release, err := s.admit(r.Context())
	if err != nil {
		return err
	}
	defer release()
	sess.queries.Add(1)
	res, err := sess.p.Mine(opts)
	if err != nil {
		return err
	}
	body, err := appendMineOpen(res)
	if err != nil {
		return err
	}
	s.cachePut(sess, key, body)
	writeOpenBody(w, http.StatusOK, body, false)
	return nil
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) error {
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		return err
	}
	var req ExploreRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		return err
	}
	opts := sirum.ExploreOptions{K: req.K, GroupBys: req.GroupBys, Seed: req.Seed}
	dsSpec, qSpec := sess.p.ExploreSpec(opts)
	key := cacheKey{session: sess.key, chain: dsSpec.Chain, query: qSpec.Fingerprint()}
	if v, ok := s.cacheGet(key); ok {
		sess.queries.Add(1)
		writeOpenBody(w, http.StatusOK, v.([]byte), true)
		return nil
	}
	release, err := s.admit(r.Context())
	if err != nil {
		return err
	}
	defer release()
	sess.queries.Add(1)
	res, err := sess.p.Explore(opts)
	if err != nil {
		return err
	}
	body, err := appendExploreOpen(res.Prior, res.Result)
	if err != nil {
		return err
	}
	s.cachePut(sess, key, body)
	writeOpenBody(w, http.StatusOK, body, false)
	return nil
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) error {
	sess, err := s.lookup(r.PathValue("id"))
	if err != nil {
		return err
	}
	var req AppendRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		return err
	}
	batch, err := buildBatch(sess.ds, req.Rows)
	if err != nil {
		return err
	}
	snap, err := s.persistence()
	if err != nil {
		return err
	}
	release, err := s.admit(r.Context())
	if err != nil {
		return err
	}
	defer release()
	sess.queries.Add(1)
	// journalMu spans the append and its journal record so the on-disk
	// order always matches the applied order.
	sess.journalMu.Lock()
	if sess.dropped {
		sess.journalMu.Unlock()
		return errf(http.StatusConflict, "dataset %q was deleted", sess.id)
	}
	res, err := sess.p.Append(batch, req.options())
	if err == nil {
		rec := appendRecord{Rows: req.Rows, Mine: req.MineRequest}
		sess.appends = append(sess.appends, rec)
		if snap != nil {
			if jerr := snap.appendBatch(sess.id, rec); jerr != nil {
				// The append is applied in memory but not durable; tell the
				// client rather than silently diverging from the journal.
				err = errf(http.StatusInternalServerError, "append applied but not journaled: %v", jerr)
			}
		}
	}
	sess.journalMu.Unlock()
	if err != nil {
		return err
	}
	storeMax(&sess.rows, int64(res.Rows))
	writeOpenBody(w, http.StatusOK, appendAppendOpen(res), false)
	return nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) error {
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	resp := HealthResponse{
		Status:    "ok",
		ShardID:   s.conf.ShardID,
		Advertise: s.conf.Advertise,
		Sessions:  n,
		InFlight:  len(s.sem),
		Queued:    s.queued.Load(),
		Queries:   s.queries.Load(),
		Rejected:  s.rejected.Load(),
	}
	if s.cache != nil {
		cs := s.cache.stats()
		resp.CacheHits = cs.hits
		resp.CacheMisses = cs.misses
	}
	writeJSON(w, http.StatusOK, resp)
	return nil
}
