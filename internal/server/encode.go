package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"unicode/utf8"

	"sirum"
)

// Hand-rolled response encoding for the three query endpoints. The generic
// path (mineResponse → json.Marshal) built a full []RuleJSON intermediate —
// one slice, one Conditions slice and several strings per rule — before a
// second full-size buffer inside the encoder; on a large explore result the
// response was materialized three times. Here rules append straight into one
// byte buffer that is also what the result cache stores, so cache hits write
// the precomputed bytes with zero encoding work.
//
// Cached bodies are "open envelopes": everything up to but excluding the
// closing brace. writeOpenBody finishes them with a constant tail — either
// "}\n" or ",\"cached\":true}\n" — written separately so a cached slice is
// never appended to. Appending would let two concurrent cache hits race on
// the slice's backing array; separate writes keep the shared bytes
// immutable.

var (
	bodyClose       = []byte("}\n")
	bodyCloseCached = []byte(",\"cached\":true}\n")
)

// writeOpenBody completes and writes an open-envelope body.
func writeOpenBody(w http.ResponseWriter, status int, open []byte, cached bool) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(open)
	if cached {
		w.Write(bodyCloseCached)
	} else {
		w.Write(bodyClose)
	}
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal, matching
// encoding/json with HTML escaping off: quote, backslash and control
// characters are escaped, invalid UTF-8 is replaced with U+FFFD, and the
// line separators U+2028/U+2029 are escaped for JS embedding.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '"', '\\':
				dst = append(dst, '\\', b)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	return append(append(dst, s[start:]...), '"')
}

// appendFloat appends f the way encoding/json renders float64 values
// (shortest round-trippable form, 'e' notation only for extreme
// magnitudes), except that NaN and infinities — which json.Marshal rejects,
// turning a whole response into an encoding error — render as 0.
func appendFloat(dst []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(dst, '0')
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Like json: trim the leading zero off a small negative exponent
		// ("1e-07" → "1e-7").
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// appendRule appends one rule in RuleJSON's wire shape. A rule with no
// conditions encodes "conditions":null (the slice the generic encoder built
// was nil) and gain carries omitempty.
func appendRule(dst []byte, r sirum.Rule) []byte {
	dst = append(dst, `{"conditions":`...)
	if len(r.Conditions) == 0 {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i, c := range r.Conditions {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"attr":`...)
			dst = appendJSONString(dst, c.Attr)
			dst = append(dst, `,"value":`...)
			dst = appendJSONString(dst, c.Value)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"display":`...)
	dst = appendJSONString(dst, r.String())
	dst = append(dst, `,"avg":`...)
	dst = appendFloat(dst, r.Avg)
	dst = append(dst, `,"count":`...)
	dst = strconv.AppendInt(dst, r.Count, 10)
	if r.Gain != 0 {
		dst = append(dst, `,"gain":`...)
		dst = appendFloat(dst, r.Gain)
	}
	return append(dst, '}')
}

// appendRules appends a rule array; an empty rule set encodes "[]", never
// null, matching the non-nil slice publicRules always returned.
func appendRules(dst []byte, rules []sirum.Rule) []byte {
	dst = append(dst, '[')
	for i, r := range rules {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendRule(dst, r)
	}
	return append(dst, ']')
}

// appendMarshal appends v through the stock encoder (HTML escaping off, no
// trailing newline) — used for QueryMetrics, whose maps are not on the hot
// path and not worth hand-encoding.
func appendMarshal(dst []byte, v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return dst, err
	}
	return append(dst, bytes.TrimRight(buf.Bytes(), "\n")...), nil
}

// appendMineFields appends MineResponse's fields without the surrounding
// braces, shared between the mine and explore envelopes.
func appendMineFields(dst []byte, res *sirum.Result) ([]byte, error) {
	dst = append(dst, `"rules":`...)
	dst = appendRules(dst, res.Rules)
	dst = append(dst, `,"kl":`...)
	dst = appendFloat(dst, res.KL)
	dst = append(dst, `,"info_gain":`...)
	dst = appendFloat(dst, res.InfoGain)
	dst = append(dst, `,"iterations":`...)
	dst = strconv.AppendInt(dst, int64(res.Iterations), 10)
	dst = append(dst, `,"wall_ns":`...)
	dst = strconv.AppendInt(dst, int64(res.WallTime), 10)
	dst = append(dst, `,"metrics":`...)
	return appendMarshal(dst, res.Metrics)
}

// appendMineOpen builds the open-envelope body of a MineResponse.
func appendMineOpen(res *sirum.Result) ([]byte, error) {
	dst := make([]byte, 0, 256+64*len(res.Rules))
	return appendMineFields(append(dst, '{'), res)
}

// appendExploreOpen builds the open-envelope body of an ExploreResponse:
// the prior rule set followed by the embedded mine fields.
func appendExploreOpen(prior []sirum.Rule, res *sirum.Result) ([]byte, error) {
	dst := make([]byte, 0, 256+64*(len(prior)+len(res.Rules)))
	dst = append(dst, `{"prior":`...)
	dst = appendRules(dst, prior)
	dst = append(dst, ',')
	return appendMineFields(dst, res)
}

// appendAppendOpen builds the open-envelope body of an AppendResponse.
func appendAppendOpen(res *sirum.AppendResult) []byte {
	dst := make([]byte, 0, 128+64*len(res.Rules))
	dst = append(dst, `{"remined":`...)
	dst = strconv.AppendBool(dst, res.Remined)
	dst = append(dst, `,"rows":`...)
	dst = strconv.AppendInt(dst, int64(res.Rows), 10)
	dst = append(dst, `,"kl":`...)
	dst = appendFloat(dst, res.KL)
	dst = append(dst, `,"rules":`...)
	return appendRules(dst, res.Rules)
}
