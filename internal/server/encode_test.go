package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"sirum"
)

// genericRules and genericMine are test-local copies of the reflection-based
// encoding the serve path used before the open-envelope encoder (publicRules
// / mineResponse). The equivalence tests below pin the hand-rolled encoder to
// this shape: any byte stream the new encoder emits must decode to exactly
// what the generic encoder would have produced.
func genericRules(rules []sirum.Rule) []RuleJSON {
	out := make([]RuleJSON, 0, len(rules))
	for _, r := range rules {
		rj := RuleJSON{Display: r.String(), Avg: r.Avg, Count: r.Count, Gain: r.Gain}
		for _, c := range r.Conditions {
			rj.Conditions = append(rj.Conditions, ConditionJSON{Attr: c.Attr, Value: c.Value})
		}
		out = append(out, rj)
	}
	return out
}

func genericMine(res *sirum.Result) MineResponse {
	return MineResponse{
		Rules:      genericRules(res.Rules),
		KL:         res.KL,
		InfoGain:   res.InfoGain,
		Iterations: res.Iterations,
		WallNS:     res.WallTime,
		Metrics:    res.Metrics,
	}
}

// genericEncode marshals v the way writeJSON did: stock encoder, HTML
// escaping off.
func genericEncode(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		t.Fatalf("generic encode: %v", err)
	}
	return buf.Bytes()
}

// nastyResult exercises every encoding edge the wire shape has: empty rule
// lists stay [], nil conditions stay null, omitempty gain, unicode and
// invalid UTF-8 in dictionary strings, HTML characters that must NOT be
// escaped, floats across the f/e format boundary.
func nastyResult() *sirum.Result {
	return &sirum.Result{
		Rules: []sirum.Rule{
			{Avg: 42.5, Count: 3},
			{
				Conditions: []sirum.Condition{
					{Attr: "Day", Value: `Fri"day\`},
					{Attr: "Città", Value: "Łódź\t日本\n"},
					{Attr: "html", Value: "<b>&amp;</b>"},
					{Attr: "bad\xffutf8", Value: "line sep "},
				},
				Avg: -0.000000123, Count: 9_876_543_210, Gain: 1.25e21,
			},
			{
				Conditions: []sirum.Condition{{Attr: "zero", Value: ""}},
				Avg:        math.MaxFloat64, Count: 0, Gain: 0.1,
			},
		},
		KL:         0.6931471805599453,
		InfoGain:   1.5e-7,
		Iterations: 4,
		WallTime:   123456789 * time.Nanosecond,
		Metrics: sirum.QueryMetrics{
			Counters: map[string]int64{"rows_scanned": 42, "lca_comparisons": 7},
			Phases:   map[string]time.Duration{"cube": 5 * time.Millisecond},
		},
	}
}

// TestMineOpenEnvelopeMatchesGenericEncoding pins the hand-rolled mine body
// to the generic encoder's wire shape, both decoded and byte-for-byte.
func TestMineOpenEnvelopeMatchesGenericEncoding(t *testing.T) {
	res := nastyResult()
	open, err := appendMineOpen(res)
	if err != nil {
		t.Fatal(err)
	}
	body := append(append([]byte(nil), open...), bodyClose...)
	if !json.Valid(body) {
		t.Fatalf("open envelope + close is not valid JSON:\n%s", body)
	}
	wantBytes := genericEncode(t, genericMine(res))
	if !bytes.Equal(body, wantBytes) {
		t.Errorf("wire bytes diverge from the generic encoder:\n got %s\nwant %s", body, wantBytes)
	}

	var got, want MineResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(wantBytes, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("decoded response diverges:\n got %+v\nwant %+v", got, want)
	}

	cached := append(append([]byte(nil), open...), bodyCloseCached...)
	var hit MineResponse
	if err := json.Unmarshal(cached, &hit); err != nil {
		t.Fatalf("cached close: %v", err)
	}
	if !hit.Cached {
		t.Error("cached close did not set cached=true")
	}
	hit.Cached = false
	if !reflect.DeepEqual(hit, want) {
		t.Error("cached body differs beyond the cached flag")
	}
}

// TestExploreOpenEnvelopeMatchesGenericEncoding does the same for the
// explore envelope, whose embedded MineResponse fields must inline after
// the prior array exactly as the reflection encoder inlined them.
func TestExploreOpenEnvelopeMatchesGenericEncoding(t *testing.T) {
	res := nastyResult()
	prior := []sirum.Rule{
		{Avg: 1, Count: 2},
		{Conditions: []sirum.Condition{{Attr: "A", Value: "x"}}, Avg: 3.5, Count: 4, Gain: 0.5},
	}
	open, err := appendExploreOpen(prior, res)
	if err != nil {
		t.Fatal(err)
	}
	body := append(append([]byte(nil), open...), bodyClose...)
	wantBytes := genericEncode(t, ExploreResponse{Prior: genericRules(prior), MineResponse: genericMine(res)})
	if !bytes.Equal(body, wantBytes) {
		t.Errorf("explore wire bytes diverge:\n got %s\nwant %s", body, wantBytes)
	}

	// An empty prior must stay [], not null.
	open, err = appendExploreOpen(nil, res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(open, []byte(`{"prior":[]`)) {
		t.Errorf("empty prior encoded as %s", open[:20])
	}
}

func TestAppendOpenEnvelopeMatchesGenericEncoding(t *testing.T) {
	res := &sirum.AppendResult{
		Remined: true,
		Rows:    12345,
		KL:      0.25,
		Rules:   nastyResult().Rules,
	}
	body := append(appendAppendOpen(res), bodyClose...)
	wantBytes := genericEncode(t, AppendResponse{
		Remined: res.Remined, Rows: res.Rows, KL: res.KL, Rules: genericRules(res.Rules),
	})
	if !bytes.Equal(body, wantBytes) {
		t.Errorf("append wire bytes diverge:\n got %s\nwant %s", body, wantBytes)
	}
}

func TestAppendFloatMatchesJSON(t *testing.T) {
	cases := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, 1.5, 42.5, -12345.678,
		0.1, 0.2, 0.1 + 0.2, 1.0 / 3.0,
		1e-6, 9.999e-7, 1e-7, 5e-324, math.SmallestNonzeroFloat64,
		1e20, 9.99e20, 1e21, 1.0000000000000002e21, math.MaxFloat64,
		0.6931471805599453, 1.25e21, -1.5e-7,
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		f := math.Float64frombits(rng.Uint64())
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		cases = append(cases, f)
	}
	for _, f := range cases {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatal(err)
		}
		if got := string(appendFloat(nil, f)); got != string(want) {
			t.Fatalf("appendFloat(%v) = %s, want %s", f, got, want)
		}
	}
	// json.Marshal rejects these outright; the encoder renders 0 so one bad
	// aggregate cannot void an entire response.
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := string(appendFloat(nil, f)); got != "0" {
			t.Errorf("appendFloat(%v) = %s, want 0", f, got)
		}
	}
}

func TestAppendJSONStringMatchesJSON(t *testing.T) {
	cases := []string{
		"", "plain", `quote" back\ slash`, "new\nline\rtab\t",
		"nul\x00ctl\x1funit\x1e", "héllo wörld 日本語 🎉", "é",
		"line and seps", "<script>alert(1)&amp;</script>",
		"\xff\xfe invalid", "truncated \xc3", "\x80 continuation first",
		strings.Repeat("長い文字列", 50),
	}
	for _, s := range cases {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetEscapeHTML(false)
		if err := enc.Encode(s); err != nil {
			t.Fatal(err)
		}
		want := strings.TrimRight(buf.String(), "\n")
		if got := string(appendJSONString(nil, s)); got != want {
			t.Fatalf("appendJSONString(%q) = %s, want %s", s, got, want)
		}
	}
}

// TestEncodeScratchZeroAllocs pins the scalar encoding paths at zero
// allocations when the destination has capacity — the property the serve
// path's single-buffer design depends on.
func TestEncodeScratchZeroAllocs(t *testing.T) {
	buf := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(200, func() {
		buf = appendJSONString(buf[:0], "Destination=London and 日本語")
		buf = appendFloat(buf, 123.456)
		buf = appendFloat(buf, 1.5e-9)
	})
	if allocs != 0 {
		t.Errorf("scalar append paths allocate %v times per run, want 0", allocs)
	}
}

// rawCall performs one round trip and returns status and raw body — the
// wire-level view the decoded helpers hide.
func rawCall(t *testing.T, method, url string, in any) (int, []byte) {
	t.Helper()
	buf, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(method, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestMineWireBodies checks the serve path end to end at the byte level: a
// cold response closes with "}\n" and no cached marker, the cache hit
// replays the identical open envelope closed with the cached marker.
func TestMineWireBodies(t *testing.T) {
	_, ts := testServer(t, Config{})
	createIncome(t, ts.URL, "wire", 800)
	mineURL := ts.URL + "/v1/datasets/wire/mine"
	req := MineRequest{K: 2, SampleSize: 16, Seed: 2}

	status, cold := rawCall(t, "POST", mineURL, req)
	if status != http.StatusOK {
		t.Fatalf("cold mine: status %d: %s", status, cold)
	}
	if !json.Valid(cold) {
		t.Fatalf("cold body is not valid JSON: %s", cold)
	}
	if !bytes.HasSuffix(cold, bodyClose) || bytes.Contains(cold, []byte(`"cached"`)) {
		t.Fatalf("cold body close malformed: ...%s", cold[max(0, len(cold)-40):])
	}

	status, hit := rawCall(t, "POST", mineURL, req)
	if status != http.StatusOK {
		t.Fatalf("repeat mine: status %d", status)
	}
	if !bytes.HasSuffix(hit, bodyCloseCached) {
		t.Fatalf("cache hit close malformed: ...%s", hit[max(0, len(hit)-40):])
	}
	if !bytes.Equal(hit[:len(hit)-len(bodyCloseCached)], cold[:len(cold)-len(bodyClose)]) {
		t.Error("cache hit open envelope differs from the cold one")
	}
}

// wideCSV builds a CSV document with dims attribute columns (two distinct
// values each) plus a measure column.
func wideCSV(dims, rows int) string {
	var b strings.Builder
	for j := 0; j < dims; j++ {
		fmt.Fprintf(&b, "d%02d,", j)
	}
	b.WriteString("m\n")
	for i := 0; i < rows; i++ {
		for j := 0; j < dims; j++ {
			fmt.Fprintf(&b, "v%d,", (i+j)%2)
		}
		fmt.Fprintf(&b, "%d\n", i+1)
	}
	return b.String()
}

// TestGeneralizationBlowupSurfacesAsBadRequest pins satellite behavior of
// the blow-up guard: a 62-attribute schema splits into 31-column groups,
// whose 2^31-ancestor map stage must surface as a 400 with the library's
// error text — not a panic tearing down the handler — and the server keeps
// serving afterwards.
func TestGeneralizationBlowupSurfacesAsBadRequest(t *testing.T) {
	_, ts := testServer(t, Config{})
	var info SessionInfo
	status := call(t, "POST", ts.URL+"/v1/datasets", CreateRequest{
		ID:      "wide",
		CSV:     wideCSV(62, 6),
		Measure: "m",
		Prepare: PrepareSpec{SampleSize: 4, Seed: 1},
	}, &info)
	if status != http.StatusCreated {
		t.Fatalf("create wide session: status %d", status)
	}
	if len(info.Dims) != 62 {
		t.Fatalf("wide session has %d dims", len(info.Dims))
	}

	st, body := rawCall(t, "POST", ts.URL+"/v1/datasets/wide/mine", MineRequest{K: 1, SampleSize: 4, Seed: 1})
	if st != http.StatusBadRequest {
		t.Fatalf("mine over 62 attributes: status %d, body %s", st, body)
	}
	var apiErr ErrorResponse
	if err := json.Unmarshal(body, &apiErr); err != nil {
		t.Fatalf("error body is not JSON: %s", body)
	}
	if !strings.Contains(apiErr.Error, "free attributes") {
		t.Errorf("error %q does not mention the blow-up", apiErr.Error)
	}

	// The daemon survived and still answers.
	var h HealthResponse
	if status := call(t, "GET", ts.URL+"/v1/healthz", nil, &h); status != http.StatusOK || h.Status != "ok" {
		t.Errorf("health after blow-up: status %d, %+v", status, h)
	}
}
