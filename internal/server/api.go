package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"sirum"
	"sirum/internal/spec"
)

// The wire types of sirumd's HTTP/JSON API. Field names are snake_case on
// the wire; durations serialize as nanoseconds (time.Duration's encoding).

// GeneratorSpec asks for one of the built-in synthetic evaluation datasets.
type GeneratorSpec struct {
	Name string `json:"name"` // income|gdelt|susy|tlc|flights
	Rows int    `json:"rows,omitempty"`
	Seed int64  `json:"seed,omitempty"`
}

// PrepareSpec mirrors sirum.PrepareOptions plus substrate sizing.
type PrepareSpec struct {
	SampleSize     int     `json:"sample_size,omitempty"`
	Seed           int64   `json:"seed,omitempty"`
	SampleFraction float64 `json:"sample_fraction,omitempty"`
	Executors      int     `json:"executors,omitempty"`
	PoolLimit      int     `json:"pool_limit,omitempty"`
	Backend        string  `json:"backend,omitempty"` // native|sim
	RemineFactor   float64 `json:"remine_factor,omitempty"`
}

// options translates the wire spec into the library's prepare options
// (also used to re-prepare journaled sessions on Restore).
func (p PrepareSpec) options() sirum.PrepareOptions {
	return sirum.PrepareOptions{
		SampleSize:     p.SampleSize,
		Seed:           p.Seed,
		SampleFraction: p.SampleFraction,
		Cluster:        sirum.Cluster{Executors: p.Executors, PoolLimit: p.PoolLimit},
		Backend:        sirum.Backend(p.Backend),
		RemineFactor:   p.RemineFactor,
	}
}

// CreateRequest registers a named prepared session from either a built-in
// generator or an inline CSV document.
type CreateRequest struct {
	// ID names the session; one is assigned when empty.
	ID string `json:"id,omitempty"`
	// Generator builds a synthetic dataset (mutually exclusive with CSV).
	Generator *GeneratorSpec `json:"generator,omitempty"`
	// CSV is a full CSV document with a header row; Measure names the
	// measure column and Ignore lists columns to drop.
	CSV     string   `json:"csv,omitempty"`
	Measure string   `json:"measure,omitempty"`
	Ignore  []string `json:"ignore,omitempty"`
	// Prepare configures the prepare-once phase.
	Prepare PrepareSpec `json:"prepare,omitempty"`
}

// sourceSpec computes the canonical identity of the dataset this request
// would create, applying the same defaults buildDataset applies — without
// materializing any rows. Validation errors match buildDataset's.
func (req CreateRequest) sourceSpec() (spec.DatasetSpec, error) {
	switch {
	case req.Generator != nil && req.CSV != "":
		return spec.DatasetSpec{}, errf(http.StatusBadRequest, "use either generator or csv, not both")
	case req.Generator != nil:
		g := *req.Generator
		if g.Rows <= 0 {
			g.Rows = 10000
		}
		if g.Seed == 0 {
			g.Seed = 1
		}
		return spec.DatasetSpec{Version: spec.Version, Generator: &spec.GeneratorSource{
			Name: g.Name, Rows: g.Rows, Seed: g.Seed,
		}}, nil
	case req.CSV != "":
		if req.Measure == "" {
			return spec.DatasetSpec{}, errf(http.StatusBadRequest, "measure is required with csv")
		}
		ignore := append([]string(nil), req.Ignore...)
		sort.Strings(ignore)
		if len(ignore) == 0 {
			ignore = nil
		}
		return spec.DatasetSpec{Version: spec.Version, CSV: &spec.CSVSource{
			SHA256:  spec.HashBytes([]byte(req.CSV)),
			Measure: req.Measure,
			Ignore:  ignore,
		}}, nil
	default:
		return spec.DatasetSpec{}, errf(http.StatusBadRequest, "one of generator or csv is required")
	}
}

// DatasetSpec is the placement hook for shard routers: the canonical source
// identity of the dataset this create request describes, computable before
// any shard has prepared it. Its fingerprint equals the one the session
// will report once prepared (generator defaults applied, CSV content
// hashed, ignore columns sorted), so consistent hashing over it places the
// session once and resolves it forever.
func (req CreateRequest) DatasetSpec() (spec.DatasetSpec, error) { return req.sourceSpec() }

// SessionInfo describes one registered session.
type SessionInfo struct {
	ID        string              `json:"id"`
	Rows      int                 `json:"rows"`
	Dims      []string            `json:"dims"`
	Measure   string              `json:"measure"`
	Queries   int64               `json:"queries"`
	CreatedAt time.Time           `json:"created_at"`
	Stats     *sirum.SessionStats `json:"stats,omitempty"`
}

// ListResponse enumerates the registered sessions.
type ListResponse struct {
	Sessions []SessionInfo `json:"sessions"`
}

// MineRequest carries per-query mining options; zero values get the
// library's defaults.
type MineRequest struct {
	K              int     `json:"k,omitempty"`
	SampleSize     int     `json:"sample_size,omitempty"`
	Variant        string  `json:"variant,omitempty"`
	Epsilon        float64 `json:"epsilon,omitempty"`
	Seed           int64   `json:"seed,omitempty"`
	SampleFraction float64 `json:"sample_fraction,omitempty"`
}

// ConditionJSON is one attribute constraint of a rule.
type ConditionJSON struct {
	Attr  string `json:"attr"`
	Value string `json:"value"`
}

// RuleJSON is one mined rule with display aggregates.
type RuleJSON struct {
	Conditions []ConditionJSON `json:"conditions"`
	Display    string          `json:"display"`
	Avg        float64         `json:"avg"`
	Count      int64           `json:"count"`
	Gain       float64         `json:"gain,omitempty"`
}

// MineResponse reports one mining query, including the per-query metrics
// snapshot so clients see exactly what their query cost in isolation from
// concurrent traffic.
type MineResponse struct {
	Rules      []RuleJSON         `json:"rules"`
	KL         float64            `json:"kl"`
	InfoGain   float64            `json:"info_gain"`
	Iterations int                `json:"iterations"`
	WallNS     time.Duration      `json:"wall_ns"`
	Metrics    sirum.QueryMetrics `json:"metrics"`
	// Cached marks a response served from the result cache: no backend
	// work ran, and WallNS/Metrics describe the original computation.
	Cached bool `json:"cached,omitempty"`
}

// ExploreRequest carries data-cube exploration options.
type ExploreRequest struct {
	K        int   `json:"k,omitempty"`
	GroupBys int   `json:"group_bys,omitempty"`
	Seed     int64 `json:"seed,omitempty"`
}

// ExploreResponse reports recommendations plus the assumed prior.
type ExploreResponse struct {
	Prior []RuleJSON `json:"prior"`
	MineResponse
}

// RowJSON is one appended tuple.
type RowJSON struct {
	Dims    []string `json:"dims"`
	Measure float64  `json:"measure"`
}

// AppendRequest folds new tuples into the session; the mining options apply
// if the maintained rule list has drifted enough to be re-mined.
type AppendRequest struct {
	Rows []RowJSON `json:"rows"`
	MineRequest
}

// AppendResponse reports one append.
type AppendResponse struct {
	Remined bool       `json:"remined"`
	Rows    int        `json:"rows"`
	KL      float64    `json:"kl"`
	Rules   []RuleJSON `json:"rules"`
}

// ErrorResponse is the uniform error body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// HealthResponse reports daemon liveness and load. ShardID and Advertise
// identify the daemon within a multi-node cluster when it was started in
// shard mode; routers read them off health checks.
type HealthResponse struct {
	Status      string `json:"status"`
	ShardID     string `json:"shard_id,omitempty"`
	Advertise   string `json:"advertise,omitempty"`
	Sessions    int    `json:"sessions"`
	InFlight    int    `json:"in_flight"`
	Queued      int64  `json:"queued"`
	Queries     int64  `json:"queries"`
	Rejected    int64  `json:"rejected"`
	CacheHits   int64  `json:"cache_hits"`
	CacheMisses int64  `json:"cache_misses"`
}

// Client is a minimal JSON client for the sirumd API, shared by the load
// generator, the selftest harness and examples. The zero HTTP client uses
// http.DefaultClient semantics with no timeout; set one for load runs.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// Do performs one JSON round trip: in (when non-nil) is the request body,
// out (when non-nil) receives the decoded response. Error responses decode
// the uniform ErrorResponse body into the returned error.
func (c *Client) Do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var apiErr ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("%s %s: %s (%d)", method, path, apiErr.Error, resp.StatusCode)
		}
		return fmt.Errorf("%s %s: status %d", method, path, resp.StatusCode)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// The typed shard API: one method per endpoint, shared by the router's
// control plane, the load generator and the selftests. Data-plane request
// *forwarding* uses DoRaw instead, so a router never re-interprets bodies
// it only needs to relay.

// CreateSession registers a prepared session and returns its info.
func (c *Client) CreateSession(req CreateRequest) (SessionInfo, error) {
	var info SessionInfo
	err := c.Do("POST", "/v1/datasets", req, &info)
	return info, err
}

// ListSessions enumerates the registered sessions.
func (c *Client) ListSessions() (ListResponse, error) {
	var list ListResponse
	err := c.Do("GET", "/v1/datasets", nil, &list)
	return list, err
}

// GetSession fetches one session with lifetime stats.
func (c *Client) GetSession(id string) (SessionInfo, error) {
	var info SessionInfo
	err := c.Do("GET", "/v1/datasets/"+id, nil, &info)
	return info, err
}

// DeleteSession closes and unregisters a session.
func (c *Client) DeleteSession(id string) error {
	return c.Do("DELETE", "/v1/datasets/"+id, nil, nil)
}

// Mine runs one mining query against a session.
func (c *Client) Mine(id string, req MineRequest) (MineResponse, error) {
	var resp MineResponse
	err := c.Do("POST", "/v1/datasets/"+id+"/mine", req, &resp)
	return resp, err
}

// Explore runs one data-cube exploration query against a session.
func (c *Client) Explore(id string, req ExploreRequest) (ExploreResponse, error) {
	var resp ExploreResponse
	err := c.Do("POST", "/v1/datasets/"+id+"/explore", req, &resp)
	return resp, err
}

// AppendRows folds new tuples into a session.
func (c *Client) AppendRows(id string, req AppendRequest) (AppendResponse, error) {
	var resp AppendResponse
	err := c.Do("POST", "/v1/datasets/"+id+"/append", req, &resp)
	return resp, err
}

// Export fetches a session's migration document: its journaled identity
// plus the fingerprint/epoch/chain header an importer must reproduce.
func (c *Client) Export(id string) (ExportDocument, error) {
	var doc ExportDocument
	err := c.Do("GET", "/v1/datasets/"+id+"/export", nil, &doc)
	return doc, err
}

// Import rebuilds an exported session on the target daemon and returns its
// info (stats included, so callers can verify fingerprint and epoch).
func (c *Client) Import(doc ExportDocument) (SessionInfo, error) {
	var info SessionInfo
	err := c.Do("POST", "/v1/datasets/import", doc, &info)
	return info, err
}

// Health fetches the daemon's liveness and load counters.
func (c *Client) Health() (HealthResponse, error) {
	var resp HealthResponse
	err := c.Do("GET", "/v1/healthz", nil, &resp)
	return resp, err
}

// MetricsText fetches the Prometheus-style metrics document.
func (c *Client) MetricsText() (string, error) {
	raw, err := c.DoRaw("GET", "/v1/metrics", "", nil)
	if err != nil {
		return "", err
	}
	if raw.Status != http.StatusOK {
		return "", fmt.Errorf("GET /v1/metrics: status %d", raw.Status)
	}
	return string(raw.Body), nil
}

// RawResponse is one un-decoded HTTP exchange result: what a proxy relays.
type RawResponse struct {
	Status      int
	ContentType string
	Body        []byte
}

// DoRaw performs one round trip without interpreting the response: any HTTP
// status comes back as a RawResponse for the caller to relay verbatim, and
// the returned error is reserved for transport failures — the signal a
// router uses to mark a shard down.
func (c *Client) DoRaw(method, path, contentType string, body []byte) (*RawResponse, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &RawResponse{
		Status:      resp.StatusCode,
		ContentType: resp.Header.Get("Content-Type"),
		Body:        buf,
	}, nil
}

// StreamResponse is one in-flight HTTP exchange: status and content type are
// final, the body streams straight from the server. The caller owns Body and
// must Close it.
type StreamResponse struct {
	Status      int
	ContentType string
	Body        io.ReadCloser
}

// DoStream performs one round trip without buffering either direction: body
// (when non-nil) streams to the server, and the response body streams back
// to the caller. Like DoRaw, any HTTP status is returned as a response and
// the error is reserved for transport failures. Content length may be passed
// via length (use -1 when unknown) so fixed-size relays avoid chunked
// encoding.
func (c *Client) DoStream(method, path, contentType string, body io.Reader, length int64) (*StreamResponse, error) {
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return nil, err
	}
	if body != nil && length >= 0 {
		req.ContentLength = length
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	return &StreamResponse{
		Status:      resp.StatusCode,
		ContentType: resp.Header.Get("Content-Type"),
		Body:        resp.Body,
	}, nil
}
