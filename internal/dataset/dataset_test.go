package dataset

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"sirum/internal/stats"
)

func buildSmall(t *testing.T) *Dataset {
	t.Helper()
	b := NewBuilder(Schema{DimNames: []string{"Day", "Origin", "Destination"}, MeasureName: "Delay"})
	rows := []struct {
		d []string
		m float64
	}{
		{[]string{"Fri", "SF", "London"}, 20},
		{[]string{"Fri", "London", "LA"}, 16},
		{[]string{"Sun", "Tokyo", "Frankfurt"}, 10},
		{[]string{"Sun", "Chicago", "London"}, 15},
	}
	for _, r := range rows {
		if err := b.Add(r.d, r.m); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.Code("apple")
	b := d.Code("banana")
	if a == b {
		t.Fatal("distinct values share a code")
	}
	if d.Code("apple") != a {
		t.Error("re-encoding changed code")
	}
	if got := d.Value(a); got != "apple" {
		t.Errorf("Value = %q", got)
	}
	if got := d.Value(99); !strings.Contains(got, "99") {
		t.Errorf("out-of-range Value = %q", got)
	}
	if d.Size() != 2 {
		t.Errorf("Size = %d", d.Size())
	}
	if _, ok := d.Lookup("cherry"); ok {
		t.Error("Lookup found missing value")
	}
	if c, ok := d.Lookup("banana"); !ok || c != b {
		t.Error("Lookup failed for existing value")
	}
	if len(d.Values()) != 2 || d.Values()[0] != "apple" {
		t.Errorf("Values = %v", d.Values())
	}
}

func TestBuilderAndAccessors(t *testing.T) {
	ds := buildSmall(t)
	if ds.NumRows() != 4 || ds.NumDims() != 3 {
		t.Fatalf("rows=%d dims=%d", ds.NumRows(), ds.NumDims())
	}
	row, m := ds.Row(0, nil)
	if m != 20 {
		t.Errorf("measure = %v", m)
	}
	if ds.Dicts[0].Value(row[0]) != "Fri" || ds.Dicts[2].Value(row[2]) != "London" {
		t.Errorf("row decode failed: %v", row)
	}
	if ds.DimValue(3, 1) != "Chicago" {
		t.Errorf("DimValue = %q", ds.DimValue(3, 1))
	}
	if got := ds.TotalMeasure(); got != 61 {
		t.Errorf("TotalMeasure = %v", got)
	}
	if got := ds.MeanMeasure(); math.Abs(got-15.25) > 1e-12 {
		t.Errorf("MeanMeasure = %v", got)
	}
	// Row with a reusable buffer must not allocate a new one.
	buf := make([]int32, 3)
	row2, _ := ds.Row(1, buf)
	if &row2[0] != &buf[0] {
		t.Error("Row ignored provided buffer")
	}
}

func TestBuilderArityMismatch(t *testing.T) {
	b := NewBuilder(Schema{DimNames: []string{"a", "b"}, MeasureName: "m"})
	if err := b.Add([]string{"only-one"}, 1); err == nil {
		t.Error("Add with wrong arity did not fail")
	}
	if err := b.AddCodes([]int32{1, 2, 3}, 1); err == nil {
		t.Error("AddCodes with wrong arity did not fail")
	}
}

func TestValidateCatchesBadCodes(t *testing.T) {
	ds := buildSmall(t)
	ds.Dims[0][0] = 99
	if err := ds.Validate(); err == nil {
		t.Error("Validate accepted out-of-domain code")
	}
	ds.Dims[0][0] = 0
	ds.Dims[1] = ds.Dims[1][:2]
	if err := ds.Validate(); err == nil {
		t.Error("Validate accepted ragged columns")
	}
}

func TestEmptyDataset(t *testing.T) {
	b := NewBuilder(Schema{DimNames: []string{"a"}, MeasureName: "m"})
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRows() != 0 || ds.MeanMeasure() != 0 || ds.TotalMeasure() != 0 {
		t.Error("empty dataset stats nonzero")
	}
}

func TestSelectAndSample(t *testing.T) {
	ds := buildSmall(t)
	sel := ds.Select([]int{3, 0})
	if sel.NumRows() != 2 {
		t.Fatalf("Select rows = %d", sel.NumRows())
	}
	if sel.DimValue(0, 0) != "Sun" || sel.DimValue(1, 0) != "Fri" {
		t.Errorf("Select order wrong: %q %q", sel.DimValue(0, 0), sel.DimValue(1, 0))
	}
	if sel.Measure[0] != 15 || sel.Measure[1] != 20 {
		t.Errorf("Select measures %v", sel.Measure)
	}
	// Shares dictionaries.
	if sel.Dicts[0] != ds.Dicts[0] {
		t.Error("Select did not share dictionaries")
	}

	s := ds.Sample(stats.NewRand(5), 2)
	if s.NumRows() != 2 {
		t.Errorf("Sample rows = %d", s.NumRows())
	}
	all := ds.Sample(stats.NewRand(5), 100)
	if all.NumRows() != 4 {
		t.Errorf("oversized Sample rows = %d", all.NumRows())
	}

	f := ds.SampleFraction(stats.NewRand(5), 1.0)
	if f.NumRows() != 4 {
		t.Errorf("full fraction rows = %d", f.NumRows())
	}
}

func TestProject(t *testing.T) {
	ds := buildSmall(t)
	p := ds.Project(2)
	if p.NumDims() != 2 || p.NumRows() != 4 {
		t.Fatalf("Project dims=%d rows=%d", p.NumDims(), p.NumRows())
	}
	if p.Schema.DimNames[1] != "Origin" {
		t.Errorf("projected schema %v", p.Schema.DimNames)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("projected dataset invalid: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Project(99) did not panic")
		}
	}()
	ds.Project(99)
}

func TestConcatSharedDicts(t *testing.T) {
	ds := buildSmall(t)
	a := ds.Select([]int{0, 1})
	b := ds.Select([]int{2, 3})
	all, err := a.Concat(b)
	if err != nil {
		t.Fatal(err)
	}
	if all.NumRows() != 4 {
		t.Fatalf("concat rows = %d", all.NumRows())
	}
	if all.DimValue(2, 0) != "Sun" {
		t.Errorf("concat row decode %q", all.DimValue(2, 0))
	}
}

func TestConcatDifferentDicts(t *testing.T) {
	mk := func(day string) *Dataset {
		b := NewBuilder(Schema{DimNames: []string{"Day"}, MeasureName: "m"})
		if err := b.Add([]string{day}, 1); err != nil {
			t.Fatal(err)
		}
		return b.MustBuild()
	}
	a, b := mk("Mon"), mk("Tue")
	all, err := a.Concat(b)
	if err != nil {
		t.Fatal(err)
	}
	if all.NumRows() != 2 || all.DimValue(0, 0) != "Mon" || all.DimValue(1, 0) != "Tue" {
		t.Errorf("concat re-encode failed")
	}
	if err := all.Validate(); err != nil {
		t.Error(err)
	}
	// Mismatched arity.
	c := NewBuilder(Schema{DimNames: []string{"x", "y"}, MeasureName: "m"}).MustBuild()
	if _, err := a.Concat(c); err == nil {
		t.Error("concat with mismatched dims did not fail")
	}
}

func TestDomainSizesAndPossibleRules(t *testing.T) {
	ds := buildSmall(t)
	sizes := ds.DomainSizes()
	// Day: Fri, Sun = 2; Origin: SF, London, Tokyo, Chicago = 4; Dest: London, LA, Frankfurt = 3.
	want := []int{2, 4, 3}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("DomainSizes = %v, want %v", sizes, want)
		}
	}
	if got := ds.PossibleRules(); got != int64(3*5*4) {
		t.Errorf("PossibleRules = %d, want 60", got)
	}
}

func TestPossibleRulesSaturates(t *testing.T) {
	b := NewBuilder(Schema{DimNames: make([]string, 40), MeasureName: "m"})
	for j := 0; j < 40; j++ {
		for v := 0; v < 100; v++ {
			b.Dict(j).Code(strings.Repeat("v", v+1))
		}
	}
	ds := &Dataset{Schema: b.ds.Schema, Dicts: b.ds.Dicts, Dims: b.ds.Dims}
	if got := ds.PossibleRules(); got != 1<<62 {
		t.Errorf("PossibleRules = %d, want saturation", got)
	}
}

func TestDimsByDomainSize(t *testing.T) {
	ds := buildSmall(t)
	order := ds.DimsByDomainSize()
	// Domain sizes 2, 4, 3 -> order 0, 2, 1.
	if order[0] != 0 || order[1] != 2 || order[2] != 1 {
		t.Errorf("DimsByDomainSize = %v", order)
	}
}

func TestApproxBytes(t *testing.T) {
	ds := buildSmall(t)
	if got := ds.ApproxBytes(); got != 4*(3*4+8) {
		t.Errorf("ApproxBytes = %d", got)
	}
}

func TestQuickSelectPreservesRows(t *testing.T) {
	ds := buildSmall(t)
	f := func(raw []uint8) bool {
		rows := make([]int, len(raw))
		for i, r := range raw {
			rows[i] = int(r) % ds.NumRows()
		}
		sel := ds.Select(rows)
		if sel.NumRows() != len(rows) {
			return false
		}
		for i, r := range rows {
			if sel.Measure[i] != ds.Measure[r] {
				return false
			}
			for j := 0; j < ds.NumDims(); j++ {
				if sel.Dims[j][i] != ds.Dims[j][r] {
					return false
				}
			}
		}
		return sel.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDictFreezesOnBuild pins the construction/read phase boundary: after
// Build, dictionary reads are lock-free safe because inserts panic.
func TestDictFreezesOnBuild(t *testing.T) {
	b := NewBuilder(Schema{DimNames: []string{"a"}, MeasureName: "m"})
	if err := b.Add([]string{"x"}, 1); err != nil {
		t.Fatal(err)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.Dicts[0].Code("x"); got != 0 {
		t.Errorf("existing value lookup through Code = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Code insert on a frozen dictionary did not panic")
		}
	}()
	ds.Dicts[0].Code("new-value")
}
