package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// ReadCSV parses a dataset from CSV. The first row must be a header; the
// column named measureName becomes the measure attribute and every other
// column a dimension attribute. Columns listed in ignore (e.g. row ids such
// as "Flight ID") are dropped.
func ReadCSV(r io.Reader, measureName string, ignore ...string) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	skip := make(map[string]bool, len(ignore))
	for _, n := range ignore {
		skip[n] = true
	}
	measureCol := -1
	var dimCols []int
	var dimNames []string
	for i, name := range header {
		switch {
		case name == measureName:
			measureCol = i
		case skip[name]:
		default:
			dimCols = append(dimCols, i)
			dimNames = append(dimNames, name)
		}
	}
	if measureCol < 0 {
		return nil, fmt.Errorf("dataset: measure column %q not in header %v", measureName, header)
	}
	b := NewBuilder(Schema{DimNames: dimNames, MeasureName: measureName})
	dims := make([]string, len(dimCols))
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line, err)
		}
		m, err := strconv.ParseFloat(rec[measureCol], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: measure %q: %w", line, rec[measureCol], err)
		}
		for j, c := range dimCols {
			dims[j] = rec[c]
		}
		if err := b.Add(dims, m); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
	}
	return b.Build()
}

// ReadCSVFile opens path and parses it with ReadCSV.
func ReadCSVFile(path, measureName string, ignore ...string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, measureName, ignore...)
}

// WriteCSV writes the dataset as CSV with a header row: dimension columns in
// schema order followed by the measure column.
func (ds *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append(append([]string{}, ds.Schema.DimNames...), ds.Schema.MeasureName)
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for i := 0; i < ds.NumRows(); i++ {
		for j := 0; j < ds.NumDims(); j++ {
			rec[j] = ds.DimValue(i, j)
		}
		rec[len(rec)-1] = strconv.FormatFloat(ds.Measure[i], 'g', -1, 64)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the dataset to path, creating or truncating it.
func (ds *Dataset) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ds.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
