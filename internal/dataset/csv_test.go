package dataset

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const flightCSV = `Flight ID,Day,Origin,Destination,Delay
1,Fri,SF,London,20
2,Fri,London,LA,16
3,Sun,Tokyo,Frankfurt,10
`

func TestReadCSV(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader(flightCSV), "Delay", "Flight ID")
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRows() != 3 || ds.NumDims() != 3 {
		t.Fatalf("rows=%d dims=%d", ds.NumRows(), ds.NumDims())
	}
	if ds.Schema.MeasureName != "Delay" {
		t.Errorf("measure = %q", ds.Schema.MeasureName)
	}
	wantDims := []string{"Day", "Origin", "Destination"}
	for i, n := range wantDims {
		if ds.Schema.DimNames[i] != n {
			t.Fatalf("dims = %v, want %v", ds.Schema.DimNames, wantDims)
		}
	}
	if ds.Measure[1] != 16 {
		t.Errorf("measure[1] = %v", ds.Measure[1])
	}
	if ds.DimValue(2, 0) != "Sun" {
		t.Errorf("DimValue = %q", ds.DimValue(2, 0))
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), "m"); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n"), "missing"); err == nil {
		t.Error("missing measure column accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,m\nx,notanumber\n"), "m"); err == nil {
		t.Error("non-numeric measure accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader(flightCSV), "Delay", "Flight ID")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()), "Delay")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != ds.NumRows() || back.NumDims() != ds.NumDims() {
		t.Fatalf("round trip changed shape")
	}
	for i := 0; i < ds.NumRows(); i++ {
		if back.Measure[i] != ds.Measure[i] {
			t.Errorf("row %d measure %v != %v", i, back.Measure[i], ds.Measure[i])
		}
		for j := 0; j < ds.NumDims(); j++ {
			if back.DimValue(i, j) != ds.DimValue(i, j) {
				t.Errorf("row %d dim %d %q != %q", i, j, back.DimValue(i, j), ds.DimValue(i, j))
			}
		}
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader(flightCSV), "Delay", "Flight ID")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "flights.csv")
	if err := ds.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(path, "Delay")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 3 {
		t.Errorf("rows = %d", back.NumRows())
	}
	if _, err := ReadCSVFile(filepath.Join(t.TempDir(), "nope.csv"), "m"); !os.IsNotExist(err) {
		t.Errorf("expected not-exist error, got %v", err)
	}
}
