// Package dataset implements the multidimensional relations SIRUM mines: a
// set of categorical dimension attributes plus one numeric measure attribute
// (Section 2.1 of the thesis). Dimension values are dictionary-encoded to
// dense int32 codes and stored column-wise, which keeps rule matching, LCA
// computation and sampling cache-friendly and allocation-free.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"sirum/internal/stats"
)

// Value codes. Codes are non-negative; NoValue marks a missing entry during
// construction (it never appears in a finished dataset).
const NoValue int32 = -2

// Dict maps the string values of one dimension attribute to dense int32
// codes in insertion order.
//
// A Dict has two phases with an explicit boundary. During construction the
// single mutating entry point, Code, inserts new values; it must be called
// from one goroutine (builders and generators do). Builder.Build freezes the
// dictionary, after which Code panics and every remaining method — Lookup,
// Value, Size, Values — is a pure read. That split is what makes a built
// Dataset safe to share across concurrent mining queries without locks: no
// read path can ever race a mutation, because mutations are impossible.
type Dict struct {
	frozen bool
	toCode map[string]int32
	values []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{toCode: make(map[string]int32)}
}

// Code returns the code for value v, inserting it if new. It is the only
// mutating method and is construction-only: calling it on a frozen
// dictionary (one owned by a finished Dataset) panics.
func (d *Dict) Code(v string) int32 {
	if c, ok := d.toCode[v]; ok {
		return c
	}
	if d.frozen {
		panic("dataset: Code insert on a frozen dictionary (datasets are immutable once built; use Lookup for reads)")
	}
	c := int32(len(d.values))
	d.toCode[v] = c
	d.values = append(d.values, v)
	return c
}

// freeze ends the construction phase; from here on the dictionary is
// read-only and safe for concurrent use.
func (d *Dict) freeze() { d.frozen = true }

// Lookup returns the code for v and whether it is present.
func (d *Dict) Lookup(v string) (int32, bool) {
	c, ok := d.toCode[v]
	return c, ok
}

// Value returns the string for code c.
func (d *Dict) Value(c int32) string {
	if c < 0 || int(c) >= len(d.values) {
		return fmt.Sprintf("<code %d>", c)
	}
	return d.values[c]
}

// Size returns the number of distinct values (the active domain size).
func (d *Dict) Size() int { return len(d.values) }

// Values returns the dictionary contents in code order. The caller must not
// modify the returned slice.
func (d *Dict) Values() []string { return d.values }

// Schema describes a dataset's attributes.
type Schema struct {
	DimNames    []string
	MeasureName string
}

// NumDims returns the number of dimension attributes (d in the thesis).
func (s Schema) NumDims() int { return len(s.DimNames) }

// DimIndex returns the position of the named dimension, or -1.
func (s Schema) DimIndex(name string) int {
	for i, n := range s.DimNames {
		if n == name {
			return i
		}
	}
	return -1
}

// Dataset is a columnar multidimensional relation: len(Dims) dimension
// columns of equal length and one measure column.
//
// Immutability convention: a Dataset is frozen once built. Builder.Build
// freezes the dictionaries (further Code inserts panic), and no code may
// write to Dims or Measure afterwards; helpers that "change" a dataset
// (Select, Sample, Project, Concat) return new datasets, sharing the frozen
// dictionaries and, where safe, the columns. The prepare-once session layer
// leans on this: any number of concurrent mining queries read one Dataset's
// columns and dictionaries without synchronization.
type Dataset struct {
	Schema  Schema
	Dicts   []*Dict   // one per dimension, aligned with Schema.DimNames
	Dims    [][]int32 // Dims[j][i] = code of attribute j in tuple i
	Measure []float64 // Measure[i] = t_i[m]
}

// NumRows returns |D|.
func (ds *Dataset) NumRows() int { return len(ds.Measure) }

// NumDims returns d.
func (ds *Dataset) NumDims() int { return len(ds.Dims) }

// Row copies tuple i's dimension codes into buf (allocating if buf is too
// small) and returns it along with the measure value.
func (ds *Dataset) Row(i int, buf []int32) ([]int32, float64) {
	d := ds.NumDims()
	if cap(buf) < d {
		buf = make([]int32, d)
	}
	buf = buf[:d]
	for j := 0; j < d; j++ {
		buf[j] = ds.Dims[j][i]
	}
	return buf, ds.Measure[i]
}

// DimValue returns the string value of attribute j in tuple i.
func (ds *Dataset) DimValue(i, j int) string {
	return ds.Dicts[j].Value(ds.Dims[j][i])
}

// TotalMeasure returns Σ t[m].
func (ds *Dataset) TotalMeasure() float64 {
	var sum float64
	for _, m := range ds.Measure {
		sum += m
	}
	return sum
}

// MeanMeasure returns the average measure value, 0 for an empty dataset.
func (ds *Dataset) MeanMeasure() float64 {
	if ds.NumRows() == 0 {
		return 0
	}
	return ds.TotalMeasure() / float64(ds.NumRows())
}

// ApproxBytes estimates the in-memory footprint of the dataset payload
// (columns only), used by the engine's memory accounting.
func (ds *Dataset) ApproxBytes() int64 {
	rows := int64(ds.NumRows())
	return rows*int64(ds.NumDims())*4 + rows*8
}

// Validate checks structural invariants and returns a descriptive error when
// violated. A valid dataset has aligned columns, dictionaries covering every
// code, and no NoValue entries.
func (ds *Dataset) Validate() error {
	if len(ds.Schema.DimNames) != len(ds.Dims) {
		return fmt.Errorf("dataset: %d dim names but %d dim columns", len(ds.Schema.DimNames), len(ds.Dims))
	}
	if len(ds.Dicts) != len(ds.Dims) {
		return fmt.Errorf("dataset: %d dicts but %d dim columns", len(ds.Dicts), len(ds.Dims))
	}
	n := ds.NumRows()
	for j, col := range ds.Dims {
		if len(col) != n {
			return fmt.Errorf("dataset: column %q has %d rows, measure has %d", ds.Schema.DimNames[j], len(col), n)
		}
		domain := int32(ds.Dicts[j].Size())
		for i, c := range col {
			if c < 0 || c >= domain {
				return fmt.Errorf("dataset: column %q row %d has code %d outside domain [0,%d)", ds.Schema.DimNames[j], i, c, domain)
			}
		}
	}
	return nil
}

// Builder assembles a dataset row by row from string values.
type Builder struct {
	ds *Dataset
}

// NewBuilder returns a builder for the given schema.
func NewBuilder(schema Schema) *Builder {
	ds := &Dataset{Schema: schema}
	ds.Dicts = make([]*Dict, schema.NumDims())
	ds.Dims = make([][]int32, schema.NumDims())
	for j := range ds.Dicts {
		ds.Dicts[j] = NewDict()
	}
	return &Builder{ds: ds}
}

// Add appends one tuple. dims must have exactly one value per dimension.
func (b *Builder) Add(dims []string, measure float64) error {
	if len(dims) != b.ds.NumDims() {
		return fmt.Errorf("dataset: tuple has %d dims, schema has %d", len(dims), b.ds.NumDims())
	}
	for j, v := range dims {
		b.ds.Dims[j] = append(b.ds.Dims[j], b.ds.Dicts[j].Code(v))
	}
	b.ds.Measure = append(b.ds.Measure, measure)
	return nil
}

// AddCodes appends one tuple given pre-encoded codes. The caller is
// responsible for codes being valid for the builder's dictionaries (used by
// generators that populate dictionaries up front).
func (b *Builder) AddCodes(codes []int32, measure float64) error {
	if len(codes) != b.ds.NumDims() {
		return fmt.Errorf("dataset: tuple has %d dims, schema has %d", len(codes), b.ds.NumDims())
	}
	for j, c := range codes {
		b.ds.Dims[j] = append(b.ds.Dims[j], c)
	}
	b.ds.Measure = append(b.ds.Measure, measure)
	return nil
}

// Dict exposes the builder's dictionary for dimension j so generators can
// pre-register domain values.
func (b *Builder) Dict(j int) *Dict { return b.ds.Dicts[j] }

// Build finalizes and validates the dataset, freezing its dictionaries: the
// result is immutable and safe for concurrent readers.
func (b *Builder) Build() (*Dataset, error) {
	if err := b.ds.Validate(); err != nil {
		return nil, err
	}
	for _, d := range b.ds.Dicts {
		d.freeze()
	}
	return b.ds, nil
}

// MustBuild is Build that panics on error, for tests and generators whose
// input is program-controlled.
func (b *Builder) MustBuild() *Dataset {
	ds, err := b.Build()
	if err != nil {
		panic(err)
	}
	return ds
}

// Select returns a new dataset containing the given row indices (in order),
// sharing dictionaries with the original.
func (ds *Dataset) Select(rows []int) *Dataset {
	out := &Dataset{Schema: ds.Schema, Dicts: ds.Dicts}
	out.Dims = make([][]int32, ds.NumDims())
	for j := range out.Dims {
		col := make([]int32, len(rows))
		src := ds.Dims[j]
		for i, r := range rows {
			col[i] = src[r]
		}
		out.Dims[j] = col
	}
	out.Measure = make([]float64, len(rows))
	for i, r := range rows {
		out.Measure[i] = ds.Measure[r]
	}
	return out
}

// Sample draws n rows uniformly without replacement (all rows if n >= |D|).
func (ds *Dataset) Sample(r *rand.Rand, n int) *Dataset {
	return ds.Select(stats.ReservoirSample(r, ds.NumRows(), n))
}

// SampleFraction draws a Bernoulli sample with rate p in [0,1].
func (ds *Dataset) SampleFraction(r *rand.Rand, p float64) *Dataset {
	return ds.Select(stats.BernoulliSample(r, ds.NumRows(), p))
}

// Project returns a dataset restricted to the first k dimension attributes,
// as used by the thesis' SUSY(10)/SUSY(14)/SUSY(18) projections.
func (ds *Dataset) Project(k int) *Dataset {
	if k < 0 || k > ds.NumDims() {
		panic(fmt.Sprintf("dataset: projection onto %d of %d dims", k, ds.NumDims()))
	}
	return &Dataset{
		Schema:  Schema{DimNames: ds.Schema.DimNames[:k], MeasureName: ds.Schema.MeasureName},
		Dicts:   ds.Dicts[:k],
		Dims:    ds.Dims[:k],
		Measure: ds.Measure,
	}
}

// Concat appends other's rows to ds, producing a new dataset. Both datasets
// must share dictionaries (i.e. derive from the same source); otherwise codes
// would clash, so Concat re-encodes via strings when dictionaries differ.
func (ds *Dataset) Concat(other *Dataset) (*Dataset, error) {
	if ds.NumDims() != other.NumDims() {
		return nil, fmt.Errorf("dataset: concat dims mismatch %d vs %d", ds.NumDims(), other.NumDims())
	}
	sameDicts := true
	for j := range ds.Dicts {
		if ds.Dicts[j] != other.Dicts[j] {
			sameDicts = false
			break
		}
	}
	if sameDicts {
		out := &Dataset{Schema: ds.Schema, Dicts: ds.Dicts}
		out.Dims = make([][]int32, ds.NumDims())
		for j := range out.Dims {
			col := make([]int32, 0, ds.NumRows()+other.NumRows())
			col = append(col, ds.Dims[j]...)
			col = append(col, other.Dims[j]...)
			out.Dims[j] = col
		}
		out.Measure = append(append(make([]float64, 0, ds.NumRows()+other.NumRows()), ds.Measure...), other.Measure...)
		return out, nil
	}
	b := NewBuilder(ds.Schema)
	row := make([]string, ds.NumDims())
	addAll := func(src *Dataset) error {
		for i := 0; i < src.NumRows(); i++ {
			for j := 0; j < src.NumDims(); j++ {
				row[j] = src.DimValue(i, j)
			}
			if err := b.Add(row, src.Measure[i]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := addAll(ds); err != nil {
		return nil, err
	}
	if err := addAll(other); err != nil {
		return nil, err
	}
	return b.Build()
}

// DomainSizes returns the active domain size of each dimension.
func (ds *Dataset) DomainSizes() []int {
	out := make([]int, ds.NumDims())
	for j, d := range ds.Dicts {
		out[j] = d.Size()
	}
	return out
}

// PossibleRules returns the size of the full rule space
// Π_j (|dom(A_j)|+1), saturating at MaxInt64 (the thesis quotes these counts,
// e.g. 78 million for Income).
func (ds *Dataset) PossibleRules() int64 {
	total := int64(1)
	for _, d := range ds.Dicts {
		n := int64(d.Size()) + 1
		if total > (1<<62)/n {
			return 1 << 62
		}
		total *= n
	}
	return total
}

// DimsByDomainSize returns dimension indices sorted by ascending active
// domain size (ties broken by index); used to pick the "lowest cardinality"
// group-by queries of the cube-exploration application.
func (ds *Dataset) DimsByDomainSize() []int {
	idx := make([]int, ds.NumDims())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return ds.Dicts[idx[a]].Size() < ds.Dicts[idx[b]].Size()
	})
	return idx
}
