// Package metrics provides the counters, phase timers and time-series
// trackers used to instrument SIRUM. The thesis' profiling study (Chapter 3)
// breaks runtime into rule-generation sub-steps and iterative scaling, counts
// emitted ancestor pairs (Figure 5.8) and samples memory residency over time
// (Figures 4.3/4.4); this package supplies those instruments.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Well-known counter names used across the repository.
const (
	CtrPairsEmitted   = "pairs_emitted"    // ancestor key/value pairs emitted by mappers
	CtrShuffleBytes   = "shuffle_bytes"    // bytes moved across executors
	CtrShuffleRecords = "shuffle_records"  // records moved across executors
	CtrBroadcastBytes = "broadcast_bytes"  // bytes replicated to every executor
	CtrSpillBytes     = "spill_bytes"      // bytes written to disk by the cache
	CtrSpillReads     = "spill_read_bytes" // bytes re-read from spilled partitions
	CtrScanRows       = "scan_rows"        // dataset rows scanned
	CtrLCAComparisons = "lca_comparisons"  // attribute comparisons during LCA computation
	CtrCandidates     = "candidates"       // distinct candidate rules evaluated
	CtrScalingLoops   = "scaling_loops"    // iterative scaling inner-loop iterations
	CtrTasks          = "tasks"            // engine tasks executed
	CtrStages         = "stages"           // engine stages executed
	CtrScratchBorrows = "scratch_borrows"  // scratch tables borrowed from the backend arena
	CtrScratchReuses  = "scratch_reuses"   // borrows served from the arena free list
)

// Well-known phase names (Figure 3.1 / 3.2 breakdowns).
const (
	PhaseRuleGen       = "rule_generation"
	PhaseScaling       = "iterative_scaling"
	PhaseCandPruning   = "candidate_pruning"
	PhaseAncestorGen   = "ancestor_generation"
	PhaseGainComputing = "gain_computation"
	PhaseRuleSelection = "rule_selection"
	PhaseDataLoad      = "data_load"
	PhaseWriteback     = "estimate_writeback"
)

// Registry is a thread-safe bundle of named counters and phase durations.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	phases   map[string]time.Duration
	sim      map[string]time.Duration // simulated-cluster-time phase durations
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]int64),
		phases:   make(map[string]time.Duration),
		sim:      make(map[string]time.Duration),
	}
}

// Add increments counter name by delta.
func (r *Registry) Add(name string, delta int64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Counter returns the current value of a counter (0 if never written).
func (r *Registry) Counter(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// AddPhase adds wall-clock duration d to the named phase.
func (r *Registry) AddPhase(name string, d time.Duration) {
	r.mu.Lock()
	r.phases[name] += d
	r.mu.Unlock()
}

// AddSimPhase adds simulated-cluster duration d to the named phase.
func (r *Registry) AddSimPhase(name string, d time.Duration) {
	r.mu.Lock()
	r.sim[name] += d
	r.mu.Unlock()
}

// Phase returns the accumulated wall-clock duration of a phase.
func (r *Registry) Phase(name string) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.phases[name]
}

// SimPhase returns the accumulated simulated duration of a phase.
func (r *Registry) SimPhase(name string) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sim[name]
}

// Timed runs f and charges its wall-clock duration to the named phase.
func (r *Registry) Timed(name string, f func()) {
	start := time.Now()
	f()
	r.AddPhase(name, time.Since(start))
}

// Counters returns a copy of all counters.
func (r *Registry) Counters() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// Phases returns a copy of all wall-clock phase durations.
func (r *Registry) Phases() map[string]time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]time.Duration, len(r.phases))
	for k, v := range r.phases {
		out[k] = v
	}
	return out
}

// SimPhases returns a copy of all simulated-cluster phase durations.
func (r *Registry) SimPhases() map[string]time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]time.Duration, len(r.sim))
	for k, v := range r.sim {
		out[k] = v
	}
	return out
}

// Snapshot is a point-in-time, JSON-serializable copy of a registry:
// counters plus wall-clock and simulated phase durations (nanoseconds on the
// wire, time.Duration's encoding). A server returns one per query response
// so clients see exactly what the query cost.
type Snapshot struct {
	Counters  map[string]int64         `json:"counters,omitempty"`
	Phases    map[string]time.Duration `json:"phases_ns,omitempty"`
	SimPhases map[string]time.Duration `json:"sim_phases_ns,omitempty"`
}

// Snapshot copies the registry's current state. Empty maps are omitted so
// the zero registry serializes to {}.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for k, v := range r.counters {
			s.Counters[k] = v
		}
	}
	if len(r.phases) > 0 {
		s.Phases = make(map[string]time.Duration, len(r.phases))
		for k, v := range r.phases {
			s.Phases[k] = v
		}
	}
	if len(r.sim) > 0 {
		s.SimPhases = make(map[string]time.Duration, len(r.sim))
		for k, v := range r.sim {
			s.SimPhases[k] = v
		}
	}
	return s
}

// Merge adds every counter and phase of o into r.
func (r *Registry) Merge(o *Registry) {
	o.mu.Lock()
	counters := make(map[string]int64, len(o.counters))
	for k, v := range o.counters {
		counters[k] = v
	}
	phases := make(map[string]time.Duration, len(o.phases))
	for k, v := range o.phases {
		phases[k] = v
	}
	sim := make(map[string]time.Duration, len(o.sim))
	for k, v := range o.sim {
		sim[k] = v
	}
	o.mu.Unlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range counters {
		r.counters[k] += v
	}
	for k, v := range phases {
		r.phases[k] += v
	}
	for k, v := range sim {
		r.sim[k] += v
	}
}

// Reset clears all counters and phases.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]int64)
	r.phases = make(map[string]time.Duration)
	r.sim = make(map[string]time.Duration)
}

// String renders the registry sorted by name, for logs and debugging.
func (r *Registry) String() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for k := range r.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, k := range names {
		fmt.Fprintf(&sb, "%s=%d ", k, r.counters[k])
	}
	names = names[:0]
	for k := range r.phases {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&sb, "%s=%s ", k, r.phases[k])
	}
	return strings.TrimSpace(sb.String())
}

// Point is one sample of a time series.
type Point struct {
	T time.Duration // elapsed (wall or simulated) time since series start
	V float64
}

// Series records a value over time, e.g. cache-resident bytes (Figure 4.3).
type Series struct {
	mu     sync.Mutex
	name   string
	points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Record appends a sample.
func (s *Series) Record(t time.Duration, v float64) {
	s.mu.Lock()
	s.points = append(s.points, Point{T: t, V: v})
	s.mu.Unlock()
}

// Points returns a copy of the samples in insertion order.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Point(nil), s.points...)
}

// Max returns the maximum recorded value (0 for an empty series).
func (s *Series) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var m float64
	for _, p := range s.points {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Last returns the most recent value (0 for an empty series).
func (s *Series) Last() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.points) == 0 {
		return 0
	}
	return s.points[len(s.points)-1].V
}
