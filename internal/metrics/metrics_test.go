package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounters(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != 0 {
		t.Error("fresh counter not zero")
	}
	r.Add("x", 3)
	r.Add("x", 4)
	r.Add("y", -1)
	if got := r.Counter("x"); got != 7 {
		t.Errorf("x = %d, want 7", got)
	}
	if got := r.Counter("y"); got != -1 {
		t.Errorf("y = %d, want -1", got)
	}
	all := r.Counters()
	if len(all) != 2 || all["x"] != 7 {
		t.Errorf("Counters() = %v", all)
	}
	all["x"] = 999 // mutating the copy must not affect the registry
	if r.Counter("x") != 7 {
		t.Error("Counters() returned a live map")
	}
}

func TestPhases(t *testing.T) {
	r := NewRegistry()
	r.AddPhase(PhaseScaling, time.Second)
	r.AddPhase(PhaseScaling, 2*time.Second)
	if got := r.Phase(PhaseScaling); got != 3*time.Second {
		t.Errorf("Phase = %v, want 3s", got)
	}
	r.AddSimPhase(PhaseRuleGen, time.Minute)
	if got := r.SimPhase(PhaseRuleGen); got != time.Minute {
		t.Errorf("SimPhase = %v, want 1m", got)
	}
	if r.SimPhase("missing") != 0 {
		t.Error("missing sim phase not zero")
	}
}

func TestTimed(t *testing.T) {
	r := NewRegistry()
	r.Timed("work", func() { time.Sleep(5 * time.Millisecond) })
	if got := r.Phase("work"); got < 4*time.Millisecond {
		t.Errorf("Timed recorded %v, want >= ~5ms", got)
	}
}

func TestMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Add("x", 1)
	a.AddPhase("p", time.Second)
	b.Add("x", 2)
	b.Add("z", 5)
	b.AddPhase("p", time.Second)
	b.AddSimPhase("s", time.Minute)
	a.Merge(b)
	if a.Counter("x") != 3 || a.Counter("z") != 5 {
		t.Errorf("merge counters: x=%d z=%d", a.Counter("x"), a.Counter("z"))
	}
	if a.Phase("p") != 2*time.Second {
		t.Errorf("merge phase p = %v", a.Phase("p"))
	}
	if a.SimPhase("s") != time.Minute {
		t.Errorf("merge sim phase s = %v", a.SimPhase("s"))
	}
	// b unchanged.
	if b.Counter("x") != 2 {
		t.Error("merge mutated source")
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	r.Add("x", 1)
	r.AddPhase("p", time.Second)
	r.Reset()
	if r.Counter("x") != 0 || r.Phase("p") != 0 {
		t.Error("reset did not clear registry")
	}
}

func TestString(t *testing.T) {
	r := NewRegistry()
	r.Add("b", 2)
	r.Add("a", 1)
	r.AddPhase("p", time.Second)
	s := r.String()
	if !strings.Contains(s, "a=1") || !strings.Contains(s, "b=2") || !strings.Contains(s, "p=1s") {
		t.Errorf("String = %q", s)
	}
	if strings.Index(s, "a=1") > strings.Index(s, "b=2") {
		t.Errorf("String not sorted: %q", s)
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Add("n", 1)
				r.AddPhase("p", time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n"); got != 8000 {
		t.Errorf("n = %d, want 8000", got)
	}
	if got := r.Phase("p"); got != 8000*time.Nanosecond {
		t.Errorf("p = %v, want 8000ns", got)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("mem")
	if s.Name() != "mem" {
		t.Errorf("Name = %q", s.Name())
	}
	if s.Max() != 0 || s.Last() != 0 || len(s.Points()) != 0 {
		t.Error("empty series not zero")
	}
	s.Record(time.Second, 100)
	s.Record(2*time.Second, 300)
	s.Record(3*time.Second, 50)
	pts := s.Points()
	if len(pts) != 3 || pts[1].V != 300 || pts[1].T != 2*time.Second {
		t.Errorf("Points = %v", pts)
	}
	if s.Max() != 300 {
		t.Errorf("Max = %v, want 300", s.Max())
	}
	if s.Last() != 50 {
		t.Errorf("Last = %v, want 50", s.Last())
	}
}
