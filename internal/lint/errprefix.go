package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// errPrefixByPackage maps checked packages to the error-message prefix the
// server's status mapping keys on: "rule:" errors map to 400 (caller input),
// "cube:" errors to 500 (pipeline corruption). See server.mapError.
var errPrefixByPackage = map[string]string{
	"internal/rule": "rule: ",
	"internal/cube": "cube: ",
}

func errPrefixCheck() *Check {
	return &Check{
		Name: "errprefix",
		Doc:  "rule/cube error messages must carry their package prefix (drives 400/500 mapping)",
		Run:  runErrPrefix,
	}
}

func runErrPrefix(p *Package, report func(pos token.Pos, format string, args ...any)) {
	var prefix string
	for suffix, pre := range errPrefixByPackage {
		if pathIn(p, suffix) {
			prefix = pre
			break
		}
	}
	if prefix == "" {
		return
	}
	for _, f := range p.Files {
		if isTestFile(p, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			qual := obj.Pkg().Path() + "." + sel.Sel.Name
			if qual != "fmt.Errorf" && qual != "errors.New" {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true // dynamic message: out of scope
			}
			msg, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !strings.HasPrefix(msg, prefix) {
				report(lit.Pos(), "error message %q must start with %q so server.mapError classifies it correctly", msg, prefix)
			}
			return true
		})
	}
}
