package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantPattern matches golden annotations in fixture files:
//
//	// want:<check> "<message substring>"
var wantPattern = regexp.MustCompile(`// want:([a-z]+) "([^"]*)"`)

type expectation struct {
	file   string
	line   int
	check  string
	substr string
}

func collectWants(t *testing.T, root string) []expectation {
	t.Helper()
	var wants []expectation
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantPattern.FindAllStringSubmatch(line, -1) {
				wants = append(wants, expectation{file: path, line: i + 1, check: m[1], substr: m[2]})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// TestGoldenFixtures loads the fixture module under testdata/src, runs the
// full suite, and requires the findings to match the // want annotations
// exactly — every annotated line reported with the annotated substring, and
// nothing else reported. Suppressed lines carry //sirum:allow and no
// annotation, so a broken suppression path fails as an unexpected finding.
func TestGoldenFixtures(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Load(root, "sirum")
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	findings := RunChecks(m, nil)
	wants := collectWants(t, root)
	if len(wants) == 0 {
		t.Fatal("no // want annotations found under testdata/src")
	}

	type key struct {
		file  string
		line  int
		check string
	}
	unmatched := make(map[key]expectation, len(wants))
	for _, w := range wants {
		unmatched[key{w.file, w.line, w.check}] = w
	}
	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line, f.Check}
		w, ok := unmatched[k]
		if !ok {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		if !strings.Contains(f.Message, w.substr) {
			t.Errorf("finding at %s:%d [%s]: message %q does not contain %q",
				f.Pos.Filename, f.Pos.Line, f.Check, f.Message, w.substr)
		}
		delete(unmatched, k)
	}
	for _, w := range unmatched {
		t.Errorf("missing finding: %s:%d [%s] (want message containing %q)", w.file, w.line, w.check, w.substr)
	}
}

// TestSuiteNames pins the advertised check set: CI and the README refer to
// these names, and //sirum:allow directives key on them.
func TestSuiteNames(t *testing.T) {
	want := []string{"zerocopykey", "pinnedencode", "pairedlifecycle", "errprefix", "metricname"}
	got := CheckNames()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("check names = %v, want %v", got, want)
	}
}

// TestModuleClean runs the whole suite over this repository and requires a
// clean bill: the tree must stay sirumvet-clean, with every justified
// exception carrying an explicit //sirum:allow annotation. This is the same
// gate CI applies via `go run ./cmd/sirumvet ./...`.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check; CI covers this via the sirumvet step")
	}
	root, module, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if module != "sirum" {
		t.Fatalf("module = %q, want sirum", module)
	}
	m, err := Load(root, module)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	findings := RunChecks(m, nil)
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestSuppressionDirective covers the directive parser: same-line and
// line-above placement, comma-separated check lists, and the reason text.
func TestSuppressionDirective(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Load(root, "sirum")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range m.Pkgs {
		if !strings.HasSuffix(pkg.Path, "internal/rule") {
			continue
		}
		sup := collectSuppressions(pkg)
		var hit bool
		for file, byLine := range sup {
			for k := range byLine {
				if strings.HasSuffix(k, "\x00zerocopykey") {
					hit = true
				}
				_ = file
			}
		}
		if !hit {
			t.Fatal("no zerocopykey suppression parsed from the rule fixture")
		}
		return
	}
	t.Fatal("rule fixture package not loaded")
}
