package lint

import (
	"go/ast"
	"go/token"
	"path/filepath"
)

// pinnedEncodeAllowlist names the internal/server files where the stock
// encoder is legitimate: request/client decoding, journal persistence and
// the pinned encoder's own cold-path fallback.
var pinnedEncodeAllowlist = map[string]bool{
	"api.go":      true,
	"snapshot.go": true,
	"encode.go":   true,
}

// pinnedEncodeBanned are the encoding/json entry points that would bypass
// the byte-pinned open-envelope encoder on a response path.
var pinnedEncodeBanned = map[string]bool{
	"Marshal":       true,
	"MarshalIndent": true,
	"NewEncoder":    true,
}

func pinnedEncodeCheck() *Check {
	return &Check{
		Name: "pinnedencode",
		Doc:  "internal/server responses must use the pinned open-envelope encoder, not encoding/json",
		Run:  runPinnedEncode,
	}
}

func runPinnedEncode(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if !pathIn(p, "internal/server") {
		return
	}
	for _, f := range p.Files {
		if isTestFile(p, f) {
			continue
		}
		base := filepath.Base(p.Fset.Position(f.Pos()).Filename)
		if pinnedEncodeAllowlist[base] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !pinnedEncodeBanned[sel.Sel.Name] {
				return true
			}
			obj := p.Info.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "encoding/json" {
				return true
			}
			report(call.Pos(), "json.%s in %s bypasses the pinned open-envelope encoder (encode.go); responses must go through writeOpenBody/appendMarshal or move to an allowlisted file", sel.Sel.Name, base)
			return true
		})
	}
}
