package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked module package as the checks see it: its
// import path, syntax (non-test files only), and type information.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Fset  *token.FileSet
	Pkg   *types.Package
	Info  *types.Info
}

// Module is the loaded view of one Go module.
type Module struct {
	Path string // module path from go.mod
	Root string // directory containing go.mod
	Fset *token.FileSet
	Pkgs []*Package // sorted by import path
}

// loader resolves imports: module-internal paths compile from source under
// the module root, everything else (the standard library) goes through the
// stdlib source importer. No network, no GOPATH, no export data needed.
type loader struct {
	fset   *token.FileSet
	module string
	root   string
	std    types.ImporterFrom
	cache  map[string]*Package
	stdPkg map[string]*types.Package
}

func newLoader(root, module string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:   fset,
		module: module,
		root:   root,
		std:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		cache:  make(map[string]*Package),
		stdPkg: make(map[string]*types.Package),
	}
}

func (l *loader) Import(p string) (*types.Package, error) { return l.ImportFrom(p, "", 0) }

func (l *loader) ImportFrom(p, dir string, mode types.ImportMode) (*types.Package, error) {
	if p == l.module || strings.HasPrefix(p, l.module+"/") {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	if pkg, ok := l.stdPkg[p]; ok {
		return pkg, nil
	}
	pkg, err := l.std.ImportFrom(p, dir, mode)
	if err == nil {
		l.stdPkg[p] = pkg
	}
	return pkg, err
}

// dirFor maps a module import path to its directory.
func (l *loader) dirFor(importPath string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.module), "/")
	return filepath.Join(l.root, filepath.FromSlash(rel))
}

// load parses and type-checks one module package (memoized).
func (l *loader) load(importPath string) (*Package, error) {
	if pkg, ok := l.cache[importPath]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", importPath)
		}
		return pkg, nil
	}
	l.cache[importPath] = nil // cycle marker
	dir := l.dirFor(importPath)
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		delete(l.cache, importPath)
		return nil, fmt.Errorf("lint: %s: %v", importPath, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			delete(l.cache, importPath)
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		delete(l.cache, importPath)
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, typeErrs[0])
	}
	if err != nil {
		delete(l.cache, importPath)
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	pkg := &Package{Path: importPath, Dir: dir, Files: files, Fset: l.fset, Pkg: tpkg, Info: info}
	l.cache[importPath] = pkg
	return pkg, nil
}

// FindModuleRoot walks upward from dir to the nearest go.mod, returning the
// root directory and the module path.
func FindModuleRoot(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Load parses and type-checks every package of the module rooted at root
// (module path module). Directories named testdata, hidden directories and
// directories without buildable Go files are skipped.
func Load(root, module string) (*Module, error) {
	l := newLoader(root, module)
	var paths []string
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if _, err := build.Default.ImportDir(p, 0); err != nil {
			return nil // no buildable Go files here; keep walking
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		importPath := module
		if rel != "." {
			importPath = path.Join(module, filepath.ToSlash(rel))
		}
		paths = append(paths, importPath)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	m := &Module{Path: module, Root: root, Fset: l.fset}
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		m.Pkgs = append(m.Pkgs, pkg)
	}
	return m, nil
}
