package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// hotKeyPackages are the packages whose inner loops key maps by scratch
// buffers; a stray string([]byte) binding there re-introduces a per-rule
// allocation (see the PR 7 packed-key pipeline).
var hotKeyPackages = []string{
	"internal/rule",
	"internal/cube",
	"internal/bitset",
	"internal/candgen",
	"internal/miner",
	"internal/maxent",
}

func zeroCopyKeyCheck() *Check {
	return &Check{
		Name: "zerocopykey",
		Doc:  "string([]byte) in hot packages must be a direct map index or comparison operand",
		Run:  runZeroCopyKey,
	}
}

func runZeroCopyKey(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if !pathIn(p, hotKeyPackages...) {
		return
	}
	for _, f := range p.Files {
		if isTestFile(p, f) {
			continue
		}
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return
			}
			if !isStringOfBytes(p.Info, call) {
				return
			}
			switch parent := parentOf(stack).(type) {
			case *ast.IndexExpr:
				// m[string(buf)] — allocation-free for map reads and writes.
				if parent.Index == call && isMap(p.Info.TypeOf(parent.X)) {
					return
				}
			case *ast.BinaryExpr:
				switch parent.Op {
				case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
					return // comparison operand — no retention
				}
			case *ast.SwitchStmt:
				if parent.Tag == call {
					return // switch string(buf) — compiled to comparisons
				}
			case *ast.CaseClause:
				return // case string(buf): — comparison
			}
			report(call.Pos(), "string([]byte) conversion must be used directly as a map index or comparison operand; binding, passing or returning it allocates and retains a key copy per call")
		})
	}
}

// isStringOfBytes reports whether call is a conversion to a string type
// applied to a value whose underlying type is []byte.
func isStringOfBytes(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	if _, ok := tv.Type.Underlying().(*types.Basic); !ok {
		return false
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return false
	}
	argType := info.TypeOf(call.Args[0])
	if argType == nil {
		return false
	}
	slice, ok := argType.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	elem, ok := slice.Elem().Underlying().(*types.Basic)
	return ok && elem.Kind() == types.Byte
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
