// Allowlisted file: journal persistence encodes with the stock encoder.
package server

import "encoding/json"

func marshalManifest(v any) ([]byte, error) {
	return json.MarshalIndent(v, "", "  ") // ok: snapshot.go is allowlisted
}
