// Fixture for the pinnedencode check: stock-encoder calls outside the
// allowlisted files must be reported.
package server

import (
	"bytes"
	"encoding/json"
)

func renderMine(v any) ([]byte, error) {
	return json.Marshal(v) // want:pinnedencode "bypasses the pinned"
}

func renderList(v any) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf) // want:pinnedencode "bypasses the pinned"
	return enc.Encode(v)
}

func renderPretty(v any) ([]byte, error) {
	return json.MarshalIndent(v, "", "  ") // want:pinnedencode "bypasses the pinned"
}

func renderHealth(v any) ([]byte, error) {
	//sirum:allow pinnedencode — control-plane response, not a result path
	return json.Marshal(v)
}

func decodeBody(b []byte, v any) error {
	return json.Unmarshal(b, v) // ok: decoding is never pinned
}
