// Allowlisted file: request/client-side encoding may use the stock encoder.
package server

import "encoding/json"

func marshalRequest(v any) ([]byte, error) {
	return json.Marshal(v) // ok: api.go is allowlisted
}
