// Allowlisted file: the pinned encoder's own cold-path fallback.
package server

import (
	"bytes"
	"encoding/json"
)

func appendMarshal(dst []byte, v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf) // ok: encode.go is allowlisted
	if err := enc.Encode(v); err != nil {
		return dst, err
	}
	return append(dst, bytes.TrimRight(buf.Bytes(), "\n")...), nil
}
