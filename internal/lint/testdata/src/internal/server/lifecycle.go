// Fixture for the pairedlifecycle check over *sirum.Prepared: the session
// rebuild paths (create, restore, import) acquire a whole prepared mining
// substrate, which must be Closed on every non-handoff path.
package server

import "sirum"

func leakPrepared(ds *sirum.Dataset) error {
	p, err := ds.Prepare(sirum.PrepareOptions{}) // want:pairedlifecycle "never Closed"
	if err != nil {
		return err
	}
	_, err = p.Mine(sirum.Options{})
	return err
}

func deferredPrepared(ds *sirum.Dataset) error {
	p, err := ds.Prepare(sirum.PrepareOptions{})
	if err != nil {
		return err
	}
	defer p.Close()
	_, err = p.Mine(sirum.Options{})
	return err
}

func leakOnEarlyReturn(ds *sirum.Dataset) (*sirum.Prepared, error) {
	p, err := ds.Prepare(sirum.PrepareOptions{}) // want:pairedlifecycle "not released on all paths"
	if err != nil {
		return nil, err
	}
	if _, err := p.Mine(sirum.Options{}); err != nil {
		return nil, err // leaks p: no Close before this return
	}
	return p, nil
}

func verifyThenHandOff(ds *sirum.Dataset) (*sirum.Prepared, error) {
	p, err := ds.Prepare(sirum.PrepareOptions{})
	if err != nil {
		return nil, err
	}
	if _, err := p.Mine(sirum.Options{}); err != nil {
		p.Close()
		return nil, err
	}
	return p, nil // handoff: the caller owns p now
}

func closureThenClose(ds *sirum.Dataset, run func(func() error) error) error {
	p, err := ds.Prepare(sirum.PrepareOptions{})
	if err != nil {
		return err
	}
	// The closure's return leaves the closure, not this function: with
	// Close called before the real exit, no path leaks p.
	runErr := run(func() error {
		_, err := p.Mine(sirum.Options{})
		return err
	})
	p.Close()
	return runErr
}

type registry struct{ p *sirum.Prepared }

func storeInRegistry(ds *sirum.Dataset, reg *registry) error {
	p, err := ds.Prepare(sirum.PrepareOptions{})
	if err != nil {
		return err
	}
	reg.p = p // handoff: the registry owns p now
	return nil
}
