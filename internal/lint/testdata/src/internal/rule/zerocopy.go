// Fixture for the zerocopykey check: string([]byte) conversions in a hot
// package. Lines annotated "want:zerocopykey" must be reported; unannotated
// conversions must not.
package rule

type box struct {
	s string
}

func lookups(m map[string]int, buf []byte) int {
	if v, ok := m[string(buf)]; ok { // ok: direct map read
		return v
	}
	m[string(buf)] = 1      // ok: direct map write
	if string(buf) == "k" { // ok: comparison operand
		return 2
	}
	if "k" != string(buf) { // ok: comparison operand, either side
		return 3
	}
	s := string(buf) // want:zerocopykey "map index or comparison"
	sink(s)
	sink(string(buf))        // want:zerocopykey "map index or comparison"
	b := box{s: string(buf)} // want:zerocopykey "map index or comparison"
	sink(b.s)
	return 0
}

func key(buf []byte) string {
	return string(buf) // want:zerocopykey "map index or comparison"
}

func allowedKey(buf []byte) string {
	//sirum:allow zerocopykey — deliberate copy on a cold accessor
	return string(buf)
}

func notBytes(r rune, rs []rune, m map[string]int) int {
	s := string(r)  // ok: rune conversion, not []byte
	t := string(rs) // ok: []rune conversion
	return m[s] + m[t]
}

func sink(string) {}
