// Minimal stand-in for sirum/internal/engine: just enough surface for the
// pairedlifecycle fixtures to type-check. The check matches lifecycle types
// by package name and type name, so this package must be named engine and
// declare Ref and QueryScope.
package engine

type CachedData struct{}

type Ref struct{}

func (r *Ref) Release() {}

type DataPool struct{}

func (p *DataPool) Acquire(id string) (*CachedData, *Ref, bool) { return &CachedData{}, &Ref{}, true }

func (p *DataPool) Put(id string, cd *CachedData) (*CachedData, *Ref) { return cd, &Ref{} }

type Backend interface {
	Pool() *DataPool
}

type QueryScope struct{}

func NewQueryScope(b Backend) *QueryScope { return &QueryScope{} }

func (s *QueryScope) Finish() {}

func (s *QueryScope) Close() error { return nil }
