// Minimal stand-in for sirum/internal/cube: just enough surface for the
// pairedlifecycle fixtures to type-check. The check matches lifecycle types
// by package name and type name, so this package must be named cube and
// declare PackedTable with its Release closer.
package cube

import "sirum/internal/engine"

type PackedTable struct{}

func NewPackedTable(hint int) *PackedTable { return &PackedTable{} }

func BorrowTable(c engine.Backend, hint int) *PackedTable { return &PackedTable{} }

func (t *PackedTable) Len() int { return 0 }

func (t *PackedTable) Release(c engine.Backend) {}
