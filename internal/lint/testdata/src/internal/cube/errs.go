// Fixture for the errprefix check: error constructors in internal/cube must
// carry the "cube: " prefix that server.mapError keys on.
package cube

import (
	"errors"
	"fmt"
)

var errBad = errors.New("bad thing") // want:errprefix "cube: "

var errOK = errors.New("cube: bad thing") // ok

func validate(n int) error {
	if n < 0 {
		return fmt.Errorf("negative count %d", n) // want:errprefix "cube: "
	}
	if n > 10 {
		return fmt.Errorf("cube: count %d over limit", n) // ok
	}
	if n == 7 {
		//sirum:allow errprefix — relays a foreign subsystem's message verbatim
		return errors.New("upstream: seven is cursed")
	}
	return dynamic("cube: computed %d", n)
}

// dynamic messages are out of scope: only literals are checked.
func dynamic(format string, args ...any) error {
	return fmt.Errorf(format, args...) // ok: non-literal message
}

var _ = errBad
var _ = errOK
