// Fixture for the pairedlifecycle check over arena-borrowed cube tables:
// every *cube.PackedTable borrow must be Released, deferred, or handed off,
// exactly like the engine lifecycle types.
package miner

import (
	"sirum/internal/cube"
	"sirum/internal/engine"
)

type tableHolder struct {
	t *cube.PackedTable
}

func leakTable(b engine.Backend) int {
	t := cube.BorrowTable(b, 8) // want:pairedlifecycle "never Released"
	return t.Len()
}

func discardedTable(b engine.Backend) {
	_ = cube.BorrowTable(b, 8) // want:pairedlifecycle "discarded"
}

func tableErrPath(b engine.Backend, fail bool) bool {
	t := cube.BorrowTable(b, 8) // want:pairedlifecycle "not released on all paths"
	if fail {
		return false
	}
	t.Release(b)
	return true
}

func goodTable(b engine.Backend) {
	t := cube.BorrowTable(b, 8)
	defer t.Release(b)
}

func linearTable(b engine.Backend) {
	t := cube.BorrowTable(b, 8) // ok: released before the function ends
	t.Release(b)
}

func tableEscapes(b engine.Backend) *cube.PackedTable {
	t := cube.BorrowTable(b, 8)
	return t // ok: handed off to the caller
}

func tableStored(b engine.Backend, h *tableHolder) {
	t := cube.BorrowTable(b, 8)
	h.t = t // ok: stored; the holder owns it now
}

func tableHandoff(b engine.Backend) {
	t := cube.BorrowTable(b, 8)
	consumeTable(t) // ok: passed along
}

func suppressedTable(b engine.Backend) {
	//sirum:allow pairedlifecycle — released by the fixture harness out of band
	t := cube.BorrowTable(b, 8)
	_ = t
}

func consumeTable(*cube.PackedTable) {}
