// Fixture for the pairedlifecycle check: every acquisition of an
// *engine.Ref or *engine.QueryScope must be discharged — deferred, released
// on all paths, or handed off.
package miner

import "sirum/internal/engine"

type holder struct {
	ref *engine.Ref
}

func leakScope(b engine.Backend) {
	qc := engine.NewQueryScope(b) // want:pairedlifecycle "never Finished"
	_ = qc
}

func goodScope(b engine.Backend) {
	qc := engine.NewQueryScope(b)
	defer qc.Finish()
}

func closedScope(b engine.Backend) {
	qc := engine.NewQueryScope(b)
	defer qc.Close()
}

func leakRef(p *engine.DataPool) int {
	_, ref, ok := p.Acquire("x") // want:pairedlifecycle "never Released"
	if !ok {
		return 0
	}
	_ = ref
	return 1
}

func discarded(p *engine.DataPool) bool {
	_, _, ok := p.Acquire("x") // want:pairedlifecycle "discarded"
	return ok
}

func errPath(p *engine.DataPool, fail bool) bool {
	_, ref, _ := p.Acquire("x") // want:pairedlifecycle "not released on all paths"
	if fail {
		return false
	}
	ref.Release()
	return true
}

func linear(p *engine.DataPool) {
	_, ref, _ := p.Acquire("x") // ok: released before the function ends
	ref.Release()
}

func releaseThenReturn(p *engine.DataPool, fail bool) bool {
	_, ref, _ := p.Acquire("x") // ok: released before every return
	ref.Release()
	if fail {
		return false
	}
	return true
}

func escapes(p *engine.DataPool) (*engine.CachedData, func(), bool) {
	cd, ref, ok := p.Acquire("x")
	return cd, ref.Release, ok // ok: obligation handed to the caller
}

func escapesValue(p *engine.DataPool) *engine.Ref {
	_, ref, _ := p.Acquire("x")
	return ref // ok: handed off
}

func deferClosure(p *engine.DataPool) {
	_, ref, _ := p.Acquire("x") // ok: released via deferred closure
	defer func() { ref.Release() }()
}

func stored(p *engine.DataPool, h *holder) {
	_, ref, _ := p.Acquire("x")
	h.ref = ref // ok: stored; the holder owns it now
}

func handoff(p *engine.DataPool) {
	_, ref, _ := p.Acquire("x")
	hand(ref) // ok: passed along
}

func putEscapes(p *engine.DataPool, cd *engine.CachedData) (*engine.CachedData, func()) {
	pooled, ref := p.Put("x", cd)
	return pooled, ref.Release // ok
}

func suppressed(b engine.Backend) {
	//sirum:allow pairedlifecycle — finished by the fixture harness out of band
	qc := engine.NewQueryScope(b)
	_ = qc
}

func hand(*engine.Ref) {}
