// Fixture for the metricname check: family names must match
// ^sirum[a-z0-9_]*$ and be registered exactly once per package.
package router

import (
	"fmt"
	"strings"
)

func emit(b *strings.Builder) {
	gauge := func(name, help string, v any) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n", name, help)
	}
	gauge("sirumr_up", "Router liveness.", 1)                                                  // ok
	gauge("router_up", "Off-prefix family.", 1)                                                // want:metricname "must match"
	gauge("sirumr_Sessions", "Bad capital.", 1)                                                // want:metricname "must match"
	counter("sirumr_up", "Duplicate of the gauge above.")                                      // want:metricname "registered more than once"
	fmt.Fprintf(b, "# HELP sirumr_shard_up Per-shard health.\n# TYPE sirumr_shard_up gauge\n") // ok: literal registration
	fmt.Fprintf(b, "# HELP bad_family Literal off-prefix family.\n")                           // want:metricname "must match"
	//sirum:allow metricname — upstream family re-exported verbatim
	fmt.Fprintf(b, "# HELP process_cpu_seconds_total Re-exported.\n")
}
