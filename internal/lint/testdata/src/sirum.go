// Minimal stand-in for the sirum root package: just enough surface for
// the pairedlifecycle fixtures to type-check. The check matches lifecycle
// types by package name and type name, so this package must be named sirum
// and declare Prepared with a Close method.
package sirum

type Dataset struct{}

type Options struct{}

type PrepareOptions struct{}

type Prepared struct{}

func (d *Dataset) Prepare(opts PrepareOptions) (*Prepared, error) { return &Prepared{}, nil }

func (p *Prepared) Close() error { return nil }

func (p *Prepared) Mine(opts Options) (int, error) { return 0, nil }
