package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
)

// metricFamilyPattern is the naming contract for this project's Prometheus
// families: the sirum prefix keeps the cluster rollup's namespace coherent.
var metricFamilyPattern = regexp.MustCompile(`^sirum[a-z0-9_]*$`)

// helpLinePattern extracts concrete family names from literal exposition
// text ("# HELP sirumd_sessions ..."). Format verbs like %s never match.
var helpLinePattern = regexp.MustCompile(`# HELP ([A-Za-z_:][A-Za-z0-9_:]*)`)

func metricNameCheck() *Check {
	return &Check{
		Name: "metricname",
		Doc:  "metric families must match ^sirum[a-z0-9_]*$ and be registered exactly once",
		Run:  runMetricName,
	}
}

// metricReg is one family registration site: a gauge()/counter() helper call
// with a literal name, or a literal "# HELP <name>" exposition fragment.
type metricReg struct {
	name string
	pos  token.Pos
}

func runMetricName(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if !pathIn(p, "internal/server", "internal/router") {
		return
	}
	var regs []metricReg
	for _, f := range p.Files {
		if isTestFile(p, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				id, ok := n.Fun.(*ast.Ident)
				if !ok || (id.Name != "gauge" && id.Name != "counter") || len(n.Args) == 0 {
					return true
				}
				lit, ok := n.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				if name, err := strconv.Unquote(lit.Value); err == nil {
					regs = append(regs, metricReg{name: name, pos: lit.Pos()})
				}
			case *ast.BasicLit:
				if n.Kind != token.STRING {
					return true
				}
				s, err := strconv.Unquote(n.Value)
				if err != nil {
					return true
				}
				for _, m := range helpLinePattern.FindAllStringSubmatch(s, -1) {
					regs = append(regs, metricReg{name: m[1], pos: n.Pos()})
				}
			}
			return true
		})
	}
	firstAt := make(map[string]token.Pos, len(regs))
	for _, r := range regs {
		if !metricFamilyPattern.MatchString(r.name) {
			report(r.pos, "metric family %q must match ^sirum[a-z0-9_]*$", r.name)
		}
		if prev, ok := firstAt[r.name]; ok {
			report(r.pos, "metric family %q is registered more than once (first at %s); duplicate HELP/TYPE blocks corrupt the exposition document", r.name, p.Fset.Position(prev))
			continue
		}
		firstAt[r.name] = r.pos
	}
}
