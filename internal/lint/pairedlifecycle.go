package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lifecycleClosers maps the engine lifecycle types to the methods that
// discharge them.
var lifecycleClosers = map[string]map[string]bool{
	"Ref":        {"Release": true},
	"QueryScope": {"Finish": true, "Close": true},
}

func pairedLifecycleCheck() *Check {
	return &Check{
		Name: "pairedlifecycle",
		Doc:  "engine.Ref / QueryScope acquisitions must be released in the same function or handed off",
		Run:  runPairedLifecycle,
	}
}

// lifecycleTypeName returns "Ref" or "QueryScope" when t is a pointer to one
// of the engine lifecycle types, else "".
func lifecycleTypeName(t types.Type) string {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Name() != "engine" {
		return ""
	}
	if _, ok := lifecycleClosers[obj.Name()]; !ok {
		return ""
	}
	return obj.Name()
}

func runPairedLifecycle(p *Package, report func(pos token.Pos, format string, args ...any)) {
	// The engine package itself constructs and plumbs these values; the
	// invariant binds their consumers.
	if pathIn(p, "internal/engine") {
		return
	}
	for _, f := range p.Files {
		if isTestFile(p, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLifecycleBody(p, fd, report)
		}
	}
}

// yield is one lifecycle acquisition inside a function body.
type yield struct {
	obj      types.Object // the bound variable; nil when bound to blank
	typeName string       // "Ref" or "QueryScope"
	pos      token.Pos
}

func checkLifecycleBody(p *Package, fd *ast.FuncDecl, report func(pos token.Pos, format string, args ...any)) {
	var yields []yield
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[call]
		if !ok {
			return true
		}
		// Align each lifecycle-typed result with its LHS binding.
		var results []types.Type
		if tuple, ok := tv.Type.(*types.Tuple); ok {
			for i := 0; i < tuple.Len(); i++ {
				results = append(results, tuple.At(i).Type())
			}
		} else {
			results = []types.Type{tv.Type}
		}
		if len(results) != len(as.Lhs) {
			return true
		}
		for i, rt := range results {
			name := lifecycleTypeName(rt)
			if name == "" {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			y := yield{typeName: name, pos: as.Lhs[i].Pos()}
			if id.Name != "_" {
				if obj := p.Info.Defs[id]; obj != nil {
					y.obj = obj
				} else if obj := p.Info.Uses[id]; obj != nil {
					y.obj = obj // plain = assignment to an existing variable
				}
			}
			yields = append(yields, y)
		}
		return true
	})

	for _, y := range yields {
		if y.obj == nil {
			report(y.pos, "*engine.%s result is discarded; it must be %s", y.typeName, closerHint(y.typeName))
			continue
		}
		checkYieldUsage(p, fd, y, report)
	}
}

func closerHint(typeName string) string {
	if typeName == "Ref" {
		return "Released (defer or all return paths) or handed off"
	}
	return "Finished (defer or all return paths) or handed off"
}

func checkYieldUsage(p *Package, fd *ast.FuncDecl, y yield, report func(pos token.Pos, format string, args ...any)) {
	closers := lifecycleClosers[y.typeName]
	var (
		deferred   bool
		escapes    bool
		closerPos  []token.Pos
		returnPos  []token.Pos
		closerSeen bool
	)
	inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			returnPos = append(returnPos, ret.Pos())
			return
		}
		id, ok := n.(*ast.Ident)
		if !ok || p.Info.Uses[id] != y.obj {
			return
		}
		parent := parentOf(stack)
		if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id && closers[sel.Sel.Name] {
			// x.Release / x.Finish: a call discharges here; a method value
			// (e.g. "return cd, ref.Release, nil") hands the obligation off.
			gp := grandParentOf(stack)
			if call, ok := gp.(*ast.CallExpr); ok && call.Fun == sel {
				closerSeen = true
				closerPos = append(closerPos, call.Pos())
				if underDefer(stack) {
					deferred = true
				}
				return
			}
			escapes = true
			return
		}
		// Any other use that moves the value out of the function transfers
		// the release obligation: returning it, storing it, passing it on.
		switch pr := parent.(type) {
		case *ast.ReturnStmt:
			escapes = true
		case *ast.CallExpr:
			if pr.Fun != id { // argument, not the callee
				escapes = true
			}
		case *ast.CompositeLit, *ast.KeyValueExpr:
			escapes = true
		case *ast.AssignStmt:
			for _, rhs := range pr.Rhs {
				if rhs == id && !allBlank(pr.Lhs) {
					escapes = true
				}
			}
		case *ast.SendStmt:
			if pr.Value == id {
				escapes = true
			}
		}
	})
	switch {
	case deferred, escapes:
		return
	case !closerSeen:
		report(y.pos, "*engine.%s acquired here is never %s", y.typeName, closerHint(y.typeName))
	default:
		// Non-deferred closer: every return after the yield must be
		// preceded by a closer call in source order, or a path leaks.
		for _, ret := range returnPos {
			if ret <= y.pos {
				continue
			}
			released := false
			for _, c := range closerPos {
				if c < ret {
					released = true
					break
				}
			}
			if !released {
				report(y.pos, "*engine.%s acquired here is not released on all paths: return at %s precedes every %s call (defer it, or release before returning)", y.typeName, p.Fset.Position(ret), closerNames(y.typeName))
			}
		}
	}
}

func closerNames(typeName string) string {
	if typeName == "Ref" {
		return "Release"
	}
	return "Finish/Close"
}

func grandParentOf(stack []ast.Node) ast.Node {
	seen := 0
	for i := len(stack) - 2; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		seen++
		if seen == 2 {
			return stack[i]
		}
	}
	return nil
}

// underDefer reports whether the node at the top of the stack sits inside a
// defer statement (directly or through a deferred closure).
func underDefer(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}
