package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lifecycleType identifies a tracked lifecycle type by its package and type
// name.
type lifecycleType struct{ pkg, name string }

// lifecycleSpec describes how a lifecycle type is discharged and how its
// diagnostics read.
type lifecycleSpec struct {
	closers map[string]bool // methods that discharge the obligation
	done    string          // past participle for diagnostics
	names   string          // closer method list for diagnostics
}

// lifecycleSpecs maps the tracked lifecycle types to the methods that
// discharge them: engine pool references and query scopes, the cube's
// arena-borrowed tables, and prepared sessions (whose rebuild paths —
// create, restore, import — must Close on every non-handoff path or leak
// a whole prepared substrate).
var lifecycleSpecs = map[lifecycleType]lifecycleSpec{
	{"engine", "Ref"}:        {closers: map[string]bool{"Release": true}, done: "Released", names: "Release"},
	{"engine", "QueryScope"}: {closers: map[string]bool{"Finish": true, "Close": true}, done: "Finished", names: "Finish/Close"},
	{"cube", "PackedTable"}:  {closers: map[string]bool{"Release": true}, done: "Released", names: "Release"},
	{"sirum", "Prepared"}:    {closers: map[string]bool{"Close": true}, done: "Closed", names: "Close"},
}

func pairedLifecycleCheck() *Check {
	return &Check{
		Name: "pairedlifecycle",
		Doc:  "engine.Ref / QueryScope, cube.PackedTable and sirum.Prepared acquisitions must be released in the same function or handed off",
		Run:  runPairedLifecycle,
	}
}

// lifecycleTypeOf returns the tracked lifecycle type t points to, if any.
func lifecycleTypeOf(t types.Type) (lifecycleType, bool) {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return lifecycleType{}, false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return lifecycleType{}, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return lifecycleType{}, false
	}
	lt := lifecycleType{pkg: obj.Pkg().Name(), name: obj.Name()}
	if _, ok := lifecycleSpecs[lt]; !ok {
		return lifecycleType{}, false
	}
	return lt, true
}

func runPairedLifecycle(p *Package, report func(pos token.Pos, format string, args ...any)) {
	// The engine package itself constructs and plumbs these values; the
	// invariant binds their consumers.
	if pathIn(p, "internal/engine") {
		return
	}
	for _, f := range p.Files {
		if isTestFile(p, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLifecycleBody(p, fd, report)
		}
	}
}

// yield is one lifecycle acquisition inside a function body.
type yield struct {
	obj    types.Object // the bound variable; nil when bound to blank
	errObj types.Object // the error bound by the same assignment, if any
	fn     ast.Node     // innermost enclosing FuncLit, nil at function level
	lt     lifecycleType
	pos    token.Pos
}

var errorType = types.Universe.Lookup("error").Type()

func checkLifecycleBody(p *Package, fd *ast.FuncDecl, report func(pos token.Pos, format string, args ...any)) {
	var yields []yield
	inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		tv, ok := p.Info.Types[call]
		if !ok {
			return
		}
		// Align each lifecycle-typed result with its LHS binding.
		var results []types.Type
		if tuple, ok := tv.Type.(*types.Tuple); ok {
			for i := 0; i < tuple.Len(); i++ {
				results = append(results, tuple.At(i).Type())
			}
		} else {
			results = []types.Type{tv.Type}
		}
		if len(results) != len(as.Lhs) {
			return
		}
		// The error bound alongside the acquisition, when there is one:
		// returns guarded by it are failure paths where the lifecycle value
		// was never acquired, not leaks.
		var errObj types.Object
		for i, rt := range results {
			if !types.Identical(rt, errorType) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				if obj := p.Info.Defs[id]; obj != nil {
					errObj = obj
				} else if obj := p.Info.Uses[id]; obj != nil {
					errObj = obj
				}
			}
		}
		for i, rt := range results {
			lt, ok := lifecycleTypeOf(rt)
			if !ok {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			y := yield{lt: lt, pos: as.Lhs[i].Pos(), errObj: errObj, fn: innermostFuncLit(stack)}
			if id.Name != "_" {
				if obj := p.Info.Defs[id]; obj != nil {
					y.obj = obj
				} else if obj := p.Info.Uses[id]; obj != nil {
					y.obj = obj // plain = assignment to an existing variable
				}
			}
			yields = append(yields, y)
		}
	})

	for _, y := range yields {
		if y.obj == nil {
			report(y.pos, "*%s.%s result is discarded; it must be %s", y.lt.pkg, y.lt.name, closerHint(y.lt))
			continue
		}
		checkYieldUsage(p, fd, y, report)
	}
}

func closerHint(lt lifecycleType) string {
	return lifecycleSpecs[lt].done + " (defer or all return paths) or handed off"
}

func checkYieldUsage(p *Package, fd *ast.FuncDecl, y yield, report func(pos token.Pos, format string, args ...any)) {
	closers := lifecycleSpecs[y.lt].closers
	var (
		deferred      bool
		closerPos     []token.Pos // closer calls discharge paths after them
		escapePos     []token.Pos // handoffs (store / pass / send) do too
		returnPos     []token.Pos // returns that must see a discharge first
		closerSeen    bool
		handoffReturn bool // a "return p" path hands the obligation off
	)
	inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			// Only returns that exit the function (or closure) owning the
			// obligation count: a return in a different function literal
			// leaves that closure, not this scope. A return on the
			// acquisition's own error path has nothing to release, and a
			// return whose results carry the value hands the obligation to
			// the caller.
			if innermostFuncLit(stack) != y.fn || errGuardedReturn(p, stack, y.errObj) {
				return
			}
			// A return outside the variable's declaring scope cannot leak it:
			// on that path the value was either never bound (failed if-init
			// acquire) or already discharged inside the scope.
			if sc := y.obj.Parent(); sc != nil && !sc.Contains(ret.Pos()) {
				return
			}
			if returnHandsOff(p, ret, y.obj, closers) {
				handoffReturn = true
				return
			}
			returnPos = append(returnPos, ret.Pos())
			return
		}
		id, ok := n.(*ast.Ident)
		if !ok || p.Info.Uses[id] != y.obj {
			return
		}
		parent := parentOf(stack)
		if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id && closers[sel.Sel.Name] {
			// x.Release / x.Finish: a call discharges here; a method value
			// (e.g. "return cd, ref.Release, nil") hands the obligation off.
			gp := grandParentOf(stack)
			if call, ok := gp.(*ast.CallExpr); ok && call.Fun == sel {
				closerSeen = true
				closerPos = append(closerPos, call.Pos())
				if underDefer(stack) {
					deferred = true
				}
				return
			}
			escapePos = append(escapePos, id.Pos())
			return
		}
		// Any other use that moves the value out of the function transfers
		// the release obligation: storing it, passing it on, sending it.
		// (Returning it is handled at the ReturnStmt above.)
		switch pr := parent.(type) {
		case *ast.CallExpr:
			if pr.Fun != id { // argument, not the callee
				escapePos = append(escapePos, id.Pos())
			}
		case *ast.CompositeLit, *ast.KeyValueExpr:
			escapePos = append(escapePos, id.Pos())
		case *ast.AssignStmt:
			for _, rhs := range pr.Rhs {
				if rhs == id && !allBlank(pr.Lhs) {
					escapePos = append(escapePos, id.Pos())
				}
			}
		case *ast.SendStmt:
			if pr.Value == id {
				escapePos = append(escapePos, id.Pos())
			}
		}
	})
	if deferred {
		return
	}
	if !closerSeen && len(escapePos) == 0 && !handoffReturn {
		report(y.pos, "*%s.%s acquired here is never %s", y.lt.pkg, y.lt.name, closerHint(y.lt))
		return
	}
	// Every plain return after the yield must be preceded in source order by
	// a closer call or a handoff, or that path leaks.
	for _, ret := range returnPos {
		if ret <= y.pos {
			continue
		}
		released := false
		for _, c := range closerPos {
			if c < ret {
				released = true
				break
			}
		}
		for _, e := range escapePos {
			if e < ret {
				released = true
				break
			}
		}
		if !released {
			report(y.pos, "*%s.%s acquired here is not released on all paths: return at %s precedes every %s call (defer it, or release before returning)", y.lt.pkg, y.lt.name, p.Fset.Position(ret), lifecycleSpecs[y.lt].names)
		}
	}
}

// errGuardedReturn reports whether a return sits inside an
// "if <errObj> != nil" block — the failure path of the acquisition itself,
// where the lifecycle value was never handed out and there is nothing to
// release. Only the error bound by the acquisition's own assignment
// qualifies; a different (e.g. shadowed) error still flags the path.
func errGuardedReturn(p *Package, stack []ast.Node, errObj types.Object) bool {
	if errObj == nil {
		return false
	}
	for _, n := range stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		be, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || be.Op != token.NEQ {
			continue
		}
		x, ok := be.X.(*ast.Ident)
		if !ok || p.Info.Uses[x] != errObj {
			continue
		}
		if y, ok := be.Y.(*ast.Ident); ok && y.Name == "nil" {
			return true
		}
	}
	return false
}

func grandParentOf(stack []ast.Node) ast.Node {
	seen := 0
	for i := len(stack) - 2; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		seen++
		if seen == 2 {
			return stack[i]
		}
	}
	return nil
}

// innermostFuncLit returns the innermost function literal enclosing the node
// at the top of the stack, or nil when the node sits directly in the
// declared function's body.
func innermostFuncLit(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if fl, ok := stack[i].(*ast.FuncLit); ok {
			return fl
		}
	}
	return nil
}

// returnHandsOff reports whether the return's results discharge the
// lifecycle value: carrying it out to the caller, handing off a closer
// method value ("return cd, ref.Release, nil"), or calling the closer in
// the result position. A plain method call or field read through the value
// ("return t.Len()") does not move it and does not qualify.
func returnHandsOff(p *Package, ret *ast.ReturnStmt, obj types.Object, closers map[string]bool) bool {
	handsOff := false
	for _, res := range ret.Results {
		inspectWithStack(res, func(n ast.Node, stack []ast.Node) {
			id, ok := n.(*ast.Ident)
			if !ok || p.Info.Uses[id] != obj {
				return
			}
			if sel, ok := parentOf(stack).(*ast.SelectorExpr); ok && sel.X == id {
				if call, ok := grandParentOf(stack).(*ast.CallExpr); ok && call.Fun == sel {
					// A called closer discharges; any other call just reads
					// through the receiver.
					handsOff = handsOff || closers[sel.Sel.Name]
					return
				}
				// A method value captures the receiver, handing it off.
				handsOff = true
				return
			}
			handsOff = true
		})
	}
	return handsOff
}

// underDefer reports whether the node at the top of the stack sits inside a
// defer statement (directly or through a deferred closure).
func underDefer(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}
