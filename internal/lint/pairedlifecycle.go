package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lifecycleType identifies a tracked lifecycle type by its package and type
// name.
type lifecycleType struct{ pkg, name string }

// lifecycleSpec describes how a lifecycle type is discharged and how its
// diagnostics read.
type lifecycleSpec struct {
	closers map[string]bool // methods that discharge the obligation
	done    string          // past participle for diagnostics
	names   string          // closer method list for diagnostics
}

// lifecycleSpecs maps the tracked lifecycle types to the methods that
// discharge them: engine pool references and query scopes, and the cube's
// arena-borrowed tables.
var lifecycleSpecs = map[lifecycleType]lifecycleSpec{
	{"engine", "Ref"}:        {closers: map[string]bool{"Release": true}, done: "Released", names: "Release"},
	{"engine", "QueryScope"}: {closers: map[string]bool{"Finish": true, "Close": true}, done: "Finished", names: "Finish/Close"},
	{"cube", "PackedTable"}:  {closers: map[string]bool{"Release": true}, done: "Released", names: "Release"},
}

func pairedLifecycleCheck() *Check {
	return &Check{
		Name: "pairedlifecycle",
		Doc:  "engine.Ref / QueryScope and cube.PackedTable acquisitions must be released in the same function or handed off",
		Run:  runPairedLifecycle,
	}
}

// lifecycleTypeOf returns the tracked lifecycle type t points to, if any.
func lifecycleTypeOf(t types.Type) (lifecycleType, bool) {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return lifecycleType{}, false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return lifecycleType{}, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return lifecycleType{}, false
	}
	lt := lifecycleType{pkg: obj.Pkg().Name(), name: obj.Name()}
	if _, ok := lifecycleSpecs[lt]; !ok {
		return lifecycleType{}, false
	}
	return lt, true
}

func runPairedLifecycle(p *Package, report func(pos token.Pos, format string, args ...any)) {
	// The engine package itself constructs and plumbs these values; the
	// invariant binds their consumers.
	if pathIn(p, "internal/engine") {
		return
	}
	for _, f := range p.Files {
		if isTestFile(p, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLifecycleBody(p, fd, report)
		}
	}
}

// yield is one lifecycle acquisition inside a function body.
type yield struct {
	obj types.Object // the bound variable; nil when bound to blank
	lt  lifecycleType
	pos token.Pos
}

func checkLifecycleBody(p *Package, fd *ast.FuncDecl, report func(pos token.Pos, format string, args ...any)) {
	var yields []yield
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[call]
		if !ok {
			return true
		}
		// Align each lifecycle-typed result with its LHS binding.
		var results []types.Type
		if tuple, ok := tv.Type.(*types.Tuple); ok {
			for i := 0; i < tuple.Len(); i++ {
				results = append(results, tuple.At(i).Type())
			}
		} else {
			results = []types.Type{tv.Type}
		}
		if len(results) != len(as.Lhs) {
			return true
		}
		for i, rt := range results {
			lt, ok := lifecycleTypeOf(rt)
			if !ok {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			y := yield{lt: lt, pos: as.Lhs[i].Pos()}
			if id.Name != "_" {
				if obj := p.Info.Defs[id]; obj != nil {
					y.obj = obj
				} else if obj := p.Info.Uses[id]; obj != nil {
					y.obj = obj // plain = assignment to an existing variable
				}
			}
			yields = append(yields, y)
		}
		return true
	})

	for _, y := range yields {
		if y.obj == nil {
			report(y.pos, "*%s.%s result is discarded; it must be %s", y.lt.pkg, y.lt.name, closerHint(y.lt))
			continue
		}
		checkYieldUsage(p, fd, y, report)
	}
}

func closerHint(lt lifecycleType) string {
	return lifecycleSpecs[lt].done + " (defer or all return paths) or handed off"
}

func checkYieldUsage(p *Package, fd *ast.FuncDecl, y yield, report func(pos token.Pos, format string, args ...any)) {
	closers := lifecycleSpecs[y.lt].closers
	var (
		deferred   bool
		escapes    bool
		closerPos  []token.Pos
		returnPos  []token.Pos
		closerSeen bool
	)
	inspectWithStack(fd.Body, func(n ast.Node, stack []ast.Node) {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			returnPos = append(returnPos, ret.Pos())
			return
		}
		id, ok := n.(*ast.Ident)
		if !ok || p.Info.Uses[id] != y.obj {
			return
		}
		parent := parentOf(stack)
		if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id && closers[sel.Sel.Name] {
			// x.Release / x.Finish: a call discharges here; a method value
			// (e.g. "return cd, ref.Release, nil") hands the obligation off.
			gp := grandParentOf(stack)
			if call, ok := gp.(*ast.CallExpr); ok && call.Fun == sel {
				closerSeen = true
				closerPos = append(closerPos, call.Pos())
				if underDefer(stack) {
					deferred = true
				}
				return
			}
			escapes = true
			return
		}
		// Any other use that moves the value out of the function transfers
		// the release obligation: returning it, storing it, passing it on.
		switch pr := parent.(type) {
		case *ast.ReturnStmt:
			escapes = true
		case *ast.CallExpr:
			if pr.Fun != id { // argument, not the callee
				escapes = true
			}
		case *ast.CompositeLit, *ast.KeyValueExpr:
			escapes = true
		case *ast.AssignStmt:
			for _, rhs := range pr.Rhs {
				if rhs == id && !allBlank(pr.Lhs) {
					escapes = true
				}
			}
		case *ast.SendStmt:
			if pr.Value == id {
				escapes = true
			}
		}
	})
	switch {
	case deferred, escapes:
		return
	case !closerSeen:
		report(y.pos, "*%s.%s acquired here is never %s", y.lt.pkg, y.lt.name, closerHint(y.lt))
	default:
		// Non-deferred closer: every return after the yield must be
		// preceded by a closer call in source order, or a path leaks.
		for _, ret := range returnPos {
			if ret <= y.pos {
				continue
			}
			released := false
			for _, c := range closerPos {
				if c < ret {
					released = true
					break
				}
			}
			if !released {
				report(y.pos, "*%s.%s acquired here is not released on all paths: return at %s precedes every %s call (defer it, or release before returning)", y.lt.pkg, y.lt.name, p.Fset.Position(ret), lifecycleSpecs[y.lt].names)
			}
		}
	}
}

func grandParentOf(stack []ast.Node) ast.Node {
	seen := 0
	for i := len(stack) - 2; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		seen++
		if seen == 2 {
			return stack[i]
		}
	}
	return nil
}

// underDefer reports whether the node at the top of the stack sits inside a
// defer statement (directly or through a deferred closure).
func underDefer(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.DeferStmt); ok {
			return true
		}
	}
	return false
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}
