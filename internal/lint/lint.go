package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one diagnostic: a violated invariant at a position.
type Finding struct {
	Check   string
	Pos     token.Position
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Check is one project invariant. Run inspects a single package and reports
// findings through report; the driver handles suppression and aggregation.
type Check struct {
	Name string
	Doc  string
	Run  func(p *Package, report func(pos token.Pos, format string, args ...any))
}

// Checks returns the full suite in stable order.
func Checks() []*Check {
	return []*Check{
		zeroCopyKeyCheck(),
		pinnedEncodeCheck(),
		pairedLifecycleCheck(),
		errPrefixCheck(),
		metricNameCheck(),
	}
}

// CheckNames returns the names of every check in the suite.
func CheckNames() []string {
	var names []string
	for _, c := range Checks() {
		names = append(names, c.Name)
	}
	return names
}

// allowDirective is the line-comment prefix that suppresses findings.
const allowDirective = "//sirum:allow"

// suppressions maps filename → line → set of suppressed check names. A
// directive suppresses its own line and the line directly below it, so both
// trailing comments and own-line comments above the code work.
type suppressions map[string]map[string]bool

func suppressionKey(line int, check string) string {
	return fmt.Sprintf("%d\x00%s", line, check)
}

func collectSuppressions(p *Package) suppressions {
	sup := make(suppressions)
	for _, f := range p.Files {
		filename := p.Fset.Position(f.Pos()).Filename
		byLine := sup[filename]
		if byLine == nil {
			byLine = make(map[string]bool)
			sup[filename] = byLine
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowDirective)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				line := p.Fset.Position(c.Pos()).Line
				for _, name := range strings.Split(fields[0], ",") {
					byLine[suppressionKey(line, name)] = true
					byLine[suppressionKey(line+1, name)] = true
				}
			}
		}
	}
	return sup
}

func (s suppressions) suppressed(f Finding) bool {
	byLine := s[f.Pos.Filename]
	if byLine == nil {
		return false
	}
	return byLine[suppressionKey(f.Pos.Line, f.Check)] || byLine[suppressionKey(f.Pos.Line, "all")]
}

// RunChecks runs the given checks (all when nil) over every package of m,
// applies //sirum:allow suppressions, and returns findings sorted by
// position.
func RunChecks(m *Module, checks []*Check) []Finding {
	if checks == nil {
		checks = Checks()
	}
	var findings []Finding
	for _, pkg := range m.Pkgs {
		sup := collectSuppressions(pkg)
		for _, c := range checks {
			report := func(pos token.Pos, format string, args ...any) {
				f := Finding{Check: c.Name, Pos: pkg.Fset.Position(pos), Message: fmt.Sprintf(format, args...)}
				if !sup.suppressed(f) {
					findings = append(findings, f)
				}
			}
			c.Run(pkg, report)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return findings
}

// pathIn reports whether the package's import path ends in one of the given
// module-relative suffixes (e.g. "internal/rule").
func pathIn(p *Package, suffixes ...string) bool {
	for _, s := range suffixes {
		if p.Path == s || strings.HasSuffix(p.Path, "/"+s) {
			return true
		}
	}
	return false
}

// isTestFile reports whether the file node comes from a _test.go file. The
// loader only parses non-test files, so this is a belt-and-braces guard.
func isTestFile(p *Package, f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// inspectWithStack walks root, calling fn with each node and the ancestor
// stack (stack[len(stack)-1] == n).
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		fn(n, stack)
		return true
	})
}

// parentOf returns the nearest non-paren ancestor of the node at the top of
// the stack.
func parentOf(stack []ast.Node) ast.Node {
	for i := len(stack) - 2; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		return stack[i]
	}
	return nil
}
