// Package lint is sirum's project-invariant static-analysis suite: the
// conventions that keep the hot paths fast and the serving surface correct,
// turned into machine-checked rules. It is built entirely on the standard
// library (go/parser, go/ast, go/types with a source-based importer), loads
// every package in the module, and reports findings as file:line:col
// diagnostics. The cmd/sirumvet driver runs it in CI; a finding fails the
// build.
//
// # Checks
//
// zerocopykey — in the hot packages (internal/rule, internal/cube,
// internal/bitset, internal/candgen, internal/miner, internal/maxent) a
// string(buf) conversion of a []byte must appear directly as a map index or
// a comparison operand. Those two forms the compiler optimizes into
// allocation-free accesses; binding the conversion to a variable, passing it
// as an argument, returning it or storing it in a composite literal
// materializes a copy per call — exactly the per-rule key allocation the
// packed-key cube pipeline (PR 7) eliminated.
//
// pinnedencode — in internal/server non-test files, json.Marshal /
// json.MarshalIndent / json.NewEncoder are forbidden outside api.go (request
// and client-side decoding), snapshot.go (journal persistence) and encode.go
// (the pinned encoder itself). Mine/explore/append results must flow through
// the byte-pinned open-envelope encoder (writeOpenBody, PR 7): its output is
// what the result cache stores, so a stray stock-encoder call would either
// bypass the cache or cache bytes the hot path cannot re-serve.
//
// pairedlifecycle — a call whose results include an *engine.Ref (DataPool
// Put/Acquire), an *engine.QueryScope (NewQueryScope), a *cube.PackedTable
// (BorrowTable) or a *sirum.Prepared (Dataset.Prepare) must pair it with
// Release / Finish / Close in the same function: deferred, called on every
// path, or handed off (returned, stored, or passed along, which transfers
// the obligation to the receiver). Unreleased refs pin pool entries and
// their spill files forever (the PR 3 lifecycle bug class); unfinished
// scopes drop a query's operator metrics from the session's lifetime
// totals; unreleased tables silently fall out of the scratch arena, turning
// the cube's zero-allocation steady state back into an allocation storm;
// an unclosed Prepared leaks a whole mining substrate on the session
// rebuild paths (create, snapshot restore, migration import).
//
// errprefix — fmt.Errorf / errors.New message literals in internal/rule must
// carry the "rule: " prefix and in internal/cube the "cube: " prefix. The
// server's status mapping (internal/server.mapError) classifies by these
// prefixes: "rule:" errors are caller input (400), "cube:" errors are
// pipeline corruption (500). An unprefixed message silently turns a
// validation failure into an internal error or vice versa.
//
// metricname — Prometheus metric families registered in internal/server and
// internal/router (via the local gauge/counter helpers or literal "# HELP"
// text) must match ^sirum[a-z0-9_]*$ and be registered exactly once per
// package: a second HELP/TYPE block for the same family produces an invalid
// exposition document, and off-prefix names escape the cluster rollup's
// naming contract.
//
// # Suppression
//
// A justified exception is annotated in place:
//
//	//sirum:allow <check>[,<check>] <reason>
//
// on the offending line or the line directly above it. Reasons are
// mandatory by convention — a suppression documents why the invariant does
// not apply, e.g. a deliberate copying accessor on a cold path.
//
// # Approximations
//
// pairedlifecycle is a per-function, source-order heuristic, not a CFG
// analysis: a value is "released on all paths" when its closer is deferred,
// or when every return after the acquisition is preceded in source order by
// a closer call or a handoff. Returns on the acquisition's own error path
// ("if err != nil" over the error bound by the same assignment), returns
// inside other function literals, and returns outside the variable's
// declaring scope are exempt — nothing was held on those paths. Branchy
// flows that release before each of several returns may still need a
// suppression; genuinely leaked error paths are exactly what it catches.
package lint
