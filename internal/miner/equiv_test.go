package miner

import (
	"fmt"
	"testing"

	"sirum/internal/datagen"
)

// TestPackedStringMinerEquivalenceConcurrent pins the representation switch
// end to end: the same prepared job mined through the packed-key fast path
// and through the string fallback (forced by clearing the internal packer)
// returns identical rule lists and KL. The Concurrent name opts the test
// into the CI race run.
func TestPackedStringMinerEquivalenceConcurrent(t *testing.T) {
	ds := datagen.Income(1200, 17)
	cPacked, cString := testCluster(), testCluster()
	defer cPacked.Close()
	defer cString.Close()

	packed, err := Prepare(cPacked, ds, PrepOptions{SampleSize: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer packed.Drop()
	if packed.packer == nil {
		t.Fatal("income schema should take the packed path")
	}
	str, err := Prepare(cString, ds, PrepOptions{SampleSize: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer str.Drop()
	str.packer = nil // force the string-key fallback
	str.memo = nil

	for _, opt := range []Options{
		{Variant: Optimized, K: 4, SampleSize: 16, Seed: 9},
		{Variant: MultiRule, K: 4, SampleSize: 16, Seed: 9},
		{Variant: Optimized, K: 2, SampleSize: 0, Seed: 9}, // exhaustive explore shape
	} {
		want, err := str.Mine(opt)
		if err != nil {
			t.Fatalf("%v string path: %v", opt.Variant, err)
		}
		got, err := packed.Mine(opt)
		if err != nil {
			t.Fatalf("%v packed path: %v", opt.Variant, err)
		}
		assertSameRules(t, fmt.Sprintf("variant %v", opt.Variant), want, got)
	}
}
