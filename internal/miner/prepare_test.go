package miner

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"sirum/internal/datagen"
	"sirum/internal/engine"
)

// assertSameRules compares two runs of the same job.
func assertSameRules(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if len(want.Rules) == 0 {
		t.Fatalf("%s: reference run mined nothing", label)
	}
	if len(want.Rules) != len(got.Rules) {
		t.Fatalf("%s: rule counts differ: %d vs %d", label, len(want.Rules), len(got.Rules))
	}
	for i := range want.Rules {
		if !want.Rules[i].Rule.Equal(got.Rules[i].Rule) {
			t.Errorf("%s rule %d: %v vs %v", label, i, want.Rules[i].Rule, got.Rules[i].Rule)
		}
		if want.Rules[i].Count != got.Rules[i].Count {
			t.Errorf("%s rule %d count: %d vs %d", label, i, want.Rules[i].Count, got.Rules[i].Count)
		}
	}
	if math.Abs(want.KL-got.KL) > 1e-9*math.Max(1, math.Abs(want.KL)) {
		t.Errorf("%s KL: %v vs %v", label, want.KL, got.KL)
	}
}

// TestPreparedMatchesColdAcrossVariants pins the carve-up: a query against
// prepared state (with the LCA memo active) returns exactly what a cold run
// of the same job returns, for sampled, exhaustive and multi-rule shapes.
func TestPreparedMatchesColdAcrossVariants(t *testing.T) {
	ds := datagen.GDELT(2000, 42)
	c := testCluster()
	defer c.Close()
	p, err := Prepare(c, ds, PrepOptions{SampleSize: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Drop()
	jobs := []Options{
		{Variant: Optimized, K: 4, SampleSize: 16, Seed: 9},
		{Variant: Baseline, K: 3, SampleSize: 16, Seed: 9},
		{Variant: RCT, K: 3, SampleSize: 16, Seed: 9},
		{Variant: MultiRule, K: 4, SampleSize: 16, Seed: 9},
		{Variant: Optimized, K: 2, SampleSize: 0, Seed: 9}, // exhaustive
		{Variant: Optimized, K: 3, SampleSize: 8, Seed: 4}, // off-sample: query draws its own
	}
	for _, opt := range jobs {
		cold := mineDataset(t, ds, opt)
		warm, err := p.Mine(opt)
		if err != nil {
			t.Fatalf("%v: %v", opt.Variant, err)
		}
		assertSameRules(t, opt.Variant.String(), cold, warm)
		// Run each job twice so the second query exercises the memoized
		// path end to end.
		warm2, err := p.Mine(opt)
		if err != nil {
			t.Fatalf("%v (2nd): %v", opt.Variant, err)
		}
		assertSameRules(t, opt.Variant.String()+" (2nd)", cold, warm2)
	}
}

// TestPreparedSurvivesPoolEviction: with a pool limit of 1, alternating
// queries over two prepared datasets keep evicting each other's blocks; the
// sessions must transparently rebuild and still answer correctly.
func TestPreparedSurvivesPoolEviction(t *testing.T) {
	c := testCluster()
	defer c.Close()
	c.Pool().SetLimit(1)
	dsA := datagen.GDELT(1200, 7)
	dsB := datagen.Income(1200, 8)
	pA, err := Prepare(c, dsA, PrepOptions{SampleSize: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer pA.Drop()
	pB, err := Prepare(c, dsB, PrepOptions{SampleSize: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer pB.Drop()
	if got := c.Pool().Len(); got != 1 {
		t.Fatalf("pool holds %d prepared datasets, limit 1", got)
	}
	opt := Options{Variant: Optimized, K: 3, SampleSize: 8, Seed: 3}
	coldA := mineDataset(t, dsA, opt)
	coldB := mineDataset(t, dsB, opt)
	for round := 0; round < 2; round++ {
		gotA, err := pA.Mine(opt)
		if err != nil {
			t.Fatal(err)
		}
		assertSameRules(t, "A", coldA, gotA)
		gotB, err := pB.Mine(opt)
		if err != nil {
			t.Fatal(err)
		}
		assertSameRules(t, "B", coldB, gotB)
	}
}

// TestPreparedFractionMismatchRejected: a query cannot change the Bernoulli
// data sample the session was prepared with.
func TestPreparedFractionMismatchRejected(t *testing.T) {
	ds := datagen.Income(3000, 5)
	c := testCluster()
	defer c.Close()
	p, err := Prepare(c, ds, PrepOptions{SampleSize: 8, Seed: 2, SampleFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Drop()
	if _, err := p.Mine(Options{K: 2, SampleSize: 8, Seed: 2, SampleFraction: 0.25}); err == nil {
		t.Error("mismatched SampleFraction accepted")
	}
	// Zero (unset) and the prepared fraction both work.
	if _, err := p.Mine(Options{K: 2, SampleSize: 8, Seed: 2}); err != nil {
		t.Errorf("unset fraction rejected: %v", err)
	}
	res, err := p.Mine(Options{K: 2, SampleSize: 8, Seed: 2, SampleFraction: 0.5, EvaluateOnFullData: true})
	if err != nil {
		t.Fatalf("matching fraction rejected: %v", err)
	}
	if res.InfoGain <= 0 {
		t.Errorf("full-data info gain = %v", res.InfoGain)
	}
}

// TestForkSpillFilesReleased: under memory pressure, per-query forks spill
// blocks to disk; those files must be released when the query ends, or a
// serving session would grow disk without bound. Only the canonical blocks
// may stay spilled.
func TestForkSpillFilesReleased(t *testing.T) {
	t.Setenv("TMPDIR", t.TempDir()) // hermetic: don't count other tests' spill dirs
	ds := datagen.GDELT(5000, 3)
	c := engine.NewNativeBackend(engine.Config{Executors: 1, MemoryPerExecutor: 64 << 10})
	defer c.Close()
	p, err := Prepare(c, ds, PrepOptions{SampleSize: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Drop()
	for i := 0; i < 5; i++ {
		if _, err := p.Mine(Options{K: 2, SampleSize: 8, Seed: 2}); err != nil {
			t.Fatal(err)
		}
	}
	dirs, _ := filepath.Glob(os.TempDir() + "/sirum-spill-*")
	total := 0
	for _, d := range dirs {
		files, _ := filepath.Glob(d + "/*.gob")
		total += len(files)
	}
	if total > p.parts {
		t.Fatalf("%d spill files remain after 5 queries; at most the %d canonical blocks may stay spilled", total, p.parts)
	}
}

// TestPrepareEmptyDataset preserves the cold-path error contract.
func TestPrepareEmptyDataset(t *testing.T) {
	c := testCluster()
	defer c.Close()
	b := engine.NewNativeBackend(engine.Config{})
	defer b.Close()
	empty := datagen.Flights().Select(nil)
	if _, err := Prepare(c, empty, PrepOptions{}); err == nil {
		t.Error("prepared an empty dataset")
	}
	if _, err := New(b, empty, Options{K: 2}).Run(); err == nil {
		t.Error("cold run accepted an empty dataset")
	}
}
