package miner

import (
	"cmp"
	"fmt"
	"math"
	"time"

	"sirum/internal/candgen"
	"sirum/internal/cube"
	"sirum/internal/dataset"
	"sirum/internal/engine"
	"sirum/internal/maxent"
	"sirum/internal/metrics"
	"sirum/internal/rule"
	"sirum/internal/stats"
)

// Miner executes one cold mining run (Algorithm 2) on an execution backend:
// it prepares the dataset (load, measure transform, pruning sample) and runs
// a single query against it. Interactive workloads that ask many queries
// over one dataset should Prepare once and query the returned Prep instead.
type Miner struct {
	c   engine.Backend
	ds  *dataset.Dataset
	opt Options
}

// New builds a miner over ds. The backend carries the execution substrate
// (parallelism, memory, cost model if simulated); metrics are accounted per
// query, so one backend can serve many miners, even concurrently.
func New(c engine.Backend, ds *dataset.Dataset, opt Options) *Miner {
	return &Miner{c: c, ds: ds, opt: opt.withDefaults()}
}

// Run mines the rule list: prepare, then one query, on one metrics scope so
// the result's phases cover the whole run. The prepared state is dropped
// afterwards; cold runs keep the thesis' per-iteration work profile (no
// cross-iteration LCA reuse).
func (m *Miner) Run() (*Result, error) {
	qc := engine.NewQueryScope(m.c)
	defer qc.Finish() // backend lifetime totals include this run's operator metrics
	wallStart := time.Now()
	simStart := qc.SimTime()
	p, err := prepare(m.c, m.ds, PrepOptions{
		SampleSize:     m.opt.SampleSize,
		Seed:           m.opt.Seed,
		Partitions:     m.opt.Partitions,
		SampleFraction: m.opt.SampleFraction,
		DisableLCAMemo: true,
	})
	if err != nil {
		return nil, err
	}
	defer p.Drop()
	return p.mineScoped(qc, m.opt, wallStart, simStart)
}

// timedOn charges f's wall and simulated durations on c to the named phase.
func timedOn(c engine.Backend, phase string, f func() error) error {
	wallStart := time.Now()
	simStart := c.SimTime()
	err := f()
	c.Reg().AddPhase(phase, time.Since(wallStart))
	c.Reg().AddSimPhase(phase, c.SimTime()-simStart)
	return err
}

// query is one mining query running against prepared state: it owns the
// per-query metrics scope, the forked (mutable-estimate) data view, and the
// candidate sample in effect for this query. It is generic over the rule-key
// representation of its codec: packed uint64 keys when the prepared schema
// fits 64 bits, string keys otherwise.
type query[K cmp.Ordered] struct {
	p      *Prep
	c      engine.Backend // per-query scope of the shared backend
	opt    Options
	codec  candgen.Codec[K]
	data   *engine.CachedData // per-query fork of the prepared blocks
	sample *candgen.Sample
	index  *candgen.InvertedIndex
	memo   *lcaMemo[K] // non-nil when cross-iteration LCA reuse applies
}

// timed charges f's durations to the query's registry.
func (q *query[K]) timed(phase string, f func() error) error {
	return timedOn(q.c, phase, f)
}

// mineScoped picks the key representation prepared for this dataset and runs
// the generic mining loop on the given scope.
func (p *Prep) mineScoped(qc engine.Backend, opt Options, wallStart time.Time, simStart time.Duration) (*Result, error) {
	opt = opt.withDefaults()
	if p.packer != nil {
		return mineKeyed(p, qc, opt, wallStart, simStart, candgen.NewPackedCodec(p.packer))
	}
	return mineKeyed(p, qc, opt, wallStart, simStart, candgen.NewStringCodec(p.ds.NumDims()))
}

// mineKeyed runs one query. wallStart/simStart anchor the result's totals
// (cold runs pass the instant before preparation so the load is included,
// prepared queries the query start).
func mineKeyed[K cmp.Ordered](p *Prep, qc engine.Backend, opt Options, wallStart time.Time, simStart time.Duration, codec candgen.Codec[K]) (*Result, error) {
	q, err := newQuery(p, qc, opt, codec)
	if err != nil {
		return nil, err
	}
	// The fork's blocks die with the query; release any spill files they
	// grew so a long-lived backend does not accumulate per-query disk.
	defer q.data.Drop()
	ds := p.ds
	d := ds.NumDims()

	// Scaler per variant, over this query's private estimate columns.
	var scaler distScaler
	if opt.useRCT() {
		scaler = newRCTDistScaler(qc, q.data, p.dataBytes, opt.Epsilon, opt.MaxRules+len(opt.PriorRules)+1)
	} else {
		scaler = newNaiveDistScaler(qc, q.data, p.dataBytes, opt.Epsilon, opt.useShuffleJoin(), opt.ResetScaling)
	}

	res := &Result{}
	selected := map[K]bool{}
	addRules := func(rs []rule.Rule) error {
		return q.timed(metrics.PhaseScaling, func() error {
			if err := scaler.AddRules(rs); err != nil {
				return err
			}
			for _, r := range rs {
				k, err := codec.EncodeRule(r)
				if err != nil {
					return fmt.Errorf("miner: %w", err)
				}
				selected[k] = true
			}
			return nil
		})
	}

	// The all-wildcards rule is always first (Section 2.2), followed by any
	// prior knowledge (the cube-exploration application).
	if err := addRules([]rule.Rule{rule.AllWildcards(d)}); err != nil {
		return nil, err
	}
	for _, r := range opt.PriorRules {
		if err := addRules([]rule.Rule{r}); err != nil {
			return nil, err
		}
	}

	groups := cube.SplitGroups(d, opt.ColumnGroups)

	ruleBudget := opt.K
	if opt.TargetKL > 0 {
		ruleBudget = opt.MaxRules
	}
	klOf := func() (float64, error) {
		var kl float64
		err := q.timed(metrics.PhaseRuleSelection, func() error {
			var e error
			kl, e = q.currentKL()
			return e
		})
		return kl, err
	}

	for len(res.Rules) < ruleBudget {
		res.Iterations++
		cands, nCands, err := q.generateCandidates(groups)
		if err != nil {
			return nil, err
		}
		res.Candidates = nCands

		var picked []candgen.Candidate[K]
		err = q.timed(metrics.PhaseRuleSelection, func() error {
			var e error
			picked, e = q.selectRules(cands, nCands, selected, min(opt.RulesPerIter, ruleBudget-len(res.Rules)))
			return e
		})
		// picked holds value copies; the candidate tables go back to the
		// arena so the next iteration reuses their backing arrays.
		cands.release(q.c)
		if err != nil {
			return nil, err
		}
		if len(picked) == 0 {
			break // no candidate with positive gain remains
		}
		rs := make([]rule.Rule, len(picked))
		for i, cand := range picked {
			r, err := codec.DecodeRule(cand.Key, nil)
			if err != nil {
				return nil, fmt.Errorf("miner: corrupt candidate key: %w", err)
			}
			rs[i] = r
			res.Rules = append(res.Rules, MinedRule{
				Rule:  r,
				Avg:   p.transform.InvertAvg(cand.Agg.SumM / cand.Agg.Count),
				Count: int64(cand.Agg.Count + 0.5),
				Gain:  cand.Gain,
			})
		}
		if err := addRules(rs); err != nil {
			return nil, err
		}
		kl, err := klOf()
		if err != nil {
			return nil, err
		}
		res.KLTrajectory = append(res.KLTrajectory, kl)
		if opt.TargetKL > 0 && kl <= opt.TargetKL {
			break
		}
	}

	if len(res.KLTrajectory) > 0 {
		res.KL = res.KLTrajectory[len(res.KLTrajectory)-1]
	} else {
		kl, err := klOf()
		if err != nil {
			return nil, err
		}
		res.KL = kl
	}
	res.WallTime = time.Since(wallStart)
	res.SimTime = qc.SimTime() - simStart

	// Information gain of the final estimates (Section 5.1).
	ig, err := q.informationGain()
	if err != nil {
		return nil, err
	}
	res.InfoGain = ig
	if p.full != nil && opt.EvaluateOnFullData {
		igFull, err := q.evaluateOnFull(scaler.Rules())
		if err != nil {
			return nil, err
		}
		res.InfoGain = igFull
	}

	res.Phases = qc.Reg().Phases()
	res.SimPhases = qc.Reg().SimPhases()
	res.Counters = qc.Reg().Counters()
	return res, nil
}

// newQuery resolves the query's sample, forks the prepared blocks into a
// private data view, and decides whether the prepared LCA memo applies.
func newQuery[K cmp.Ordered](p *Prep, qc engine.Backend, opt Options, codec candgen.Codec[K]) (*query[K], error) {
	if opt.SampleFraction != 0 && opt.SampleFraction != p.opt.SampleFraction {
		return nil, fmt.Errorf("miner: prepared with SampleFraction=%v, query asked for %v (prepare again)",
			p.opt.SampleFraction, opt.SampleFraction)
	}
	q := &query[K]{p: p, c: qc, opt: opt, codec: codec}

	// The prepared sample (and its lazily built index) is reused when the
	// query's sample parameters match; otherwise the query draws its own.
	// Exhaustive queries (SampleSize 0) need no sample at all. Index
	// construction is charged as candidate pruning, where the per-iteration
	// implementation used to pay it.
	switch {
	case opt.SampleSize <= 0:
		// exhaustive
	case opt.SampleSize == p.opt.SampleSize && opt.Seed == p.opt.Seed:
		q.sample = p.sample
		if opt.useIndex() {
			if err := q.timed(metrics.PhaseCandPruning, func() error {
				q.index = p.indexFor()
				return nil
			}); err != nil {
				return nil, err
			}
		}
	default:
		q.sample = candgen.DrawSample(p.ds, stats.NewRand(opt.Seed), opt.SampleSize)
		if opt.useIndex() {
			if err := q.timed(metrics.PhaseCandPruning, func() error {
				q.index = candgen.BuildIndex(q.sample)
				return nil
			}); err != nil {
				return nil, err
			}
		}
	}

	err := q.timed(metrics.PhaseDataLoad, func() error {
		cd, release, err := p.ensureData(qc)
		if err != nil {
			return err
		}
		defer release()
		q.data, err = cd.Fork(qc)
		return err
	})
	if err != nil {
		return nil, err
	}

	if p.memoEligible(opt, q.sample) {
		// The first query pays the build (it replaces that query's first
		// LCA round, so it is charged as candidate pruning); later queries
		// get it for free.
		err := q.timed(metrics.PhaseCandPruning, func() error {
			memo, err := memoFor(p, q)
			q.memo = memo
			return err
		})
		if err != nil {
			q.data.Drop()
			return nil, err
		}
	}
	return q, nil
}

// candSet carries one round's candidate aggregates in whichever container
// the key representation produced: per-partition maps on the general path,
// arena-recycled PackedTables on the packed path. Exactly one field is
// non-nil. Callers release the set once its entries are consumed so the next
// iteration reuses the tables' backing arrays (a no-op for maps).
type candSet[K cmp.Ordered] struct {
	maps   *engine.PColl[map[K]cube.Agg]
	tables *engine.PColl[*cube.PackedTable]
}

// release returns table partitions to the backend arena.
func (cs candSet[K]) release(c engine.Backend) {
	if cs.tables != nil {
		cube.ReleaseTables(c, cs.tables)
	}
}

// generateCandidates runs one rule-generation round: candidate pruning (LCA
// computation), ancestor generation (the cube), gain-input preparation (the
// sample fix-up). Phases are timed separately to reproduce Figure 3.2.
// Packed-key queries run the whole round over flat tables; the dynamic cast
// is safe because a PackedCodec only ever inhabits Codec[uint64].
func (q *query[K]) generateCandidates(groups [][]int) (candSet[K], int64, error) {
	if pc, ok := any(q.codec).(candgen.PackedCodec); ok {
		return q.generateTableCandidates(pc, groups)
	}
	var lcas *engine.PColl[map[K]cube.Agg]
	wallStart := time.Now()
	simStart := q.c.SimTime()
	err := q.timed(metrics.PhaseCandPruning, func() error {
		var err error
		switch {
		case q.memo != nil:
			// Prepared fast path: the candidate keys, support sums and row
			// coverage are Mhat-independent, so only the estimate sums are
			// recomputed from this query's fork.
			lcas, err = q.memo.parts(q.c, q.data)
		case q.sample != nil:
			if q.opt.useShuffleJoin() {
				q.c.Repartition(q.p.dataBytes, 0)
			}
			lcas, err = q.codec.LCAParts(q.c, q.data, q.sample, q.opt.useIndex(), q.index)
		default:
			lcas, err = q.codec.ExhaustiveParts(q.c, q.data)
		}
		return err
	})
	if err != nil {
		return candSet[K]{}, 0, err
	}

	var cands *engine.PColl[map[K]cube.Agg]
	err = q.timed(metrics.PhaseAncestorGen, func() error {
		var err error
		cands, err = cube.ComputeKeyed[K](q.c, lcas, q.codec, groups)
		return err
	})
	if err != nil {
		return candSet[K]{}, 0, err
	}

	err = q.timed(metrics.PhaseGainComputing, func() error {
		if q.sample != nil {
			var err error
			cands, err = candgen.AdjustForSample(q.c, cands, q.sample, q.codec)
			if err != nil {
				return err
			}
		}
		if q.opt.PruneRedundantAncestors {
			var err error
			cands, err = pruneRedundant(q.c, cands, q.codec)
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return candSet[K]{}, 0, err
	}
	n := cube.CountCandidates(q.c, cands)
	q.c.Reg().Add(metrics.CtrCandidates, n)
	q.c.Reg().AddPhase(metrics.PhaseRuleGen, time.Since(wallStart))
	q.c.Reg().AddSimPhase(metrics.PhaseRuleGen, q.c.SimTime()-simStart)
	return candSet[K]{maps: cands}, n, nil
}

// generateTableCandidates is the packed-key round over arena-recycled flat
// tables: leaf instances (memoized, LCA or exhaustive) land in borrowed
// PackedTables, the cube runs table-native (cube.ComputeTables), and the
// sample fix-up mutates aggregates in place. Each intermediate collection is
// released the moment it is consumed, so a query's iterations cycle the same
// backing arrays through the arena instead of allocating the candidate
// universe per stage.
func (q *query[K]) generateTableCandidates(pc candgen.PackedCodec, groups [][]int) (candSet[K], int64, error) {
	var lcas *engine.PColl[*cube.PackedTable]
	wallStart := time.Now()
	simStart := q.c.SimTime()
	err := q.timed(metrics.PhaseCandPruning, func() error {
		var err error
		switch {
		case q.memo != nil:
			// Prepared fast path: the candidate keys, support sums and row
			// coverage are Mhat-independent, so only the estimate sums are
			// recomputed from this query's fork.
			m, ok := any(q.memo).(*lcaMemo[uint64])
			if !ok {
				return fmt.Errorf("miner: internal: LCA memo key representation mismatch")
			}
			lcas, err = memoTableParts(m, q.c, q.data)
		case q.sample != nil:
			if q.opt.useShuffleJoin() {
				q.c.Repartition(q.p.dataBytes, 0)
			}
			lcas, err = pc.LCATables(q.c, q.data, q.sample, q.opt.useIndex(), q.index)
		default:
			lcas, err = pc.ExhaustiveTables(q.c, q.data)
		}
		return err
	})
	if err != nil {
		return candSet[K]{}, 0, err
	}

	var cands *engine.PColl[*cube.PackedTable]
	err = q.timed(metrics.PhaseAncestorGen, func() error {
		var err error
		cands, err = cube.ComputeTables(q.c, lcas, pc.PackedKeys, groups)
		return err
	})
	// The leaf tables are consumed by the cube's round-0 shuffle; recycle
	// them before the fix-up borrows more.
	cube.ReleaseTables(q.c, lcas)
	if err != nil {
		return candSet[K]{}, 0, err
	}

	err = q.timed(metrics.PhaseGainComputing, func() error {
		if q.sample != nil {
			if err := candgen.AdjustTablesForSample(q.c, cands, q.sample, pc); err != nil {
				return err
			}
		}
		if q.opt.PruneRedundantAncestors {
			var err error
			cands, err = pruneRedundantTables(q.c, cands, pc)
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		cube.ReleaseTables(q.c, cands)
		return candSet[K]{}, 0, err
	}
	n := cube.CountTableCandidates(q.c, cands)
	q.c.Reg().Add(metrics.CtrCandidates, n)
	q.c.Reg().AddPhase(metrics.PhaseRuleGen, time.Since(wallStart))
	q.c.Reg().AddSimPhase(metrics.PhaseRuleGen, q.c.SimTime()-simStart)
	return candSet[K]{tables: cands}, n, nil
}

// selectRules picks up to l rules for this iteration: the top candidate by
// gain, then further candidates that are mutually disjoint with every rule
// already picked this iteration, rank within the top TopPercent of all
// candidates, and gain at least MinGainRatio of the top gain (Section 4.4).
func (q *query[K]) selectRules(cands candSet[K], total int64, selected map[K]bool, l int) ([]candgen.Candidate[K], error) {
	var pool []candgen.Candidate[K]
	if cands.tables != nil {
		// Tables only exist on the packed path, where K is uint64.
		top := candgen.TopByGainTables(q.c, cands.tables, q.opt.TopPoolSize, any(selected).(map[uint64]bool))
		pool = any(top).([]candgen.Candidate[K])
	} else {
		pool = candgen.TopByGain(q.c, cands.maps, q.opt.TopPoolSize, selected)
	}
	if len(pool) == 0 {
		return nil, nil
	}
	picked := []candgen.Candidate[K]{pool[0]}
	if l <= 1 {
		return picked, nil
	}
	rankCut := int(q.opt.TopPercent * float64(total))
	if rankCut < 1 {
		rankCut = 1
	}
	gainCut := q.opt.MinGainRatio * pool[0].Gain
	top, err := q.codec.DecodeRule(pool[0].Key, nil)
	if err != nil {
		return nil, fmt.Errorf("miner: corrupt candidate key: %w", err)
	}
	pickedRules := []rule.Rule{top}
	for rank := 1; rank < len(pool) && len(picked) < l; rank++ {
		if rank > rankCut {
			break
		}
		cand := pool[rank]
		if cand.Gain < gainCut {
			break // pool is sorted; later candidates only get worse
		}
		r, err := q.codec.DecodeRule(cand.Key, nil)
		if err != nil {
			return nil, fmt.Errorf("miner: corrupt candidate key: %w", err)
		}
		disjoint := true
		for _, p := range pickedRules {
			if !r.Disjoint(p) {
				disjoint = false
				break
			}
		}
		if !disjoint {
			continue
		}
		picked = append(picked, cand)
		pickedRules = append(pickedRules, r)
	}
	return picked, nil
}

// pruneRedundant drops candidates that have the same support count as one of
// their children in the candidate set — their gain is identical to the
// child's, so evaluating both is wasted work (Chapter 7, future work). The
// child (more specific rule) is kept.
func pruneRedundant[K cmp.Ordered](c engine.Backend, cands *engine.PColl[map[K]cube.Agg], codec candgen.Codec[K]) (*engine.PColl[map[K]cube.Agg], error) {
	d := codec.NumDims()
	// The check needs parent lookups across partitions, so gather the
	// counts first (keys only — small relative to full aggregates).
	counts := make(map[K]float64)
	for _, part := range cands.Parts() {
		for k, agg := range part {
			counts[k] = agg.Count
		}
	}
	redundant := make(map[K]bool)
	buf := make(rule.Rule, d)
	for k := range counts {
		child, err := codec.DecodeRule(k, buf)
		if err != nil {
			return nil, fmt.Errorf("miner: corrupt candidate key: %w", err)
		}
		buf = child
		for j := 0; j < d; j++ {
			if child[j] == rule.Wildcard {
				continue
			}
			v := child[j]
			child[j] = rule.Wildcard
			pk, err := codec.EncodeRule(child)
			child[j] = v
			if err != nil {
				return nil, fmt.Errorf("miner: %w", err)
			}
			if pc, ok := counts[pk]; ok && pc == counts[k] {
				redundant[pk] = true
			}
		}
	}
	if len(redundant) == 0 {
		return cands, nil
	}
	return engine.MapParts(c, cands, "miner/prune-redundant", func(_ int, part map[K]cube.Agg) map[K]cube.Agg {
		out := make(map[K]cube.Agg, len(part))
		for k, v := range part {
			if !redundant[k] {
				out[k] = v
			}
		}
		return out
	}), nil
}

// pruneRedundantTables is pruneRedundant over table partitions: survivors are
// copied into fresh borrowed tables and the originals recycled.
func pruneRedundantTables(c engine.Backend, cands *engine.PColl[*cube.PackedTable], codec candgen.PackedCodec) (*engine.PColl[*cube.PackedTable], error) {
	d := codec.NumDims()
	counts := make(map[uint64]float64)
	for _, part := range cands.Parts() {
		part.ForEach(func(k uint64, agg cube.Agg) { counts[k] = agg.Count })
	}
	redundant := make(map[uint64]bool)
	buf := make(rule.Rule, d)
	for k := range counts {
		child, err := codec.DecodeRule(k, buf)
		if err != nil {
			return nil, fmt.Errorf("miner: corrupt candidate key: %w", err)
		}
		buf = child
		for j := 0; j < d; j++ {
			if child[j] == rule.Wildcard {
				continue
			}
			v := child[j]
			child[j] = rule.Wildcard
			pk, err := codec.EncodeRule(child)
			child[j] = v
			if err != nil {
				return nil, fmt.Errorf("miner: %w", err)
			}
			if pc, ok := counts[pk]; ok && pc == counts[k] {
				redundant[pk] = true
			}
		}
	}
	if len(redundant) == 0 {
		return cands, nil
	}
	out := engine.MapParts(c, cands, "miner/prune-redundant", func(_ int, part *cube.PackedTable) *cube.PackedTable {
		kept := cube.BorrowTable(c, part.Len())
		part.ForEach(func(k uint64, v cube.Agg) {
			if !redundant[k] {
				kept.Add(k, v)
			}
		})
		return kept
	})
	cube.ReleaseTables(c, cands)
	return out, nil
}

// currentKL computes the divergence between the measure and estimate columns
// across the query's cached blocks.
func (q *query[K]) currentKL() (float64, error) {
	data := q.data
	type sums struct{ sp, sq float64 }
	partial := make([]sums, data.NumBlocks())
	if err := data.Scan("miner/kl-sums", false, func(bi int, b *engine.TupleBlock) {
		for i := range b.M {
			partial[bi].sp += b.M[i]
			partial[bi].sq += b.Mhat[i]
		}
	}); err != nil {
		return 0, err
	}
	var sp, sq float64
	for _, p := range partial {
		sp += p.sp
		sq += p.sq
	}
	if sp == 0 || sq == 0 {
		return 0, nil
	}
	klParts := make([]float64, data.NumBlocks())
	if err := data.Scan("miner/kl", false, func(bi int, b *engine.TupleBlock) {
		var kl float64
		for i := range b.M {
			p := b.M[i] / sp
			if p == 0 {
				continue
			}
			q := b.Mhat[i] / sq
			if q > 0 {
				kl += p * math.Log(p/q)
			}
		}
		klParts[bi] = kl
	}); err != nil {
		return 0, err
	}
	var kl float64
	for _, v := range klParts {
		kl += v
	}
	if kl < 0 && kl > -1e-12 {
		kl = 0
	}
	return kl, nil
}

// informationGain computes the Section 5.1 metric over the query's blocks.
func (q *query[K]) informationGain() (float64, error) {
	data := q.data
	kl, err := q.currentKL()
	if err != nil {
		return 0, err
	}
	// Baseline KL: estimates equal to the global average.
	var sum float64
	var n int
	partial := make([][2]float64, data.NumBlocks())
	if err := data.Scan("miner/ig-base", false, func(bi int, b *engine.TupleBlock) {
		var s float64
		for _, v := range b.M {
			s += v
		}
		partial[bi] = [2]float64{s, float64(len(b.M))}
	}); err != nil {
		return 0, err
	}
	for _, p := range partial {
		sum += p[0]
		n += int(p[1])
	}
	if n == 0 || sum == 0 {
		return 0, nil
	}
	avg := sum / float64(n)
	baseParts := make([]float64, data.NumBlocks())
	if err := data.Scan("miner/ig-kl", false, func(bi int, b *engine.TupleBlock) {
		var klb float64
		for _, v := range b.M {
			p := v / sum
			if p == 0 {
				continue
			}
			q := avg / sum
			klb += p * math.Log(p/q)
		}
		baseParts[bi] = klb
	}); err != nil {
		return 0, err
	}
	var base float64
	for _, v := range baseParts {
		base += v
	}
	return base - kl, nil
}

// evaluateOnFull refits the mined rule list on the full dataset with a
// single-node RCT scaler and returns the true information gain — the quality
// metric of the SIRUM-on-sample experiments. Rules whose support is empty on
// the full data cannot occur (a sample rule always covers its sample rows,
// which come from the full data).
func (q *query[K]) evaluateOnFull(rules []rule.Rule) (float64, error) {
	_, work := maxent.NewTransform(q.p.full.Measure)
	s := maxent.NewRCTScaler(q.p.full, work, len(rules)+1)
	s.Epsilon = q.opt.Epsilon
	for _, r := range rules {
		if _, err := s.AddRule(r); err != nil {
			return 0, fmt.Errorf("miner: refitting on full data: %w", err)
		}
	}
	return maxent.InformationGain(work, s.Mhat()), nil
}
