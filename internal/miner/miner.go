package miner

import (
	"fmt"
	"math"
	"time"

	"sirum/internal/candgen"
	"sirum/internal/cube"
	"sirum/internal/dataset"
	"sirum/internal/engine"
	"sirum/internal/maxent"
	"sirum/internal/metrics"
	"sirum/internal/rule"
	"sirum/internal/stats"
)

// Miner executes the greedy informative-rule mining loop (Algorithm 2) on an
// execution backend.
type Miner struct {
	c    engine.Backend
	ds   *dataset.Dataset
	opt  Options
	full *dataset.Dataset // the unsampled dataset for EvaluateOnFullData
}

// New builds a miner over ds. The backend carries the execution substrate
// (parallelism, memory, cost model if simulated) and accumulates metrics.
func New(c engine.Backend, ds *dataset.Dataset, opt Options) *Miner {
	return &Miner{c: c, ds: ds, opt: opt.withDefaults()}
}

// timed charges f's wall and simulated durations to the named phase.
func (m *Miner) timed(phase string, f func() error) error {
	wallStart := time.Now()
	simStart := m.c.SimTime()
	err := f()
	m.c.Reg().AddPhase(phase, time.Since(wallStart))
	m.c.Reg().AddSimPhase(phase, m.c.SimTime()-simStart)
	return err
}

// Run mines the rule list. It is not safe to call concurrently on one Miner.
func (m *Miner) Run() (*Result, error) {
	opt := m.opt
	if m.ds.NumRows() == 0 {
		return nil, fmt.Errorf("miner: empty dataset")
	}
	wallStart := time.Now()
	simStart := m.c.SimTime()

	// SIRUM on sample data (Section 4.5): replace D with a Bernoulli sample
	// sized to memory; keep the original around for final evaluation.
	ds := m.ds
	if opt.SampleFraction > 0 && opt.SampleFraction < 1 {
		m.full = m.ds
		ds = m.ds.SampleFraction(stats.NewRand(opt.Seed+1), opt.SampleFraction)
		if ds.NumRows() == 0 {
			return nil, fmt.Errorf("miner: sample fraction %v left no rows", opt.SampleFraction)
		}
	}
	d := ds.NumDims()

	// Measure preprocessing (Section 2.2) and data load.
	transform, work := maxent.NewTransform(ds.Measure)
	mhat := make([]float64, len(work))
	for i := range mhat {
		mhat[i] = 1
	}
	parts := opt.Partitions
	if parts <= 0 {
		parts = m.c.Config().Partitions
	}
	var data *engine.CachedData
	dataBytes := ds.ApproxBytes()
	err := m.timed(metrics.PhaseDataLoad, func() error {
		blocks := engine.BlocksFromColumns(ds.Dims, work, mhat, parts)
		// Initial read from the distributed file system.
		m.c.ChargeDiskRead(dataBytes)
		var err error
		data, err = engine.CacheTuples(m.c, blocks)
		return err
	})
	if err != nil {
		return nil, err
	}

	// Scaler per variant.
	var scaler distScaler
	if opt.useRCT() {
		scaler = newRCTDistScaler(m.c, data, dataBytes, opt.Epsilon, opt.MaxRules+len(opt.PriorRules)+1)
	} else {
		scaler = newNaiveDistScaler(m.c, data, dataBytes, opt.Epsilon, opt.useShuffleJoin(), opt.ResetScaling)
	}

	res := &Result{}
	selected := map[string]bool{}
	addRules := func(rs []rule.Rule) error {
		return m.timed(metrics.PhaseScaling, func() error {
			if err := scaler.AddRules(rs); err != nil {
				return err
			}
			for _, r := range rs {
				selected[r.Key()] = true
			}
			return nil
		})
	}

	// The all-wildcards rule is always first (Section 2.2), followed by any
	// prior knowledge (the cube-exploration application).
	if err := addRules([]rule.Rule{rule.AllWildcards(d)}); err != nil {
		return nil, err
	}
	if len(opt.PriorRules) > 0 {
		for _, r := range opt.PriorRules {
			if err := addRules([]rule.Rule{r}); err != nil {
				return nil, err
			}
		}
	}

	// The sample for candidate pruning is drawn once per run, as in the
	// thesis' evaluation, so variants given the same seed see the same
	// candidate space.
	var sample *candgen.Sample
	if opt.SampleSize > 0 {
		sample = candgen.DrawSample(ds, stats.NewRand(opt.Seed), opt.SampleSize)
	}
	groups := cube.SplitGroups(d, opt.ColumnGroups)

	ruleBudget := opt.K
	if opt.TargetKL > 0 {
		ruleBudget = opt.MaxRules
	}
	klOf := func() (float64, error) {
		var kl float64
		err := m.timed(metrics.PhaseRuleSelection, func() error {
			var e error
			kl, e = m.currentKL(data)
			return e
		})
		return kl, err
	}

	for len(res.Rules) < ruleBudget {
		res.Iterations++
		cands, nCands, err := m.generateCandidates(data, sample, d, groups, dataBytes)
		if err != nil {
			return nil, err
		}
		res.Candidates = nCands

		var picked []candgen.Candidate
		err = m.timed(metrics.PhaseRuleSelection, func() error {
			picked = m.selectRules(cands, nCands, selected, min(opt.RulesPerIter, ruleBudget-len(res.Rules)))
			return nil
		})
		if err != nil {
			return nil, err
		}
		if len(picked) == 0 {
			break // no candidate with positive gain remains
		}
		rs := make([]rule.Rule, len(picked))
		for i, cand := range picked {
			r, err := rule.FromKey(cand.Key, d)
			if err != nil {
				return nil, fmt.Errorf("miner: corrupt candidate key: %w", err)
			}
			rs[i] = r
			res.Rules = append(res.Rules, MinedRule{
				Rule:  r,
				Avg:   transform.InvertAvg(cand.Agg.SumM / cand.Agg.Count),
				Count: int64(cand.Agg.Count + 0.5),
				Gain:  cand.Gain,
			})
		}
		if err := addRules(rs); err != nil {
			return nil, err
		}
		kl, err := klOf()
		if err != nil {
			return nil, err
		}
		res.KLTrajectory = append(res.KLTrajectory, kl)
		if opt.TargetKL > 0 && kl <= opt.TargetKL {
			break
		}
	}

	if len(res.KLTrajectory) > 0 {
		res.KL = res.KLTrajectory[len(res.KLTrajectory)-1]
	} else {
		kl, err := klOf()
		if err != nil {
			return nil, err
		}
		res.KL = kl
	}
	res.WallTime = time.Since(wallStart)
	res.SimTime = m.c.SimTime() - simStart

	// Information gain of the final estimates (Section 5.1).
	ig, err := m.informationGain(data)
	if err != nil {
		return nil, err
	}
	res.InfoGain = ig
	if m.full != nil && opt.EvaluateOnFullData {
		igFull, err := m.evaluateOnFull(scaler.Rules())
		if err != nil {
			return nil, err
		}
		res.InfoGain = igFull
	}

	res.Phases = m.c.Reg().Phases()
	res.SimPhases = map[string]time.Duration{}
	for name := range res.Phases {
		res.SimPhases[name] = m.c.Reg().SimPhase(name)
	}
	res.Counters = m.c.Reg().Counters()
	return res, nil
}

// generateCandidates runs one rule-generation round: candidate pruning (LCA
// computation), ancestor generation (the cube), gain-input preparation (the
// sample fix-up). Phases are timed separately to reproduce Figure 3.2.
func (m *Miner) generateCandidates(data *engine.CachedData, sample *candgen.Sample, d int, groups [][]int, dataBytes int64) (*engine.PColl[map[string]cube.Agg], int64, error) {
	var lcas *engine.PColl[map[string]cube.Agg]
	wallStart := time.Now()
	simStart := m.c.SimTime()
	err := m.timed(metrics.PhaseCandPruning, func() error {
		var err error
		if sample != nil {
			if m.opt.useShuffleJoin() {
				m.c.Repartition(dataBytes, 0)
			}
			lcas, err = candgen.LCAParts(m.c, data, sample, m.opt.useIndex())
		} else {
			lcas, err = candgen.ExhaustiveParts(m.c, data)
		}
		return err
	})
	if err != nil {
		return nil, 0, err
	}

	var cands *engine.PColl[map[string]cube.Agg]
	err = m.timed(metrics.PhaseAncestorGen, func() error {
		var err error
		cands, err = cube.Compute(m.c, lcas, d, groups)
		return err
	})
	if err != nil {
		return nil, 0, err
	}

	err = m.timed(metrics.PhaseGainComputing, func() error {
		if sample != nil {
			cands = candgen.AdjustForSample(m.c, cands, sample, d)
		}
		if m.opt.PruneRedundantAncestors {
			cands = pruneRedundant(m.c, cands, d)
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	n := cube.CountCandidates(m.c, cands)
	m.c.Reg().Add(metrics.CtrCandidates, n)
	m.c.Reg().AddPhase(metrics.PhaseRuleGen, time.Since(wallStart))
	m.c.Reg().AddSimPhase(metrics.PhaseRuleGen, m.c.SimTime()-simStart)
	return cands, n, nil
}

// selectRules picks up to l rules for this iteration: the top candidate by
// gain, then further candidates that are mutually disjoint with every rule
// already picked this iteration, rank within the top TopPercent of all
// candidates, and gain at least MinGainRatio of the top gain (Section 4.4).
func (m *Miner) selectRules(cands *engine.PColl[map[string]cube.Agg], total int64, selected map[string]bool, l int) []candgen.Candidate {
	pool := candgen.TopByGain(m.c, cands, m.opt.TopPoolSize, selected)
	if len(pool) == 0 {
		return nil
	}
	picked := []candgen.Candidate{pool[0]}
	if l <= 1 {
		return picked
	}
	d := m.ds.NumDims()
	rankCut := int(m.opt.TopPercent * float64(total))
	if rankCut < 1 {
		rankCut = 1
	}
	gainCut := m.opt.MinGainRatio * pool[0].Gain
	pickedRules := []rule.Rule{mustFromKey(pool[0].Key, d)}
	for rank := 1; rank < len(pool) && len(picked) < l; rank++ {
		if rank > rankCut {
			break
		}
		cand := pool[rank]
		if cand.Gain < gainCut {
			break // pool is sorted; later candidates only get worse
		}
		r := mustFromKey(cand.Key, d)
		disjoint := true
		for _, p := range pickedRules {
			if !r.Disjoint(p) {
				disjoint = false
				break
			}
		}
		if !disjoint {
			continue
		}
		picked = append(picked, cand)
		pickedRules = append(pickedRules, r)
	}
	return picked
}

func mustFromKey(key string, d int) rule.Rule {
	r, err := rule.FromKey(key, d)
	if err != nil {
		panic(fmt.Sprintf("miner: corrupt candidate key: %v", err))
	}
	return r
}

// pruneRedundant drops candidates that have the same support count as one of
// their children in the candidate set — their gain is identical to the
// child's, so evaluating both is wasted work (Chapter 7, future work). The
// child (more specific rule) is kept.
func pruneRedundant(c engine.Backend, cands *engine.PColl[map[string]cube.Agg], d int) *engine.PColl[map[string]cube.Agg] {
	// The check needs parent lookups across partitions, so gather the
	// counts first (keys only — small relative to full aggregates).
	counts := make(map[string]float64)
	for _, part := range cands.Parts() {
		for k, agg := range part {
			counts[k] = agg.Count
		}
	}
	redundant := make(map[string]bool)
	buf := make(rule.Rule, d)
	for k := range counts {
		child := mustFromKey(k, d)
		for j := 0; j < d; j++ {
			if child[j] == rule.Wildcard {
				continue
			}
			copy(buf, child)
			buf[j] = rule.Wildcard
			pk := buf.Key()
			if pc, ok := counts[pk]; ok && pc == counts[k] {
				redundant[pk] = true
			}
		}
	}
	if len(redundant) == 0 {
		return cands
	}
	return engine.MapParts(c, cands, "miner/prune-redundant", func(_ int, part map[string]cube.Agg) map[string]cube.Agg {
		out := make(map[string]cube.Agg, len(part))
		for k, v := range part {
			if !redundant[k] {
				out[k] = v
			}
		}
		return out
	})
}

// currentKL computes the divergence between the measure and estimate columns
// across the cached blocks.
func (m *Miner) currentKL(data *engine.CachedData) (float64, error) {
	type sums struct{ sp, sq float64 }
	partial := make([]sums, data.NumBlocks())
	if err := data.Scan("miner/kl-sums", false, func(bi int, b *engine.TupleBlock) {
		for i := range b.M {
			partial[bi].sp += b.M[i]
			partial[bi].sq += b.Mhat[i]
		}
	}); err != nil {
		return 0, err
	}
	var sp, sq float64
	for _, p := range partial {
		sp += p.sp
		sq += p.sq
	}
	if sp == 0 || sq == 0 {
		return 0, nil
	}
	klParts := make([]float64, data.NumBlocks())
	if err := data.Scan("miner/kl", false, func(bi int, b *engine.TupleBlock) {
		var kl float64
		for i := range b.M {
			p := b.M[i] / sp
			if p == 0 {
				continue
			}
			q := b.Mhat[i] / sq
			if q > 0 {
				kl += p * math.Log(p/q)
			}
		}
		klParts[bi] = kl
	}); err != nil {
		return 0, err
	}
	var kl float64
	for _, v := range klParts {
		kl += v
	}
	if kl < 0 && kl > -1e-12 {
		kl = 0
	}
	return kl, nil
}

// informationGain computes the Section 5.1 metric over the cached blocks.
func (m *Miner) informationGain(data *engine.CachedData) (float64, error) {
	kl, err := m.currentKL(data)
	if err != nil {
		return 0, err
	}
	// Baseline KL: estimates equal to the global average.
	var sum float64
	var n int
	partial := make([][2]float64, data.NumBlocks())
	if err := data.Scan("miner/ig-base", false, func(bi int, b *engine.TupleBlock) {
		var s float64
		for _, v := range b.M {
			s += v
		}
		partial[bi] = [2]float64{s, float64(len(b.M))}
	}); err != nil {
		return 0, err
	}
	for _, p := range partial {
		sum += p[0]
		n += int(p[1])
	}
	if n == 0 || sum == 0 {
		return 0, nil
	}
	avg := sum / float64(n)
	baseParts := make([]float64, data.NumBlocks())
	if err := data.Scan("miner/ig-kl", false, func(bi int, b *engine.TupleBlock) {
		var klb float64
		for _, v := range b.M {
			p := v / sum
			if p == 0 {
				continue
			}
			q := avg / sum
			klb += p * math.Log(p/q)
		}
		baseParts[bi] = klb
	}); err != nil {
		return 0, err
	}
	var base float64
	for _, v := range baseParts {
		base += v
	}
	return base - kl, nil
}

// evaluateOnFull refits the mined rule list on the full dataset with a
// single-node RCT scaler and returns the true information gain — the quality
// metric of the SIRUM-on-sample experiments. Rules whose support is empty on
// the full data cannot occur (a sample rule always covers its sample rows,
// which come from the full data).
func (m *Miner) evaluateOnFull(rules []rule.Rule) (float64, error) {
	_, work := maxent.NewTransform(m.full.Measure)
	s := maxent.NewRCTScaler(m.full, work, len(rules)+1)
	s.Epsilon = m.opt.Epsilon
	for _, r := range rules {
		if _, err := s.AddRule(r); err != nil {
			return 0, fmt.Errorf("miner: refitting on full data: %w", err)
		}
	}
	return maxent.InformationGain(work, s.Mhat()), nil
}
