// Package miner implements SIRUM itself: the greedy informative-rule mining
// loop of Algorithm 2 executed on the distributed engine, in every variant
// of Table 4.2 — Naive (shuffle joins), Baseline/BJ (broadcast joins), RCT
// (fast iterative scaling), FastPruning (inverted-index LCAs), FastAncestor
// (column-grouped ancestor generation), Multi-rule (several disjoint rules
// per iteration) and Optimized (all of the above) — plus SIRUM on sample
// data (Section 4.5) and the extensions listed in DESIGN.md §5.
package miner

import (
	"fmt"
	"time"

	"sirum/internal/rule"
)

// Variant selects a SIRUM implementation from Table 4.2.
type Variant int

const (
	// Naive repartitions D for every join (the distributed analogue of
	// prior work [16]) and uses naive iterative scaling.
	Naive Variant = iota
	// Baseline is BJ SIRUM: broadcast joins, otherwise naive everything.
	Baseline
	// RCT adds the Rule Coverage Table scaler (Section 4.1).
	RCT
	// FastPruning adds inverted-index candidate pruning (Section 4.2).
	FastPruning
	// FastAncestor adds column-grouped ancestor generation (Section 4.3).
	FastAncestor
	// MultiRule adds multiple disjoint rules per iteration (Section 4.4).
	MultiRule
	// Optimized combines RCT, FastPruning, FastAncestor and MultiRule.
	Optimized
)

// String names the variant as in the thesis' plots.
func (v Variant) String() string {
	switch v {
	case Naive:
		return "Naive"
	case Baseline:
		return "Baseline"
	case RCT:
		return "RCT"
	case FastPruning:
		return "FastPruning"
	case FastAncestor:
		return "FastAncestor"
	case MultiRule:
		return "Multi-rule"
	case Optimized:
		return "Optimized"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Variants lists all variants in Table 4.2 order.
func Variants() []Variant {
	return []Variant{Naive, Baseline, RCT, FastPruning, FastAncestor, MultiRule, Optimized}
}

// Options configures a mining run. The zero value plus a K is usable:
// defaults follow the thesis' evaluation settings.
type Options struct {
	Variant Variant
	// K is the number of rules to generate in addition to the always-first
	// all-wildcards rule.
	K int
	// SampleSize is |s| for sample-based candidate pruning; 0 disables
	// pruning and explores candidates exhaustively.
	SampleSize int
	// Epsilon is the iterative-scaling convergence threshold (default 0.01).
	Epsilon float64
	// Seed drives all sampling (default 1).
	Seed int64
	// Partitions overrides the number of data blocks (default: cluster's).
	Partitions int

	// RulesPerIter is l, the number of mutually disjoint rules added per
	// iteration. Defaults to 1, or 2 for MultiRule/Optimized.
	RulesPerIter int
	// TopPercent bounds the rank of extra rules per iteration to the top
	// fraction of candidates by gain (default 0.01).
	TopPercent float64
	// MinGainRatio requires extra rules to have at least this fraction of
	// the iteration's top gain (default 0.5).
	MinGainRatio float64
	// TopPoolSize is how many top candidates are gathered to the driver for
	// multi-rule selection (default 1024).
	TopPoolSize int

	// ColumnGroups is g for fast candidate rule processing. Defaults to 1,
	// or 2 for FastAncestor/Optimized.
	ColumnGroups int

	// TargetKL, when positive, keeps iterating past K rules until the KL
	// divergence drops to the target (the l-rule* runs of Section 5.5).
	TargetKL float64
	// MaxRules caps the rule list for TargetKL runs (default 4*K).
	MaxRules int

	// SampleFraction, in (0,1), mines on a Bernoulli sample of D instead of
	// D itself (SIRUM on sample data, Section 4.5).
	SampleFraction float64

	// PriorRules are appended (after the all-wildcards rule) before mining
	// starts — the data-cube exploration application seeds the user's
	// prior knowledge this way (Section 5.6.2).
	PriorRules []rule.Rule
	// ResetScaling replays prior work's iterative scaling [29]: reset all
	// multipliers whenever rules are added. Only meaningful without RCT.
	ResetScaling bool

	// PruneRedundantAncestors enables the future-work optimization of
	// Chapter 7: candidates with the same support as one of their children
	// are dropped before scoring.
	PruneRedundantAncestors bool

	// EvaluateOnFullData, with SampleFraction set, additionally fits the
	// mined rules on the full dataset to report the true KL/information
	// gain (the quality metric of Figures 5.18/5.19).
	EvaluateOnFullData bool
}

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = 10
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 0.01
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.RulesPerIter <= 0 {
		if o.Variant == MultiRule || o.Variant == Optimized {
			o.RulesPerIter = 2
		} else {
			o.RulesPerIter = 1
		}
	}
	if o.TopPercent <= 0 {
		o.TopPercent = 0.01
	}
	if o.MinGainRatio <= 0 {
		o.MinGainRatio = 0.5
	}
	if o.TopPoolSize <= 0 {
		o.TopPoolSize = 1024
	}
	if o.ColumnGroups <= 0 {
		if o.Variant == FastAncestor || o.Variant == Optimized {
			o.ColumnGroups = 2
		} else {
			o.ColumnGroups = 1
		}
	}
	if o.MaxRules <= 0 {
		o.MaxRules = 4 * o.K
	}
	return o
}

// useRCT reports whether the variant scales with the Rule Coverage Table.
func (o Options) useRCT() bool { return o.Variant == RCT || o.Variant == Optimized }

// useIndex reports whether LCA generation uses the inverted index.
func (o Options) useIndex() bool { return o.Variant == FastPruning || o.Variant == Optimized }

// useShuffleJoin reports whether joins repartition D (Naive only).
func (o Options) useShuffleJoin() bool { return o.Variant == Naive }

// MinedRule is one rule of the output list with its display aggregates
// (Table 1.2's AVG and count columns) and the gain estimate at selection.
type MinedRule struct {
	Rule  rule.Rule
	Avg   float64 // average measure over the support set, original scale
	Count int64   // |S_D(r)|
	Gain  float64 // information-gain estimate when selected
}

// Result reports a completed mining run.
type Result struct {
	Rules []MinedRule
	// KL is the final divergence between measure and estimates on the data
	// actually mined (the sample when SampleFraction is set).
	KL float64
	// KLTrajectory records KL after each iteration.
	KLTrajectory []float64
	// InfoGain is the information gain of the final rule set (Section 5.1),
	// on the full dataset when EvaluateOnFullData is set.
	InfoGain float64
	// Iterations is the number of greedy iterations executed.
	Iterations int
	// Candidates is the number of distinct candidate rules of the last
	// iteration (Figure 5.8's denominator).
	Candidates int64

	// WallTime and SimTime cover the mining loop (excluding full-data
	// re-evaluation).
	WallTime time.Duration
	SimTime  time.Duration
	// Phase durations, keyed by the metrics.Phase* names; Sim variants hold
	// simulated durations.
	Phases    map[string]time.Duration
	SimPhases map[string]time.Duration
	// Counters snapshots the cluster metrics registry.
	Counters map[string]int64
}
