package miner

import (
	"fmt"
	"math"

	"sirum/internal/bitset"
	"sirum/internal/engine"
	"sirum/internal/maxent"
	"sirum/internal/metrics"
	"sirum/internal/rule"
)

// distScaler is the distributed counterpart of maxent.Scaler: it maintains
// the estimate columns of the cached data blocks and rescales them to
// convergence whenever rules are appended. Implementations must leave every
// block's Mhat column consistent with the converged multipliers.
type distScaler interface {
	// AddRules appends the rules (jointly, as one multi-rule iteration) and
	// rescales. It returns the per-rule targets m(r) (transformed scale)
	// and support counts for the new rules.
	AddRules(rs []rule.Rule) error
	Rules() []rule.Rule
	Lambdas() []float64
}

// scalerBase carries the state shared by both distributed scalers.
type scalerBase struct {
	c        engine.Backend
	data     *engine.CachedData
	epsilon  float64
	maxLoops int

	rules   []rule.Rule
	lambda  []float64
	targets []float64
	counts  []float64

	dataBytes int64 // payload size of D, for join cost accounting
	shuffle   bool  // Naive: repartition D per join instead of broadcasting
}

func (s *scalerBase) Rules() []rule.Rule { return s.rules }

func (s *scalerBase) Lambdas() []float64 { return s.lambda }

// chargeJoin models the join of a small relation (the sample, the rule list)
// with D: Naive SIRUM repartitions D, BJ SIRUM broadcasts the small side.
func (s *scalerBase) chargeJoin(smallBytes int64) {
	if s.shuffle {
		s.c.Repartition(s.dataBytes, 0)
	} else {
		s.c.Broadcast(smallBytes)
	}
}

// ruleListBytes approximates the broadcast payload of the rule list.
func (s *scalerBase) ruleListBytes() int64 {
	if len(s.rules) == 0 {
		return 0
	}
	return int64(len(s.rules)) * int64(len(s.rules[0])) * 4
}

// registerRules appends the rules after computing their targets with one
// scan, rejecting empty supports.
func (s *scalerBase) registerRules(rs []rule.Rule) error {
	type sums struct {
		m     float64
		count float64
	}
	perBlock := make([][]sums, s.data.NumBlocks())
	s.chargeJoin(int64(len(rs)) * int64(len(rs[0])) * 4)
	err := s.data.Scan("scaling/targets", false, func(bi int, b *engine.TupleBlock) {
		local := make([]sums, len(rs))
		for i := 0; i < b.NumRows(); i++ {
			for ri, r := range rs {
				if matchesBlockRow(r, b, i) {
					local[ri].m += b.M[i]
					local[ri].count++
				}
			}
		}
		perBlock[bi] = local
	})
	if err != nil {
		return err
	}
	for ri, r := range rs {
		var total sums
		for _, local := range perBlock {
			total.m += local[ri].m
			total.count += local[ri].count
		}
		if total.count == 0 {
			return fmt.Errorf("miner: rule %v has empty support", r)
		}
		s.rules = append(s.rules, r.Clone())
		s.lambda = append(s.lambda, 1)
		s.targets = append(s.targets, total.m/total.count)
		s.counts = append(s.counts, total.count)
	}
	return nil
}

// matchesBlockRow tests t ⊨ r against a block's columnar layout.
func matchesBlockRow(r rule.Rule, b *engine.TupleBlock, i int) bool {
	for j, v := range r {
		if v != rule.Wildcard && v != b.Dims[j][i] {
			return false
		}
	}
	return true
}

// naiveDistScaler runs Algorithm 1 with distributed scans: every loop reads
// D twice (estimate sums, then estimate updates), re-evaluating coverage
// attribute by attribute — the behaviour the RCT optimization removes.
type naiveDistScaler struct {
	scalerBase
	resetOnAdd bool
}

func newNaiveDistScaler(c engine.Backend, data *engine.CachedData, dataBytes int64, epsilon float64, shuffleJoin, resetOnAdd bool) *naiveDistScaler {
	return &naiveDistScaler{
		scalerBase: scalerBase{
			c: c, data: data, epsilon: epsilon, maxLoops: maxent.DefaultMaxLoops,
			dataBytes: dataBytes, shuffle: shuffleJoin,
		},
		resetOnAdd: resetOnAdd,
	}
}

func (s *naiveDistScaler) AddRules(rs []rule.Rule) error {
	if err := s.registerRules(rs); err != nil {
		return err
	}
	if s.resetOnAdd {
		for i := range s.lambda {
			s.lambda[i] = 1
		}
		if err := s.data.Scan("scaling/reset", true, func(_ int, b *engine.TupleBlock) {
			engine.FillFloat64(b.Mhat, 1)
		}); err != nil {
			return err
		}
	}
	return s.scale()
}

func (s *naiveDistScaler) scale() error {
	nr := len(s.rules)
	for loop := 0; loop < s.maxLoops; loop++ {
		// Lines 3–6 of Algorithm 1, distributed: per-block partial sums of
		// the estimates covered by each rule.
		s.chargeJoin(s.ruleListBytes())
		partial := make([][]float64, s.data.NumBlocks())
		err := s.data.Scan("scaling/sums", false, func(bi int, b *engine.TupleBlock) {
			local := make([]float64, nr)
			for i := 0; i < b.NumRows(); i++ {
				for ri := range s.rules {
					if matchesBlockRow(s.rules[ri], b, i) {
						local[ri] += b.Mhat[i]
					}
				}
			}
			partial[bi] = local
		})
		if err != nil {
			return err
		}
		next, worst := -1, 0.0
		var nextRatio float64
		for ri := 0; ri < nr; ri++ {
			var sum float64
			for _, local := range partial {
				sum += local[ri]
			}
			est := sum / s.counts[ri]
			d := relDiff(s.targets[ri], est)
			if d > worst {
				worst, next = d, ri
				nextRatio = scaleRatio(s.targets[ri], est)
			}
		}
		s.c.Reg().Add(metrics.CtrScalingLoops, 1)
		if next < 0 || worst <= s.epsilon {
			return nil
		}
		// Lines 9–12: scale and update the covered estimates.
		s.lambda[next] *= nextRatio
		target := s.rules[next]
		if err := s.data.Scan("scaling/update", true, func(_ int, b *engine.TupleBlock) {
			for i := 0; i < b.NumRows(); i++ {
				if matchesBlockRow(target, b, i) {
					b.Mhat[i] *= nextRatio
				}
			}
		}); err != nil {
			return err
		}
	}
	return fmt.Errorf("miner: iterative scaling did not converge in %d loops", s.maxLoops)
}

// rctDistScaler runs Algorithm 3 with distributed coverage bit arrays: D is
// scanned twice per AddRules call no matter how many loops the (driver-side,
// RCT-sized) scaling takes.
type rctDistScaler struct {
	scalerBase
	words int // bit-array words per tuple
}

func newRCTDistScaler(c engine.Backend, data *engine.CachedData, dataBytes int64, epsilon float64, maxRules int) *rctDistScaler {
	if maxRules <= 0 {
		maxRules = 64
	}
	return &rctDistScaler{
		scalerBase: scalerBase{
			c: c, data: data, epsilon: epsilon, maxLoops: maxent.DefaultMaxLoops,
			dataBytes: dataBytes,
		},
		words: (maxRules + 63) / 64,
	}
}

// rctAgg is one driver-side RCT row.
type rctAgg struct {
	ba      []uint64
	count   float64
	sumMhat float64
}

func (s *rctDistScaler) AddRules(rs []rule.Rule) error {
	base := len(s.rules)
	if base+len(rs) > s.words*64 {
		return fmt.Errorf("miner: RCT capacity %d rules exceeded", s.words*64)
	}
	s.chargeJoin(int64(len(rs)) * int64(len(rs[0])) * 4)
	// Pass 1 (lines 1–6): set the new coverage bits, compute targets, and
	// build per-block RCT fragments.
	type blockOut struct {
		rct    map[string]*rctAgg
		sums   []float64
		counts []float64
	}
	outs := make([]blockOut, s.data.NumBlocks())
	err := s.data.Scan("scaling/rct-build", true, func(bi int, b *engine.TupleBlock) {
		if b.BAW != s.words {
			// First time this block carries coverage bits (or it was built
			// before the scaler dimensioned them).
			b.BAW = s.words
			b.BA = make([]uint64, b.NumRows()*s.words)
		}
		o := blockOut{rct: make(map[string]*rctAgg), sums: make([]float64, len(rs)), counts: make([]float64, len(rs))}
		keyBuf := make([]byte, 0, s.words*8)
		for i := 0; i < b.NumRows(); i++ {
			ba := b.BA[i*s.words : (i+1)*s.words]
			for ri, r := range rs {
				if matchesBlockRow(r, b, i) {
					w := base + ri
					ba[w/64] |= 1 << (uint(w) % 64)
					o.sums[ri] += b.M[i]
					o.counts[ri]++
				}
			}
			// Scratch-buffer key: the map lookup via string(keyBuf) does
			// not allocate, so only first-seen signatures pay a string.
			keyBuf = appendBAKey(keyBuf[:0], ba)
			row, ok := o.rct[string(keyBuf)]
			if !ok {
				row = &rctAgg{ba: append([]uint64(nil), ba...)}
				o.rct[string(keyBuf)] = row
			}
			row.count++
			row.sumMhat += b.Mhat[i]
		}
		outs[bi] = o
	})
	if err != nil {
		return err
	}
	for ri, r := range rs {
		var m, cnt float64
		for _, o := range outs {
			m += o.sums[ri]
			cnt += o.counts[ri]
		}
		if cnt == 0 {
			return fmt.Errorf("miner: rule %v has empty support", r)
		}
		s.rules = append(s.rules, r.Clone())
		s.lambda = append(s.lambda, 1)
		s.targets = append(s.targets, m/cnt)
		s.counts = append(s.counts, cnt)
	}
	// Merge the RCT fragments on the driver (the RCT is small: at most
	// 2^|R| rows, in practice far fewer — Section 4.1).
	rct := make(map[string]*rctAgg)
	var rctBytes int64
	for _, o := range outs {
		for key, row := range o.rct {
			got, ok := rct[key]
			if !ok {
				rct[key] = row
				rctBytes += int64(len(key) + 16)
				continue
			}
			got.count += row.count
			got.sumMhat += row.sumMhat
		}
	}
	s.c.ChargeShuffle(rctBytes, int64(len(rct)))
	if err := s.scaleRCT(rct); err != nil {
		return err
	}
	// Write-back pass (lines 23–25): estimates are per-coverage-signature
	// products of multipliers.
	s.chargeJoin(int64(len(s.lambda)) * 8)
	if s.words == 1 {
		// Word64 fast path: with the rule list in one machine word, key the
		// estimate table directly by the coverage word and skip byte-key
		// encoding entirely.
		est := make(map[uint64]float64, len(rct))
		for _, row := range rct {
			est[row.ba[0]] = s.productOf(row.ba)
		}
		return s.data.Scan("scaling/writeback", true, func(_ int, b *engine.TupleBlock) {
			for i, w := range b.BA {
				b.Mhat[i] = est[w]
			}
		})
	}
	est := make(map[string]float64, len(rct))
	for key, row := range rct {
		est[key] = s.productOf(row.ba)
	}
	return s.data.Scan("scaling/writeback", true, func(_ int, b *engine.TupleBlock) {
		keyBuf := make([]byte, 0, s.words*8)
		for i := 0; i < b.NumRows(); i++ {
			keyBuf = appendBAKey(keyBuf[:0], b.BA[i*s.words:(i+1)*s.words])
			b.Mhat[i] = est[string(keyBuf)]
		}
	})
}

// productOf multiplies the lambdas of the rules whose coverage bits are set,
// walking only the set bits instead of testing every rule.
func (s *rctDistScaler) productOf(ba []uint64) float64 {
	p := 1.0
	bitset.FromWords(len(s.rules), ba).ForEachSet(func(i int) {
		p *= s.lambda[i]
	})
	return p
}

// scaleRCT is the driver-side Algorithm 3 loop over the merged RCT.
func (s *rctDistScaler) scaleRCT(rct map[string]*rctAgg) error {
	rows := make([]*rctAgg, 0, len(rct))
	for _, row := range rct {
		rows = append(rows, row)
	}
	nr := len(s.rules)
	for loop := 0; loop < s.maxLoops; loop++ {
		next, worst := -1, 0.0
		var nextRatio float64
		for ri := 0; ri < nr; ri++ {
			word, bit := ri/64, uint64(1)<<(uint(ri)%64)
			var sum float64
			for _, row := range rows {
				if row.ba[word]&bit != 0 {
					sum += row.sumMhat
				}
			}
			est := sum / s.counts[ri]
			d := relDiff(s.targets[ri], est)
			if d > worst {
				worst, next = d, ri
				nextRatio = scaleRatio(s.targets[ri], est)
			}
		}
		s.c.Reg().Add(metrics.CtrScalingLoops, 1)
		if next < 0 || worst <= s.epsilon {
			return nil
		}
		s.lambda[next] *= nextRatio
		word, bit := next/64, uint64(1)<<(uint(next)%64)
		for _, row := range rows {
			if row.ba[word]&bit != 0 {
				row.sumMhat *= nextRatio
			}
		}
	}
	return fmt.Errorf("miner: RCT iterative scaling did not converge in %d loops", s.maxLoops)
}

// appendBAKey appends the map-key encoding of a coverage bit array (8
// little-endian bytes per word) to dst. Reusing dst across rows keeps the
// RCT build and write-back scans allocation-free per row.
func appendBAKey(dst []byte, ba []uint64) []byte {
	return bitset.FromWords(len(ba)*64, ba).AppendKey(dst)
}

// relDiff and scaleRatio mirror maxent's guards.
func relDiff(target, est float64) float64 {
	d := math.Abs(target - est)
	if math.Abs(target) < 1e-12 {
		return d
	}
	return d / math.Abs(target)
}

func scaleRatio(target, est float64) float64 {
	const floor = 1e-12
	if target < floor {
		target = floor
	}
	if est < floor {
		est = floor
	}
	return target / est
}
