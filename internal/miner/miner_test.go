package miner

import (
	"math"
	"testing"

	"sirum/internal/candgen"
	"sirum/internal/datagen"
	"sirum/internal/dataset"
	"sirum/internal/engine"
	"sirum/internal/maxent"
	"sirum/internal/metrics"
	"sirum/internal/rule"
)

func testCluster() *engine.SimBackend {
	return engine.NewSimBackend(engine.Config{Executors: 2, CoresPerExecutor: 2, Partitions: 4})
}

func mineFlights(t *testing.T, opt Options) *Result {
	t.Helper()
	c := testCluster()
	defer c.Close()
	res, err := New(c, datagen.Flights(), opt).Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFlightsTable12 pins the headline worked example: exhaustive mining of
// k=3 rules over the flight data recovers exactly the rule set of Table 1.2
// — (*,*,London) 15.3/4, (Fri,*,*) 18/2, (Sat,*,*) 16/2 — in that order.
func TestFlightsTable12(t *testing.T) {
	res := mineFlights(t, Options{Variant: Baseline, K: 3, SampleSize: 0})
	if len(res.Rules) != 3 {
		t.Fatalf("mined %d rules, want 3", len(res.Rules))
	}
	ds := datagen.Flights()
	want := []struct {
		format string
		avg    float64
		count  int64
	}{
		{"(*, *, London)", 15.25, 4},
		{"(Fri, *, *)", 18, 2},
		{"(Sat, *, *)", 16, 2},
	}
	for i, w := range want {
		got := res.Rules[i]
		if f := got.Rule.Format(ds.Dicts); f != w.format {
			t.Errorf("rule %d = %s, want %s", i+1, f, w.format)
		}
		if math.Abs(got.Avg-w.avg) > 1e-6 {
			t.Errorf("rule %d avg = %v, want %v", i+1, got.Avg, w.avg)
		}
		if got.Count != w.count {
			t.Errorf("rule %d count = %d, want %d", i+1, got.Count, w.count)
		}
		if got.Gain <= 0 {
			t.Errorf("rule %d gain = %v", i+1, got.Gain)
		}
	}
	// KL must decrease monotonically along the trajectory for this example.
	for i := 1; i < len(res.KLTrajectory); i++ {
		if res.KLTrajectory[i] > res.KLTrajectory[i-1]+1e-9 {
			t.Errorf("KL increased at iteration %d: %v", i, res.KLTrajectory)
		}
	}
	if res.InfoGain <= 0 {
		t.Errorf("info gain = %v", res.InfoGain)
	}
	if res.Iterations != 3 {
		t.Errorf("iterations = %d", res.Iterations)
	}
}

// TestVariantsAgreeOnRules checks the result-equivalence the thesis relies
// on: RCT, FastPruning and FastAncestor are pure performance optimizations,
// so with the same seed they must select the same rules as Baseline.
func TestVariantsAgreeOnRules(t *testing.T) {
	ds := datagen.GDELT(3000, 42)
	baseline := mineDataset(t, ds, Options{Variant: Baseline, K: 5, SampleSize: 16, Seed: 9})
	for _, v := range []Variant{Naive, RCT, FastPruning, FastAncestor} {
		got := mineDataset(t, ds, Options{Variant: v, K: 5, SampleSize: 16, Seed: 9})
		if len(got.Rules) != len(baseline.Rules) {
			t.Fatalf("%v mined %d rules, baseline %d", v, len(got.Rules), len(baseline.Rules))
		}
		for i := range got.Rules {
			if !got.Rules[i].Rule.Equal(baseline.Rules[i].Rule) {
				t.Errorf("%v rule %d = %v, baseline %v", v, i, got.Rules[i].Rule, baseline.Rules[i].Rule)
			}
		}
		if math.Abs(got.KL-baseline.KL) > 1e-6 {
			t.Errorf("%v final KL %v != baseline %v", v, got.KL, baseline.KL)
		}
	}
}

func mineDataset(t *testing.T, ds *dataset.Dataset, opt Options) *Result {
	t.Helper()
	c := testCluster()
	defer c.Close()
	res, err := New(c, ds, opt).Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDistributedScalingMatchesOracle replays the mined rule list through
// the single-node reference scaler and compares the resulting divergence —
// the distributed scalers must compute the same maximum-entropy fit.
func TestDistributedScalingMatchesOracle(t *testing.T) {
	ds := datagen.Income(2000, 5)
	for _, v := range []Variant{Baseline, RCT} {
		res := mineDataset(t, ds, Options{Variant: v, K: 4, SampleSize: 16, Seed: 3})
		_, work := maxent.NewTransform(ds.Measure)
		oracle := maxent.NewRCTScaler(ds, work, len(res.Rules)+2)
		if _, err := oracle.AddRule(rule.AllWildcards(ds.NumDims())); err != nil {
			t.Fatal(err)
		}
		for _, mr := range res.Rules {
			if _, err := oracle.AddRule(mr.Rule); err != nil {
				t.Fatal(err)
			}
		}
		kl := maxent.KLDivergence(work, oracle.Mhat())
		if math.Abs(kl-res.KL) > 0.02*math.Max(kl, res.KL)+1e-9 {
			t.Errorf("%v: distributed KL %v vs oracle %v", v, res.KL, kl)
		}
	}
}

// TestRCTMatchesNaiveScaling compares the two distributed scalers tightly on
// the same rule sequence.
func TestRCTMatchesNaiveScaling(t *testing.T) {
	ds := datagen.Flights()
	_, work := maxent.NewTransform(ds.Measure)
	run := func(useRCT bool) []float64 {
		c := testCluster()
		defer c.Close()
		mhat := make([]float64, len(work))
		for i := range mhat {
			mhat[i] = 1
		}
		blocks := engine.BlocksFromColumns(ds.Dims, work, mhat, 3)
		data, err := engine.CacheTuples(c, blocks)
		if err != nil {
			t.Fatal(err)
		}
		var s distScaler
		if useRCT {
			s = newRCTDistScaler(c, data, ds.ApproxBytes(), 1e-9, 8)
		} else {
			s = newNaiveDistScaler(c, data, ds.ApproxBytes(), 1e-9, false, false)
		}
		rules := [][]rule.Rule{
			{rule.AllWildcards(3)},
			{mustParse(t, ds, "*", "*", "London")},
			{mustParse(t, ds, "Fri", "*", "*"), mustParse(t, ds, "Sat", "*", "*")},
		}
		for _, rs := range rules {
			if err := s.AddRules(rs); err != nil {
				t.Fatal(err)
			}
		}
		// Gather the final estimates from the blocks.
		out := make([]float64, len(work))
		for bi := 0; bi < data.NumBlocks(); bi++ {
			b, err := data.Get(bi)
			if err != nil {
				t.Fatal(err)
			}
			copy(out[b.Start:], b.Mhat)
		}
		return out
	}
	naive := run(false)
	rct := run(true)
	for i := range naive {
		if math.Abs(naive[i]-rct[i]) > 1e-6 {
			t.Fatalf("mhat[%d]: naive %v vs rct %v", i, naive[i], rct[i])
		}
	}
}

func mustParse(t *testing.T, ds *dataset.Dataset, vals ...string) rule.Rule {
	t.Helper()
	r, err := rule.Parse(vals, ds)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestMultiRuleDisjointness: rules added in the same iteration must be
// mutually disjoint (Section 4.4), and multi-rule needs fewer iterations.
func TestMultiRuleDisjointness(t *testing.T) {
	ds := datagen.Income(3000, 11)
	c := testCluster()
	defer c.Close()
	res, err := New(c, ds, Options{Variant: MultiRule, K: 6, SampleSize: 32, Seed: 5, RulesPerIter: 2, TopPercent: 1, MinGainRatio: 0.01}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= len(res.Rules) && len(res.Rules) > 1 {
		t.Errorf("multi-rule used %d iterations for %d rules", res.Iterations, len(res.Rules))
	}
	// Reconstruct iteration boundaries from iterations count is lossy;
	// instead check pairwise disjointness among consecutive pairs that the
	// selection invariant guarantees: any two rules selected in the same
	// call are disjoint. With l=2, rules 2i and 2i+1 may pair up; verify
	// via gain ordering is weaker, so re-run selection logic directly.
	base := mineDataset(t, ds, Options{Variant: Baseline, K: 6, SampleSize: 32, Seed: 5})
	if res.KL > base.KL*3+1 {
		t.Errorf("multi-rule KL %v wildly worse than baseline %v", res.KL, base.KL)
	}
}

// TestMultiRuleSelectionInvariants drives selectRules directly.
func TestMultiRuleSelectionInvariants(t *testing.T) {
	ds := datagen.Flights()
	c := testCluster()
	defer c.Close()
	opt := Options{Variant: MultiRule, K: 4, RulesPerIter: 3, TopPercent: 1.0, MinGainRatio: 0.0001, TopPoolSize: 64}.withDefaults()
	_, work := maxent.NewTransform(ds.Measure)
	mhat := make([]float64, len(work))
	avg := ds.MeanMeasure()
	for i := range mhat {
		mhat[i] = avg
	}
	blocks := engine.BlocksFromColumns(ds.Dims, work, mhat, 2)
	data, err := engine.CacheTuples(c, blocks)
	if err != nil {
		t.Fatal(err)
	}
	codec := candgen.NewStringCodec(3)
	q := &query[string]{
		p:     &Prep{c: c, ds: ds, dataBytes: ds.ApproxBytes()},
		c:     engine.NewQueryScope(c),
		opt:   opt,
		codec: codec,
		data:  data,
	}
	cands, n, err := q.generateCandidates([][]int{{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	picked, err := q.selectRules(cands, n, map[string]bool{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) < 2 {
		t.Fatalf("picked %d rules", len(picked))
	}
	for i := 0; i < len(picked); i++ {
		for j := i + 1; j < len(picked); j++ {
			ri, err := codec.DecodeRule(picked[i].Key, nil)
			if err != nil {
				t.Fatal(err)
			}
			rj, err := codec.DecodeRule(picked[j].Key, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !ri.Disjoint(rj) {
				t.Errorf("picked rules %v and %v overlap", ri.Format(ds.Dicts), rj.Format(ds.Dicts))
			}
		}
	}
	for i := 1; i < len(picked); i++ {
		if picked[i].Gain > picked[0].Gain {
			t.Error("extra rule has higher gain than the top rule")
		}
	}
}

// TestTargetKLRunsPastK: the l-rule* mode keeps adding rules until the KL
// target is met.
func TestTargetKLRunsPastK(t *testing.T) {
	ds := datagen.Income(2000, 21)
	base := mineDataset(t, ds, Options{Variant: Baseline, K: 6, SampleSize: 16, Seed: 2})
	star := mineDataset(t, ds, Options{Variant: MultiRule, K: 6, SampleSize: 16, Seed: 2,
		TargetKL: base.KL, MaxRules: 24, TopPercent: 1, MinGainRatio: 0.01})
	if star.KL > base.KL*1.05+1e-9 {
		t.Errorf("2-rule* KL %v did not reach baseline %v", star.KL, base.KL)
	}
}

// TestOnSampleData exercises SIRUM on sample data (Section 4.5): mining a
// fraction is cheaper and the full-data information gain remains positive.
func TestOnSampleData(t *testing.T) {
	ds := datagen.Income(6000, 31)
	full := mineDataset(t, ds, Options{Variant: Optimized, K: 4, SampleSize: 16, Seed: 4})
	frac := mineDataset(t, ds, Options{Variant: Optimized, K: 4, SampleSize: 16, Seed: 4,
		SampleFraction: 0.2, EvaluateOnFullData: true})
	if frac.InfoGain <= 0 {
		t.Errorf("on-sample info gain = %v", frac.InfoGain)
	}
	if full.InfoGain <= 0 {
		t.Errorf("full info gain = %v", full.InfoGain)
	}
	// The sample run must scan fewer rows overall.
	if frac.Counters[metrics.CtrScanRows] > full.Counters[metrics.CtrScanRows] {
		t.Log("scan counters:", frac.Counters[metrics.CtrScanRows], full.Counters[metrics.CtrScanRows])
	}
}

func TestPriorRulesSeedTheModel(t *testing.T) {
	ds := datagen.Flights()
	prior := []rule.Rule{mustParse(t, ds, "*", "SF", "*")}
	c := testCluster()
	defer c.Close()
	res, err := New(c, ds, Options{Variant: Baseline, K: 2, PriorRules: prior}).Run()
	if err != nil {
		t.Fatal(err)
	}
	// The prior rule must not be re-selected.
	for _, mr := range res.Rules {
		if mr.Rule.Equal(prior[0]) {
			t.Error("prior rule re-selected")
		}
	}
	if len(res.Rules) != 2 {
		t.Errorf("mined %d rules", len(res.Rules))
	}
}

func TestResetScalingStillConverges(t *testing.T) {
	res := mineFlights(t, Options{Variant: Baseline, K: 2, ResetScaling: true})
	reg := mineFlights(t, Options{Variant: Baseline, K: 2})
	if len(res.Rules) != len(reg.Rules) {
		t.Fatalf("reset mined %d rules, regular %d", len(res.Rules), len(reg.Rules))
	}
	for i := range res.Rules {
		if !res.Rules[i].Rule.Equal(reg.Rules[i].Rule) {
			t.Errorf("reset rule %d differs", i)
		}
	}
	// Reset scaling does strictly more loop work.
	if res.Counters[metrics.CtrScalingLoops] < reg.Counters[metrics.CtrScalingLoops] {
		t.Errorf("reset loops %d < regular %d", res.Counters[metrics.CtrScalingLoops], reg.Counters[metrics.CtrScalingLoops])
	}
}

func TestPruneRedundantAncestors(t *testing.T) {
	// Build data where attribute 0 determines attribute 1, so (v, w, *) and
	// (v, *, *) have identical supports and the ancestor is redundant.
	b := dataset.NewBuilder(dataset.Schema{DimNames: []string{"a", "b", "c"}, MeasureName: "m"})
	rows := [][]string{
		{"a0", "b0", "c0"}, {"a0", "b0", "c1"}, {"a0", "b0", "c0"},
		{"a1", "b1", "c0"}, {"a1", "b1", "c1"}, {"a1", "b1", "c1"},
	}
	for i, r := range rows {
		if err := b.Add(r, float64(i%2)*3+1); err != nil {
			t.Fatal(err)
		}
	}
	ds := b.MustBuild()
	with := mineDataset(t, ds, Options{Variant: Baseline, K: 2, PruneRedundantAncestors: true})
	without := mineDataset(t, ds, Options{Variant: Baseline, K: 2})
	// Quality must not degrade: the kept child has the same gain.
	if with.KL > without.KL+1e-6 {
		t.Errorf("pruning degraded KL: %v vs %v", with.KL, without.KL)
	}
	if with.Candidates >= without.Candidates {
		t.Errorf("pruning did not reduce candidates: %d vs %d", with.Candidates, without.Candidates)
	}
}

func TestEmptyDatasetRejected(t *testing.T) {
	b := dataset.NewBuilder(dataset.Schema{DimNames: []string{"a"}, MeasureName: "m"})
	ds := b.MustBuild()
	c := testCluster()
	defer c.Close()
	if _, err := New(c, ds, Options{K: 1}).Run(); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestTinySampleFractionRejected(t *testing.T) {
	c := testCluster()
	defer c.Close()
	if _, err := New(c, datagen.Flights(), Options{K: 1, SampleFraction: 1e-9}).Run(); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestMiningStopsWhenNothingInformative(t *testing.T) {
	// Constant measure: no rule has positive gain after the first.
	b := dataset.NewBuilder(dataset.Schema{DimNames: []string{"a", "b"}, MeasureName: "m"})
	for i := 0; i < 20; i++ {
		if err := b.Add([]string{"x", "y"}, 5); err != nil {
			t.Fatal(err)
		}
	}
	ds := b.MustBuild()
	res := mineDataset(t, ds, Options{Variant: Baseline, K: 5})
	if len(res.Rules) != 0 {
		t.Errorf("mined %d rules from constant data", len(res.Rules))
	}
	if res.KL > 1e-9 {
		t.Errorf("KL = %v on constant data", res.KL)
	}
}

func TestNegativeMeasureHandled(t *testing.T) {
	b := dataset.NewBuilder(dataset.Schema{DimNames: []string{"a", "b"}, MeasureName: "m"})
	vals := []float64{-10, -5, 3, 8, -2, 6, 7, -1}
	for i, v := range vals {
		a, bb := "x", "p"
		if i%2 == 1 {
			a = "y"
		}
		if i >= 4 {
			bb = "q"
		}
		if err := b.Add([]string{a, bb}, v); err != nil {
			t.Fatal(err)
		}
	}
	ds := b.MustBuild()
	res := mineDataset(t, ds, Options{Variant: Optimized, K: 2})
	if len(res.Rules) == 0 {
		t.Fatal("no rules mined from shifted data")
	}
	// The reported averages must be on the original (negative-capable) scale.
	for _, mr := range res.Rules {
		sum, count := mr.Rule.SupportSums(ds)
		want := sum / float64(count)
		if math.Abs(mr.Avg-want) > 1e-6 {
			t.Errorf("rule %v avg = %v, want %v", mr.Rule, mr.Avg, want)
		}
	}
}

func TestPhasesRecorded(t *testing.T) {
	res := mineFlights(t, Options{Variant: Baseline, K: 2})
	for _, phase := range []string{metrics.PhaseRuleGen, metrics.PhaseScaling, metrics.PhaseCandPruning, metrics.PhaseAncestorGen} {
		if res.Phases[phase] <= 0 {
			t.Errorf("phase %s not recorded", phase)
		}
	}
	if res.SimTime <= 0 || res.WallTime <= 0 {
		t.Error("clocks not recorded")
	}
}

// TestNaiveShufflesMoreThanBaseline pins the BJ SIRUM improvement: the
// Naive variant repartitions D per join and must move far more bytes.
func TestNaiveShufflesMoreThanBaseline(t *testing.T) {
	ds := datagen.Income(1500, 17)
	naive := mineDataset(t, ds, Options{Variant: Naive, K: 3, SampleSize: 8, Seed: 2})
	base := mineDataset(t, ds, Options{Variant: Baseline, K: 3, SampleSize: 8, Seed: 2})
	if naive.Counters[metrics.CtrShuffleBytes] <= base.Counters[metrics.CtrShuffleBytes] {
		t.Errorf("naive shuffled %d bytes, baseline %d", naive.Counters[metrics.CtrShuffleBytes], base.Counters[metrics.CtrShuffleBytes])
	}
	if base.Counters[metrics.CtrBroadcastBytes] <= 0 {
		t.Error("baseline did not broadcast")
	}
}

// TestRCTScansFewerRows pins the point of the RCT: iterative scaling stops
// scanning D per loop.
func TestRCTScansFewerRows(t *testing.T) {
	ds := datagen.GDELT(2500, 13)
	base := mineDataset(t, ds, Options{Variant: Baseline, K: 5, SampleSize: 16, Seed: 6})
	rct := mineDataset(t, ds, Options{Variant: RCT, K: 5, SampleSize: 16, Seed: 6})
	baseLoops := base.Counters[metrics.CtrScalingLoops]
	rctLoops := rct.Counters[metrics.CtrScalingLoops]
	if baseLoops == 0 || rctLoops == 0 {
		t.Fatal("loop counters missing")
	}
	// Same convergence work, but the naive variant scans D on every loop;
	// compare wall time of the scaling phase instead of raw loop counts.
	if rct.Phases[metrics.PhaseScaling] >= base.Phases[metrics.PhaseScaling] {
		t.Logf("note: RCT scaling %v vs baseline %v (tiny data; informational)",
			rct.Phases[metrics.PhaseScaling], base.Phases[metrics.PhaseScaling])
	}
}

func TestVariantString(t *testing.T) {
	if Optimized.String() != "Optimized" || Naive.String() != "Naive" {
		t.Error("variant names wrong")
	}
	if Variant(99).String() == "" {
		t.Error("unknown variant has empty name")
	}
	if len(Variants()) != 7 {
		t.Error("Variants() incomplete")
	}
}
