package miner

import (
	"testing"

	"sirum/internal/datagen"
	"sirum/internal/dataset"
)

func TestIncrementalFirstBatchMines(t *testing.T) {
	c := testCluster()
	defer c.Close()
	inc := NewIncremental(c, Options{Variant: Optimized, K: 3, SampleSize: 0})
	res, err := inc.Append(datagen.Flights())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Remined {
		t.Error("first batch must trigger a full mine")
	}
	if len(res.Rules) != 3 || res.Rows != 14 {
		t.Errorf("rules=%d rows=%d", len(res.Rules), res.Rows)
	}
	if len(inc.Rules()) != 3 {
		t.Errorf("Rules() = %d", len(inc.Rules()))
	}
}

func TestIncrementalRefitOnSimilarBatch(t *testing.T) {
	c := testCluster()
	defer c.Close()
	inc := NewIncremental(c, Options{Variant: Optimized, K: 3, SampleSize: 16, Seed: 3})
	base := datagen.Income(3000, 5)
	if _, err := inc.Append(base); err != nil {
		t.Fatal(err)
	}
	// A batch from the same distribution should refit without re-mining.
	more := datagen.Income(600, 99)
	res, err := inc.Append(more)
	if err != nil {
		t.Fatal(err)
	}
	if res.Remined {
		t.Error("same-distribution batch should not trigger a re-mine")
	}
	if res.Rows != 3600 {
		t.Errorf("rows = %d", res.Rows)
	}
	// Aggregates must reflect the merged data.
	for _, mr := range res.Rules {
		if mr.Count <= 0 {
			t.Errorf("rule %v count %d", mr.Rule, mr.Count)
		}
	}
}

func TestIncrementalReminesOnDrift(t *testing.T) {
	c := testCluster()
	defer c.Close()
	inc := NewIncremental(c, Options{Variant: Optimized, K: 3, SampleSize: 16, Seed: 3})
	inc.RemineFactor = 1.05 // eager
	if _, err := inc.Append(datagen.Income(2000, 5)); err != nil {
		t.Fatal(err)
	}
	// A drastically different batch (different planted structure via TLC's
	// schema won't concat; use income with a shifted seed and inverted
	// measure to force drift).
	drift := datagen.Income(4000, 77)
	for i := range drift.Measure {
		drift.Measure[i] = 1 - drift.Measure[i]
	}
	res, err := inc.Append(drift)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Remined {
		t.Error("drifted batch should trigger a re-mine")
	}
}

func TestIncrementalEmptyFirstBatch(t *testing.T) {
	c := testCluster()
	defer c.Close()
	inc := NewIncremental(c, Options{K: 2})
	empty := dataset.NewBuilder(dataset.Schema{DimNames: []string{"a"}, MeasureName: "m"}).MustBuild()
	if _, err := inc.Append(empty); err == nil {
		t.Error("empty first batch accepted")
	}
}

func TestIncrementalMismatchedBatch(t *testing.T) {
	c := testCluster()
	defer c.Close()
	inc := NewIncremental(c, Options{Variant: Optimized, K: 2, SampleSize: 0})
	if _, err := inc.Append(datagen.Flights()); err != nil {
		t.Fatal(err)
	}
	other := dataset.NewBuilder(dataset.Schema{DimNames: []string{"x"}, MeasureName: "m"})
	if err := other.Add([]string{"v"}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Append(other.MustBuild()); err == nil {
		t.Error("mismatched schema batch accepted")
	}
}
