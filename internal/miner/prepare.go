package miner

import (
	"cmp"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sirum/internal/candgen"
	"sirum/internal/cube"
	"sirum/internal/dataset"
	"sirum/internal/engine"
	"sirum/internal/maxent"
	"sirum/internal/rule"
	"sirum/internal/stats"
)

// PrepOptions configures the prepare-once phase of a mining session: the
// work that depends only on the dataset, not on any particular query.
type PrepOptions struct {
	// SampleSize is |s| for candidate pruning; the sample is drawn once so
	// that every query (and every variant, as in the thesis' evaluation)
	// sees the same candidate space. 0 prepares for exhaustive exploration.
	SampleSize int
	// Seed drives the pruning sample and the Bernoulli data sample
	// (default 1).
	Seed int64
	// Partitions overrides the number of data blocks (default: backend's).
	Partitions int
	// SampleFraction, in (0,1), prepares a Bernoulli sample of the data
	// instead of the data itself (SIRUM on sample data, Section 4.5).
	SampleFraction float64
	// DisableLCAMemo turns off the cross-iteration/cross-query reuse of the
	// estimate-independent LCA aggregates, restoring the paper-faithful
	// behaviour of recomputing candidate pruning on every iteration. The
	// experiments that compare pruning strategies by time need it off;
	// serving sessions want it on (the default).
	DisableLCAMemo bool
}

func (o PrepOptions) withDefaults() PrepOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// memoMaxEntries caps the LCA memo's row-incidence count (one int32 each):
// beyond it the memo would rival the data in size, so queries fall back to
// per-iteration recomputation.
const memoMaxEntries = 32 << 20

// prepSeq names prepared datasets uniquely in the backend's pool.
var prepSeq atomic.Int64

// Prep is the prepare-once state of a mining session over one dataset on
// one (possibly shared) backend: the measure transform, the partitioned
// blocks cached in the backend's pool, the pruning sample with its inverted
// index, and (lazily) the memoized LCA structure. Many queries — Mine with
// different K, variants, priors — run against one Prep concurrently: all
// prepared state is immutable after construction, and every query works on
// a private fork of the estimate columns with a private metrics scope.
type Prep struct {
	c    engine.Backend
	ds   *dataset.Dataset // the data queries run against (the Bernoulli sample if SampleFraction is set)
	full *dataset.Dataset // the unsampled dataset for EvaluateOnFullData; nil without SampleFraction
	opt  PrepOptions

	transform maxent.Transform
	work      []float64 // transformed measure column
	dataBytes int64
	parts     int
	sample    *candgen.Sample // nil when SampleSize is 0
	packer    *rule.Packer    // non-nil when the schema packs into 64-bit keys
	poolID    string

	indexOnce sync.Once
	index     *candgen.InvertedIndex // built on first indexed use; nil without a sample

	loadMu sync.Mutex // serializes (re)loading the blocks into the pool

	memoMu sync.Mutex
	memo   any // *lcaMemo[K] in the representation mineScoped selects
}

// Prepare runs the preparation phase on c: measure transform, optional
// Bernoulli data sample, pruning sample + inverted index, and the block load
// into the backend's prepared-dataset pool. The returned Prep serves many
// queries; Drop releases the pooled blocks when the session ends.
func Prepare(c engine.Backend, ds *dataset.Dataset, opt PrepOptions) (*Prep, error) {
	p, err := prepare(c, ds, opt)
	if err != nil {
		return nil, err
	}
	// Load eagerly so the first query pays no preparation cost.
	_, release, err := p.ensureData(c)
	if err != nil {
		return nil, err
	}
	release()
	return p, nil
}

// prepare builds the Prep without loading blocks: the load happens lazily in
// ensureData, charged to whichever query triggers it (for cold runs, the one
// and only query, so its result covers the whole run).
func prepare(c engine.Backend, ds *dataset.Dataset, opt PrepOptions) (*Prep, error) {
	if s, ok := c.(*engine.QueryScope); ok {
		c = s.Base()
	}
	opt = opt.withDefaults()
	if ds.NumRows() == 0 {
		return nil, fmt.Errorf("miner: empty dataset")
	}
	p := &Prep{c: c, ds: ds, opt: opt}

	// SIRUM on sample data (Section 4.5): replace D with a Bernoulli sample
	// sized to memory; keep the original around for final evaluation.
	if opt.SampleFraction > 0 && opt.SampleFraction < 1 {
		p.full = ds
		p.ds = ds.SampleFraction(stats.NewRand(opt.Seed+1), opt.SampleFraction)
		if p.ds.NumRows() == 0 {
			return nil, fmt.Errorf("miner: sample fraction %v left no rows", opt.SampleFraction)
		}
	}

	// Measure preprocessing (Section 2.2).
	p.transform, p.work = maxent.NewTransform(p.ds.Measure)
	p.dataBytes = p.ds.ApproxBytes()
	p.parts = opt.Partitions
	if p.parts <= 0 {
		p.parts = c.Config().Partitions
	}

	// The pruning sample is drawn once; queries whose sample parameters
	// match reuse it (and the lazily built inverted index).
	if opt.SampleSize > 0 {
		p.sample = candgen.DrawSample(p.ds, stats.NewRand(opt.Seed), opt.SampleSize)
	}
	// Packed single-word rule keys whenever the dictionaries fit; queries
	// fall back to string keys otherwise. Recomputed on every (re)prepare, so
	// appends that grow a dictionary past a field boundary stay correct.
	p.packer, _ = rule.NewPacker(p.ds.DomainSizes())
	p.poolID = fmt.Sprintf("prep-%d", prepSeq.Add(1))
	return p, nil
}

// indexFor returns the per-attribute inverted index over the prepared
// sample (Section 4.2), building it exactly once on first indexed use —
// variants that never consult the index never pay for it.
func (p *Prep) indexFor() *candgen.InvertedIndex {
	p.indexOnce.Do(func() {
		if p.sample != nil {
			p.index = candgen.BuildIndex(p.sample)
		}
	})
	return p.index
}

// Dataset returns the data queries run against (the Bernoulli sample when
// SampleFraction is set).
func (p *Prep) Dataset() *dataset.Dataset { return p.ds }

// Backend returns the shared substrate the session runs on.
func (p *Prep) Backend() engine.Backend { return p.c }

// Options returns the effective preparation options.
func (p *Prep) Options() PrepOptions { return p.opt }

// Mine runs one query against the prepared state on a fresh metrics scope.
// It is safe to call concurrently.
func (p *Prep) Mine(opt Options) (*Result, error) {
	qc := engine.NewQueryScope(p.c)
	// The query's operator metrics fold into the substrate's lifetime
	// registry (even on error — the work happened), so session stats see
	// every query.
	defer qc.Finish()
	return p.mineScoped(qc, opt.withDefaults(), time.Now(), qc.SimTime())
}

// Drop releases the pooled blocks and the memo. Queries already in flight
// finish (they hold forks); later queries re-prepare on demand.
func (p *Prep) Drop() {
	p.c.Pool().Remove(p.poolID)
	p.memoMu.Lock()
	p.memo = nil
	p.memoMu.Unlock()
}

// ensureData returns the canonical cached blocks with a pool reference held
// (callers must invoke the returned release). If the pool evicted them — a
// shared backend holds only so many prepared datasets — they are rebuilt,
// charging the load to qc.
func (p *Prep) ensureData(qc engine.Backend) (*engine.CachedData, func(), error) {
	pool := p.c.Pool()
	if cd, ref, ok := pool.Acquire(p.poolID); ok {
		return cd, ref.Release, nil
	}
	p.loadMu.Lock()
	defer p.loadMu.Unlock()
	if cd, ref, ok := pool.Acquire(p.poolID); ok {
		return cd, ref.Release, nil
	}
	blocks := engine.BlocksFromColumns(p.ds.Dims, p.work, nil, p.parts)
	// Initial read from the distributed file system.
	qc.ChargeDiskRead(p.dataBytes)
	data, err := engine.CacheTuples(p.c, blocks)
	if err != nil {
		return nil, nil, err
	}
	data, ref := pool.Put(p.poolID, data)
	return data, ref.Release, nil
}

// memoEligible reports whether the prepared LCA memo may serve this query:
// memoization on, the query uses the prepared candidate space, and the memo
// would not dwarf the data.
func (p *Prep) memoEligible(opt Options, sample *candgen.Sample) bool {
	if p.opt.DisableLCAMemo {
		return false
	}
	if opt.SampleSize != p.opt.SampleSize {
		return false
	}
	if p.sample != nil {
		if sample != p.sample {
			return false
		}
		if int64(p.sample.Size())*int64(p.ds.NumRows()) > memoMaxEntries {
			return false
		}
	} else if int64(p.ds.NumRows()) > memoMaxEntries {
		// Exhaustive memo: one incidence per row plus one key per distinct
		// tuple — the same cap applies.
		return false
	}
	return true
}

// memoFor returns the shared LCA memo, building it from q's fork on first
// use (one builder at a time; concurrent first queries wait). The memo is
// keyed in the representation mineScoped selects; that choice is a function
// of the prepared dataset, so every query of one Prep agrees on K.
func memoFor[K cmp.Ordered](p *Prep, q *query[K]) (*lcaMemo[K], error) {
	p.memoMu.Lock()
	defer p.memoMu.Unlock()
	if p.memo != nil {
		m, ok := p.memo.(*lcaMemo[K])
		if !ok {
			return nil, fmt.Errorf("miner: internal: LCA memo key representation mismatch")
		}
		return m, nil
	}
	memo, err := buildLCAMemo(q.c, q.data, p.sample, p.indexFor(), q.codec)
	if err != nil {
		return nil, err
	}
	p.memo = memo
	return memo, nil
}

// lcaMemo caches, per block, the estimate-independent part of the LCA (or
// exhaustive) candidate aggregates: each distinct candidate key with its
// measure sum, pair count and covered-row incidence list. Keys, sums and
// counts never change between iterations or queries; only the estimate sums
// do, and those are recomputed per round as a gather over the query fork's
// Mhat column — the prepare-once payoff that replaces the full LCA
// recomputation of every round.
type lcaMemo[K cmp.Ordered] struct {
	blocks []lcaMemoBlock[K]
}

type lcaMemoBlock[K cmp.Ordered] struct {
	keys     []K
	sumM     []float64
	count    []float64
	rowStart []int32 // CSR offsets into rows, len(keys)+1
	rows     []int32 // block-local row ids, one per (row, sample) incidence
}

// buildLCAMemo scans the data once, producing the same per-block key sets as
// the codec's LCAParts (or ExhaustiveParts when s is nil) while recording
// the row incidences. The codec enumerates incidences in ascending row
// order, matching the summation order of the direct computation, so memoized
// aggregates are bit-identical to recomputed ones.
func buildLCAMemo[K cmp.Ordered](c engine.Backend, data *engine.CachedData, s *candgen.Sample, ix *candgen.InvertedIndex, codec candgen.Codec[K]) (*lcaMemo[K], error) {
	memo := &lcaMemo[K]{blocks: make([]lcaMemoBlock[K], data.NumBlocks())}
	err := data.Scan("miner/lca-memo", false, func(bi int, b *engine.TupleBlock) {
		type entry struct {
			sumM  float64
			count float64
			rows  []int32
		}
		local := make(map[K]*entry)
		codec.ForEachLeafKey(b, s, ix, func(key K, i int) {
			e, ok := local[key]
			if !ok {
				e = &entry{}
				local[key] = e
			}
			e.sumM += b.M[i]
			e.count++
			e.rows = append(e.rows, int32(i))
		})
		mb := lcaMemoBlock[K]{
			keys:     make([]K, 0, len(local)),
			sumM:     make([]float64, 0, len(local)),
			count:    make([]float64, 0, len(local)),
			rowStart: make([]int32, 1, len(local)+1),
		}
		for k, e := range local {
			mb.keys = append(mb.keys, k)
			mb.sumM = append(mb.sumM, e.sumM)
			mb.count = append(mb.count, e.count)
			mb.rows = append(mb.rows, e.rows...)
			mb.rowStart = append(mb.rowStart, int32(len(mb.rows)))
		}
		memo.blocks[bi] = mb
	})
	if err != nil {
		return nil, err
	}
	return memo, nil
}

// memoTableParts is lcaMemo.parts into borrowed flat tables — the packed
// replay path. A free function rather than a method because only K = uint64
// has a table representation; generateTableCandidates proves the cast.
func memoTableParts(m *lcaMemo[uint64], c engine.Backend, data *engine.CachedData) (*engine.PColl[*cube.PackedTable], error) {
	out := make([]*cube.PackedTable, data.NumBlocks())
	err := data.Scan("miner/lca-replay", false, func(bi int, b *engine.TupleBlock) {
		mb := &m.blocks[bi]
		local := cube.BorrowTable(c, len(mb.keys))
		for ki, k := range mb.keys {
			var sm float64
			for _, r := range mb.rows[mb.rowStart[ki]:mb.rowStart[ki+1]] {
				sm += b.Mhat[r]
			}
			local.Add(k, cube.Agg{SumM: mb.sumM[ki], SumMhat: sm, Count: mb.count[ki]})
		}
		out[bi] = local
	})
	if err != nil {
		return nil, err
	}
	return engine.NewPColl(out), nil
}

// parts materializes this round's candidate aggregates from the memo and the
// query's current estimates: one scan summing Mhat over each key's covered
// rows.
func (m *lcaMemo[K]) parts(c engine.Backend, data *engine.CachedData) (*engine.PColl[map[K]cube.Agg], error) {
	out := make([]map[K]cube.Agg, data.NumBlocks())
	err := data.Scan("miner/lca-replay", false, func(bi int, b *engine.TupleBlock) {
		mb := &m.blocks[bi]
		local := make(map[K]cube.Agg, len(mb.keys))
		for ki, k := range mb.keys {
			var sm float64
			for _, r := range mb.rows[mb.rowStart[ki]:mb.rowStart[ki+1]] {
				sm += b.Mhat[r]
			}
			local[k] = cube.Agg{SumM: mb.sumM[ki], SumMhat: sm, Count: mb.count[ki]}
		}
		out[bi] = local
	})
	if err != nil {
		return nil, err
	}
	return engine.NewPColl(out), nil
}
