package miner

import (
	"fmt"

	"sirum/internal/dataset"
	"sirum/internal/engine"
	"sirum/internal/maxent"
	"sirum/internal/rule"
)

// Incremental maintains an informative rule list as new data arrives — the
// streaming SIRUM sketched in the thesis' future work (Chapter 7). Each
// appended batch is folded into the accumulated dataset and the existing
// rule list is *refit* (iterative scaling only — two scans per rule with the
// RCT, no candidate generation). When the refit divergence drifts past
// RemineFactor times the divergence measured right after the last full mine,
// the rule list is considered stale and is mined from scratch.
type Incremental struct {
	c    engine.Backend
	opt  Options
	prep *Prep // optional prepared state for full re-mines (see UsePrep)

	data      *dataset.Dataset
	rules     []rule.Rule // includes the all-wildcards rule first
	baseRatio float64     // KL / baseline-KL right after the last full mine
	lastRes   *Result

	// RemineFactor triggers a full re-mine when the refit's share of
	// unexplained divergence (refit KL divided by the all-wildcards
	// baseline KL on the same data) exceeds RemineFactor times the share
	// right after the last full mine (default 1.5). Lower values re-mine
	// more eagerly. The normalization makes the trigger insensitive to the
	// overall divergence shifting as batches mix distributions.
	RemineFactor float64
}

// IncrementalResult reports one Append.
type IncrementalResult struct {
	// Remined is true when the batch triggered a full mining pass.
	Remined bool
	// KL is the divergence of the current rule list on the accumulated
	// data (after refit or re-mine).
	KL float64
	// Rules is the current rule list (excluding the all-wildcards rule),
	// with aggregates recomputed on the accumulated data.
	Rules []MinedRule
	// Rows is the accumulated dataset size.
	Rows int
}

// NewIncremental builds an incremental miner. opt configures the full mining
// passes (the same options Run accepts).
func NewIncremental(c engine.Backend, opt Options) *Incremental {
	return &Incremental{c: c, opt: opt.withDefaults(), RemineFactor: 1.5}
}

// Seed installs already-loaded data without mining it, so a prepare-once
// session can hand its base dataset to the incremental maintainer: the first
// Append then folds into the seed (and mines the union) instead of starting
// from the batch alone.
func (inc *Incremental) Seed(ds *dataset.Dataset) { inc.data = ds }

// SetOptions replaces the options used by future refits and full re-mines.
func (inc *Incremental) SetOptions(opt Options) { inc.opt = opt.withDefaults() }

// Options returns the options in effect for refits and full re-mines, with
// defaults applied. Callers that SetOptions speculatively (the session
// layer's Append) capture this first so a failed maintenance pass can be
// rolled back to the last good configuration.
func (inc *Incremental) Options() Options { return inc.opt }

// Data returns the accumulated dataset (nil before any Seed/Append).
func (inc *Incremental) Data() *dataset.Dataset { return inc.data }

// UsePrep directs full re-mines at an existing prepared session instead of
// a cold run, so the session layer's Append does not load the grown data
// twice. The prep is consulted only while its Dataset matches the
// accumulated data; pass nil to revert to cold re-mines.
func (inc *Incremental) UsePrep(p *Prep) { inc.prep = p }

// Rules returns the current rule list (excluding the leading all-wildcards
// rule).
func (inc *Incremental) Rules() []rule.Rule {
	if len(inc.rules) == 0 {
		return nil
	}
	return inc.rules[1:]
}

// Append folds a batch into the accumulated data, refits or re-mines, and
// reports the state.
func (inc *Incremental) Append(batch *dataset.Dataset) (*IncrementalResult, error) {
	if batch.NumRows() == 0 && inc.data == nil {
		return nil, fmt.Errorf("miner: first batch is empty")
	}
	if inc.data == nil {
		inc.data = batch
	} else {
		merged, err := inc.data.Concat(batch)
		if err != nil {
			return nil, fmt.Errorf("miner: appending batch: %w", err)
		}
		inc.data = merged
	}
	return inc.Maintain()
}

// Maintain refits or re-mines the rule list on the current accumulated data
// (which the caller may have grown externally via Seed — the session layer
// concatenates and re-prepares first so a failed preparation leaves the
// incremental state untouched). On error the rule list is unchanged.
func (inc *Incremental) Maintain() (*IncrementalResult, error) {
	if inc.data == nil || inc.data.NumRows() == 0 {
		return nil, fmt.Errorf("miner: no data to maintain")
	}
	// Nothing mined yet: full mine.
	if len(inc.rules) == 0 {
		return inc.remine()
	}

	// Refit: recompute the maximum-entropy fit of the existing rules on the
	// grown data. Rules may have lost their support entirely (values absent
	// from new reality) — drop those.
	refitKL, kept, err := inc.refit()
	if err != nil {
		return nil, err
	}
	ratio := klRatio(refitKL, inc.baselineKL())
	if len(kept) != len(inc.rules) || ratio > inc.RemineFactor*inc.baseRatio {
		return inc.remine()
	}
	inc.rules = kept
	out := &IncrementalResult{KL: refitKL, Rows: inc.data.NumRows()}
	out.Rules, err = inc.describeRules()
	if err != nil {
		return nil, err
	}
	return out, nil
}

// refit runs the RCT scaler over the accumulated data with the current rule
// list and returns the divergence plus the rules that still have support.
func (inc *Incremental) refit() (float64, []rule.Rule, error) {
	_, work := maxent.NewTransform(inc.data.Measure)
	s := maxent.NewRCTScaler(inc.data, work, len(inc.rules)+1)
	s.Epsilon = inc.opt.Epsilon
	kept := make([]rule.Rule, 0, len(inc.rules))
	for _, r := range inc.rules {
		if _, err := s.AddRule(r); err != nil {
			// Empty support on the grown data: drop the rule, keep going.
			continue
		}
		kept = append(kept, r)
	}
	return maxent.KLDivergence(work, s.Mhat()), kept, nil
}

// remine runs a full mining pass on the accumulated data — as a query
// against the caller-provided prepared state when it matches, cold
// otherwise.
func (inc *Incremental) remine() (*IncrementalResult, error) {
	var res *Result
	var err error
	if inc.prep != nil && inc.prep.Dataset() == inc.data {
		res, err = inc.prep.Mine(inc.opt)
	} else {
		res, err = New(inc.c, inc.data, inc.opt).Run()
	}
	if err != nil {
		return nil, err
	}
	inc.lastRes = res
	inc.baseRatio = klRatio(res.KL, inc.baselineKL())
	inc.rules = make([]rule.Rule, 0, len(res.Rules)+1)
	inc.rules = append(inc.rules, rule.AllWildcards(inc.data.NumDims()))
	for _, mr := range res.Rules {
		inc.rules = append(inc.rules, mr.Rule)
	}
	rules, err := inc.describeRules()
	if err != nil {
		return nil, err
	}
	return &IncrementalResult{Remined: true, KL: res.KL, Rules: rules, Rows: inc.data.NumRows()}, nil
}

// baselineKL returns the divergence of the all-wildcards-only model on the
// accumulated data (the denominator of the drift ratio).
func (inc *Incremental) baselineKL() float64 {
	_, work := maxent.NewTransform(inc.data.Measure)
	avg := 0.0
	for _, v := range work {
		avg += v
	}
	if len(work) > 0 {
		avg /= float64(len(work))
	}
	base := make([]float64, len(work))
	for i := range base {
		base[i] = avg
	}
	return maxent.KLDivergence(work, base)
}

// klRatio is the unexplained-divergence share with a zero-baseline guard.
func klRatio(kl, baseline float64) float64 {
	if baseline <= 1e-15 {
		return 0
	}
	return kl / baseline
}

// describeRules recomputes display aggregates of the current rules on the
// accumulated data.
func (inc *Incremental) describeRules() ([]MinedRule, error) {
	out := make([]MinedRule, 0, len(inc.rules))
	for i, r := range inc.rules {
		if i == 0 {
			continue // the all-wildcards rule is implicit in reports
		}
		sum, count := r.SupportSums(inc.data)
		if count == 0 {
			return nil, fmt.Errorf("miner: kept rule %v lost its support", r)
		}
		out = append(out, MinedRule{Rule: r.Clone(), Avg: sum / float64(count), Count: int64(count)})
	}
	return out, nil
}
