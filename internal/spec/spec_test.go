package spec

import (
	"testing"

	"sirum/internal/dataset"
)

func TestQuerySpecFingerprintStableAndSensitive(t *testing.T) {
	q := QuerySpec{Version: Version, Kind: KindMine, K: 10, SampleSize: 64, Variant: "optimized", Epsilon: 0.01, Seed: 1}
	if q.Fingerprint() != q.Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	same := q
	if same.Fingerprint() != q.Fingerprint() {
		t.Fatal("equal specs produced different fingerprints")
	}
	cases := map[string]QuerySpec{}
	for name, mut := range map[string]func(*QuerySpec){
		"kind":    func(s *QuerySpec) { s.Kind = KindExplore },
		"k":       func(s *QuerySpec) { s.K = 11 },
		"sample":  func(s *QuerySpec) { s.SampleSize = 32 },
		"variant": func(s *QuerySpec) { s.Variant = "rct" },
		"epsilon": func(s *QuerySpec) { s.Epsilon = 0.02 },
		"seed":    func(s *QuerySpec) { s.Seed = 2 },
		"frac":    func(s *QuerySpec) { s.SampleFraction = 0.5 },
		"groupby": func(s *QuerySpec) { s.GroupBys = 2 },
	} {
		c := q
		mut(&c)
		cases[name] = c
	}
	fps := map[[32]byte]string{q.Fingerprint(): "base"}
	for name, c := range cases {
		fp := c.Fingerprint()
		if prev, dup := fps[fp]; dup {
			t.Errorf("changing %s collided with %s", name, prev)
		}
		fps[fp] = name
	}
}

func TestDatasetSpecFingerprintExcludesEpoch(t *testing.T) {
	base := DatasetSpec{Version: Version, Generator: &GeneratorSource{Name: "income", Rows: 1000, Seed: 1}}
	bumped := base
	bumped.Epoch = 7
	if base.Fingerprint() != bumped.Fingerprint() {
		t.Error("epoch changed the source fingerprint; it must key caches separately")
	}
	other := DatasetSpec{Version: Version, Generator: &GeneratorSource{Name: "income", Rows: 1001, Seed: 1}}
	if base.Fingerprint() == other.Fingerprint() {
		t.Error("different generator rows produced equal fingerprints")
	}
	csv := DatasetSpec{Version: Version, CSV: &CSVSource{SHA256: HashBytes([]byte("a,m\nx,1\n")), Measure: "m"}}
	if base.Fingerprint() == csv.Fingerprint() {
		t.Error("generator and CSV sources collided")
	}
}

func TestSessionKeySeparatesPrep(t *testing.T) {
	ds := DatasetSpec{Version: Version, Generator: &GeneratorSource{Name: "income", Rows: 1000, Seed: 1}}
	p1 := PrepSpec{Version: Version, SampleSize: 16, Seed: 1, Backend: "native", RemineFactor: 1.5}
	p2 := p1
	p2.Seed = 2
	if SessionKey(ds, p1) == SessionKey(ds, p2) {
		t.Error("sessions prepared with different seeds must not share cached results")
	}
	if SessionKey(ds, p1) != SessionKey(ds, p1) {
		t.Error("session key not deterministic")
	}
}

func TestHashDatasetReflectsContent(t *testing.T) {
	build := func(rows []string, ms []float64) *dataset.Dataset {
		b := dataset.NewBuilder(dataset.Schema{DimNames: []string{"a"}, MeasureName: "m"})
		for i, r := range rows {
			if err := b.Add([]string{r}, ms[i]); err != nil {
				t.Fatal(err)
			}
		}
		return b.MustBuild()
	}
	d1 := build([]string{"x", "y"}, []float64{1, 2})
	d2 := build([]string{"x", "y"}, []float64{1, 2})
	d3 := build([]string{"x", "y"}, []float64{1, 3})
	if HashDataset(d1) != HashDataset(d2) {
		t.Error("identical content hashed differently")
	}
	if HashDataset(d1) == HashDataset(d3) {
		t.Error("different measures hashed equal")
	}
}
