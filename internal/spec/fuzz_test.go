package spec_test

// Fuzz coverage for the canonical spec layer. Shard routing places every
// session by its spec fingerprint, so two properties carry the whole
// multi-node design: a fingerprint must survive an encode→decode→encode
// round trip (snapshots and routers exchange specs as JSON), and every
// option permutation that means the same query or dataset must collapse to
// one fingerprint (otherwise equal requests route or cache differently).

import (
	"encoding/json"
	"math"
	"testing"

	"sirum"
	"sirum/internal/spec"
)

// variants rotates the fuzzer's variant selector through every accepted
// spelling, including the empty default.
var variants = []sirum.Variant{
	"", sirum.VariantOptimized, sirum.VariantBaseline, sirum.VariantNaive,
	sirum.VariantRCT, sirum.VariantFastPruning, sirum.VariantFastAncestor,
	sirum.VariantMultiRule,
}

func FuzzSpecFingerprint(f *testing.F) {
	f.Add(10, 64, uint8(0), 0.01, int64(1), 0.0, 5000, "income", 1000, int64(1), int64(0), "d1")
	f.Add(0, 0, uint8(1), 0.0, int64(0), 0.5, 500, "gdelt", 0, int64(0), int64(3), "")
	f.Add(-3, -1, uint8(4), -2.5, int64(-9), 1.5, 0, "", 12, int64(-1), int64(7), "a-b.c_d")
	f.Fuzz(func(t *testing.T, k, sampleSize int, variantSel uint8, epsilon float64,
		seed int64, frac float64, rows int, genName string, genRows int, genSeed, epoch int64, id string) {

		// JSON has no NaN/Inf; specs only ever carry floats that arrived
		// through JSON, so non-finite inputs are out of the domain.
		if math.IsNaN(epsilon) || math.IsInf(epsilon, 0) || math.IsNaN(frac) || math.IsInf(frac, 0) {
			t.Skip("non-finite floats are unrepresentable in the JSON wire format")
		}

		opts := sirum.Options{
			K:              k,
			SampleSize:     sampleSize,
			Variant:        variants[int(variantSel)%len(variants)],
			Epsilon:        epsilon,
			Seed:           seed,
			SampleFraction: frac,
		}
		q, err := opts.Canonical(rows)
		if err != nil {
			t.Fatalf("canonicalizing a known-good variant: %v", err)
		}
		fp := q.Fingerprint()
		if fp != q.Fingerprint() {
			t.Fatal("query fingerprint not deterministic")
		}

		// Encode→decode→encode stability: specs travel as JSON (snapshot
		// journals, router control traffic); the round trip must not move
		// the fingerprint.
		buf, err := json.Marshal(q)
		if err != nil {
			t.Fatalf("encoding query spec: %v", err)
		}
		var q2 spec.QuerySpec
		if err := json.Unmarshal(buf, &q2); err != nil {
			t.Fatalf("decoding query spec: %v", err)
		}
		if q2.Fingerprint() != fp {
			t.Fatalf("query fingerprint drifted across JSON round trip:\n%s", buf)
		}

		// Permutation collapse: spelling the canonical defaults out
		// explicitly means the same query, so it must canonicalize to the
		// same fingerprint as leaving them zero.
		explicit := sirum.Options{
			K:              q.K,
			SampleSize:     q.SampleSize,
			Variant:        sirum.Variant(q.Variant),
			Epsilon:        q.Epsilon,
			Seed:           q.Seed,
			SampleFraction: q.SampleFraction,
		}
		q3, err := explicit.Canonical(rows)
		if err != nil {
			t.Fatalf("re-canonicalizing explicit defaults: %v", err)
		}
		if q3.Fingerprint() != fp {
			t.Fatalf("explicit defaults fingerprinted differently from implicit ones: %+v vs %+v", q3, q)
		}

		// Dataset specs: the fingerprint (= the shard-routing key) must
		// ignore the mutable epoch/chain and survive its own round trip.
		ds := spec.DatasetSpec{
			Version:   spec.Version,
			Generator: &spec.GeneratorSource{Name: genName, Rows: genRows, Seed: genSeed},
		}
		dsFP := ds.Fingerprint()
		grown := ds
		grown.Epoch = epoch
		grown.Chain = spec.Hex(dsFP)
		if grown.Fingerprint() != dsFP {
			t.Fatal("epoch/chain leaked into the dataset source fingerprint")
		}
		if spec.RoutingKey(grown) != dsFP {
			t.Fatal("routing key diverged from the source fingerprint")
		}
		dbuf, err := json.Marshal(grown)
		if err != nil {
			t.Fatalf("encoding dataset spec: %v", err)
		}
		var ds2 spec.DatasetSpec
		if err := json.Unmarshal(dbuf, &ds2); err != nil {
			t.Fatalf("decoding dataset spec: %v", err)
		}
		if ds2.Fingerprint() != dsFP {
			t.Fatalf("dataset fingerprint drifted across JSON round trip:\n%s", dbuf)
		}

		// Id-derived routing keys live in a tagged hash domain: they are
		// deterministic and can never alias a spec-derived key.
		if spec.RoutingKeyForID(id) != spec.RoutingKeyForID(id) {
			t.Fatal("id routing key not deterministic")
		}
		if spec.RoutingKeyForID(id) == dsFP {
			t.Fatalf("id routing key for %q collided with a dataset fingerprint", id)
		}

		// Prep specs round-trip the same way.
		p := sirum.PrepareOptions{SampleSize: sampleSize, Seed: seed, SampleFraction: frac}.Canonical(rows)
		pbuf, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("encoding prep spec: %v", err)
		}
		var p2 spec.PrepSpec
		if err := json.Unmarshal(pbuf, &p2); err != nil {
			t.Fatalf("decoding prep spec: %v", err)
		}
		if p2.Fingerprint() != p.Fingerprint() {
			t.Fatalf("prep fingerprint drifted across JSON round trip:\n%s", pbuf)
		}
	})
}
