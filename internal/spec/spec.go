// Package spec defines the canonical, versioned, content-addressed
// identities of the three things a mining deployment needs to name: a
// dataset (where the rows came from), a preparation (how a session was
// built over them), and a query (what was asked). Every spec is fully
// normalized — defaults applied, backend names spelled out — so two
// requests that mean the same thing produce byte-identical encodings and
// therefore equal fingerprints, no matter which zero values the caller
// left unset.
//
// Fingerprints are what make repeat traffic cheap and restarts survivable:
// the server's result cache is keyed by (session fingerprint, epoch, query
// fingerprint), and its snapshot journal stores specs rather than ad-hoc
// request structs. The epoch is the one mutable part of a dataset's
// identity — every Append bumps it — which invalidates cached results
// without any explicit bookkeeping: the old epoch's keys simply stop being
// asked for.
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"sirum/internal/dataset"
)

// Version is the encoding version baked into every fingerprint. Bump it
// when a spec's canonical encoding changes meaning, so stale cache entries
// and snapshots from older builds can never alias new ones. (2: fingerprints
// hash the canonicalized re-encoding — sorted keys, unescaped strings — so
// they are stable across JSON round trips.)
const Version = 2

// GeneratorSource identifies a built-in synthetic dataset by the three
// inputs that fully determine its rows.
type GeneratorSource struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
	Seed int64  `json:"seed"`
}

// CSVSource identifies an ingested CSV document by the content hash of the
// raw bytes plus the parse parameters that shape the relation.
type CSVSource struct {
	SHA256  string   `json:"sha256"` // hex digest of the raw CSV bytes
	Measure string   `json:"measure"`
	Ignore  []string `json:"ignore,omitempty"`
}

// ContentSource identifies a dataset by a hash of its materialized content
// (schema, dictionaries, columns) — the fallback for datasets assembled row
// by row, where no external source exists to fingerprint.
type ContentSource struct {
	SHA256 string `json:"sha256"`
}

// DatasetSpec is the canonical identity of the data a session serves:
// exactly one source fingerprint plus the epoch counter. Epoch starts at 0
// and is bumped by every Append; it is deliberately excluded from
// Fingerprint so that the source identity is stable across a session's
// lifetime and the epoch can key caches separately.
type DatasetSpec struct {
	Version   int              `json:"v"`
	Generator *GeneratorSource `json:"generator,omitempty"`
	CSV       *CSVSource       `json:"csv,omitempty"`
	Content   *ContentSource   `json:"content,omitempty"`
	Epoch     int64            `json:"epoch"`
	// Chain is the running content chain over the session's append
	// history: the source fingerprint at epoch 0, then
	// H(previous chain ‖ batch content hash) per append (hex). Unlike the
	// bare epoch — which only counts appends — the chain reflects *what*
	// was appended, so two sessions share a chain value only when their
	// entire data histories match. Caches must key on it, not the epoch:
	// sessions over the same source that appended different rows reach
	// the same epoch with different data.
	Chain string `json:"chain,omitempty"`
}

// Fingerprint hashes the source identity (not the epoch or chain).
func (s DatasetSpec) Fingerprint() [32]byte {
	s.Epoch = 0
	s.Chain = ""
	return fingerprint("dataset", s)
}

// ExtendChain folds one appended batch's content hash into a running
// chain fingerprint.
func ExtendChain(chain [32]byte, batchContentHash string) [32]byte {
	h := sha256.New()
	h.Write(chain[:])
	io.WriteString(h, batchContentHash)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// PrepSpec is the canonical identity of a session's prepare-once phase:
// the knobs that shape what every query over the session sees (the pruning
// sample, the Bernoulli data sample, the substrate kind, the append
// staleness trigger), with defaults applied.
type PrepSpec struct {
	Version        int     `json:"v"`
	SampleSize     int     `json:"sample_size"`
	Seed           int64   `json:"seed"`
	SampleFraction float64 `json:"sample_fraction,omitempty"`
	Backend        string  `json:"backend"`
	RemineFactor   float64 `json:"remine_factor"`
}

// Fingerprint hashes the canonical encoding.
func (s PrepSpec) Fingerprint() [32]byte { return fingerprint("prep", s) }

// Query kinds.
const (
	KindMine    = "mine"
	KindExplore = "explore"
)

// QuerySpec is the canonical identity of one query: kind plus every option
// that can change its answer, with defaults applied. Substrate sizing is
// deliberately absent — cluster shape changes how a result is computed, not
// what it is (both backends produce identical rule lists).
type QuerySpec struct {
	Version        int     `json:"v"`
	Kind           string  `json:"kind"`
	K              int     `json:"k"`
	SampleSize     int     `json:"sample_size"`
	Variant        string  `json:"variant"`
	Epsilon        float64 `json:"epsilon"`
	Seed           int64   `json:"seed"`
	SampleFraction float64 `json:"sample_fraction,omitempty"`
	GroupBys       int     `json:"group_bys,omitempty"`
}

// Fingerprint hashes the canonical encoding.
func (q QuerySpec) Fingerprint() [32]byte { return fingerprint("query", q) }

// RoutingKey returns the stable shard-routing key of a dataset identity:
// the source fingerprint, independent of epoch and content chain, so a
// session stays on its home shard no matter how many batches are appended
// to it. Sessions over identical sources share a key — a router placing by
// it co-locates them on one shard, where they also share that shard's
// result cache.
func RoutingKey(ds DatasetSpec) [32]byte { return ds.Fingerprint() }

// RoutingKeyForID returns the shard-routing key derived from a session id,
// for sessions routed by name rather than by content (anonymous auto-id
// sessions, where spreading identical specs across shards beats
// co-locating them). The tag keeps id-derived keys from ever colliding
// with spec-derived ones.
func RoutingKeyForID(id string) [32]byte {
	h := sha256.New()
	io.WriteString(h, "session-id")
	h.Write([]byte{0})
	io.WriteString(h, id)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// SessionKey combines a dataset's source fingerprint with a prep
// fingerprint: the identity under which a session's results are cacheable.
// Two sessions over the same source with the same preparation are
// interchangeable, so their cached results are shared.
func SessionKey(ds DatasetSpec, prep PrepSpec) [32]byte {
	h := sha256.New()
	dfp := ds.Fingerprint()
	pfp := prep.Fingerprint()
	h.Write(dfp[:])
	h.Write(pfp[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// fingerprint hashes a type tag, the encoding version and the spec's
// canonical JSON. The struct encoding alone is deterministic but not
// round-trip stable: a string field holding invalid UTF-8 marshals as a
// � escape, while the same field after one decode re-marshals as the
// raw replacement character — different bytes, different hash. Since specs
// travel as JSON (snapshot journals, shard routing), the hash is taken
// over the canonicalized re-encoding instead: decode the struct encoding
// into generic values (UseNumber keeps int64s exact) and re-marshal, which
// sorts object keys and settles every string into its decoded form, so a
// spec and its JSON round trip always fingerprint identically.
func fingerprint(tag string, v any) [32]byte {
	structEnc, err := json.Marshal(v)
	if err != nil {
		// The spec types marshal unconditionally; an error here is a
		// programming bug, not an input condition.
		panic(fmt.Sprintf("spec: encoding %s spec: %v", tag, err))
	}
	dec := json.NewDecoder(bytes.NewReader(structEnc))
	dec.UseNumber()
	var generic any
	if err := dec.Decode(&generic); err != nil {
		panic(fmt.Sprintf("spec: canonicalizing %s spec: %v", tag, err))
	}
	buf, err := json.Marshal(generic)
	if err != nil {
		panic(fmt.Sprintf("spec: re-encoding %s spec: %v", tag, err))
	}
	h := sha256.New()
	io.WriteString(h, tag)
	h.Write([]byte{0})
	binary.Write(h, binary.LittleEndian, int64(Version))
	h.Write(buf)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// HashBytes returns the hex SHA-256 of raw bytes (CSV documents).
func HashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// HashDataset hashes a materialized dataset's content — schema,
// dictionaries in code order, dimension codes and measure bits — giving
// builder-assembled datasets a source-independent identity.
func HashDataset(ds *dataset.Dataset) string {
	h := sha256.New()
	io.WriteString(h, ds.Schema.MeasureName)
	h.Write([]byte{0})
	for j, name := range ds.Schema.DimNames {
		io.WriteString(h, name)
		h.Write([]byte{0})
		for _, v := range ds.Dicts[j].Values() {
			io.WriteString(h, v)
			h.Write([]byte{0})
		}
		h.Write([]byte{0})
	}
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], uint64(ds.NumRows()))
	h.Write(scratch[:])
	for _, col := range ds.Dims {
		for _, c := range col {
			binary.LittleEndian.PutUint32(scratch[:4], uint32(c))
			h.Write(scratch[:4])
		}
	}
	for _, m := range ds.Measure {
		binary.Write(h, binary.LittleEndian, m)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Hex renders a fingerprint for logs, JSON and metric labels.
func Hex(fp [32]byte) string { return hex.EncodeToString(fp[:]) }
