package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// quickCfg shrinks everything so the whole registry can run in CI time.
func quickCfg() Config {
	return Config{Scale: 50000, Quick: true, Seed: 1, Executors: 4, Cores: 2}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig-3.1", "fig-3.2", "fig-4.3", "fig-4.4",
		"fig-5.1", "fig-5.2", "fig-5.3", "fig-5.4", "fig-5.5", "fig-5.6",
		"fig-5.7", "fig-5.8", "fig-5.9", "fig-5.10", "fig-5.11", "fig-5.12",
		"fig-5.13", "fig-5.14", "fig-5.15", "fig-5.16", "fig-5.17",
		"fig-5.18", "fig-5.19",
		"table-1.2", "table-4.1",
		"ablation-groups", "ablation-redundant",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(want) {
		ids := make([]string, 0, len(All()))
		for _, r := range All() {
			ids = append(ids, r.ID)
		}
		t.Errorf("registry has %d experiments, want %d: %v", len(All()), len(want), ids)
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig-99", quickCfg()); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Header: []string{"a", "bbbb"}, Notes: []string{"note text"}}
	tab.AddRow("1", "2")
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== x: demo ==", "a", "bbbb", "note text", "1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestConfigHelpers(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Scale != 1000 || cfg.Executors != 16 {
		t.Errorf("defaults: %+v", cfg)
	}
	if cfg.rows(1_500_000) != 1500 {
		t.Errorf("rows = %d", cfg.rows(1_500_000))
	}
	if cfg.rows(1000) != 300 {
		t.Errorf("rows floor = %d", cfg.rows(1000))
	}
	q := Config{Scale: 1000, Quick: true}.withDefaults()
	if q.k(20) != 10 || q.s(64) != 16 || q.k(5) != 5 || q.s(16) != 4 || q.s(4) != 4 {
		t.Errorf("quick shrink: k=%d s64=%d s16=%d s4=%d", q.k(20), q.s(64), q.s(16), q.s(4))
	}
}

// TestTable12Golden runs the flight-data experiment and checks the exact
// Table 1.2 contents.
func TestTable12Golden(t *testing.T) {
	tabs, err := Run("table-1.2", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	wantRules := [][]string{
		{"*", "*", "*"},
		{"*", "*", "London"},
		{"Fri", "*", "*"},
		{"Sat", "*", "*"},
	}
	for i, w := range wantRules {
		got := tab.Rows[i][1:4]
		for j := range w {
			if got[j] != w[j] {
				t.Errorf("row %d = %v, want %v", i, got, w)
			}
		}
	}
	// Aggregates at the thesis' rounding.
	if tab.Rows[0][4] != "10.4" || tab.Rows[1][4] != "15.2" && tab.Rows[1][4] != "15.3" {
		t.Errorf("averages: %v %v", tab.Rows[0][4], tab.Rows[1][4])
	}
}

// TestTable41Golden checks the RCT contents.
func TestTable41Golden(t *testing.T) {
	tabs, err := Run("table-4.1", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	want := map[string][2]string{
		"100": {"9", "68"},
		"110": {"3", "41"},
		"101": {"1", "16"},
		"111": {"1", "20"},
	}
	for _, row := range tab.Rows {
		w, ok := want[row[0]]
		if !ok {
			t.Errorf("unexpected BA %s", row[0])
			continue
		}
		if row[1] != w[0] || row[2] != w[1] {
			t.Errorf("BA %s: got %v/%v want %v", row[0], row[1], row[2], w)
		}
	}
}

// TestSelectedExperimentsRun smoke-tests a representative subset end to end
// at tiny scale; the full registry is exercised by cmd/sirumbench and the
// benchmarks.
func TestSelectedExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	cfg := quickCfg()
	for _, id := range []string{"fig-3.1", "fig-5.3", "fig-5.5", "fig-5.11", "fig-5.16", "fig-5.19", "ablation-groups"} {
		tabs, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tabs) == 0 || len(tabs[0].Rows) == 0 {
			t.Errorf("%s produced no rows", id)
		}
		for _, tab := range tabs {
			for _, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Errorf("%s: row width %d != header %d", id, len(row), len(tab.Header))
				}
			}
		}
	}
}

// TestSpeedupShapes verifies the headline claims at small scale: RCT faster
// than baseline scaling, and Optimized faster than Baseline end to end.
func TestSpeedupShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test skipped in -short mode")
	}
	cfg := quickCfg()
	tabs, err := Run("fig-5.3", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tabs[0].Rows {
		sp := strings.TrimSuffix(row[3], "x")
		f, err := strconv.ParseFloat(sp, 64)
		if err != nil {
			t.Fatalf("bad speedup cell %q", row[3])
		}
		if f <= 1 {
			t.Errorf("RCT speedup %v <= 1 at k=%s", f, row[0])
		}
	}
}
