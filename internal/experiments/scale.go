package experiments

import (
	"fmt"

	"sirum/internal/dataset"
	"sirum/internal/engine"
	"sirum/internal/miner"
	"sirum/internal/platform"
)

func init() {
	register("fig-5.16", "Strong scaling of Optimized SIRUM (TLC)", fig516)
	register("fig-5.17", "Weak scaling of Optimized SIRUM (TLC)", fig517)
	register("fig-5.18", "SIRUM on sample data: time and information gain (TLC)", func(cfg Config) ([]*Table, error) {
		return onSampleFigure(cfg, "fig-5.18", "tlc", tlcFullRows, []float64{1, 0.1, 0.01, 0.001})
	})
	register("fig-5.19", "SIRUM on sample data: time and information gain (SUSY)", func(cfg Config) ([]*Table, error) {
		return onSampleFigure(cfg, "fig-5.19", "susy", susyRows, []float64{1, 0.1, 0.01})
	})
}

// scaledCluster builds a Spark cluster with the given executor count and a
// straggler factor, overheads scaled to the experiment.
func scaledCluster(cfg Config, executors int, slowNode float64) *engine.SimBackend {
	conf := platform.Scale(platform.Config(platform.Spark, executors, cfg.Cores, 0), float64(cfg.Scale))
	conf.Partitions = executors * cfg.Cores
	conf.SlowNodeFactor = slowNode
	return engine.NewSimBackend(conf)
}

// mineOnCluster is mineFresh with an explicit cluster.
func mineOnCluster(cl engine.Backend, cfg Config, ds *dataset.Dataset, opt miner.Options) (*miner.Result, error) {
	defer cl.Close()
	opt.Seed = cfg.Seed
	return miner.New(cl, ds, opt).Run()
}

func fig516(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "fig-5.16",
		Title:  "Strong scaling: fixed data, 2..16 executors (Optimized, k=10 |s|=64)",
		Header: []string{"executors", "TLC_2m_s", "TLC_40m_s"},
		Notes: []string{
			"expected shape: the small dataset scales sublinearly (overheads",
			"dominate); the large one scales near-linearly",
		},
	}
	execs := []int{2, 4, 8, 16}
	if cfg.Quick {
		execs = []int{2, 8}
	}
	small, err := cfg.data("tlc", tlc2mRows)
	if err != nil {
		return nil, err
	}
	large, err := cfg.data("tlc", tlc40mRows)
	if err != nil {
		return nil, err
	}
	opt := miner.Options{Variant: miner.Optimized, K: cfg.k(10), SampleSize: cfg.s(64)}
	for _, e := range execs {
		resSmall, err := mineOnCluster(scaledCluster(cfg, e, 0), cfg, small, opt)
		if err != nil {
			return nil, err
		}
		resLarge, err := mineOnCluster(scaledCluster(cfg, e, 0), cfg, large, opt)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(e), secs(resSmall.SimTime), secs(resLarge.SimTime))
	}
	return []*Table{t}, nil
}

func fig517(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "fig-5.17",
		Title:  "Weak scaling: data and executors grow together (Optimized, k=10 |s|=64)",
		Header: []string{"executors/dataset", "sim_s"},
		Notes: []string{
			"expected shape: ideally flat; in practice a slight increase from",
			"stragglers (injected here via a 1.3x slow node, as observed in 5.7.2)",
		},
	}
	steps := []struct {
		executors int
		rows      int
		label     string
	}{
		{4, tlc40mRows, "4/TLC_40m"},
		{8, tlc80mRows, "8/TLC_80m"},
		{16, tlc160mRows, "16/TLC_160m"},
	}
	if cfg.Quick {
		steps = steps[:2]
	}
	opt := miner.Options{Variant: miner.Optimized, K: cfg.k(10), SampleSize: cfg.s(64)}
	for _, st := range steps {
		ds, err := cfg.data("tlc", st.rows)
		if err != nil {
			return nil, err
		}
		res, err := mineOnCluster(scaledCluster(cfg, st.executors, 1.3), cfg, ds, opt)
		if err != nil {
			return nil, err
		}
		t.AddRow(st.label, secs(res.SimTime))
	}
	return []*Table{t}, nil
}

// onSampleFigure sweeps SIRUM-on-sample-data rates, reporting runtime and
// full-data information gain (Figures 5.18/5.19). The memory budget is set
// below the dataset size so the 100% run pays the spill penalty the thesis
// describes.
func onSampleFigure(cfg Config, id, name string, paperRows int, rates []float64) ([]*Table, error) {
	ds, err := cfg.data(name, paperRows)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("SIRUM on sample data (%s): runtime vs information gain", name),
		Header: []string{"sampling_rate", "rows_mined", "sim_s", "info_gain_full_data"},
		Notes: []string{
			"expected shape: ~10% sampling is several times faster with a small",
			"gain penalty; below ~1% the gain degrades with little further speedup",
		},
	}
	memPerExec := int64(float64(ds.ApproxBytes()) * 0.4 / 0.6) // force spilling at 100%
	if cfg.Quick {
		rates = rates[:min(len(rates), 3)]
	}
	for _, rate := range rates {
		conf := platform.Scale(platform.Config(platform.Spark, 4, cfg.Cores, memPerExec/4), float64(cfg.Scale))
		conf.Partitions = 4 * cfg.Cores
		cl := engine.NewSimBackend(conf)
		opt := miner.Options{
			Variant: miner.Optimized, K: cfg.k(10), SampleSize: cfg.s(16), Seed: cfg.Seed,
			EvaluateOnFullData: true,
		}
		if name == "susy" {
			opt.K, opt.SampleSize = cfg.k(5), cfg.s(4)
		}
		rows := ds.NumRows()
		if rate < 1 {
			opt.SampleFraction = rate
			rows = int(float64(rows) * rate)
		}
		res, err := miner.New(cl, ds, opt).Run()
		if err != nil {
			cl.Close()
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.2f%%", rate*100), fmt.Sprint(rows), secs(res.SimTime),
			fmt.Sprintf("%.6f", res.InfoGain))
		cl.Close()
	}
	return []*Table{t}, nil
}
