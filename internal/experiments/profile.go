package experiments

import (
	"fmt"
	"time"

	"sirum/internal/dataset"
	"sirum/internal/engine"
	"sirum/internal/explore"
	"sirum/internal/metrics"
	"sirum/internal/miner"
	"sirum/internal/platform"
)

// Paper-scale dataset sizes (Section 5.1.2 / Section 3.3).
const (
	incomeRows  = 1_500_000
	gdeltRows   = 3_800_000
	susyRows    = 5_000_000
	tlc2mRows   = 2_000_000
	tlc20mRows  = 20_000_000
	tlc40mRows  = 40_000_000
	tlc80mRows  = 80_000_000
	tlc160mRows = 160_000_000
	tlcFullRows = 1_080_000_000
)

// newBackend builds the configured execution substrate (sim by default).
func (c Config) newBackend(conf engine.Config) engine.Backend {
	if c.Backend == "native" {
		return engine.NewNativeBackend(conf)
	}
	return engine.NewSimBackend(conf)
}

// cluster builds a Spark-profile cluster with overheads scaled to the run.
func (c Config) cluster(executors, cores int, memPerExec int64) engine.Backend {
	conf := platform.Scale(platform.Config(platform.Spark, executors, cores, memPerExec), float64(c.Scale))
	conf.Partitions = executors * cores
	return c.newBackend(conf)
}

// mineFresh runs one mining job on a fresh default cluster.
func (c Config) mineFresh(ds *dataset.Dataset, opt miner.Options) (*miner.Result, error) {
	cl := c.cluster(c.Executors, c.Cores, 0)
	defer cl.Close()
	opt.Seed = c.Seed
	return miner.New(cl, ds, opt).Run()
}

// session is a prepared mining session for the comparison sweeps: the
// dataset is loaded, transformed and sampled once per configuration sweep,
// and every variant/k/|s| combination runs as a query against that shared
// state instead of re-loading from scratch. Cross-iteration LCA
// memoization is disabled so every query keeps the paper-faithful
// per-iteration work profile the figures compare.
type session struct {
	cfg       Config
	cl        engine.Backend
	prep      *miner.Prep
	prepTime  time.Duration // sim or wall, per cfg.Backend
	queries   int
	queryTime time.Duration
}

// newSession prepares ds once on a fresh default cluster. sampleSize seeds
// the prepared pruning sample; queries asking for other sizes draw their own
// while still reusing the loaded blocks.
func (c Config) newSession(ds *dataset.Dataset, sampleSize int) (*session, error) {
	cl := c.cluster(c.Executors, c.Cores, 0)
	wall := time.Now()
	sim0 := cl.SimTime()
	prep, err := miner.Prepare(cl, ds, miner.PrepOptions{
		SampleSize:     sampleSize,
		Seed:           c.Seed,
		DisableLCAMemo: true,
	})
	if err != nil {
		cl.Close()
		return nil, err
	}
	s := &session{cfg: c, cl: cl, prep: prep}
	if c.Backend == "native" {
		s.prepTime = time.Since(wall)
	} else {
		s.prepTime = cl.SimTime() - sim0
	}
	return s, nil
}

// mine runs one query against the prepared state, accumulating the
// amortization accounting.
func (s *session) mine(opt miner.Options) (*miner.Result, error) {
	opt.Seed = s.cfg.Seed
	res, err := s.prep.Mine(opt)
	if err != nil {
		return nil, err
	}
	s.queries++
	s.queryTime += s.cfg.runtime(res)
	return res, nil
}

// explore runs one cube-exploration scenario as a query against the
// prepared state.
func (s *session) explore(opt explore.Options) (*explore.Recommendation, error) {
	opt.Seed = s.cfg.Seed
	rec, err := explore.RunPrepared(s.prep, opt)
	if err != nil {
		return nil, err
	}
	s.queries++
	s.queryTime += s.cfg.runtime(rec.Result)
	return rec, nil
}

// close drops the prepared state and the cluster.
func (s *session) close() {
	s.prep.Drop()
	s.cl.Close()
}

// amortNote renders the prepare-once accounting: the amortized per-query
// time alongside what one cold run (prepare + query) costs.
func (s *session) amortNote() string {
	if s.queries == 0 {
		return "prepared session ran no queries"
	}
	avg := s.queryTime / time.Duration(s.queries)
	return fmt.Sprintf("prepared once in %.3fs; %d queries, amortized %.3fs/query vs %.3fs cold (prepare+query)",
		s.prepTime.Seconds(), s.queries, avg.Seconds(), (s.prepTime + avg).Seconds())
}

func init() {
	register("fig-3.1", "Baseline SIRUM runtimes: rule generation vs iterative scaling (k=10, |s|=64)", fig31)
	register("fig-3.2", "Rule generation runtime by step across datasets and dimensionalities", fig32)
	register("fig-4.3", "Memory usage over time under different memory allocations (Income)", fig43)
	register("fig-4.4", "Memory usage over time: SIRUM vs SIRUM on sample data", fig44)
}

func fig31(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "fig-3.1",
		Title:  fmt.Sprintf("Baseline SIRUM runtimes, k=%d |s|=%d (simulated seconds)", cfg.k(10), cfg.s(64)),
		Header: []string{"dataset", "rows", "rule_gen_s", "iter_scaling_s", "total_s"},
		Notes: []string{
			"expected shape: the bottleneck shifts from iterative scaling to rule",
			"generation as dimensionality grows (SUSY, 18 dims); TLC is largest overall",
		},
	}
	cases := []struct {
		name string
		rows int
	}{
		{"income", incomeRows}, {"gdelt", gdeltRows}, {"susy", susyRows}, {"tlc", tlc160mRows},
	}
	for _, cse := range cases {
		ds, err := cfg.data(cse.name, cse.rows)
		if err != nil {
			return nil, err
		}
		sampleSize, k := cfg.s(64), cfg.k(10)
		if cse.name == "susy" {
			// The 18-dim ancestor blowup is the thesis' own bottleneck; at
			// this repository's scale it is reproduced with a scaled-down
			// sample and k (see DESIGN.md §1).
			sampleSize, k = cfg.s(8), cfg.k(5)
		}
		res, err := cfg.mineFresh(ds, miner.Options{Variant: miner.Baseline, K: k, SampleSize: sampleSize})
		if err != nil {
			return nil, err
		}
		rg := cfg.phaseTime(res, metrics.PhaseRuleGen)
		sc := cfg.phaseTime(res, metrics.PhaseScaling)
		t.AddRow(cse.name, fmt.Sprint(ds.NumRows()), secs(rg), secs(sc), secs(rg+sc))
	}
	return []*Table{t}, nil
}

func fig32(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "fig-3.2",
		Title:  "Rule generation runtime by step (percent of rule-gen time, plus absolute)",
		Header: []string{"dataset", "dims", "pruning_%", "ancestors_%", "gain_%", "rule_gen_s"},
		Notes: []string{
			"expected shape: candidate pruning dominates at 9-10 dims;",
			"ancestor generation dominates by 18 dims",
		},
	}
	type cse struct {
		name string
		rows int
		proj int
	}
	cases := []cse{
		{"income", incomeRows, 0}, {"gdelt", gdeltRows, 0},
		{"susy", susyRows, 10}, {"susy", susyRows, 14}, {"susy", susyRows, 18},
	}
	for _, c := range cases {
		ds, err := cfg.data(c.name, c.rows)
		if err != nil {
			return nil, err
		}
		label := c.name
		if c.proj > 0 {
			ds = ds.Project(c.proj)
			label = fmt.Sprintf("%s(%d)", c.name, c.proj)
		}
		sampleSize, k := cfg.s(64), cfg.k(10)
		if c.name == "susy" {
			sampleSize, k = cfg.s(8), cfg.k(3)
		}
		res, err := cfg.mineFresh(ds, miner.Options{Variant: miner.Baseline, K: k, SampleSize: sampleSize})
		if err != nil {
			return nil, err
		}
		prune := cfg.phaseTime(res, metrics.PhaseCandPruning)
		anc := cfg.phaseTime(res, metrics.PhaseAncestorGen)
		gain := cfg.phaseTime(res, metrics.PhaseGainComputing)
		total := prune + anc + gain
		pct := func(x float64) string {
			if total == 0 {
				return "0"
			}
			return fmt.Sprintf("%.0f", 100*x/float64(total))
		}
		t.AddRow(label, fmt.Sprint(ds.NumDims()),
			pct(float64(prune)), pct(float64(anc)), pct(float64(gain)), secs(total))
	}
	return []*Table{t}, nil
}

// memoryRun mines Income under a given executor memory budget and returns
// the run plus the residency series sampled from the cache.
func memoryRun(cfg Config, memPerExec int64, fraction float64) (*miner.Result, engine.Backend, error) {
	ds, err := cfg.data("income", incomeRows)
	if err != nil {
		return nil, nil, err
	}
	cl := cfg.cluster(1, cfg.Cores, memPerExec)
	opt := miner.Options{Variant: miner.Baseline, K: cfg.k(10), SampleSize: cfg.s(16), Seed: cfg.Seed, Partitions: 16}
	if fraction > 0 && fraction < 1 {
		opt.SampleFraction = fraction
	}
	res, err := miner.New(cl, ds, opt).Run()
	if err != nil {
		cl.Close()
		return nil, nil, err
	}
	return res, cl, nil
}

func fig43(cfg Config) ([]*Table, error) {
	ds, err := cfg.data("income", incomeRows)
	if err != nil {
		return nil, err
	}
	dataBytes := ds.ApproxBytes()
	t := &Table{
		ID:     "fig-4.3",
		Title:  "Memory pressure: plentiful vs scarce executor memory (Income)",
		Header: []string{"memory_budget", "fits", "spill_MB", "reload_MB", "total_s"},
		Notes: []string{
			"expected shape: the scarce-memory run keeps re-reading spilled blocks",
			"(like the 3GB executor in the thesis) and runs much slower",
		},
	}
	// Budgets bracketing the dataset: the cache keeps 60% of executor
	// memory, so 2x data is plentiful and 0.5x data forces spilling.
	for _, mult := range []float64{2.0, 0.5} {
		mem := int64(float64(dataBytes) * mult / 0.6)
		res, cl, err := memoryRun(cfg, mem, 0)
		if err != nil {
			return nil, err
		}
		spill := cl.Reg().Counter(metrics.CtrSpillBytes)
		reload := cl.Reg().Counter(metrics.CtrSpillReads)
		t.AddRow(fmt.Sprintf("%.1fx data", mult), fmt.Sprint(spill == 0),
			fmt.Sprintf("%.2f", float64(spill)/(1<<20)),
			fmt.Sprintf("%.2f", float64(reload)/(1<<20)),
			secs(cfg.runtime(res)))
		cl.Close()
	}
	return []*Table{t}, nil
}

func fig44(cfg Config) ([]*Table, error) {
	ds, err := cfg.data("income", incomeRows)
	if err != nil {
		return nil, err
	}
	dataBytes := ds.ApproxBytes()
	mem := int64(float64(dataBytes) * 0.5 / 0.6) // scarce, as in fig-4.3
	t := &Table{
		ID:     "fig-4.4",
		Title:  "Scarce memory: full data vs SIRUM on sample data (Income)",
		Header: []string{"run", "rows_mined", "spill_MB", "total_s", "info_gain"},
		Notes: []string{
			"expected shape: the 60% and 10% samples fit in memory (no re-reads)",
			"and run faster, at a small information-gain penalty",
		},
	}
	for _, fr := range []float64{1.0, 0.6, 0.1} {
		res, cl, err := memoryRun(cfg, mem, fr)
		if err != nil {
			return nil, err
		}
		rows := ds.NumRows()
		if fr < 1 {
			rows = int(float64(rows) * fr)
		}
		t.AddRow(fmt.Sprintf("sample %.0f%%", fr*100), fmt.Sprint(rows),
			fmt.Sprintf("%.2f", float64(cl.Reg().Counter(metrics.CtrSpillBytes))/(1<<20)),
			secs(cfg.runtime(res)), fmt.Sprintf("%.5f", res.InfoGain))
		cl.Close()
	}
	return []*Table{t}, nil
}
