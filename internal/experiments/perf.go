package experiments

import (
	"fmt"
	"time"

	"sirum/internal/metrics"
	"sirum/internal/miner"
)

func init() {
	register("fig-5.3", "RCT fast iterative scaling vs baseline (GDELT)", func(cfg Config) ([]*Table, error) {
		return rctFigure(cfg, "fig-5.3", "gdelt", gdeltRows, cfg.s(64))
	})
	register("fig-5.4", "RCT fast iterative scaling vs baseline (SUSY)", func(cfg Config) ([]*Table, error) {
		return rctFigure(cfg, "fig-5.4", "susy", susyRows, cfg.s(4))
	})
	register("fig-5.5", "Fast candidate pruning vs |s| (GDELT, k=20)", fig55)
	register("fig-5.6", "Fast candidate rule processing vs |s| (SUSY, k=20)", fig56)
	register("fig-5.7", "Rule generation time vs number of dimensions (SUSY projections)", fig57)
	register("fig-5.8", "Ancestors emitted vs number of dimensions (SUSY projections)", fig58)
	register("fig-5.9", "Multi-rule insertion (GDELT)", func(cfg Config) ([]*Table, error) {
		return multiRuleFigure(cfg, "fig-5.9", "gdelt", gdeltRows, cfg.s(64))
	})
	register("fig-5.10", "Multi-rule insertion (SUSY)", func(cfg Config) ([]*Table, error) {
		return multiRuleFigure(cfg, "fig-5.10", "susy", susyRows, cfg.s(4))
	})
	register("ablation-groups", "Column-group count sweep (g=1..4, SUSY)", ablationGroups)
	register("ablation-redundant", "Redundant-ancestor pruning on/off (GDELT)", ablationRedundant)
}

// rctFigure compares the scaling-phase time of Baseline vs RCT for k in
// {10, 20, 50} (Figures 5.3/5.4).
func rctFigure(cfg Config, id, name string, paperRows, sampleSize int) ([]*Table, error) {
	ds, err := cfg.data(name, paperRows)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Iterative scaling time, Baseline vs RCT (%s)", name),
		Header: []string{"k", "baseline_s", "rct_s", "speedup"},
		Notes:  []string{"expected shape: RCT is ~4-5x faster at every k"},
	}
	ks := []int{10, 20, 50}
	if name == "susy" {
		ks = []int{5, 10, 20} // scaled with the dataset (ancestor blowup)
	}
	if cfg.Quick {
		ks = ks[:2]
	}
	s, err := cfg.newSession(ds, sampleSize)
	if err != nil {
		return nil, err
	}
	defer s.close()
	for _, k := range ks {
		var times [2]time.Duration
		for vi, v := range []miner.Variant{miner.Baseline, miner.RCT} {
			res, err := s.mine(miner.Options{Variant: v, K: k, SampleSize: sampleSize})
			if err != nil {
				return nil, err
			}
			times[vi] = cfg.phaseTime(res, metrics.PhaseScaling)
		}
		t.AddRow(fmt.Sprint(k), secs(times[0]), secs(times[1]), ratio(times[0], times[1]))
	}
	t.Notes = append(t.Notes, s.amortNote())
	return []*Table{t}, nil
}

func fig55(cfg Config) ([]*Table, error) {
	ds, err := cfg.data("gdelt", gdeltRows)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig-5.5",
		Title:  "Rule generation time, Baseline vs FastPruning (GDELT, k=20)",
		Header: []string{"|s|", "baseline_s", "fastpruning_s", "speedup"},
		Notes:  []string{"expected shape: ~2x speedup, growing with |s|"},
	}
	sess, err := cfg.newSession(ds, cfg.s(64))
	if err != nil {
		return nil, err
	}
	defer sess.close()
	for _, s := range []int{cfg.s(64), cfg.s(128), cfg.s(256)} {
		var times [2]time.Duration
		for vi, v := range []miner.Variant{miner.Baseline, miner.FastPruning} {
			res, err := sess.mine(miner.Options{Variant: v, K: cfg.k(20), SampleSize: s})
			if err != nil {
				return nil, err
			}
			times[vi] = cfg.phaseTime(res, metrics.PhaseRuleGen)
		}
		t.AddRow(fmt.Sprint(s), secs(times[0]), secs(times[1]), ratio(times[0], times[1]))
	}
	t.Notes = append(t.Notes, sess.amortNote())
	return []*Table{t}, nil
}

func fig56(cfg Config) ([]*Table, error) {
	ds, err := cfg.data("susy", susyRows)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig-5.6",
		Title:  "Rule generation time, Baseline vs FastAncestor (SUSY, 2 column groups)",
		Header: []string{"|s|", "baseline_s", "fastancestor_s", "speedup"},
		Notes: []string{
			"expected shape: ~2.5x from splitting ancestor generation into 2 stages",
			"(sample sizes scaled down with the dataset; see DESIGN.md)",
		},
	}
	sess, err := cfg.newSession(ds, cfg.s(4))
	if err != nil {
		return nil, err
	}
	defer sess.close()
	for _, s := range []int{cfg.s(4), cfg.s(8), cfg.s(16)} {
		var times [2]time.Duration
		for vi, v := range []miner.Variant{miner.Baseline, miner.FastAncestor} {
			res, err := sess.mine(miner.Options{Variant: v, K: cfg.k(3), SampleSize: s})
			if err != nil {
				return nil, err
			}
			times[vi] = cfg.phaseTime(res, metrics.PhaseRuleGen)
		}
		t.AddRow(fmt.Sprint(s), secs(times[0]), secs(times[1]), ratio(times[0], times[1]))
	}
	t.Notes = append(t.Notes, sess.amortNote())
	return []*Table{t}, nil
}

// dimSweep runs Baseline and FastAncestor over SUSY projections (10–18
// dims) and returns per-dimension rule-gen times plus emitted-pair counts.
// Each projection is a distinct dataset and gets its own prepared session;
// the two variants are queries against it.
func dimSweep(cfg Config) ([][4]string, [][3]string, error) {
	full, err := cfg.data("susy", susyRows)
	if err != nil {
		return nil, nil, err
	}
	var times [][4]string
	var pairs [][3]string
	for _, d := range []int{10, 12, 14, 16, 18} {
		ds := full.Project(d)
		sess, err := cfg.newSession(ds, cfg.s(8))
		if err != nil {
			return nil, nil, err
		}
		var rg [2]time.Duration
		var emitted [2]int64
		for vi, v := range []miner.Variant{miner.Baseline, miner.FastAncestor} {
			res, err := sess.mine(miner.Options{Variant: v, K: cfg.k(3), SampleSize: cfg.s(8)})
			if err != nil {
				sess.close()
				return nil, nil, err
			}
			rg[vi] = cfg.phaseTime(res, metrics.PhaseRuleGen)
			emitted[vi] = res.Counters[metrics.CtrPairsEmitted]
		}
		sess.close()
		times = append(times, [4]string{fmt.Sprint(d), secs(rg[0]), secs(rg[1]), ratio(rg[0], rg[1])})
		pairs = append(pairs, [3]string{fmt.Sprint(d), fmt.Sprint(emitted[0]), fmt.Sprint(emitted[1])})
	}
	return times, pairs, nil
}

func fig57(cfg Config) ([]*Table, error) {
	times, _, err := dimSweep(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig-5.7",
		Title:  "Rule generation time vs dimensions (SUSY projections)",
		Header: []string{"dims", "baseline_s", "fastancestor_s", "speedup"},
		Notes:  []string{"expected shape: the speedup grows with dimensionality"},
	}
	for _, row := range times {
		t.AddRow(row[0], row[1], row[2], row[3])
	}
	return []*Table{t}, nil
}

func fig58(cfg Config) ([]*Table, error) {
	_, pairs, err := dimSweep(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig-5.8",
		Title:  "Ancestor pairs emitted by mappers vs dimensions (SUSY projections)",
		Header: []string{"dims", "baseline_pairs", "fastancestor_pairs"},
		Notes:  []string{"expected shape: exponential growth; column grouping emits far fewer"},
	}
	for _, row := range pairs {
		t.AddRow(row[0], row[1], row[2])
	}
	return []*Table{t}, nil
}

// multiRuleFigure compares Baseline vs 2-rule, 2-rule*, 3-rule and 3-rule*
// rule-generation time for k in {10, 50} (Figures 5.9/5.10).
func multiRuleFigure(cfg Config, id, name string, paperRows, sampleSize int) ([]*Table, error) {
	ds, err := cfg.data(name, paperRows)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Rule generation time with multi-rule insertion (%s)", name),
		Header: []string{"k", "baseline_s", "2rule_s", "2rule*_s", "3rule_s", "3rule*_s", "2rule*_rules"},
		Notes: []string{
			"expected shape: l-rule cuts rule-gen time roughly by 1/l;",
			"l-rule* needs extra rules (and time) to match the baseline's KL",
		},
	}
	ks := []int{10, 50}
	if name == "susy" {
		ks = []int{6} // scaled with the dataset (ancestor blowup)
	}
	if cfg.Quick {
		ks = []int{6}
	}
	s, err := cfg.newSession(ds, sampleSize)
	if err != nil {
		return nil, err
	}
	defer s.close()
	for _, k := range ks {
		base, err := s.mine(miner.Options{Variant: miner.Baseline, K: k, SampleSize: sampleSize})
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprint(k), secs(cfg.phaseTime(base, metrics.PhaseRuleGen))}
		starRules := 0
		for _, l := range []int{2, 3} {
			plain, err := s.mine(miner.Options{Variant: miner.MultiRule, K: k, SampleSize: sampleSize, RulesPerIter: l})
			if err != nil {
				return nil, err
			}
			star, err := s.mine(miner.Options{
				Variant: miner.MultiRule, K: k, SampleSize: sampleSize, RulesPerIter: l,
				TargetKL: base.KL, MaxRules: 4 * k,
			})
			if err != nil {
				return nil, err
			}
			row = append(row, secs(cfg.phaseTime(plain, metrics.PhaseRuleGen)), secs(cfg.phaseTime(star, metrics.PhaseRuleGen)))
			if l == 2 {
				starRules = len(star.Rules)
			}
		}
		row = append(row, fmt.Sprint(starRules))
		// Reorder: baseline, 2rule, 2rule*, 3rule, 3rule*, starRules.
		t.AddRow(row[0], row[1], row[2], row[3], row[4], row[5], row[6])
	}
	t.Notes = append(t.Notes, s.amortNote())
	return []*Table{t}, nil
}

func ablationGroups(cfg Config) ([]*Table, error) {
	ds, err := cfg.data("susy", susyRows)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablation-groups",
		Title:  "Column-group count sweep (SUSY): more stages emit fewer pairs but add rounds",
		Header: []string{"groups", "rule_gen_s", "pairs_emitted"},
		Notes:  []string{"expected shape: g=2 captures most of the win; g>2 marginal (<~20%)"},
	}
	s, err := cfg.newSession(ds, cfg.s(8))
	if err != nil {
		return nil, err
	}
	defer s.close()
	for _, g := range []int{1, 2, 3, 4} {
		res, err := s.mine(miner.Options{
			Variant: miner.FastAncestor, K: cfg.k(3), SampleSize: cfg.s(8), ColumnGroups: g,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(g), secs(cfg.phaseTime(res, metrics.PhaseRuleGen)),
			fmt.Sprint(res.Counters[metrics.CtrPairsEmitted]))
	}
	t.Notes = append(t.Notes, s.amortNote())
	return []*Table{t}, nil
}

func ablationRedundant(cfg Config) ([]*Table, error) {
	ds, err := cfg.data("gdelt", gdeltRows)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "ablation-redundant",
		Title:  "Redundant-ancestor pruning (Chapter 7 future work), GDELT",
		Header: []string{"pruning", "candidates", "rule_gen_s", "final_KL"},
		Notes:  []string{"expected shape: fewer candidates, same quality"},
	}
	s, err := cfg.newSession(ds, cfg.s(64))
	if err != nil {
		return nil, err
	}
	defer s.close()
	for _, on := range []bool{false, true} {
		res, err := s.mine(miner.Options{
			Variant: miner.Optimized, K: cfg.k(10), SampleSize: cfg.s(64),
			PruneRedundantAncestors: on,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(on), fmt.Sprint(res.Candidates),
			secs(cfg.phaseTime(res, metrics.PhaseRuleGen)), fmt.Sprintf("%.6f", res.KL))
	}
	t.Notes = append(t.Notes, s.amortNote())
	return []*Table{t}, nil
}
