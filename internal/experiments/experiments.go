// Package experiments regenerates every table and figure of the thesis'
// evaluation (Chapter 5) plus the profiling study (Chapter 3) and the
// ablations of DESIGN.md §5. Each experiment is registered under the
// thesis' figure/table id and prints the same rows/series the thesis
// reports, at a configurable scale factor (the paper's datasets divided by
// Config.Scale, with platform overheads scaled to match — see platform.Scale
// and DESIGN.md §1).
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"sirum/internal/datagen"
	"sirum/internal/dataset"
	"sirum/internal/miner"
)

// Config controls experiment scale. The zero value gets defaults suitable
// for a laptop run of every experiment in minutes.
type Config struct {
	// Scale divides the paper's dataset sizes (default 1000: Income 1.5M
	// becomes 1500 rows). Platform fixed overheads divide by the same
	// factor to preserve overhead-to-compute ratios.
	Scale int
	// Quick additionally shrinks k and |s| for bench-mode runs.
	Quick bool
	// Seed drives all data generation and sampling.
	Seed int64
	// Executors and Cores define the default virtual cluster.
	Executors, Cores int
	// Backend selects the execution substrate for the generic mining
	// helpers: "sim" (default) reports simulated cluster time, "native"
	// reports wall-clock. Platform-profile and scaling experiments
	// (fig-5.1/5.2, fig-5.16–5.19) always use the sim backend, since the
	// quantity they report is the modelled cluster cost.
	Backend string
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Executors <= 0 {
		c.Executors = 16
	}
	if c.Cores <= 0 {
		c.Cores = 4
	}
	return c
}

// rows converts a paper-scale row count to this run's size.
func (c Config) rows(paperRows int) int {
	n := paperRows / c.Scale
	if c.Quick {
		n /= 4
	}
	if n < 300 {
		n = 300
	}
	return n
}

// k shrinks a rule-count parameter in quick mode.
func (c Config) k(paperK int) int {
	if c.Quick && paperK > 5 {
		return paperK / 2
	}
	return paperK
}

// s shrinks a sample-size parameter in quick mode.
func (c Config) s(paperS int) int {
	if c.Quick && paperS > 4 {
		return max(4, paperS/4)
	}
	return paperS
}

// data builds a named dataset at paper scale.
func (c Config) data(name string, paperRows int) (*dataset.Dataset, error) {
	return datagen.ByName(name, c.rows(paperRows), c.Seed)
}

// Table is one printable result: a named grid with optional notes (the
// "shape" expectations from the thesis).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Runner produces the tables of one experiment.
type Runner struct {
	ID          string
	Description string
	Run         func(cfg Config) ([]*Table, error)
}

var registry []Runner

func register(id, description string, run func(cfg Config) ([]*Table, error)) {
	registry = append(registry, Runner{ID: id, Description: description, Run: run})
}

// All returns the registered experiments sorted by id.
func All() []Runner {
	out := append([]Runner(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds one experiment.
func ByID(id string) (Runner, bool) {
	for _, r := range registry {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// Run executes one experiment by id with defaults applied.
func Run(id string, cfg Config) ([]*Table, error) {
	r, ok := ByID(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return r.Run(cfg.withDefaults())
}

// runtime returns the duration a generic figure reports for one run: the
// simulated cluster clock by default, real elapsed time under the native
// backend (which keeps no virtual clock).
func (c Config) runtime(res *miner.Result) time.Duration {
	if c.Backend == "native" {
		return res.WallTime
	}
	return res.SimTime
}

// phaseTime is runtime for one instrumented phase.
func (c Config) phaseTime(res *miner.Result, name string) time.Duration {
	if c.Backend == "native" {
		return res.Phases[name]
	}
	return res.SimPhases[name]
}

// secs renders a duration as seconds with three decimals.
func secs(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }

// ratio renders a speedup factor.
func ratio(base, opt time.Duration) string {
	if opt <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", float64(base)/float64(opt))
}
