package experiments

import (
	"fmt"
	"time"

	"sirum/internal/datagen"
	"sirum/internal/engine"
	"sirum/internal/explore"
	"sirum/internal/maxent"
	"sirum/internal/metrics"
	"sirum/internal/miner"
	"sirum/internal/platform"
	"sirum/internal/rule"
)

func init() {
	register("fig-5.1", "Baseline SIRUM on Spark vs PostgreSQL (Income, one node)", fig51)
	register("fig-5.2", "Baseline SIRUM on Spark vs Hive (TLC_160m)", fig52)
	register("fig-5.11", "Naive vs Baseline vs Optimized vs Optimized* (TLC samples)", fig511)
	register("fig-5.12", "Optimized vs Baseline across k (GDELT)", func(cfg Config) ([]*Table, error) {
		return optimizedVsBaseline(cfg, "fig-5.12", "gdelt", gdeltRows, cfg.s(256))
	})
	register("fig-5.13", "Optimized vs Baseline across k (SUSY)", func(cfg Config) ([]*Table, error) {
		return optimizedVsBaseline(cfg, "fig-5.13", "susy", susyRows, cfg.s(4))
	})
	register("fig-5.14", "Percent improvement vs |s| (Income and SUSY)", fig514)
	register("fig-5.15", "Data cube exploration: prior-work style vs Optimized (GDELT)", fig515)
	register("table-1.2", "The informative rule set over the flight data", table12)
	register("table-4.1", "The Rule Coverage Table after the third rule", table41)
}

// platformRun mines on a platform profile and returns the simulated time.
func platformRun(cfg Config, kind platform.Kind, executors, cores int, dsName string, paperRows int, opt miner.Options) (time.Duration, error) {
	ds, err := cfg.data(dsName, paperRows)
	if err != nil {
		return 0, err
	}
	conf := platform.Scale(platform.Config(kind, executors, cores, 0), float64(cfg.Scale))
	cl := engine.NewSimBackend(conf)
	defer cl.Close()
	opt.Seed = cfg.Seed
	res, err := miner.New(cl, ds, opt).Run()
	if err != nil {
		return 0, err
	}
	return res.SimTime, nil
}

func fig51(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "fig-5.1",
		Title:  "Baseline SIRUM on Spark vs PostgreSQL (Income, single node, k=10 |s|=16)",
		Header: []string{"platform", "sim_s", "vs_spark"},
		Notes:  []string{"expected shape: PostgreSQL several times slower (single process, one core)"},
	}
	opt := miner.Options{Variant: miner.Baseline, K: cfg.k(10), SampleSize: cfg.s(16)}
	// One node with 24 cores, matching the thesis' hardware (Section 5.1.1).
	spark, err := platformRun(cfg, platform.Spark, 1, 24, "income", incomeRows, opt)
	if err != nil {
		return nil, err
	}
	pg, err := platformRun(cfg, platform.Postgres, 1, 1, "income", incomeRows, opt)
	if err != nil {
		return nil, err
	}
	t.AddRow("Spark", secs(spark), "1.00x")
	t.AddRow("PostgreSQL", secs(pg), ratio(pg, spark))
	return []*Table{t}, nil
}

func fig52(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "fig-5.2",
		Title:  "Baseline SIRUM on Spark vs Hive (TLC_160m, full cluster, k=10 |s|=16)",
		Header: []string{"platform", "sim_s", "vs_spark"},
		Notes:  []string{"expected shape: Hive an order of magnitude slower (disk shuffles, job startup)"},
	}
	opt := miner.Options{Variant: miner.Baseline, K: cfg.k(10), SampleSize: cfg.s(16)}
	spark, err := platformRun(cfg, platform.Spark, cfg.Executors, cfg.Cores, "tlc", tlc160mRows, opt)
	if err != nil {
		return nil, err
	}
	hive, err := platformRun(cfg, platform.Hive, cfg.Executors, cfg.Cores, "tlc", tlc160mRows, opt)
	if err != nil {
		return nil, err
	}
	t.AddRow("Spark", secs(spark), "1.00x")
	t.AddRow("Hive", secs(hive), ratio(hive, spark))
	return []*Table{t}, nil
}

func fig511(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "fig-5.11",
		Title:  "Rule mining end to end: Naive vs Baseline vs Optimized vs Optimized* (TLC, k=20 |s|=64)",
		Header: []string{"dataset", "naive_s", "baseline_s", "optimized_s", "optimized*_s"},
		Notes: []string{
			"expected shape: Baseline >> Naive thanks to broadcast joins;",
			"Optimized ~5x Baseline; improvement grows with data size",
		},
	}
	sizes := []struct {
		label string
		rows  int
	}{{"TLC_2m", tlc2mRows}, {"TLC_20m", tlc20mRows}, {"TLC_40m", tlc40mRows}}
	if cfg.Quick {
		sizes = sizes[:2]
	}
	for _, sz := range sizes {
		ds, err := cfg.data("tlc", sz.rows)
		if err != nil {
			return nil, err
		}
		// One prepared session per dataset size: the four variant runs are
		// queries over shared loaded state.
		s, err := cfg.newSession(ds, cfg.s(64))
		if err != nil {
			return nil, err
		}
		base, err := s.mine(miner.Options{Variant: miner.Baseline, K: cfg.k(20), SampleSize: cfg.s(64)})
		if err != nil {
			s.close()
			return nil, err
		}
		naive, err := s.mine(miner.Options{Variant: miner.Naive, K: cfg.k(20), SampleSize: cfg.s(64)})
		if err != nil {
			s.close()
			return nil, err
		}
		optim, err := s.mine(miner.Options{Variant: miner.Optimized, K: cfg.k(20), SampleSize: cfg.s(64)})
		if err != nil {
			s.close()
			return nil, err
		}
		star, err := s.mine(miner.Options{
			Variant: miner.Optimized, K: cfg.k(20), SampleSize: cfg.s(64),
			TargetKL: base.KL, MaxRules: 4 * cfg.k(20),
		})
		if err != nil {
			s.close()
			return nil, err
		}
		t.AddRow(sz.label, secs(cfg.runtime(naive)), secs(cfg.runtime(base)), secs(cfg.runtime(optim)), secs(cfg.runtime(star)))
		t.Notes = append(t.Notes, sz.label+": "+s.amortNote())
		s.close()
	}
	return []*Table{t}, nil
}

func optimizedVsBaseline(cfg Config, id, name string, paperRows, sampleSize int) ([]*Table, error) {
	ds, err := cfg.data(name, paperRows)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Optimized vs Baseline across k (%s)", name),
		Header: []string{"k", "baseline_s", "optimized_s", "optimized*_s", "speedup"},
		Notes:  []string{"expected shape: Optimized consistently ~5x faster"},
	}
	ks := []int{10, 20, 50}
	if name == "susy" {
		ks = []int{5, 10} // scaled with the dataset (ancestor blowup)
	}
	if cfg.Quick {
		ks = ks[:2]
	}
	// The whole k sweep queries one prepared session.
	s, err := cfg.newSession(ds, sampleSize)
	if err != nil {
		return nil, err
	}
	defer s.close()
	for _, k := range ks {
		base, err := s.mine(miner.Options{Variant: miner.Baseline, K: k, SampleSize: sampleSize})
		if err != nil {
			return nil, err
		}
		optim, err := s.mine(miner.Options{Variant: miner.Optimized, K: k, SampleSize: sampleSize})
		if err != nil {
			return nil, err
		}
		star, err := s.mine(miner.Options{
			Variant: miner.Optimized, K: k, SampleSize: sampleSize,
			TargetKL: base.KL, MaxRules: 4 * k,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(k), secs(cfg.runtime(base)), secs(cfg.runtime(optim)), secs(cfg.runtime(star)),
			ratio(cfg.runtime(base), cfg.runtime(optim)))
	}
	t.Notes = append(t.Notes, s.amortNote())
	return []*Table{t}, nil
}

func fig514(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "fig-5.14",
		Title:  "Percent improvement of Optimized over Baseline vs |s|",
		Header: []string{"dataset", "|s|", "baseline_s", "optimized_s", "improvement_%"},
		Notes:  []string{"expected shape: ~80% improvement (factor of five) across sample sizes"},
	}
	cases := []struct {
		name    string
		rows    int
		samples []int
	}{
		{"income", incomeRows, []int{cfg.s(64), cfg.s(128), cfg.s(256)}},
		{"susy", susyRows, []int{cfg.s(4), cfg.s(8), cfg.s(16)}},
	}
	for _, cse := range cases {
		ds, err := cfg.data(cse.name, cse.rows)
		if err != nil {
			return nil, err
		}
		// One session per dataset; the |s| sweep redraws the query sample
		// per size but reuses the loaded blocks and transform.
		sess, err := cfg.newSession(ds, cse.samples[0])
		if err != nil {
			return nil, err
		}
		for _, s := range cse.samples {
			base, err := sess.mine(miner.Options{Variant: miner.Baseline, K: cfg.k(10), SampleSize: s})
			if err != nil {
				sess.close()
				return nil, err
			}
			optim, err := sess.mine(miner.Options{Variant: miner.Optimized, K: cfg.k(10), SampleSize: s})
			if err != nil {
				sess.close()
				return nil, err
			}
			impr := 100 * (1 - cfg.runtime(optim).Seconds()/cfg.runtime(base).Seconds())
			t.AddRow(cse.name, fmt.Sprint(s), secs(cfg.runtime(base)), secs(cfg.runtime(optim)),
				fmt.Sprintf("%.0f", impr))
		}
		t.Notes = append(t.Notes, cse.name+": "+sess.amortNote())
		sess.close()
	}
	return []*Table{t}, nil
}

func fig515(cfg Config) ([]*Table, error) {
	ds, err := cfg.data("gdelt", gdeltRows)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig-5.15",
		Title:  "Data cube exploration (GDELT, k=10, prior = 2 lowest-cardinality group-bys)",
		Header: []string{"implementation", "rule_gen_s", "scaling_s", "total_s"},
		Notes: []string{
			"expected shape: ~10x for Optimized; prior-work-style scaling (reset",
			"multipliers on every insertion) dominates the baseline's runtime",
		},
	}
	runs := []struct {
		label     string
		optimized bool
		multi     bool
	}{
		{"Baseline (prior-work scaling)", false, false},
		{"Optimized (no multi-rule)", true, false},
		{"Optimized", true, true},
	}
	// The three implementations are queries over one prepared session
	// (exploration generates candidates exhaustively, so the session is
	// prepared without a pruning sample).
	s, err := cfg.newSession(ds, 0)
	if err != nil {
		return nil, err
	}
	defer s.close()
	for _, r := range runs {
		rec, err := s.explore(explore.Options{
			K: cfg.k(10), GroupBys: 2, Optimized: r.optimized, MultiRule: r.multi,
		})
		if err != nil {
			return nil, err
		}
		res := rec.Result
		t.AddRow(r.label,
			secs(cfg.phaseTime(res, metrics.PhaseRuleGen)),
			secs(cfg.phaseTime(res, metrics.PhaseScaling)),
			secs(cfg.runtime(res)))
	}
	t.Notes = append(t.Notes, s.amortNote())
	return []*Table{t}, nil
}

func table12(cfg Config) ([]*Table, error) {
	ds := datagen.Flights()
	cl := cfg.cluster(2, 2, 0)
	defer cl.Close()
	res, err := miner.New(cl, ds, miner.Options{Variant: miner.Baseline, K: 3, SampleSize: 0, Seed: cfg.Seed}).Run()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "table-1.2",
		Title:  "Informative rule set over the flight dataset",
		Header: []string{"rule", "Day", "Origin", "Destination", "AVG(Late)", "count"},
		Notes:  []string{"matches Table 1.2: (*,*,*) 10.4/14, (*,*,London) 15.3/4, (Fri,*,*) 18/2, (Sat,*,*) 16/2"},
	}
	t.AddRow("1", "*", "*", "*", fmt.Sprintf("%.1f", ds.MeanMeasure()), fmt.Sprint(ds.NumRows()))
	for i, mr := range res.Rules {
		cells := make([]string, 3)
		for j := 0; j < 3; j++ {
			if mr.Rule[j] == rule.Wildcard {
				cells[j] = "*"
			} else {
				cells[j] = ds.Dicts[j].Value(mr.Rule[j])
			}
		}
		t.AddRow(fmt.Sprint(i+2), cells[0], cells[1], cells[2],
			fmt.Sprintf("%.1f", mr.Avg), fmt.Sprint(mr.Count))
	}
	return []*Table{t}, nil
}

func table41(cfg Config) ([]*Table, error) {
	ds := datagen.Flights()
	_, work := maxent.NewTransform(ds.Measure)
	s := maxent.NewRCTScaler(ds, work, 4)
	s.Epsilon = 1e-10
	add := func(vals ...string) error {
		r, err := rule.Parse(vals, ds)
		if err != nil {
			return err
		}
		_, err = s.AddRule(r)
		return err
	}
	if err := add("*", "*", "*"); err != nil {
		return nil, err
	}
	if err := add("*", "*", "London"); err != nil {
		return nil, err
	}
	var snapshot []maxent.RCTRow
	s.OnRCTBuilt = func(rows []maxent.RCTRow) { snapshot = rows }
	if err := add("Fri", "*", "*"); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "table-4.1",
		Title:  "RCT after the third rule has been generated (before rescaling)",
		Header: []string{"BA", "count", "SUM(m)", "SUM(m^)"},
		Notes:  []string{"matches Table 4.1: 1000/9/68/75.6, 1100/3/41/45.9, 1010/1/16/8.4, 1110/1/20/15.3"},
	}
	for _, row := range snapshot {
		t.AddRow(row.BA, fmt.Sprint(row.Count),
			fmt.Sprintf("%.0f", row.SumM), fmt.Sprintf("%.2f", row.SumMhat))
	}
	return []*Table{t}, nil
}
