package maxent

import (
	"fmt"

	"sirum/internal/bitset"
	"sirum/internal/dataset"
	"sirum/internal/metrics"
	"sirum/internal/rule"
)

// MaxRCTRules caps the rule-list width of the RCT scaler. The thesis assumes
// at most ~50 rules for interpretability; multi-rule* variants can exceed
// that, so the cap is generous. Coverage bit arrays are stored as flat
// uint64 words, MaxRCTRules/64 words per tuple.
const MaxRCTRules = 512

// rctRow is one row of the Rule Coverage Table (Table 4.1): a subset of D,
// pairwise disjoint with every other row, identified by the exact set of
// rules its tuples match. All tuples in the row share the same estimate
// Π_{i∈BA} λ(rᵢ), so SUM(m̂) updates multiplicatively.
type rctRow struct {
	ba      []uint64
	count   int
	sumM    float64
	sumMhat float64
}

// RCTScaler implements Algorithm 3: per-tuple coverage bit arrays plus a
// Rule Coverage Table so that iterative scaling touches D only twice per
// rule added — once to extend the bit arrays and build the RCT, once to
// write the converged estimates back — instead of twice per scaling loop.
type RCTScaler struct {
	ds   *dataset.Dataset
	work []float64
	mhat []float64

	rules   []rule.Rule
	lambda  []float64
	targets []float64
	counts  []int

	words int      // words per bit array, fixed at construction
	ba    []uint64 // len = rows*words; tuple i owns ba[i*words : (i+1)*words]

	rct map[string]*rctRow

	Epsilon  float64
	MaxLoops int
	Reg      *metrics.Registry

	// OnRCTBuilt, if set, is invoked after the group-by pass of AddRule
	// (line 6 of Algorithm 3) with the freshly built table, before any
	// scaling happens — the state Table 4.1 of the thesis depicts.
	OnRCTBuilt func([]RCTRow)
}

// NewRCTScaler builds an RCT scaler over ds with the given transformed
// measure column. maxRules bounds the number of rules ever added (use the
// miner's k plus slack); it is capped at MaxRCTRules.
func NewRCTScaler(ds *dataset.Dataset, work []float64, maxRules int) *RCTScaler {
	if maxRules <= 0 {
		maxRules = 64
	}
	if maxRules > MaxRCTRules {
		maxRules = MaxRCTRules
	}
	words := (maxRules + 63) / 64
	mhat := make([]float64, len(work))
	for i := range mhat {
		mhat[i] = 1
	}
	return &RCTScaler{
		ds:       ds,
		work:     work,
		mhat:     mhat,
		words:    words,
		ba:       make([]uint64, ds.NumRows()*words),
		rct:      make(map[string]*rctRow),
		Epsilon:  DefaultEpsilon,
		MaxLoops: DefaultMaxLoops,
	}
}

// Mhat returns the live estimate column.
func (s *RCTScaler) Mhat() []float64 { return s.mhat }

// Rules returns the rules added so far.
func (s *RCTScaler) Rules() []rule.Rule { return s.rules }

// Lambdas returns the rule multipliers.
func (s *RCTScaler) Lambdas() []float64 { return s.lambda }

// Targets returns m(r) for each rule on the transformed scale.
func (s *RCTScaler) Targets() []float64 { return s.targets }

// Counts returns |S_D(r)| for each rule.
func (s *RCTScaler) Counts() []int { return s.counts }

// NumRCTRows exposes the current table size (for tests and the space
// analysis of Section 4.1).
func (s *RCTScaler) NumRCTRows() int { return len(s.rct) }

// RCTRow describes one row of the coverage table for inspection.
type RCTRow struct {
	BA      string // bit string, first rule leftmost, e.g. "1100"
	Count   int
	SumM    float64
	SumMhat float64
}

// Snapshot returns the current RCT contents (order unspecified), used by the
// Table 4.1 golden test and the data-quality example.
func (s *RCTScaler) Snapshot() []RCTRow {
	out := make([]RCTRow, 0, len(s.rct))
	for _, row := range s.rct {
		bs := make([]byte, len(s.rules))
		for i := range s.rules {
			if row.ba[i/64]&(1<<(uint(i)%64)) != 0 {
				bs[i] = '1'
			} else {
				bs[i] = '0'
			}
		}
		//sirum:allow zerocopykey deliberate copy: Snapshot is a cold inspection path and each row owns its string
		out = append(out, RCTRow{BA: string(bs), Count: row.count, SumM: row.sumM, SumMhat: row.sumMhat})
	}
	return out
}

// appendBAKey appends the map-key encoding of a coverage bit array (8
// little-endian bytes per word) to dst. Reusing dst keeps the per-tuple
// group-by and write-back loops allocation-free.
func appendBAKey(dst []byte, words []uint64) []byte {
	return bitset.FromWords(len(words)*64, words).AppendKey(dst)
}

// AddRule implements Scaler: lines 1–6 of Algorithm 3 extend the bit arrays
// and rebuild the RCT with one pass over D, the scaling loop runs entirely
// on the RCT, and convergence triggers the single write-back pass.
func (s *RCTScaler) AddRule(r rule.Rule) (ScaleStats, error) {
	w := len(s.rules)
	if w >= s.words*64 {
		return ScaleStats{}, fmt.Errorf("maxent: RCT scaler capacity %d rules exceeded", s.words*64)
	}
	// Pass 1 over D: set bit w for covered tuples, compute the target, and
	// group by bit array to build the RCT.
	var sum float64
	count := 0
	s.rct = make(map[string]*rctRow, 2*len(s.rct)+1)
	word, bit := w/64, uint64(1)<<(uint(w)%64)
	keyBuf := make([]byte, 0, s.words*8)
	for i := 0; i < s.ds.NumRows(); i++ {
		bai := s.ba[i*s.words : (i+1)*s.words]
		if r.MatchesRow(s.ds, i) {
			bai[word] |= bit
			sum += s.work[i]
			count++
		}
		// Scratch-buffer key: lookups via string(keyBuf) do not allocate,
		// so only first-seen signatures pay a string.
		keyBuf = appendBAKey(keyBuf[:0], bai)
		row, ok := s.rct[string(keyBuf)]
		if !ok {
			row = &rctRow{ba: append([]uint64(nil), bai...)}
			s.rct[string(keyBuf)] = row
		}
		row.count++
		row.sumM += s.work[i]
		row.sumMhat += s.mhat[i]
	}
	if count == 0 {
		// Roll back: no bit was set, so the RCT rebuild is still valid.
		return ScaleStats{}, fmt.Errorf("maxent: rule %v has empty support", r)
	}
	s.rules = append(s.rules, r.Clone())
	s.lambda = append(s.lambda, 1)
	s.targets = append(s.targets, sum/float64(count))
	s.counts = append(s.counts, count)
	if s.OnRCTBuilt != nil {
		s.OnRCTBuilt(s.Snapshot())
	}

	st, err := s.scale()
	st.DataScans = 2
	if err != nil {
		return st, err
	}
	// Write-back pass (lines 23–25): every tuple's estimate is the product
	// of the multipliers of the rules it matches; tuples sharing a bit
	// array share the estimate, so compute one product per RCT row.
	if s.words == 1 {
		// Word64 fast path: with the rule list in one machine word, key the
		// estimate table directly by the coverage word.
		est := make(map[uint64]float64, len(s.rct))
		for _, row := range s.rct {
			est[row.ba[0]] = s.productOf(row.ba)
		}
		for i, w := range s.ba {
			s.mhat[i] = est[w]
		}
	} else {
		est := make(map[string]float64, len(s.rct))
		for key, row := range s.rct {
			est[key] = s.productOf(row.ba)
		}
		for i := 0; i < s.ds.NumRows(); i++ {
			keyBuf = appendBAKey(keyBuf[:0], s.ba[i*s.words:(i+1)*s.words])
			s.mhat[i] = est[string(keyBuf)]
		}
	}
	if s.Reg != nil {
		s.Reg.Add(metrics.CtrScanRows, int64(2*s.ds.NumRows()))
	}
	return st, nil
}

// productOf multiplies the lambdas of the rules whose coverage bits are set,
// walking only the set bits instead of testing every rule.
func (s *RCTScaler) productOf(ba []uint64) float64 {
	p := 1.0
	bitset.FromWords(len(s.rules), ba).ForEachSet(func(i int) {
		p *= s.lambda[i]
	})
	return p
}

// scale runs the Algorithm 3 loop over the RCT only.
func (s *RCTScaler) scale() (ScaleStats, error) {
	var st ScaleStats
	rows := make([]*rctRow, 0, len(s.rct))
	for _, row := range s.rct {
		rows = append(rows, row)
	}
	diffs := make([]float64, len(s.rules))
	mhatAvg := make([]float64, len(s.rules))
	for st.Loops = 0; st.Loops < s.MaxLoops; st.Loops++ {
		// Line 10: merge partial aggregates from rows covering each rule.
		for ri := range s.rules {
			word, bit := ri/64, uint64(1)<<(uint(ri)%64)
			var sum float64
			for _, row := range rows {
				if row.ba[word]&bit != 0 {
					sum += row.sumMhat
				}
			}
			mhatAvg[ri] = sum / float64(s.counts[ri])
			diffs[ri] = relDiff(s.targets[ri], mhatAvg[ri])
		}
		next := 0
		for ri := 1; ri < len(diffs); ri++ {
			if diffs[ri] > diffs[next] {
				next = ri
			}
		}
		if diffs[next] <= s.Epsilon {
			st.Converged = true
			break
		}
		ratio := scaleRatio(s.targets[next], mhatAvg[next])
		s.lambda[next] *= ratio
		// Lines 17–21: update only the affected RCT rows.
		word, bit := next/64, uint64(1)<<(uint(next)%64)
		for _, row := range rows {
			if row.ba[word]&bit != 0 {
				row.sumMhat *= ratio
			}
		}
		if s.Reg != nil {
			s.Reg.Add(metrics.CtrScalingLoops, 1)
		}
	}
	if !st.Converged {
		return st, fmt.Errorf("maxent: RCT iterative scaling did not converge in %d loops", s.MaxLoops)
	}
	return st, nil
}
