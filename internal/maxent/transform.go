// Package maxent implements the maximum-entropy machinery of SIRUM
// (Chapter 2 of the thesis): the measure-attribute transformations that make
// the optimization well-posed, iterative scaling (Algorithm 1), the Rule
// Coverage Table accelerated scaler (Algorithm 3), Kullback-Leibler
// divergence, and the information-gain estimate of Equation 2.2.
package maxent

import (
	"fmt"
	"math"
)

// Transform records the preprocessing of Section 2.2 applied to a measure
// column so that every value is non-negative and the total is non-zero, the
// preconditions of the maximum-entropy formulation. With the all-wildcards
// rule always selected first, a total C ≠ 0 (not necessarily 1) suffices.
type Transform struct {
	Shift float64 // added to every value to remove negatives (−M in the thesis)
	Add   float64 // added to every value when the sum was zero (1/|D|)
	Total float64 // Σ of transformed values (C)
}

// NewTransform derives the transform for the given measure column and
// returns the transformed copy. The input is not modified.
func NewTransform(measure []float64) (Transform, []float64) {
	work := append([]float64(nil), measure...)
	var tr Transform
	minV := math.Inf(1)
	for _, v := range work {
		if v < minV {
			minV = v
		}
	}
	if len(work) > 0 && minV < 0 {
		tr.Shift = -minV
		for i := range work {
			work[i] += tr.Shift
		}
	}
	var sum float64
	for _, v := range work {
		sum += v
	}
	if sum == 0 && len(work) > 0 {
		tr.Add = 1 / float64(len(work))
		for i := range work {
			work[i] += tr.Add
		}
		sum = 1
	}
	tr.Total = sum
	return tr, work
}

// Apply maps an original-scale value to the transformed scale.
func (t Transform) Apply(v float64) float64 { return v + t.Shift + t.Add }

// Invert maps a transformed-scale value back to the original scale.
func (t Transform) Invert(v float64) float64 { return v - t.Shift - t.Add }

// InvertAvg maps a transformed-scale average over n tuples back to the
// original scale; the shift and add constants are per-tuple so averages
// invert the same way as values.
func (t Transform) InvertAvg(avg float64) float64 { return avg - t.Shift - t.Add }

// Validate checks that a transformed column satisfies the preconditions.
func Validate(work []float64) error {
	var sum float64
	for i, v := range work {
		if v < 0 {
			return fmt.Errorf("maxent: transformed measure[%d] = %v is negative", i, v)
		}
		sum += v
	}
	if len(work) > 0 && sum == 0 {
		return fmt.Errorf("maxent: transformed measure sums to zero")
	}
	return nil
}
