package maxent

import (
	"fmt"
	"math"

	"sirum/internal/dataset"
	"sirum/internal/metrics"
	"sirum/internal/rule"
)

// DefaultEpsilon is the relative-difference convergence threshold ε of
// Algorithm 1 (the thesis uses 0.01 throughout its evaluation).
const DefaultEpsilon = 0.01

// DefaultMaxLoops bounds the scaling loop; generalized iterative scaling
// converges for consistent constraints, so this is a safety net, not a
// tuning knob.
const DefaultMaxLoops = 100000

// ScaleStats reports one AddRule invocation.
type ScaleStats struct {
	Loops     int  // inner-loop iterations executed
	Converged bool // false only if MaxLoops was hit
	DataScans int  // full passes over D (2 per loop for naive, 2 total for RCT)
}

// Scaler is the incremental maximum-entropy estimator: rules are appended one
// at a time and the estimate column m̂ is rescaled to satisfy every
// constraint m(r) = m̂(r).
type Scaler interface {
	// AddRule appends r and rescales to convergence. Rules with empty
	// support are rejected.
	AddRule(r rule.Rule) (ScaleStats, error)
	// Mhat returns the live estimate column (transformed scale), aligned
	// with the dataset rows. Callers must not modify it.
	Mhat() []float64
	// Rules returns the rules added so far.
	Rules() []rule.Rule
	// Lambdas returns the rule multipliers λ(r), aligned with Rules.
	Lambdas() []float64
}

// NaiveScaler implements Algorithm 1 verbatim: each scaling loop recomputes
// every rule's estimated average with a full pass over D, re-evaluating
// t ⊨ r attribute by attribute, and a second pass updates the estimates of
// the scaled rule's support set. This is the baseline the Rule Coverage
// Table optimization (Section 4.1) is measured against.
type NaiveScaler struct {
	ds   *dataset.Dataset
	work []float64
	mhat []float64

	rules   []rule.Rule
	lambda  []float64
	targets []float64 // m(r): average transformed measure over the support set
	counts  []int     // |S_D(r)|

	// ResetOnAdd replays the iterative-scaling style of Sarawagi's
	// user-cognizant analysis tool ([29], Section 5.6.2): every AddRule
	// resets all multipliers to 1 and rescales from scratch instead of
	// carrying the previous λ values forward.
	ResetOnAdd bool

	Epsilon  float64
	MaxLoops int
	Reg      *metrics.Registry
}

// NewNaiveScaler builds a scaler over ds with the given transformed measure
// column (see NewTransform). The estimates start at 1, the empty-product
// default of t[m̂] = Π λ.
func NewNaiveScaler(ds *dataset.Dataset, work []float64) *NaiveScaler {
	mhat := make([]float64, len(work))
	for i := range mhat {
		mhat[i] = 1
	}
	return &NaiveScaler{
		ds:       ds,
		work:     work,
		mhat:     mhat,
		Epsilon:  DefaultEpsilon,
		MaxLoops: DefaultMaxLoops,
	}
}

// Mhat returns the live estimate column.
func (s *NaiveScaler) Mhat() []float64 { return s.mhat }

// Rules returns the rules added so far.
func (s *NaiveScaler) Rules() []rule.Rule { return s.rules }

// Lambdas returns the rule multipliers.
func (s *NaiveScaler) Lambdas() []float64 { return s.lambda }

// Targets returns m(r) for each rule on the transformed scale.
func (s *NaiveScaler) Targets() []float64 { return s.targets }

// Counts returns |S_D(r)| for each rule.
func (s *NaiveScaler) Counts() []int { return s.counts }

func (s *NaiveScaler) addRuleEntry(r rule.Rule) error {
	var sum float64
	count := 0
	for i := 0; i < s.ds.NumRows(); i++ {
		if r.MatchesRow(s.ds, i) {
			sum += s.work[i]
			count++
		}
	}
	if count == 0 {
		return fmt.Errorf("maxent: rule %v has empty support", r)
	}
	s.rules = append(s.rules, r.Clone())
	s.lambda = append(s.lambda, 1)
	s.targets = append(s.targets, sum/float64(count))
	s.counts = append(s.counts, count)
	return nil
}

// AddRule implements Scaler.
func (s *NaiveScaler) AddRule(r rule.Rule) (ScaleStats, error) {
	if err := s.addRuleEntry(r); err != nil {
		return ScaleStats{}, err
	}
	if s.ResetOnAdd {
		for i := range s.lambda {
			s.lambda[i] = 1
		}
		for i := range s.mhat {
			s.mhat[i] = 1
		}
	}
	return s.scale()
}

// scale runs Algorithm 1 to convergence.
func (s *NaiveScaler) scale() (ScaleStats, error) {
	var st ScaleStats
	diffs := make([]float64, len(s.rules))
	mhatAvg := make([]float64, len(s.rules))
	for st.Loops = 0; st.Loops < s.MaxLoops; st.Loops++ {
		// Lines 3–6: recompute every rule's estimated average with a full
		// pass over D, re-evaluating coverage tuple by tuple.
		for ri := range s.rules {
			var sum float64
			for i := 0; i < s.ds.NumRows(); i++ {
				if s.rules[ri].MatchesRow(s.ds, i) {
					sum += s.mhat[i]
				}
			}
			mhatAvg[ri] = sum / float64(s.counts[ri])
			diffs[ri] = relDiff(s.targets[ri], mhatAvg[ri])
		}
		st.DataScans++
		// Line 7: the rule with the greatest constraint violation.
		next := 0
		for ri := 1; ri < len(diffs); ri++ {
			if diffs[ri] > diffs[next] {
				next = ri
			}
		}
		if diffs[next] <= s.Epsilon {
			st.Converged = true
			break
		}
		// Line 9: scale the multiplier.
		ratio := scaleRatio(s.targets[next], mhatAvg[next])
		s.lambda[next] *= ratio
		// Lines 10–12: update the estimates of the covered tuples. The
		// incremental multiply is equivalent to recomputing Π λ.
		for i := 0; i < s.ds.NumRows(); i++ {
			if s.rules[next].MatchesRow(s.ds, i) {
				s.mhat[i] *= ratio
			}
		}
		st.DataScans++
		if s.Reg != nil {
			s.Reg.Add(metrics.CtrScalingLoops, 1)
			s.Reg.Add(metrics.CtrScanRows, int64(2*s.ds.NumRows()))
		}
	}
	if !st.Converged {
		return st, fmt.Errorf("maxent: iterative scaling did not converge in %d loops", s.MaxLoops)
	}
	return st, nil
}

// relDiff is |m - m̂| / |m| with a guard for vanishing targets, where the
// relative form is meaningless and the absolute difference is used instead.
func relDiff(target, est float64) float64 {
	d := math.Abs(target - est)
	if math.Abs(target) < 1e-12 {
		return d
	}
	return d / math.Abs(target)
}

// scaleRatio is m(r)/m̂(r) with a floor protecting against a zero target
// (which would zero out every covered estimate and break other constraints).
func scaleRatio(target, est float64) float64 {
	const floor = 1e-12
	if target < floor {
		target = floor
	}
	if est < floor {
		est = floor
	}
	return target / est
}
