package maxent

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sirum/internal/datagen"
	"sirum/internal/dataset"
	"sirum/internal/rule"
)

var (
	_ Scaler = (*NaiveScaler)(nil)
	_ Scaler = (*RCTScaler)(nil)
)

func mustRule(t *testing.T, ds *dataset.Dataset, vals ...string) rule.Rule {
	t.Helper()
	r, err := rule.Parse(vals, ds)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func approx(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", what, got, want, tol)
	}
}

func TestTransformIdentityForValidMeasure(t *testing.T) {
	m := []float64{1, 2, 3}
	tr, work := NewTransform(m)
	if tr.Shift != 0 || tr.Add != 0 || tr.Total != 6 {
		t.Errorf("transform = %+v", tr)
	}
	for i := range m {
		if work[i] != m[i] {
			t.Errorf("work[%d] = %v", i, work[i])
		}
	}
	// Input untouched.
	work[0] = 99
	if m[0] != 1 {
		t.Error("NewTransform modified its input")
	}
}

func TestTransformNegativeValues(t *testing.T) {
	m := []float64{-5, 0, 5}
	tr, work := NewTransform(m)
	if tr.Shift != 5 {
		t.Errorf("Shift = %v, want 5", tr.Shift)
	}
	if work[0] != 0 || work[2] != 10 {
		t.Errorf("work = %v", work)
	}
	if err := Validate(work); err != nil {
		t.Error(err)
	}
	approx(t, "Invert(Apply(x))", tr.Invert(tr.Apply(3.5)), 3.5, 1e-12)
}

func TestTransformZeroSum(t *testing.T) {
	m := []float64{0, 0, 0, 0}
	tr, work := NewTransform(m)
	if tr.Add != 0.25 {
		t.Errorf("Add = %v, want 1/4", tr.Add)
	}
	if tr.Total != 1 {
		t.Errorf("Total = %v, want 1", tr.Total)
	}
	if err := Validate(work); err != nil {
		t.Error(err)
	}
}

func TestTransformNegativeThatSumsToZero(t *testing.T) {
	m := []float64{-2, -2}
	_, work := NewTransform(m)
	if err := Validate(work); err != nil {
		t.Errorf("shift+add combination invalid: %v (work=%v)", err, work)
	}
}

func TestTransformEmpty(t *testing.T) {
	tr, work := NewTransform(nil)
	if len(work) != 0 || tr.Shift != 0 || tr.Add != 0 {
		t.Errorf("empty transform %+v %v", tr, work)
	}
}

func TestValidateRejectsBadColumns(t *testing.T) {
	if err := Validate([]float64{1, -1, 3}); err == nil {
		t.Error("negative value accepted")
	}
	if err := Validate([]float64{0, 0}); err == nil {
		t.Error("zero-sum column accepted")
	}
	if err := Validate(nil); err != nil {
		t.Error("empty column rejected")
	}
}

func TestGainBasics(t *testing.T) {
	if Gain(0, 5) != 0 || Gain(5, 0) != 0 || Gain(-1, 2) != 0 {
		t.Error("degenerate gains not zero")
	}
	if Gain(10, 10) != 0 {
		t.Error("satisfied constraint gain not zero")
	}
	if Gain(10, 5) <= 0 {
		t.Error("underestimated rule must have positive gain")
	}
	if Gain(5, 10) >= 0 {
		t.Error("overestimated rule must have negative gain")
	}
	approx(t, "Gain(10,5)", Gain(10, 5), 10*math.Log(2), 1e-12)
}

// TestGainPaperExample pins Section 2.4's claim: after r1, the rule with the
// highest gain over the flight data is (*, *, London).
func TestGainPaperExample(t *testing.T) {
	ds := datagen.Flights()
	_, work := NewTransform(ds.Measure)
	avg := ds.MeanMeasure()
	mhat := make([]float64, ds.NumRows())
	for i := range mhat {
		mhat[i] = avg
	}
	best := ""
	bestGain := math.Inf(-1)
	seen := map[string]bool{}
	buf := make([]int32, 3)
	for i := 0; i < ds.NumRows(); i++ {
		row, _ := ds.Row(i, buf)
		rule.FromTuple(row).ForEachGeneralization(rule.AllPositions(3), true, func(a rule.Rule) {
			k := a.Key()
			if seen[k] {
				return
			}
			seen[k] = true
			g := GainOf(a, ds, work, mhat)
			if g > bestGain {
				bestGain = g
				best = a.Format(ds.Dicts)
			}
		})
	}
	if best != "(*, *, London)" {
		t.Errorf("best rule after r1 = %s (gain %v), want (*, *, London)", best, bestGain)
	}
}

// TestGainOfSelectedRuleIsZero pins the observation of Section 2.4: once a
// rule is added, its constraint holds and its gain is 0.
func TestGainOfSelectedRuleIsZero(t *testing.T) {
	ds := datagen.Flights()
	_, work := NewTransform(ds.Measure)
	s := NewNaiveScaler(ds, work)
	s.Epsilon = 1e-10
	r2 := mustRule(t, ds, "*", "*", "London")
	for _, r := range []rule.Rule{rule.AllWildcards(3), r2} {
		if _, err := s.AddRule(r); err != nil {
			t.Fatal(err)
		}
	}
	if g := GainOf(r2, ds, work, s.Mhat()); math.Abs(g) > 1e-6 {
		t.Errorf("gain of selected rule = %v, want ~0", g)
	}
}

func TestKLDivergenceProperties(t *testing.T) {
	p := []float64{1, 2, 3, 4}
	if got := KLDivergence(p, p); got != 0 {
		t.Errorf("self KL = %v", got)
	}
	q := []float64{4, 3, 2, 1}
	if KLDivergence(p, q) <= 0 {
		t.Error("KL of distinct distributions not positive")
	}
	// Scale invariance of the normalized form.
	q2 := []float64{8, 6, 4, 2}
	approx(t, "scale invariance", KLDivergence(p, q), KLDivergence(p, q2), 1e-12)
	if !math.IsInf(KLDivergence([]float64{1, 1}, []float64{1, 0}), 1) {
		t.Error("absolute continuity violation must be +Inf")
	}
	if KLDivergence([]float64{0, 0}, []float64{1, 1}) != 0 {
		t.Error("degenerate zero-mass P")
	}
}

// TestKLFlightGolden pins the KL trajectory of the running example. The
// thesis quotes 4.1e-3 and 1.4e-3; those constants do not reproduce under
// any standard log base, but the substantive claim — adding (*, *, London)
// reduces the divergence — does, and these nat-scale values are pinned as
// this implementation's goldens (see EXPERIMENTS.md).
func TestKLFlightGolden(t *testing.T) {
	ds := datagen.Flights()
	_, work := NewTransform(ds.Measure)
	avg := ds.MeanMeasure()
	mhat1 := make([]float64, 14)
	for i := range mhat1 {
		mhat1[i] = avg
	}
	kl1 := KLDivergence(work, mhat1)
	approx(t, "KL(m||mhat1)", kl1, 0.146043, 1e-5)

	mhat2 := make([]float64, 14)
	for i := range mhat2 {
		mhat2[i] = 8.4
	}
	for _, i := range []int{0, 3, 5, 10} {
		mhat2[i] = 15.25
	}
	kl2 := KLDivergence(work, mhat2)
	approx(t, "KL(m||mhat2)", kl2, 0.104610, 1e-5)
	if kl2 >= kl1 {
		t.Error("adding rule 2 must reduce KL divergence")
	}
}

func TestInformationGain(t *testing.T) {
	ds := datagen.Flights()
	_, work := NewTransform(ds.Measure)
	avg := ds.MeanMeasure()
	base := make([]float64, 14)
	for i := range base {
		base[i] = avg
	}
	if got := InformationGain(work, base); math.Abs(got) > 1e-12 {
		t.Errorf("info gain of baseline estimates = %v, want 0", got)
	}
	mhat2 := make([]float64, 14)
	for i := range mhat2 {
		mhat2[i] = 8.4
	}
	for _, i := range []int{0, 3, 5, 10} {
		mhat2[i] = 15.25
	}
	got := InformationGain(work, mhat2)
	approx(t, "info gain after r2", got, 0.146043-0.104610, 1e-5)
	if InformationGain(nil, nil) != 0 {
		t.Error("empty info gain")
	}
}

// runScaler adds the flight example's first two rules with a tight epsilon
// and returns the scaler for inspection.
func addFlightRules(t *testing.T, s Scaler, ds *dataset.Dataset, rules ...rule.Rule) {
	t.Helper()
	for _, r := range rules {
		if st, err := s.AddRule(r); err != nil || !st.Converged {
			t.Fatalf("AddRule(%v): %v (stats %+v)", r, err, st)
		}
	}
}

// TestNaiveScalerFlightExample pins the m̂1 and m̂2 columns of Table 1.1: all
// estimates are 10.36 after r1; after r2 the London-bound flights get 15.25
// and the rest 8.4. It also checks the λ values the thesis settles on
// (λ1 = 8.4, λ2 = 1.8 at its rounding).
func TestNaiveScalerFlightExample(t *testing.T) {
	ds := datagen.Flights()
	_, work := NewTransform(ds.Measure)
	s := NewNaiveScaler(ds, work)
	s.Epsilon = 1e-10

	addFlightRules(t, s, ds, rule.AllWildcards(3))
	for i, v := range s.Mhat() {
		approx(t, "mhat1", v, 145.0/14.0, 1e-6)
		_ = i
	}

	addFlightRules(t, s, ds, mustRule(t, ds, "*", "*", "London"))
	covered := map[int]bool{0: true, 3: true, 5: true, 10: true}
	for i, v := range s.Mhat() {
		want := 8.4
		if covered[i] {
			want = 15.25
		}
		approx(t, "mhat2", v, want, 1e-6)
	}
	approx(t, "lambda1", s.Lambdas()[0], 8.4, 1e-6)
	approx(t, "lambda2", s.Lambdas()[1], 15.25/8.4, 1e-6)
}

// TestNaiveScalerThirdRule pins the m̂3 column of Table 1.1 (values 22.4,
// 13.6, 12.9, 7.8 at the thesis' rounding).
func TestNaiveScalerThirdRule(t *testing.T) {
	ds := datagen.Flights()
	_, work := NewTransform(ds.Measure)
	s := NewNaiveScaler(ds, work)
	s.Epsilon = 1e-10
	addFlightRules(t, s, ds,
		rule.AllWildcards(3),
		mustRule(t, ds, "*", "*", "London"),
		mustRule(t, ds, "Fri", "*", "*"))
	want := map[int]float64{0: 22.4, 1: 13.6, 3: 12.9, 5: 12.9, 10: 12.9}
	for i, v := range s.Mhat() {
		w, ok := want[i]
		if !ok {
			w = 7.8
		}
		approx(t, "mhat3", v, w, 0.06)
	}
	// The constraints themselves must hold tightly.
	for ri, r := range s.Rules() {
		var sum float64
		n := 0
		for i := 0; i < ds.NumRows(); i++ {
			if r.MatchesRow(ds, i) {
				sum += s.Mhat()[i]
				n++
			}
		}
		approx(t, "constraint "+r.String(), sum/float64(n), s.Targets()[ri], 1e-6)
	}
}

func TestNaiveScalerRejectsEmptySupport(t *testing.T) {
	ds := datagen.Flights()
	_, work := NewTransform(ds.Measure)
	s := NewNaiveScaler(ds, work)
	bad := rule.Rule{0, 0, 1} // (Fri, SF, LA): no such flight
	if bad.SupportSize(ds) != 0 {
		t.Fatal("fixture changed: rule should have empty support")
	}
	if _, err := s.AddRule(bad); err == nil {
		t.Error("empty-support rule accepted")
	}
	if len(s.Rules()) != 0 {
		t.Error("failed AddRule left a rule behind")
	}
}

func TestResetOnAddMatchesCarryForward(t *testing.T) {
	ds := datagen.Flights()
	_, work := NewTransform(ds.Measure)
	carry := NewNaiveScaler(ds, work)
	carry.Epsilon = 1e-9
	reset := NewNaiveScaler(ds, work)
	reset.Epsilon = 1e-9
	reset.ResetOnAdd = true

	rules := []rule.Rule{
		rule.AllWildcards(3),
		mustRule(t, ds, "*", "*", "London"),
		mustRule(t, ds, "Fri", "*", "*"),
	}
	var carryLoops, resetLoops int
	for _, r := range rules {
		st1, err := carry.AddRule(r)
		if err != nil {
			t.Fatal(err)
		}
		st2, err := reset.AddRule(r)
		if err != nil {
			t.Fatal(err)
		}
		carryLoops += st1.Loops
		resetLoops += st2.Loops
	}
	// The maximum-entropy solution is unique: both styles converge to the
	// same estimates, the reset style just works harder (Section 5.6.2).
	for i := range carry.Mhat() {
		approx(t, "reset vs carry mhat", reset.Mhat()[i], carry.Mhat()[i], 1e-4)
	}
	if resetLoops < carryLoops {
		t.Errorf("reset style used fewer loops (%d) than carry-forward (%d)", resetLoops, carryLoops)
	}
}

// TestRCTMatchesNaive is the core equivalence property of Section 4.1: the
// RCT scaler computes exactly what Algorithm 1 computes, only faster.
func TestRCTMatchesNaive(t *testing.T) {
	ds := datagen.Flights()
	_, work := NewTransform(ds.Measure)
	naive := NewNaiveScaler(ds, work)
	naive.Epsilon = 1e-9
	rct := NewRCTScaler(ds, work, 8)
	rct.Epsilon = 1e-9

	rules := []rule.Rule{
		rule.AllWildcards(3),
		mustRule(t, ds, "*", "*", "London"),
		mustRule(t, ds, "Fri", "*", "*"),
		mustRule(t, ds, "Sat", "*", "*"),
		mustRule(t, ds, "Mon", "*", "*"),
	}
	for _, r := range rules {
		if _, err := naive.AddRule(r); err != nil {
			t.Fatal(err)
		}
		if _, err := rct.AddRule(r); err != nil {
			t.Fatal(err)
		}
		for i := range naive.Mhat() {
			if math.Abs(naive.Mhat()[i]-rct.Mhat()[i]) > 1e-6 {
				t.Fatalf("after %v: mhat[%d] naive=%v rct=%v", r, i, naive.Mhat()[i], rct.Mhat()[i])
			}
		}
		for i := range naive.Lambdas() {
			approx(t, "lambda", rct.Lambdas()[i], naive.Lambdas()[i], 1e-6)
		}
	}
}

// TestRCTTable41Golden pins Table 4.1 of the thesis: the RCT contents right
// after the third rule is appended (before rescaling), with the thesis' BA
// labels 1000/1100/1010/1110 padded to this test's 4-rule capacity.
func TestRCTTable41Golden(t *testing.T) {
	ds := datagen.Flights()
	_, work := NewTransform(ds.Measure)
	s := NewRCTScaler(ds, work, 4)
	s.Epsilon = 1e-10
	addFlightRules(t, s, ds, rule.AllWildcards(3), mustRule(t, ds, "*", "*", "London"))

	var snapshot []RCTRow
	s.OnRCTBuilt = func(rows []RCTRow) { snapshot = rows }
	addFlightRules(t, s, ds, mustRule(t, ds, "Fri", "*", "*"))

	want := map[string]RCTRow{
		"100": {Count: 9, SumM: 68, SumMhat: 9 * 8.4},
		"110": {Count: 3, SumM: 41, SumMhat: 3 * 15.25},
		"101": {Count: 1, SumM: 16, SumMhat: 8.4},
		"111": {Count: 1, SumM: 20, SumMhat: 15.25},
	}
	if len(snapshot) != 4 {
		t.Fatalf("RCT has %d rows, want 4: %+v", len(snapshot), snapshot)
	}
	for _, row := range snapshot {
		w, ok := want[row.BA]
		if !ok {
			t.Errorf("unexpected RCT row BA=%s", row.BA)
			continue
		}
		if row.Count != w.Count {
			t.Errorf("BA=%s count=%d want %d", row.BA, row.Count, w.Count)
		}
		approx(t, "BA="+row.BA+" SumM", row.SumM, w.SumM, 1e-9)
		approx(t, "BA="+row.BA+" SumMhat", row.SumMhat, w.SumMhat, 1e-6)
	}
	if s.NumRCTRows() != 4 {
		t.Errorf("NumRCTRows = %d", s.NumRCTRows())
	}
}

func TestRCTRejectsEmptySupport(t *testing.T) {
	ds := datagen.Flights()
	_, work := NewTransform(ds.Measure)
	s := NewRCTScaler(ds, work, 4)
	addFlightRules(t, s, ds, rule.AllWildcards(3))
	bad := rule.Rule{0, 0, 1}
	if _, err := s.AddRule(bad); err == nil {
		t.Error("empty-support rule accepted")
	}
	// The scaler must remain usable.
	addFlightRules(t, s, ds, mustRule(t, ds, "*", "*", "London"))
	if len(s.Rules()) != 2 {
		t.Errorf("rules = %d, want 2", len(s.Rules()))
	}
}

func TestRCTCapacityExceeded(t *testing.T) {
	ds := datagen.Flights()
	_, work := NewTransform(ds.Measure)
	s := NewRCTScaler(ds, work, 1)
	addFlightRules(t, s, ds, rule.AllWildcards(3))
	// Capacity of 1 rounds up to one 64-bit word; fill it.
	// (Capacity is words*64, so add until the error trips.)
	added := 1
	for day := range ds.Dicts[0].Values() {
		r := rule.Rule{int32(day), rule.Wildcard, rule.Wildcard}
		if _, err := s.AddRule(r); err != nil {
			t.Fatalf("unexpected error at rule %d: %v", added, err)
		}
		added++
	}
	if added > 64 {
		t.Skip("fixture too small to exceed capacity")
	}
}

func TestScaleStatsDataScans(t *testing.T) {
	ds := datagen.Flights()
	_, work := NewTransform(ds.Measure)
	rct := NewRCTScaler(ds, work, 4)
	st, err := rct.AddRule(rule.AllWildcards(3))
	if err != nil {
		t.Fatal(err)
	}
	if st.DataScans != 2 {
		t.Errorf("RCT data scans = %d, want 2 regardless of loop count", st.DataScans)
	}
	naive := NewNaiveScaler(ds, work)
	if _, err := naive.AddRule(rule.AllWildcards(3)); err != nil {
		t.Fatal(err)
	}
	st2, err := naive.AddRule(mustRule(t, ds, "*", "*", "London"))
	if err != nil {
		t.Fatal(err)
	}
	if st2.DataScans < 4 {
		t.Errorf("naive data scans = %d, want >= 2 per loop with >= 2 loops", st2.DataScans)
	}
}

func TestNonConvergenceReported(t *testing.T) {
	ds := datagen.Flights()
	_, work := NewTransform(ds.Measure)
	s := NewNaiveScaler(ds, work)
	s.Epsilon = 0 // unreachable threshold in floating point for this data
	s.MaxLoops = 3
	if _, err := s.AddRule(rule.AllWildcards(3)); err != nil {
		// A single all-covering rule can converge in one loop even with
		// eps=0 if the ratio is exact; adding a second rule must not.
		t.Skipf("first rule already failed: %v", err)
	}
	_, err := s.AddRule(mustRule(t, ds, "*", "*", "London"))
	if err == nil {
		t.Skip("converged exactly; nothing to report")
	}
}

// TestQuickRCTMatchesNaiveOnRandomData fuzzes the core equivalence of
// Section 4.1 over random datasets and rule sequences.
func TestQuickRCTMatchesNaiveOnRandomData(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := rng.Intn(3) + 2
		rows := rng.Intn(40) + 10
		b := dataset.NewBuilder(dataset.Schema{DimNames: make([]string, d), MeasureName: "m"})
		for j := 0; j < d; j++ {
			b.Dict(j).Code("a")
			b.Dict(j).Code("b")
			b.Dict(j).Code("c")
		}
		codes := make([]int32, d)
		for i := 0; i < rows; i++ {
			for j := range codes {
				codes[j] = int32(rng.Intn(3))
			}
			if err := b.AddCodes(codes, float64(rng.Intn(20))+1); err != nil {
				return false
			}
		}
		ds := b.MustBuild()
		_, work := NewTransform(ds.Measure)
		naive := NewNaiveScaler(ds, work)
		naive.Epsilon = 1e-8
		rct := NewRCTScaler(ds, work, 8)
		rct.Epsilon = 1e-8
		ruleSet := []rule.Rule{rule.AllWildcards(d)}
		for len(ruleSet) < 4 {
			r := rule.AllWildcards(d)
			r[rng.Intn(d)] = int32(rng.Intn(3))
			if r.SupportSize(ds) > 0 {
				ruleSet = append(ruleSet, r)
			}
		}
		for _, r := range ruleSet {
			if _, err := naive.AddRule(r); err != nil {
				return true // both must fail identically
			}
			if _, err := rct.AddRule(r); err != nil {
				return false
			}
			for i := range naive.Mhat() {
				if math.Abs(naive.Mhat()[i]-rct.Mhat()[i]) > 1e-5 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
