package maxent

import (
	"math"

	"sirum/internal/dataset"
	"sirum/internal/rule"
)

// Gain computes the information-gain estimate of Equation 2.2 from the sums
// of actual and estimated measure values over a candidate's support set:
//
//	gain = S_m · ln(S_m / S_m̂)
//
// Rules whose constraint is already satisfied (S_m = S_m̂) have gain 0, as do
// rules with non-positive sums (lim x→0 x·ln x = 0; negative sums cannot
// occur on the transformed scale).
func Gain(sumM, sumMhat float64) float64 {
	if sumM <= 0 || sumMhat <= 0 {
		return 0
	}
	return sumM * math.Log(sumM/sumMhat)
}

// GainOf evaluates a rule's gain directly against a dataset and the current
// estimate column (used by exhaustive exploration and by tests; the
// distributed path aggregates sums via the cube instead).
func GainOf(r rule.Rule, ds *dataset.Dataset, work, mhat []float64) float64 {
	var sm, sh float64
	for i := 0; i < ds.NumRows(); i++ {
		if r.MatchesRow(ds, i) {
			sm += work[i]
			sh += mhat[i]
		}
	}
	return Gain(sm, sh)
}

// KLDivergence computes D_KL(m ‖ m̂) between the distributions induced by
// normalizing the two columns (Section 2.3). Zero-probability p entries
// contribute nothing; a zero q entry with positive p yields +Inf, matching
// the definition's absolute-continuity requirement.
func KLDivergence(work, mhat []float64) float64 {
	var sp, sq float64
	for i := range work {
		sp += work[i]
		sq += mhat[i]
	}
	if sp == 0 || sq == 0 {
		return 0
	}
	var kl float64
	for i := range work {
		p := work[i] / sp
		if p == 0 {
			continue
		}
		q := mhat[i] / sq
		if q == 0 {
			return math.Inf(1)
		}
		kl += p * math.Log(p/q)
	}
	// Floating-point noise can push an exact-match divergence a hair below
	// zero; clamp, since D_KL >= 0 by Gibbs' inequality.
	if kl < 0 && kl > -1e-12 {
		kl = 0
	}
	return kl
}

// InformationGain is the thesis' evaluation metric (Section 5.1): the KL
// divergence using just the all-wildcards rule minus the KL divergence using
// the given estimates. Larger is better.
func InformationGain(work, mhat []float64) float64 {
	if len(work) == 0 {
		return 0
	}
	var sum float64
	for _, v := range work {
		sum += v
	}
	avg := sum / float64(len(work))
	base := make([]float64, len(work))
	for i := range base {
		base[i] = avg
	}
	return KLDivergence(work, base) - KLDivergence(work, mhat)
}
