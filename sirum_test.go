package sirum

import (
	"math"
	"strings"
	"testing"
)

func flights(t *testing.T) *Dataset {
	t.Helper()
	ds, err := Generate("flights", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestReadCSVAndAccessors(t *testing.T) {
	csv := "id,color,size,price\n1,red,big,10\n2,blue,small,2\n3,red,small,4\n"
	ds, err := ReadCSV(strings.NewReader(csv), "price", "id")
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRows() != 3 || ds.NumDims() != 2 {
		t.Fatalf("rows=%d dims=%d", ds.NumRows(), ds.NumDims())
	}
	if ds.MeasureName() != "price" || ds.DimNames()[0] != "color" {
		t.Errorf("schema: %v / %s", ds.DimNames(), ds.MeasureName())
	}
	if !strings.Contains(ds.Summary(), "3 rows") {
		t.Errorf("Summary = %q", ds.Summary())
	}
	var sb strings.Builder
	if err := ds.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "color,size,price") {
		t.Errorf("csv round trip header: %q", sb.String())
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder([]string{"a", "b"}, "m")
	if err := b.Add([]string{"x", "y"}, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Add([]string{"x"}, 1); err == nil {
		t.Error("wrong arity accepted")
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRows() != 1 {
		t.Errorf("rows = %d", ds.NumRows())
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("nope", 10, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

// TestMineFlights pins the public API against the thesis' Table 1.2.
func TestMineFlights(t *testing.T) {
	ds := flights(t)
	res, err := ds.Mine(Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) != 3 {
		t.Fatalf("mined %d rules", len(res.Rules))
	}
	first := res.Rules[0]
	if first.String() != "Destination=London" {
		t.Errorf("first rule = %s", first)
	}
	if first.Count != 4 || math.Abs(first.Avg-15.25) > 1e-9 {
		t.Errorf("first rule aggregates: %+v", first)
	}
	if res.KL < 0 || res.InfoGain <= 0 {
		t.Errorf("KL=%v InfoGain=%v", res.KL, res.InfoGain)
	}
	if res.Iterations != 3 || res.WallTime <= 0 {
		t.Errorf("run stats: %+v", res)
	}
	if res.SimTime != 0 {
		t.Errorf("native backend reported sim time %v", res.SimTime)
	}
	// The simulated backend mines the same rules and reports a cluster clock.
	sim, err := ds.Mine(Options{K: 3, Backend: BackendSim})
	if err != nil {
		t.Fatal(err)
	}
	if sim.SimTime <= 0 {
		t.Errorf("sim backend reported sim time %v", sim.SimTime)
	}
	if len(sim.Rules) != len(res.Rules) {
		t.Fatalf("sim mined %d rules, native %d", len(sim.Rules), len(res.Rules))
	}
	for i := range sim.Rules {
		if sim.Rules[i].String() != res.Rules[i].String() {
			t.Errorf("rule %d: sim %s vs native %s", i, sim.Rules[i], res.Rules[i])
		}
	}
}

func TestMineVariants(t *testing.T) {
	ds, err := Generate("income", 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	variants := []Variant{VariantOptimized, VariantBaseline, VariantNaive, VariantRCT,
		VariantFastPruning, VariantFastAncestor, VariantMultiRule, ""}
	for _, v := range variants {
		res, err := ds.Mine(Options{K: 3, Variant: v, SampleSize: 16, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if len(res.Rules) == 0 {
			t.Errorf("%s mined nothing", v)
		}
	}
	if _, err := ds.Mine(Options{Variant: "bogus"}); err == nil {
		t.Error("bogus variant accepted")
	}
}

func TestMineOnSample(t *testing.T) {
	ds, err := Generate("income", 4000, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ds.Mine(Options{K: 3, SampleFraction: 0.25, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.InfoGain <= 0 {
		t.Errorf("info gain on full data = %v", res.InfoGain)
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{}
	if r.String() != "(*)" {
		t.Errorf("empty rule = %q", r.String())
	}
	r.Conditions = []Condition{{"Day", "Fri"}, {"Dest", "London"}}
	if got := r.String(); got != "Day=Fri ∧ Dest=London" {
		t.Errorf("rule string = %q", got)
	}
}

func TestExplore(t *testing.T) {
	ds := flights(t)
	res, err := ds.Explore(ExploreOptions{K: 2, GroupBys: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Prior) == 0 {
		t.Error("no prior rules")
	}
	if len(res.Result.Rules) == 0 {
		t.Error("no recommendations")
	}
	priorSet := map[string]bool{}
	for _, p := range res.Prior {
		priorSet[p.String()] = true
	}
	for _, r := range res.Result.Rules {
		if priorSet[r.String()] {
			t.Errorf("recommended known rule %s", r)
		}
	}
}

// TestFit pins the estimate columns of Table 1.1 through the public API.
func TestFit(t *testing.T) {
	ds := flights(t)
	// No extra rules: everything estimated at the overall average (m̂1).
	est, kl, err := ds.Fit(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range est {
		if math.Abs(v-145.0/14.0) > 0.2 {
			t.Errorf("baseline estimate %v", v)
		}
	}
	if kl < 0 {
		t.Errorf("kl = %v", kl)
	}
	// Adding (*,*,London) gives the m̂2 column: 15.25 / 8.4.
	est2, kl2, err := ds.Fit([][]Condition{{{Attr: "Destination", Value: "London"}}})
	if err != nil {
		t.Fatal(err)
	}
	if kl2 >= kl {
		t.Error("adding a rule must reduce KL")
	}
	if math.Abs(est2[0]-15.25) > 0.2 || math.Abs(est2[1]-8.4) > 0.2 {
		t.Errorf("m̂2 estimates: %v %v", est2[0], est2[1])
	}
	// Unknown attribute and value.
	if _, _, err := ds.Fit([][]Condition{{{Attr: "Nope", Value: "x"}}}); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, _, err := ds.Fit([][]Condition{{{Attr: "Day", Value: "Never"}}}); err == nil {
		t.Error("unknown value accepted")
	}
}
