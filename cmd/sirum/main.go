// Command sirum mines informative rules from a CSV file.
//
// Usage:
//
//	sirum -input data.csv -measure Delay [-ignore "Flight ID"] [-k 10]
//	      [-sample 64] [-variant optimized] [-fraction 0.1] [-seed 1]
//	      [-backend native|sim]
//
// With -dataset instead of -input, one of the built-in synthetic evaluation
// datasets is mined (income, gdelt, susy, tlc, flights).
//
// With -ks (comma-separated list, e.g. -ks 5,10,20) the dataset is prepared
// once and every K runs as a query against the shared session — the
// interactive prepare-once/query-many path — reporting per-query times.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"sirum"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sirum:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sirum", flag.ContinueOnError)
	input := fs.String("input", "", "CSV file to mine")
	measure := fs.String("measure", "", "measure column name (required with -input)")
	ignore := fs.String("ignore", "", "comma-separated columns to drop (ids etc.)")
	dsName := fs.String("dataset", "", "built-in dataset instead of -input: income|gdelt|susy|tlc|flights")
	rows := fs.Int("rows", 10000, "rows for built-in datasets")
	k := fs.Int("k", 10, "number of rules to mine")
	ks := fs.String("ks", "", "comma-separated K values: prepare once, mine one query per K (overrides -k)")
	sample := fs.Int("sample", 64, "|s| for candidate pruning (0 = exhaustive)")
	variant := fs.String("variant", "optimized", "miner variant: naive|baseline|rct|fastpruning|fastancestor|multirule|optimized")
	fraction := fs.Float64("fraction", 0, "mine on this fraction of the data (0 = all)")
	seed := fs.Int64("seed", 1, "random seed")
	executors := fs.Int("executors", 4, "virtual executors of the execution substrate")
	backend := fs.String("backend", "native", "execution backend: native (host speed) or sim (simulated cluster)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var ds *sirum.Dataset
	var err error
	switch {
	case *input != "" && *dsName != "":
		return fmt.Errorf("use either -input or -dataset, not both")
	case *input != "":
		if *measure == "" {
			return fmt.Errorf("-measure is required with -input")
		}
		var ign []string
		if *ignore != "" {
			ign = strings.Split(*ignore, ",")
		}
		ds, err = sirum.ReadCSVFile(*input, *measure, ign...)
	case *dsName != "":
		ds, err = sirum.Generate(*dsName, *rows, *seed)
	default:
		return fmt.Errorf("one of -input or -dataset is required")
	}
	if err != nil {
		return err
	}

	fmt.Fprintln(out, ds.Summary())
	if *ks != "" {
		return runSession(out, ds, *ks, *sample, *variant, *fraction, *seed, *executors, *backend)
	}
	res, err := ds.Mine(sirum.Options{
		K:              *k,
		SampleSize:     *sample,
		Variant:        sirum.Variant(*variant),
		SampleFraction: *fraction,
		Seed:           *seed,
		Cluster:        sirum.Cluster{Executors: *executors},
		Backend:        sirum.Backend(*backend),
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\n%-60s  %12s  %8s  %10s\n", "rule", "avg("+ds.MeasureName()+")", "count", "gain")
	fmt.Fprintf(out, "%-60s  %12s  %8s  %10s\n", strings.Repeat("-", 60), strings.Repeat("-", 12), strings.Repeat("-", 8), strings.Repeat("-", 10))
	for _, r := range res.Rules {
		fmt.Fprintf(out, "%-60s  %12.4g  %8d  %10.4g\n", r.String(), r.Avg, r.Count, r.Gain)
	}
	fmt.Fprintf(out, "\nKL divergence: %.6f   information gain: %.6f\n", res.KL, res.InfoGain)
	fmt.Fprintf(out, "iterations: %d   wall: %v", res.Iterations, res.WallTime.Round(1e6))
	if *backend == string(sirum.BackendSim) {
		fmt.Fprintf(out, "   simulated cluster time: %v", res.SimTime.Round(1e6))
	}
	fmt.Fprintln(out)
	return nil
}

// runSession prepares the dataset once and answers one query per K.
func runSession(out io.Writer, ds *sirum.Dataset, ks string, sample int, variant string, fraction float64, seed int64, executors int, backend string) error {
	var kList []int
	for _, part := range strings.Split(ks, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || k <= 0 {
			return fmt.Errorf("bad -ks entry %q", part)
		}
		kList = append(kList, k)
	}
	prepStart := time.Now()
	p, err := ds.Prepare(sirum.PrepareOptions{
		SampleSize:     sample,
		Seed:           seed,
		SampleFraction: fraction,
		Cluster:        sirum.Cluster{Executors: executors},
		Backend:        sirum.Backend(backend),
	})
	if err != nil {
		return err
	}
	defer p.Close()
	fmt.Fprintf(out, "prepared in %v; mining %d queries on the shared session\n", time.Since(prepStart).Round(1e6), len(kList))
	for _, k := range kList {
		res, err := p.Mine(sirum.Options{
			K:              k,
			SampleSize:     sample,
			Variant:        sirum.Variant(variant),
			SampleFraction: fraction,
			Seed:           seed,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nK=%d  (KL %.6f, info gain %.6f, wall %v)\n", k, res.KL, res.InfoGain, res.WallTime.Round(1e6))
		for _, r := range res.Rules {
			fmt.Fprintf(out, "  %-58s  %10.4g  %8d\n", r.String(), r.Avg, r.Count)
		}
	}
	return nil
}
